#include "graph/validation.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace mmn {

ForestStats analyze_forest(const Graph& g, const Forest& forest,
                           const std::string& context) {
  const NodeId n = g.num_nodes();
  MMN_ASSERT(forest.parent.size() == n, context + ": parent size mismatch");
  MMN_ASSERT(forest.parent_edge.size() == n,
             context + ": parent_edge size mismatch");

  // Parent pointers must reference real graph edges and be acyclic.
  std::vector<NodeId> root(n, kNoNode);
  std::vector<std::uint32_t> depth(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    MMN_ASSERT(forest.parent[v] < n, context + ": parent out of range");
    if (forest.parent[v] == v) {
      MMN_ASSERT(forest.parent_edge[v] == kNoEdge,
                 context + ": root must have no parent edge");
      continue;
    }
    const EdgeId pe = forest.parent_edge[v];
    MMN_ASSERT(pe != kNoEdge, context + ": non-root must have a parent edge");
    MMN_ASSERT(pe < g.num_edges(), context + ": parent edge out of range");
    const Edge e = g.edge(pe);
    MMN_ASSERT((e.u == v && e.v == forest.parent[v]) ||
                   (e.v == v && e.u == forest.parent[v]),
               context + ": parent edge does not join node and parent");
  }

  // Resolve roots; cycle detection via step bound.
  for (NodeId v = 0; v < n; ++v) {
    NodeId cur = v;
    std::uint32_t steps = 0;
    while (forest.parent[cur] != cur) {
      cur = forest.parent[cur];
      MMN_ASSERT(++steps <= n, context + ": cycle in parent pointers");
    }
    root[v] = cur;
  }

  // Depth of every node within its tree (BFS from roots over child lists).
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (forest.parent[v] != v) children[forest.parent[v]].push_back(v);
  }
  std::vector<std::size_t> tree_size(n, 0);
  std::vector<std::uint32_t> tree_radius(n, 0);
  for (NodeId v = 0; v < n; ++v) ++tree_size[root[v]];

  std::queue<NodeId> queue;
  for (NodeId v = 0; v < n; ++v) {
    if (forest.parent[v] == v) queue.push(v);
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (NodeId c : children[v]) {
      depth[c] = depth[v] + 1;
      tree_radius[root[c]] = std::max(tree_radius[root[c]], depth[c]);
      queue.push(c);
    }
  }

  ForestStats stats;
  stats.min_size = n;
  for (NodeId v = 0; v < n; ++v) {
    if (forest.parent[v] != v) continue;
    ++stats.num_trees;
    stats.min_size = std::min(stats.min_size, tree_size[v]);
    stats.max_size = std::max(stats.max_size, tree_size[v]);
    stats.max_radius = std::max(stats.max_radius, tree_radius[v]);
  }
  MMN_ASSERT(stats.num_trees >= 1, context + ": forest has no trees");
  return stats;
}

bool forest_within_mst(const Forest& forest, const MstResult& mst) {
  for (NodeId v = 0; v < forest.parent.size(); ++v) {
    if (forest.parent[v] == static_cast<NodeId>(v)) continue;
    if (!mst_contains(mst, forest.parent_edge[v])) return false;
  }
  return true;
}

std::vector<NodeId> forest_roots(const Forest& forest) {
  std::vector<NodeId> roots;
  for (NodeId v = 0; v < forest.parent.size(); ++v) {
    if (forest.parent[v] == v) roots.push_back(v);
  }
  return roots;
}

NodeId forest_root_of(const Forest& forest, NodeId v) {
  MMN_REQUIRE(v < forest.parent.size(), "node out of range");
  std::uint32_t steps = 0;
  while (forest.parent[v] != v) {
    v = forest.parent[v];
    MMN_ASSERT(++steps <= forest.parent.size(), "cycle in parent pointers");
  }
  return v;
}

}  // namespace mmn
