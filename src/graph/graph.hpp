// Immutable weighted undirected graph.
//
// This is the topology substrate for the point-to-point half of a multimedia
// network (Section 2 of the paper): n nodes, m bidirectional links, distinct
// link weights.  Adjacency lists are stored sorted by ascending weight because
// the partitioning and MST algorithms scan a node's links in weight order
// ("scanning its ordered list of links", Section 3, Step 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mmn {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Weight = std::uint64_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// An undirected edge with its distinct weight.
struct Edge {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Weight weight = 0;
};

/// One entry of a node's adjacency list.
struct EdgeRef {
  NodeId to = kNoNode;
  EdgeId id = kNoEdge;
  Weight weight = 0;
};

class Graph {
 public:
  /// Builds a graph from an edge list.  Requires: endpoints < n, no self
  /// loops, no parallel edges, all weights distinct.
  Graph(NodeId n, std::vector<Edge> edges);

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  const Edge& edge(EdgeId e) const;

  /// Neighbors of v sorted by ascending link weight.
  std::span<const EdgeRef> neighbors(NodeId v) const;

  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// The endpoint of edge e that is not `from`.
  NodeId other_endpoint(EdgeId e, NodeId from) const;

  const std::vector<Edge>& edges() const { return edges_; }

 private:
  NodeId n_;
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> adj_offset_;  // n_ + 1 offsets into adj_
  std::vector<EdgeRef> adj_;               // grouped by node, weight-sorted
};

}  // namespace mmn
