// Immutable weighted undirected graph — the one CSR topology substrate.
//
// This is the topology layer for the point-to-point half of a multimedia
// network (Section 2 of the paper): n nodes, m bidirectional links, distinct
// link weights.  Adjacency is stored exactly once, as a weight-sorted CSR
// arena: `adj_offset_` (n + 1 offsets) over packed `Neighbor{to, edge,
// weight}` rows, sorted per node by ascending weight because the partitioning
// and MST algorithms scan a node's links in weight order ("scanning its
// ordered list of links", Section 3, Step 2).  Every layer above shares this
// arena: `Graph::neighbors` returns a view into it and `sim::LocalView` is a
// non-owning window over the same rows — there is no second edge list, no
// per-node adjacency copy, and no per-node edge index (see
// ARCHITECTURE.md, "Topology substrate").
//
// Edge identity is positional: edge e's canonical adjacency position (the
// slot in its first-emitted endpoint's row) lives in the shared
// `edge_pos_` slab, one uint32 per edge.  That one slab serves both
// directions of lookup:
//   * edge(e)        — endpoints + weight recovered from the row entry
//                      (O(log n) to find the owning row);
//   * link_slot(v,e) — a node's weight-ordered slot for an incident edge:
//                      O(1) when v is the canonical endpoint, otherwise one
//                      binary search of v's row by the edge's weight.
//
// Dense topologies (complete graphs, rings, square grids, hypercubes) also
// come as *implicit* variants with O(1) storage: `neighbors(v)` computes the
// weight-sorted row on the fly behind the same `NeighborRange` interface, so
// a 16k-node clique costs bytes, not the ~n^2 rows an explicit build needs.
// Implicit weights are the canonical labelling weight(e) = e + 1 (distinct
// by construction, deterministic, seed-independent) chosen so that every
// node's ascending-weight order is computable in O(1) per entry.
#pragma once

#include <cstdint>
#include <vector>

namespace mmn {

class Rng;

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Weight = std::uint64_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);
/// edge_pos_ sentinel for edges a windowed build did not retain.
inline constexpr std::uint32_t kNoEdgeSlot = static_cast<std::uint32_t>(-1);

/// An undirected edge with its distinct weight.
struct Edge {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Weight weight = 0;
};

/// One packed row of the adjacency arena: the node on the other end of one
/// incident link, the link's edge id, and its weight.  This is the ONE
/// adjacency record of the codebase — `Graph::neighbors`, `sim::LocalView`
/// and every protocol walk the same 12-byte rows.  The weight rides as
/// uint32 (weights are a permutation of 1..m and m is a 32-bit edge count);
/// the public `Edge`/`Weight` API stays 64-bit.
struct Neighbor {
  NodeId to = kNoNode;
  EdgeId edge = kNoEdge;
  std::uint32_t weight = 0;
};
static_assert(sizeof(Neighbor) == 12, "adjacency rows must stay packed");

class Graph;

/// A node's weight-sorted adjacency row behind one interface for both
/// storage schemes: a zero-copy window into the CSR arena (explicit graphs)
/// or an O(1) generator of the same rows (implicit dense topologies).
/// Value-semantic and 24 bytes — build one per access, don't store it.
class NeighborRange {
 public:
  class iterator {
   public:
    using value_type = Neighbor;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const NeighborRange* r, std::uint32_t i) : r_(r), i_(i) {}

    Neighbor operator*() const { return (*r_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++i_;
      return old;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const NeighborRange* r_ = nullptr;
    std::uint32_t i_ = 0;
  };

  NeighborRange() = default;

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Neighbor operator[](std::uint32_t i) const;
  Neighbor operator[](std::size_t i) const {
    return (*this)[static_cast<std::uint32_t>(i)];
  }
  Neighbor operator[](int i) const {
    return (*this)[static_cast<std::uint32_t>(i)];
  }
  Neighbor front() const { return (*this)[0u]; }

  /// Iterators reference the range object; keep the range alive for the
  /// duration of the loop (range-for over `g.neighbors(v)` does).
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, size_); }

  /// The arena rows this range windows, or nullptr for an implicit
  /// (computed) range.  Exists so tests can pin the zero-copy property.
  const Neighbor* data() const { return data_; }

 private:
  friend class Graph;
  NeighborRange(const Neighbor* data, std::uint32_t size)
      : data_(data), size_(size) {}
  NeighborRange(const Graph* g, NodeId self, std::uint32_t size)
      : size_(size), g_(g), self_(self) {}

  const Neighbor* data_ = nullptr;  ///< non-null => explicit arena window
  std::uint32_t size_ = 0;
  const Graph* g_ = nullptr;  ///< implicit: compute rows through the graph
  NodeId self_ = kNoNode;
};

class Graph {
 public:
  /// Builds an explicit graph from an edge list.  Requires: endpoints < n,
  /// no self loops, no parallel edges, all weights distinct and < 2^32.
  /// Edge ids are list positions.
  Graph(NodeId n, std::vector<Edge> edges);

  // Implicit O(1)-storage variants of the dense families.  Weights are the
  // canonical labelling weight(e) = e + 1; no seed, no arena.
  static Graph implicit_complete(NodeId n);
  static Graph implicit_ring(NodeId n);
  static Graph implicit_grid(NodeId rows, NodeId cols);
  static Graph implicit_hypercube(int dim);

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return m_; }

  /// Endpoints and weight of edge e (computed; returns by value).
  Edge edge(EdgeId e) const;

  /// Neighbors of v sorted by ascending link weight.
  NeighborRange neighbors(NodeId v) const;

  std::uint32_t degree(NodeId v) const;

  /// v's weight-ordered adjacency slot for edge e (neighbors(v)[slot].edge
  /// == e), or -1 if e is not incident to v.  O(1) when v is the edge's
  /// canonical endpoint, otherwise O(log degree); O(log n) on implicit
  /// cliques.  This replaces the per-node edge index LocalView used to
  /// carry — the `edge_pos_` slab is shared by all n views.
  int link_slot(NodeId v, EdgeId e) const;

  /// The endpoint of edge e that is not `from`.
  NodeId other_endpoint(EdgeId e, NodeId from) const;

  /// True for the implicit dense variants (no materialized arena).
  bool is_implicit() const { return kind_ != Kind::kExplicit; }

  /// Resident bytes of the topology storage (arena + offsets + edge slab);
  /// the bytes-per-node bench counter divides this by n.
  std::size_t topology_bytes() const;

 private:
  friend class NeighborRange;
  friend class GraphBuilder;

  enum class Kind : std::uint8_t {
    kExplicit,
    kComplete,
    kRing,
    kGrid,
    kHypercube,
  };

  Graph() = default;

  /// Row entry i of node v for the implicit families (O(1)).
  Neighbor implicit_entry(NodeId v, std::uint32_t i) const;

  Kind kind_ = Kind::kExplicit;
  NodeId n_ = 0;
  EdgeId m_ = 0;
  std::uint32_t rows_ = 0;  ///< grid
  std::uint32_t cols_ = 0;  ///< grid
  std::uint32_t dim_ = 0;   ///< hypercube

  // Explicit storage: one weight-sorted CSR arena plus the shared per-edge
  // canonical-position slab.  Empty for implicit graphs.
  std::vector<std::uint32_t> adj_offset_;  ///< n_ + 1 offsets into adj_
  std::vector<Neighbor> adj_;              ///< rows, weight-sorted per node
  std::vector<std::uint32_t> edge_pos_;    ///< edge -> canonical adj_ slot
};

inline Neighbor NeighborRange::operator[](std::uint32_t i) const {
  if (data_ != nullptr) return data_[i];
  return g_->implicit_entry(self_, i);
}

/// A contiguous node window [lo, hi) for sharded construction.  Inactive
/// (hi <= lo) means "build everything" — the default everywhere.
struct GraphWindow {
  NodeId lo = 0;
  NodeId hi = 0;
  constexpr bool active() const { return hi > lo; }
  constexpr bool owns(NodeId v) const { return v >= lo && v < hi; }
};

/// Streams (u, v) pairs into a CSR build without materializing an
/// intermediate edge list: the generators add endpoint pairs (8 transient
/// bytes per edge), then finish() assigns the seeded weight permutation
/// 1..m and builds the arena in place.  Edge ids are emission positions —
/// identical to the retired edge-list path, pinned by the golden topology
/// digests in tests/test_topology.cpp.
///
/// Window mode (restrict_window): the builder still counts every emitted
/// edge — ids and the finish_permuted weight draw stay GLOBAL, so a
/// windowed build of the same stream agrees bit-for-bit with the full build
/// on every retained edge — but it materializes adjacency rows only for
/// nodes inside [lo, hi), retaining just the edges with an endpoint in the
/// window (the shard plus its boundary frontier).  Rows of owned nodes are
/// identical to the full build's (same neighbors, ids, weights, sort
/// order); rows of unowned nodes are empty plateaus in the offset table.
/// edge_pos_ entries for non-retained edges are kNoEdgeSlot, so edge() on
/// them is an error and link_slot() returns -1.
class GraphBuilder {
 public:
  /// n nodes; reserve capacity for `expected_edges` pairs.
  explicit GraphBuilder(NodeId n, std::size_t expected_edges = 0);

  /// Enters window mode for [lo, hi).  Must precede the first add_edge.
  void restrict_window(NodeId lo, NodeId hi);

  /// Adds one undirected edge; returns its (global) id.  Requires endpoints
  /// < n and u != v.  The caller (the generators) guarantees simplicity;
  /// parallel edges are not re-checked here.
  EdgeId add_edge(NodeId u, NodeId v);

  /// Edges emitted so far — global count, even in window mode.
  EdgeId num_edges() const { return total_edges_; }

  /// Finishes with weights = a random permutation of 1..m drawn from `rng`
  /// (the exact draw sequence of the retired assign_weights helper).
  Graph finish_permuted(Rng& rng) &&;

  /// Finishes with the given per-edge weights (must be distinct, < 2^32).
  /// One weight per *emitted* edge, also in window mode.
  Graph finish_with_weights(const std::vector<Weight>& weights) &&;

 private:
  NodeId n_;
  NodeId win_lo_ = 0;
  NodeId win_hi_ = 0;  ///< win_hi_ > win_lo_ <=> window mode
  EdgeId total_edges_ = 0;
  std::vector<NodeId> eu_;
  std::vector<NodeId> ev_;
  std::vector<EdgeId> eid_;  ///< global ids of retained edges (window mode)
};

}  // namespace mmn
