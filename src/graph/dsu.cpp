#include "graph/dsu.hpp"

#include "support/check.hpp"

namespace mmn {

Dsu::Dsu(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
}

std::size_t Dsu::find(std::size_t x) {
  MMN_REQUIRE(x < parent_.size(), "dsu element out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool Dsu::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = static_cast<std::uint32_t>(a);
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

std::size_t Dsu::set_size(std::size_t x) { return size_[find(x)]; }

}  // namespace mmn
