#include "graph/epoch.hpp"

#include <utility>

#include "support/check.hpp"

namespace mmn {

EpochOverlay::EpochOverlay(const Graph& base)
    : base_(&base),
      dead_((static_cast<std::size_t>(base.num_edges()) + 63) / 64, 0),
      down_(base.num_nodes(), 0) {}

void EpochOverlay::kill_link(EdgeId e) {
  MMN_REQUIRE(e < base_->num_edges(), "kill_link: edge id out of range");
  std::uint64_t& word = dead_[e >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (e & 63);
  if ((word & bit) == 0) {
    word |= bit;
    ++links_down_;
  }
}

void EpochOverlay::revive_link(EdgeId e) {
  MMN_REQUIRE(e < base_->num_edges(), "revive_link: edge id out of range");
  std::uint64_t& word = dead_[e >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (e & 63);
  if ((word & bit) != 0) {
    word &= ~bit;
    --links_down_;
  }
}

void EpochOverlay::crash_node(NodeId v) {
  MMN_REQUIRE(v < base_->num_nodes(), "crash_node: node id out of range");
  if (down_[v] == 0) {
    down_[v] = 1;
    ++nodes_down_;
  }
}

void EpochOverlay::recover_node(NodeId v) {
  MMN_REQUIRE(v < base_->num_nodes(), "recover_node: node id out of range");
  if (down_[v] != 0) {
    down_[v] = 0;
    --nodes_down_;
  }
}

void EpochOverlay::add_link(NodeId u, NodeId v, Weight w) {
  MMN_REQUIRE(u < base_->num_nodes() && v < base_->num_nodes() && u != v,
              "add_link: endpoints must be distinct in-range nodes");
  delta_.push_back(Edge{u, v, w});
}

EpochOverlay::Compaction EpochOverlay::compact() {
  const Graph& g = *base_;
  const EdgeId m = g.num_edges();
  std::vector<EdgeId> old_to_new(m, kNoEdge);
  // First pass: count survivors so the builder reserves exactly once.
  EdgeId alive = 0;
  for (EdgeId e = 0; e < m; ++e) {
    const Edge ed = g.edge(e);
    if (link_alive(e) && node_alive(ed.u) && node_alive(ed.v)) ++alive;
  }
  GraphBuilder builder(g.num_nodes(),
                       static_cast<std::size_t>(alive) + delta_.size());
  std::vector<Weight> weights;
  weights.reserve(static_cast<std::size_t>(alive) + delta_.size());
  for (EdgeId e = 0; e < m; ++e) {
    const Edge ed = g.edge(e);
    if (!link_alive(e) || !node_alive(ed.u) || !node_alive(ed.v)) continue;
    old_to_new[e] = builder.add_edge(ed.u, ed.v);
    weights.push_back(ed.weight);
  }
  for (const Edge& ed : delta_) {
    if (!node_alive(ed.u) || !node_alive(ed.v)) continue;
    builder.add_edge(ed.u, ed.v);
    weights.push_back(ed.weight);
  }
  delta_.clear();
  ++epoch_;
  return Compaction{std::move(builder).finish_with_weights(weights),
                    std::move(old_to_new)};
}

std::uint64_t EpochOverlay::digest_word() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t word) {
    h = (h ^ word) * 0x100000001b3ULL;
  };
  for (const std::uint64_t word : dead_) mix(word);
  // Fold the down set as packed bits so the digest is insensitive to the
  // char-vector representation.
  std::uint64_t packed = 0;
  for (NodeId v = 0; v < base_->num_nodes(); ++v) {
    packed = (packed << 1) | static_cast<std::uint64_t>(down_[v]);
    if ((v & 63) == 63) {
      mix(packed);
      packed = 0;
    }
  }
  mix(packed);
  for (const Edge& ed : delta_) {
    mix((static_cast<std::uint64_t>(ed.u) << 32) | ed.v);
    mix(ed.weight);
  }
  mix(epoch_);
  return h;
}

}  // namespace mmn
