// Epoch overlay: dynamic topology over the immutable CSR arena.
//
// The Graph arena is immutable by design (graph/graph.hpp) — the overlay
// makes *change* cheap instead of making mutation cheap.  Link and node
// state changes land in O(1) side structures over the canonical edge slots:
// a tombstone bitset (one bit per EdgeId) for dead links, a per-node down
// flag for crashed nodes, and a small delta adjacency for links added since
// the last compaction.  The arena itself is never touched, so every
// LocalView window, every NeighborRange, and every edge id stays valid for
// the whole epoch.
//
// Mid-epoch the overlay is consulted at the *message commit seam*, not per
// adjacency access: NodeContext/AsyncContext test link_alive/node_alive on
// every send behind the existing interface (sim/runtime_core.hpp), which
// keeps the fault-free hot path at a single null test and means iteration
// over neighbors(v) — the weight-ordered scan the paper's algorithms build
// on — never pays a per-entry filter.  At an epoch boundary compact()
// streams the surviving edges (plus the delta) through the GraphBuilder
// path into a fresh arena with the original weights, and the caller
// rebuilds views/engines on it — the protocol-recovery flow of
// scenario::run (see ARCHITECTURE.md, "Dynamic topology & fault
// injection").
//
// Determinism: all overlay mutation happens single-threaded at slot
// boundaries (sim/fault.hpp applies events between rounds, after the shard
// barrier), so within a round the overlay is read-only shared state and the
// serial/parallel bit-identity argument carries over unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mmn {

class EpochOverlay {
 public:
  /// Binds to a base arena; everything starts alive.  `base` must outlive
  /// the overlay.
  explicit EpochOverlay(const Graph& base);

  const Graph& base() const { return *base_; }

  /// Liveness of a base-arena link.  O(1) bit test; hot path — called per
  /// send when faults are installed.
  bool link_alive(EdgeId e) const {
    return ((dead_[e >> 6] >> (e & 63)) & 1u) == 0;
  }

  bool node_alive(NodeId v) const { return down_[v] == 0; }

  /// Idempotent state flips; counters track the current dead sets.
  void kill_link(EdgeId e);
  void revive_link(EdgeId e);
  void crash_node(NodeId v);
  void recover_node(NodeId v);

  std::uint32_t links_down() const { return links_down_; }
  std::uint32_t nodes_down() const { return nodes_down_; }

  /// Compactions performed so far.
  std::uint64_t epoch() const { return epoch_; }

  /// Files a link in the delta adjacency.  Delta links are not addressable
  /// mid-epoch (they have no canonical slot in the base arena); they become
  /// real edges of the fresh arena at the next compact().  The weight must
  /// be distinct from every surviving base weight (weights > base m are
  /// always safe).
  void add_link(NodeId u, NodeId v, Weight w);

  std::size_t delta_links() const { return delta_.size(); }

  struct Compaction {
    Graph graph;  ///< the fresh arena: surviving base edges, then the delta
    /// base EdgeId -> compacted EdgeId, kNoEdge for edges that died.  Delta
    /// links take the ids after the survivors, in add_link order.
    std::vector<EdgeId> old_to_new;
  };

  /// Epoch boundary: streams every live base edge (tombstone clear, both
  /// endpoints alive) plus the delta through GraphBuilder into a fresh
  /// arena, preserving base weights.  Crashed nodes stay in the node set as
  /// isolated vertices, so node ids are stable across epochs.  Consumes the
  /// delta and bumps epoch(); the overlay itself stays bound to the old
  /// base — a caller that keeps injecting faults builds a fresh overlay on
  /// the returned graph.
  Compaction compact();

  /// FNV-1a fold of the overlay state: the tombstone set, the down set, the
  /// delta, and the epoch count.  Depends only on which faults applied, not
  /// on when the caller compacts — recovery digests fold this so a
  /// re-converged result is pinned together with the topology it ran on.
  std::uint64_t digest_word() const;

 private:
  const Graph* base_;
  std::vector<std::uint64_t> dead_;  ///< tombstone bitset over base edges
  std::vector<char> down_;           ///< per-node crashed flag
  std::vector<Edge> delta_;          ///< links added since last compaction
  std::uint32_t links_down_ = 0;
  std::uint32_t nodes_down_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace mmn
