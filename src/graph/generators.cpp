#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

std::uint64_t pair_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

NodeId isqrt_floor(std::uint64_t x) {
  auto r = static_cast<NodeId>(std::sqrt(static_cast<double>(x)));
  while (static_cast<std::uint64_t>(r) * r > x) --r;
  while (static_cast<std::uint64_t>(r + 1) * (r + 1) <= x) ++r;
  return r;
}

}  // namespace

Graph random_tree(NodeId n, std::uint64_t seed, GraphWindow window) {
  MMN_REQUIRE(n >= 1, "random_tree requires n >= 1");
  Rng rng(seed);
  GraphBuilder b(n, n - 1);
  if (window.active()) b.restrict_window(window.lo, window.hi);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(static_cast<NodeId>(rng.next_below(v)), v);
  }
  return std::move(b).finish_permuted(rng);
}

Graph random_connected(NodeId n, std::uint32_t extra_edges, std::uint64_t seed,
                       GraphWindow window) {
  MMN_REQUIRE(n >= 1, "random_connected requires n >= 1");
  const std::uint64_t max_extra =
      static_cast<std::uint64_t>(n) * (n - 1) / 2 - (n - 1);
  MMN_REQUIRE(extra_edges <= max_extra, "too many extra edges for simple graph");
  Rng rng(seed);
  GraphBuilder b(n, n - 1 + extra_edges);
  if (window.active()) b.restrict_window(window.lo, window.hi);
  std::unordered_set<std::uint64_t> used;
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.next_below(v));
    b.add_edge(parent, v);
    used.insert(pair_key(parent, v));
  }
  std::uint32_t added = 0;
  while (added < extra_edges) {
    const auto a = static_cast<NodeId>(rng.next_below(n));
    const auto c = static_cast<NodeId>(rng.next_below(n));
    if (a == c) continue;
    if (!used.insert(pair_key(a, c)).second) continue;
    b.add_edge(a, c);
    ++added;
  }
  return std::move(b).finish_permuted(rng);
}

Graph grid(NodeId rows, NodeId cols, std::uint64_t seed, GraphWindow window) {
  MMN_REQUIRE(rows >= 1 && cols >= 1, "grid requires positive dimensions");
  Rng rng(seed);
  const NodeId n = rows * cols;
  GraphBuilder b(n, static_cast<std::size_t>(rows) * (cols - 1) +
                        static_cast<std::size_t>(rows - 1) * cols);
  if (window.active()) b.restrict_window(window.lo, window.hi);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).finish_permuted(rng);
}

Graph ring(NodeId n, std::uint64_t seed, GraphWindow window) {
  MMN_REQUIRE(n >= 3, "ring requires n >= 3");
  Rng rng(seed);
  GraphBuilder b(n, n);
  if (window.active()) b.restrict_window(window.lo, window.hi);
  for (NodeId v = 0; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return std::move(b).finish_permuted(rng);
}

Graph path(NodeId n, std::uint64_t seed, GraphWindow window) {
  MMN_REQUIRE(n >= 1, "path requires n >= 1");
  Rng rng(seed);
  GraphBuilder b(n, n - 1);
  if (window.active()) b.restrict_window(window.lo, window.hi);
  for (NodeId v = 0; v + 1 < n; ++v) {
    b.add_edge(v, static_cast<NodeId>(v + 1));
  }
  return std::move(b).finish_permuted(rng);
}

Graph complete(NodeId n, std::uint64_t seed, GraphWindow window) {
  MMN_REQUIRE(n >= 2, "complete requires n >= 2");
  Rng rng(seed);
  GraphBuilder b(n, static_cast<std::size_t>(n) * (n - 1) / 2);
  if (window.active()) b.restrict_window(window.lo, window.hi);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return std::move(b).finish_permuted(rng);
}

Graph hypercube(int dim, std::uint64_t seed, GraphWindow window) {
  MMN_REQUIRE(dim >= 1 && dim <= 20, "hypercube dimension must be in [1, 20]");
  Rng rng(seed);
  const NodeId n = NodeId{1} << dim;
  GraphBuilder b(n, static_cast<std::size_t>(n) * dim / 2);
  if (window.active()) b.restrict_window(window.lo, window.hi);
  for (NodeId v = 0; v < n; ++v) {
    for (int bit = 0; bit < dim; ++bit) {
      const NodeId u = v ^ (NodeId{1} << bit);
      if (v < u) b.add_edge(v, u);
    }
  }
  return std::move(b).finish_permuted(rng);
}

Graph ray_graph(NodeId rays, NodeId ray_len, std::uint64_t seed,
                GraphWindow window) {
  MMN_REQUIRE(rays >= 1 && ray_len >= 1, "ray_graph requires rays, ray_len >= 1");
  Rng rng(seed);
  const NodeId n = 1 + rays * ray_len;
  GraphBuilder b(n, n - 1);
  if (window.active()) b.restrict_window(window.lo, window.hi);
  NodeId next = 1;
  for (NodeId r = 0; r < rays; ++r) {
    NodeId prev = 0;  // the center
    for (NodeId k = 0; k < ray_len; ++k) {
      b.add_edge(prev, next);
      prev = next++;
    }
  }
  return std::move(b).finish_permuted(rng);
}

// ---- TopologySpec ----------------------------------------------------------

const char* topology_name(TopoKind kind) {
  switch (kind) {
    case TopoKind::kRandom:
      return "random";
    case TopoKind::kTree:
      return "tree";
    case TopoKind::kGrid:
      return "grid";
    case TopoKind::kRing:
      return "ring";
    case TopoKind::kPath:
      return "path";
    case TopoKind::kComplete:
      return "complete";
    case TopoKind::kHypercube:
      return "hypercube";
    case TopoKind::kRay:
      return "ray";
    case TopoKind::kCliqueImplicit:
      return "iclique";
    case TopoKind::kRingImplicit:
      return "iring";
    case TopoKind::kGridImplicit:
      return "igrid";
    case TopoKind::kHypercubeImplicit:
      return "icube";
  }
  return "?";
}

NodeId ray_count_for(NodeId n) {
  MMN_REQUIRE(n >= 2, "ray topology requires n >= 2");
  const NodeId total = n - 1;
  NodeId best = 1;
  for (NodeId d = 1; static_cast<std::uint64_t>(d) * d <= total; ++d) {
    if (total % d == 0) best = d;
  }
  return best;
}

bool topology_valid_n(TopoKind kind, NodeId n) {
  switch (kind) {
    case TopoKind::kRandom:
    case TopoKind::kTree:
    case TopoKind::kPath:
      return n >= 1;
    case TopoKind::kGrid:
    case TopoKind::kGridImplicit: {
      if (n < 4) return false;
      const NodeId s = isqrt_floor(n);
      return static_cast<std::uint64_t>(s) * s == n;
    }
    case TopoKind::kRing:
    case TopoKind::kRingImplicit:
      return n >= 3;
    case TopoKind::kComplete:
      return n >= 2;
    case TopoKind::kCliqueImplicit:
      // m = n(n-1)/2 must fit the 32-bit edge-id/weight space.
      return n >= 2 && static_cast<std::uint64_t>(n) * (n - 1) / 2 <=
                           0xFFFFFFFFull;
    case TopoKind::kHypercube:
    case TopoKind::kHypercubeImplicit:
      return n >= 2 && n <= (NodeId{1} << 20) && (n & (n - 1)) == 0;
    case TopoKind::kRay:
      return n >= 2;
  }
  return false;
}

NodeId topology_round_n(TopoKind kind, NodeId n) {
  switch (kind) {
    case TopoKind::kRandom:
    case TopoKind::kTree:
    case TopoKind::kPath:
      return std::max<NodeId>(1, n);
    case TopoKind::kGrid:
    case TopoKind::kGridImplicit: {
      const auto side = static_cast<NodeId>(std::max(
          2.0, std::round(std::sqrt(static_cast<double>(n)))));
      return side * side;
    }
    case TopoKind::kRing:
    case TopoKind::kRingImplicit:
      return std::max<NodeId>(3, n);
    case TopoKind::kComplete:
      return std::max<NodeId>(2, n);
    case TopoKind::kCliqueImplicit:
      // Largest n with n(n-1)/2 <= 2^32 - 1 (the 32-bit edge-id space).
      return std::min<NodeId>(std::max<NodeId>(2, n), 92682);
    case TopoKind::kHypercube:
    case TopoKind::kHypercubeImplicit: {
      std::uint32_t dim = 1;
      while (dim < 20 && (NodeId{1} << (dim + 1)) <= std::max<NodeId>(2, n)) {
        ++dim;
      }
      return NodeId{1} << dim;
    }
    case TopoKind::kRay:
      return std::max<NodeId>(2, n);
  }
  return n;
}

Graph build_topology(const TopologySpec& spec) {
  return build_topology_window(spec, GraphWindow{});
}

Graph build_topology_window(const TopologySpec& spec, GraphWindow window) {
  MMN_REQUIRE(topology_valid_n(spec.kind, spec.n),
              "topology kind does not admit this n (round it first)");
  const NodeId n = spec.n;
  switch (spec.kind) {
    case TopoKind::kRandom: {
      const std::uint64_t max_extra =
          static_cast<std::uint64_t>(n) * (n - 1) / 2 - (n - 1);
      const auto extra = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(2ull * n, max_extra));
      return random_connected(n, extra, spec.seed, window);
    }
    case TopoKind::kTree:
      return random_tree(n, spec.seed, window);
    case TopoKind::kGrid: {
      const NodeId side = isqrt_floor(n);
      return grid(side, side, spec.seed, window);
    }
    case TopoKind::kRing:
      return ring(n, spec.seed, window);
    case TopoKind::kPath:
      return path(n, spec.seed, window);
    case TopoKind::kComplete:
      return complete(n, spec.seed, window);
    case TopoKind::kHypercube: {
      int dim = 0;
      while ((NodeId{1} << dim) < n) ++dim;
      return hypercube(dim, spec.seed, window);
    }
    case TopoKind::kRay: {
      const NodeId rays = ray_count_for(n);
      return ray_graph(rays, (n - 1) / rays, spec.seed, window);
    }
    case TopoKind::kCliqueImplicit:
      return Graph::implicit_complete(n);
    case TopoKind::kRingImplicit:
      return Graph::implicit_ring(n);
    case TopoKind::kGridImplicit: {
      const NodeId side = isqrt_floor(n);
      return Graph::implicit_grid(side, side);
    }
    case TopoKind::kHypercubeImplicit: {
      int dim = 0;
      while ((NodeId{1} << dim) < n) ++dim;
      return Graph::implicit_hypercube(dim);
    }
  }
  MMN_ASSERT(false, "unknown topology kind");
  return random_tree(1, 0);  // unreachable
}

}  // namespace mmn
