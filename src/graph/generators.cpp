#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

/// Assigns a random permutation of 1..edges.size() as weights.
void assign_weights(std::vector<Edge>& edges, Rng& rng) {
  std::vector<Weight> w(edges.size());
  std::iota(w.begin(), w.end(), Weight{1});
  for (std::size_t i = w.size(); i > 1; --i) {
    std::swap(w[i - 1], w[rng.next_below(i)]);
  }
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i].weight = w[i];
}

Graph finish(NodeId n, std::vector<Edge> edges, Rng& rng) {
  assign_weights(edges, rng);
  return Graph(n, std::move(edges));
}

std::uint64_t pair_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

}  // namespace

Graph random_tree(NodeId n, std::uint64_t seed) {
  MMN_REQUIRE(n >= 1, "random_tree requires n >= 1");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.next_below(v));
    edges.push_back({parent, v, 0});
  }
  return finish(n, std::move(edges), rng);
}

Graph random_connected(NodeId n, std::uint32_t extra_edges, std::uint64_t seed) {
  MMN_REQUIRE(n >= 1, "random_connected requires n >= 1");
  const std::uint64_t max_extra =
      static_cast<std::uint64_t>(n) * (n - 1) / 2 - (n - 1);
  MMN_REQUIRE(extra_edges <= max_extra, "too many extra edges for simple graph");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n - 1 + extra_edges);
  std::unordered_set<std::uint64_t> used;
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.next_below(v));
    edges.push_back({parent, v, 0});
    used.insert(pair_key(parent, v));
  }
  std::uint32_t added = 0;
  while (added < extra_edges) {
    const auto a = static_cast<NodeId>(rng.next_below(n));
    const auto b = static_cast<NodeId>(rng.next_below(n));
    if (a == b) continue;
    if (!used.insert(pair_key(a, b)).second) continue;
    edges.push_back({a, b, 0});
    ++added;
  }
  return finish(n, std::move(edges), rng);
}

Graph grid(NodeId rows, NodeId cols, std::uint64_t seed) {
  MMN_REQUIRE(rows >= 1 && cols >= 1, "grid requires positive dimensions");
  Rng rng(seed);
  const NodeId n = rows * cols;
  std::vector<Edge> edges;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1), 0});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c), 0});
    }
  }
  return finish(n, std::move(edges), rng);
}

Graph ring(NodeId n, std::uint64_t seed) {
  MMN_REQUIRE(n >= 3, "ring requires n >= 3");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, static_cast<NodeId>((v + 1) % n), 0});
  return finish(n, std::move(edges), rng);
}

Graph path(NodeId n, std::uint64_t seed) {
  MMN_REQUIRE(n >= 1, "path requires n >= 1");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<NodeId>(v + 1), 0});
  return finish(n, std::move(edges), rng);
}

Graph complete(NodeId n, std::uint64_t seed) {
  MMN_REQUIRE(n >= 2, "complete requires n >= 2");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back({u, v, 0});
  }
  return finish(n, std::move(edges), rng);
}

Graph hypercube(int dim, std::uint64_t seed) {
  MMN_REQUIRE(dim >= 1 && dim <= 20, "hypercube dimension must be in [1, 20]");
  Rng rng(seed);
  const NodeId n = NodeId{1} << dim;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (NodeId v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const NodeId u = v ^ (NodeId{1} << b);
      if (v < u) edges.push_back({v, u, 0});
    }
  }
  return finish(n, std::move(edges), rng);
}

Graph ray_graph(NodeId rays, NodeId ray_len, std::uint64_t seed) {
  MMN_REQUIRE(rays >= 1 && ray_len >= 1, "ray_graph requires rays, ray_len >= 1");
  Rng rng(seed);
  const NodeId n = 1 + rays * ray_len;
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  NodeId next = 1;
  for (NodeId r = 0; r < rays; ++r) {
    NodeId prev = 0;  // the center
    for (NodeId k = 0; k < ray_len; ++k) {
      edges.push_back({prev, next, 0});
      prev = next++;
    }
  }
  return finish(n, std::move(edges), rng);
}

}  // namespace mmn
