#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "graph/dsu.hpp"
#include "support/check.hpp"

namespace mmn {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  return bfs_distances(g, std::vector<NodeId>{source});
}

std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         const std::vector<NodeId>& sources) {
  MMN_REQUIRE(!sources.empty(), "bfs needs at least one source");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> queue;
  for (NodeId s : sources) {
    MMN_REQUIRE(s < g.num_nodes(), "bfs source out of range");
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push(s);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (const Neighbor& e : g.neighbors(v)) {
      if (dist[e.to] == kUnreachable) {
        dist[e.to] = dist[v] + 1;
        queue.push(e.to);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  const auto dist = bfs_distances(g, NodeId{0});
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t diameter(const Graph& g) {
  MMN_REQUIRE(is_connected(g), "diameter requires a connected graph");
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = bfs_distances(g, v);
    best = std::max(best, *std::max_element(dist.begin(), dist.end()));
  }
  return best;
}

MstResult kruskal_mst(const Graph& g) {
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&g](EdgeId a, EdgeId b) {
    return g.edge(a).weight < g.edge(b).weight;
  });
  Dsu dsu(g.num_nodes());
  MstResult result;
  for (EdgeId e : order) {
    const Edge ed = g.edge(e);
    if (dsu.unite(ed.u, ed.v)) {
      result.edges.push_back(e);
      result.total_weight += ed.weight;
    }
  }
  MMN_REQUIRE(result.edges.size() + 1 == g.num_nodes(),
              "kruskal_mst requires a connected graph");
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

MstResult prim_mst(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> in_tree(n, false);
  using Item = std::pair<Weight, EdgeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  MstResult result;

  auto add_node = [&](NodeId v) {
    in_tree[v] = true;
    for (const Neighbor& e : g.neighbors(v)) {
      if (!in_tree[e.to]) frontier.emplace(e.weight, e.edge);
    }
  };
  add_node(0);
  while (result.edges.size() + 1 < n) {
    MMN_REQUIRE(!frontier.empty(), "prim_mst requires a connected graph");
    const auto [w, e] = frontier.top();
    frontier.pop();
    const Edge ed = g.edge(e);
    const NodeId fresh = !in_tree[ed.u] ? ed.u : (!in_tree[ed.v] ? ed.v : kNoNode);
    if (fresh == kNoNode) continue;  // both endpoints already inside
    result.edges.push_back(e);
    result.total_weight += w;
    add_node(fresh);
  }
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

bool mst_contains(const MstResult& mst, EdgeId e) {
  return std::binary_search(mst.edges.begin(), mst.edges.end(), e);
}

}  // namespace mmn
