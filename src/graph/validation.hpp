// Validation of spanning-forest partitions.
//
// Both partitioning algorithms output, per node, a parent pointer (self for
// roots) forming a rooted spanning forest.  These helpers check the paper's
// structural guarantees — spanning, acyclic, tree edges real graph edges,
// fragment size/radius bounds, and (for the deterministic partition) that
// every tree edge belongs to the unique MST.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace mmn {

/// A rooted spanning forest described by parent pointers.
struct Forest {
  /// parent[v] == v for roots; otherwise parent[v] is v's tree parent.
  std::vector<NodeId> parent;
  /// parent_edge[v] == kNoEdge for roots; otherwise the graph edge to parent.
  std::vector<EdgeId> parent_edge;
};

struct ForestStats {
  std::size_t num_trees = 0;
  std::size_t min_size = 0;
  std::size_t max_size = 0;
  std::uint32_t max_radius = 0;  ///< max over trees of root eccentricity
};

/// Validates structure (parents consistent, acyclic, edges real, spanning)
/// and computes statistics.  Aborts via MMN_ASSERT on structural violations,
/// reporting `context` in the message.
ForestStats analyze_forest(const Graph& g, const Forest& forest,
                           const std::string& context);

/// True if every forest edge belongs to `mst`.
bool forest_within_mst(const Forest& forest, const MstResult& mst);

/// Roots of the forest in increasing node id order.
std::vector<NodeId> forest_roots(const Forest& forest);

/// The id of the root of v's tree (follows parent pointers).
NodeId forest_root_of(const Forest& forest, NodeId v);

}  // namespace mmn
