#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

constexpr std::uint64_t kMaxWeight32 = 0xFFFFFFFFull;

/// Largest a with pairs_before(a) <= id, where pairs_before(a) counts the
/// clique edges whose smaller endpoint is < a.
std::uint64_t clique_pairs_before(std::uint64_t a, std::uint64_t n) {
  return a * (n - 1) - a * (a - 1) / 2;
}

/// Drops bit b from v: the rank of v among the hypercube nodes whose bit b
/// is clear.
std::uint32_t squeeze_bit(std::uint32_t v, std::uint32_t b) {
  const std::uint32_t low = v & ((std::uint32_t{1} << b) - 1);
  return low | ((v >> (b + 1)) << b);
}

std::uint32_t unsqueeze_bit(std::uint32_t k, std::uint32_t b) {
  const std::uint32_t low = k & ((std::uint32_t{1} << b) - 1);
  return low | ((k >> b) << (b + 1));
}

}  // namespace

// ---- GraphBuilder ----------------------------------------------------------

GraphBuilder::GraphBuilder(NodeId n, std::size_t expected_edges) : n_(n) {
  MMN_REQUIRE(n >= 1, "graph needs at least one node");
  eu_.reserve(expected_edges);
  ev_.reserve(expected_edges);
}

void GraphBuilder::restrict_window(NodeId lo, NodeId hi) {
  MMN_REQUIRE(lo < hi && hi <= n_, "window must be a non-empty range in [0, n)");
  MMN_REQUIRE(total_edges_ == 0, "restrict_window must precede add_edge");
  win_lo_ = lo;
  win_hi_ = hi;
}

EdgeId GraphBuilder::add_edge(NodeId u, NodeId v) {
  MMN_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  MMN_REQUIRE(u != v, "self loops are not allowed");
  const EdgeId id = total_edges_++;
  if (win_hi_ > win_lo_) {
    const bool ou = u >= win_lo_ && u < win_hi_;
    const bool ov = v >= win_lo_ && v < win_hi_;
    if (!ou && !ov) return id;  // outside the shard and its frontier
    eid_.push_back(id);
  }
  eu_.push_back(u);
  ev_.push_back(v);
  return id;
}

Graph GraphBuilder::finish_permuted(Rng& rng) && {
  // The weight permutation of the retired assign_weights helper, drawn in
  // the identical rng order so every seeded topology is bit-identical to
  // the pre-CSR build (golden digests pin this).  Window mode replays the
  // FULL permutation — the draw sequence (and hence every retained edge's
  // weight) must not depend on which window asked.
  std::vector<Weight> w(total_edges_);
  std::iota(w.begin(), w.end(), Weight{1});
  for (std::size_t i = w.size(); i > 1; --i) {
    std::swap(w[i - 1], w[rng.next_below(i)]);
  }
  return std::move(*this).finish_with_weights(w);
}

Graph GraphBuilder::finish_with_weights(const std::vector<Weight>& weights) && {
  MMN_REQUIRE(weights.size() == total_edges_,
              "one weight per edge required");
  const bool windowed = win_hi_ > win_lo_;
  const auto m = total_edges_;
  const auto kept = static_cast<EdgeId>(eu_.size());
  const auto owned = [this](NodeId v) { return v >= win_lo_ && v < win_hi_; };
  Graph g;
  g.kind_ = Graph::Kind::kExplicit;
  g.n_ = n_;
  g.m_ = m;

  // Degree count -> offsets -> scatter, then one weight sort per row.  In
  // window mode only owned endpoints get row entries; unowned nodes stay
  // empty plateaus in the offset table, so owned rows land at exactly the
  // neighbors, global edge ids, and weights of the full build.
  std::vector<std::uint32_t> cursor(n_, 0);
  for (EdgeId i = 0; i < kept; ++i) {
    if (!windowed || owned(eu_[i])) ++cursor[eu_[i]];
    if (!windowed || owned(ev_[i])) ++cursor[ev_[i]];
  }
  g.adj_offset_.assign(n_ + 1, 0);
  for (NodeId v = 0; v < n_; ++v) {
    g.adj_offset_[v + 1] = g.adj_offset_[v] + cursor[v];
    cursor[v] = g.adj_offset_[v];
  }
  g.adj_.resize(g.adj_offset_[n_]);
  for (EdgeId i = 0; i < kept; ++i) {
    const EdgeId e = windowed ? eid_[i] : i;
    MMN_REQUIRE(weights[e] >= 1 && weights[e] <= kMaxWeight32,
                "link weights must fit 32 bits (1..2^32-1)");
    const auto w = static_cast<std::uint32_t>(weights[e]);
    if (!windowed || owned(eu_[i])) g.adj_[cursor[eu_[i]]++] = Neighbor{ev_[i], e, w};
    if (!windowed || owned(ev_[i])) g.adj_[cursor[ev_[i]]++] = Neighbor{eu_[i], e, w};
  }
  for (NodeId v = 0; v < n_; ++v) {
    std::sort(g.adj_.begin() + g.adj_offset_[v],
              g.adj_.begin() + g.adj_offset_[v + 1],
              [](const Neighbor& a, const Neighbor& b) {
                return a.weight < b.weight;
              });
  }
  // The shared edge slab: each edge's slot in its canonical endpoint's (now
  // weight-sorted) row.  Full build: canonical = first-emitted endpoint.
  // Window mode: canonical = an OWNED endpoint (the first-emitted one when
  // both are owned, so fully-interior edges agree with the full build);
  // non-retained edges keep the kNoEdgeSlot sentinel.
  if (!windowed) {
    g.edge_pos_.resize(m);
    for (NodeId v = 0; v < n_; ++v) {
      for (std::uint32_t p = g.adj_offset_[v]; p < g.adj_offset_[v + 1]; ++p) {
        const EdgeId e = g.adj_[p].edge;
        if (eu_[e] == v) g.edge_pos_[e] = p;
      }
    }
  } else {
    g.edge_pos_.assign(m, kNoEdgeSlot);
    std::vector<NodeId> canon(m, kNoNode);
    for (EdgeId i = 0; i < kept; ++i) {
      canon[eid_[i]] = owned(eu_[i]) ? eu_[i] : ev_[i];
    }
    for (NodeId v = win_lo_; v < win_hi_; ++v) {
      for (std::uint32_t p = g.adj_offset_[v]; p < g.adj_offset_[v + 1]; ++p) {
        const EdgeId e = g.adj_[p].edge;
        if (canon[e] == v) g.edge_pos_[e] = p;
      }
    }
  }
  return g;
}

// ---- Graph: explicit construction ------------------------------------------

Graph::Graph(NodeId n, std::vector<Edge> edges) {
  GraphBuilder builder(n, edges.size());
  std::unordered_set<Weight> weights;
  std::unordered_set<std::uint64_t> endpoint_pairs;
  weights.reserve(edges.size());
  endpoint_pairs.reserve(edges.size());
  std::vector<Weight> w;
  w.reserve(edges.size());
  for (const Edge& e : edges) {
    MMN_REQUIRE(e.weight >= 1 && e.weight <= kMaxWeight32,
                "link weights must fit 32 bits (1..2^32-1)");
    MMN_REQUIRE(weights.insert(e.weight).second,
                "link weights must be distinct");
    builder.add_edge(e.u, e.v);  // checks range and self loops
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(e.u, e.v)) << 32) |
        std::max(e.u, e.v);
    MMN_REQUIRE(endpoint_pairs.insert(key).second,
                "parallel edges are not allowed");
    w.push_back(e.weight);
  }
  *this = std::move(builder).finish_with_weights(w);
}

// ---- Graph: implicit dense variants ----------------------------------------

Graph Graph::implicit_complete(NodeId n) {
  MMN_REQUIRE(n >= 2, "complete requires n >= 2");
  const std::uint64_t m = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  MMN_REQUIRE(m <= kMaxWeight32, "implicit clique needs m <= 2^32 - 1 (n <= 92682)");
  Graph g;
  g.kind_ = Kind::kComplete;
  g.n_ = n;
  g.m_ = static_cast<EdgeId>(m);
  return g;
}

Graph Graph::implicit_ring(NodeId n) {
  MMN_REQUIRE(n >= 3, "ring requires n >= 3");
  Graph g;
  g.kind_ = Kind::kRing;
  g.n_ = n;
  g.m_ = n;
  return g;
}

Graph Graph::implicit_grid(NodeId rows, NodeId cols) {
  MMN_REQUIRE(rows >= 1 && cols >= 1, "grid requires positive dimensions");
  const std::uint64_t n = static_cast<std::uint64_t>(rows) * cols;
  MMN_REQUIRE(n >= 2 && n <= kMaxWeight32, "grid size out of range");
  Graph g;
  g.kind_ = Kind::kGrid;
  g.n_ = static_cast<NodeId>(n);
  g.rows_ = rows;
  g.cols_ = cols;
  g.m_ = static_cast<EdgeId>(static_cast<std::uint64_t>(rows) * (cols - 1) +
                             static_cast<std::uint64_t>(rows - 1) * cols);
  return g;
}

Graph Graph::implicit_hypercube(int dim) {
  MMN_REQUIRE(dim >= 1 && dim <= 20, "hypercube dimension must be in [1, 20]");
  Graph g;
  g.kind_ = Kind::kHypercube;
  g.n_ = NodeId{1} << dim;
  g.dim_ = static_cast<std::uint32_t>(dim);
  g.m_ = static_cast<EdgeId>((static_cast<std::uint64_t>(g.n_) * dim) / 2);
  return g;
}

// ---- Graph: accessors ------------------------------------------------------

std::uint32_t Graph::degree(NodeId v) const {
  MMN_REQUIRE(v < n_, "node id out of range");
  switch (kind_) {
    case Kind::kExplicit:
      return adj_offset_[v + 1] - adj_offset_[v];
    case Kind::kComplete:
      return n_ - 1;
    case Kind::kRing:
      return 2;
    case Kind::kGrid: {
      const std::uint32_t r = v / cols_;
      const std::uint32_t c = v % cols_;
      return (c > 0) + (c + 1 < cols_) + (r > 0) + (r + 1 < rows_);
    }
    case Kind::kHypercube:
      return dim_;
  }
  return 0;  // unreachable
}

NeighborRange Graph::neighbors(NodeId v) const {
  MMN_REQUIRE(v < n_, "node id out of range");
  if (kind_ == Kind::kExplicit) {
    return NeighborRange(adj_.data() + adj_offset_[v],
                         adj_offset_[v + 1] - adj_offset_[v]);
  }
  return NeighborRange(this, v, degree(v));
}

/// The implicit families enumerate each node's links in ascending canonical
/// edge id, and weight(e) = e + 1, so ascending enumeration IS ascending
/// weight — the invariant every protocol relies on, at O(1) per entry.
Neighbor Graph::implicit_entry(NodeId v, std::uint32_t i) const {
  switch (kind_) {
    case Kind::kComplete: {
      // Entry i of v is neighbor `to` in ascending id (skip v itself);
      // weights order pairs by (min, max), which per node is exactly
      // ascending neighbor id.
      const NodeId to = i < v ? i : i + 1;
      const std::uint64_t a = std::min(v, to);
      const std::uint64_t b = std::max(v, to);
      const auto e = static_cast<EdgeId>(clique_pairs_before(a, n_) + b - a - 1);
      return Neighbor{to, e, e + 1};
    }
    case Kind::kRing: {
      // Edge v joins v and v+1 (edge n-1 closes the ring); each node's two
      // incident edge ids are ascending in this enumeration.
      if (v == 0) {
        return i == 0 ? Neighbor{1, 0, 1}
                      : Neighbor{n_ - 1, n_ - 1, n_};
      }
      if (i == 0) return Neighbor{v - 1, v - 1, v};
      const NodeId to = v + 1 == n_ ? 0 : v + 1;
      return Neighbor{to, v, v + 1};
    }
    case Kind::kGrid: {
      // Horizontal edges first (id = r*(cols-1) + c for (r,c)-(r,c+1)),
      // then vertical (id = H + r*cols + c for (r,c)-(r+1,c)); per node the
      // order left, right, up, down is ascending id.
      const std::uint32_t r = v / cols_;
      const std::uint32_t c = v % cols_;
      const std::uint32_t h = rows_ * (cols_ - 1);
      std::uint32_t k = i;
      if (c > 0 && k-- == 0) {
        const EdgeId e = r * (cols_ - 1) + (c - 1);
        return Neighbor{v - 1, e, e + 1};
      }
      if (c + 1 < cols_ && k-- == 0) {
        const EdgeId e = r * (cols_ - 1) + c;
        return Neighbor{v + 1, e, e + 1};
      }
      if (r > 0 && k-- == 0) {
        const EdgeId e = h + (r - 1) * cols_ + c;
        return Neighbor{v - cols_, e, e + 1};
      }
      const EdgeId e = h + r * cols_ + c;
      return Neighbor{v + cols_, e, e + 1};
    }
    case Kind::kHypercube: {
      // Edge (u, u | bit b) has id b*(n/2) + rank of u among clear-bit-b
      // nodes; per node ascending bit index is ascending id.
      const auto b = static_cast<std::uint32_t>(i);
      const NodeId to = v ^ (NodeId{1} << b);
      const NodeId u = std::min(v, to);
      const EdgeId e = b * (n_ / 2) + squeeze_bit(u, b);
      return Neighbor{to, e, e + 1};
    }
    case Kind::kExplicit:
      break;
  }
  MMN_ASSERT(false, "implicit_entry on an explicit graph");
  return Neighbor{};
}

Edge Graph::edge(EdgeId e) const {
  MMN_REQUIRE(e < m_, "edge id out of range");
  switch (kind_) {
    case Kind::kExplicit: {
      const std::uint32_t p = edge_pos_[e];
      MMN_REQUIRE(p != kNoEdgeSlot,
                  "edge() on an edge a windowed build did not retain");
      // The owning row: the unique v with adj_offset_[v] <= p.  Empty
      // plateau rows (windowed builds) are transparent to the upper_bound:
      // their offsets equal the owning row's start and are never > p.
      const auto it = std::upper_bound(adj_offset_.begin(), adj_offset_.end(),
                                       p);
      const auto u = static_cast<NodeId>(it - adj_offset_.begin() - 1);
      return Edge{u, adj_[p].to, adj_[p].weight};
    }
    case Kind::kComplete: {
      // Invert the triangular pair index by binary search on the row start.
      std::uint64_t lo = 0, hi = n_ - 1;
      while (lo + 1 < hi) {
        const std::uint64_t mid = (lo + hi) / 2;
        if (clique_pairs_before(mid, n_) <= e) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      const auto a = static_cast<NodeId>(lo);
      const auto b =
          static_cast<NodeId>(a + 1 + (e - clique_pairs_before(a, n_)));
      return Edge{a, b, static_cast<Weight>(e) + 1};
    }
    case Kind::kRing:
      return Edge{e, e + 1 == n_ ? 0 : e + 1, static_cast<Weight>(e) + 1};
    case Kind::kGrid: {
      const std::uint32_t h = rows_ * (cols_ - 1);
      if (e < h) {
        const std::uint32_t r = e / (cols_ - 1);
        const std::uint32_t c = e % (cols_ - 1);
        const NodeId u = r * cols_ + c;
        return Edge{u, u + 1, static_cast<Weight>(e) + 1};
      }
      const std::uint32_t k = e - h;
      const NodeId u = (k / cols_) * cols_ + k % cols_;
      return Edge{u, u + cols_, static_cast<Weight>(e) + 1};
    }
    case Kind::kHypercube: {
      const std::uint32_t b = e / (n_ / 2);
      const NodeId u = unsqueeze_bit(e % (n_ / 2), b);
      return Edge{u, u | (NodeId{1} << b), static_cast<Weight>(e) + 1};
    }
  }
  return Edge{};  // unreachable
}

int Graph::link_slot(NodeId v, EdgeId e) const {
  if (v >= n_ || e >= m_) return -1;
  if (kind_ == Kind::kExplicit) {
    const std::uint32_t p = edge_pos_[e];
    if (p == kNoEdgeSlot) return -1;  // outside a windowed build
    const std::uint32_t first = adj_offset_[v];
    const std::uint32_t last = adj_offset_[v + 1];
    if (p >= first && p < last) return static_cast<int>(p - first);
    // v must be the non-canonical endpoint; its row holds the twin entry at
    // the same (distinct) weight — one binary search by weight finds it.
    if (adj_[p].to != v) return -1;
    const std::uint32_t w = adj_[p].weight;
    const Neighbor* row = adj_.data();
    std::uint32_t lo = first, hi = last;
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      if (row[mid].weight < w) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    MMN_DCHECK(lo < last && row[lo].edge == e,
               "edge slab and adjacency rows out of sync");
    return static_cast<int>(lo - first);
  }
  const Edge ed = edge(e);
  if (ed.u != v && ed.v != v) return -1;
  const NodeId to = ed.u == v ? ed.v : ed.u;
  switch (kind_) {
    case Kind::kComplete:
      return static_cast<int>(to < v ? to : to - 1);
    case Kind::kRing:
      if (v == 0) return e == 0 ? 0 : 1;
      return e == v ? 1 : 0;
    case Kind::kGrid: {
      // Disambiguate by edge orientation, not endpoint arithmetic: with
      // cols == 1 the down neighbor is v + 1 and would alias "right".
      const std::uint32_t r = v / cols_;
      const std::uint32_t c = v % cols_;
      const bool horizontal = e < rows_ * (cols_ - 1);
      int slot = 0;
      if (horizontal && to + 1 == v) return slot;  // left
      slot += c > 0;
      if (horizontal) return slot;  // right
      slot += c + 1 < cols_;
      if (to + cols_ == v) return slot;  // up
      slot += r > 0;
      return slot;  // down
    }
    case Kind::kHypercube:
      return static_cast<int>(e / (n_ / 2));
    case Kind::kExplicit:
      break;
  }
  return -1;  // unreachable
}

NodeId Graph::other_endpoint(EdgeId e, NodeId from) const {
  const Edge ed = edge(e);
  MMN_REQUIRE(ed.u == from || ed.v == from, "node is not an endpoint of edge");
  return ed.u == from ? ed.v : ed.u;
}

std::size_t Graph::topology_bytes() const {
  return sizeof(Graph) + adj_offset_.capacity() * sizeof(std::uint32_t) +
         adj_.capacity() * sizeof(Neighbor) +
         edge_pos_.capacity() * sizeof(std::uint32_t);
}

}  // namespace mmn
