#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/check.hpp"

namespace mmn {

Graph::Graph(NodeId n, std::vector<Edge> edges)
    : n_(n), edges_(std::move(edges)) {
  MMN_REQUIRE(n >= 1, "graph needs at least one node");
  std::unordered_set<Weight> weights;
  std::unordered_set<std::uint64_t> endpoint_pairs;
  weights.reserve(edges_.size());
  endpoint_pairs.reserve(edges_.size());
  for (const Edge& e : edges_) {
    MMN_REQUIRE(e.u < n_ && e.v < n_, "edge endpoint out of range");
    MMN_REQUIRE(e.u != e.v, "self loops are not allowed");
    MMN_REQUIRE(weights.insert(e.weight).second, "link weights must be distinct");
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(e.u, e.v)) << 32) |
        std::max(e.u, e.v);
    MMN_REQUIRE(endpoint_pairs.insert(key).second,
                "parallel edges are not allowed");
  }

  std::vector<std::uint32_t> deg(n_ + 1, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u + 1];
    ++deg[e.v + 1];
  }
  adj_offset_.assign(n_ + 1, 0);
  for (NodeId v = 0; v < n_; ++v) adj_offset_[v + 1] = adj_offset_[v] + deg[v + 1];
  adj_.resize(adj_offset_[n_]);

  std::vector<std::uint32_t> cursor(adj_offset_.begin(), adj_offset_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    adj_[cursor[e.u]++] = EdgeRef{e.v, id, e.weight};
    adj_[cursor[e.v]++] = EdgeRef{e.u, id, e.weight};
  }
  for (NodeId v = 0; v < n_; ++v) {
    std::sort(adj_.begin() + adj_offset_[v], adj_.begin() + adj_offset_[v + 1],
              [](const EdgeRef& a, const EdgeRef& b) { return a.weight < b.weight; });
  }
}

const Edge& Graph::edge(EdgeId e) const {
  MMN_REQUIRE(e < edges_.size(), "edge id out of range");
  return edges_[e];
}

std::span<const EdgeRef> Graph::neighbors(NodeId v) const {
  MMN_REQUIRE(v < n_, "node id out of range");
  return {adj_.data() + adj_offset_[v], adj_.data() + adj_offset_[v + 1]};
}

NodeId Graph::other_endpoint(EdgeId e, NodeId from) const {
  const Edge& ed = edge(e);
  MMN_REQUIRE(ed.u == from || ed.v == from, "node is not an endpoint of edge");
  return ed.u == from ? ed.v : ed.u;
}

}  // namespace mmn
