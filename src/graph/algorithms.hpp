// Centralized reference algorithms.
//
// These are the sequential ground truth the distributed algorithms are tested
// against: BFS distances, exact diameter, connectivity, and two independent
// MST constructions (Kruskal and Prim).  Distinct weights make the MST
// unique, so distributed results must match these edge sets exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mmn {

inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// BFS hop distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// BFS hop distances from multiple sources (minimum over sources).
std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         const std::vector<NodeId>& sources);

bool is_connected(const Graph& g);

/// Exact diameter via n BFS traversals; requires a connected graph.
std::uint32_t diameter(const Graph& g);

struct MstResult {
  std::vector<EdgeId> edges;  ///< sorted ascending by edge id
  Weight total_weight = 0;
};

/// Kruskal's algorithm; requires a connected graph.
MstResult kruskal_mst(const Graph& g);

/// Prim's algorithm; requires a connected graph.
MstResult prim_mst(const Graph& g);

/// True if edge `e` belongs to the (unique) MST given by `mst`.
bool mst_contains(const MstResult& mst, EdgeId e);

}  // namespace mmn
