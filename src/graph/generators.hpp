// Topology generators.
//
// All generators produce connected graphs with distinct pseudo-random link
// weights (a random permutation of 1..m), deterministically from a seed.
// The ray graph is the topology of the paper's multimedia lower bound
// (Theorem 2): a center from which vertex-disjoint paths ("rays") of length
// d/2 emanate, giving diameter d.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace mmn {

/// Random spanning tree on n nodes plus `extra_edges` distinct random chords.
Graph random_connected(NodeId n, std::uint32_t extra_edges, std::uint64_t seed);

/// Uniform random labelled tree (random attachment), n >= 1.
Graph random_tree(NodeId n, std::uint64_t seed);

/// rows x cols grid mesh.
Graph grid(NodeId rows, NodeId cols, std::uint64_t seed);

/// Cycle on n >= 3 nodes (diameter floor(n/2)).
Graph ring(NodeId n, std::uint64_t seed);

/// Simple path on n nodes (diameter n - 1).
Graph path(NodeId n, std::uint64_t seed);

/// Complete graph on n nodes.
Graph complete(NodeId n, std::uint64_t seed);

/// Hypercube of the given dimension (2^dim nodes) — the iPSC-style topology
/// the paper's introduction cites as a deployed multimedia system.
Graph hypercube(int dim, std::uint64_t seed);

/// Ray graph: one center with `rays` vertex-disjoint paths of `ray_len` nodes
/// each; n = 1 + rays * ray_len, diameter = 2 * ray_len.
Graph ray_graph(NodeId rays, NodeId ray_len, std::uint64_t seed);

}  // namespace mmn
