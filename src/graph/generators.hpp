// Topology generators and the TopologySpec every size-parameterized layer
// consumes.
//
// All explicit generators produce connected graphs with distinct
// pseudo-random link weights (a random permutation of 1..m),
// deterministically from a seed, streamed straight into the CSR arena via
// GraphBuilder (no intermediate edge list).  The ray graph is the topology
// of the paper's multimedia lower bound (Theorem 2): a center from which
// vertex-disjoint paths ("rays") of length d/2 emanate, giving diameter d.
//
// The dense families additionally come as implicit O(1)-storage variants
// (Graph::implicit_*) with the canonical weight labelling w(e) = e + 1 —
// use those for n where materializing ~n^2 clique rows is not an option.
//
// TopologySpec {kind, n, seed} names a topology at a size: the scenario
// registry, the sweep drivers, and the benches all build graphs through
// build_topology() so every workload is size-parameterized from one spec.
// Families with structural constraints (grids, hypercubes) only admit some
// n; topology_valid_n answers exactly, topology_round_n maps a nominal size
// to the nearest supported one (what the registry's default sweeps use).
// Callers that must not silently clamp (scenario_sweep --n) check
// topology_valid_n and refuse.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace mmn {

/// Random spanning tree on n nodes plus `extra_edges` distinct random chords.
///
/// Every explicit generator takes an optional GraphWindow: an active window
/// streams the same edge sequence and weight permutation but retains only
/// the window's shard + boundary frontier (see GraphBuilder), so a rank can
/// build its slice of a million-node topology without the full arena.
Graph random_connected(NodeId n, std::uint32_t extra_edges, std::uint64_t seed,
                       GraphWindow window = {});

/// Uniform random labelled tree (random attachment), n >= 1.
Graph random_tree(NodeId n, std::uint64_t seed, GraphWindow window = {});

/// rows x cols grid mesh.
Graph grid(NodeId rows, NodeId cols, std::uint64_t seed,
           GraphWindow window = {});

/// Cycle on n >= 3 nodes (diameter floor(n/2)).
Graph ring(NodeId n, std::uint64_t seed, GraphWindow window = {});

/// Simple path on n nodes (diameter n - 1).
Graph path(NodeId n, std::uint64_t seed, GraphWindow window = {});

/// Complete graph on n nodes.
Graph complete(NodeId n, std::uint64_t seed, GraphWindow window = {});

/// Hypercube of the given dimension (2^dim nodes) — the iPSC-style topology
/// the paper's introduction cites as a deployed multimedia system.
Graph hypercube(int dim, std::uint64_t seed, GraphWindow window = {});

/// Ray graph: one center with `rays` vertex-disjoint paths of `ray_len` nodes
/// each; n = 1 + rays * ray_len, diameter = 2 * ray_len.
Graph ray_graph(NodeId rays, NodeId ray_len, std::uint64_t seed,
                GraphWindow window = {});

// ---- size-parameterized topology specs -------------------------------------

enum class TopoKind : std::uint8_t {
  kRandom,     ///< random_connected(n, ~2n chords)
  kTree,       ///< random_tree(n)
  kGrid,       ///< square grid, n = side^2
  kRing,       ///< cycle
  kPath,       ///< path
  kComplete,   ///< explicit clique
  kHypercube,  ///< n = 2^dim
  kRay,        ///< Theorem 2 lower-bound rays: n = 1 + rays * ray_len
  kCliqueImplicit,     ///< Graph::implicit_complete (O(1) storage)
  kRingImplicit,       ///< Graph::implicit_ring
  kGridImplicit,       ///< Graph::implicit_grid, square
  kHypercubeImplicit,  ///< Graph::implicit_hypercube
};

/// A topology at a size: everything a layer needs to build the graph.
struct TopologySpec {
  TopoKind kind = TopoKind::kRandom;
  NodeId n = 0;
  std::uint64_t seed = 7;
};

const char* topology_name(TopoKind kind);

/// True if the family admits exactly n nodes.
bool topology_valid_n(TopoKind kind, NodeId n);

/// The supported size nearest to the nominal n (grids round to the nearest
/// square, hypercubes to the largest power of two <= n, ...).  The result
/// always satisfies topology_valid_n.
NodeId topology_round_n(TopoKind kind, NodeId n);

/// Builds the graph for a spec.  Requires topology_valid_n(kind, n); callers
/// holding a nominal size round it first (or refuse, for strict CLIs).
Graph build_topology(const TopologySpec& spec);

/// Windowed build of the same spec: identical edge ids and weights, but the
/// arena holds adjacency only for [window.lo, window.hi) plus the boundary
/// frontier.  Implicit families ignore the window (they are O(1) anyway).
Graph build_topology_window(const TopologySpec& spec, GraphWindow window);

/// The ray decomposition build_topology uses for n nodes: rays = the largest
/// divisor of n - 1 that is <= sqrt(n - 1) (so ray_len >= rays and the
/// diameter is ~2 sqrt(n)).  Exposed for tests and benches.
NodeId ray_count_for(NodeId n);

}  // namespace mmn
