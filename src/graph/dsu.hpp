// Disjoint-set union (union by size, path halving).
//
// Used by the reference Kruskal MST and by validators; not by the distributed
// algorithms themselves.
#pragma once

#include <cstdint>
#include <vector>

namespace mmn {

class Dsu {
 public:
  explicit Dsu(std::size_t n);

  std::size_t find(std::size_t x);

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b);

  std::size_t set_size(std::size_t x);

  std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_;
};

}  // namespace mmn
