#include "coloring/mis.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mmn {
namespace {

std::vector<bool> has_red_neighbor(const RootedForest& f,
                                   const std::vector<Color>& colors) {
  std::vector<bool> result(f.size(), false);
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (f.is_root(v)) continue;
    const std::uint32_t p = f.parent[v];
    if (colors[p] == kRed) result[v] = true;
    if (colors[v] == kRed) result[p] = true;
  }
  return result;
}

}  // namespace

std::vector<Color> root_red_recolor(const RootedForest& f,
                                    const std::vector<Color>& colors) {
  MMN_REQUIRE(colors.size() == f.size(), "colors size mismatch");
  MMN_REQUIRE(is_proper_coloring(f, colors), "coloring must be proper");
  std::vector<Color> next(f.size());
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (f.is_root(v)) {
      next[v] = kRed;  // both cases of the paper end with a red root
    } else if (f.is_root(f.parent[v])) {
      // A root's child: the root's case decides.
      const Color root_color = colors[f.parent[v]];
      if (root_color == kRed) {
        next[v] = static_cast<Color>(smallest_free_color(
            static_cast<int>(kRed), static_cast<int>(colors[v])));
      } else {
        next[v] = root_color;
      }
    } else {
      next[v] = colors[f.parent[v]];  // adopt the father's color
    }
  }
  MMN_ASSERT(is_proper_coloring(f, next), "root_red_recolor broke properness");
  return next;
}

std::vector<Color> grow_red_mis(const RootedForest& f,
                                const std::vector<Color>& colors) {
  MMN_REQUIRE(colors.size() == f.size(), "colors size mismatch");
  std::vector<Color> cur = colors;
  for (Color pass : {kBlue, kGreen}) {
    const std::vector<bool> near_red = has_red_neighbor(f, cur);
    for (std::uint32_t v = 0; v < f.size(); ++v) {
      if (cur[v] == pass && !near_red[v]) cur[v] = kRed;
    }
  }
  MMN_ASSERT(red_is_independent(f, cur), "red class is not independent");
  MMN_ASSERT(red_is_dominating(f, cur), "red class is not maximal");
  return cur;
}

bool red_is_independent(const RootedForest& f,
                        const std::vector<Color>& colors) {
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (!f.is_root(v) && colors[v] == kRed && colors[f.parent[v]] == kRed) {
      return false;
    }
  }
  return true;
}

bool red_is_dominating(const RootedForest& f,
                       const std::vector<Color>& colors) {
  const std::vector<bool> near_red = has_red_neighbor(f, colors);
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (colors[v] != kRed && !near_red[v]) return false;
  }
  return true;
}

RootedForest cut_at_red_internals(const RootedForest& f,
                                  const std::vector<Color>& colors) {
  MMN_REQUIRE(colors.size() == f.size(), "colors size mismatch");
  std::vector<bool> internal(f.size(), false);
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (!f.is_root(v)) internal[f.parent[v]] = true;
  }
  RootedForest cut = f;
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (colors[v] == kRed && internal[v]) cut.parent[v] = v;
  }
  return cut;
}

std::uint32_t max_depth(const RootedForest& f) {
  std::vector<std::uint32_t> depth(f.size(), static_cast<std::uint32_t>(-1));
  std::uint32_t best = 0;
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    // Walk up to the first vertex with a known depth, then unwind.
    std::vector<std::uint32_t> chain;
    std::uint32_t cur = v;
    while (depth[cur] == static_cast<std::uint32_t>(-1) && !f.is_root(cur)) {
      chain.push_back(cur);
      cur = f.parent[cur];
    }
    std::uint32_t d = f.is_root(cur) && depth[cur] == static_cast<std::uint32_t>(-1)
                          ? 0
                          : depth[cur];
    if (f.is_root(cur)) depth[cur] = 0;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

}  // namespace mmn
