#include "coloring/forest_coloring.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/math.hpp"

namespace mmn {

std::vector<std::vector<std::uint32_t>> RootedForest::children() const {
  std::vector<std::vector<std::uint32_t>> result(size());
  for (std::uint32_t v = 0; v < size(); ++v) {
    if (!is_root(v)) result[parent[v]].push_back(v);
  }
  return result;
}

void RootedForest::validate() const {
  for (std::uint32_t v = 0; v < size(); ++v) {
    MMN_ASSERT(parent[v] < size(), "forest parent out of range");
    std::uint32_t cur = v;
    std::size_t steps = 0;
    while (!is_root(cur)) {
      cur = parent[cur];
      MMN_ASSERT(++steps <= size(), "cycle in forest parent pointers");
    }
  }
}

bool is_proper_coloring(const RootedForest& f, const std::vector<Color>& colors) {
  MMN_REQUIRE(colors.size() == f.size(), "colors size mismatch");
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (!f.is_root(v) && colors[v] == colors[f.parent[v]]) return false;
  }
  return true;
}

std::vector<Color> cv_iteration(const RootedForest& f,
                                const std::vector<Color>& colors) {
  MMN_REQUIRE(colors.size() == f.size(), "colors size mismatch");
  std::vector<Color> next(f.size());
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    next[v] = f.is_root(v) ? cv_update_root(colors[v])
                           : cv_update(colors[v], colors[f.parent[v]]);
  }
  return next;
}

std::vector<Color> shift_down(const RootedForest& f,
                              const std::vector<Color>& colors) {
  MMN_REQUIRE(colors.size() == f.size(), "colors size mismatch");
  std::vector<Color> next(f.size());
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (f.is_root(v)) {
      next[v] = static_cast<Color>(smallest_free_color(
          static_cast<int>(colors[v]), static_cast<int>(colors[v])));
    } else {
      next[v] = colors[f.parent[v]];
    }
  }
  return next;
}

std::vector<Color> drop_color(const RootedForest& f,
                              const std::vector<Color>& colors, Color c) {
  MMN_REQUIRE(colors.size() == f.size(), "colors size mismatch");
  const auto kids = f.children();
  std::vector<Color> next = colors;
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (colors[v] != c) continue;
    // After shift_down all children share one color; parent contributes the
    // other forbidden value (roots only see their children).
    const int child_color =
        kids[v].empty() ? -1 : static_cast<int>(colors[kids[v].front()]);
    for (std::uint32_t child : kids[v]) {
      MMN_ASSERT(static_cast<int>(colors[child]) == child_color,
                 "drop_color requires monochromatic children (run shift_down)");
    }
    const int parent_color =
        f.is_root(v) ? -1 : static_cast<int>(colors[f.parent[v]]);
    next[v] = static_cast<Color>(smallest_free_color(parent_color, child_color));
  }
  return next;
}

std::vector<Color> three_color(const RootedForest& f,
                               const std::vector<Color>& ids, int bits) {
  MMN_REQUIRE(bits >= 1 && bits <= 62, "id width out of range");
  std::vector<Color> colors = ids;
  MMN_REQUIRE(is_proper_coloring(f, colors),
              "initial ids must be distinct along edges");
  const int iterations = cole_vishkin_iterations(bits);
  for (int i = 0; i < iterations; ++i) colors = cv_iteration(f, colors);
  for (Color c : {Color{5}, Color{4}, Color{3}}) {
    colors = shift_down(f, colors);
    colors = drop_color(f, colors, c);
  }
  for (Color c : colors) MMN_ASSERT(c <= 2, "three_color left a color > 2");
  MMN_ASSERT(is_proper_coloring(f, colors), "three_color broke properness");
  return colors;
}

}  // namespace mmn
