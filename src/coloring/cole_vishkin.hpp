// Cole–Vishkin deterministic coin flipping (Inform. & Control 1986).
//
// One iteration maps a proper coloring with b-bit colors to a proper coloring
// with (ceil(log2 b) + 1)-bit colors: each vertex finds the lowest bit k where
// its color differs from its parent's and re-colors to 2k + (bit k of its own
// color).  Roots play against a virtual parent — the complement of their own
// color — which makes them differ at bit 0.  O(log* n) iterations shrink any
// O(log n)-bit palette to {0..5}.
//
// These are the *per-vertex* update rules; both the sequential reference
// (coloring/forest_coloring.hpp) and the distributed partitioner
// (core/partition_det.cpp) call exactly these functions, so the two
// executions agree bit-for-bit.
#pragma once

#include <cstdint>

namespace mmn {

using Color = std::uint64_t;

/// One Cole–Vishkin update for a vertex with a parent.
/// Requires my_color != parent_color (proper coloring).
Color cv_update(Color my_color, Color parent_color);

/// One Cole–Vishkin update for a root (virtual parent = complemented color).
Color cv_update_root(Color my_color);

/// Smallest color in {0,1,2} distinct from both arguments (pass the same
/// value twice to exclude only one).  Requires that a choice exists.
int smallest_free_color(int forbidden_a, int forbidden_b);

}  // namespace mmn
