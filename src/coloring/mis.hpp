// Steps 4–6 of the paper's deterministic partitioning phase: turn a proper
// 3-coloring of the fragment forest F into a maximal independent set that
// contains every root, then cut F into bounded-depth components.
//
// Like forest_coloring.hpp this is the sequential reference; the distributed
// partitioner performs the same per-vertex rules via fragment-tree messages.
#pragma once

#include <cstdint>
#include <vector>

#include "coloring/forest_coloring.hpp"

namespace mmn {

inline constexpr Color kRed = 0;
inline constexpr Color kGreen = 1;
inline constexpr Color kBlue = 2;

/// Step 4: re-colors so the coloring stays proper and every root is red.
/// Every vertex except roots and their children adopts its father's color;
/// the root/children exchange follows the paper's two cases.
std::vector<Color> root_red_recolor(const RootedForest& f,
                                    const std::vector<Color>& colors);

/// Step 5: first every blue vertex with no red neighbor turns red, then every
/// green vertex with no red neighbor turns red.  The red class of the result
/// is a maximal independent set containing every root.
std::vector<Color> grow_red_mis(const RootedForest& f,
                                const std::vector<Color>& colors);

/// True if the red class is an independent set in F.
bool red_is_independent(const RootedForest& f, const std::vector<Color>& colors);

/// True if every non-red vertex has a red neighbor (parent or child).
bool red_is_dominating(const RootedForest& f, const std::vector<Color>& colors);

/// Step 6: removes the parent edge of every red vertex that has children
/// (red internal vertices become component roots; red leaves stay attached).
/// Returns the cut forest.
RootedForest cut_at_red_internals(const RootedForest& f,
                                  const std::vector<Color>& colors);

/// Maximum depth (edge count root-to-vertex) over all trees of the forest.
std::uint32_t max_depth(const RootedForest& f);

}  // namespace mmn
