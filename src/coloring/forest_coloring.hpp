// Goldberg–Plotkin–Shannon rooted-forest 3-coloring (STOC 1987) —
// sequential reference implementation.
//
// This mirrors, step for step, the synchronized message exchanges the
// distributed partitioner performs over the fragment graph F (Section 3,
// Steps 3–5 of the paper).  Each function corresponds to one exchange round;
// the distributed code applies the identical per-vertex rules from
// coloring/cole_vishkin.hpp, so this module doubles as its test oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "coloring/cole_vishkin.hpp"

namespace mmn {

/// A rooted forest on vertices 0..size-1: parent[v] == v exactly for roots.
struct RootedForest {
  std::vector<std::uint32_t> parent;

  std::size_t size() const { return parent.size(); }
  bool is_root(std::uint32_t v) const { return parent[v] == v; }

  /// Child lists derived from the parent array.
  std::vector<std::vector<std::uint32_t>> children() const;

  /// Aborts (MMN_ASSERT) if the parent array has a cycle or out-of-range
  /// entries.
  void validate() const;
};

/// True if no vertex shares a color with its parent.
bool is_proper_coloring(const RootedForest& f, const std::vector<Color>& colors);

/// One synchronized Cole–Vishkin iteration over the whole forest.
std::vector<Color> cv_iteration(const RootedForest& f,
                                const std::vector<Color>& colors);

/// GPS shift-down: every non-root adopts its parent's previous color; every
/// root picks the smallest color in {0,1,2} different from its previous
/// color.  Preserves properness and makes all siblings monochromatic.
std::vector<Color> shift_down(const RootedForest& f,
                              const std::vector<Color>& colors);

/// Recolors every vertex of color `c` to the smallest color in {0,1,2} not
/// used by its parent or children.  Requires: colors proper and, for every
/// recolored vertex, all children monochromatic (guaranteed after
/// shift_down).  Color class `c` is an independent set, so the simultaneous
/// recoloring stays proper.
std::vector<Color> drop_color(const RootedForest& f,
                              const std::vector<Color>& colors, Color c);

/// Full GPS pipeline: from initial colors (distinct ids, `bits` wide) to a
/// proper 3-coloring with colors in {0,1,2}.  Runs
/// cole_vishkin_iterations(bits) CV rounds, then drops colors 3, 4, 5.
std::vector<Color> three_color(const RootedForest& f,
                               const std::vector<Color>& ids, int bits);

}  // namespace mmn
