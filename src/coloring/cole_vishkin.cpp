#include "coloring/cole_vishkin.hpp"

#include <bit>

#include "support/check.hpp"

namespace mmn {

Color cv_update(Color my_color, Color parent_color) {
  MMN_REQUIRE(my_color != parent_color,
              "cole-vishkin requires a proper coloring");
  const int k = std::countr_zero(my_color ^ parent_color);
  return 2 * static_cast<Color>(k) + ((my_color >> k) & 1);
}

Color cv_update_root(Color my_color) {
  // Against the complemented virtual parent, the lowest differing bit is 0.
  return my_color & 1;
}

int smallest_free_color(int forbidden_a, int forbidden_b) {
  for (int c = 0; c < 3; ++c) {
    if (c != forbidden_a && c != forbidden_b) return c;
  }
  MMN_ASSERT(false, "no free color in {0,1,2}");
  return -1;  // unreachable
}

}  // namespace mmn
