// The randomized partitioning algorithm (Section 4 of the paper).
//
// Runs ln* n + O(1) synchronized iterations.  In iteration i every free node
// becomes a *local center* with probability min(1, E_{i+1} / sqrt(n)), where
// E_1 = 1 and E_{i+1} = e^{E_i} (the tower makes the expected number of
// surviving free nodes collapse doubly-exponentially, so the expected total
// number of centers — and hence trees — is O(sqrt(n)), Theorem 1).  Centers
// grow synchronized BFS waves to distance at most 4*sqrt(n); a labeled node
// switches trees only if the new wave strictly reduces its distance label,
// breaking same-round ties toward the smaller center id.  At the end of an
// iteration, nodes in trees with no outgoing link to an unlabeled node, and
// nodes with label <= 2*sqrt(n) in any tree, become unfree (frozen); the
// final iteration has probability 1, so every node ends up in some tree of
// radius <= 4*sqrt(n).
//
// Message economy follows the paper: a wave is forwarded only by nodes it
// improves, a link whose two endpoints are in one tree without being a tree
// edge is pruned from future waves, and labeled nodes advertise their root to
// neighbors exactly when it changes (which also lets nodes detect unlabeled
// neighbors passively).  Expected message complexity O(m + n log* n).
//
// LasVegasPartitionProcess wraps the Monte Carlo algorithm with the paper's
// verification step: try to schedule the tree roots on the channel with the
// randomized resolution protocol; accept if at most 2*sqrt(n) roots schedule
// within the slot budget, restart the partition otherwise (Section 4,
// Remark).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/pseudo_bayesian.hpp"
#include "core/partition.hpp"
#include "core/stepped.hpp"

namespace mmn {

struct PartitionRandConfig {
  /// Growth radius and freeze threshold in units of ceil(sqrt(n)); the
  /// paper's values are 4 and 2.
  std::uint32_t radius_factor = 4;
  std::uint32_t freeze_factor = 2;

  /// Section 4 remark / Section 7.4: the algorithm "can be modified so that
  /// it will work when n is unknown and the nodes are anonymous".
  /// size_hint (0 = use the model's known n) supplies an external estimate
  /// — e.g. the Greenberg–Ladner output — in place of n; `anonymous` makes
  /// every node draw a random 63-bit id for center naming and tie-breaking
  /// instead of using its processor id.
  std::uint64_t size_hint = 0;
  bool anonymous = false;
};

class PartitionRandProcess final : public SteppedProcess,
                                   public FragmentState {
 public:
  PartitionRandProcess(const sim::LocalView& view, PartitionRandConfig config);

  // FragmentState (valid once finished):
  NodeId tree_parent() const override { return parent_; }
  EdgeId tree_parent_edge() const override { return parent_edge_; }
  /// With default ids this is the root's node id; with anonymous ids it is
  /// an opaque (truncated random) label, identical across each tree.
  NodeId fragment_id() const override {
    return static_cast<NodeId>(root_ & 0x7FFFFFFF);
  }

  int iterations() const { return iterations_; }

 protected:
  std::uint64_t num_steps() const override;
  StepSpec step_spec(std::uint64_t step) const override;
  void step_begin(std::uint64_t step, sim::NodeContext& ctx) override;
  void on_message(std::uint64_t step, const sim::Received& msg,
                  sim::NodeContext& ctx) override;
  void step_round(std::uint64_t step, sim::NodeContext& ctx) override;

 private:
  enum class Sub : int { kGrow, kCommit, kFreeze };

  static constexpr std::uint32_t kInfDist = static_cast<std::uint32_t>(-1);
  static constexpr std::uint64_t kNoId = static_cast<std::uint64_t>(-1);

  Sub sub_of(std::uint64_t step) const { return static_cast<Sub>(step % 3); }
  int iteration_of(std::uint64_t step) const {
    return static_cast<int>(step / 3);
  }

  bool labeled() const { return root_ != kNoId; }
  bool wave_improves() const {
    return !frozen_ && (dist_ == kInfDist || wave_dist_ < dist_);
  }
  bool has_unlabeled_neighbor() const;
  void forward_wave(sim::NodeContext& ctx);
  void begin_grow(int iteration, sim::NodeContext& ctx);
  void begin_commit(sim::NodeContext& ctx);
  void begin_freeze(sim::NodeContext& ctx);
  void finish_freeze_query(sim::NodeContext& ctx);
  void apply_freeze(bool tree_frozen);

  const sim::LocalView& view_;
  int iterations_;
  std::uint32_t max_radius_;
  std::uint32_t freeze_threshold_;
  double sqrt_n_;
  bool anonymous_;
  std::uint64_t my_id_;  ///< node id, or a random draw when anonymous

  // Committed forest state.
  bool frozen_ = false;
  std::uint64_t root_ = kNoId;
  std::uint32_t dist_ = kInfDist;
  NodeId parent_;
  EdgeId parent_edge_ = kNoEdge;
  std::vector<EdgeId> children_;
  std::vector<std::uint64_t> neighbor_root_;  ///< per link; kNoId = unlabeled

  // Per-iteration wave state.
  bool wave_set_ = false;
  std::uint64_t wave_root_ = kNoId;
  std::uint32_t wave_dist_ = kInfDist;
  EdgeId wave_parent_edge_ = kNoEdge;
  bool cand_pending_ = false;
  std::uint64_t cand_root_ = kNoId;
  std::uint32_t cand_dist_ = kInfDist;
  EdgeId cand_edge_ = kNoEdge;

  // Freeze convergecast state.
  std::uint32_t freeze_pending_ = 0;
  bool subtree_sees_unlabeled_ = false;
};

/// Section 4's Las Vegas wrapper: Monte Carlo partition + channel
/// verification, restarted until a certified partition (<= 2*sqrt(n) trees)
/// is produced.
class LasVegasPartitionProcess final : public sim::Process,
                                       public FragmentState {
 public:
  LasVegasPartitionProcess(const sim::LocalView& view,
                           PartitionRandConfig config);

  void round(sim::NodeContext& ctx) override;
  bool finished() const override { return accepted_; }

  NodeId tree_parent() const override { return inner_->tree_parent(); }
  EdgeId tree_parent_edge() const override { return inner_->tree_parent_edge(); }
  NodeId fragment_id() const override { return inner_->fragment_id(); }

  /// Number of Monte Carlo attempts (>= 1); identical at every node.
  int attempts() const { return attempts_; }

 private:
  void start_attempt();

  const sim::LocalView& view_;
  PartitionRandConfig config_;
  std::unique_ptr<PartitionRandProcess> inner_;
  std::unique_ptr<RandomizedScheduler> verifier_;
  std::uint64_t verify_slots_ = 0;
  std::uint64_t slot_budget_ = 0;
  std::uint64_t max_roots_ = 0;
  bool verifying_ = false;
  bool verify_started_ = false;
  bool accepted_ = false;
  int attempts_ = 1;
};

}  // namespace mmn
