// Minimum spanning tree in a multimedia network (Section 6 of the paper).
//
// Three stages, O(sqrt(n) log n) time, O(m + n log n log* n) messages:
//
//   1. Deterministic partition (Section 3) into <= sqrt(n) *initial
//      fragments*, each an MST subtree of size >= sqrt(n), radius O(sqrt(n)).
//   2. One Capetanakis resolution schedules the initial-fragment cores on
//      the channel.  Every node decodes the same schedule, so the fragment
//      list, its TDMA order, and the fragment count k become common
//      knowledge.
//   3. O(log n) Boruvka phases over *current fragments* (unions of initial
//      fragments).  Per phase: every initial fragment converge-casts the
//      minimum-weight link leaving its *current* fragment (purely local —
//      each node knows the initial fragment across every link and the shared
//      initial->current map); then the k cores broadcast their candidates in
//      one TDMA cycle.  Every node hears all k reports, picks each current
//      fragment's minimum, merges the current fragments identically (a local
//      union-find mirrored network-wide), and the two endpoints of every
//      chosen link mark it as an MST edge.  Fragment count at least halves
//      per phase; the run ends, simultaneously everywhere, the cycle the
//      count reaches one.
//
// Since link weights are distinct the MST is unique: the result equals
// Kruskal's tree edge for edge.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "channel/capetanakis.hpp"
#include "core/partition.hpp"
#include "core/stepped.hpp"
#include "graph/dsu.hpp"

namespace mmn {

class MstProcess final : public sim::Process {
 public:
  explicit MstProcess(const sim::LocalView& view);

  void round(sim::NodeContext& ctx) override;
  bool finished() const override;

  /// MST edges this node is an endpoint of (its partition-tree parent edge
  /// plus every chosen inter-fragment link it touches).  The union over all
  /// nodes is exactly the MST edge set.  Valid once finished.
  std::vector<EdgeId> mst_edges() const;

  /// Number of Boruvka phases stage 3 used (identical at every node).
  int phases_used() const;

 private:
  class ComputeStage;

  std::unique_ptr<SteppedSequenceProcess> sequence_;
  const ComputeStage* compute_ = nullptr;       // owned by sequence_
  const FragmentState* partition_ = nullptr;    // owned by sequence_
};

}  // namespace mmn
