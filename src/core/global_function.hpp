// Computing global sensitive functions in a multimedia network (Section 5).
//
// A global sensitive function folds one input per node under a commutative
// semigroup operation (sum, min, max, xor, gcd, ...); its value depends on
// every input, which is what makes it cost Omega(d) point-to-point, Omega(n)
// broadcast, and Omega(min{d, sqrt(n)}) multimedia (Theorem 2).
//
// The multimedia algorithm is the paper's divide-and-conquer scheme:
//   local stage  — partition the network (Section 3 or 4) and fold each
//                  fragment's inputs into its core by broadcast-and-respond;
//   global stage — schedule the O(sqrt(n)) cores on the channel and let every
//                  node fold the overheard partial results.
// The deterministic variant uses the deterministic partition + Capetanakis
// resolution; the randomized variant uses the randomized partition + the
// Metcalfe–Boggs/pseudo-Bayesian scheduler.  The `balanced` flag applies
// Section 5.1's refinement: run the partition for more phases so the local
// and global stages both cost O(sqrt(n log n log* n)).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "channel/capetanakis.hpp"
#include "channel/pseudo_bayesian.hpp"
#include "core/partition.hpp"
#include "core/stepped.hpp"

namespace mmn {

enum class SemigroupOp : std::uint8_t { kSum, kMin, kMax, kXor, kGcd };

/// Applies the semigroup operation (all are commutative and associative).
sim::Word semigroup_apply(SemigroupOp op, sim::Word a, sim::Word b);

struct GlobalFunctionConfig {
  SemigroupOp op = SemigroupOp::kMin;
  enum class Variant : std::uint8_t { kDeterministic, kRandomized } variant =
      Variant::kDeterministic;
  /// Section 5.1: deepen the partition to balance local and global stages
  /// (deterministic variant only).
  bool balanced = false;
};

/// Partition phase count for the balanced variant: 2^phases ~
/// sqrt(n log n / log* n), equalizing the O(2^p log* n) local stage and the
/// O((n / 2^p) log n) Capetanakis global stage.
int balanced_phase_count(NodeId n);

class GlobalFunctionProcess final : public sim::Process {
 public:
  GlobalFunctionProcess(const sim::LocalView& view, GlobalFunctionConfig config,
                        sim::Word input);

  void round(sim::NodeContext& ctx) override;
  bool finished() const override;

  /// The fold of all inputs; valid once finished (known to *every* node).
  sim::Word result() const;

 private:
  std::unique_ptr<SteppedSequenceProcess> sequence_;
  const sim::Process* compute_stage_ = nullptr;  // owned by sequence_
};

}  // namespace mmn
