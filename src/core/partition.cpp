#include "core/partition.hpp"

#include "support/check.hpp"

namespace mmn {

FragmentAccessor direct_fragment_accessor() {
  return [](const sim::Process& p) -> const FragmentState& {
    const auto* state = dynamic_cast<const FragmentState*>(&p);
    MMN_REQUIRE(state != nullptr, "process does not expose FragmentState");
    return *state;
  };
}

Forest collect_forest(const sim::Engine& engine,
                      const FragmentAccessor& accessor) {
  const NodeId n = engine.num_nodes();
  Forest forest;
  forest.parent.resize(n);
  forest.parent_edge.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const FragmentState& state = accessor(engine.process(v));
    forest.parent[v] = state.tree_parent();
    forest.parent_edge[v] = state.tree_parent_edge();
  }
  return forest;
}

std::vector<NodeId> collect_fragments(const sim::Engine& engine,
                                      const FragmentAccessor& accessor) {
  const NodeId n = engine.num_nodes();
  std::vector<NodeId> fragment(n);
  for (NodeId v = 0; v < n; ++v) {
    fragment[v] = accessor(engine.process(v)).fragment_id();
  }
  return fragment;
}

}  // namespace mmn
