#include "core/size.hpp"

namespace mmn {

DeterministicSizeProcess::DeterministicSizeProcess(const sim::LocalView& view)
    : inner_(view, config_with_check()) {}

}  // namespace mmn
