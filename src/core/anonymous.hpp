// Partitioning with unknown n and anonymous nodes (Section 4 remark +
// Section 7.4).
//
// The randomized partitioning algorithm needs only two global quantities:
// an estimate of sqrt(n) (for the center probabilities and the growth
// radius) and distinct node names (for tie-breaking and center identity).
// The paper observes both can be manufactured on the spot: Greenberg–Ladner
// estimates n from coin-flip rounds on the channel alone, and "random bits
// can be used also to generate random ids in case those are not given".
//
// AnonymousPartitionProcess chains exactly that: a channel-only size
// estimation stage, then the Section 4 partition parameterized by the
// estimate and running on freshly drawn 63-bit random ids.  The estimate is
// common knowledge (everyone hears the same slots), so all nodes construct
// identically-parameterized partition stages in the same round.
#pragma once

#include <cstdint>
#include <memory>

#include "core/partition.hpp"
#include "core/partition_rand.hpp"
#include "core/size.hpp"

namespace mmn {

class AnonymousPartitionProcess final : public sim::Process,
                                        public FragmentState {
 public:
  explicit AnonymousPartitionProcess(const sim::LocalView& view);

  void round(sim::NodeContext& ctx) override;
  bool finished() const override {
    return partition_ != nullptr && partition_->finished();
  }

  NodeId tree_parent() const override { return partition_->tree_parent(); }
  EdgeId tree_parent_edge() const override {
    return partition_->tree_parent_edge();
  }
  NodeId fragment_id() const override { return partition_->fragment_id(); }

  /// The Greenberg–Ladner estimate the partition was parameterized with.
  std::uint64_t size_estimate() const;

 private:
  const sim::LocalView& view_;
  SizeEstimateProcess estimate_;
  std::unique_ptr<PartitionRandProcess> partition_;
};

}  // namespace mmn
