#include "core/anonymous.hpp"

#include "support/check.hpp"

namespace mmn {

AnonymousPartitionProcess::AnonymousPartitionProcess(
    const sim::LocalView& view)
    : view_(view), estimate_(view) {}

void AnonymousPartitionProcess::round(sim::NodeContext& ctx) {
  if (partition_ == nullptr) {
    estimate_.round(ctx);
    if (estimate_.finished()) {
      // The estimate ended on a shared idle slot, so every node builds its
      // partition stage in this same round with the same parameters.
      PartitionRandConfig config;
      config.size_hint = estimate_.estimate();
      config.anonymous = true;
      partition_ = std::make_unique<PartitionRandProcess>(view_, config);
    }
    return;
  }
  partition_->round(ctx);
}

std::uint64_t AnonymousPartitionProcess::size_estimate() const {
  MMN_REQUIRE(partition_ != nullptr, "estimation still in progress");
  return estimate_.estimate();
}

}  // namespace mmn
