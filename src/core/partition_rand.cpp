#include "core/partition_rand.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

constexpr std::uint16_t kGrowMsg = 141;      // [root, dist]
constexpr std::uint16_t kAttach = 142;       // new child on this edge
constexpr std::uint16_t kDetach = 143;       // child left this edge
constexpr std::uint16_t kRootInfo = 144;     // [root] advertised to neighbors
constexpr std::uint16_t kFreezeResp = 146;   // [sees_unlabeled] leaves -> root
constexpr std::uint16_t kFreezeSet = 147;    // [tree_frozen] root -> leaves
constexpr std::uint16_t kVerify = 148;       // Las Vegas root scheduling

}  // namespace

PartitionRandProcess::PartitionRandProcess(const sim::LocalView& view,
                                           PartitionRandConfig config)
    : view_(view),
      anonymous_(config.anonymous),
      my_id_(view.self),
      parent_(view.self),
      neighbor_root_(view.links().size(), kNoId) {
  MMN_REQUIRE(config.radius_factor >= config.freeze_factor,
              "growth radius must be at least the freeze threshold");
  const std::uint64_t basis = config.size_hint != 0 ? config.size_hint : view.n;
  const auto root_n = static_cast<std::uint32_t>(isqrt_ceil(basis));
  max_radius_ = config.radius_factor * root_n;
  freeze_threshold_ = config.freeze_factor * root_n;
  sqrt_n_ = std::sqrt(static_cast<double>(basis));
  // Iterations 0 .. k-1 where k is minimal with E_k >= sqrt(n); the final
  // iteration has head probability 1, so every node ends up labeled.
  int k = 1;
  while (exp_tower(k, 1e18) < sqrt_n_) ++k;
  iterations_ = k;
}

std::uint64_t PartitionRandProcess::num_steps() const {
  return static_cast<std::uint64_t>(iterations_) * 3;
}

StepSpec PartitionRandProcess::step_spec(std::uint64_t) const {
  return StepSpec{StepKind::kBarrier, 0};
}

bool PartitionRandProcess::has_unlabeled_neighbor() const {
  return std::any_of(neighbor_root_.begin(), neighbor_root_.end(),
                     [](std::uint64_t r) { return r == kNoId; });
}

void PartitionRandProcess::step_begin(std::uint64_t step,
                                      sim::NodeContext& ctx) {
  switch (sub_of(step)) {
    case Sub::kGrow:
      begin_grow(iteration_of(step), ctx);
      break;
    case Sub::kCommit:
      begin_commit(ctx);
      break;
    case Sub::kFreeze:
      begin_freeze(ctx);
      break;
  }
}

// --- GROW --------------------------------------------------------------------

void PartitionRandProcess::begin_grow(int iteration, sim::NodeContext& ctx) {
  if (anonymous_ && iteration == 0) {
    // Section 7.4: random bits mint ids when none are given.  63 bits keep
    // collisions negligible and the value non-negative on the wire.
    my_id_ = ctx.rng().next_u64() >> 1;
  }
  wave_set_ = false;
  wave_root_ = kNoId;
  wave_dist_ = kInfDist;
  wave_parent_edge_ = kNoEdge;
  cand_pending_ = false;
  if (frozen_) return;
  const double p =
      std::min(1.0, exp_tower(iteration + 1, 1e18) / std::max(1.0, sqrt_n_));
  if (ctx.rng().next_bernoulli(p)) {
    wave_set_ = true;
    wave_root_ = my_id_;
    wave_dist_ = 0;
    wave_parent_edge_ = kNoEdge;
    forward_wave(ctx);
  }
}

void PartitionRandProcess::forward_wave(sim::NodeContext& ctx) {
  if (wave_dist_ >= max_radius_) return;
  const sim::Packet grow(kGrowMsg, {static_cast<sim::Word>(wave_root_),
                                    static_cast<sim::Word>(wave_dist_)});
  const NeighborRange links = view_.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const EdgeId edge = links[i].edge;
    if (edge == wave_parent_edge_) continue;  // the sender already has it
    // Paper's pruning: links internal to a tree but not tree links carry no
    // further waves.
    if (labeled() && neighbor_root_[i] == root_ && edge != parent_edge_ &&
        std::find(children_.begin(), children_.end(), edge) ==
            children_.end()) {
      continue;
    }
    ctx.send(edge, grow);
  }
}

void PartitionRandProcess::step_round(std::uint64_t step,
                                      sim::NodeContext& ctx) {
  if (sub_of(step) != Sub::kGrow) return;
  if (!cand_pending_ || wave_set_) {
    cand_pending_ = false;
    return;
  }
  // All of this round's wave offers are in; adopt the best and forward once.
  wave_set_ = true;
  wave_root_ = cand_root_;
  wave_dist_ = cand_dist_;
  wave_parent_edge_ = cand_edge_;
  cand_pending_ = false;
  if (wave_improves()) forward_wave(ctx);
}

// --- COMMIT ------------------------------------------------------------------

void PartitionRandProcess::begin_commit(sim::NodeContext& ctx) {
  if (!wave_set_ || !wave_improves()) return;
  if (parent_edge_ != kNoEdge) {
    ctx.send(parent_edge_, sim::Packet(kDetach));
  }
  root_ = wave_root_;
  dist_ = wave_dist_;
  if (wave_parent_edge_ == kNoEdge) {
    parent_ = view_.self;  // this node is the center
    parent_edge_ = kNoEdge;
  } else {
    const int idx = view_.link_index(wave_parent_edge_);
    parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
    parent_edge_ = wave_parent_edge_;
    ctx.send(parent_edge_, sim::Packet(kAttach));
  }
  ctx.broadcast(sim::Packet(kRootInfo, {static_cast<sim::Word>(root_)}));
}

// --- FREEZE ------------------------------------------------------------------

void PartitionRandProcess::begin_freeze(sim::NodeContext& ctx) {
  if (!labeled()) return;
  // Leaf-initiated convergecast (saves the query pass): every leaf reports
  // immediately; internal nodes forward once all children reported.
  subtree_sees_unlabeled_ = has_unlabeled_neighbor();
  freeze_pending_ = static_cast<std::uint32_t>(children_.size());
  if (freeze_pending_ == 0) finish_freeze_query(ctx);
}

void PartitionRandProcess::finish_freeze_query(sim::NodeContext& ctx) {
  if (parent_ == view_.self) {
    const bool tree_frozen = !subtree_sees_unlabeled_;
    apply_freeze(tree_frozen);
    const sim::Packet set(kFreezeSet, {tree_frozen ? 1 : 0});
    for (EdgeId e : children_) ctx.send(e, set);
  } else {
    ctx.send(parent_edge_,
             sim::Packet(kFreezeResp, {subtree_sees_unlabeled_ ? 1 : 0}));
  }
}

void PartitionRandProcess::apply_freeze(bool tree_frozen) {
  frozen_ = frozen_ || tree_frozen || dist_ <= freeze_threshold_;
}

// --- messages ------------------------------------------------------------------

void PartitionRandProcess::on_message(std::uint64_t /*step*/,
                                      const sim::Received& msg,
                                      sim::NodeContext& ctx) {
  const sim::Packet& p = msg.packet();
  switch (p.type()) {
    case kGrowMsg: {
      const auto root = static_cast<std::uint64_t>(p[0]);
      const auto nd = static_cast<std::uint32_t>(p[1]) + 1;
      if (wave_set_ || nd > max_radius_) break;
      if (cand_pending_) {
        MMN_ASSERT(nd == cand_dist_, "synchronous waves must agree on depth");
        if (root < cand_root_) {
          cand_root_ = root;
          cand_edge_ = msg.via;
        }
      } else {
        cand_pending_ = true;
        cand_root_ = root;
        cand_dist_ = nd;
        cand_edge_ = msg.via;
      }
      break;
    }
    case kAttach:
      children_.push_back(msg.via);
      break;
    case kDetach: {
      const auto it = std::find(children_.begin(), children_.end(), msg.via);
      MMN_ASSERT(it != children_.end(), "detach from a non-child edge");
      children_.erase(it);
      break;
    }
    case kRootInfo: {
      const int idx = view_.link_index(msg.via);
      neighbor_root_[static_cast<std::size_t>(idx)] =
          static_cast<std::uint64_t>(p[0]);
      break;
    }
    case kFreezeResp:
      subtree_sees_unlabeled_ = subtree_sees_unlabeled_ || p[0] != 0;
      MMN_ASSERT(freeze_pending_ > 0, "unexpected freeze response");
      if (--freeze_pending_ == 0) finish_freeze_query(ctx);
      break;
    case kFreezeSet:
      apply_freeze(p[0] != 0);
      for (EdgeId e : children_) ctx.send(e, sim::Packet(kFreezeSet, {p[0]}));
      break;
    default:
      MMN_ASSERT(false, "unexpected packet type in randomized partition");
  }
}

// --- Las Vegas wrapper -----------------------------------------------------------

LasVegasPartitionProcess::LasVegasPartitionProcess(const sim::LocalView& view,
                                                   PartitionRandConfig config)
    : view_(view), config_(config) {
  max_roots_ = 2 * isqrt_ceil(view.n);
  slot_budget_ = 16 * isqrt_ceil(view.n) + 64;
  start_attempt();
}

void LasVegasPartitionProcess::start_attempt() {
  inner_ = std::make_unique<PartitionRandProcess>(view_, config_);
  verifier_.reset();
  verifying_ = false;
  verify_started_ = false;
  verify_slots_ = 0;
}

void LasVegasPartitionProcess::round(sim::NodeContext& ctx) {
  if (accepted_) return;
  if (!verifying_) {
    inner_->round(ctx);
    if (inner_->finished()) {
      verifying_ = true;
      verifier_ = std::make_unique<RandomizedScheduler>(
          static_cast<double>(max_roots_),
          inner_->tree_parent() == view_.self,
          /*collect_successes=*/false);  // only the count is compared
    }
    return;
  }

  // Verification: schedule the roots with the randomized protocol.  All
  // decisions below depend only on shared observations, so every node
  // accepts or restarts in the same round.
  if (verify_started_) {
    const auto& obs = ctx.slot();
    verifier_->observe(obs, obs.success() && obs.writer == view_.self);
    ++verify_slots_;
    const bool too_many = verifier_->success_count() > max_roots_;
    const bool over_budget = verify_slots_ > slot_budget_;
    if (verifier_->done() || too_many || over_budget) {
      if (verifier_->done() && !too_many) {
        accepted_ = true;
      } else {
        ++attempts_;
        start_attempt();
        inner_->round(ctx);
      }
      return;
    }
  }
  verify_started_ = true;
  if (verifier_->should_transmit(ctx.rng())) {
    ctx.channel_write(
        sim::Packet(kVerify, {static_cast<sim::Word>(view_.self)}));
  }
}

}  // namespace mmn
