#include "core/partition_det.hpp"

#include <algorithm>

#include "coloring/mis.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

// Message types.  Every datum a node acts on arrives in one of these packets
// (or in a channel slot); there are no oracle shortcuts.
constexpr std::uint16_t kCountReq = 101;    // core -> leaves
constexpr std::uint16_t kCountResp = 102;   // [size] leaves -> core
constexpr std::uint16_t kActiveInfo = 103;  // [active, level] core -> leaves
constexpr std::uint16_t kTest = 104;        // [core] probe a link
constexpr std::uint16_t kAccept = 105;      // different fragment
constexpr std::uint16_t kReject = 106;      // same fragment
constexpr std::uint16_t kReport = 107;      // [weight] convergecast (0 = none)
constexpr std::uint16_t kConnectDown = 108; // core -> gate along minpath
constexpr std::uint16_t kConnect = 109;     // [core] across the chosen edge
constexpr std::uint16_t kFChild = 110;      // border -> core: child attached
constexpr std::uint16_t kCycleWin = 111;    // border -> core: we root a cycle
constexpr std::uint16_t kColorDown = 112;      // [color, is_root] in-tree
constexpr std::uint16_t kParentColor = 113;    // [color, is_root] across entry
constexpr std::uint16_t kParentColorUp = 114;  // gate -> core relay
constexpr std::uint16_t kChildDown = 115;      // [color] core -> gate
constexpr std::uint16_t kChildColor = 116;     // [color] across gate edge
constexpr std::uint16_t kChildColorUp = 117;   // border -> core relay
constexpr std::uint16_t kFlip = 118;           // reverse minpath pointers
constexpr std::uint16_t kJoin = 119;           // child fragment attached here
constexpr std::uint16_t kNewFragMsg = 120;     // [core] new fragment id flood
constexpr std::uint16_t kSizeAnnounce = 121;   // [core, size] Section 7.3

}  // namespace

PartitionDetProcess::PartitionDetProcess(const sim::LocalView& view,
                                         PartitionDetConfig config)
    : view_(view),
      core_(view.self),
      parent_(view.self),
      link_internal_(view.links().size(), false) {
  phases_ = config.phases < 0 ? partition_phases(view.n) : config.phases;
  // Levels grow by one per phase until a fragment spans the whole graph at
  // level floor(log2 n); phases beyond that would stall below their level.
  MMN_REQUIRE(view.n == 1 || phases_ <= ilog2_floor(view.n) + 1,
              "phase count beyond full merge");
  bits_ = view.n <= 2 ? 1 : ilog2_ceil(view.n);
  tcv_ = cole_vishkin_iterations(bits_);
  with_size_check_ = config.with_size_check;
  if (view.n == 1) computed_size_ = 1;  // nothing to schedule
}

std::uint64_t PartitionDetProcess::num_steps() const {
  if (final_steps_) return *final_steps_;
  return static_cast<std::uint64_t>(phases_) * steps_per_phase();
}

StepSpec PartitionDetProcess::step_spec(std::uint64_t step) const {
  if (locate(step).sub == Sub::kSizeCheck) {
    return StepSpec{StepKind::kObserved, 0};
  }
  return StepSpec{StepKind::kBarrier, 0};
}

PartitionDetProcess::SubRef PartitionDetProcess::locate(
    std::uint64_t step) const {
  SubRef ref;
  ref.phase = static_cast<int>(step / steps_per_phase());
  int sub = static_cast<int>(step % steps_per_phase());
  ref.index = 0;
  if (sub == 0) {
    ref.sub = Sub::kCount;
    return ref;
  }
  --sub;
  if (with_size_check_) {
    if (sub == 0) {
      ref.sub = Sub::kSizeCheck;
      return ref;
    }
    --sub;
  }
  if (sub < 3) {
    ref.sub = static_cast<Sub>(static_cast<int>(Sub::kMwoe) + sub);
    return ref;
  }
  sub -= 3;
  if (sub < tcv_) {
    ref.sub = Sub::kCv;
    ref.index = sub;
    return ref;
  }
  sub -= tcv_;
  if (sub < 6) {
    ref.sub = (sub % 2 == 0) ? Sub::kShift : Sub::kDrop;
    ref.index = sub / 2;  // 0 -> drop color 5, 1 -> 4, 2 -> 3
    return ref;
  }
  sub -= 6;
  switch (sub) {
    case 0: ref.sub = Sub::kRootRed; break;
    case 1: ref.sub = Sub::kMisBlue; break;
    case 2: ref.sub = Sub::kMisGreen; break;
    case 3: ref.sub = Sub::kMerge; break;
    default:
      MMN_ASSERT(sub == 4, "sub-step index out of range");
      ref.sub = Sub::kNewFrag;
      break;
  }
  return ref;
}

std::uint64_t PartitionDetProcess::computed_size() const {
  MMN_REQUIRE(with_size_check_, "size check was not enabled");
  MMN_REQUIRE(finished(), "partition still running");
  MMN_ASSERT(computed_size_ != 0, "size check never completed");
  return computed_size_;
}

// --- helpers ---------------------------------------------------------------

void PartitionDetProcess::send_to_children(sim::NodeContext& ctx,
                                           const sim::Packet& packet) {
  for (EdgeId e : children_) ctx.send(e, packet);
}

void PartitionDetProcess::remove_child(EdgeId edge) {
  const auto it = std::find(children_.begin(), children_.end(), edge);
  MMN_ASSERT(it != children_.end(), "removing a non-child edge");
  children_.erase(it);
}

void PartitionDetProcess::relay_up(sim::NodeContext& ctx,
                                   const sim::Packet& packet) {
  MMN_ASSERT(!is_core(), "relay_up called at the core");
  ctx.send(parent_edge_, packet);
}

void PartitionDetProcess::forward_down_and_across(sim::NodeContext& ctx,
                                                  sim::Word color,
                                                  sim::Word is_root) {
  send_to_children(ctx, sim::Packet(kColorDown, {color, is_root}));
  for (const auto& [edge, child_core] : entry_edges_) {
    (void)child_core;
    ctx.send(edge, sim::Packet(kParentColor, {color, is_root}));
  }
}

void PartitionDetProcess::start_color_exchange(sim::NodeContext& ctx,
                                               bool with_child_report) {
  if (!is_core()) return;
  forward_down_and_across(ctx, static_cast<sim::Word>(color_),
                          is_f_root_ ? 1 : 0);
  if (with_child_report && !is_f_root_) {
    send_child_report_toward_gate(ctx);
  }
}

void PartitionDetProcess::send_child_report_toward_gate(
    sim::NodeContext& ctx) {
  const auto payload = static_cast<sim::Word>(color_);
  if (best_child_edge_ == kNoEdge) {
    MMN_ASSERT(gate_edge_ != kNoEdge, "core gate without a gate edge");
    ctx.send(gate_edge_, sim::Packet(kChildColor, {payload}));
  } else {
    ctx.send(best_child_edge_, sim::Packet(kChildDown, {payload}));
  }
}

// --- step dispatch -----------------------------------------------------------

void PartitionDetProcess::step_begin(std::uint64_t step,
                                     sim::NodeContext& ctx) {
  const SubRef ref = locate(step);
  current_phase_ = ref.phase;
  switch (ref.sub) {
    case Sub::kCount:
      begin_count(ctx);
      break;
    case Sub::kSizeCheck: {
      check_slots_ = 0;
      check_aborted_ = false;
      // Budget: "resolution for 2^i rounds" (Section 7.3), each of O(log id)
      // slots.  The last phase must succeed (at most 2^i fragments remain by
      // then), so it runs the traversal to completion.
      const bool last = current_phase_ + 1 == phases_;
      check_budget_ = last ? static_cast<std::uint64_t>(-1)
                           : (std::uint64_t{4} << current_phase_) *
                                 static_cast<std::uint64_t>(bits_ + 3);
      check_resolver_.emplace(view_.n,
                              is_core() ? std::optional<std::uint64_t>(
                                              view_.self)
                                        : std::nullopt);
      break;
    }
    case Sub::kMwoe:
      begin_mwoe(ctx);
      break;
    case Sub::kConnectSend:
      begin_connect_send(ctx);
      break;
    case Sub::kConnectProc:
      begin_connect_proc(ctx);
      break;
    case Sub::kCv:
      if (is_core()) {
        if (ref.index == 0) {
          color_ = core_;  // distinct ids seed the coloring
        } else {
          apply_pending_color(locate(step - 1));
        }
        parent_color_valid_ = false;
      }
      start_color_exchange(ctx, /*with_child_report=*/false);
      break;
    case Sub::kShift:
    case Sub::kDrop:
    case Sub::kRootRed:
      if (is_core()) {
        apply_pending_color(locate(step - 1));
        parent_color_valid_ = false;
      }
      start_color_exchange(ctx, /*with_child_report=*/false);
      break;
    case Sub::kMisBlue:
    case Sub::kMisGreen:
      if (is_core()) {
        apply_pending_color(locate(step - 1));
        parent_color_valid_ = false;
        any_red_child_ = false;
      }
      start_color_exchange(ctx, /*with_child_report=*/true);
      break;
    case Sub::kMerge:
      begin_merge(ctx);
      break;
    case Sub::kNewFrag:
      begin_newfrag(ctx);
      break;
  }
}

void PartitionDetProcess::apply_pending_color(const SubRef& prev) {
  switch (prev.sub) {
    case Sub::kCv:
      if (is_f_root_) {
        color_ = cv_update_root(color_);
      } else {
        MMN_ASSERT(parent_color_valid_, "missing parent color after CV step");
        color_ = cv_update(color_, parent_color_rx_);
      }
      break;
    case Sub::kShift:
      prev_color_ = color_;
      if (is_f_root_) {
        color_ = static_cast<Color>(smallest_free_color(
            static_cast<int>(color_), static_cast<int>(color_)));
      } else {
        MMN_ASSERT(parent_color_valid_, "missing parent color in shift");
        color_ = parent_color_rx_;
      }
      break;
    case Sub::kDrop: {
      const Color dropped = static_cast<Color>(5 - prev.index);
      if (color_ == dropped) {
        const int parent_c =
            is_f_root_ ? -1 : static_cast<int>(parent_color_rx_);
        MMN_ASSERT(is_f_root_ || parent_color_valid_,
                   "missing parent color in drop");
        const int child_c =
            has_f_children_ ? static_cast<int>(prev_color_) : -1;
        color_ = static_cast<Color>(smallest_free_color(parent_c, child_c));
      }
      break;
    }
    case Sub::kRootRed:
      if (is_f_root_) {
        color_ = kRed;
      } else {
        MMN_ASSERT(parent_color_valid_, "missing parent color in root-red");
        if (parent_is_root_rx_) {
          color_ = parent_color_rx_ == kRed
                       ? static_cast<Color>(smallest_free_color(
                             static_cast<int>(kRed), static_cast<int>(color_)))
                       : parent_color_rx_;
        } else {
          color_ = parent_color_rx_;
        }
      }
      break;
    case Sub::kMisBlue:
    case Sub::kMisGreen: {
      const Color pass = prev.sub == Sub::kMisBlue ? kBlue : kGreen;
      const bool parent_red = !is_f_root_ && parent_color_rx_ == kRed;
      if (color_ == pass && !parent_red && !any_red_child_) color_ = kRed;
      break;
    }
    default:
      MMN_ASSERT(false, "no pending color action for this step");
  }
}

// --- Section 7.3 size check ----------------------------------------------------

void PartitionDetProcess::step_round(std::uint64_t step,
                                     sim::NodeContext& ctx) {
  if (locate(step).sub != Sub::kSizeCheck) return;
  if (check_aborted_ || check_resolver_->done()) return;
  if (check_resolver_->should_transmit()) {
    ctx.channel_write(sim::Packet(
        kSizeAnnounce, {static_cast<sim::Word>(view_.self),
                        static_cast<sim::Word>(subtree_size_)}));
  }
}

void PartitionDetProcess::on_slot(std::uint64_t slot_step,
                                  const sim::SlotObservation& obs,
                                  sim::NodeContext&) {
  if (locate(slot_step).sub != Sub::kSizeCheck) return;
  if (check_aborted_ || check_resolver_->done()) return;
  check_resolver_->observe(obs, obs.success() && obs.writer == view_.self);
  ++check_slots_;
  if (check_resolver_->done()) {
    // Every core's (id, size) was heard by every node: sum to the exact n.
    std::uint64_t total = 0;
    for (const sim::Packet& p : check_resolver_->successes()) {
      total += static_cast<std::uint64_t>(p[1]);
    }
    computed_size_ = total;
    final_steps_ = slot_step + 1;
  } else if (check_slots_ >= check_budget_) {
    check_aborted_ = true;  // too many fragments; keep partitioning
  }
}

bool PartitionDetProcess::observed_end(std::uint64_t step) const {
  MMN_ASSERT(locate(step).sub == Sub::kSizeCheck, "unexpected observed step");
  return check_aborted_ || check_resolver_->done();
}

// --- COUNT -------------------------------------------------------------------

void PartitionDetProcess::begin_count(sim::NodeContext& ctx) {
  // Per-phase reset.
  active_ = false;
  count_pending_ = 0;
  subtree_size_ = 1;
  probe_index_ = 0;
  probe_resolved_ = false;
  cand_weight_ = 0;
  cand_edge_ = kNoEdge;
  report_pending_ = 0;
  best_weight_ = 0;
  best_child_edge_ = kNoEdge;
  report_sent_ = false;
  have_mwoe_ = false;
  gate_edge_ = kNoEdge;
  pending_connects_.clear();
  entry_edges_.clear();
  is_f_root_ = false;
  has_f_children_ = false;
  parent_color_valid_ = false;
  any_red_child_ = false;
  red_internal_ = false;

  if (!is_core()) return;
  if (children_.empty()) {
    level_ = 0;
    MMN_ASSERT(level_ >= current_phase_, "fragment below its phase level");
    active_ = (level_ == current_phase_);
  } else {
    count_pending_ = static_cast<std::uint32_t>(children_.size());
    send_to_children(ctx, sim::Packet(kCountReq));
  }
}

// --- MWOE ---------------------------------------------------------------------

void PartitionDetProcess::begin_mwoe(sim::NodeContext& ctx) {
  if (!active_) return;
  report_pending_ = static_cast<std::uint32_t>(children_.size());
  probe_next_link(ctx);
  maybe_send_report(ctx);
}

void PartitionDetProcess::probe_next_link(sim::NodeContext& ctx) {
  const NeighborRange links = view_.links();
  while (probe_index_ < links.size()) {
    if (link_internal_[probe_index_]) {
      ++probe_index_;
      continue;
    }
    ctx.send(links[probe_index_].edge,
             sim::Packet(kTest, {static_cast<sim::Word>(core_)}));
    return;
  }
  probe_resolved_ = true;  // no outgoing link from this node
}

void PartitionDetProcess::maybe_send_report(sim::NodeContext& ctx) {
  if (!active_ || report_sent_ || !probe_resolved_ || report_pending_ != 0) {
    return;
  }
  if (cand_weight_ != 0 &&
      (best_weight_ == 0 || cand_weight_ < best_weight_)) {
    best_weight_ = cand_weight_;
    best_child_edge_ = kNoEdge;  // the fragment MWOE hangs off this node
  }
  report_sent_ = true;
  if (is_core()) {
    have_mwoe_ = best_weight_ != 0;
  } else {
    relay_up(ctx, sim::Packet(kReport, {static_cast<sim::Word>(best_weight_)}));
  }
}

// --- CONNECT -----------------------------------------------------------------

void PartitionDetProcess::begin_connect_send(sim::NodeContext& ctx) {
  if (!is_core() || !active_ || !have_mwoe_) return;
  if (best_child_edge_ == kNoEdge) {
    gate_edge_ = cand_edge_;
    ctx.send(gate_edge_, sim::Packet(kConnect, {static_cast<sim::Word>(core_)}));
  } else {
    ctx.send(best_child_edge_, sim::Packet(kConnectDown));
  }
}

void PartitionDetProcess::begin_connect_proc(sim::NodeContext& ctx) {
  if (is_core() && (!active_ || !have_mwoe_)) {
    is_f_root_ = true;  // inactive fragments and MWOE-less fragments root F
  }
  for (const auto& [edge, child_core] : pending_connects_) {
    process_connect(ctx, edge, child_core);
  }
  pending_connects_.clear();
}

void PartitionDetProcess::process_connect(sim::NodeContext& ctx, EdgeId edge,
                                          NodeId child_core) {
  if (edge == gate_edge_) {
    // Both fragments chose this edge (the only possible cycle in F).  The
    // fragment with the higher core id roots the tree and keeps the other as
    // its child; the lower one keeps its out-edge as a normal F-child.
    if (core_ > child_core) {
      entry_edges_.push_back({edge, child_core});
      if (is_core()) {
        has_f_children_ = true;
        is_f_root_ = true;
      } else {
        relay_up(ctx, sim::Packet(kFChild));
        relay_up(ctx, sim::Packet(kCycleWin));
      }
    }
    return;
  }
  entry_edges_.push_back({edge, child_core});
  if (is_core()) {
    has_f_children_ = true;
  } else {
    relay_up(ctx, sim::Packet(kFChild));
  }
}

// --- MERGE ---------------------------------------------------------------------

void PartitionDetProcess::begin_merge(sim::NodeContext& ctx) {
  if (!is_core()) return;
  apply_pending_color(SubRef{Sub::kMisGreen, current_phase_, 0});
  red_internal_ = color_ == kRed && has_f_children_;
  const bool keep_out_edge = !is_f_root_ && !red_internal_;
  if (!keep_out_edge) return;
  MMN_ASSERT(have_mwoe_, "non-root fragment without an outgoing edge");
  if (best_child_edge_ == kNoEdge) {
    // The core itself owns the chosen edge: attach directly.
    MMN_ASSERT(gate_edge_ != kNoEdge, "gate edge missing at the core");
    const int idx = view_.link_index(gate_edge_);
    parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
    parent_edge_ = gate_edge_;
    link_internal_[static_cast<std::size_t>(idx)] = true;
    ctx.send(gate_edge_, sim::Packet(kJoin));
  } else {
    const EdgeId down = best_child_edge_;
    const int idx = view_.link_index(down);
    parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
    parent_edge_ = down;
    remove_child(down);
    ctx.send(down, sim::Packet(kFlip));
  }
}

void PartitionDetProcess::begin_newfrag(sim::NodeContext& ctx) {
  if (!is_core()) return;
  MMN_ASSERT(core_ == view_.self, "core id must equal the core's node id");
  send_to_children(ctx, sim::Packet(kNewFragMsg, {static_cast<sim::Word>(core_)}));
}

// --- message handling ------------------------------------------------------------

void PartitionDetProcess::on_message(std::uint64_t /*step*/,
                                     const sim::Received& msg,
                                     sim::NodeContext& ctx) {
  const sim::Packet& p = msg.packet();
  switch (p.type()) {
    case kCountReq: {
      count_pending_ = static_cast<std::uint32_t>(children_.size());
      subtree_size_ = 1;
      if (count_pending_ == 0) {
        relay_up(ctx, sim::Packet(kCountResp, {1}));
      } else {
        send_to_children(ctx, sim::Packet(kCountReq));
      }
      break;
    }
    case kCountResp: {
      subtree_size_ += static_cast<std::uint64_t>(p[0]);
      MMN_ASSERT(count_pending_ > 0, "unexpected count response");
      if (--count_pending_ == 0) {
        if (is_core()) {
          level_ = ilog2_floor(subtree_size_);
          MMN_ASSERT(level_ >= current_phase_, "fragment below its phase level");
          active_ = (level_ == current_phase_);
          send_to_children(ctx, sim::Packet(kActiveInfo,
                                            {active_ ? 1 : 0, level_}));
        } else {
          relay_up(ctx, sim::Packet(kCountResp,
                                    {static_cast<sim::Word>(subtree_size_)}));
        }
      }
      break;
    }
    case kActiveInfo:
      active_ = p[0] != 0;
      level_ = static_cast<int>(p[1]);
      send_to_children(ctx, sim::Packet(kActiveInfo, {p[0], p[1]}));
      break;
    case kTest: {
      const NodeId sender_core = static_cast<NodeId>(p[0]);
      if (sender_core == core_) {
        const int idx = view_.link_index(msg.via);
        link_internal_[static_cast<std::size_t>(idx)] = true;
        ctx.send(msg.via, sim::Packet(kReject));
      } else {
        ctx.send(msg.via, sim::Packet(kAccept));
      }
      break;
    }
    case kReject: {
      const int idx = view_.link_index(msg.via);
      link_internal_[static_cast<std::size_t>(idx)] = true;
      ++probe_index_;
      probe_next_link(ctx);
      maybe_send_report(ctx);
      break;
    }
    case kAccept: {
      probe_resolved_ = true;
      cand_edge_ = msg.via;
      const int idx = view_.link_index(msg.via);
      cand_weight_ = view_.links()[static_cast<std::size_t>(idx)].weight;
      maybe_send_report(ctx);
      break;
    }
    case kReport: {
      const Weight w = static_cast<Weight>(p[0]);
      if (w != 0 && (best_weight_ == 0 || w < best_weight_)) {
        best_weight_ = w;
        best_child_edge_ = msg.via;
      }
      MMN_ASSERT(report_pending_ > 0, "unexpected MWOE report");
      --report_pending_;
      maybe_send_report(ctx);
      break;
    }
    case kConnectDown:
      if (best_child_edge_ == kNoEdge) {
        MMN_ASSERT(cand_edge_ != kNoEdge, "gate without a candidate edge");
        gate_edge_ = cand_edge_;
        ctx.send(gate_edge_,
                 sim::Packet(kConnect, {static_cast<sim::Word>(core_)}));
      } else {
        ctx.send(best_child_edge_, sim::Packet(kConnectDown));
      }
      break;
    case kConnect:
      pending_connects_.push_back({msg.via, static_cast<NodeId>(p[0])});
      break;
    case kFChild:
      if (is_core()) {
        has_f_children_ = true;
      } else {
        relay_up(ctx, sim::Packet(kFChild));
      }
      break;
    case kCycleWin:
      if (is_core()) {
        is_f_root_ = true;
      } else {
        relay_up(ctx, sim::Packet(kCycleWin));
      }
      break;
    case kColorDown:
      forward_down_and_across(ctx, p[0], p[1]);
      break;
    case kParentColor:
    case kParentColorUp:
      if (is_core()) {
        parent_color_rx_ = static_cast<Color>(p[0]);
        parent_is_root_rx_ = p[1] != 0;
        parent_color_valid_ = true;
      } else {
        relay_up(ctx, sim::Packet(kParentColorUp, {p[0], p[1]}));
      }
      break;
    case kChildDown:
      if (best_child_edge_ == kNoEdge) {
        MMN_ASSERT(gate_edge_ != kNoEdge, "gate without a gate edge");
        ctx.send(gate_edge_, sim::Packet(kChildColor, {p[0]}));
      } else {
        ctx.send(best_child_edge_, sim::Packet(kChildDown, {p[0]}));
      }
      break;
    case kChildColor:
    case kChildColorUp:
      if (is_core()) {
        any_red_child_ = any_red_child_ || static_cast<Color>(p[0]) == kRed;
      } else {
        relay_up(ctx, sim::Packet(kChildColorUp, {p[0]}));
      }
      break;
    case kFlip: {
      children_.push_back(msg.via);  // the old parent becomes a child
      if (best_child_edge_ == kNoEdge) {
        MMN_ASSERT(gate_edge_ != kNoEdge, "flip reached a non-gate endpoint");
        const int idx = view_.link_index(gate_edge_);
        parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
        parent_edge_ = gate_edge_;
        link_internal_[static_cast<std::size_t>(idx)] = true;
        ctx.send(gate_edge_, sim::Packet(kJoin));
      } else {
        const EdgeId down = best_child_edge_;
        const int idx = view_.link_index(down);
        parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
        parent_edge_ = down;
        remove_child(down);
        ctx.send(down, sim::Packet(kFlip));
      }
      break;
    }
    case kJoin: {
      children_.push_back(msg.via);
      const int idx = view_.link_index(msg.via);
      link_internal_[static_cast<std::size_t>(idx)] = true;
      break;
    }
    case kNewFragMsg:
      core_ = static_cast<NodeId>(p[0]);
      send_to_children(ctx, sim::Packet(kNewFragMsg, {p[0]}));
      break;
    default:
      MMN_ASSERT(false, "unexpected packet type in partition");
  }
}

}  // namespace mmn
