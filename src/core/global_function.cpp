#include "core/global_function.hpp"

#include <cmath>
#include <numeric>

#include "core/partition_det.hpp"
#include "core/partition_rand.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

constexpr std::uint16_t kHello = 161;    // child -> parent census
constexpr std::uint16_t kFold = 162;     // [partial] convergecast
constexpr std::uint16_t kPartial = 163;  // [partial] channel broadcast

/// Local fold + global channel stage, running after a partition stage whose
/// per-node state it reads through the FragmentState interface.
class ComputeStage final : public SteppedProcess {
 public:
  ComputeStage(const sim::LocalView& view, GlobalFunctionConfig config,
               sim::Word input, const FragmentState* partition)
      : view_(view), config_(config), acc_(input), partition_(partition) {}

  bool has_result() const { return finished(); }
  sim::Word result() const {
    MMN_REQUIRE(finished(), "global function still running");
    return result_;
  }

 protected:
  // Step 0: HELLO census (2 fixed rounds: send + deliver).
  // Step 1: fragment-local fold into the core (barrier).
  // Step 2: global stage on the channel (observed).
  std::uint64_t num_steps() const override { return 3; }

  StepSpec step_spec(std::uint64_t step) const override {
    if (step == 0) return {StepKind::kFixed, 2};
    if (step == 1) return {};
    return {StepKind::kObserved, 0};
  }

  void step_begin(std::uint64_t step, sim::NodeContext& ctx) override {
    switch (step) {
      case 0:
        if (!is_root()) {
          ctx.send(partition_->tree_parent_edge(), sim::Packet(kHello));
        }
        break;
      case 1:
        if (children_ == 0 && !is_root()) {
          ctx.send(partition_->tree_parent_edge(),
                   sim::Packet(kFold, {acc_}));
          sent_fold_ = true;
        }
        break;
      case 2: {
        const bool root = is_root();
        // collect_successes = false: every one of the n nodes hears every
        // success slot, and recording the payload at each would copy (and
        // eventually heap-allocate) n packets per successful root.  The
        // partials are folded incrementally in on_slot instead.
        if (config_.variant == GlobalFunctionConfig::Variant::kDeterministic) {
          capetanakis_.emplace(view_.n,
                               root ? std::optional<std::uint64_t>(view_.self)
                                    : std::nullopt,
                               /*massey_skip=*/false,
                               /*collect_successes=*/false);
        } else {
          randomized_.emplace(2.0 * static_cast<double>(isqrt_ceil(view_.n)),
                              root, /*collect_successes=*/false);
        }
        break;
      }
      default:
        MMN_ASSERT(false, "unexpected step");
    }
  }

  void on_message(std::uint64_t /*step*/, const sim::Received& msg,
                  sim::NodeContext& ctx) override {
    switch (msg.packet().type()) {
      case kHello:
        ++children_;
        break;
      case kFold:
        acc_ = semigroup_apply(config_.op, acc_, msg.packet()[0]);
        ++received_;
        MMN_ASSERT(received_ <= children_, "more folds than children");
        if (received_ == children_ && !is_root() && !sent_fold_) {
          ctx.send(partition_->tree_parent_edge(), sim::Packet(kFold, {acc_}));
          sent_fold_ = true;
        }
        break;
      default:
        MMN_ASSERT(false, "unexpected packet in global function");
    }
  }

  void step_round(std::uint64_t step, sim::NodeContext& ctx) override {
    if (step != 2) return;
    // Decide first, construct the packet only on a transmitting round:
    // almost every node stays silent almost every slot, and the Packet
    // constructor's word-array zeroing would otherwise dominate this stage.
    bool transmit;
    if (capetanakis_) {
      transmit = capetanakis_->should_transmit();
    } else {
      transmit = !randomized_->done() && randomized_->should_transmit(ctx.rng());
    }
    if (transmit) ctx.channel_write(sim::Packet(kPartial, {acc_}));
  }

  void on_slot(std::uint64_t slot_step, const sim::SlotObservation& obs,
               sim::NodeContext&) override {
    if (slot_step != 2) return;
    const bool mine = obs.success() && obs.writer == view_.self;
    // Incremental fold: a slot the resolver records as a success (its
    // success_count advances across observe — the resolvers only count
    // schedule successes, e.g. the randomized scheduler ignores busy-tone
    // lanes) contributes its partial immediately.  Same fold order as
    // replaying successes() at the end, without any node storing them.
    const std::uint64_t before = capetanakis_ ? capetanakis_->success_count()
                                              : randomized_->success_count();
    if (capetanakis_) {
      if (!capetanakis_->done()) capetanakis_->observe(obs, mine);
    } else if (!randomized_->done()) {
      randomized_->observe(obs, mine);
    }
    const std::uint64_t after = capetanakis_ ? capetanakis_->success_count()
                                             : randomized_->success_count();
    if (after != before) {
      result_ = folded_ ? semigroup_apply(config_.op, result_, obs.payload[0])
                        : obs.payload[0];
      folded_ = true;
    }
    if (observed_end(2)) {
      MMN_ASSERT(folded_, "no partial results on the channel");
    }
  }

  bool observed_end(std::uint64_t) const override {
    if (capetanakis_) return capetanakis_->done();
    return randomized_->done();
  }

 private:
  bool is_root() const { return partition_->tree_parent() == view_.self; }

  const sim::LocalView& view_;
  GlobalFunctionConfig config_;
  sim::Word acc_;
  const FragmentState* partition_;
  std::uint32_t children_ = 0;
  std::uint32_t received_ = 0;
  bool sent_fold_ = false;
  bool folded_ = false;
  sim::Word result_ = 0;
  std::optional<CapetanakisResolver> capetanakis_;
  std::optional<RandomizedScheduler> randomized_;
};

}  // namespace

sim::Word semigroup_apply(SemigroupOp op, sim::Word a, sim::Word b) {
  switch (op) {
    case SemigroupOp::kSum:
      return a + b;
    case SemigroupOp::kMin:
      return a < b ? a : b;
    case SemigroupOp::kMax:
      return a > b ? a : b;
    case SemigroupOp::kXor:
      return a ^ b;
    case SemigroupOp::kGcd:
      return std::gcd(a, b);
  }
  MMN_ASSERT(false, "unknown semigroup operation");
  return 0;
}

int balanced_phase_count(NodeId n) {
  if (n <= 2) return partition_phases(n);
  const double target = std::sqrt(static_cast<double>(n) *
                                  ilog2_ceil(n) /
                                  std::max(1, log_star(n)));
  int p = partition_phases(n);
  const int cap = ilog2_floor(n) + 1;
  while (p < cap && (1u << p) < target) ++p;
  return p;
}

GlobalFunctionProcess::GlobalFunctionProcess(const sim::LocalView& view,
                                             GlobalFunctionConfig config,
                                             sim::Word input) {
  std::vector<std::unique_ptr<SteppedProcess>> stages;
  const FragmentState* partition = nullptr;
  if (config.variant == GlobalFunctionConfig::Variant::kDeterministic) {
    PartitionDetConfig pconfig;
    if (config.balanced) pconfig.phases = balanced_phase_count(view.n);
    auto stage = std::make_unique<PartitionDetProcess>(view, pconfig);
    partition = stage.get();
    stages.push_back(std::move(stage));
  } else {
    MMN_REQUIRE(!config.balanced,
                "the balanced refinement applies to the deterministic variant");
    auto stage =
        std::make_unique<PartitionRandProcess>(view, PartitionRandConfig{});
    partition = stage.get();
    stages.push_back(std::move(stage));
  }
  auto compute = std::make_unique<ComputeStage>(view, config, input, partition);
  compute_stage_ = compute.get();
  stages.push_back(std::move(compute));
  sequence_ = std::make_unique<SteppedSequenceProcess>(std::move(stages));
}

void GlobalFunctionProcess::round(sim::NodeContext& ctx) {
  sequence_->round(ctx);
}

bool GlobalFunctionProcess::finished() const { return sequence_->finished(); }

sim::Word GlobalFunctionProcess::result() const {
  return static_cast<const ComputeStage*>(compute_stage_)->result();
}

}  // namespace mmn
