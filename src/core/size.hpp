// Network-size computation and estimation (Sections 7.3 and 7.4).
//
// Deterministic: PartitionDetProcess with `with_size_check` runs the paper's
// modified partitioning — after each phase it tries to schedule the fragment
// cores on the channel within a 2^i * O(log id) slot budget; the first
// attempt that completes carries every fragment's size in the clear, so all
// nodes sum them to the exact n and stop, in O(sqrt(n) log id) time.
// DeterministicSizeProcess is a thin facade over that configuration.
//
// Randomized (Greenberg–Ladner): rounds of collective coin flips with
// probability 2^-i of transmitting a busy tone; the index of the first idle
// round estimates log2 n.  Channel-only, works for anonymous nodes and needs
// O(log n) slots.
#pragma once

#include <cstdint>

#include "channel/size_estimator.hpp"
#include "core/partition_det.hpp"
#include "core/stepped.hpp"

namespace mmn {

/// Section 7.3 — exact n via the partition-with-check.
class DeterministicSizeProcess final : public sim::Process {
 public:
  explicit DeterministicSizeProcess(const sim::LocalView& view);

  void round(sim::NodeContext& ctx) override { inner_.round(ctx); }
  bool finished() const override { return inner_.finished(); }

  /// The exact network size; valid once finished, identical at every node.
  std::uint64_t network_size() const { return inner_.computed_size(); }

  const PartitionDetProcess& partition() const { return inner_; }

 private:
  static PartitionDetConfig config_with_check() {
    PartitionDetConfig config;
    config.with_size_check = true;
    return config;
  }

  PartitionDetProcess inner_;
};

/// Section 7.4 — Greenberg–Ladner randomized estimate (one observed step).
class SizeEstimateProcess final : public SteppedProcess {
 public:
  explicit SizeEstimateProcess(const sim::LocalView&) {}

  /// 2^k for the first idle round k; a constant-factor estimate of n w.h.p.
  std::uint64_t estimate() const { return estimator_.estimate(); }

  /// Rounds (slots) the estimation took.
  int rounds_used() const { return estimator_.rounds(); }

 protected:
  std::uint64_t num_steps() const override { return 1; }
  StepSpec step_spec(std::uint64_t) const override {
    return {StepKind::kObserved, 0};
  }
  void step_begin(std::uint64_t, sim::NodeContext&) override {}
  void on_message(std::uint64_t, const sim::Received&,
                  sim::NodeContext&) override {
    MMN_ASSERT(false, "size estimation never uses point-to-point links");
  }
  void step_round(std::uint64_t, sim::NodeContext& ctx) override {
    if (!estimator_.done() && estimator_.should_transmit(ctx.rng())) {
      ctx.channel_write(sim::Packet(221));
    }
  }
  void on_slot(std::uint64_t, const sim::SlotObservation& obs,
               sim::NodeContext&) override {
    if (!estimator_.done()) estimator_.observe(obs);
  }
  bool observed_end(std::uint64_t) const override { return estimator_.done(); }

 private:
  SizeEstimator estimator_;
};

}  // namespace mmn
