// Open-loop QoS stations: the workload half of the traffic subsystem.
//
// Each node runs an open-loop station: a TrafficSource (sim/traffic.hpp)
// pushes arrivals at it every slot regardless of channel state, each
// arrival is assigned a QosClass from the configured mix, and the station
// keeps one FIFO per class.  Every slot the station re-writes the
// head-of-line packet of its most urgent non-empty queue to the channel —
// the station carries no medium-access logic of its own; the registered
// ChannelDiscipline is the MAC (the ContentionGlobalProcess pattern).  A
// write that the discipline defers or loses is simply re-written next slot
// with the same enqueue stamp, so replace semantics in the discipline
// never lose a packet.
//
// When a station observes its own transmission succeed it pops that head,
// folds the enqueue->delivery delay into the shard's LatencyRecorder
// block, and (optionally) gossips a delivery notice to its neighbors —
// the point-to-point leg that keeps the message arena exercised under
// steady open-loop load and makes the topology family visible in the
// run's traffic.  Stations stop generating at `horizon` slots and report
// finished; a deferring discipline then drains its backlog while rounds
// continue (the engines keep stepping until the channel idles).  One
// boundary artifact is accepted: the synchronous engine stops the moment
// the channel idles, so the observation round of the very last drained
// transmission may not run — that delivery goes unrecorded (at most one
// packet, identically under every scheduler).
//
// Both engine variants exist — OpenLoopProcess for lockstep rounds and
// AsyncOpenLoopProcess for the native slot-phase policy (no synchronizer:
// stations tolerate deferred slots, so deferring disciplines are fine
// here, unlike the synchronizer path scenario::run guards).  Both fold
// identical per-node state, exposed through OpenLoopStats for digests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/traffic.hpp"

namespace mmn {

/// Channel payload of an open-loop station: word 0 is the enqueue slot.
/// The QosClass rides in the tag's class bits (qos_tagged).
inline constexpr std::uint16_t kLoadPacketType = 0x2F0;
/// Delivery-notice gossip to neighbors: words are {enqueue slot, delay}.
inline constexpr std::uint16_t kLoadNotifyType = 0x2F1;

struct OpenLoopConfig {
  sim::ArrivalKind arrivals = sim::ArrivalKind::kPoisson;
  /// Aggregate offered load, packets per slot across ALL stations; each
  /// node's TrafficSource runs at offered / n.  The channel serves at most
  /// one packet per slot, so offered > 1 is guaranteed saturation.
  double offered = 0.5;
  /// Class mix of arrivals (voice, video, data); normalized internally.
  std::array<double, sim::kNumQosClasses> mix{0.25, 0.25, 0.50};
  /// Slots of arrival generation; stations finish once it elapses.
  std::uint64_t horizon = 1200;
  /// Gossip a delivery notice to neighbors on every own success.
  bool gossip = true;
};

/// Per-node open-loop tallies, identical across engines and schedulers.
struct OpenLoopCounters {
  std::array<std::uint64_t, sim::kNumQosClasses> arrivals{};
  std::array<std::uint64_t, sim::kNumQosClasses> delivered{};
  std::array<std::uint64_t, sim::kNumQosClasses> delay_sum{};
  std::uint64_t gossip_seen = 0;      ///< delivery notices read from inbox
  std::uint64_t gossip_checksum = 0;  ///< order-sensitive fold over notices
};

/// Engine-generic read surface of a station, for digests and tests.
class OpenLoopStats {
 public:
  virtual ~OpenLoopStats() = default;
  virtual const OpenLoopCounters& counters() const = 0;
  /// Undelivered packets queued at this station in the given class.
  virtual std::uint64_t backlog(sim::QosClass cls) const = 0;
  /// FNV-1a fold of every counter, queue depth, and head stamp — one word
  /// per node that pins the station's externally visible state bit for bit.
  virtual std::uint64_t digest_word() const = 0;
};

/// One station's queues + counters, shared by both engine variants.  The
/// per-slot steps are templates over the context type: NodeContext and
/// AsyncContext expose the same rng()/note_arrivals()/record_latency()/
/// broadcast() surface, and the instantiations stay byte-for-byte the same
/// logic, which is what keeps the two engines' per-node state comparable.
struct OpenLoopStation {
  /// One per-class FIFO of enqueue slots.  pop() recycles the backing
  /// vector once drained, so a stable station reaches a high-water
  /// capacity during warmup and never allocates again.
  struct SlotQueue {
    std::vector<std::uint64_t> buf;
    std::size_t head = 0;

    bool empty() const { return head == buf.size(); }
    std::uint64_t size() const { return buf.size() - head; }
    std::uint64_t front() const { return buf[head]; }
    void push(std::uint64_t enq) {
      if (head != 0 && head == buf.size()) {
        buf.clear();
        head = 0;
      }
      buf.push_back(enq);
    }
    void pop() {
      ++head;
      if (head == buf.size()) {
        buf.clear();
        head = 0;
      }
    }
  };

  OpenLoopStation(const sim::LocalView& view, const OpenLoopConfig& config);

  OpenLoopConfig config;
  sim::TrafficSource source;
  std::array<double, sim::kNumQosClasses> cum_mix{};  // normalized cumulative
  std::array<SlotQueue, sim::kNumQosClasses> queues;
  OpenLoopCounters counters;

  std::uint64_t backlog(sim::QosClass cls) const {
    return queues[static_cast<std::size_t>(cls)].size();
  }
  std::uint64_t digest_word() const;

  /// Most urgent non-empty queue, or -1 when idle.
  int head_class() const {
    for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
      if (!queues[c].empty()) return static_cast<int>(c);
    }
    return -1;
  }

  /// The head-of-line packet the station (re-)writes this slot.
  sim::Packet head_packet() const {
    const int c = head_class();
    MMN_DCHECK(c >= 0, "head_packet on an idle station");
    const auto cls = static_cast<sim::QosClass>(c);
    return sim::Packet(
        sim::qos_tagged(kLoadPacketType, cls),
        {static_cast<sim::Word>(queues[static_cast<std::size_t>(c)].front())});
  }

  /// Draws this slot's arrivals and classes from the node's own stream and
  /// queues them; folds per-class counts into the shard's recorder block.
  template <typename Ctx>
  void arrive(Ctx& ctx, std::uint64_t slot) {
    const std::uint32_t k = source.arrivals(ctx.rng());
    std::array<std::uint32_t, sim::kNumQosClasses> fresh{};
    for (std::uint32_t i = 0; i < k; ++i) {
      const double u = ctx.rng().next_double();
      std::size_t c = 0;
      while (c + 1 < sim::kNumQosClasses && u >= cum_mix[c]) ++c;
      queues[c].push(slot);
      ++fresh[c];
    }
    for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
      if (fresh[c] == 0) continue;
      counters.arrivals[c] += fresh[c];
      ctx.note_arrivals(static_cast<sim::QosClass>(c), fresh[c]);
    }
  }

  /// Handles this station's own successful transmission: pops the matching
  /// head, records the delay, gossips the delivery notice.
  template <typename Ctx>
  void delivered(Ctx& ctx, const sim::Packet& payload,
                 std::uint64_t delivered_slot) {
    const sim::QosClass cls = sim::qos_of_tag(payload.type());
    const auto c = static_cast<std::size_t>(cls);
    const auto enq = static_cast<std::uint64_t>(payload[0]);
    MMN_ASSERT(!queues[c].empty() && queues[c].front() == enq,
               "delivered payload does not match the head-of-line packet");
    queues[c].pop();
    const std::uint64_t delay = delivered_slot - enq;
    ++counters.delivered[c];
    counters.delay_sum[c] += delay;
    ctx.record_latency(cls, delay);
    if (config.gossip) {
      ctx.broadcast(sim::Packet(kLoadNotifyType,
                                {static_cast<sim::Word>(enq),
                                 static_cast<sim::Word>(delay)}));
    }
  }

  /// Folds one neighbor's delivery notice into the gossip checksum.
  void fold_gossip(NodeId from, const sim::Packet& pkt);
};

/// The synchronous station.
class OpenLoopProcess final : public sim::Process, public OpenLoopStats {
 public:
  OpenLoopProcess(const sim::LocalView& view, const OpenLoopConfig& config);

  void round(sim::NodeContext& ctx) override;
  bool finished() const override { return done_; }

  const OpenLoopCounters& counters() const override { return state_.counters; }
  std::uint64_t backlog(sim::QosClass cls) const override {
    return state_.backlog(cls);
  }
  std::uint64_t digest_word() const override { return state_.digest_word(); }

 private:
  OpenLoopStation state_;
  bool done_ = false;
};

/// The asynchronous station — the same state machine on the slot-phase
/// policy, without the synchronizer (deferring disciplines welcome: an
/// open-loop station reads nothing into idle slots).
class AsyncOpenLoopProcess final : public sim::AsyncProcess,
                                   public OpenLoopStats {
 public:
  AsyncOpenLoopProcess(const sim::LocalView& view, const OpenLoopConfig& config);

  void start(sim::AsyncContext& ctx) override;
  void on_message(const sim::Received& msg, sim::AsyncContext& ctx) override;
  void on_slot(const sim::SlotObservation& obs, sim::AsyncContext& ctx) override;
  bool finished() const override { return done_; }

  const OpenLoopCounters& counters() const override { return state_.counters; }
  std::uint64_t backlog(sim::QosClass cls) const override {
    return state_.backlog(cls);
  }
  std::uint64_t digest_word() const override { return state_.digest_word(); }

 private:
  OpenLoopStation state_;
  bool done_ = false;
};

/// Station factories.  `n` (for the per-node rate offered / n) comes from
/// each node's view, so the factories close over only the config.
sim::ProcessFactory make_open_loop_factory(const OpenLoopConfig& config);
sim::AsyncProcessFactory make_open_loop_async_factory(
    const OpenLoopConfig& config);

/// Node-major FNV-1a fold over stations [begin, begin + n), starting the
/// accumulator at h0.  The defaults fold the whole run from the offset
/// basis; rank mode (scenario/rank_run.hpp) chains per-window folds through
/// h0 to reproduce the serial digest bit for bit.
std::uint64_t open_loop_digest(
    NodeId n, const std::function<const OpenLoopStats&(NodeId)>& at,
    NodeId begin = 0, std::uint64_t h0 = 0xcbf29ce484222325ULL);

/// One synchronous open-loop run end to end, for benches and tests: builds
/// the engine over `g` under the given discipline and scheduler (null =
/// serial), runs the horizon plus a bounded drain window, and reports model
/// metrics, the per-node digest, and the merged per-class summaries.
///
/// `quiescent` is the engine's own completion verdict within the budget.
/// Under a deferring discipline (stabilized/reservation) it means the
/// backlog fully drained.  Under free-for-all the engine cannot see
/// station-side backlog — two simultaneously backlogged stations re-collide
/// every slot forever, and the run cuts off right after the horizon with
/// the livelocked backlog standing (classes[c].backlog() reports it); the
/// load sweep is designed to expose exactly that curve.
/// Degradation section of a faulted load run (zeroed when no plan is
/// installed): the run's FaultStats plus the report-level orphan count —
/// the backlog stranded in stations still crashed at run end, which is
/// excluded from livelock interpretation (those packets are lost to the
/// crash, not waiting on the channel).
struct LoadDegradation {
  sim::FaultStats faults;
  /// Delivered / arrivals over the whole run, all classes (1.0 when no
  /// packet was ever generated).  The churn bench publishes the ratio of
  /// this value between a churned and a clean run as goodput_retention.
  double delivered_ratio = 1.0;
};

struct LoadReport {
  Metrics metrics;
  std::uint64_t digest = 0;
  std::uint64_t slots = 0;  ///< slots actually executed (= metrics.rounds)
  bool quiescent = false;
  std::array<sim::QosSummary, sim::kNumQosClasses> classes{};
  LoadDegradation degradation;
};

/// `faults` installs a deterministic fault plan on the engine (null = the
/// fault-free fast path); the report's degradation section and digest then
/// cover the fault trajectory too.
LoadReport run_open_loop(const Graph& g, const OpenLoopConfig& config,
                         sim::DisciplineKind discipline, std::uint64_t seed,
                         std::unique_ptr<sim::Scheduler> scheduler = nullptr,
                         const sim::FaultPlan* faults = nullptr);

}  // namespace mmn
