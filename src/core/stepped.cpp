#include "core/stepped.hpp"

#include "support/check.hpp"

namespace mmn {

void SteppedProcess::on_slot(std::uint64_t, const sim::SlotObservation&,
                             sim::NodeContext&) {}

void SteppedProcess::step_round(std::uint64_t, sim::NodeContext&) {}

bool SteppedProcess::step_done(std::uint64_t) const { return true; }

bool SteppedProcess::observed_end(std::uint64_t) const { return false; }

void SteppedProcess::round(sim::NodeContext& ctx) {
  if (finished_) return;

  if (!started_) {
    started_ = true;
    if (num_steps() == 0) {
      finished_ = true;
      return;
    }
    step_begin(0, ctx);
  } else {
    if (slot_owner_ != kNoStep) on_slot(slot_owner_, ctx.slot(), ctx);

    bool advance = false;
    switch (step_spec(step_).kind) {
      case StepKind::kBarrier:
        // Only an idle slot that this step itself owned proves quiescence;
        // the slot that *triggered* the step's start belongs to its
        // predecessor.
        advance = slot_owner_ == step_ && ctx.slot().idle();
        break;
      case StepKind::kFixed:
        advance = rounds_in_step_ >= step_spec(step_).fixed_rounds;
        break;
      case StepKind::kObserved:
        advance = observed_end(step_);
        break;
    }
    if (advance) {
      ++step_;
      rounds_in_step_ = 0;
      if (step_ >= num_steps()) {
        finished_ = true;
        return;
      }
      step_begin(step_, ctx);
    }
  }

  for (const sim::Received& msg : ctx.inbox()) {
    on_message(step_, msg, ctx);
  }
  step_round(step_, ctx);

  if (step_spec(step_).kind == StepKind::kBarrier) {
    MMN_ASSERT(!ctx.wrote_channel(),
               "barrier steps reserve the channel for busy tones");
    if (!step_done(step_) || ctx.sent_message()) {
      ctx.channel_write(sim::Packet(kBusyTone));
    }
  }

  slot_owner_ = step_;
  ++rounds_in_step_;
}

SequenceProcess::SequenceProcess(
    std::vector<std::unique_ptr<sim::Process>> stages)
    : stages_(std::move(stages)) {
  MMN_REQUIRE(!stages_.empty(), "sequence needs at least one stage");
  for (const auto& s : stages_) {
    MMN_REQUIRE(s != nullptr, "sequence stage must not be null");
  }
}

void SequenceProcess::round(sim::NodeContext& ctx) {
  while (index_ < stages_.size() && stages_[index_]->finished()) {
    ++index_;
  }
  if (index_ < stages_.size()) {
    stages_[index_]->round(ctx);
  }
}

sim::Process& SequenceProcess::stage(std::size_t i) {
  MMN_REQUIRE(i < stages_.size(), "stage index out of range");
  return *stages_[i];
}

const sim::Process& SequenceProcess::stage(std::size_t i) const {
  MMN_REQUIRE(i < stages_.size(), "stage index out of range");
  return *stages_[i];
}

}  // namespace mmn
