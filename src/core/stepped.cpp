#include "core/stepped.hpp"

#include "support/check.hpp"

namespace mmn {

void SteppedProcess::on_slot(std::uint64_t, const sim::SlotObservation&,
                             sim::NodeContext&) {}

void SteppedProcess::step_round(std::uint64_t, sim::NodeContext&) {}

bool SteppedProcess::step_done(std::uint64_t) const { return true; }

bool SteppedProcess::observed_end(std::uint64_t) const { return false; }

void SteppedProcess::round(sim::NodeContext& ctx) {
  if (finished_) return;

  // The running step's spec is cached at step entry: step_spec must be a
  // pure function of the step index and of state fixed before the step
  // starts (every node evaluates it identically anyway — a spec that
  // changed mid-step would desynchronize the network).  Caching keeps the
  // per-round loop free of the step_spec virtual calls, which dominate the
  // framework's own cost at scale; num_steps() — which MAY grow as shared
  // information arrives — is still consulted fresh at every transition.
  if (!started_) {
    started_ = true;
    if (num_steps() == 0) {
      finished_ = true;
      return;
    }
    spec_ = step_spec(0);
    step_begin(0, ctx);
  } else {
    if (slot_owner_ != kNoStep) on_slot(slot_owner_, ctx.slot(), ctx);

    bool advance = false;
    switch (spec_.kind) {
      case StepKind::kBarrier:
        // Only an idle slot that this step itself owned proves quiescence;
        // the slot that *triggered* the step's start belongs to its
        // predecessor.
        advance = slot_owner_ == step_ && ctx.slot().idle();
        break;
      case StepKind::kFixed:
        advance = rounds_in_step_ >= spec_.fixed_rounds;
        break;
      case StepKind::kObserved:
        advance = observed_end(step_);
        break;
    }
    if (advance) {
      ++step_;
      rounds_in_step_ = 0;
      if (step_ >= num_steps()) {
        finished_ = true;
        return;
      }
      spec_ = step_spec(step_);
      step_begin(step_, ctx);
    }
  }

  for (const sim::Received& msg : ctx.inbox()) {
    on_message(step_, msg, ctx);
  }
  step_round(step_, ctx);

  if (spec_.kind == StepKind::kBarrier) {
    MMN_ASSERT(!ctx.wrote_channel(),
               "barrier steps reserve the channel for busy tones");
    if (!step_done(step_) || ctx.sent_message()) {
      ctx.channel_write(sim::Packet(kBusyTone));
    }
  }

  slot_owner_ = step_;
  ++rounds_in_step_;
}

}  // namespace mmn
