#include "core/synchronizer.hpp"

#include "support/check.hpp"

namespace mmn {

SynchronizerProcess::SynchronizerProcess(const sim::LocalView& view,
                                         std::unique_ptr<sim::Process> inner)
    : view_(view), inner_(std::move(inner)) {
  MMN_REQUIRE(inner_ != nullptr, "synchronizer needs an inner process");
}

void SynchronizerProcess::start(sim::AsyncContext&) {
  // The first pulse arrives with the first idle slot; nothing to do yet.
}

void SynchronizerProcess::on_message(const sim::Received& msg,
                                     sim::AsyncContext& ctx) {
  if (msg.packet().type() == kAck) {
    MMN_ASSERT(pending_acks_ > 0, "unexpected acknowledgement");
    --pending_acks_;
    return;
  }
  // Acknowledge immediately and hold the message for the next pulse.  The
  // payload is copied out of the engine's pooled storage: the Received's
  // packet pointer dies with the delivery sub-round.
  ctx.send(msg.via, sim::Packet(kAck));
  buffered_.push_back(Buffered{msg.from, msg.via, msg.packet()});
}

void SynchronizerProcess::on_slot(const sim::SlotObservation& obs,
                                  sim::AsyncContext& ctx) {
  if (obs.idle() && !inner_->finished()) {
    // Pulse: every message of the previous simulated round has been
    // delivered (its sender would otherwise still hold a busy tone).  The
    // buffer is the inner round's inbox; nothing new can arrive while the
    // inner round runs, so clearing afterwards is safe.
    //
    // The inner synchronous process sees a NodeContext whose "round" is the
    // pulse count, whose inbox is the buffer filled since the previous
    // pulse, and whose sends go out as acknowledged asynchronous messages
    // through the sink hooks below.  The channel is off limits — the
    // synchronizer owns it.
    inbox_view_.clear();
    for (const Buffered& b : buffered_) {
      inbox_view_.push_back(sim::Received{b.from, b.via, &b.packet});
    }
    struct ShimEnv {
      SynchronizerProcess* owner;
      sim::AsyncContext* async;
    } env{this, &ctx};
    static const sim::SlotObservation kIdle{};  // channel belongs to us
    sim::NodeContext shim(
        view_, ctx.rng(), inbox_view_, kIdle, pulses_,
        sim::NodeContext::Sink{
            [](void* self, EdgeId edge, const sim::Packet& packet) {
              auto* e = static_cast<ShimEnv*>(self);
              MMN_REQUIRE(packet.type() < kBusy,
                          "packet types 0xFFFD..0xFFFF are reserved");
              e->async->send(edge, packet);
              ++e->owner->pending_acks_;
            },
            [](void*, const sim::Packet&) {
              MMN_REQUIRE(false,
                          "synchronized protocols must not use the channel");
            },
            &env});
    inner_->round(shim);
    buffered_.clear();
    inbox_view_.clear();
    ++pulses_;
  }
  // Hold the busy tone while any of our messages is unacknowledged (the
  // sends above happen within this slot, so the tone covers them too).
  if (pending_acks_ > 0) {
    ctx.channel_write(sim::Packet(kBusy));
  }
}

bool SynchronizerProcess::finished() const {
  return inner_->finished() && pending_acks_ == 0;
}

sim::AsyncProcessFactory synchronize(sim::ProcessFactory factory) {
  return [factory = std::move(factory)](const sim::LocalView& view) {
    return std::make_unique<SynchronizerProcess>(view, factory(view));
  };
}

}  // namespace mmn
