#include "core/synchronizer.hpp"

#include "support/check.hpp"

namespace mmn {

/// NodeContext the inner synchronous process sees: its "round" is the pulse
/// count, its inbox is the buffer the synchronizer filled since the previous
/// pulse, and its sends go out as acknowledged asynchronous messages.  The
/// channel is off limits — the synchronizer owns it.
class SynchronizerProcess::Shim final : public sim::NodeContext {
 public:
  Shim(SynchronizerProcess& owner, sim::AsyncContext& async,
       std::uint64_t round)
      : owner_(owner), async_(async), round_(round) {}

  std::uint64_t round() const override { return round_; }
  const sim::LocalView& view() const override { return owner_.view_; }
  Rng& rng() override { return async_.rng(); }
  std::span<const sim::Received> inbox() const override {
    return owner_.buffered_;
  }
  const sim::SlotObservation& slot() const override {
    static const sim::SlotObservation kIdle{};
    return kIdle;  // the channel belongs to the synchronizer
  }
  void send(EdgeId edge, const sim::Packet& packet) override {
    MMN_REQUIRE(packet.type() < kBusy,
                "packet types 0xFFFD..0xFFFF are reserved");
    async_.send(edge, packet);
    ++owner_.pending_acks_;
    sent_ = true;
  }
  void channel_write(const sim::Packet&) override {
    MMN_REQUIRE(false, "synchronized protocols must not use the channel");
  }
  bool wrote_channel() const override { return false; }
  bool sent_message() const override { return sent_; }

 private:
  SynchronizerProcess& owner_;
  sim::AsyncContext& async_;
  std::uint64_t round_;
  bool sent_ = false;
};

SynchronizerProcess::SynchronizerProcess(const sim::LocalView& view,
                                         std::unique_ptr<sim::Process> inner)
    : view_(view), inner_(std::move(inner)) {
  MMN_REQUIRE(inner_ != nullptr, "synchronizer needs an inner process");
}

void SynchronizerProcess::start(sim::AsyncContext&) {
  // The first pulse arrives with the first idle slot; nothing to do yet.
}

void SynchronizerProcess::on_message(const sim::Received& msg,
                                     sim::AsyncContext& ctx) {
  if (msg.packet.type() == kAck) {
    MMN_ASSERT(pending_acks_ > 0, "unexpected acknowledgement");
    --pending_acks_;
    return;
  }
  // Acknowledge immediately and hold the message for the next pulse.
  ctx.send(msg.via, sim::Packet(kAck));
  buffered_.push_back(msg);
}

void SynchronizerProcess::on_slot(const sim::SlotObservation& obs,
                                  sim::AsyncContext& ctx) {
  if (obs.idle() && !inner_->finished()) {
    // Pulse: every message of the previous simulated round has been
    // delivered (its sender would otherwise still hold a busy tone).  The
    // buffer is the inner round's inbox; nothing new can arrive while the
    // inner round runs, so clearing afterwards is safe.
    Shim shim(*this, ctx, pulses_);
    inner_->round(shim);
    buffered_.clear();
    ++pulses_;
  }
  // Hold the busy tone while any of our messages is unacknowledged (the
  // sends above happen within this slot, so the tone covers them too).
  if (pending_acks_ > 0) {
    ctx.channel_write(sim::Packet(kBusy));
  }
}

bool SynchronizerProcess::finished() const {
  return inner_->finished() && pending_acks_ == 0;
}

sim::AsyncProcessFactory synchronize(sim::ProcessFactory factory) {
  return [factory = std::move(factory)](const sim::LocalView& view) {
    return std::make_unique<SynchronizerProcess>(view, factory(view));
  };
}

}  // namespace mmn
