#include "core/openloop.hpp"

#include <cmath>
#include <utility>

#include "support/check.hpp"

namespace mmn {

namespace {

// Word-level FNV-1a fold, the same mix the scenario registry digests use.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t word) {
  return (h ^ word) * kFnvPrime;
}

/// Shapes one node's TrafficConfig from the run config.  Poisson and
/// constant sources run at the per-node rate directly; on-off sources keep
/// the same mean rate as bursts of 4 packets in one ON slot per cycle, with
/// the cycle phase staggered by node id so the aggregate is a rolling wave
/// of bursts rather than n synchronized ones.
sim::TrafficConfig shape_traffic(const OpenLoopConfig& config, NodeId self,
                                 NodeId n) {
  MMN_REQUIRE(n >= 1, "open-loop stations need a non-empty network");
  const double rate = config.offered / static_cast<double>(n);
  sim::TrafficConfig tc;
  tc.kind = config.arrivals;
  switch (config.arrivals) {
    case sim::ArrivalKind::kPoisson:
    case sim::ArrivalKind::kConstant:
      tc.rate = rate;
      break;
    case sim::ArrivalKind::kOnOff: {
      MMN_REQUIRE(rate > 0.0, "on-off stations need a positive offered load");
      tc.burst = 4;
      tc.on_slots = 1;
      const auto cycle = static_cast<std::uint64_t>(
          std::max<long long>(2, std::llround(4.0 / rate)));
      tc.off_slots = static_cast<std::uint32_t>(cycle - 1);
      tc.phase = (static_cast<std::uint64_t>(self) * 13) % cycle;
      break;
    }
  }
  return tc;
}

}  // namespace

OpenLoopStation::OpenLoopStation(const sim::LocalView& view,
                                 const OpenLoopConfig& config)
    : config(config), source(shape_traffic(config, view.self, view.n)) {
  double sum = 0.0;
  for (const double m : config.mix) {
    MMN_REQUIRE(m >= 0.0, "class mix weights must be non-negative");
    sum += m;
  }
  MMN_REQUIRE(sum > 0.0, "class mix must have positive total weight");
  double acc = 0.0;
  for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
    acc += config.mix[c] / sum;
    cum_mix[c] = acc;
  }
  cum_mix[sim::kNumQosClasses - 1] = 1.0;  // immune to rounding drift
  // Pre-size every class FIFO: at low per-node rates a class queue can see
  // its first arrival long after any warmup window, and that first
  // push_back must not be the allocation that breaks the zero-steady-state
  // guarantee (tests/test_alloc.cpp).  Backlog beyond this still grows the
  // vector — that is the saturated regime, not steady state.
  for (SlotQueue& q : queues) q.buf.reserve(8);
}

void OpenLoopStation::fold_gossip(NodeId from, const sim::Packet& pkt) {
  ++counters.gossip_seen;
  std::uint64_t h = counters.gossip_checksum;
  h = fnv_mix(h, from);
  h = fnv_mix(h, static_cast<std::uint64_t>(pkt[0]));
  h = fnv_mix(h, static_cast<std::uint64_t>(pkt[1]));
  counters.gossip_checksum = h;
}

std::uint64_t OpenLoopStation::digest_word() const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
    h = fnv_mix(h, counters.arrivals[c]);
    h = fnv_mix(h, counters.delivered[c]);
    h = fnv_mix(h, counters.delay_sum[c]);
    h = fnv_mix(h, queues[c].size());
    h = fnv_mix(h, queues[c].empty() ? ~std::uint64_t{0} : queues[c].front());
  }
  h = fnv_mix(h, counters.gossip_seen);
  h = fnv_mix(h, counters.gossip_checksum);
  return h;
}

// ---- synchronous station ---------------------------------------------------

OpenLoopProcess::OpenLoopProcess(const sim::LocalView& view,
                                 const OpenLoopConfig& config)
    : state_(view, config), done_(config.horizon == 0) {}

void OpenLoopProcess::round(sim::NodeContext& ctx) {
  const std::uint64_t r = ctx.round();
  // The observation in hand is the outcome of round r - 1's slot.
  const sim::SlotObservation& obs = ctx.slot();
  if (obs.success() && obs.writer == ctx.self() &&
      sim::qos_base_type(obs.payload.type()) == kLoadPacketType) {
    state_.delivered(ctx, obs.payload, r - 1);
  }
  for (const sim::Received& msg : ctx.inbox()) {
    if (msg.packet().type() == kLoadNotifyType) {
      state_.fold_gossip(msg.from, msg.packet());
    }
  }
  if (r < state_.config.horizon) {
    state_.arrive(ctx, r);
  } else {
    done_ = true;  // generation over; the engine drains the backlog
  }
  if (state_.head_class() >= 0) {
    ctx.channel_write(state_.head_packet());
  }
}

// ---- asynchronous station --------------------------------------------------

AsyncOpenLoopProcess::AsyncOpenLoopProcess(const sim::LocalView& view,
                                           const OpenLoopConfig& config)
    : state_(view, config), done_(config.horizon == 0) {}

void AsyncOpenLoopProcess::start(sim::AsyncContext& ctx) {
  if (done_) return;
  state_.arrive(ctx, 0);
  if (state_.head_class() >= 0) {
    ctx.channel_write(state_.head_packet());
  }
}

void AsyncOpenLoopProcess::on_message(const sim::Received& msg,
                                      sim::AsyncContext& ctx) {
  (void)ctx;
  if (msg.packet().type() == kLoadNotifyType) {
    state_.fold_gossip(msg.from, msg.packet());
  }
}

void AsyncOpenLoopProcess::on_slot(const sim::SlotObservation& obs,
                                   sim::AsyncContext& ctx) {
  // slot_index() is the slot now in progress; obs ended slot_index() - 1.
  const std::uint64_t s = ctx.slot_index();
  if (obs.success() && obs.writer == ctx.self() &&
      sim::qos_base_type(obs.payload.type()) == kLoadPacketType) {
    state_.delivered(ctx, obs.payload, s - 1);
  }
  if (s < state_.config.horizon) {
    state_.arrive(ctx, s);
  } else {
    done_ = true;
  }
  if (state_.head_class() >= 0) {
    ctx.channel_write(state_.head_packet());
  }
}

// ---- factories and the end-to-end helper -----------------------------------

sim::ProcessFactory make_open_loop_factory(const OpenLoopConfig& config) {
  return [config](const sim::LocalView& view) {
    return std::make_unique<OpenLoopProcess>(view, config);
  };
}

sim::AsyncProcessFactory make_open_loop_async_factory(
    const OpenLoopConfig& config) {
  return [config](const sim::LocalView& view) {
    return std::make_unique<AsyncOpenLoopProcess>(view, config);
  };
}

std::uint64_t open_loop_digest(
    NodeId n, const std::function<const OpenLoopStats&(NodeId)>& at,
    NodeId begin, std::uint64_t h0) {
  std::uint64_t h = h0;
  for (NodeId i = 0; i < n; ++i) {
    h = fnv_mix(h, at(begin + i).digest_word());
  }
  return h;
}

LoadReport run_open_loop(const Graph& g, const OpenLoopConfig& config,
                         sim::DisciplineKind discipline, std::uint64_t seed,
                         std::unique_ptr<sim::Scheduler> scheduler,
                         const sim::FaultPlan* faults) {
  sim::Engine engine(
      g, make_open_loop_factory(config), seed, std::move(scheduler),
      sim::make_discipline(discipline, sim::UnslottedConfig{}, seed));
  if (faults != nullptr) engine.install_faults(*faults);
  // Generation plus a bounded drain window: a saturated stabilized lane
  // drains at ~1/e packets per slot, so 8x the horizon covers offered loads
  // well past capacity.  Free-for-all under contention never drains (two
  // backlogged stations re-collide every slot); its runs cut off once
  // generation stops, with the livelocked backlog on the books.
  const std::uint64_t budget = config.horizon * 8 + 4096;
  LoadReport report;
  report.quiescent = engine.step(budget);
  report.metrics = engine.metrics();
  report.slots = engine.metrics().rounds;
  report.digest = open_loop_digest(
      engine.num_nodes(), [&engine](NodeId v) -> const OpenLoopStats& {
        return static_cast<const OpenLoopProcess&>(engine.process(v));
      });
  for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
    report.classes[c] = engine.latency().summary(static_cast<sim::QosClass>(c));
  }
  std::uint64_t arrivals_total = 0;
  std::uint64_t delivered_total = 0;
  for (NodeId v = 0; v < engine.num_nodes(); ++v) {
    const auto& p = static_cast<const OpenLoopProcess&>(engine.process(v));
    for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
      arrivals_total += p.counters().arrivals[c];
      delivered_total += p.counters().delivered[c];
    }
  }
  report.degradation.delivered_ratio =
      arrivals_total == 0 ? 1.0
                          : static_cast<double>(delivered_total) /
                                static_cast<double>(arrivals_total);
  if (engine.faults() != nullptr) {
    sim::FaultStats stats = engine.faults()->stats();
    // Backlog sitting in a station that is still crashed at run end is
    // orphaned: those packets ride neither the livelock books nor the
    // goodput — the crash ate them.  Report-level accounting: the engine
    // never reaches into station state.
    const EpochOverlay& overlay = engine.faults()->overlay();
    for (NodeId v = 0; v < engine.num_nodes(); ++v) {
      if (overlay.node_alive(v)) continue;
      const auto& p = static_cast<const OpenLoopProcess&>(engine.process(v));
      for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
        stats.orphaned_pkts += p.backlog(static_cast<sim::QosClass>(c));
      }
    }
    report.degradation.faults = stats;
    // The fault trajectory participates in the run's identity: fold the
    // degradation counters into the digest so scheduler-equivalence checks
    // cover them too.
    report.digest =
        (report.digest ^ stats.digest_word()) * 0x100000001b3ULL;
  }
  return report;
}

}  // namespace mmn
