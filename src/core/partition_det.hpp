// The deterministic partitioning algorithm (Section 3 of the paper).
//
// Builds a spanning forest in which every tree (fragment) is a rooted subtree
// of the minimum spanning tree, has size >= sqrt(n), and radius O(sqrt(n)),
// in O(sqrt(n) log* n) time and O(m + n log n log* n) messages.
//
// The algorithm runs partition_phases(n) synchronized phases.  At the start
// of phase i every fragment has level >= i (level = floor(log2 size)); the
// fragments at level exactly i are *active*.  One phase performs, entirely
// over channel-barrier steps (core/stepped.hpp):
//
//   1. COUNT         — broadcast-and-respond inside every fragment: the core
//                      learns its size, computes the level, and floods the
//                      active flag (paper Step 1).
//   2. MWOE          — every node of an active fragment probes its incident
//                      links in ascending weight order with TEST/ACCEPT/
//                      REJECT (GHS-style); a convergecast brings the
//                      fragment's minimum-weight outgoing edge to the core,
//                      recording "minpath" routing pointers (paper Step 2).
//   3. CONNECT       — the core routes a CONNECT down the minpath and across
//                      the chosen edge, defining the fragment graph F; the
//                      receiving fragment records the entry and reports an
//                      F-child to its core.  Two fragments choosing the same
//                      edge form the only possible cycle; the higher core id
//                      becomes the F-root (paper's case (iii)).
//   4. COLORING      — cole_vishkin_iterations rounds of Cole–Vishkin over F
//                      followed by the GPS 6->3 reduction, Step 4 (roots
//                      red), and Step 5 (MIS growth).  Every F-edge exchange
//                      is routed through the fragment trees: cores broadcast
//                      their color down their own tree, border nodes forward
//                      it across entry edges, gates relay it up to the child
//                      core — and symmetrically for child->parent color
//                      reports along the minpath.  The per-vertex rules are
//                      the exact functions from coloring/, so the distributed
//                      execution matches the sequential reference
//                      bit-for-bit.
//   5. MERGE         — every fragment that keeps its out-edge (it is neither
//                      an F-root nor a red internal vertex) flips the parent
//                      pointers along its minpath and attaches its gate to
//                      the parent fragment (paper Step 6); the new cores
//                      flood the merged trees with the new fragment id.
//
// Phase lengths are not precomputed: each step ends at the first idle
// channel slot (Section 7's synchronizer used as a termination detector), so
// the measured time automatically includes synchronization costs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/capetanakis.hpp"
#include "coloring/cole_vishkin.hpp"
#include "core/partition.hpp"
#include "core/stepped.hpp"

namespace mmn {

struct PartitionDetConfig {
  /// Number of phases; defaults (negative) to partition_phases(n), giving
  /// fragments of size >= sqrt(n).  Section 5.1's balanced variant of the
  /// global-function algorithm passes a smaller count.
  int phases = -1;

  /// Section 7.3: after each phase's count, attempt to schedule the cores on
  /// the channel with a slot budget of O(2^phase log n).  When the attempt
  /// completes, every core's (id, size) was heard by everyone, each node sums
  /// the sizes into the exact network size, and the algorithm stops early.
  /// The phase structure itself never reads n except as the id-width bound,
  /// matching the paper's unknown-n setting.
  bool with_size_check = false;
};

class PartitionDetProcess final : public SteppedProcess, public FragmentState {
 public:
  PartitionDetProcess(const sim::LocalView& view, PartitionDetConfig config);

  // FragmentState (valid once finished):
  NodeId tree_parent() const override { return parent_; }
  EdgeId tree_parent_edge() const override { return parent_edge_; }
  NodeId fragment_id() const override { return core_; }

  /// Level (floor log2 of size) of this node's fragment at the last count.
  int level() const { return level_; }

  /// Routing pointer toward the fragment's chosen outgoing edge; used by the
  /// MST stage-3 algorithm to reuse the partition's tree operations.
  int phases() const { return phases_; }

  /// The network size computed by the Section 7.3 size check; valid once
  /// finished with with_size_check set.
  std::uint64_t computed_size() const;

 protected:
  std::uint64_t num_steps() const override;
  StepSpec step_spec(std::uint64_t step) const override;
  void step_begin(std::uint64_t step, sim::NodeContext& ctx) override;
  void on_message(std::uint64_t step, const sim::Received& msg,
                  sim::NodeContext& ctx) override;
  void step_round(std::uint64_t step, sim::NodeContext& ctx) override;
  void on_slot(std::uint64_t slot_step, const sim::SlotObservation& obs,
               sim::NodeContext& ctx) override;
  bool observed_end(std::uint64_t step) const override;

 private:
  // Sub-steps of one phase, in execution order.  kShift/kDrop repeat for the
  // dropped colors 5, 4, 3; kCv repeats tcv_ times.
  enum class Sub : int {
    kCount,
    kSizeCheck,  // present only with config.with_size_check
    kMwoe,
    kConnectSend,
    kConnectProc,
    kCv,
    kShift,
    kDrop,
    kRootRed,
    kMisBlue,
    kMisGreen,
    kMerge,
    kNewFrag,
  };

  struct SubRef {
    Sub sub;
    int phase;
    int index;  ///< kCv: iteration; kShift/kDrop: 0 -> drop 5, 1 -> 4, 2 -> 3
  };

  int steps_per_phase() const {
    return 15 + tcv_ + (with_size_check_ ? 1 : 0);
  }
  SubRef locate(std::uint64_t step) const;

  bool is_core() const { return parent_ == view_.self; }

  // --- messaging helpers --------------------------------------------------
  void send_to_children(sim::NodeContext& ctx, const sim::Packet& packet);
  void forward_down_and_across(sim::NodeContext& ctx, sim::Word color,
                               sim::Word is_root);
  void start_color_exchange(sim::NodeContext& ctx, bool with_child_report);
  void send_child_report_toward_gate(sim::NodeContext& ctx);
  void relay_up(sim::NodeContext& ctx, const sim::Packet& packet);
  void remove_child(EdgeId edge);

  // --- per-step actions -----------------------------------------------------
  void begin_count(sim::NodeContext& ctx);
  void begin_mwoe(sim::NodeContext& ctx);
  void begin_connect_send(sim::NodeContext& ctx);
  void begin_connect_proc(sim::NodeContext& ctx);
  void process_connect(sim::NodeContext& ctx, EdgeId edge, NodeId child_core);
  void begin_merge(sim::NodeContext& ctx);
  void begin_newfrag(sim::NodeContext& ctx);
  void apply_pending_color(const SubRef& prev);
  void probe_next_link(sim::NodeContext& ctx);
  void maybe_send_report(sim::NodeContext& ctx);

  // --- static configuration ------------------------------------------------
  const sim::LocalView& view_;
  int phases_;
  int bits_;  ///< id width for Cole–Vishkin
  int tcv_;   ///< Cole–Vishkin iterations per phase
  bool with_size_check_ = false;

  // --- permanent tree state -------------------------------------------------
  NodeId core_;
  NodeId parent_;
  EdgeId parent_edge_ = kNoEdge;
  std::vector<EdgeId> children_;
  std::vector<bool> link_internal_;  ///< per link index; persists over phases

  // --- per-phase state --------------------------------------------------------
  int level_ = 0;
  bool active_ = false;
  int current_phase_ = 0;

  // COUNT
  std::uint32_t count_pending_ = 0;
  std::uint64_t subtree_size_ = 0;

  // MWOE probe + convergecast
  std::size_t probe_index_ = 0;
  bool probe_resolved_ = false;
  Weight cand_weight_ = 0;  ///< 0 = no candidate
  EdgeId cand_edge_ = kNoEdge;
  std::uint32_t report_pending_ = 0;
  Weight best_weight_ = 0;
  EdgeId best_child_edge_ = kNoEdge;  ///< minpath pointer; kNoEdge = own link
  bool report_sent_ = false;
  bool have_mwoe_ = false;  ///< at the core: the fragment found an MWOE

  // CONNECT / fragment graph
  EdgeId gate_edge_ = kNoEdge;  ///< set on the node that crosses the MWOE
  std::vector<std::pair<EdgeId, NodeId>> pending_connects_;
  /// F-children attach points at this (border) node: entry edge + child core.
  std::vector<std::pair<EdgeId, NodeId>> entry_edges_;
  bool is_f_root_ = false;
  bool has_f_children_ = false;  ///< meaningful at the core

  // Coloring (state lives at the core)
  Color color_ = 0;
  Color prev_color_ = 0;  ///< pre-shift color saved for drop steps
  Color parent_color_rx_ = 0;
  bool parent_is_root_rx_ = false;
  bool parent_color_valid_ = false;
  bool any_red_child_ = false;

  // Merge
  bool red_internal_ = false;

  // Section 7.3 size check.
  std::optional<CapetanakisResolver> check_resolver_;
  std::uint64_t check_budget_ = 0;
  std::uint64_t check_slots_ = 0;
  bool check_aborted_ = false;
  std::uint64_t computed_size_ = 0;
  std::optional<std::uint64_t> final_steps_;
};

}  // namespace mmn
