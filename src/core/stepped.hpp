// Stepped protocols with channel barriers.
//
// The paper's algorithms proceed in globally synchronized steps ("all the
// processors start (and end) each phase simultaneously", Section 3).  It
// offers two mechanisms: precomputed phase lengths, or the busy-tone
// synchronizer of Section 7 used as a termination detector.  We implement the
// latter: during a *barrier* step every node that is still working — it sent
// a point-to-point message this round or declares itself locally busy —
// writes a busy tone into the channel slot.  Since an idle slot is publicly
// observable, the first idle slot proves global quiescence of the step to
// every node simultaneously, and all nodes advance together.  A message sent
// in round r keeps its sender busy in r and its receiver active in r + 1, so
// no in-flight message can survive a barrier.
//
// Three step kinds:
//   kBarrier  — ends at the first idle slot owned by the step.  The channel
//               carries only busy tones; all data moves point-to-point.
//   kFixed    — occupies exactly `fixed_rounds` rounds (a schedule every node
//               computes identically, e.g. TDMA cycles).
//   kObserved — ends when a deterministic function of the shared slot
//               outcomes says so (e.g. a Capetanakis traversal completing);
//               every listener reaches the same verdict in the same round.
//
// Subclasses receive step-scoped callbacks and never touch the barrier
// machinery.  Because transitions depend only on globally shared signals,
// every node is always in the same step.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "support/check.hpp"

namespace mmn {

enum class StepKind : std::uint8_t { kBarrier, kFixed, kObserved };

struct StepSpec {
  StepKind kind = StepKind::kBarrier;
  std::uint64_t fixed_rounds = 0;  ///< used by kFixed only
};

class SteppedProcess : public sim::Process {
 public:
  void round(sim::NodeContext& ctx) final;
  bool finished() const final { return finished_; }

  /// The step currently executing (for tests and debugging).
  std::uint64_t current_step() const { return step_; }

 protected:
  /// Reserved packet type for barrier busy tones.
  static constexpr std::uint16_t kBusyTone = 0xFFFF;

  /// Rounds elapsed inside the current step (0 in the step's first round);
  /// the slot index for kFixed TDMA schedules.
  std::uint64_t rounds_in_step() const { return rounds_in_step_; }

  /// Number of steps; may grow as shared information arrives, but must
  /// evaluate identically at every node in every round.
  virtual std::uint64_t num_steps() const = 0;

  /// Kind and length of the given step; identical at every node.  Read once
  /// when the step begins and cached for the step's duration (the hot round
  /// loop must stay free of this virtual call), so it must be a pure
  /// function of the step index and of state fixed before the step starts.
  virtual StepSpec step_spec(std::uint64_t step) const = 0;

  /// Called once when the step starts (same round at every node).
  virtual void step_begin(std::uint64_t step, sim::NodeContext& ctx) = 0;

  /// Called for every point-to-point message, tagged with the current step.
  virtual void on_message(std::uint64_t step, const sim::Received& msg,
                          sim::NodeContext& ctx) = 0;

  /// Called with the outcome of every channel slot, tagged with the step
  /// that owned the slot (kFixed / kObserved steps consume data here).
  virtual void on_slot(std::uint64_t slot_step, const sim::SlotObservation& obs,
                       sim::NodeContext& ctx);

  /// Called every round after message processing (per-round work such as
  /// channel writes in kFixed / kObserved steps).
  virtual void step_round(std::uint64_t step, sim::NodeContext& ctx);

  /// kBarrier: local-idleness predicate.  The default (true) suits reactive
  /// protocols where all activity is triggered by messages; the framework's
  /// sent-this-round busy tone keeps causal chains alive.
  virtual bool step_done(std::uint64_t step) const;

  /// kObserved: end predicate, a function of the observations already fed to
  /// on_slot; must evaluate identically at every node.
  virtual bool observed_end(std::uint64_t step) const;

 private:
  static constexpr std::uint64_t kNoStep = static_cast<std::uint64_t>(-1);

  std::uint64_t step_ = 0;
  std::uint64_t rounds_in_step_ = 0;
  std::uint64_t slot_owner_ = kNoStep;  // step that owned the previous slot
  StepSpec spec_{};                     // spec of step_, cached at entry
  bool started_ = false;
  bool finished_ = false;
};

/// Runs a list of sub-protocols back to back.  Each stage must finish in the
/// same round at every node (true for every protocol in this library — they
/// all end on a shared signal), so successive stages stay aligned network
/// wide.  Later stages may hold pointers to earlier ones and read their
/// results once started.
///
/// The stage type is a template parameter so layered protocols can
/// devirtualize their hottest call: with Stage = SteppedProcess (the
/// SteppedSequenceProcess alias) the per-node-per-round stage dispatch is a
/// direct call with the finished probe inlined, because round()/finished()
/// are final on SteppedProcess.  The default Stage = sim::Process keeps the
/// fully generic form for sequencing composite processes.
template <typename Stage = sim::Process>
class BasicSequenceProcess final : public sim::Process {
 public:
  explicit BasicSequenceProcess(std::vector<std::unique_ptr<Stage>> stages)
      : stages_(std::move(stages)) {
    MMN_REQUIRE(!stages_.empty(), "sequence needs at least one stage");
    for (const auto& s : stages_) {
      MMN_REQUIRE(s != nullptr, "sequence stage must not be null");
    }
  }

  void round(sim::NodeContext& ctx) override {
    while (index_ < stages_.size() && stages_[index_]->finished()) {
      ++index_;
    }
    if (index_ < stages_.size()) {
      stages_[index_]->round(ctx);
    }
  }

  bool finished() const override { return index_ >= stages_.size(); }

  Stage& stage(std::size_t i) {
    MMN_REQUIRE(i < stages_.size(), "stage index out of range");
    return *stages_[i];
  }
  const Stage& stage(std::size_t i) const {
    MMN_REQUIRE(i < stages_.size(), "stage index out of range");
    return *stages_[i];
  }

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  std::size_t index_ = 0;
};

using SequenceProcess = BasicSequenceProcess<>;
using SteppedSequenceProcess = BasicSequenceProcess<SteppedProcess>;

}  // namespace mmn
