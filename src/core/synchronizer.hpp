// The channel as a synchronizer (Section 7.1, Corollary 4).
//
// Runs any synchronous point-to-point Process on the asynchronous engine:
// every protocol message is acknowledged, a node transmits a busy tone on
// the channel as long as any of its messages is unacknowledged, and an idle
// slot — observable by everyone — is the clock pulse that starts the next
// simulated round.  Messages of round r are therefore all delivered before
// round r + 1 begins, which is exactly the synchronous-model guarantee.
// Overhead: every message gains one acknowledgement (x2 messages) and each
// round costs a constant number of slots when delays are bounded by one slot
// (Corollary 4: the multimedia network is at least as powerful as the
// synchronous point-to-point network).
//
// The wrapped protocol must be channel-free (the synchronizer owns the
// channel); all of the library's local stages qualify.
//
// The synchronizer runs under the AsyncEngine's slot-phase execution, whose
// phases may be sharded over a thread pool: every handler here touches only
// this node's own state (buffered_, pending_acks_, pulses_, the inner
// process) and stages all externally visible effects — sends, the busy
// tone — through the AsyncContext, never mutating shared engine state
// directly.  That is what keeps parallel asynchronous runs bit-identical to
// serial ones (see sim/async_engine.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/async_engine.hpp"
#include "sim/engine.hpp"

namespace mmn {

class SynchronizerProcess final : public sim::AsyncProcess {
 public:
  SynchronizerProcess(const sim::LocalView& view,
                      std::unique_ptr<sim::Process> inner);

  void start(sim::AsyncContext& ctx) override;
  void on_message(const sim::Received& msg, sim::AsyncContext& ctx) override;
  void on_slot(const sim::SlotObservation& obs, sim::AsyncContext& ctx) override;
  bool finished() const override;

  const sim::Process& inner() const { return *inner_; }

  /// Simulated synchronous rounds driven so far (== pulses observed).
  std::uint64_t pulses() const { return pulses_; }

 private:
  /// A buffered protocol message: the synchronizer owns the payload (the
  /// engine's pooled packet behind a Received is recycled when the delivery
  /// sub-round ends, so holding the Received itself would dangle).
  struct Buffered {
    NodeId from;
    EdgeId via;
    sim::Packet packet;
  };

  /// Acknowledgement packet type; reserved, like the busy tone.
  static constexpr std::uint16_t kAck = 0xFFFE;
  static constexpr std::uint16_t kBusy = 0xFFFD;

  const sim::LocalView& view_;
  std::unique_ptr<sim::Process> inner_;
  std::vector<Buffered> buffered_;  ///< round r+1 inbox being filled
  std::vector<sim::Received> inbox_view_;  ///< Received views over buffered_
  std::uint32_t pending_acks_ = 0;
  std::uint64_t pulses_ = 0;
};

/// Convenience factory adapting a synchronous ProcessFactory to the
/// asynchronous engine via the synchronizer.
sim::AsyncProcessFactory synchronize(sim::ProcessFactory factory);

}  // namespace mmn
