// Common types for the partitioning algorithms (Sections 3 and 4).
//
// Both partitioners leave, at every node, a tree parent pointer and a
// fragment id; collect_forest() harvests them from a finished engine into the
// Forest structure the validators understand.
#pragma once

#include <functional>

#include "graph/validation.hpp"
#include "sim/engine.hpp"

namespace mmn {

/// Implemented by any process that ends up holding a spanning-forest node
/// state.  Accessors are only meaningful once the process finished.
class FragmentState {
 public:
  virtual ~FragmentState() = default;

  /// Tree parent (own id for fragment roots).
  virtual NodeId tree_parent() const = 0;

  /// Graph edge to the parent (kNoEdge for roots).
  virtual EdgeId tree_parent_edge() const = 0;

  /// Fragment identifier (the root/core's node id).
  virtual NodeId fragment_id() const = 0;
};

/// Maps an engine process to its FragmentState.  The default works when the
/// process itself implements FragmentState; composed protocols pass a lambda
/// that digs out the right stage.
using FragmentAccessor =
    std::function<const FragmentState&(const sim::Process&)>;

FragmentAccessor direct_fragment_accessor();

/// Harvests the spanning forest from a finished engine.
Forest collect_forest(const sim::Engine& engine,
                      const FragmentAccessor& accessor);

/// Harvests per-node fragment ids from a finished engine.
std::vector<NodeId> collect_fragments(const sim::Engine& engine,
                                      const FragmentAccessor& accessor);

}  // namespace mmn
