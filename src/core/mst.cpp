#include "core/mst.hpp"

#include <algorithm>

#include "core/partition_det.hpp"
#include "support/check.hpp"

namespace mmn {
namespace {

constexpr std::uint16_t kCoreAnnounce = 191;  // [core] Capetanakis payload
constexpr std::uint16_t kInitFrag = 192;      // [init_index] to all neighbors
constexpr std::uint16_t kHello = 193;         // child -> parent census
constexpr std::uint16_t kLocalMin = 194;      // [w, u, v, nbr_init] up-tree
constexpr std::uint16_t kCycleReport = 195;   // [init, w, u, v, nbr_init]

}  // namespace

/// Stage 2 + 3.  Steps: 0 = Capetanakis core scheduling (observed);
/// 1 = neighbor/initial-fragment census (fixed, 2 rounds); then per Boruvka
/// phase a barrier step (local minimum into the core) and a fixed k-slot
/// TDMA step (cycle of core reports).
class MstProcess::ComputeStage final : public SteppedProcess {
 public:
  ComputeStage(const sim::LocalView& view, const FragmentState* partition)
      : view_(view),
        partition_(partition),
        capetanakis_(view.n, std::nullopt),
        neighbor_init_(view.links().size(), -1),
        mst_link_(view.links().size(), false) {}

  std::vector<EdgeId> marked_edges() const {
    MMN_REQUIRE(finished(), "MST still running");
    std::vector<EdgeId> edges;
    const NeighborRange links = view_.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (mst_link_[i]) edges.push_back(links[i].edge);
    }
    return edges;
  }

  int phases_used() const {
    MMN_REQUIRE(finished(), "MST still running");
    return phases_done_;
  }

 protected:
  std::uint64_t num_steps() const override {
    return final_steps_.value_or(static_cast<std::uint64_t>(-1));
  }

  StepSpec step_spec(std::uint64_t step) const override {
    if (step == 0) return {StepKind::kObserved, 0};
    if (step == 1) return {StepKind::kFixed, 2};
    if ((step - 2) % 2 == 0) return {};  // local-minimum barrier
    return {StepKind::kFixed, static_cast<std::uint64_t>(k_)};
  }

  void step_begin(std::uint64_t step, sim::NodeContext& ctx) override {
    if (step == 0) {
      if (is_root()) {
        contender_.emplace(view_.n,
                           std::optional<std::uint64_t>(view_.self));
      }
      return;
    }
    if (step == 1) {
      ctx.broadcast(sim::Packet(kInitFrag, {init_index_}));
      if (!is_root()) {
        ctx.send(partition_->tree_parent_edge(), sim::Packet(kHello));
      }
      return;
    }
    if ((step - 2) % 2 == 0) {
      begin_local_min(ctx);
    }
  }

  void step_round(std::uint64_t step, sim::NodeContext& ctx) override {
    if (step == 0) {
      if (contender_ && !contender_->done() && contender_->should_transmit()) {
        ctx.channel_write(sim::Packet(
            kCoreAnnounce, {static_cast<sim::Word>(view_.self)}));
      }
      return;
    }
    if (step >= 2 && (step - 2) % 2 == 1) {
      // TDMA cycle: slot j belongs to the core of the j-th initial fragment.
      if (is_root() && rounds_in_step() == static_cast<std::uint64_t>(init_index_)) {
        ctx.channel_write(sim::Packet(
            kCycleReport,
            {init_index_, static_cast<sim::Word>(report_weight_),
             static_cast<sim::Word>(report_u_),
             static_cast<sim::Word>(report_v_), report_nbr_init_}));
      }
    }
  }

  void on_slot(std::uint64_t slot_step, const sim::SlotObservation& obs,
               sim::NodeContext&) override {
    if (slot_step == 0) {
      observe_capetanakis(obs);
      return;
    }
    if (slot_step >= 2 && (slot_step - 2) % 2 == 1) {
      MMN_ASSERT(obs.success() && obs.payload.type() == kCycleReport,
                 "every TDMA slot carries exactly one core report");
      cycle_reports_.push_back(obs.payload);
      if (cycle_reports_.size() == static_cast<std::size_t>(k_)) {
        process_cycle(slot_step);
      }
    }
  }

  bool observed_end(std::uint64_t step) const override {
    return step == 0 && capetanakis_.done();
  }

  void on_message(std::uint64_t /*step*/, const sim::Received& msg,
                  sim::NodeContext& ctx) override {
    const sim::Packet& p = msg.packet();
    switch (p.type()) {
      case kInitFrag: {
        const int idx = view_.link_index(msg.via);
        neighbor_init_[static_cast<std::size_t>(idx)] =
            static_cast<std::int32_t>(p[0]);
        break;
      }
      case kHello:
        ++children_;
        break;
      case kLocalMin: {
        const Weight w = static_cast<Weight>(p[0]);
        if (w != 0 && (report_weight_ == 0 || w < report_weight_)) {
          report_weight_ = w;
          report_u_ = static_cast<NodeId>(p[1]);
          report_v_ = static_cast<NodeId>(p[2]);
          report_nbr_init_ = p[3];
        }
        MMN_ASSERT(received_ < children_, "more local minima than children");
        if (++received_ == children_) send_local_min(ctx);
        break;
      }
      default:
        MMN_ASSERT(false, "unexpected packet in MST stage 3");
    }
  }

 private:
  bool is_root() const { return partition_->tree_parent() == view_.self; }

  void observe_capetanakis(const sim::SlotObservation& obs) {
    const bool mine = obs.success() && obs.writer == view_.self;
    if (contender_ && !contender_->done()) contender_->observe(obs, mine);
    if (capetanakis_.done()) return;
    capetanakis_.observe(obs);
    if (!capetanakis_.done()) return;
    // Schedule complete: the sorted core list is common knowledge.
    for (const sim::Packet& p : capetanakis_.successes()) {
      initial_cores_.push_back(static_cast<NodeId>(p[0]));
    }
    k_ = static_cast<std::int64_t>(initial_cores_.size());
    MMN_ASSERT(k_ >= 1, "no initial fragments scheduled");
    const auto it = std::find(initial_cores_.begin(), initial_cores_.end(),
                              partition_->fragment_id());
    MMN_ASSERT(it != initial_cores_.end(), "own fragment missing in schedule");
    init_index_ = it - initial_cores_.begin();
    current_ = std::make_unique<Dsu>(initial_cores_.size());
    if (k_ == 1) final_steps_ = 1;  // the partition already spans the graph
  }

  void begin_local_min(sim::NodeContext& ctx) {
    received_ = 0;
    sent_ = false;
    report_weight_ = 0;
    // Own candidate: the lightest incident link leaving the *current*
    // fragment (links are weight-sorted, so the first hit is the minimum).
    const std::size_t mine = current_->find(static_cast<std::size_t>(init_index_));
    const NeighborRange links = view_.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
      MMN_ASSERT(neighbor_init_[i] >= 0, "missing neighbor fragment census");
      if (current_->find(static_cast<std::size_t>(neighbor_init_[i])) == mine) {
        continue;
      }
      report_weight_ = links[i].weight;
      report_u_ = view_.self;
      report_v_ = links[i].to;
      report_nbr_init_ = neighbor_init_[i];
      break;
    }
    if (children_ == 0) send_local_min(ctx);
  }

  void send_local_min(sim::NodeContext& ctx) {
    if (sent_ || is_root()) return;
    sent_ = true;
    ctx.send(partition_->tree_parent_edge(),
             sim::Packet(kLocalMin,
                         {static_cast<sim::Word>(report_weight_),
                          static_cast<sim::Word>(report_u_),
                          static_cast<sim::Word>(report_v_),
                          report_nbr_init_}));
  }

  void process_cycle(std::uint64_t slot_step) {
    // Every node executes this identically from the shared slot contents.
    struct Chosen {
      Weight w;
      NodeId u, v;
      std::size_t from, to;
    };
    std::vector<Chosen> chosen;
    std::vector<std::optional<Chosen>> best(initial_cores_.size());
    for (const sim::Packet& p : cycle_reports_) {
      const Weight w = static_cast<Weight>(p[1]);
      if (w == 0) continue;  // that fragment saw no outgoing link
      const auto from = current_->find(static_cast<std::size_t>(p[0]));
      const auto to = current_->find(static_cast<std::size_t>(p[4]));
      MMN_ASSERT(from != to, "report crosses within one current fragment");
      Chosen c{w, static_cast<NodeId>(p[2]), static_cast<NodeId>(p[3]), from,
               to};
      if (!best[from] || c.w < best[from]->w) best[from] = c;
    }
    cycle_reports_.clear();
    for (const auto& b : best) {
      if (b) chosen.push_back(*b);
    }
    for (const Chosen& c : chosen) {
      current_->unite(c.from, c.to);
      if (c.u == view_.self || c.v == view_.self) {
        const NodeId other = c.u == view_.self ? c.v : c.u;
        const NeighborRange links = view_.links();
        for (std::size_t i = 0; i < links.size(); ++i) {
          if (links[i].to == other) mst_link_[i] = true;
        }
      }
    }
    ++phases_done_;
    if (current_->num_sets() == 1) final_steps_ = slot_step + 1;
  }

  const sim::LocalView& view_;
  const FragmentState* partition_;

  // Stage 2.
  std::optional<CapetanakisResolver> contender_;  // cores only
  CapetanakisResolver capetanakis_;               // everyone listens
  std::vector<NodeId> initial_cores_;
  std::int64_t k_ = 0;
  sim::Word init_index_ = 0;

  // Stage 3.
  std::vector<std::int32_t> neighbor_init_;  // per link
  std::uint32_t children_ = 0;
  std::uint32_t received_ = 0;
  bool sent_ = false;
  Weight report_weight_ = 0;
  NodeId report_u_ = kNoNode;
  NodeId report_v_ = kNoNode;
  sim::Word report_nbr_init_ = 0;
  std::vector<sim::Packet> cycle_reports_;
  std::unique_ptr<Dsu> current_;
  std::vector<bool> mst_link_;
  int phases_done_ = 0;
  std::optional<std::uint64_t> final_steps_;
};

MstProcess::MstProcess(const sim::LocalView& view) {
  std::vector<std::unique_ptr<SteppedProcess>> stages;
  auto partition =
      std::make_unique<PartitionDetProcess>(view, PartitionDetConfig{});
  partition_ = partition.get();
  stages.push_back(std::move(partition));
  auto compute = std::make_unique<ComputeStage>(view, partition_);
  compute_ = compute.get();
  stages.push_back(std::move(compute));
  sequence_ = std::make_unique<SteppedSequenceProcess>(std::move(stages));
}

void MstProcess::round(sim::NodeContext& ctx) { sequence_->round(ctx); }

bool MstProcess::finished() const { return sequence_->finished(); }

std::vector<EdgeId> MstProcess::mst_edges() const {
  std::vector<EdgeId> edges = compute_->marked_edges();
  if (partition_->tree_parent_edge() != kNoEdge) {
    edges.push_back(partition_->tree_parent_edge());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

int MstProcess::phases_used() const { return compute_->phases_used(); }

}  // namespace mmn
