#include "channel/size_estimator.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mmn {

bool SizeEstimator::should_transmit(Rng& rng) {
  MMN_REQUIRE(!done_, "estimator already finished");
  return rng.next_bernoulli(std::ldexp(1.0, -round_));
}

void SizeEstimator::observe(const sim::SlotObservation& obs) {
  MMN_REQUIRE(!done_, "observe after estimator finished");
  if (obs.idle()) {
    done_ = true;
  } else {
    ++round_;
  }
}

std::uint64_t SizeEstimator::estimate() const {
  MMN_REQUIRE(done_, "estimation still in progress");
  return std::uint64_t{1} << std::min(round_, 62);
}

int SizeEstimator::rounds() const {
  MMN_REQUIRE(done_, "estimation still in progress");
  return round_;
}

}  // namespace mmn
