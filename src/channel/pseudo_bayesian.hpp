// Randomized channel scheduling (Metcalfe–Boggs 1976 / Rivest's
// pseudo-Bayesian formulation).
//
// The paper's randomized global stage schedules the O(sqrt(n)) fragment roots
// in O(1) expected slots per root by Ethernet-style randomized resolution.
// We implement the pseudo-Bayesian variant: every listener maintains a shared
// backlog estimate nu; each pending station transmits with probability
// min(1, 1/nu); nu is updated identically at every node from the public slot
// outcome (collision: nu += 1/(e-2); otherwise nu = max(1, nu - 1)).  The
// expected throughput approaches 1/e, i.e. ~e slots per station.
//
// Termination detection: the channel alternates between a CONTENTION lane
// (even local slots) and a BUSY-TONE lane (odd local slots) in which every
// still-pending station transmits.  An idle busy-tone slot proves global
// completion to every listener.  This at most doubles the slot count and is
// assembled from the same busy-tone primitive as the Section 7 synchronizer.
#pragma once

#include <cstdint>

#include "sim/channel.hpp"
#include "support/rng.hpp"

namespace mmn {

class RandomizedScheduler {
 public:
  /// initial_backlog: shared a-priori estimate of the number of stations
  /// (the paper uses the 2*sqrt(n) bound certified by the Las Vegas
  /// partition).  pending: whether this node has a payload to schedule.
  /// collect_successes: whether to record success payloads in successes().
  /// A caller that folds each success as it arrives (success_count() tells
  /// it when one did) should pass false — the default copies every success
  /// payload at EVERY listening node, which dominates the per-round cost of
  /// the n-node global stages.
  RandomizedScheduler(double initial_backlog, bool pending,
                      bool collect_successes = true);

  /// Decides transmission for the upcoming slot; must be called exactly once
  /// per slot before observe().  Draws randomness only in contention lanes.
  bool should_transmit(Rng& rng);

  /// Feeds the public outcome of the slot; `success_was_mine` as seen by the
  /// caller (obs.writer == own id).
  void observe(const sim::SlotObservation& obs, bool success_was_mine = false);

  /// All stations done (observed as an idle busy-tone slot).
  bool done() const { return done_; }

  /// This station's payload has been transmitted successfully.
  bool succeeded() const { return !pending_; }

  /// Payloads of all success slots in schedule order.  Empty when
  /// constructed with collect_successes == false.
  const std::vector<sim::Packet>& successes() const { return successes_; }

  /// Number of success slots observed so far (maintained regardless of
  /// collect_successes — compare across observe() to fold incrementally).
  std::uint64_t success_count() const { return success_count_; }

 private:
  bool contention_lane() const { return (slot_parity_ & 1) == 0; }

  double backlog_;
  bool pending_;
  bool collect_successes_;
  bool done_ = false;
  bool transmitting_ = false;  // decision made for the slot in progress
  std::uint64_t slot_parity_ = 0;
  std::uint64_t success_count_ = 0;
  std::vector<sim::Packet> successes_;
};

}  // namespace mmn
