#include "channel/election.hpp"

#include "support/check.hpp"
#include "support/math.hpp"

namespace mmn {

ChannelElection::ChannelElection(std::uint64_t id_bound,
                                 std::uint64_t candidate_id)
    : candidate_id_(candidate_id), in_race_(candidate_id != kNoCandidate) {
  MMN_REQUIRE(id_bound >= 1, "id space must be non-empty");
  MMN_REQUIRE(candidate_id == kNoCandidate || candidate_id < id_bound,
              "candidate id outside the id space");
  total_bits_ = id_bound == 1 ? 1 : ilog2_ceil(id_bound);
  bit_ = total_bits_ - 1;
}

bool ChannelElection::should_transmit() const {
  if (done() || !in_race_) return false;
  return ((candidate_id_ >> bit_) & 1) == 1;
}

void ChannelElection::observe(const sim::SlotObservation& obs) {
  MMN_REQUIRE(!done(), "observe after election completed");
  const bool busy = !obs.idle();
  if (busy) {
    any_candidate_ = true;
    leader_bits_ |= (std::uint64_t{1} << bit_);
    // Candidates whose current bit is 0 lose to any candidate that has a 1.
    if (in_race_ && ((candidate_id_ >> bit_) & 1) == 0) in_race_ = false;
  }
  --bit_;
}

std::uint64_t ChannelElection::leader() const {
  MMN_REQUIRE(done(), "election still in progress");
  return leader_bits_;
}

bool ChannelElection::won() const {
  MMN_REQUIRE(done(), "election still in progress");
  return in_race_ && any_candidate_ && candidate_id_ == leader_bits_;
}

}  // namespace mmn
