#include "channel/tdma.hpp"

// TdmaSchedule is header-only; this translation unit anchors the library.
