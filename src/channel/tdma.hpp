// Fixed time-division schedule.
//
// The strongest possible pure-broadcast baseline: when the station set and
// order are globally known a priori, station j owns slot j outright.  This is
// what the Omega(n) broadcast lower bound (Theorem 2) is measured against —
// even free, collision-less scheduling cannot beat n slots for a global
// sensitive function.  Also used for the Boruvka phases of the multimedia
// MST (Section 6), where the core order is fixed by a one-time Capetanakis
// resolution.
#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace mmn {

class TdmaSchedule {
 public:
  explicit TdmaSchedule(std::uint64_t stations) : stations_(stations) {
    MMN_REQUIRE(stations >= 1, "TDMA needs at least one station");
  }

  /// The station that owns the given slot (slots cycle through stations).
  std::uint64_t owner(std::uint64_t slot) const { return slot % stations_; }

  /// True if `station` owns `slot`.
  bool my_slot(std::uint64_t slot, std::uint64_t station) const {
    return owner(slot) == station;
  }

  /// Number of slots for one full cycle over all stations.
  std::uint64_t cycle_length() const { return stations_; }

 private:
  std::uint64_t stations_;
};

}  // namespace mmn
