#include "channel/pseudo_bayesian.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mmn {

RandomizedScheduler::RandomizedScheduler(double initial_backlog, bool pending,
                                         bool collect_successes)
    : backlog_(std::max(1.0, initial_backlog)),
      pending_(pending),
      collect_successes_(collect_successes) {}

bool RandomizedScheduler::should_transmit(Rng& rng) {
  MMN_REQUIRE(!done_, "scheduler already finished");
  if (contention_lane()) {
    transmitting_ = pending_ && rng.next_bernoulli(std::min(1.0, 1.0 / backlog_));
  } else {
    transmitting_ = pending_;  // busy-tone lane: every pending station writes
  }
  return transmitting_;
}

void RandomizedScheduler::observe(const sim::SlotObservation& obs,
                                  bool success_was_mine) {
  MMN_REQUIRE(!done_, "observe after scheduler finished");
  if (contention_lane()) {
    switch (obs.state) {
      case sim::SlotState::kCollision:
        // Rivest's pseudo-Bayesian update: collisions reveal at least two
        // stations; the Poisson posterior shifts up by 1/(e-2).
        backlog_ += 1.0 / (std::exp(1.0) - 2.0);
        break;
      case sim::SlotState::kSuccess:
        ++success_count_;
        if (collect_successes_) successes_.push_back(obs.payload);
        if (success_was_mine) pending_ = false;
        backlog_ = std::max(1.0, backlog_ - 1.0);
        break;
      case sim::SlotState::kIdle:
        backlog_ = std::max(1.0, backlog_ - 1.0);
        break;
    }
  } else {
    if (obs.idle()) done_ = true;  // no station pending anywhere
  }
  transmitting_ = false;
  ++slot_parity_;
}

}  // namespace mmn
