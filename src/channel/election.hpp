// Deterministic leader election on the multiaccess channel.
//
// The O(log n) symmetry-breaking scheme the paper sketches in Section 2:
// candidates compare ids bit by bit from the most significant bit down.  In
// round b every remaining candidate whose bit b is 1 transmits a busy tone;
// if the slot is non-idle, candidates with bit b == 0 withdraw.  After one
// round per bit, exactly one candidate — the one with the maximum id —
// remains.  Every node (candidate or not) reconstructs the winner's id from
// the slot states alone: bit b of the leader is 1 iff round b was non-idle.
#pragma once

#include <cstdint>

#include "sim/channel.hpp"

namespace mmn {

class ChannelElection {
 public:
  /// id_bound: ids lie in [0, id_bound).  candidate_id: this node's id if it
  /// runs for leadership, or kNoCandidate for a pure listener.
  static constexpr std::uint64_t kNoCandidate = static_cast<std::uint64_t>(-1);

  ChannelElection(std::uint64_t id_bound, std::uint64_t candidate_id);

  bool should_transmit() const;

  void observe(const sim::SlotObservation& obs);

  bool done() const { return bit_ < 0; }

  /// The maximum candidate id; valid once done().  If no candidate ran at
  /// all, the reconstructed id is 0 and `any_candidate()` is false.
  std::uint64_t leader() const;

  /// True if at least one non-idle slot was observed (some candidate exists).
  bool any_candidate() const { return any_candidate_; }

  /// True if this node won the election; valid once done().
  bool won() const;

  /// Total rounds the election takes (same for every node).
  int total_rounds() const { return total_bits_; }

 private:
  std::uint64_t candidate_id_;
  bool in_race_;
  bool any_candidate_ = false;
  int total_bits_;
  int bit_;  // bit probed in the upcoming slot; -1 when done
  std::uint64_t leader_bits_ = 0;
};

}  // namespace mmn
