// Capetanakis tree conflict-resolution (IEEE Trans. IT 1979).
//
// Schedules an unknown subset of stations (each holding a distinct id in
// [0, id_bound)) onto the channel: repeatedly let every pending station whose
// id lies in the current probe interval transmit; on collision split the
// interval and probe the halves.  A depth-first traversal of the implied
// binary tree over the id space resolves every station in
// O(k log(id_bound / k) + k) slots for k stations.
//
// The traversal state is a pure function of the shared slot observations, so
// every node — contender or listener — tracks an identical copy and detects
// termination at the same slot.  This is what the paper uses to schedule the
// O(sqrt(n)) fragment cores deterministically (Sections 5 and 6).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/channel.hpp"

namespace mmn {

class CapetanakisResolver {
 public:
  /// A listener (never transmits) tracks the schedule with my_id == nullopt.
  /// `massey_skip` enables the classic improvement: when a collision's left
  /// half turns out idle, the right half must still hold >= 2 stations, so
  /// its doomed probe is skipped and it is split immediately.  The resulting
  /// schedule is identical; only the slot count shrinks.
  /// `collect_successes` controls whether success payloads are recorded in
  /// successes().  A caller that folds each success as it arrives (watch
  /// success_count() across observe()) should pass false — the default
  /// copies every success payload at EVERY listening node.
  CapetanakisResolver(std::uint64_t id_bound, std::optional<std::uint64_t> my_id,
                      bool massey_skip = false, bool collect_successes = true);

  /// True if this node must transmit in the upcoming slot.
  bool should_transmit() const;

  /// The id interval [lo, hi) probed by the upcoming slot, or nullopt once
  /// the traversal is done.  This is the collision-set bookkeeping hook a
  /// centralized scheduler (the Capetanakis channel discipline,
  /// sim/channel_discipline.hpp) uses to pick the contending writers.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> probe() const {
    if (stack_.empty()) return std::nullopt;
    return std::make_pair(stack_.back().lo, stack_.back().hi);
  }

  /// Feeds the outcome of the slot everyone just observed.
  /// `success_was_mine` — the caller saw its own id as the slot writer.
  void observe(const sim::SlotObservation& obs, bool success_was_mine = false);

  /// Traversal complete: every contending station has had a success slot.
  bool done() const { return stack_.empty(); }

  /// True once this node's own transmission went through.
  bool succeeded() const { return succeeded_; }

  /// Payloads of all success slots, in schedule order (identical at every
  /// node — the channel is heard by all).  Empty when constructed with
  /// collect_successes == false.
  const std::vector<sim::Packet>& successes() const { return successes_; }

  /// Number of success slots observed so far (maintained regardless of
  /// collect_successes — compare across observe() to fold incrementally).
  std::uint64_t success_count() const { return success_count_; }

 private:
  struct Interval {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;       // half open [lo, hi)
    bool right_sibling = false;  // this interval is a collision's right half
  };

  std::optional<std::uint64_t> my_id_;
  bool massey_skip_;
  bool collect_successes_;
  bool succeeded_ = false;
  std::uint64_t success_count_ = 0;
  std::vector<Interval> stack_;  // top = back
  std::vector<sim::Packet> successes_;
};

}  // namespace mmn
