#include "channel/randomized_election.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mmn {

double RandomizedElection::probability() const {
  switch (phase_) {
    case Phase::kDescent:
      return std::ldexp(1.0, -(1 << std::min(descent_j_, 6)));  // 2^-2^j
    case Phase::kBisect:
      return std::ldexp(1.0, -((lo_ + hi_) / 2));
    case Phase::kContend:
      return std::ldexp(1.0, -lo_);
  }
  MMN_ASSERT(false, "unknown election phase");
  return 0.0;
}

bool RandomizedElection::should_transmit(Rng& rng) {
  MMN_REQUIRE(!done_, "election already decided");
  return candidate_ && rng.next_bernoulli(probability());
}

void RandomizedElection::observe(const sim::SlotObservation& obs,
                                 bool success_was_mine) {
  MMN_REQUIRE(!done_, "observe after election decided");
  ++slots_;
  if (obs.success()) {
    done_ = true;
    i_won_ = success_was_mine;
    winner_ = obs.payload;
    return;
  }
  switch (phase_) {
    case Phase::kDescent:
      if (obs.collision()) {
        ++descent_j_;  // population >> 2^2^j: halve the probability square
      } else {
        // First idle: log2(n) is bracketed by [2^(j-1), 2^j].
        hi_ = 1 << std::min(descent_j_, 6);
        lo_ = descent_j_ == 0 ? 0 : (1 << std::min(descent_j_ - 1, 6));
        phase_ = lo_ >= hi_ - 1 ? Phase::kContend : Phase::kBisect;
      }
      break;
    case Phase::kBisect: {
      const int mid = (lo_ + hi_) / 2;
      if (obs.collision()) {
        lo_ = mid;  // too many transmitters: lower the probability
      } else {
        hi_ = mid;  // idle: raise it
      }
      if (lo_ >= hi_ - 1) {
        lo_ = std::max(lo_, 0);
        phase_ = Phase::kContend;
      }
      break;
    }
    case Phase::kContend:
      // The rate is near the sweet spot but the bracket can be off by a
      // coin-flip fluke (e.g. every candidate silent in the first descent
      // probe).  Self-correct like backoff: collisions halve the rate,
      // idles double it (never above 1), so a success arrives in O(1)
      // expected slots from any starting point.
      if (obs.collision()) {
        ++lo_;
      } else if (lo_ > 0) {
        --lo_;  // idle
      }
      break;
  }
}

bool RandomizedElection::won() const {
  MMN_REQUIRE(done_, "election still in progress");
  return i_won_;
}

const sim::Packet& RandomizedElection::winner_payload() const {
  MMN_REQUIRE(done_, "election still in progress");
  return winner_;
}

}  // namespace mmn
