// Greenberg–Ladner randomized network-size estimation (Section 7.4).
//
// All nodes run rounds of coin tosses; in round i every node transmits a busy
// tone with probability 2^{-i}.  The protocol stops at the first idle slot,
// after k rounds; 2^k is then, with high probability, an estimate of n up to
// a constant multiplicative factor.  Needs nothing but the channel — it works
// with anonymous nodes and unknown n, and the paper notes the same coin flips
// can mint random ids when none are given.
#pragma once

#include <cstdint>

#include "sim/channel.hpp"
#include "support/rng.hpp"

namespace mmn {

class SizeEstimator {
 public:
  SizeEstimator() = default;

  /// Decides transmission for the upcoming slot (probability 2^{-round}).
  bool should_transmit(Rng& rng);

  void observe(const sim::SlotObservation& obs);

  bool done() const { return done_; }

  /// 2^k where k is the index of the first idle round; valid once done().
  std::uint64_t estimate() const;

  /// Rounds consumed (== k); valid once done().
  int rounds() const;

 private:
  int round_ = 1;
  bool done_ = false;
};

}  // namespace mmn
