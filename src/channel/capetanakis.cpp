#include "channel/capetanakis.hpp"

#include "support/check.hpp"

namespace mmn {

CapetanakisResolver::CapetanakisResolver(std::uint64_t id_bound,
                                         std::optional<std::uint64_t> my_id,
                                         bool massey_skip,
                                         bool collect_successes)
    : my_id_(my_id),
      massey_skip_(massey_skip),
      collect_successes_(collect_successes) {
  MMN_REQUIRE(id_bound >= 1, "id space must be non-empty");
  MMN_REQUIRE(!my_id || *my_id < id_bound, "id outside the id space");
  stack_.push_back(Interval{0, id_bound, false});
}

bool CapetanakisResolver::should_transmit() const {
  if (!my_id_ || succeeded_ || stack_.empty()) return false;
  const Interval& top = stack_.back();
  return *my_id_ >= top.lo && *my_id_ < top.hi;
}

void CapetanakisResolver::observe(const sim::SlotObservation& obs,
                                  bool success_was_mine) {
  MMN_REQUIRE(!stack_.empty(), "observe after traversal completed");
  const Interval top = stack_.back();
  stack_.pop_back();
  switch (obs.state) {
    case sim::SlotState::kIdle:
      if (massey_skip_ && !top.right_sibling && !stack_.empty() &&
          stack_.back().right_sibling) {
        // Massey's improvement: the collided parent minus an idle left half
        // leaves >= 2 stations in the right half — skip its probe and split.
        const Interval right = stack_.back();
        stack_.pop_back();
        MMN_ASSERT(right.hi - right.lo >= 2,
                   "skip requires a splittable interval");
        const std::uint64_t mid = right.lo + (right.hi - right.lo) / 2;
        stack_.push_back(Interval{mid, right.hi, true});
        stack_.push_back(Interval{right.lo, mid, false});
      }
      break;
    case sim::SlotState::kSuccess:
      ++success_count_;
      if (collect_successes_) successes_.push_back(obs.payload);
      if (success_was_mine) succeeded_ = true;
      break;
    case sim::SlotState::kCollision: {
      MMN_ASSERT(top.hi - top.lo >= 2,
                 "collision in a singleton interval: duplicate station ids");
      const std::uint64_t mid = top.lo + (top.hi - top.lo) / 2;
      stack_.push_back(Interval{mid, top.hi, true});   // right probed second
      stack_.push_back(Interval{top.lo, mid, false});  // left probed first
      break;
    }
  }
}

}  // namespace mmn
