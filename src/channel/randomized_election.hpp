// Randomized leader election on the multiaccess channel.
//
// Section 2 of the paper notes that with the known conflict-resolution
// toolbox, election takes O(log n) slots deterministically (election.hpp) or
// O(log log n) expected slots randomized (citing Willard 1984).  This is the
// Willard-style protocol:
//
//   1. scale descent — probe transmission probabilities 2^-2^j for
//      j = 0, 1, 2, ...; while the population is far larger than 2^2^j the
//      slot collides; the first non-collision brackets log2(n) into
//      [2^(j-1), 2^j] after O(log log n) probes;
//   2. binary search — bisect the exponent k in that bracket with probes at
//      probability 2^-k: collision raises k, idle lowers it (O(log log n));
//   3. contention — transmit with the bracketed probability until the first
//      success; the successful transmitter is the leader (O(1) expected).
//
// Any success in phases 1–2 also ends the election immediately.  All state
// is a function of the shared slot outcomes, so every node (candidate or
// listener) agrees on the winner and on the termination slot.
#pragma once

#include <cstdint>

#include "sim/channel.hpp"
#include "support/rng.hpp"

namespace mmn {

class RandomizedElection {
 public:
  /// candidate: whether this node runs for leadership.  Anonymous nodes are
  /// fine — the winner is identified by the payload it transmits.
  explicit RandomizedElection(bool candidate) : candidate_(candidate) {}

  /// Decides transmission for the upcoming slot; call exactly once per slot.
  bool should_transmit(Rng& rng);

  /// Feeds the shared outcome of the slot.  `success_was_mine` — this node
  /// observed its own transmission succeed.
  void observe(const sim::SlotObservation& obs, bool success_was_mine);

  bool done() const { return done_; }

  /// True if this node won; valid once done().
  bool won() const;

  /// The winning slot's payload (the leader's announcement); valid once
  /// done().
  const sim::Packet& winner_payload() const;

  /// Slots consumed so far.
  std::uint64_t slots() const { return slots_; }

 private:
  enum class Phase : std::uint8_t { kDescent, kBisect, kContend };

  double probability() const;

  bool candidate_;
  bool done_ = false;
  bool i_won_ = false;
  Phase phase_ = Phase::kDescent;
  int descent_j_ = 0;  // probing probability 2^-2^j
  int lo_ = 0;         // bisection bracket on the exponent k
  int hi_ = 0;
  std::uint64_t slots_ = 0;
  sim::Packet winner_;
};

}  // namespace mmn
