#include "baselines/p2p_global.hpp"

#include "support/check.hpp"

namespace mmn {
namespace {

constexpr std::uint16_t kFlood = 171;   // [id, dist]
constexpr std::uint16_t kHello = 172;   // child -> parent census
constexpr std::uint16_t kFold = 173;    // [partial]
constexpr std::uint16_t kResult = 174;  // [result]

}  // namespace

P2pGlobalProcess::P2pGlobalProcess(const sim::LocalView& view,
                                   P2pGlobalConfig config, sim::Word input)
    : view_(view), op_(config.op), acc_(input), best_id_(view.self) {
  MMN_REQUIRE(config.known_diameter >= -1, "invalid diameter hint");
  stage_len_ = config.known_diameter >= 0
                   ? static_cast<std::uint64_t>(config.known_diameter) + 1
                   : view.n;
}

StepSpec P2pGlobalProcess::step_spec(std::uint64_t step) const {
  // Stage 0: max-id flood / BFS.  Stage 1: child census.  Stage 2: fold.
  // Stage 3: result broadcast.  All point-to-point; the channel stays silent.
  if (step == 1) return {StepKind::kFixed, 2};
  return {StepKind::kFixed, stage_len_ + 1};
}

void P2pGlobalProcess::step_begin(std::uint64_t step, sim::NodeContext& ctx) {
  switch (step) {
    case 0:
      ctx.broadcast(sim::Packet(kFlood, {static_cast<sim::Word>(view_.self), 0}));
      break;
    case 1:
      if (!is_leader()) {
        MMN_ASSERT(parent_edge_ != kNoEdge, "flood did not reach this node");
        ctx.send(parent_edge_, sim::Packet(kHello));
      }
      break;
    case 2:
      send_fold_if_ready(ctx);
      break;
    case 3:
      if (is_leader()) {
        have_result_ = true;
        result_ = acc_;
        ctx.broadcast(sim::Packet(kResult, {result_}));
      }
      break;
    default:
      MMN_ASSERT(false, "unexpected step");
  }
}

void P2pGlobalProcess::step_round(std::uint64_t step, sim::NodeContext& ctx) {
  if (step != 0 || !improved_) return;
  improved_ = false;
  const sim::Packet flood(kFlood, {static_cast<sim::Word>(best_id_),
                                   static_cast<sim::Word>(best_dist_)});
  for (const auto& link : view_.links()) {
    if (link.edge != parent_edge_) ctx.send(link.edge, flood);
  }
}

void P2pGlobalProcess::send_fold_if_ready(sim::NodeContext& ctx) {
  if (is_leader() || sent_fold_ || received_ != children_) return;
  ctx.send(parent_edge_, sim::Packet(kFold, {acc_}));
  sent_fold_ = true;
}

void P2pGlobalProcess::on_message(std::uint64_t step, const sim::Received& msg,
                                  sim::NodeContext& ctx) {
  const sim::Packet& p = msg.packet();
  switch (p.type()) {
    case kFlood: {
      const NodeId id = static_cast<NodeId>(p[0]);
      const auto dist = static_cast<std::uint32_t>(p[1]) + 1;
      if (id > best_id_ || (id == best_id_ && dist < best_dist_)) {
        best_id_ = id;
        best_dist_ = dist;
        parent_edge_ = msg.via;
        improved_ = true;  // re-flooded in step_round after all arrivals
      }
      break;
    }
    case kHello:
      ++children_;
      break;
    case kFold:
      acc_ = semigroup_apply(op_, acc_, p[0]);
      ++received_;
      MMN_ASSERT(received_ <= children_, "more folds than children");
      if (step >= 2) send_fold_if_ready(ctx);
      break;
    case kResult:
      // Result floods over all links; each node forwards it exactly once.
      if (!have_result_) {
        have_result_ = true;
        result_ = p[0];
        const sim::Packet out(kResult, {result_});
        for (const auto& link : view_.links()) {
          if (link.edge != msg.via) ctx.send(link.edge, out);
        }
      }
      break;
    default:
      MMN_ASSERT(false, "unexpected packet in p2p baseline");
  }
}

sim::Word P2pGlobalProcess::result() const {
  MMN_REQUIRE(finished() && have_result_, "baseline still running");
  return result_;
}

}  // namespace mmn
