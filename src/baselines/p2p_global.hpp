// Pure point-to-point baseline for global sensitive functions.
//
// This is what a network *without* the multiaccess channel can do, and what
// Theorem 2's Omega(d) lower bound is measured against: flood the maximum id
// to elect a leader and build its BFS tree, converge-cast the fold, and
// broadcast the result back — three stages of ~diameter rounds each, using no
// channel slots at all.
//
// Stage lengths must be precomputed (there is no channel to barrier on): with
// `known_diameter` set they are d + 1 rounds each, the Omega(d)-matching
// optimum; otherwise the only safe bound in an arbitrary unknown network is
// n, matching Corollary 3's Omega(n) for the general case.
#pragma once

#include <cstdint>

#include "core/global_function.hpp"
#include "core/stepped.hpp"

namespace mmn {

struct P2pGlobalConfig {
  SemigroupOp op = SemigroupOp::kMin;
  /// Exact network diameter if known a priori, or -1 (stage length = n).
  std::int32_t known_diameter = -1;
};

class P2pGlobalProcess final : public SteppedProcess {
 public:
  P2pGlobalProcess(const sim::LocalView& view, P2pGlobalConfig config,
                   sim::Word input);

  /// The fold of all inputs; valid once finished (known to every node).
  sim::Word result() const;

 protected:
  std::uint64_t num_steps() const override { return 4; }
  StepSpec step_spec(std::uint64_t step) const override;
  void step_begin(std::uint64_t step, sim::NodeContext& ctx) override;
  void on_message(std::uint64_t step, const sim::Received& msg,
                  sim::NodeContext& ctx) override;
  void step_round(std::uint64_t step, sim::NodeContext& ctx) override;

 private:
  bool is_leader() const { return best_id_ == view_.self; }
  void send_fold_if_ready(sim::NodeContext& ctx);

  const sim::LocalView& view_;
  SemigroupOp op_;
  std::uint64_t stage_len_;
  sim::Word acc_;

  // Flood state: the BFS tree of the maximum id.
  NodeId best_id_;
  std::uint32_t best_dist_ = 0;
  EdgeId parent_edge_ = kNoEdge;
  bool improved_ = false;

  // Fold state.
  std::uint32_t children_ = 0;
  std::uint32_t received_ = 0;
  bool sent_fold_ = false;

  bool have_result_ = false;
  sim::Word result_ = 0;
};

}  // namespace mmn
