#include "baselines/p2p_mst.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

constexpr std::uint16_t kTest = 201;         // [core]
constexpr std::uint16_t kAccept = 202;
constexpr std::uint16_t kReject = 203;
constexpr std::uint16_t kReport = 204;       // [weight] (0 = none)
constexpr std::uint16_t kConnectDown = 205;
constexpr std::uint16_t kConnect = 206;      // [core]
constexpr std::uint16_t kCycleWin = 207;
constexpr std::uint16_t kFlip = 208;
constexpr std::uint16_t kJoin = 209;
constexpr std::uint16_t kNewFragMsg = 210;   // [core]

}  // namespace

P2pMstProcess::P2pMstProcess(const sim::LocalView& view)
    : view_(view),
      core_(view.self),
      parent_(view.self),
      link_internal_(view.links().size(), false) {
  phases_ = view.n <= 1 ? 0 : ilog2_ceil(view.n);
  // Worst-case cover for sequential probing (2 rounds per incident link),
  // convergecasts and floods over fragments of uncontrolled Theta(n) radius.
  stage_len_ = 3 * static_cast<std::uint64_t>(view.n) + 8;
}

std::uint64_t P2pMstProcess::num_steps() const {
  return static_cast<std::uint64_t>(phases_) * 5;
}

StepSpec P2pMstProcess::step_spec(std::uint64_t) const {
  return {StepKind::kFixed, stage_len_};
}

void P2pMstProcess::remove_child(EdgeId edge) {
  const auto it = std::find(children_.begin(), children_.end(), edge);
  MMN_ASSERT(it != children_.end(), "removing a non-child edge");
  children_.erase(it);
}

void P2pMstProcess::mark_internal(EdgeId edge) {
  const int idx = view_.link_index(edge);
  link_internal_[static_cast<std::size_t>(idx)] = true;
}

void P2pMstProcess::step_begin(std::uint64_t step, sim::NodeContext& ctx) {
  switch (sub_of(step)) {
    case Sub::kMwoe:
      probe_index_ = 0;
      probe_resolved_ = false;
      cand_weight_ = 0;
      cand_edge_ = kNoEdge;
      report_pending_ = static_cast<std::uint32_t>(children_.size());
      best_weight_ = 0;
      best_child_edge_ = kNoEdge;
      report_sent_ = false;
      have_mwoe_ = false;
      gate_edge_ = kNoEdge;
      pending_connects_.clear();
      is_f_root_ = false;
      probe_next_link(ctx);
      maybe_send_report(ctx);
      break;
    case Sub::kConnectSend:
      if (is_core() && have_mwoe_) {
        if (best_child_edge_ == kNoEdge) {
          gate_edge_ = cand_edge_;
          ctx.send(gate_edge_,
                   sim::Packet(kConnect, {static_cast<sim::Word>(core_)}));
        } else {
          ctx.send(best_child_edge_, sim::Packet(kConnectDown));
        }
      }
      break;
    case Sub::kConnectProc:
      if (is_core() && !have_mwoe_) is_f_root_ = true;
      for (const auto& [edge, child_core] : pending_connects_) {
        if (edge == gate_edge_ && core_ < child_core) {
          continue;  // cycle: the higher core id roots this F-tree
        }
        if (edge == gate_edge_) {
          // This side wins the cycle: it becomes the F-root.
          if (is_core()) {
            is_f_root_ = true;
          } else {
            ctx.send(parent_edge_, sim::Packet(kCycleWin));
          }
        }
      }
      break;
    case Sub::kMerge:
      if (is_core() && !is_f_root_ && have_mwoe_) {
        if (best_child_edge_ == kNoEdge) {
          const int idx = view_.link_index(gate_edge_);
          parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
          parent_edge_ = gate_edge_;
          mark_internal(gate_edge_);
          ctx.send(gate_edge_, sim::Packet(kJoin));
        } else {
          const EdgeId down = best_child_edge_;
          const int idx = view_.link_index(down);
          parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
          parent_edge_ = down;
          remove_child(down);
          ctx.send(down, sim::Packet(kFlip));
        }
      }
      break;
    case Sub::kNewFrag:
      if (is_core()) {
        for (EdgeId e : children_) {
          ctx.send(e, sim::Packet(kNewFragMsg,
                                  {static_cast<sim::Word>(core_)}));
        }
      }
      break;
  }
}

void P2pMstProcess::probe_next_link(sim::NodeContext& ctx) {
  const NeighborRange links = view_.links();
  while (probe_index_ < links.size()) {
    if (link_internal_[probe_index_]) {
      ++probe_index_;
      continue;
    }
    ctx.send(links[probe_index_].edge,
             sim::Packet(kTest, {static_cast<sim::Word>(core_)}));
    return;
  }
  probe_resolved_ = true;
}

void P2pMstProcess::maybe_send_report(sim::NodeContext& ctx) {
  if (report_sent_ || !probe_resolved_ || report_pending_ != 0) return;
  if (cand_weight_ != 0 && (best_weight_ == 0 || cand_weight_ < best_weight_)) {
    best_weight_ = cand_weight_;
    best_child_edge_ = kNoEdge;
  }
  report_sent_ = true;
  if (is_core()) {
    have_mwoe_ = best_weight_ != 0;
  } else {
    ctx.send(parent_edge_,
             sim::Packet(kReport, {static_cast<sim::Word>(best_weight_)}));
  }
}

void P2pMstProcess::on_message(std::uint64_t /*step*/, const sim::Received& msg,
                               sim::NodeContext& ctx) {
  const sim::Packet& p = msg.packet();
  switch (p.type()) {
    case kTest:
      if (static_cast<NodeId>(p[0]) == core_) {
        mark_internal(msg.via);
        ctx.send(msg.via, sim::Packet(kReject));
      } else {
        ctx.send(msg.via, sim::Packet(kAccept));
      }
      break;
    case kReject:
      mark_internal(msg.via);
      ++probe_index_;
      probe_next_link(ctx);
      maybe_send_report(ctx);
      break;
    case kAccept:
      probe_resolved_ = true;
      cand_edge_ = msg.via;
      cand_weight_ =
          view_.links()[static_cast<std::size_t>(view_.link_index(msg.via))]
              .weight;
      maybe_send_report(ctx);
      break;
    case kReport: {
      const Weight w = static_cast<Weight>(p[0]);
      if (w != 0 && (best_weight_ == 0 || w < best_weight_)) {
        best_weight_ = w;
        best_child_edge_ = msg.via;
      }
      MMN_ASSERT(report_pending_ > 0, "unexpected MWOE report");
      --report_pending_;
      maybe_send_report(ctx);
      break;
    }
    case kConnectDown:
      if (best_child_edge_ == kNoEdge) {
        gate_edge_ = cand_edge_;
        ctx.send(gate_edge_,
                 sim::Packet(kConnect, {static_cast<sim::Word>(core_)}));
      } else {
        ctx.send(best_child_edge_, sim::Packet(kConnectDown));
      }
      break;
    case kConnect:
      pending_connects_.push_back({msg.via, static_cast<NodeId>(p[0])});
      break;
    case kCycleWin:
      if (is_core()) {
        is_f_root_ = true;
      } else {
        ctx.send(parent_edge_, sim::Packet(kCycleWin));
      }
      break;
    case kFlip: {
      children_.push_back(msg.via);
      if (best_child_edge_ == kNoEdge) {
        const int idx = view_.link_index(gate_edge_);
        parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
        parent_edge_ = gate_edge_;
        mark_internal(gate_edge_);
        ctx.send(gate_edge_, sim::Packet(kJoin));
      } else {
        const EdgeId down = best_child_edge_;
        const int idx = view_.link_index(down);
        parent_ = view_.links()[static_cast<std::size_t>(idx)].to;
        parent_edge_ = down;
        remove_child(down);
        ctx.send(down, sim::Packet(kFlip));
      }
      break;
    }
    case kJoin:
      children_.push_back(msg.via);
      mark_internal(msg.via);
      break;
    case kNewFragMsg:
      core_ = static_cast<NodeId>(p[0]);
      for (EdgeId e : children_) {
        ctx.send(e, sim::Packet(kNewFragMsg, {p[0]}));
      }
      break;
    default:
      MMN_ASSERT(false, "unexpected packet in p2p MST baseline");
  }
}

std::vector<EdgeId> P2pMstProcess::mst_edges() const {
  MMN_REQUIRE(finished(), "baseline still running");
  std::vector<EdgeId> edges;
  if (parent_edge_ != kNoEdge) edges.push_back(parent_edge_);
  return edges;
}

}  // namespace mmn
