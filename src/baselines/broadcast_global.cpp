#include "baselines/broadcast_global.hpp"

#include "support/check.hpp"

namespace mmn {
namespace {

constexpr std::uint16_t kInput = 181;  // [input] TDMA broadcast

}  // namespace

BroadcastGlobalProcess::BroadcastGlobalProcess(const sim::LocalView& view,
                                               SemigroupOp op, sim::Word input)
    : view_(view), op_(op), input_(input) {}

StepSpec BroadcastGlobalProcess::step_spec(std::uint64_t) const {
  // Exactly n TDMA slots; the final slot is observed during the round that
  // ends the step (the framework delivers it before finishing).
  return {StepKind::kFixed, view_.n};
}

void BroadcastGlobalProcess::on_message(std::uint64_t, const sim::Received&,
                                        sim::NodeContext&) {
  MMN_ASSERT(false, "the broadcast baseline never uses point-to-point links");
}

void BroadcastGlobalProcess::step_round(std::uint64_t, sim::NodeContext& ctx) {
  if (rounds_in_step() == view_.self) {
    ctx.channel_write(sim::Packet(kInput, {input_}));
  }
}

void BroadcastGlobalProcess::on_slot(std::uint64_t,
                                     const sim::SlotObservation& obs,
                                     sim::NodeContext&) {
  if (!obs.success()) return;
  acc_ = heard_ == 0 ? obs.payload[0] : semigroup_apply(op_, acc_, obs.payload[0]);
  ++heard_;
}

sim::Word BroadcastGlobalProcess::result() const {
  MMN_REQUIRE(finished(), "baseline still running");
  MMN_ASSERT(heard_ == view_.n, "missed a TDMA slot");
  return acc_;
}

ContentionGlobalProcess::ContentionGlobalProcess(const sim::LocalView& view,
                                                 SemigroupOp op,
                                                 sim::Word input)
    : view_(view), op_(op), input_(input) {}

void ContentionGlobalProcess::round(sim::NodeContext& ctx) {
  const sim::SlotObservation& obs = ctx.slot();
  if (obs.success()) {
    acc_ = heard_ == 0 ? obs.payload[0]
                       : semigroup_apply(op_, acc_, obs.payload[0]);
    ++heard_;
    if (obs.writer == view_.self) transmitted_ = true;
  }
  // Keep offering the input until the discipline grants us a success slot.
  // Every node succeeds exactly once, so exactly n successes are heard.
  if (!transmitted_ && heard_ < view_.n) {
    ctx.channel_write(sim::Packet(kInput, {input_}));
  }
}

sim::Word ContentionGlobalProcess::result() const {
  MMN_REQUIRE(finished(), "contention fold still running");
  return acc_;
}

}  // namespace mmn
