// Pure broadcast-channel baseline for global sensitive functions.
//
// The strongest algorithm a channel-only network can run when ids and n are
// globally known: a fixed TDMA schedule in which slot v belongs to node v,
// every node broadcasts its input once, and everyone folds the n overheard
// values.  Exactly n slots — Theorem 2 (Claim 3) proves any channel-only
// algorithm needs at least n/2, so this baseline is within 2x of optimal and
// the multimedia algorithm's O(sqrt(n) polylog) win over it is structural.
// No point-to-point messages are used at all.
#pragma once

#include <cstdint>

#include "core/global_function.hpp"
#include "core/stepped.hpp"

namespace mmn {

class BroadcastGlobalProcess final : public SteppedProcess {
 public:
  BroadcastGlobalProcess(const sim::LocalView& view, SemigroupOp op,
                         sim::Word input);

  /// The fold of all inputs; valid once finished (known to every node).
  sim::Word result() const;

 protected:
  std::uint64_t num_steps() const override { return 1; }
  StepSpec step_spec(std::uint64_t) const override;
  void step_begin(std::uint64_t, sim::NodeContext&) override {}
  void on_message(std::uint64_t, const sim::Received&,
                  sim::NodeContext&) override;
  void step_round(std::uint64_t, sim::NodeContext& ctx) override;
  void on_slot(std::uint64_t, const sim::SlotObservation& obs,
               sim::NodeContext&) override;

 private:
  const sim::LocalView& view_;
  SemigroupOp op_;
  sim::Word input_;
  sim::Word acc_ = 0;
  std::uint32_t heard_ = 0;
};

}  // namespace mmn
