// Pure broadcast-channel baseline for global sensitive functions.
//
// The strongest algorithm a channel-only network can run when ids and n are
// globally known: a fixed TDMA schedule in which slot v belongs to node v,
// every node broadcasts its input once, and everyone folds the n overheard
// values.  Exactly n slots — Theorem 2 (Claim 3) proves any channel-only
// algorithm needs at least n/2, so this baseline is within 2x of optimal and
// the multimedia algorithm's O(sqrt(n) polylog) win over it is structural.
// No point-to-point messages are used at all.
#pragma once

#include <cstdint>

#include "core/global_function.hpp"
#include "core/stepped.hpp"

namespace mmn {

class BroadcastGlobalProcess final : public SteppedProcess {
 public:
  BroadcastGlobalProcess(const sim::LocalView& view, SemigroupOp op,
                         sim::Word input);

  /// The fold of all inputs; valid once finished (known to every node).
  sim::Word result() const;

 protected:
  std::uint64_t num_steps() const override { return 1; }
  StepSpec step_spec(std::uint64_t) const override;
  void step_begin(std::uint64_t, sim::NodeContext&) override {}
  void on_message(std::uint64_t, const sim::Received&,
                  sim::NodeContext&) override;
  void step_round(std::uint64_t, sim::NodeContext& ctx) override;
  void on_slot(std::uint64_t, const sim::SlotObservation& obs,
               sim::NodeContext&) override;

 private:
  const sim::LocalView& view_;
  SemigroupOp op_;
  sim::Word input_;
  sim::Word acc_ = 0;
  std::uint32_t heard_ = 0;
};

/// Greedy contender for the channel-discipline layer
/// (sim/channel_discipline.hpp): every node offers its input to the channel
/// in every round until it observes its own success, folds every success it
/// overhears, and finishes once all n inputs are heard.  It carries no
/// medium-access logic of its own — under the free-for-all discipline n >= 2
/// contenders collide forever, so the workload exists precisely to let TDMA
/// (one cycle of n slots, zero collisions) and Capetanakis tree resolution
/// (2k - 1 probe slots for k contiguous contenders) do the scheduling.
class ContentionGlobalProcess final : public sim::Process {
 public:
  ContentionGlobalProcess(const sim::LocalView& view, SemigroupOp op,
                          sim::Word input);

  void round(sim::NodeContext& ctx) override;
  bool finished() const override { return heard_ == view_.n; }

  /// The fold of all inputs; valid once finished (known to every node).
  sim::Word result() const;

 private:
  const sim::LocalView& view_;
  SemigroupOp op_;
  sim::Word input_;
  sim::Word acc_ = 0;
  NodeId heard_ = 0;
  bool transmitted_ = false;
};

}  // namespace mmn
