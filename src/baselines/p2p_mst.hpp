// Pure point-to-point MST baseline: synchronous Boruvka (GHS-style).
//
// What a network without the channel can do, for the Section 6 comparison.
// Every fragment finds its minimum-weight outgoing edge with GHS
// TEST/ACCEPT/REJECT probing and a convergecast, fragments merge along the
// chosen edges (the two-fragments-one-edge cycle is rooted at the higher
// core id), and the new core floods the merged tree with its id.  Without a
// channel there is no termination detector, so every phase runs a
// precomputed worst-case length of Theta(n) rounds — fragment radii are not
// controlled, and a Boruvka fragment can be a Theta(n)-deep chain.  With
// ceil(log2 n) phases the total is Theta(n log n) time, the classic GHS
// bound the multimedia algorithm's O(sqrt(n) log n) is measured against.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stepped.hpp"

namespace mmn {

class P2pMstProcess final : public SteppedProcess {
 public:
  explicit P2pMstProcess(const sim::LocalView& view);

  /// MST edges this node is an endpoint of (its final tree parent edge);
  /// the union over nodes is the MST edge set.  Valid once finished.
  std::vector<EdgeId> mst_edges() const;

  NodeId fragment() const { return core_; }

 protected:
  std::uint64_t num_steps() const override;
  StepSpec step_spec(std::uint64_t step) const override;
  void step_begin(std::uint64_t step, sim::NodeContext& ctx) override;
  void on_message(std::uint64_t step, const sim::Received& msg,
                  sim::NodeContext& ctx) override;

 private:
  enum class Sub : int { kMwoe, kConnectSend, kConnectProc, kMerge, kNewFrag };

  Sub sub_of(std::uint64_t step) const {
    return static_cast<Sub>(step % 5);
  }

  bool is_core() const { return parent_ == view_.self; }
  void probe_next_link(sim::NodeContext& ctx);
  void maybe_send_report(sim::NodeContext& ctx);
  void remove_child(EdgeId edge);
  void mark_internal(EdgeId edge);

  const sim::LocalView& view_;
  int phases_;
  std::uint64_t stage_len_;

  NodeId core_;
  NodeId parent_;
  EdgeId parent_edge_ = kNoEdge;
  std::vector<EdgeId> children_;
  std::vector<bool> link_internal_;

  // Per-phase MWOE state (same structure as the partition's).
  std::size_t probe_index_ = 0;
  bool probe_resolved_ = false;
  Weight cand_weight_ = 0;
  EdgeId cand_edge_ = kNoEdge;
  std::uint32_t report_pending_ = 0;
  Weight best_weight_ = 0;
  EdgeId best_child_edge_ = kNoEdge;
  bool report_sent_ = false;
  bool have_mwoe_ = false;

  EdgeId gate_edge_ = kNoEdge;
  std::vector<std::pair<EdgeId, NodeId>> pending_connects_;
  bool is_f_root_ = false;
};

}  // namespace mmn
