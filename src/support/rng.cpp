#include "support/rng.hpp"

#include <bit>

#include "support/check.hpp"

namespace mmn {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) : origin_(seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng Rng::fork(std::uint64_t stream) const {
  return Rng(mix64(origin_, stream));
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MMN_REQUIRE(bound >= 1, "next_below requires bound >= 1");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace mmn
