// Integer math used throughout the library.
//
// The paper's complexity bounds are phrased in terms of sqrt(n), log n,
// log* n and the exponential tower E_i (Section 4).  All of these are
// implemented here on integers, exactly, so phase schedules computed
// independently by every node agree bit-for-bit.
#pragma once

#include <cstdint>

namespace mmn {

/// floor(log2(x)) for x >= 1.
int ilog2_floor(std::uint64_t x);

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
int ilog2_ceil(std::uint64_t x);

/// floor(sqrt(x)).
std::uint64_t isqrt(std::uint64_t x);

/// ceil(sqrt(x)).
std::uint64_t isqrt_ceil(std::uint64_t x);

/// log* n with base-2 logarithms: the least i such that applying log2 i times
/// to n yields a value <= 1.  log_star(1) == 0, log_star(2) == 1,
/// log_star(16) == 3, log_star(65536) == 4.
int log_star(std::uint64_t n);

/// The exponential tower of Section 4: E_1 = 1 and E_i = e^{E_{i-1}}.
/// Values above `cap` saturate to `cap` (the algorithm only ever compares
/// E_i / sqrt(n) against 1, so saturation at cap >= n is lossless).
double exp_tower(int i, double cap);

/// Number of Cole–Vishkin iterations required to reduce colors representable
/// in `bits` bits to the range {0..5}.  Each iteration maps a b-bit palette to
/// a (ceil(log2 b) + 1)-bit palette; the fixed point is 3 bits ({0..5} needs
/// values 2k+b with k < 3).  Deterministic function of `bits` so all nodes
/// can precompute an identical schedule.
int cole_vishkin_iterations(int bits);

/// Number of phases of the deterministic partitioning algorithm for an
/// n-node network: fragments must reach size >= sqrt(n), i.e. level
/// >= ceil(log2(n)/2).
int partition_phases(std::uint64_t n);

}  // namespace mmn
