// Minimal fixed-width table printer for benchmark outputs.
//
// Every bench binary regenerates one experiment table from DESIGN.md; this
// keeps their output uniform and diff-friendly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mmn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; values are appended with add().
  void begin_row();
  void add(const std::string& value);
  void add(std::uint64_t value);
  void add(std::int64_t value);
  void add(double value, int precision = 3);

  /// Writes the table with aligned columns.
  void print(std::ostream& os) const;

  /// Writes the table as a JSON array of row objects keyed by header.
  /// Cells that parse as numbers are emitted unquoted so the output is
  /// machine-readable without re-parsing strings.
  void write_json(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmn
