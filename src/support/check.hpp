// Checked assertions and precondition helpers.
//
// Three distinct failure categories, per the error-handling split in the C++
// Core Guidelines:
//  * MMN_ASSERT  — internal invariant of the library.  A violation is a bug in
//    mmn itself; the process aborts with a diagnostic.  Always on, including
//    release builds: the simulator's results are only meaningful when its
//    invariants hold.
//  * MMN_REQUIRE — precondition on a public API.  A violation is a caller bug
//    and throws std::invalid_argument so applications can test and recover.
//  * MMN_DCHECK  — invariant on a per-word / per-message hot path whose cost
//    would be paid millions of times per simulated round.  Checked like
//    MMN_ASSERT in debug builds, compiled out under NDEBUG; every DCHECK'd
//    condition must also be enforced at a colder boundary (construction or
//    send commit) so release builds cannot silently accept invalid state.
#pragma once

#include <string>

namespace mmn {

[[noreturn]] void assertion_failure(const char* expr, const char* file,
                                    int line, const std::string& message);

[[noreturn]] void precondition_failure(const char* expr, const char* func,
                                       const std::string& message);

}  // namespace mmn

#define MMN_ASSERT(expr, message)                                     \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::mmn::assertion_failure(#expr, __FILE__, __LINE__, (message)); \
    }                                                                 \
  } while (false)

#define MMN_REQUIRE(expr, message)                                \
  do {                                                            \
    if (!(expr)) [[unlikely]] {                                   \
      ::mmn::precondition_failure(#expr, __func__, (message));    \
    }                                                             \
  } while (false)

#ifdef NDEBUG
#define MMN_DCHECK(expr, message) \
  do {                            \
  } while (false)
#else
#define MMN_DCHECK(expr, message) MMN_ASSERT(expr, message)
#endif
