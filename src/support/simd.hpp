// Runtime-dispatched SIMD kernels for the per-round message hot path.
//
// MessageArena::flip and SlotBuckets::stage both reduce to the same two
// primitives — a histogram over the `to` field of a packed header array and
// an exclusive prefix sum turning counts into scatter offsets.  Both live
// here with two implementations each: a portable scalar loop (the reference
// semantics, always compiled, always available) and an AVX2 path (gathered
// key extraction, vectorized in-register scan) selected at runtime via
// __builtin_cpu_supports, so one binary runs correctly on any x86-64 and
// fast on AVX2 hosts.  Non-x86 builds compile the scalar path only.
//
// The dispatch is overridable in three layers, strongest first:
//  * set_level_override() — tests pin a path programmatically (the
//    scalar-vs-SIMD digest pin in test_scheduler_equiv);
//  * MMN_FORCE_SCALAR (environment, any value but "0") — CI legs run the
//    whole suite on the reference path without a rebuild;
//  * MMN_FORCE_SCALAR_BUILD (compile definition, set by the CMake option
//    MMN_FORCE_SCALAR) — pins scalar at build time, e.g. for a host whose
//    feature detection is untrustworthy.
//
// Determinism: both paths produce bit-identical outputs — a histogram and a
// prefix sum have exactly one right answer, and the callers keep their
// scatter loops scalar and stable — so switching levels can never reorder a
// delivery.  The digest pin holds the kernels to that.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mmn::simd {

enum class Level : int {
  kScalar = 0,  ///< portable reference loops
  kAvx2 = 1,    ///< AVX2 gathers + in-register scans (x86-64 only)
};

/// The dispatch level the kernels use right now: the programmatic override
/// if one is set, else the cached detection (build pin > env pin > cpuid).
Level active_level();

/// Human-readable name ("scalar" / "avx2") for logs and bench labels.
const char* level_name(Level level);

/// Pins every kernel to `level` until clear_level_override().  Test-only:
/// call from a single thread with no engine mid-round.  Forcing kAvx2 on a
/// host without AVX2 is a programming error (the kernels would fault).
void set_level_override(Level level);
void clear_level_override();

/// hist[key] += 1 for each of the `count` u32 keys at
/// base, base + stride_bytes, base + 2*stride_bytes, ...
/// Every key must be a valid index into hist (callers bound keys by n).
/// `base` must be 4-byte aligned; stride_bytes a multiple of 4.
void histogram_u32_strided(const void* base, std::size_t stride_bytes,
                           std::size_t count, std::uint32_t* hist);

/// In-place exclusive prefix sum over values[0, n); returns the total.
/// values[i] becomes values[0] + ... + values[i-1] (0 for i == 0).
std::uint32_t exclusive_prefix_sum_u32(std::uint32_t* values, std::size_t n);

}  // namespace mmn::simd
