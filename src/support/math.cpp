#include "support/math.hpp"

#include <bit>
#include <cmath>

#include "support/check.hpp"

namespace mmn {

int ilog2_floor(std::uint64_t x) {
  MMN_REQUIRE(x >= 1, "ilog2_floor requires x >= 1");
  return 63 - std::countl_zero(x);
}

int ilog2_ceil(std::uint64_t x) {
  MMN_REQUIRE(x >= 1, "ilog2_ceil requires x >= 1");
  const int fl = ilog2_floor(x);
  return (x == (std::uint64_t{1} << fl)) ? fl : fl + 1;
}

std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  // Newton iteration seeded from the float estimate; converges in <= 2 steps
  // and is then clamped to the exact floor.
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  while (r > 0 && r > x / r) --r;
  while ((r + 1) <= x / (r + 1)) ++r;
  return r;
}

std::uint64_t isqrt_ceil(std::uint64_t x) {
  const std::uint64_t r = isqrt(x);
  return r * r == x ? r : r + 1;
}

int log_star(std::uint64_t n) {
  MMN_REQUIRE(n >= 1, "log_star requires n >= 1");
  int i = 0;
  double v = static_cast<double>(n);
  while (v > 1.0) {
    v = std::log2(v);
    ++i;
  }
  return i;
}

double exp_tower(int i, double cap) {
  MMN_REQUIRE(i >= 1, "exp_tower requires i >= 1");
  MMN_REQUIRE(cap >= 1.0, "exp_tower requires cap >= 1");
  double e = 1.0;  // E_1
  for (int k = 2; k <= i; ++k) {
    if (e >= std::log(cap)) return cap;  // e^e would exceed cap
    e = std::exp(e);
  }
  return e < cap ? e : cap;
}

int cole_vishkin_iterations(int bits) {
  MMN_REQUIRE(bits >= 1, "cole_vishkin_iterations requires bits >= 1");
  int iters = 0;
  int b = bits;
  while (b > 3) {
    b = ilog2_ceil(static_cast<std::uint64_t>(b)) + 1;
    ++iters;
  }
  // At b == 3 colors are already in {0..7}; two more iterations pin them
  // into the {0..5} palette (2k + bit with k in {0,1,2}).
  return iters + 2;
}

int partition_phases(std::uint64_t n) {
  MMN_REQUIRE(n >= 1, "partition_phases requires n >= 1");
  if (n == 1) return 0;
  // After phase i every fragment has level >= i + 1, i.e. size >= 2^{i+1}.
  // Run phases i = 0 .. L-1 where L = ceil(log2(n) / 2), so the final size is
  // >= 2^L >= sqrt(n).
  return (ilog2_ceil(n) + 1) / 2;
}

}  // namespace mmn
