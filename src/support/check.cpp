#include "support/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mmn {

void assertion_failure(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::fprintf(stderr, "mmn: invariant violated at %s:%d: (%s) — %s\n", file,
               line, expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

void precondition_failure(const char* expr, const char* func,
                          const std::string& message) {
  throw std::invalid_argument(std::string("mmn: precondition of ") + func +
                              " violated: (" + expr + ") — " + message);
}

}  // namespace mmn
