// Model-level cost accounting.
//
// The paper measures time as synchronous rounds (message delay = slot length
// = one time unit) and communication as point-to-point messages plus time.
// Every engine run fills in a Metrics record; benches normalize these against
// the paper's bounds.
#pragma once

#include <cstdint>
#include <string>

namespace mmn {

struct Metrics {
  std::uint64_t rounds = 0;         ///< simulated time (rounds == slots)
  std::uint64_t p2p_messages = 0;   ///< point-to-point messages delivered
  std::uint64_t slots_idle = 0;     ///< channel slots with zero writers
  std::uint64_t slots_success = 0;  ///< channel slots with one writer
  std::uint64_t slots_collision = 0;  ///< channel slots with >= 2 writers

  /// Emergent continuous time consumed on the unslotted channel
  /// (sim/channel_discipline.hpp), in ticks; 0 under slotted disciplines,
  /// where rounds is the only clock.
  std::uint64_t channel_ticks = 0;

  /// Channel slots actually used by some writer (success + collision).
  std::uint64_t slots_busy() const { return slots_success + slots_collision; }

  /// The paper's communication complexity: messages plus time.
  std::uint64_t communication() const { return p2p_messages + rounds; }

  Metrics& operator+=(const Metrics& other);

  /// Field-wise equality; the scheduler-equivalence suite asserts serial and
  /// parallel runs agree bit for bit.
  bool operator==(const Metrics& other) const = default;

  std::string to_string() const;
};

Metrics operator+(Metrics a, const Metrics& b);

}  // namespace mmn
