#include "support/metrics.hpp"

#include <sstream>

namespace mmn {

Metrics& Metrics::operator+=(const Metrics& other) {
  rounds += other.rounds;
  p2p_messages += other.p2p_messages;
  slots_idle += other.slots_idle;
  slots_success += other.slots_success;
  slots_collision += other.slots_collision;
  channel_ticks += other.channel_ticks;
  return *this;
}

Metrics operator+(Metrics a, const Metrics& b) {
  a += b;
  return a;
}

std::string Metrics::to_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " msgs=" << p2p_messages
     << " slots(idle/succ/coll)=" << slots_idle << '/' << slots_success << '/'
     << slots_collision;
  if (channel_ticks > 0) os << " ticks=" << channel_ticks;
  return os.str();
}

}  // namespace mmn
