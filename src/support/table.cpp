#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace mmn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MMN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add(const std::string& value) {
  MMN_REQUIRE(!rows_.empty(), "begin_row before add");
  MMN_REQUIRE(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(value);
}

void Table::add(std::uint64_t value) { add(std::to_string(value)); }

void Table::add(std::int64_t value) { add(std::to_string(value)); }

void Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  add(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "| " << std::setw(static_cast<int>(width[c])) << v << ' ';
    }
    os << "|\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

namespace {

bool is_json_number(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  bool digit = false, dot = false;
  for (; i < s.size(); ++i) {
    if (s[i] >= '0' && s[i] <= '9') {
      digit = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digit;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Table::write_json(std::ostream& os) const {
  os << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      write_json_string(os, headers_[c]);
      os << ": ";
      const std::string& v = c < rows_[r].size() ? rows_[r][c] : std::string{};
      if (is_json_number(v)) {
        os << v;
      } else {
        write_json_string(os, v);
      }
    }
    os << "}";
  }
  os << "\n]";
}

}  // namespace mmn
