#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace mmn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MMN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add(const std::string& value) {
  MMN_REQUIRE(!rows_.empty(), "begin_row before add");
  MMN_REQUIRE(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(value);
}

void Table::add(std::uint64_t value) { add(std::to_string(value)); }

void Table::add(std::int64_t value) { add(std::to_string(value)); }

void Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  add(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "| " << std::setw(static_cast<int>(width[c])) << v << ' ';
    }
    os << "|\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

}  // namespace mmn
