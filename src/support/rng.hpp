// Deterministic random number generation.
//
// Every randomized component of the library draws from an Rng that is derived
// from (run seed, stream id).  Two runs with the same seed produce identical
// traces; distinct nodes get statistically independent streams.  We implement
// xoshiro256** seeded through SplitMix64 — small, fast, and reproducible
// across platforms (no reliance on unspecified std::uniform_* behaviour).
#pragma once

#include <array>
#include <cstdint>

namespace mmn {

/// SplitMix64 step; used for seeding and for one-shot hashing of ids.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of two words into one (for deriving per-node seeds).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

class Rng {
 public:
  /// Seeds the generator from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent stream, e.g. Rng(seed).fork(node_id).
  Rng fork(std::uint64_t stream) const;

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) for bound >= 1 (unbiased, rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t origin_;  // seed this generator was constructed from
};

}  // namespace mmn
