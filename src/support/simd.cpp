#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define MMN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace mmn::simd {
namespace {

// -1 = no override; otherwise the Level value pinned by set_level_override.
std::atomic<int> g_override{-1};

Level detect() {
#ifdef MMN_FORCE_SCALAR_BUILD
  return Level::kScalar;
#else
  if (const char* env = std::getenv("MMN_FORCE_SCALAR");
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    return Level::kScalar;
  }
#ifdef MMN_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
#endif
}

// --- scalar reference paths -------------------------------------------------

void histogram_scalar(const void* base, std::size_t stride_bytes,
                      std::size_t count, std::uint32_t* hist) {
  const char* p = static_cast<const char*>(base);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t key;
    std::memcpy(&key, p, sizeof(key));
    ++hist[key];
    p += stride_bytes;
  }
}

std::uint32_t prefix_scalar(std::uint32_t* values, std::size_t n) {
  std::uint32_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t c = values[i];
    values[i] = running;
    running += c;
  }
  return running;
}

// --- AVX2 paths -------------------------------------------------------------
//
// Compiled with a per-function target attribute so the translation unit
// stays baseline x86-64; the functions are only ever called after
// __builtin_cpu_supports("avx2") said yes.

#ifdef MMN_SIMD_X86

__attribute__((target("avx2"))) void histogram_avx2(const void* base,
                                                    std::size_t stride_bytes,
                                                    std::size_t count,
                                                    std::uint32_t* hist) {
  // Keys are gathered 8 at a time (the vectorizable half of a histogram);
  // the increments stay scalar — pre-AVX-512CD there is no conflict-safe
  // scatter, and duplicate keys in one batch are the common case here.
  const int* words = static_cast<const int*>(base);
  const auto stride_words = static_cast<int>(stride_bytes / sizeof(int));
  __m256i idx = _mm256_setr_epi32(0, stride_words, 2 * stride_words,
                                  3 * stride_words, 4 * stride_words,
                                  5 * stride_words, 6 * stride_words,
                                  7 * stride_words);
  const __m256i step = _mm256_set1_epi32(8 * stride_words);
  alignas(32) std::uint32_t keys[8];
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i k = _mm256_i32gather_epi32(words, idx, 4);
    idx = _mm256_add_epi32(idx, step);
    _mm256_store_si256(reinterpret_cast<__m256i*>(keys), k);
    ++hist[keys[0]];
    ++hist[keys[1]];
    ++hist[keys[2]];
    ++hist[keys[3]];
    ++hist[keys[4]];
    ++hist[keys[5]];
    ++hist[keys[6]];
    ++hist[keys[7]];
  }
  if (i < count) {
    histogram_scalar(static_cast<const char*>(base) + i * stride_bytes,
                     stride_bytes, count - i, hist);
  }
}

__attribute__((target("avx2"))) std::uint32_t prefix_avx2(std::uint32_t* values,
                                                          std::size_t n) {
  // Per 8-lane chunk: inclusive scan inside each 128-bit lane (two
  // shift-adds), propagate the low lane's total into the high lane, rotate
  // one lane right with a zero in lane 0 to make it exclusive, add the
  // running carry, and fold the chunk total into the carry.
  const __m256i rot_right = _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6);
  const __m256i zero = _mm256_setzero_si256();
  std::uint32_t carry = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    __m256i s = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    s = _mm256_add_epi32(s, _mm256_slli_si256(s, 8));
    const __m256i low_total = _mm256_permutevar8x32_epi32(s, _mm256_set1_epi32(3));
    s = _mm256_add_epi32(s, _mm256_blend_epi32(zero, low_total, 0xF0));
    __m256i ex = _mm256_permutevar8x32_epi32(s, rot_right);
    ex = _mm256_blend_epi32(ex, zero, 0x01);
    ex = _mm256_add_epi32(ex, _mm256_set1_epi32(static_cast<int>(carry)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(values + i), ex);
    carry += static_cast<std::uint32_t>(_mm256_extract_epi32(s, 7));
  }
  for (; i < n; ++i) {
    const std::uint32_t c = values[i];
    values[i] = carry;
    carry += c;
  }
  return carry;
}

#endif  // MMN_SIMD_X86

}  // namespace

Level active_level() {
  const int pinned = g_override.load(std::memory_order_relaxed);
  if (pinned >= 0) return static_cast<Level>(pinned);
  static const Level detected = detect();
  return detected;
}

const char* level_name(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

void set_level_override(Level level) {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_level_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

void histogram_u32_strided(const void* base, std::size_t stride_bytes,
                           std::size_t count, std::uint32_t* hist) {
#ifdef MMN_SIMD_X86
  if (active_level() == Level::kAvx2) {
    histogram_avx2(base, stride_bytes, count, hist);
    return;
  }
#endif
  histogram_scalar(base, stride_bytes, count, hist);
}

std::uint32_t exclusive_prefix_sum_u32(std::uint32_t* values, std::size_t n) {
#ifdef MMN_SIMD_X86
  if (active_level() == Level::kAvx2) return prefix_avx2(values, n);
#endif
  return prefix_scalar(values, n);
}

}  // namespace mmn::simd
