#include "sim/channel_discipline.hpp"

#include <cmath>
#include <utility>

#include "support/check.hpp"

namespace mmn::sim {

const char* discipline_name(DisciplineKind kind) {
  switch (kind) {
    case DisciplineKind::kFreeForAll: return "freeforall";
    case DisciplineKind::kTdma: return "tdma";
    case DisciplineKind::kCapetanakis: return "capetanakis";
    case DisciplineKind::kUnslotted: return "unslotted";
    case DisciplineKind::kPseudoBayesian: return "pseudobayes";
    case DisciplineKind::kReservation: return "reservation";
  }
  MMN_REQUIRE(false, "unknown discipline kind");
  return "";
}

std::unique_ptr<ChannelDiscipline> make_discipline(
    DisciplineKind kind, const UnslottedConfig& unslotted, std::uint64_t seed) {
  switch (kind) {
    case DisciplineKind::kFreeForAll:
      return std::make_unique<FreeForAllDiscipline>();
    case DisciplineKind::kTdma:
      return std::make_unique<TdmaDiscipline>();
    case DisciplineKind::kCapetanakis:
      return std::make_unique<CapetanakisDiscipline>();
    case DisciplineKind::kUnslotted:
      return std::make_unique<UnslottedDiscipline>(unslotted);
    case DisciplineKind::kPseudoBayesian:
      return std::make_unique<PseudoBayesianDiscipline>(seed);
    case DisciplineKind::kReservation:
      return std::make_unique<ReservationDiscipline>(seed);
  }
  MMN_REQUIRE(false, "unknown discipline kind");
  return nullptr;
}

// ---- free-for-all ----------------------------------------------------------

SlotObservation FreeForAllDiscipline::slot(std::span<const ChannelWrite> writes,
                                           Channel& channel, Metrics& metrics) {
  for (const ChannelWrite& w : writes) channel.write(w.node, w.packet);
  return channel.resolve(metrics);
}

// ---- TDMA ------------------------------------------------------------------

void TdmaDiscipline::reset(NodeId n) {
  MMN_REQUIRE(n >= 1, "TDMA needs at least one station");
  n_ = n;
  slot_ = 0;
  backlog_ = 0;
  pending_.assign(n, std::nullopt);
}

SlotObservation TdmaDiscipline::slot(std::span<const ChannelWrite> writes,
                                     Channel& channel, Metrics& metrics) {
  for (const ChannelWrite& w : writes) {
    MMN_REQUIRE(w.node < n_, "writer id out of range");
    if (!pending_[w.node]) ++backlog_;
    pending_[w.node] = w.packet;
  }
  const NodeId owner = static_cast<NodeId>(slot_ % n_);
  ++slot_;
  if (pending_[owner]) {
    channel.write(owner, *pending_[owner]);
    pending_[owner].reset();
    --backlog_;
  }
  return channel.resolve(metrics);
}

// ---- Capetanakis -----------------------------------------------------------

void TdmaDiscipline::stifle(NodeId v) {
  if (v < pending_.size() && pending_[v].has_value()) {
    pending_[v].reset();
    --backlog_;
  }
}

void CapetanakisDiscipline::reset(NodeId n) {
  MMN_REQUIRE(n >= 1, "tree resolution needs a non-empty id space");
  n_ = n;
  epoch_.clear();
  waiting_.clear();
  resolver_.reset();
}

SlotObservation CapetanakisDiscipline::slot(std::span<const ChannelWrite> writes,
                                            Channel& channel,
                                            Metrics& metrics) {
  for (const ChannelWrite& w : writes) {
    MMN_REQUIRE(w.node < n_, "writer id out of range");
    // A re-write from an id already scheduled refreshes its payload (the
    // node re-keys its request); a new id waits for the next epoch so the
    // running traversal's contender set stays fixed.
    if (auto it = epoch_.find(w.node); it != epoch_.end()) {
      it->second = w.packet;
    } else {
      waiting_.insert_or_assign(w.node, w.packet);
    }
  }
  if (!resolver_ && !waiting_.empty()) {
    epoch_ = std::move(waiting_);
    waiting_.clear();
    resolver_.emplace(n_, std::nullopt);  // listener copy of the traversal
  }
  if (!resolver_) {
    return channel.resolve(metrics);  // no pending work: the slot idles
  }
  const auto probe = resolver_->probe();
  MMN_ASSERT(probe.has_value(), "live resolver must have a probe interval");
  for (auto it = epoch_.lower_bound(static_cast<NodeId>(probe->first));
       it != epoch_.end() && it->first < probe->second; ++it) {
    channel.write(it->first, it->second);
  }
  const SlotObservation obs = channel.resolve(metrics);
  resolver_->observe(obs);
  if (obs.success()) epoch_.erase(obs.writer);
  if (resolver_->done()) {
    MMN_ASSERT(epoch_.empty(), "traversal ended with unresolved contenders");
    resolver_.reset();
  }
  return obs;
}

void CapetanakisDiscipline::stifle(NodeId v) {
  // Mid-traversal removal is benign: the probe interval that held v now
  // reads one contender lighter (possibly idle) and the resolver follows
  // the channel feedback as always; the traversal still retires every
  // remaining contender.  std::map::erase frees, never allocates.
  epoch_.erase(v);
  waiting_.erase(v);
}

// ---- pseudo-Bayesian stabilized Aloha --------------------------------------

void PseudoBayesianDiscipline::stifle(NodeId v) {
  if (v < pending_.size() && pending_[v].has_value()) {
    pending_[v].reset();
    --backlog_;
  }
}

void PseudoBayesianDiscipline::reset(NodeId n) {
  MMN_REQUIRE(n >= 1, "stabilized Aloha needs at least one station");
  n_ = n;
  nu_ = 1.0;
  backlog_ = 0;
  pending_.assign(n, std::nullopt);
}

SlotObservation PseudoBayesianDiscipline::slot(
    std::span<const ChannelWrite> writes, Channel& channel, Metrics& metrics) {
  for (const ChannelWrite& w : writes) {
    MMN_REQUIRE(w.node < n_, "writer id out of range");
    if (!pending_[w.node]) ++backlog_;
    pending_[w.node] = w.packet;  // re-write replaces (head-of-line re-key)
  }
  // Each pending station transmits with probability min(1, 1/nu).  Ascending
  // node order, one draw per pending station: the draw sequence is a pure
  // function of the committed write sequence and past outcomes.
  const double p = nu_ <= 1.0 ? 1.0 : 1.0 / nu_;
  for (NodeId v = 0; v < n_; ++v) {
    if (pending_[v] && rng_.next_bernoulli(p)) {
      channel.write(v, *pending_[v]);
    }
  }
  const SlotObservation obs = channel.resolve(metrics);
  // Rivest's update, identical to channel/pseudo_bayesian.cpp: a collision
  // reveals >= 2 backlogged stations, an idle or success slot drains one
  // expected station from the estimate.
  if (obs.collision()) {
    nu_ += 1.0 / (std::exp(1.0) - 2.0);
  } else {
    nu_ = std::max(1.0, nu_ - 1.0);
  }
  if (obs.success()) {
    pending_[obs.writer].reset();
    --backlog_;
  }
  return obs;
}

// ---- reservation (multimedia MAC) ------------------------------------------

void ReservationDiscipline::reset(NodeId n) {
  MMN_REQUIRE(n >= 1, "reservation MAC needs at least one station");
  n_ = n;
  queue_.assign(n, kNoNode);
  queue_head_ = 0;
  queue_size_ = 0;
  queued_.assign(n, 0);
  pending_.assign(n, Packet{});
  nu_ = 1.0;
  data_backlog_ = 0;
  data_pending_.assign(n, std::nullopt);
}

SlotObservation ReservationDiscipline::slot(std::span<const ChannelWrite> writes,
                                            Channel& channel,
                                            Metrics& metrics) {
  // Pass 1 — classify.  Reserved classes (voice/video) file a grant request,
  // modeled as arriving over the collision-free reservation minislots; the
  // FIFO ring has capacity n because each station holds at most one grant
  // (the engines enforce one write per slot, and a queued station's
  // re-write only refreshes its pending payload — the head-of-line re-key,
  // same as TDMA/Capetanakis).  Data-class writes land as the data lane's
  // pending transmissions, also with replace semantics.
  for (const ChannelWrite& w : writes) {
    MMN_REQUIRE(w.node < n_, "writer id out of range");
    if (queued_[w.node]) {
      pending_[w.node] = w.packet;
    } else if (qos_of_tag(w.packet.type()) != QosClass::kData) {
      queued_[w.node] = 1;
      pending_[w.node] = w.packet;
      queue_[(queue_head_ + queue_size_) % queue_.size()] = w.node;
      ++queue_size_;
    } else {
      if (!data_pending_[w.node]) ++data_backlog_;
      data_pending_[w.node] = w.packet;
    }
  }
  // Pass 2 — resolve.  A non-empty queue owns the slot: the head station
  // transmits exclusively, collision-free by construction, and the data
  // lane neither transmits nor updates its estimate (it learns nothing
  // from a slot it was barred from).  Only queue-free slots fall through
  // to the data lane's pseudo-Bayesian lottery.
  if (queue_size_ > 0) {
    const NodeId v = queue_[queue_head_];
    queue_head_ = (queue_head_ + 1) % queue_.size();
    --queue_size_;
    queued_[v] = 0;
    channel.write(v, pending_[v]);
    return channel.resolve(metrics);
  }
  const double p = nu_ <= 1.0 ? 1.0 : 1.0 / nu_;
  for (NodeId v = 0; v < n_; ++v) {
    if (data_pending_[v] && rng_.next_bernoulli(p)) {
      channel.write(v, *data_pending_[v]);
    }
  }
  const SlotObservation obs = channel.resolve(metrics);
  if (obs.collision()) {
    nu_ += 1.0 / (std::exp(1.0) - 2.0);
  } else {
    nu_ = std::max(1.0, nu_ - 1.0);
  }
  if (obs.success()) {
    data_pending_[obs.writer].reset();
    --data_backlog_;
  }
  return obs;
}

void ReservationDiscipline::stifle(NodeId v) {
  if (v >= queued_.size()) return;
  if (queued_[v]) {
    // Compact v out of the FIFO ring in place, preserving grant order for
    // everyone else.  O(queue occupancy) and allocation-free — crashes are
    // rare slot-boundary events, not hot-path work.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < queue_size_; ++i) {
      const NodeId u = queue_[(queue_head_ + i) % queue_.size()];
      if (u == v) continue;
      queue_[(queue_head_ + kept) % queue_.size()] = u;
      ++kept;
    }
    queue_size_ = kept;
    queued_[v] = 0;
  }
  if (data_pending_[v].has_value()) {
    data_pending_[v].reset();
    --data_backlog_;
  }
}

// ---- unslotted busy-tone emulation -----------------------------------------

void UnslottedDiscipline::reset(NodeId n) {
  MMN_REQUIRE(n >= 1, "need at least one station");
  MMN_REQUIRE(config_.transmit_ticks >= 1, "transmissions need positive length");
  MMN_REQUIRE(config_.idle_gap_ticks >= 1, "idle gap must be positive");
  n_ = n;
  boundary_ = 0;
  rng_ = Rng(config_.seed);
}

SlotObservation UnslottedDiscipline::slot(std::span<const ChannelWrite> writes,
                                          Channel& channel, Metrics& metrics) {
  // The shared continuous-time envelope step (sim/unslotted.hpp): per-writer
  // reaction jitter, fixed transmission lengths, boundary one idle gap after
  // the last carrier drops.  Containment holds by construction — every
  // start lies strictly after the boundary, every end strictly before the
  // next.
  for (const ChannelWrite& w : writes) {
    MMN_REQUIRE(w.node < n_, "writer id out of range");
    channel.write(w.node, w.packet);
  }
  boundary_ = unslotted_envelope_step(boundary_, writes.size(), config_, rng_);
  metrics.channel_ticks = boundary_;  // boundary_ is the cumulative envelope
  // Listeners count carriers between the emergent boundaries; that derived
  // outcome equals the ideally slotted one (the Section 7.2 equivalence).
  return channel.resolve(metrics);
}

}  // namespace mmn::sim
