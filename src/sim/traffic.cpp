#include "sim/traffic.hpp"

#include <cmath>

namespace mmn::sim {

TrafficSource::TrafficSource(const TrafficConfig& config) : config_(config) {
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      MMN_REQUIRE(config_.rate >= 0.0 && config_.rate <= 32.0,
                  "Poisson rate out of the supported [0, 32] per-slot range");
      poisson_floor_ = std::exp(-config_.rate);
      break;
    case ArrivalKind::kOnOff:
      MMN_REQUIRE(config_.on_slots >= 1, "on-off cycle needs an ON prefix");
      MMN_REQUIRE(config_.burst >= 1, "on-off bursts must carry arrivals");
      phase_ = config_.phase %
               (std::uint64_t{config_.on_slots} + config_.off_slots);
      break;
    case ArrivalKind::kConstant:
      MMN_REQUIRE(config_.rate >= 0.0, "constant rate must be non-negative");
      break;
  }
}

std::uint32_t TrafficSource::arrivals(Rng& rng) {
  switch (config_.kind) {
    case ArrivalKind::kPoisson: {
      // Knuth inversion: multiply uniforms until the product drops below
      // exp(-rate).  The per-slot draw count varies, but every draw happens
      // inside the node's own handler on its own stream, so the consumption
      // pattern is a pure function of (seed, node, slot).
      std::uint32_t k = 0;
      double p = rng.next_double();
      while (p > poisson_floor_) {
        ++k;
        p *= rng.next_double();
      }
      return k;
    }
    case ArrivalKind::kOnOff: {
      // Deterministic periodic burst (the classic voice-activity on-off
      // model with a pinned duty cycle): `burst` arrivals on each of the
      // first on_slots of every cycle, silence for the off_slots after —
      // so the long-run rate is exactly burst * on / (on + off), which
      // tests/test_traffic.cpp pins without confidence intervals.
      const std::uint64_t cycle =
          std::uint64_t{config_.on_slots} + config_.off_slots;
      const bool on = phase_ < config_.on_slots;
      phase_ = (phase_ + 1) % cycle;
      return on ? config_.burst : 0;
    }
    case ArrivalKind::kConstant: {
      credit_ += config_.rate;
      const auto k = static_cast<std::uint32_t>(credit_);
      credit_ -= k;
      return k;
    }
  }
  MMN_REQUIRE(false, "unknown arrival kind");
  return 0;
}

void LatencyBlock::merge(const LatencyBlock& other) {
  for (std::size_t c = 0; c < kNumQosClasses; ++c) {
    for (std::size_t b = 0; b < kBuckets; ++b) hist[c][b] += other.hist[c][b];
    arrivals[c] += other.arrivals[c];
    delivered[c] += other.delivered[c];
    delay_sum[c] += other.delay_sum[c];
    delay_sq_sum[c] += other.delay_sq_sum[c];
  }
}

void LatencyRecorder::reset(unsigned shards) {
  blocks_.assign(shards, LatencyBlock{});
}

LatencyBlock LatencyRecorder::merged() const {
  LatencyBlock out;
  for (const LatencyBlock& b : blocks_) out.merge(b);
  return out;
}

std::uint64_t LatencyRecorder::quantile(
    const std::array<std::uint64_t, LatencyBlock::kBuckets>& hist,
    std::uint64_t total, double q) {
  if (total == 0) return 0;
  // The ceil(q * total)-th smallest sample, 1-based; clamp against the
  // rounding edge q ~ 1.0.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < LatencyBlock::kBuckets; ++b) {
    seen += hist[b];
    if (seen >= rank) return LatencyBlock::bucket_upper(b);
  }
  return LatencyBlock::bucket_upper(LatencyBlock::kBuckets - 1);
}

QosSummary LatencyRecorder::summary(QosClass cls) const {
  const LatencyBlock m = merged();
  const auto c = static_cast<std::size_t>(cls);
  QosSummary s;
  s.arrivals = m.arrivals[c];
  s.delivered = m.delivered[c];
  s.delay_sum = m.delay_sum[c];
  s.delay_sq_sum = m.delay_sq_sum[c];
  s.p50 = quantile(m.hist[c], m.delivered[c], 0.50);
  s.p90 = quantile(m.hist[c], m.delivered[c], 0.90);
  s.p99 = quantile(m.hist[c], m.delivered[c], 0.99);
  return s;
}

}  // namespace mmn::sim
