#include "sim/scheduler.hpp"

#include "support/check.hpp"

namespace mmn::sim {

void SerialScheduler::for_each_node(NodeId n, NodeFn fn) {
  for (NodeId v = 0; v < n; ++v) fn(0, v);
}

ParallelScheduler::ParallelScheduler(unsigned num_threads)
    : num_threads_(num_threads), errors_(num_threads) {
  MMN_REQUIRE(num_threads >= 1, "parallel scheduler needs >= 1 thread");
  pool_.reserve(num_threads_);
  for (unsigned s = 0; s < num_threads_; ++s) {
    pool_.emplace_back([this, s] { worker(s); });
  }
}

ParallelScheduler::~ParallelScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void ParallelScheduler::worker(unsigned shard) {
  std::uint64_t seen = 0;
  for (;;) {
    NodeFn fn{};
    NodeId n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      fn = round_fn_;
      n = round_n_;
    }
    const auto [first, last] = shard_range(n, shard, num_threads_);
    try {
      // The hottest dispatch in the simulator: one raw indirect call per
      // node, no std::function thunk between the scheduler and node code.
      for (NodeId v = first; v < last; ++v) fn(shard, v);
    } catch (...) {
      errors_[shard] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ParallelScheduler::for_each_node(NodeId n, NodeFn fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    round_fn_ = fn;
    round_n_ = n;
    remaining_ = num_threads_;
    ++generation_;
  }
  start_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
  }
  // Node code may throw (precondition violations are caller bugs surfaced as
  // std::invalid_argument); surface the lowest-shard failure like the serial
  // scheduler surfaces the first one.
  for (std::exception_ptr& err : errors_) {
    if (err) {
      std::exception_ptr first = err;
      for (std::exception_ptr& e : errors_) e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

std::unique_ptr<Scheduler> make_scheduler(unsigned threads) {
  if (threads <= 1) return std::make_unique<SerialScheduler>();
  return std::make_unique<ParallelScheduler>(threads);
}

}  // namespace mmn::sim
