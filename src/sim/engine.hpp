// Synchronous multimedia-network engine.
//
// Executes one Process per node in lockstep rounds (Section 2):
//   * point-to-point messages sent in round r are delivered in round r + 1
//     (message delay = 1 time unit, one message per link direction per round);
//   * the channel slot of round r is observed by every node in round r + 1
//     (slot length = 1 time unit).
// Each process sees only its local view — its id, its incident links, n, and
// whatever arrives over the two media.  Every run is deterministic given the
// seed; per-node RNG streams are forked from it.
//
// NodeContext is an interface so the same Process can also run on the
// asynchronous engine underneath the busy-tone synchronizer of Section 7.1
// (see core/synchronizer.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "sim/channel.hpp"
#include "sim/message.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

/// One incident link as known locally by a node.
struct Neighbor {
  NodeId id = kNoNode;  ///< the node on the other end
  EdgeId edge = kNoEdge;
  Weight weight = 0;
};

/// A node's a-priori knowledge: its id, its links sorted by ascending weight,
/// and the network size n (assumed known, Section 2; Section 7.3/7.4 shows
/// how to compute/estimate it — see core/size.hpp).
struct LocalView {
  NodeId self = kNoNode;
  NodeId n = 0;
  std::vector<Neighbor> links;  ///< ascending weight

  /// Index into `links` of the given edge, or -1.
  int link_index(EdgeId edge) const {
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i].edge == edge) return static_cast<int>(i);
    }
    return -1;
  }
};

/// A point-to-point message as received.
struct Received {
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  Packet packet;
};

/// Per-round API handed to a Process.  All sends happen "this round" and are
/// delivered next round; at most one channel write per round.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  virtual std::uint64_t round() const = 0;
  virtual const LocalView& view() const = 0;
  virtual Rng& rng() = 0;

  /// Messages delivered this round.
  virtual const std::vector<Received>& inbox() const = 0;

  /// The outcome of the previous round's channel slot.
  virtual const SlotObservation& slot() const = 0;

  /// Sends a packet over one of this node's incident links.
  virtual void send(EdgeId edge, const Packet& packet) = 0;

  /// Writes to the channel slot of the current round (at most once).
  virtual void channel_write(const Packet& packet) = 0;

  /// True if this node already wrote to the channel this round.
  virtual bool wrote_channel() const = 0;

  /// True if this node sent at least one point-to-point message this round.
  virtual bool sent_message() const = 0;

  NodeId self() const { return view().self; }
};

/// A node program.  round() is invoked exactly once per simulated round.
class Process {
 public:
  virtual ~Process() = default;

  virtual void round(NodeContext& ctx) = 0;

  /// The engine stops once every process reports finished.
  virtual bool finished() const = 0;
};

using ProcessFactory = std::function<std::unique_ptr<Process>(const LocalView&)>;

class Engine {
 public:
  /// Builds the network: one process per node of g.
  Engine(const Graph& g, const ProcessFactory& factory, std::uint64_t seed);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs until every process is finished; aborts if max_rounds elapse first
  /// (a liveness failure in the protocol under test).
  Metrics run(std::uint64_t max_rounds);

  /// Runs at most `rounds` additional rounds; returns true if all finished.
  bool step(std::uint64_t rounds);

  const Metrics& metrics() const { return metrics_; }

  Process& process(NodeId v);
  const Process& process(NodeId v) const;
  NodeId num_nodes() const { return static_cast<NodeId>(processes_.size()); }

 private:
  class Context;
  bool all_finished() const;
  void run_one_round();

  std::vector<LocalView> views_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> rngs_;
  std::vector<std::vector<Received>> inbox_;       // delivered this round
  std::vector<std::vector<Received>> next_inbox_;  // being filled for next
  Channel channel_;
  SlotObservation slot_;  // outcome of the previous round's slot
  Metrics metrics_;
  std::uint64_t round_ = 0;
};

/// Convenience: builds the engine, runs to completion, returns metrics.
Metrics run_network(const Graph& g, const ProcessFactory& factory,
                    std::uint64_t seed, std::uint64_t max_rounds);

}  // namespace mmn::sim
