// Synchronous multimedia-network engine.
//
// Executes one Process per node in lockstep rounds (Section 2):
//   * point-to-point messages sent in round r are delivered in round r + 1
//     (message delay = 1 time unit, one message per link direction per round);
//   * the channel slot of round r is observed by every node in round r + 1
//     (slot length = 1 time unit).
// Each process sees only its local view — its id, its incident links, n, and
// whatever arrives over the two media.  Every run is deterministic given the
// seed; per-node RNG streams are forked from it.
//
// The engine is a thin stepping policy over sim::RuntimeCore, which owns the
// substrate (views, RNGs, channel, metrics, flat message arena); see
// sim/runtime_core.hpp.  Node execution within a round is delegated to a
// Scheduler — serial by default, or an std::thread pool that shards the node
// set; both produce bit-identical results for the same seed
// (sim/scheduler.hpp).  Termination is detected incrementally and batched
// per shard: each shard keeps an outstanding (not-yet-finished) counter on
// its own cache line, a node's finished() probe only touches that counter
// on a transition, and the engine sums the handful of shard counters after
// the barrier — no per-node delta staging, no O(n) scan.
//
// The per-node hot path is devirtualized end to end: the scheduler reaches
// node_round through a raw function pointer, and NodeContext is a concrete
// final class (sim/runtime_core.hpp) staging effects straight into the
// shard buffer — the only virtual call per node per round is Process::round
// itself.  The same Process still runs on the asynchronous engine
// underneath the busy-tone synchronizer of Section 7.1, which feeds
// NodeContext through its sink hooks (see core/synchronizer.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "sim/runtime_core.hpp"
#include "support/metrics.hpp"

namespace mmn::sim {

class FaultPlan;
class FaultRuntime;

class Engine {
 public:
  /// Builds the network: one process per node of g.  `g` must outlive the
  /// engine — node views are zero-copy windows into its adjacency arena.
  /// The default scheduler
  /// is serial; pass make_scheduler(threads) to shard rounds over a pool.
  /// A null discipline is the free-for-all channel (the seed behavior);
  /// pass make_discipline(kind) to run the workload under TDMA, Capetanakis
  /// tree scheduling, or the unslotted busy-tone emulation
  /// (sim/channel_discipline.hpp).
  Engine(const Graph& g, const ProcessFactory& factory, std::uint64_t seed);
  Engine(const Graph& g, const ProcessFactory& factory, std::uint64_t seed,
         std::unique_ptr<Scheduler> scheduler,
         std::unique_ptr<ChannelDiscipline> discipline = nullptr);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs until every process is finished and the channel is idle (no write
  /// staged, nothing deferred inside the discipline), or until max_rounds
  /// elapse — then status() reports kSlotCapReached instead of aborting,
  /// the same non-aborting surface AsyncEngine has had since PR 2.  The
  /// returned metrics are well-formed either way.
  Metrics run(std::uint64_t max_rounds);

  /// Runs at most `rounds` additional rounds; returns true if all finished
  /// and the channel is idle.
  bool step(std::uint64_t rounds);

  /// Outcome of the last run()/step() call (kRunning after a step() that
  /// ran out of rounds; run() maps that to kSlotCapReached).
  RunStatus status() const { return status_; }

  /// Installs deterministic fault injection (sim/fault.hpp).  Must be
  /// called before the first round; the plan's events apply at slot
  /// boundaries, before the round's node phase.  One installation per
  /// engine — recovery flows build a fresh engine on the compacted graph.
  void install_faults(const FaultPlan& plan);

  /// The installed fault runtime (stats + overlay), or null.
  const FaultRuntime* faults() const { return faults_.get(); }
  FaultRuntime* faults() { return faults_.get(); }

  const Metrics& metrics() const { return core_.metrics(); }

  /// Per-class delay/backlog accounting of open-loop workloads
  /// (sim/traffic.hpp); untouched by closed-loop protocols.
  const LatencyRecorder& latency() const { return core_.latency(); }

  /// Direct access to a node's process (for reading results and tests).
  /// Mutating a process so that finished() changes outside of round() breaks
  /// the engine's incrementally maintained finished count — finished() must
  /// only change inside round() calls.
  Process& process(NodeId v);
  const Process& process(NodeId v) const;
  NodeId num_nodes() const { return core_.num_nodes(); }

 private:
  bool all_finished() const;
  void node_round(unsigned shard, NodeId v);
  void run_one_round();

  RuntimeCore core_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unique_ptr<FaultRuntime> faults_;  // null on the fault-free fast path
  RunStatus status_ = RunStatus::kRunning;
  std::vector<char> finished_flag_;  // per node; char: shard-safe writes
  /// Per-shard count of unfinished nodes in the shard's static node range.
  /// Written only by the shard's own worker (cache-line aligned), summed by
  /// the driver after the barrier — the batched finished() probe.
  std::vector<ShardOutstanding> outstanding_;
};

/// Convenience: builds the engine, runs to completion, returns metrics.
Metrics run_network(const Graph& g, const ProcessFactory& factory,
                    std::uint64_t seed, std::uint64_t max_rounds);

/// As above, under the given scheduler.
Metrics run_network(const Graph& g, const ProcessFactory& factory,
                    std::uint64_t seed, std::uint64_t max_rounds,
                    std::unique_ptr<Scheduler> scheduler);

}  // namespace mmn::sim
