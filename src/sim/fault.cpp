#include "sim/fault.hpp"

#include <algorithm>
#include <numeric>

#include "sim/channel_discipline.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

namespace {

constexpr std::uint64_t kFaultStream = 0xFA'17'5EEDULL;

/// Is the graph still connected when `dead` links (plus `exclude`) are
/// removed?  Plain BFS over the adjacency arena; plan construction is the
/// only caller, so O(n + m) per probe is fine.
bool connected_without(const Graph& g, const std::vector<char>& dead,
                       EdgeId exclude) {
  const NodeId n = g.num_nodes();
  if (n <= 1) return true;
  std::vector<char> seen(n, 0);
  std::vector<NodeId> frontier;
  frontier.reserve(n);
  frontier.push_back(0);
  seen[0] = 1;
  NodeId reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (const Neighbor& nb : g.neighbors(u)) {
      if (nb.edge == exclude || dead[nb.edge] != 0 || seen[nb.to] != 0) {
        continue;
      }
      seen[nb.to] = 1;
      ++reached;
      frontier.push_back(nb.to);
    }
  }
  return reached == n;
}

}  // namespace

std::uint64_t FaultStats::digest_word() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t word) {
    h = (h ^ word) * 0x100000001b3ULL;
  };
  mix(link_downs);
  mix(link_ups);
  mix(node_crashes);
  mix(node_recoveries);
  mix(links_down);
  mix(nodes_down);
  mix(drops);
  mix(orphaned_pkts);
  mix(recovery_slots);
  return h;
}

void FaultPlan::add_outage_windows(EdgeId link, std::uint64_t first_down,
                                   std::uint64_t down_slots,
                                   std::uint64_t up_slots,
                                   std::uint64_t horizon) {
  MMN_REQUIRE(down_slots > 0 && up_slots > 0,
              "outage windows need positive down/up durations");
  for (std::uint64_t s = first_down; s < horizon;
       s += down_slots + up_slots) {
    add({s, FaultKind::kLinkDown, link});
    if (s + down_slots < horizon) {
      add({s + down_slots, FaultKind::kLinkUp, link});
    }
  }
}

FaultPlan FaultPlan::link_kills(const Graph& g, std::uint32_t k,
                                std::uint64_t slot, std::uint64_t seed) {
  FaultPlan plan;
  if (k == 0) return plan;
  Rng root(seed);
  Rng rng = root.fork(kFaultStream);
  std::vector<EdgeId> perm(g.num_edges());
  std::iota(perm.begin(), perm.end(), EdgeId{0});
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  std::vector<char> dead(g.num_edges(), 0);
  std::uint32_t killed = 0;
  for (const EdgeId e : perm) {
    if (killed == k) break;
    if (!connected_without(g, dead, e)) continue;  // bridge — keep it
    dead[e] = 1;
    plan.add({slot, FaultKind::kLinkDown, e});
    ++killed;
  }
  MMN_REQUIRE(killed == k,
              "link_kills: graph has too few removable (non-bridge) edges");
  return plan;
}

FaultPlan FaultPlan::link_churn(const Graph& g, double rate,
                                std::uint64_t horizon, std::uint64_t seed) {
  FaultPlan plan;
  Rng root(seed);
  Rng rng = root.fork(kFaultStream);
  std::vector<char> dead(g.num_edges(), 0);
  std::vector<EdgeId> dead_list;
  for (std::uint64_t s = 1; s < horizon; ++s) {
    if (!rng.next_bernoulli(rate)) continue;
    const bool revive = !dead_list.empty() && rng.next_bernoulli(0.5);
    if (revive) {
      const std::size_t i = rng.next_below(dead_list.size());
      const EdgeId e = dead_list[i];
      dead_list[i] = dead_list.back();
      dead_list.pop_back();
      dead[e] = 0;
      plan.add({s, FaultKind::kLinkUp, e});
      continue;
    }
    // A kill draws a handful of candidates and takes the first whose
    // removal keeps the surviving graph connected; on a sparse graph every
    // candidate may be a bridge and the hit fizzles — that is fine, the
    // draw count stays schedule-independent either way.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
      if (dead[e] != 0) continue;
      if (!connected_without(g, dead, e)) continue;
      dead[e] = 1;
      dead_list.push_back(e);
      plan.add({s, FaultKind::kLinkDown, e});
      break;
    }
  }
  return plan;
}

FaultPlan FaultPlan::node_churn(const Graph& g, double rate,
                                std::uint64_t down_slots,
                                std::uint64_t horizon, std::uint64_t seed) {
  MMN_REQUIRE(down_slots > 0, "node_churn: crashes need a positive duration");
  FaultPlan plan;
  Rng root(seed);
  Rng rng = root.fork(kFaultStream + 1);
  const NodeId n = g.num_nodes();
  std::vector<std::uint64_t> down_until(n, 0);
  std::uint32_t down_now = 0;
  const std::uint32_t max_down = std::max<std::uint32_t>(1, n / 8);
  for (std::uint64_t s = 1; s < horizon; ++s) {
    // Recoveries fire before new crashes so the down budget frees up.
    for (NodeId v = 0; v < n; ++v) {
      if (down_until[v] != 0 && down_until[v] == s) {
        down_until[v] = 0;
        --down_now;
      }
    }
    if (!rng.next_bernoulli(rate)) continue;
    if (down_now >= max_down) continue;
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (down_until[v] != 0) continue;  // already down
    down_until[v] = s + down_slots;
    ++down_now;
    plan.add({s, FaultKind::kNodeCrash, v});
    plan.add({s + down_slots, FaultKind::kNodeRecover, v});
  }
  return plan;
}

void FaultPlan::merge(const FaultPlan& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

std::uint64_t FaultPlan::first_fault_slot() const {
  std::uint64_t first = ~std::uint64_t{0};
  for (const FaultEvent& e : events_) first = std::min(first, e.slot);
  return first;
}

FaultRuntime::FaultRuntime(const Graph& g, const FaultPlan& plan)
    : overlay_(g),
      events_(plan.events().begin(), plan.events().end()) {
  // Stable sort: events filed for the same slot apply in plan order, which
  // is itself deterministic, so the replay is schedule-independent.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.slot < b.slot;
                   });
}

void FaultRuntime::apply_slot(std::uint64_t slot,
                              ChannelDiscipline& discipline) {
  while (cursor_ < events_.size() && events_[cursor_].slot <= slot) {
    const FaultEvent& e = events_[cursor_++];
    switch (e.kind) {
      case FaultKind::kLinkDown:
        if (overlay_.link_alive(e.id)) {
          overlay_.kill_link(e.id);
          ++stats_.link_downs;
        }
        break;
      case FaultKind::kLinkUp:
        if (!overlay_.link_alive(e.id)) {
          overlay_.revive_link(e.id);
          ++stats_.link_ups;
        }
        break;
      case FaultKind::kNodeCrash:
        if (overlay_.node_alive(e.id)) {
          overlay_.crash_node(e.id);
          ++stats_.node_crashes;
          discipline.stifle(e.id);
        }
        break;
      case FaultKind::kNodeRecover:
        if (!overlay_.node_alive(e.id)) {
          overlay_.recover_node(e.id);
          ++stats_.node_recoveries;
        }
        break;
    }
  }
  stats_.links_down = overlay_.links_down();
  stats_.nodes_down = overlay_.nodes_down();
}

}  // namespace mmn::sim
