#include "sim/message.hpp"

// Packet is header-only; this translation unit anchors the library target.
