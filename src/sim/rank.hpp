// Sharded synchronous execution: one rank per OS process, each stepping a
// contiguous node window of the topology through the slot-phase round loop.
//
// Ownership model ("replicated channel, sharded nodes"): rank r of K owns
// the window Scheduler::shard_range(n, r, K) of a windowed CSR arena
// (graph/generators.hpp, build_topology_window) — views, RNG streams,
// processes, and the delivery arena exist only for owned nodes.  The
// multi-access channel is NOT sharded: every rank holds a replica of the
// channel and its discipline, feeds it the identical rank-major merged
// write list each slot, and so resolves every slot to the identical
// observation without a coordinator — disciplines are deterministic
// functions of the committed write sequence and the seed
// (sim/channel_discipline.hpp).
//
// Per round, each pair of ranks swaps one batched blob (shard_comm.hpp):
//   * the cross-shard MsgHeaders owned-sender -> peer-owned-destination,
//     with their pooled payloads (consecutive-equal-ref broadcast runs ship
//     one payload, the interning of PR 6 carried onto the wire);
//   * the rank's channel writes (replicated to every peer);
//   * the rank's outstanding (not-yet-finished) node count.
// Each rank then merges: ingress buffers indexed by source rank feed one
// MessageArena::flip — ascending rank order concatenates to exactly the
// ascending-node serial send order, so the stable counting sort delivers
// bit-identical inboxes (the PR 1 determinism proof, extended across the
// wire); channel writes merge rank-major into the replicated discipline;
// outstanding counts sum into the same global termination predicate
// Engine::step evaluates, checked before each round on every rank — all
// ranks stop on the same round with no extra handshake.
//
// Fault plans replay identically on every rank (they are plan-time-drawn
// from the full graph — sim/fault.hpp), so overlay state and discipline
// stifles stay replicated under --faults churn too.  Scope: the synchronous
// Engine loop only; AsyncEngine ranks would stamp (tick, seq) across the
// same Transport seam and are future work.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "sim/channel.hpp"
#include "sim/channel_discipline.hpp"
#include "sim/runtime_core.hpp"
#include "sim/shard_comm.hpp"
#include "support/metrics.hpp"

namespace mmn::sim {

class FaultPlan;
class FaultRuntime;

/// This rank's slice of the node set: shard_range(n, rank, ranks).
struct RankSpec {
  unsigned rank = 0;
  unsigned ranks = 1;
  NodeId lo = 0;
  NodeId hi = 0;
};

/// The synchronous Engine's stepping policy over one node window, with the
/// cross-window seams routed through a Transport.  Mirrors Engine's
/// surface: step/run semantics, install_faults, process access (global node
/// ids, owned window only).
class RankEngine {
 public:
  /// `g` must be a windowed (or full, for ranks == 1) build of the topology
  /// whose owned rows cover [spec.lo, spec.hi); it must outlive the engine.
  /// `factory` sees owned views only.  The discipline must be constructed
  /// identically on every rank (same kind, same seed).
  RankEngine(const Graph& g, const RankSpec& spec,
             const ProcessFactory& factory, std::uint64_t seed,
             shard_comm::Transport& transport,
             std::unique_ptr<ChannelDiscipline> discipline);
  ~RankEngine();

  RankEngine(const RankEngine&) = delete;
  RankEngine& operator=(const RankEngine&) = delete;

  /// Engine::install_faults, replicated: every rank replays the full plan,
  /// so overlay liveness and discipline stifles agree everywhere.  Must be
  /// called before the first round, with the identical plan on every rank.
  void install_faults(const FaultPlan& plan);

  /// Engine::step over the window: runs at most `rounds` additional rounds;
  /// true when every node of every rank finished and the replicated channel
  /// is idle.  All ranks must call with the same budget (they exchange
  /// every round and decide termination on identical global state).
  bool step(std::uint64_t rounds);

  RunStatus status() const { return status_; }

  /// This rank's metrics: slot/round counters are exact replicas of the
  /// serial run's; p2p_messages counts only sends by owned nodes (sum over
  /// ranks to compare with a serial run).
  const Metrics& metrics() const { return metrics_; }

  const FaultRuntime* faults() const { return faults_.get(); }
  FaultRuntime* faults() { return faults_.get(); }

  /// Owned process, by GLOBAL node id.
  Process& process(NodeId v);
  const Process& process(NodeId v) const;

  const RankSpec& spec() const { return spec_; }
  NodeId num_owned() const { return spec_.hi - spec_.lo; }

  /// Cross-shard messages this rank sent to peers (headers on the wire).
  std::uint64_t xshard_msgs() const { return xshard_msgs_; }
  /// Edges with exactly one endpoint in the window — the frontier the
  /// cross-shard traffic rides; bench_shard_comm's bytes denominator.
  std::uint64_t boundary_edges() const { return boundary_edges_; }

 private:
  void node_round(NodeId local);
  void run_one_round();
  unsigned owner_of(NodeId v) const;
  void partition_outbox();
  void exchange_round();
  bool all_finished() const {
    return global_outstanding_ == 0;
  }
  bool channel_idle() const {
    return slot_writes_.empty() && discipline_->backlog() == 0;
  }

  const Graph* graph_;
  RankSpec spec_;
  std::vector<NodeId> bounds_;  ///< ranks + 1 window bounds, owner lookup
  shard_comm::Transport* transport_;
  std::unique_ptr<ChannelDiscipline> discipline_;
  Channel channel_;

  std::vector<LocalView> views_;  ///< owned nodes only, index = v - lo
  std::vector<Rng> rngs_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<char> finished_flag_;
  std::int64_t local_outstanding_ = 0;
  std::int64_t global_outstanding_ = 0;

  ShardBuffer staging_;  ///< the round's node effects, pre-partition
  LatencyRecorder latency_;
  /// Ingress buffers, one per source rank; flip() concatenates them in
  /// ascending rank order = ascending sender order = the serial send order.
  std::vector<ShardBuffer> ingress_;
  MessageArena arena_;  ///< window-sized: inbox(v - lo)

  std::vector<ChannelWrite> slot_writes_;  ///< rank-major merged, per slot
  SlotObservation slot_;
  Metrics metrics_;
  std::unique_ptr<FaultRuntime> faults_;
  RunStatus status_ = RunStatus::kRunning;
  std::uint64_t round_ = 0;

  /// Per-peer wire scratch, all held at high-water capacity.
  std::vector<std::vector<MsgHeader>> out_headers_;   ///< per dst rank
  std::vector<std::vector<std::uint8_t>> out_payload_;  ///< per dst rank
  std::vector<std::uint8_t> out_blob_;
  std::vector<std::uint8_t> in_blob_;
  std::vector<std::vector<ChannelWrite>> peer_writes_;  ///< per src rank
  std::vector<std::int64_t> peer_outstanding_;

  std::uint64_t xshard_msgs_ = 0;
  std::uint64_t boundary_edges_ = 0;
};

}  // namespace mmn::sim
