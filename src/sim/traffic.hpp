// Open-loop traffic generation and per-class latency accounting.
//
// Everything the repo ran before this header was closed-loop: a protocol
// starts, contends, terminates.  The multimedia MAC literature the paper
// feeds into (PAPERS.md) evaluates the opposite regime — an open-loop
// arrival process pushes packets at the stations regardless of how the
// channel is doing, and the discipline is judged by its throughput-vs-load
// and delay-vs-load curves.  Two pieces live here:
//
//   * TrafficSource — a deterministic per-node arrival process (Poisson,
//     periodic on-off bursts, or a constant-rate credit stream).  Every
//     random draw comes from the node's OWN forked RNG stream inside its
//     round handler, i.e. shard-owned and slot-aligned, so the
//     scheduler-equivalence argument (ARCHITECTURE.md) covers open-loop
//     runs unchanged: serial and parallel sweeps are bit-identical.
//
//   * LatencyRecorder — per-shard, cache-line-aligned log2-bucket delay
//     histograms plus arrival/delivery counters, one block per scheduler
//     shard, owned by RuntimeCore.  record() is two array increments and
//     an add into the recording node's shard block (no atomics — shards
//     are exclusive to their worker), and the blocks are sized once at
//     reset, so a warmed-up open-loop round allocates nothing
//     (tests/test_alloc.cpp pins this).  Reads merge the blocks
//     shard-major — addition is commutative, so the merged histogram is
//     the multiset of samples regardless of how nodes were sharded — and
//     report per-class p50/p90/p99 delay, backlog, and goodput.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

enum class ArrivalKind : std::uint8_t {
  kPoisson,   ///< iid Poisson(rate) arrivals per slot
  kOnOff,     ///< periodic bursts: `burst` arrivals per ON slot, silence OFF
  kConstant,  ///< deterministic credit stream at exactly `rate` per slot
};

struct TrafficConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean arrivals per slot (Poisson, Constant).  Ignored by kOnOff, whose
  /// rate is burst * on_slots / (on_slots + off_slots) by construction.
  double rate = 0.5;
  std::uint32_t on_slots = 8;    ///< kOnOff: ON prefix of each cycle
  std::uint32_t off_slots = 24;  ///< kOnOff: silent suffix of each cycle
  std::uint32_t burst = 1;       ///< kOnOff: arrivals per ON slot
  std::uint64_t phase = 0;       ///< kOnOff: cycle position at slot 0
};

/// One node's arrival process.  arrivals() is called exactly once per slot,
/// in the node's own round handler; the draw order is therefore a pure
/// function of (seed, node, slot) and independent of the scheduler.
class TrafficSource {
 public:
  explicit TrafficSource(const TrafficConfig& config);

  /// Arrivals materializing this slot.  Advances the process by one slot.
  std::uint32_t arrivals(Rng& rng);

  const TrafficConfig& config() const { return config_; }

 private:
  TrafficConfig config_;
  double poisson_floor_ = 0.0;  ///< exp(-rate), precomputed
  double credit_ = 0.0;         ///< kConstant accumulator
  std::uint64_t phase_ = 0;     ///< kOnOff cycle position
};

/// Fixed-size log2 delay histogram block for one scheduler shard, plus the
/// per-class arrival/delivery counters the backlog and goodput reports
/// derive from.  64-byte aligned: adjacent shards' blocks are written by
/// different workers on the delivery hot path.
struct alignas(64) LatencyBlock {
  /// Bucket b holds delays d with std::bit_width(d) == b: bucket 0 is the
  /// same-slot delivery (d = 0), bucket b >= 1 covers [2^(b-1), 2^b - 1].
  static constexpr std::size_t kBuckets = 40;  // delays up to 2^39 slots

  std::array<std::array<std::uint64_t, kBuckets>, kNumQosClasses> hist{};
  std::array<std::uint64_t, kNumQosClasses> arrivals{};
  std::array<std::uint64_t, kNumQosClasses> delivered{};
  std::array<std::uint64_t, kNumQosClasses> delay_sum{};
  /// Sum of squared delays, for the jitter (delay standard deviation)
  /// report.  Headroom: delays are slot counts bounded by the run horizon
  /// (< 2^32 in any configured run), so each square fits 2^64 with > 2^31
  /// samples of margin before overflow.
  std::array<std::uint64_t, kNumQosClasses> delay_sq_sum{};

  static std::size_t bucket_of(std::uint64_t delay_slots) {
    const auto b = static_cast<std::size_t>(std::bit_width(delay_slots));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Inclusive upper delay bound of a bucket (what the quantile reports).
  static std::uint64_t bucket_upper(std::size_t bucket) {
    return bucket == 0 ? 0 : (std::uint64_t{1} << bucket) - 1;
  }

  void note_arrivals(QosClass cls, std::uint64_t count) {
    arrivals[static_cast<std::size_t>(cls)] += count;
  }

  void record(QosClass cls, std::uint64_t delay_slots) {
    const auto c = static_cast<std::size_t>(cls);
    ++hist[c][bucket_of(delay_slots)];
    ++delivered[c];
    delay_sum[c] += delay_slots;
    delay_sq_sum[c] += delay_slots * delay_slots;
  }

  /// Shard-major fold: accumulates `other` into this block.
  void merge(const LatencyBlock& other);
};

/// Per-class steady-state report, derived from the merged histogram.
struct QosSummary {
  std::uint64_t arrivals = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delay_sum = 0;
  std::uint64_t delay_sq_sum = 0;
  std::uint64_t p50 = 0;  ///< log2-bucket upper bounds, in slots
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;

  std::uint64_t backlog() const { return arrivals - delivered; }
  double mean_delay() const {
    return delivered == 0
               ? 0.0
               : static_cast<double>(delay_sum) / static_cast<double>(delivered);
  }
  /// Inter-delivery delay variation: the standard deviation of the delay
  /// samples, sqrt(E[d^2] - E[d]^2), in slots.  Reported next to the
  /// percentiles — voice-class jitter is the QoS figure the percentile
  /// tail alone cannot show (a tight p99 can still wobble inside it).
  /// The difference is clamped at 0 against floating-point cancellation.
  double jitter() const {
    if (delivered == 0) return 0.0;
    const double mean = mean_delay();
    const double mean_sq = static_cast<double>(delay_sq_sum) /
                           static_cast<double>(delivered);
    const double var = mean_sq - mean * mean;
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }
  /// Delivered packets per slot — the per-class goodput of the run.
  double goodput(std::uint64_t slots) const {
    return slots == 0
               ? 0.0
               : static_cast<double>(delivered) / static_cast<double>(slots);
  }
};

/// The RuntimeCore-owned recorder: one LatencyBlock per scheduler shard,
/// sized once at reset (zero steady-state allocation); NodeContext /
/// AsyncContext route record_latency() into the acting node's shard block.
class LatencyRecorder {
 public:
  /// Sizes one block per shard.  Called from RuntimeCore's constructor.
  void reset(unsigned shards);

  LatencyBlock& block(unsigned shard) { return blocks_[shard]; }
  unsigned shards() const { return static_cast<unsigned>(blocks_.size()); }

  /// All shard blocks folded in ascending shard order.  Addition commutes,
  /// so the merged block is scheduler-independent even though each sample
  /// lands in the recording node's shard.
  LatencyBlock merged() const;

  /// Per-class percentiles/backlog/goodput inputs from the merged blocks.
  QosSummary summary(QosClass cls) const;

  /// Quantile over a merged class histogram: the upper delay bound of the
  /// bucket holding the ceil(q * delivered)-th smallest sample.
  static std::uint64_t quantile(
      const std::array<std::uint64_t, LatencyBlock::kBuckets>& hist,
      std::uint64_t total, double q);

 private:
  std::vector<LatencyBlock> blocks_;
};

}  // namespace mmn::sim
