#include "sim/rank.hpp"

#include <cstring>
#include <utility>

#include "sim/fault.hpp"
#include "support/check.hpp"

namespace mmn::sim {
namespace {

constexpr PacketRef kNoRef = static_cast<PacketRef>(-1);

void append_bytes(std::vector<std::uint8_t>& blob, const void* data,
                  std::size_t bytes) {
  if (bytes == 0) return;  // data() of an empty vector may be null
  const std::size_t old = blob.size();
  blob.resize(old + bytes);
  std::memcpy(blob.data() + old, data, bytes);
}

void append_u64(std::vector<std::uint8_t>& blob, std::uint64_t x) {
  append_bytes(blob, &x, sizeof(x));
}

/// Bounds-checked cursor over a received blob; every read is validated so a
/// torn or hostile frame trips MMN_REQUIRE instead of reading wild memory.
struct BlobReader {
  const std::uint8_t* p;
  std::size_t size;
  std::size_t cur = 0;

  void read(void* out, std::size_t bytes) {
    MMN_REQUIRE(cur + bytes <= size, "rank exchange blob truncated");
    std::memcpy(out, p + cur, bytes);
    cur += bytes;
  }

  std::uint64_t read_u64() {
    std::uint64_t x;
    read(&x, sizeof(x));
    return x;
  }

  /// Parses one live-prefix Packet (the first word carries the size field,
  /// so the wire length is self-describing).  The void* casts opt into the
  /// same partial-object copy the staging pools do (stale tail never read).
  void read_packet(Packet& out) {
    MMN_REQUIRE(cur + sizeof(std::uint64_t) <= size,
                "rank exchange blob truncated");
    std::memcpy(static_cast<void*>(&out), p + cur, sizeof(std::uint64_t));
    const std::size_t live = out.live_bytes();
    MMN_REQUIRE(live <= sizeof(Packet) && cur + live <= size,
                "rank exchange packet overruns its blob");
    std::memcpy(static_cast<void*>(&out), p + cur, live);
    cur += live;
  }
};

}  // namespace

RankEngine::RankEngine(const Graph& g, const RankSpec& spec,
                       const ProcessFactory& factory, std::uint64_t seed,
                       shard_comm::Transport& transport,
                       std::unique_ptr<ChannelDiscipline> discipline)
    : graph_(&g),
      spec_(spec),
      transport_(&transport),
      discipline_(std::move(discipline)) {
  MMN_REQUIRE(discipline_ != nullptr, "RankEngine needs an explicit discipline");
  MMN_REQUIRE(spec_.ranks >= 1 && spec_.rank < spec_.ranks,
              "rank out of range");
  const NodeId n = g.num_nodes();
  const auto [lo, hi] = Scheduler::shard_range(n, spec_.rank, spec_.ranks);
  MMN_REQUIRE(lo == spec_.lo && hi == spec_.hi,
              "RankSpec window must equal shard_range(n, rank, ranks)");
  MMN_REQUIRE(transport_->rank() == spec_.rank &&
                  transport_->ranks() == spec_.ranks,
              "transport and RankSpec disagree");
  bounds_.resize(spec_.ranks + 1);
  for (unsigned r = 0; r < spec_.ranks; ++r) {
    bounds_[r] = Scheduler::shard_range(n, r, spec_.ranks).first;
  }
  bounds_[spec_.ranks] = n;

  const NodeId w = spec_.hi - spec_.lo;
  views_.resize(w);
  rngs_.reserve(w);
  processes_.reserve(w);
  finished_flag_.reserve(w);
  // The per-node streams are forked from the same root on every rank
  // (Rng::fork is pure), so owned nodes draw exactly the serial run's
  // sequences without replaying unowned forks.
  const Rng root(seed);
  for (NodeId v = spec_.lo; v < spec_.hi; ++v) {
    views_[v - spec_.lo] = LocalView{v, n, &g};
    rngs_.push_back(root.fork(v));
  }
  for (NodeId i = 0; i < w; ++i) {
    processes_.push_back(factory(views_[i]));
    MMN_REQUIRE(processes_.back() != nullptr, "factory returned null process");
    const char done = processes_.back()->finished() ? 1 : 0;
    finished_flag_.push_back(done);
    local_outstanding_ += done ? 0 : 1;
  }

  latency_.reset(1);
  staging_.latency = &latency_.block(0);
  ingress_.resize(spec_.ranks);
  arena_.reset(w, spec_.ranks);
  discipline_->reset(n);  // the replicated channel spans ALL n nodes

  out_headers_.resize(spec_.ranks);
  out_payload_.resize(spec_.ranks);
  peer_writes_.resize(spec_.ranks);
  peer_outstanding_.assign(spec_.ranks, 0);

  for (NodeId v = spec_.lo; v < spec_.hi; ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      if (nb.to < spec_.lo || nb.to >= spec_.hi) ++boundary_edges_;
    }
  }

  // Outstanding counts are part of the termination predicate checked BEFORE
  // the first round, so they are exchanged once up front (and then
  // piggybacked on every round's blob).
  global_outstanding_ = local_outstanding_;
  for (unsigned peer = 0; peer < spec_.ranks; ++peer) {
    if (peer == spec_.rank) continue;
    out_blob_.clear();
    append_u64(out_blob_, static_cast<std::uint64_t>(local_outstanding_));
    transport_->exchange(peer, out_blob_.data(), out_blob_.size(), in_blob_);
    BlobReader in{in_blob_.data(), in_blob_.size()};
    global_outstanding_ += static_cast<std::int64_t>(in.read_u64());
  }
}

RankEngine::~RankEngine() = default;

Process& RankEngine::process(NodeId v) {
  MMN_REQUIRE(v >= spec_.lo && v < spec_.hi, "process(): node not owned");
  return *processes_[v - spec_.lo];
}

const Process& RankEngine::process(NodeId v) const {
  MMN_REQUIRE(v >= spec_.lo && v < spec_.hi, "process(): node not owned");
  return *processes_[v - spec_.lo];
}

void RankEngine::install_faults(const FaultPlan& plan) {
  MMN_REQUIRE(round_ == 0 && faults_ == nullptr,
              "install_faults: once, before the first round");
  // Every rank replays the identical full plan against its own overlay
  // replica (the windowed graph reports global n and m, so overlay bitsets
  // span the whole topology) — liveness tests and discipline stifles agree
  // across ranks by construction.
  faults_ = std::make_unique<FaultRuntime>(*graph_, plan);
}

unsigned RankEngine::owner_of(NodeId v) const {
  auto r = static_cast<unsigned>(static_cast<std::uint64_t>(v) * spec_.ranks /
                                 graph_->num_nodes());
  if (r >= spec_.ranks) r = spec_.ranks - 1;
  while (v < bounds_[r]) --r;
  while (v >= bounds_[r + 1]) ++r;
  return r;
}

void RankEngine::node_round(NodeId local) {
  const EpochOverlay* overlay = nullptr;
  if (faults_ != nullptr) [[unlikely]] {
    overlay = &faults_->overlay();
    if (!overlay->node_alive(spec_.lo + local)) {
      staging_.fault_drops += arena_.inbox(local).size();
      return;
    }
  }
  NodeContext ctx(views_[local], rngs_[local], arena_.inbox(local), slot_,
                  round_, staging_, overlay);
  processes_[local]->round(ctx);
  const char done = processes_[local]->finished() ? 1 : 0;
  if (done != finished_flag_[local]) {
    finished_flag_[local] = done;
    local_outstanding_ += done ? -1 : 1;
  }
}

/// Splits the round's staged sends into the own-window ingress buffer and
/// one wire batch per destination rank.  Partition preserves outbox order,
/// so every per-destination stream is still ascending-sender; interned
/// broadcast runs (consecutive equal refs — refs are unique per
/// stage_packet call, so equality implies one run) ship/stage one payload.
void RankEngine::partition_outbox() {
  ShardBuffer& own = ingress_[spec_.rank];
  for (unsigned r = 0; r < spec_.ranks; ++r) {
    out_headers_[r].clear();
    out_payload_[r].clear();
  }
  // Per-destination interning state; refs are unique within the round, so
  // one slot per destination is enough even across run gaps.
  thread_local std::vector<PacketRef> last_src;
  thread_local std::vector<PacketRef> last_emit;
  last_src.assign(spec_.ranks, kNoRef);
  last_emit.assign(spec_.ranks, 0);

  const Packet* pool = staging_.pool.data();
  for (const MsgHeader& h : staging_.outbox) {
    const unsigned dst = owner_of(h.to);
    if (dst == spec_.rank) {
      if (h.ref != last_src[dst]) {
        last_src[dst] = h.ref;
        last_emit[dst] = own.stage_packet(pool[h.ref]);
      }
      own.outbox.push_back(
          MsgHeader{h.to - spec_.lo, h.from, h.via, last_emit[dst]});
    } else {
      if (h.ref != last_src[dst]) {
        last_src[dst] = h.ref;
        const Packet& pkt = pool[h.ref];
        append_bytes(out_payload_[dst], &pkt, pkt.live_bytes());
        ++last_emit[dst];  // 1-based count; wire ref = count - 1
      }
      out_headers_[dst].push_back(
          MsgHeader{h.to, h.from, h.via, last_emit[dst] - 1});
      ++xshard_msgs_;
    }
  }
}

/// One blob per peer: cross-shard headers + payloads, this rank's channel
/// writes (every peer gets the same list — the channel is replicated), and
/// the outstanding count.  Peers are visited in ascending id; the swap
/// itself is full-duplex (shard_comm.hpp), and ascending order admits no
/// waiting cycle, so the round's exchange always completes.
void RankEngine::exchange_round() {
  for (unsigned peer = 0; peer < spec_.ranks; ++peer) {
    if (peer == spec_.rank) continue;
    out_blob_.clear();
    append_u64(out_blob_, out_headers_[peer].size());
    append_bytes(out_blob_, out_headers_[peer].data(),
                 out_headers_[peer].size() * sizeof(MsgHeader));
    append_u64(out_blob_, out_payload_[peer].size());
    append_bytes(out_blob_, out_payload_[peer].data(),
                 out_payload_[peer].size());
    append_u64(out_blob_, staging_.channel_writes.size());
    for (const ChannelWrite& w : staging_.channel_writes) {
      append_bytes(out_blob_, &w.node, sizeof(w.node));
      append_bytes(out_blob_, &w.packet, w.packet.live_bytes());
    }
    append_u64(out_blob_, static_cast<std::uint64_t>(local_outstanding_));

    transport_->exchange(peer, out_blob_.data(), out_blob_.size(), in_blob_);

    BlobReader in{in_blob_.data(), in_blob_.size()};
    const std::uint64_t n_headers = in.read_u64();
    ShardBuffer& ingress = ingress_[peer];
    MMN_REQUIRE(in.cur + n_headers * sizeof(MsgHeader) <= in.size,
                "rank exchange blob truncated");
    const auto* headers =
        reinterpret_cast<const MsgHeader*>(in.p + in.cur);
    in.cur += n_headers * sizeof(MsgHeader);
    const std::uint64_t payload_bytes = in.read_u64();
    BlobReader payload{in.p + in.cur, payload_bytes};
    in.cur += payload_bytes;
    MMN_REQUIRE(in.cur <= in.size, "rank exchange blob truncated");
    // Wire refs are run ordinals: a ref change means the next payload in
    // the stream; equal refs share the previously staged slot.
    PacketRef last_wire = kNoRef;
    PacketRef staged = 0;
    Packet pkt;
    for (std::uint64_t i = 0; i < n_headers; ++i) {
      const MsgHeader h = headers[i];
      MMN_REQUIRE(h.to >= spec_.lo && h.to < spec_.hi,
                  "cross-shard header addressed to a node this rank "
                  "does not own");
      if (h.ref != last_wire) {
        MMN_REQUIRE(h.ref == last_wire + 1 || last_wire == kNoRef,
                    "cross-shard payload runs out of order");
        last_wire = h.ref;
        payload.read_packet(pkt);
        staged = ingress.stage_packet(pkt);
      }
      ingress.outbox.push_back(
          MsgHeader{h.to - spec_.lo, h.from, h.via, staged});
    }
    MMN_REQUIRE(payload.cur == payload.size,
                "cross-shard payload bytes left over");

    const std::uint64_t n_writes = in.read_u64();
    peer_writes_[peer].clear();
    for (std::uint64_t i = 0; i < n_writes; ++i) {
      ChannelWrite w;
      in.read(&w.node, sizeof(w.node));
      in.read_packet(w.packet);
      peer_writes_[peer].push_back(std::move(w));
    }
    peer_outstanding_[peer] = static_cast<std::int64_t>(in.read_u64());
    MMN_REQUIRE(in.cur == in.size, "rank exchange blob has trailing bytes");
  }
}

void RankEngine::run_one_round() {
  // Mirrors Engine::run_one_round + RuntimeCore::run_round, with the shard
  // merge seams widened from threads to ranks.
  if (faults_ != nullptr) [[unlikely]] {
    faults_->apply_slot(round_, *discipline_);
  }
  const NodeId w = num_owned();
  for (NodeId i = 0; i < w; ++i) node_round(i);

  metrics_.p2p_messages += staging_.p2p_sent;
  staging_.p2p_sent = 0;
  if (faults_ != nullptr) {
    faults_->stats().drops += staging_.fault_drops;
    staging_.fault_drops = 0;
  }

  partition_outbox();
  exchange_round();

  // Channel writes merge rank-major — ranks own ascending node windows, so
  // this is ascending node order, the exact serial commit order the
  // disciplines' determinism contract is stated over.
  for (unsigned r = 0; r < spec_.ranks; ++r) {
    if (r == spec_.rank) {
      for (ChannelWrite& cw : staging_.channel_writes) {
        slot_writes_.push_back(std::move(cw));
      }
    } else {
      for (ChannelWrite& cw : peer_writes_[r]) {
        slot_writes_.push_back(std::move(cw));
      }
    }
  }
  slot_ = discipline_->slot(slot_writes_, channel_, metrics_);
  slot_writes_.clear();

  // Ascending-rank concatenation of the ingress buffers = the serial send
  // order; the stable counting sort does the rest.
  arena_.flip(ingress_);
  staging_.clear_round();

  global_outstanding_ = local_outstanding_;
  for (unsigned r = 0; r < spec_.ranks; ++r) {
    if (r != spec_.rank) global_outstanding_ += peer_outstanding_[r];
  }

  ++round_;
  ++metrics_.rounds;
}

bool RankEngine::step(std::uint64_t rounds) {
  // Engine::step verbatim, over the replicated global predicate: every rank
  // evaluates identical (outstanding, channel) state, so every rank runs
  // the same number of rounds — which keeps the per-round exchanges in
  // lockstep without any extra control traffic.
  if (status_ != RunStatus::kCompleted) status_ = RunStatus::kRunning;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    if (all_finished() && channel_idle()) {
      status_ = RunStatus::kCompleted;
      return true;
    }
    run_one_round();
  }
  if (all_finished() && channel_idle()) {
    status_ = RunStatus::kCompleted;
    return true;
  }
  return false;
}

}  // namespace mmn::sim
