// Cross-rank transport for sharded execution.
//
// Rank mode (sim/rank.hpp) splits the node set over OS processes; per round
// each pair of ranks swaps one batched blob — cross-shard MsgHeaders plus
// their pooled payloads, the rank's channel writes, and its outstanding
// count.  This header is the seam that keeps the engine code
// transport-agnostic: Transport is a tiny pairwise-exchange interface, the
// bundled implementation is an AF_UNIX socketpair full mesh built by
// fork(), and an MPI backend could drop in behind the same three calls
// without touching the rank driver.
//
// The exchange primitive is a *swap*, not a send: both sides of a pair call
// exchange() with their outgoing blob and receive the peer's.  The
// implementation drains both directions concurrently (poll() on a
// nonblocking fd), so the swap cannot deadlock no matter how lopsided the
// two blobs are — neither side needs the other to finish writing first.
// Ranks visit peers in ascending (min, max) pair order, which gives the
// deterministic rank-major merge order the determinism proof needs
// (ARCHITECTURE.md, "Sharded execution").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mmn::sim::shard_comm {

/// Pairwise blob swap between this rank and one peer.  Implementations are
/// process-private handles onto a pre-built mesh; they are not thread-safe
/// (rank mode is one process per rank, serial inside).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual unsigned rank() const = 0;
  virtual unsigned ranks() const = 0;

  /// Swaps `bytes` of `data` against the peer's concurrent exchange() call;
  /// the peer's blob lands in `in` (resized, capacity reused round over
  /// round).  Both sides must call — the swap is symmetric and blocking.
  virtual void exchange(unsigned peer, const std::uint8_t* data,
                        std::size_t bytes, std::vector<std::uint8_t>& in) = 0;

  /// Wire traffic so far, both directions, framing included — the
  /// cross-boundary byte counters bench_shard_comm publishes.
  virtual std::uint64_t bytes_out() const = 0;
  virtual std::uint64_t bytes_in() const = 0;
};

/// Forks `ranks - 1` child processes and runs `fn(transport)` in every rank
/// over an AF_UNIX socketpair full mesh (parent = rank 0).  Children _exit
/// when fn returns; the parent reaps them and requires clean exits, so a
/// child that trips MMN_REQUIRE fails the whole run.  With ranks == 1 no
/// fork happens and fn gets a loopback transport with no peers.  Returns
/// only in the parent.  fn must not spawn threads before exchanging (the
/// mesh is built pre-fork; rank mode is serial per rank by design).
void run_ranks(unsigned ranks, const std::function<void(Transport&)>& fn);

}  // namespace mmn::sim::shard_comm
