#include "sim/shard_comm.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/check.hpp"

namespace mmn::sim::shard_comm {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MMN_REQUIRE(flags >= 0, "fcntl(F_GETFL) failed");
  MMN_REQUIRE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "fcntl(F_SETFL, O_NONBLOCK) failed");
}

/// One rank's view of the socketpair mesh: fd_[p] talks to rank p.
class SocketMesh final : public Transport {
 public:
  SocketMesh(unsigned rank, unsigned ranks, std::vector<int> fds)
      : rank_(rank), ranks_(ranks), fds_(std::move(fds)) {}

  SocketMesh(const SocketMesh&) = delete;
  SocketMesh& operator=(const SocketMesh&) = delete;

  ~SocketMesh() override {
    for (const int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
  }

  unsigned rank() const override { return rank_; }
  unsigned ranks() const override { return ranks_; }

  void exchange(unsigned peer, const std::uint8_t* data, std::size_t bytes,
                std::vector<std::uint8_t>& in) override {
    MMN_REQUIRE(peer < ranks_ && peer != rank_ && fds_[peer] >= 0,
                "exchange() with an invalid peer rank");
    const int fd = fds_[peer];

    // Outgoing frame: [u64 length][payload].  The length prefix is staged
    // separately so the payload is never copied.
    std::uint64_t out_len = bytes;
    std::size_t sent_hdr = 0;
    std::size_t sent_body = 0;

    // Incoming frame, drained concurrently with the writes so the swap
    // cannot deadlock on full kernel buffers.
    std::uint8_t in_hdr[sizeof(std::uint64_t)];
    std::size_t got_hdr = 0;
    std::uint64_t in_len = 0;
    std::size_t got_body = 0;
    in.clear();

    for (;;) {
      const bool out_done = sent_hdr == sizeof(out_len) && sent_body == bytes;
      const bool in_done =
          got_hdr == sizeof(in_hdr) && got_body == in_len;
      if (out_done && in_done) break;

      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = static_cast<short>((out_done ? 0 : POLLOUT) |
                                      (in_done ? 0 : POLLIN));
      pfd.revents = 0;
      const int rc = ::poll(&pfd, 1, -1);
      if (rc < 0) {
        MMN_REQUIRE(errno == EINTR, "poll() failed during rank exchange");
        continue;
      }
      MMN_REQUIRE((pfd.revents & (POLLERR | POLLNVAL)) == 0,
                  "rank exchange socket error");

      if (!out_done && (pfd.revents & (POLLOUT | POLLHUP)) != 0) {
        if (sent_hdr < sizeof(out_len)) {
          const auto* p = reinterpret_cast<const std::uint8_t*>(&out_len);
          const ssize_t k = ::send(fd, p + sent_hdr, sizeof(out_len) - sent_hdr,
                                   MSG_NOSIGNAL);
          if (k > 0) {
            sent_hdr += static_cast<std::size_t>(k);
            bytes_out_ += static_cast<std::uint64_t>(k);
          } else {
            MMN_REQUIRE(k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                                  errno == EINTR),
                        "send() failed during rank exchange");
          }
        } else if (sent_body < bytes) {
          const ssize_t k =
              ::send(fd, data + sent_body, bytes - sent_body, MSG_NOSIGNAL);
          if (k > 0) {
            sent_body += static_cast<std::size_t>(k);
            bytes_out_ += static_cast<std::uint64_t>(k);
          } else {
            MMN_REQUIRE(k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                                  errno == EINTR),
                        "send() failed during rank exchange");
          }
        }
      }

      if (!in_done && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
        if (got_hdr < sizeof(in_hdr)) {
          const ssize_t k =
              ::recv(fd, in_hdr + got_hdr, sizeof(in_hdr) - got_hdr, 0);
          MMN_REQUIRE(k != 0, "peer rank closed mid-exchange");
          if (k > 0) {
            got_hdr += static_cast<std::size_t>(k);
            bytes_in_ += static_cast<std::uint64_t>(k);
            if (got_hdr == sizeof(in_hdr)) {
              std::memcpy(&in_len, in_hdr, sizeof(in_len));
              in.resize(in_len);
            }
          } else {
            MMN_REQUIRE(errno == EAGAIN || errno == EWOULDBLOCK ||
                            errno == EINTR,
                        "recv() failed during rank exchange");
          }
        } else if (got_body < in_len) {
          const ssize_t k =
              ::recv(fd, in.data() + got_body, in_len - got_body, 0);
          MMN_REQUIRE(k != 0, "peer rank closed mid-exchange");
          if (k > 0) {
            got_body += static_cast<std::size_t>(k);
            bytes_in_ += static_cast<std::uint64_t>(k);
          } else {
            MMN_REQUIRE(errno == EAGAIN || errno == EWOULDBLOCK ||
                            errno == EINTR,
                        "recv() failed during rank exchange");
          }
        }
      }
    }
  }

  std::uint64_t bytes_out() const override { return bytes_out_; }
  std::uint64_t bytes_in() const override { return bytes_in_; }

 private:
  unsigned rank_;
  unsigned ranks_;
  std::vector<int> fds_;  ///< indexed by peer rank; -1 for self
  std::uint64_t bytes_out_ = 0;
  std::uint64_t bytes_in_ = 0;
};

/// ranks == 1: no peers, nothing to fork.
class LoopbackTransport final : public Transport {
 public:
  unsigned rank() const override { return 0; }
  unsigned ranks() const override { return 1; }
  void exchange(unsigned, const std::uint8_t*, std::size_t,
                std::vector<std::uint8_t>&) override {
    MMN_REQUIRE(false, "exchange() on a single-rank transport");
  }
  std::uint64_t bytes_out() const override { return 0; }
  std::uint64_t bytes_in() const override { return 0; }
};

}  // namespace

void run_ranks(unsigned ranks, const std::function<void(Transport&)>& fn) {
  MMN_REQUIRE(ranks >= 1 && ranks <= 64, "ranks must be in [1, 64]");
  if (ranks == 1) {
    LoopbackTransport t;
    fn(t);
    return;
  }

  // Full mesh, built before any fork so every rank inherits its endpoints:
  // pair (i, j), i < j, gets one socketpair; ends[i][j] is i's end.
  std::vector<std::vector<int>> ends(ranks, std::vector<int>(ranks, -1));
  for (unsigned i = 0; i < ranks; ++i) {
    for (unsigned j = i + 1; j < ranks; ++j) {
      int sp[2];
      MMN_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) == 0,
                  "socketpair() failed building the rank mesh");
      set_nonblocking(sp[0]);
      set_nonblocking(sp[1]);
      ends[i][j] = sp[0];
      ends[j][i] = sp[1];
    }
  }

  unsigned my_rank = 0;
  std::vector<pid_t> children;
  children.reserve(ranks - 1);
  for (unsigned r = 1; r < ranks; ++r) {
    const pid_t pid = ::fork();
    MMN_REQUIRE(pid >= 0, "fork() failed spawning rank");
    if (pid == 0) {
      my_rank = r;
      children.clear();
      break;
    }
    children.push_back(pid);
  }

  // Keep only this rank's endpoints; close the rest of the mesh.
  std::vector<int> fds(ranks, -1);
  for (unsigned i = 0; i < ranks; ++i) {
    for (unsigned j = 0; j < ranks; ++j) {
      if (ends[i][j] < 0) continue;
      if (i == my_rank) {
        fds[j] = ends[i][j];
      } else {
        ::close(ends[i][j]);
      }
    }
  }

  {
    SocketMesh mesh(my_rank, ranks, std::move(fds));
    fn(mesh);
  }

  if (my_rank != 0) {
    // Skip atexit/static destructors: the child shares the parent's stdio
    // and test/bench harness state, none of which it owns.
    ::_exit(0);
  }
  for (const pid_t pid : children) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, 0);
    MMN_REQUIRE(got == pid, "waitpid() failed reaping a rank");
    MMN_REQUIRE(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                "a child rank exited abnormally");
  }
}

}  // namespace mmn::sim::shard_comm
