// Slotted from unslotted channel (Section 7.2).
//
// The engines assume a slotted channel; Section 7.2 justifies that: given an
// FDMA side channel and asynchronously detectable idle periods (Molle 1981),
// an unslotted channel self-organizes into slots.  Every station that is
// active in the current slot transmits a busy tone on the side channel for
// as long as it is busy; when the side channel has been idle for a guard
// gap, every station — each with its own bounded reaction delay — declares
// the slot over and starts the next one.
//
// This module simulates that construction in continuous time: stations get
// per-slot random start offsets (clock jitter bounded by `reaction_delay_max`
// ticks) and fixed-length data transmissions; slot boundaries emerge from
// the busy-tone envelope rather than a global clock.  It demonstrates, and
// the tests assert, the two properties the engines rely on:
//
//   1. containment — every data transmission of logical slot s lies strictly
//      between the emergent boundaries of s (no straddling);
//   2. equivalence — the per-slot outcome derived by listeners
//      (idle / success / collision by transmitter count between boundaries)
//      equals the outcome of an ideally slotted channel fed the same
//      per-slot write decisions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/channel.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

struct UnslottedConfig {
  /// Upper bound (exclusive) on each station's reaction delay per slot,
  /// in ticks: clock jitter plus carrier-sense latency.  0 is legal and
  /// models perfectly synchronized stations: every active station keys up
  /// exactly one tick after the boundary.
  std::uint32_t reaction_delay_max = 8;

  /// Length of one data transmission, in ticks.
  std::uint32_t transmit_ticks = 32;

  /// Idle-gap length on the side channel that signals end-of-slot.
  std::uint32_t idle_gap_ticks = 4;

  std::uint64_t seed = 1;
};

/// One data transmission as it happened on the continuous-time channel.
struct Transmission {
  NodeId station = kNoNode;
  std::uint64_t logical_slot = 0;
  std::uint64_t start_tick = 0;
  std::uint64_t end_tick = 0;  // exclusive
};

struct UnslottedRun {
  /// Emergent slot boundaries; boundary[s] is where slot s begins.
  std::vector<std::uint64_t> boundaries;
  /// Derived outcome of each logical slot (as every listener decodes it).
  std::vector<SlotState> outcomes;
  /// Every data transmission, for containment checking.
  std::vector<Transmission> transmissions;
};

/// One slot of the emergent busy-tone envelope, shared by run_unslotted and
/// the UnslottedDiscipline (sim/channel_discipline.hpp): each of the
/// `num_writers` active stations keys up one tick after `boundary` plus its
/// personal reaction jitter drawn from `rng` (in index order), and holds the
/// carrier for transmit_ticks.  Returns the next boundary — one idle gap
/// after the last carrier drops, or after `boundary` directly when the slot
/// is idle.  `on_transmission`, if non-null, receives each transmission's
/// (writer index, start tick, end tick).  `config` must already be
/// validated (positive transmit and gap lengths).
std::uint64_t unslotted_envelope_step(
    std::uint64_t boundary, std::size_t num_writers,
    const UnslottedConfig& config, Rng& rng,
    const std::function<void(std::size_t index, std::uint64_t start,
                             std::uint64_t end)>& on_transmission = {});

/// Simulates `writers_per_slot.size()` logical slots on the unslotted
/// channel; writers_per_slot[s] lists the stations transmitting data in
/// logical slot s.
UnslottedRun run_unslotted(NodeId stations,
                           const std::vector<std::vector<NodeId>>& writers_per_slot,
                           const UnslottedConfig& config);

/// The reference: the same write decisions on an ideally slotted channel.
std::vector<SlotState> run_slotted_reference(
    const std::vector<std::vector<NodeId>>& writers_per_slot);

}  // namespace mmn::sim
