// Wire format for both media.
//
// The model (Section 2) bounds a message / slot payload by O(log n) bits plus
// one data element.  We discretize this as a packet of at most kMaxWords
// 64-bit words plus a 16-bit type tag; the bound is enforced at send time so
// no algorithm can smuggle super-constant information into one message.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>

#include "support/check.hpp"

namespace mmn::sim {

using Word = std::int64_t;

class Packet {
 public:
  static constexpr std::size_t kMaxWords = 8;

  Packet() = default;

  explicit Packet(std::uint16_t type) : type_(type) {}

  Packet(std::uint16_t type, std::initializer_list<Word> words) : type_(type) {
    MMN_REQUIRE(words.size() <= kMaxWords, "packet exceeds the O(log n) bound");
    for (Word w : words) words_[size_++] = w;
  }

  std::uint16_t type() const { return type_; }

  std::size_t size() const { return size_; }

  Word operator[](std::size_t i) const {
    MMN_REQUIRE(i < size_, "packet word index out of range");
    return words_[i];
  }

  void push(Word w) {
    MMN_REQUIRE(size_ < kMaxWords, "packet exceeds the O(log n) bound");
    words_[size_++] = w;
  }

  bool operator==(const Packet& other) const {
    if (type_ != other.type_ || size_ != other.size_) return false;
    for (std::size_t i = 0; i < size_; ++i) {
      if (words_[i] != other.words_[i]) return false;
    }
    return true;
  }

 private:
  std::uint16_t type_ = 0;
  std::uint8_t size_ = 0;
  std::array<Word, kMaxWords> words_{};
};

}  // namespace mmn::sim
