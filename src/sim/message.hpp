// Wire format for both media.
//
// The model (Section 2) bounds a message / slot payload by O(log n) bits plus
// one data element.  We discretize this as a packet of at most kMaxWords
// 64-bit words plus a 16-bit type tag.  The bound is enforced at the cold
// boundaries — construction from a word list and every send/channel-write
// commit — so no algorithm can smuggle super-constant information into one
// message; the per-word accessors on the hot path carry debug-only checks
// (MMN_DCHECK) that compile out in release builds.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <type_traits>

#include "support/check.hpp"

namespace mmn::sim {

using Word = std::int64_t;

/// Index of a payload in a packet pool (sim/runtime_core.hpp).  Message
/// headers carry a PacketRef instead of the packet itself, so the per-round
/// sorts and scatters move 16–32-byte headers, not 80-byte payloads.
using PacketRef = std::uint32_t;

class Packet {
 public:
  static constexpr std::size_t kMaxWords = 8;

  Packet() = default;

  explicit Packet(std::uint16_t type) : type_(type) {}

  Packet(std::uint16_t type, std::initializer_list<Word> words) : type_(type) {
    MMN_REQUIRE(words.size() <= kMaxWords, "packet exceeds the O(log n) bound");
    for (Word w : words) words_[size_++] = w;
  }

  std::uint16_t type() const { return type_; }

  std::size_t size() const { return size_; }

  /// Bytes of the live prefix: the tag/size word plus size() payload words.
  /// The staging pools copy exactly this much (see ShardBuffer::stage_packet)
  /// — the trailing words of a pooled slot are stale bytes from an earlier
  /// round that no contract-abiding reader ever touches (operator[] is
  /// bounded by size_, operator== clamps to it).
  std::size_t live_bytes() const {
    return sizeof(Word) * (1 + static_cast<std::size_t>(size_));
  }

  Word operator[](std::size_t i) const {
    MMN_DCHECK(i < size_, "packet word index out of range");
    // Masked like push(): a contract-violating index in a release build
    // reads a wrong word, never out-of-bounds memory.
    return words_[i & (kMaxWords - 1)];
  }

  void push(Word w) {
    MMN_DCHECK(size_ < kMaxWords, "packet exceeds the O(log n) bound");
    // The mask keeps a contract-violating release-build push memory-safe;
    // the size still advances, so the bound check at send commit fires.
    static_assert((kMaxWords & (kMaxWords - 1)) == 0, "mask needs power of 2");
    words_[size_ & (kMaxWords - 1)] = w;
    ++size_;
  }

  bool operator==(const Packet& other) const {
    if (type_ != other.type_ || size_ != other.size_) return false;
    // size_ can only exceed kMaxWords through a contract-violating push that
    // debug builds abort on; clamp so release builds never read past words_.
    const std::size_t k = size_ < kMaxWords ? size_ : kMaxWords;
    for (std::size_t i = 0; i < k; ++i) {
      if (words_[i] != other.words_[i]) return false;
    }
    return true;
  }

 private:
  std::uint16_t type_ = 0;
  std::uint8_t size_ = 0;
  std::array<Word, kMaxWords> words_{};
};

// The live-prefix staging copy (ShardBuffer::stage_packet, PacketPool::
// acquire) relies on this exact layout: one alignment-padded header word
// (type_ + size_) followed immediately by the word array, nothing else.
static_assert(sizeof(Packet) == sizeof(Word) * (1 + Packet::kMaxWords),
              "Packet layout changed: live-prefix staging copies are wrong");
static_assert(std::is_trivially_copyable_v<Packet>,
              "packet pools memcpy Packet prefixes");

}  // namespace mmn::sim
