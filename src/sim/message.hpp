// Wire format for both media.
//
// The model (Section 2) bounds a message / slot payload by O(log n) bits plus
// one data element.  We discretize this as a packet of at most kMaxWords
// 64-bit words plus a 16-bit type tag.  The bound is enforced at the cold
// boundaries — construction from a word list and every send/channel-write
// commit — so no algorithm can smuggle super-constant information into one
// message; the per-word accessors on the hot path carry debug-only checks
// (MMN_DCHECK) that compile out in release builds.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <type_traits>

#include "support/check.hpp"

namespace mmn::sim {

using Word = std::int64_t;

/// Traffic priority class of a packet (the PAPERS.md multimedia MAC's
/// service classes): voice and video are the reserved, delay-sensitive
/// classes; data is elastic best-effort.  Ordered by priority — a smaller
/// value is more urgent — so untagged legacy packets (type tags below
/// 2^14 leave the class bits zero) read as kVoice and a priority-aware
/// discipline serves them collision-free rather than starving them.
enum class QosClass : std::uint8_t { kVoice = 0, kVideo = 1, kData = 2 };

inline constexpr std::size_t kNumQosClasses = 3;

inline const char* qos_name(QosClass cls) {
  switch (cls) {
    case QosClass::kVoice: return "voice";
    case QosClass::kVideo: return "video";
    case QosClass::kData: return "data";
  }
  return "?";
}

/// The class rides in the top two bits of the 16-bit packet type tag — the
/// one header field that crosses both media unchanged.  Embedding it there
/// keeps MsgHeader/StampedHeader at their pinned 16/32-byte layouts (the
/// SIMD histograms stride over them) and costs protocols nothing: their
/// type space shrinks from 2^16 to 2^14, far above any tag in the repo.
inline constexpr unsigned kQosTagShift = 14;
inline constexpr std::uint16_t kQosTagMask = 0x3FFF;

inline std::uint16_t qos_tagged(std::uint16_t type, QosClass cls) {
  MMN_DCHECK((type & ~kQosTagMask) == 0, "type tag collides with class bits");
  return static_cast<std::uint16_t>(
      type | (static_cast<std::uint16_t>(cls) << kQosTagShift));
}

/// Class of a tagged type; out-of-range class bits (3) degrade to kData so
/// a corrupt tag can never index past a per-class array.
inline QosClass qos_of_tag(std::uint16_t type) {
  const auto bits = static_cast<std::uint8_t>(type >> kQosTagShift);
  return bits < kNumQosClasses ? static_cast<QosClass>(bits) : QosClass::kData;
}

/// The protocol-level tag with the class bits stripped.
inline std::uint16_t qos_base_type(std::uint16_t type) {
  return static_cast<std::uint16_t>(type & kQosTagMask);
}

/// Index of a payload in a packet pool (sim/runtime_core.hpp).  Message
/// headers carry a PacketRef instead of the packet itself, so the per-round
/// sorts and scatters move 16–32-byte headers, not 80-byte payloads.
using PacketRef = std::uint32_t;

class Packet {
 public:
  static constexpr std::size_t kMaxWords = 8;

  Packet() = default;

  explicit Packet(std::uint16_t type) : type_(type) {}

  Packet(std::uint16_t type, std::initializer_list<Word> words) : type_(type) {
    MMN_REQUIRE(words.size() <= kMaxWords, "packet exceeds the O(log n) bound");
    for (Word w : words) words_[size_++] = w;
  }

  std::uint16_t type() const { return type_; }

  std::size_t size() const { return size_; }

  /// Bytes of the live prefix: the tag/size word plus size() payload words.
  /// The staging pools copy exactly this much (see ShardBuffer::stage_packet)
  /// — the trailing words of a pooled slot are stale bytes from an earlier
  /// round that no contract-abiding reader ever touches (operator[] is
  /// bounded by size_, operator== clamps to it).
  std::size_t live_bytes() const {
    return sizeof(Word) * (1 + static_cast<std::size_t>(size_));
  }

  Word operator[](std::size_t i) const {
    MMN_DCHECK(i < size_, "packet word index out of range");
    // Masked like push(): a contract-violating index in a release build
    // reads a wrong word, never out-of-bounds memory.
    return words_[i & (kMaxWords - 1)];
  }

  void push(Word w) {
    MMN_DCHECK(size_ < kMaxWords, "packet exceeds the O(log n) bound");
    // The mask keeps a contract-violating release-build push memory-safe;
    // the size still advances, so the bound check at send commit fires.
    static_assert((kMaxWords & (kMaxWords - 1)) == 0, "mask needs power of 2");
    words_[size_ & (kMaxWords - 1)] = w;
    ++size_;
  }

  bool operator==(const Packet& other) const {
    if (type_ != other.type_ || size_ != other.size_) return false;
    // size_ can only exceed kMaxWords through a contract-violating push that
    // debug builds abort on; clamp so release builds never read past words_.
    const std::size_t k = size_ < kMaxWords ? size_ : kMaxWords;
    for (std::size_t i = 0; i < k; ++i) {
      if (words_[i] != other.words_[i]) return false;
    }
    return true;
  }

 private:
  std::uint16_t type_ = 0;
  std::uint8_t size_ = 0;
  std::array<Word, kMaxWords> words_{};
};

// The live-prefix staging copy (ShardBuffer::stage_packet, PacketPool::
// acquire) relies on this exact layout: one alignment-padded header word
// (type_ + size_) followed immediately by the word array, nothing else.
static_assert(sizeof(Packet) == sizeof(Word) * (1 + Packet::kMaxWords),
              "Packet layout changed: live-prefix staging copies are wrong");
static_assert(std::is_trivially_copyable_v<Packet>,
              "packet pools memcpy Packet prefixes");

}  // namespace mmn::sim
