#include "sim/channel.hpp"

#include "support/check.hpp"

namespace mmn::sim {

void Channel::write(NodeId node, const Packet& packet) {
  // One-write-per-node-per-slot is enforced by NodeContext, which owns the
  // per-round write flag; here we only need the slot aggregate.
  MMN_REQUIRE(node != kNoNode, "invalid writer id");
  if (writers_ == 0) {
    first_writer_ = node;
    first_payload_ = packet;
  }
  ++writers_;
}

SlotObservation Channel::resolve(Metrics& metrics) {
  SlotObservation obs;
  if (writers_ == 0) {
    obs.state = SlotState::kIdle;
    ++metrics.slots_idle;
  } else if (writers_ == 1) {
    obs.state = SlotState::kSuccess;
    obs.payload = first_payload_;
    obs.writer = first_writer_;
    ++metrics.slots_success;
  } else {
    obs.state = SlotState::kCollision;
    ++metrics.slots_collision;
  }
  writers_ = 0;
  first_writer_ = kNoNode;
  first_payload_ = Packet{};
  return obs;
}

}  // namespace mmn::sim
