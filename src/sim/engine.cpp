#include "sim/engine.hpp"

#include <string>
#include <utility>

#include "support/check.hpp"

namespace mmn::sim {

class Engine::Context final : public NodeContext {
 public:
  Context(Engine& engine, NodeId v)
      : engine_(engine),
        view_(engine.views_[v]),
        inbox_(engine.inbox_[v]),
        rng_(engine.rngs_[v]) {}

  std::uint64_t round() const override { return engine_.round_; }
  const LocalView& view() const override { return view_; }
  Rng& rng() override { return rng_; }
  const std::vector<Received>& inbox() const override { return inbox_; }
  const SlotObservation& slot() const override { return engine_.slot_; }

  void send(EdgeId edge, const Packet& packet) override {
    const int idx = view_.link_index(edge);
    MMN_REQUIRE(idx >= 0, "send over a link not incident to this node");
    const Neighbor& nb = view_.links[static_cast<std::size_t>(idx)];
    engine_.next_inbox_[nb.id].push_back(Received{view_.self, edge, packet});
    ++engine_.metrics_.p2p_messages;
    sent_message_ = true;
  }

  void channel_write(const Packet& packet) override {
    MMN_REQUIRE(!wrote_channel_, "at most one channel write per node per slot");
    wrote_channel_ = true;
    engine_.channel_.write(view_.self, packet);
  }

  bool wrote_channel() const override { return wrote_channel_; }
  bool sent_message() const override { return sent_message_; }

 private:
  Engine& engine_;
  const LocalView& view_;
  const std::vector<Received>& inbox_;
  Rng& rng_;
  bool wrote_channel_ = false;
  bool sent_message_ = false;
};

Engine::Engine(const Graph& g, const ProcessFactory& factory,
               std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  views_.resize(n);
  inbox_.resize(n);
  next_inbox_.resize(n);
  processes_.reserve(n);
  rngs_.reserve(n);
  Rng root(seed);
  for (NodeId v = 0; v < n; ++v) {
    LocalView& view = views_[v];
    view.self = v;
    view.n = n;
    for (const EdgeRef& e : g.neighbors(v)) {
      view.links.push_back(Neighbor{e.to, e.id, e.weight});
    }
    rngs_.push_back(root.fork(v));
  }
  // Views must be fully built before any factory call: a process may inspect
  // only its own view, but the vector must not reallocate afterwards.
  for (NodeId v = 0; v < n; ++v) {
    processes_.push_back(factory(views_[v]));
    MMN_REQUIRE(processes_.back() != nullptr, "factory returned null process");
  }
}

Engine::~Engine() = default;

Process& Engine::process(NodeId v) {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

const Process& Engine::process(NodeId v) const {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

bool Engine::all_finished() const {
  for (const auto& p : processes_) {
    if (!p->finished()) return false;
  }
  return true;
}

void Engine::run_one_round() {
  for (NodeId v = 0; v < processes_.size(); ++v) {
    Context ctx(*this, v);
    processes_[v]->round(ctx);
  }
  slot_ = channel_.resolve(metrics_);
  for (NodeId v = 0; v < processes_.size(); ++v) {
    inbox_[v].clear();
    std::swap(inbox_[v], next_inbox_[v]);
  }
  ++round_;
  ++metrics_.rounds;
}

bool Engine::step(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    if (all_finished()) return true;
    run_one_round();
  }
  return all_finished();
}

Metrics Engine::run(std::uint64_t max_rounds) {
  const bool done = step(max_rounds);
  MMN_ASSERT(done, "protocol did not terminate within " +
                       std::to_string(max_rounds) + " rounds");
  return metrics_;
}

Metrics run_network(const Graph& g, const ProcessFactory& factory,
                    std::uint64_t seed, std::uint64_t max_rounds) {
  Engine engine(g, factory, seed);
  return engine.run(max_rounds);
}

}  // namespace mmn::sim
