#include "sim/engine.hpp"

#include <string>
#include <utility>

#include "support/check.hpp"

namespace mmn::sim {

/// Stages every externally visible effect into the shard's buffer; the core
/// commits shards in ascending order, so the trace is scheduler-independent.
class Engine::Context final : public NodeContext {
 public:
  Context(RuntimeCore& core, ShardBuffer& shard, NodeId v)
      : core_(core),
        shard_(shard),
        view_(core.view(v)),
        inbox_(core.inbox(v)),
        rng_(core.rng(v)) {}

  std::uint64_t round() const override { return core_.round(); }
  const LocalView& view() const override { return view_; }
  Rng& rng() override { return rng_; }
  std::span<const Received> inbox() const override { return inbox_; }
  const SlotObservation& slot() const override { return core_.slot(); }

  void send(EdgeId edge, const Packet& packet) override {
    const int idx = view_.link_index(edge);
    MMN_REQUIRE(idx >= 0, "send over a link not incident to this node");
    const Neighbor& nb = view_.links[static_cast<std::size_t>(idx)];
    shard_.outbox.push_back(Outgoing{nb.id, Received{view_.self, edge, packet}});
    ++shard_.p2p_sent;
    sent_message_ = true;
  }

  void channel_write(const Packet& packet) override {
    MMN_REQUIRE(!wrote_channel_, "at most one channel write per node per slot");
    wrote_channel_ = true;
    shard_.channel_writes.push_back(ChannelWrite{view_.self, packet});
  }

  bool wrote_channel() const override { return wrote_channel_; }
  bool sent_message() const override { return sent_message_; }

 private:
  RuntimeCore& core_;
  ShardBuffer& shard_;
  const LocalView& view_;
  std::span<const Received> inbox_;
  Rng& rng_;
  bool wrote_channel_ = false;
  bool sent_message_ = false;
};

Engine::Engine(const Graph& g, const ProcessFactory& factory,
               std::uint64_t seed)
    : Engine(g, factory, seed, nullptr) {}

Engine::Engine(const Graph& g, const ProcessFactory& factory,
               std::uint64_t seed, std::unique_ptr<Scheduler> scheduler,
               std::unique_ptr<ChannelDiscipline> discipline)
    : core_(g, seed, std::move(scheduler), std::move(discipline)) {
  const NodeId n = core_.num_nodes();
  processes_.reserve(n);
  finished_flag_.reserve(n);
  // Views are fully built by the core before any factory call: a process may
  // inspect only its own view, but the vector must not reallocate afterwards.
  for (NodeId v = 0; v < n; ++v) {
    processes_.push_back(factory(core_.view(v)));
    MMN_REQUIRE(processes_.back() != nullptr, "factory returned null process");
    const bool done = processes_.back()->finished();
    finished_flag_.push_back(done ? 1 : 0);
    if (done) ++finished_count_;
  }
}

Engine::~Engine() = default;

Process& Engine::process(NodeId v) {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

const Process& Engine::process(NodeId v) const {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

void Engine::run_one_round() {
  const std::int64_t delta = core_.run_round([this](unsigned s, NodeId v) {
    Context ctx(core_, core_.shard(s), v);
    processes_[v]->round(ctx);
    const char done = processes_[v]->finished() ? 1 : 0;
    if (done != finished_flag_[v]) {
      finished_flag_[v] = done;
      core_.shard(s).finished_delta += done ? 1 : -1;
    }
  });
  finished_count_ = static_cast<NodeId>(
      static_cast<std::int64_t>(finished_count_) + delta);
}

bool Engine::step(std::uint64_t rounds) {
  // Like AsyncEngine, completion additionally requires an idle channel: a
  // deferring discipline (TDMA, Capetanakis) may still hold a write that
  // was registered but not yet transmitted, and dropping it would silently
  // diverge from the non-deferring run of the same workload.
  for (std::uint64_t i = 0; i < rounds; ++i) {
    if (all_finished() && core_.channel_idle()) return true;
    run_one_round();
  }
  return all_finished() && core_.channel_idle();
}

Metrics Engine::run(std::uint64_t max_rounds) {
  const bool done = step(max_rounds);
  MMN_ASSERT(done, "protocol did not terminate within " +
                       std::to_string(max_rounds) + " rounds");
  return core_.metrics();
}

Metrics run_network(const Graph& g, const ProcessFactory& factory,
                    std::uint64_t seed, std::uint64_t max_rounds) {
  Engine engine(g, factory, seed);
  return engine.run(max_rounds);
}

Metrics run_network(const Graph& g, const ProcessFactory& factory,
                    std::uint64_t seed, std::uint64_t max_rounds,
                    std::unique_ptr<Scheduler> scheduler) {
  Engine engine(g, factory, seed, std::move(scheduler));
  return engine.run(max_rounds);
}

}  // namespace mmn::sim
