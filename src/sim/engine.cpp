#include "sim/engine.hpp"

#include <utility>

#include "sim/fault.hpp"
#include "support/check.hpp"

namespace mmn::sim {

Engine::Engine(const Graph& g, const ProcessFactory& factory,
               std::uint64_t seed)
    : Engine(g, factory, seed, nullptr) {}

Engine::Engine(const Graph& g, const ProcessFactory& factory,
               std::uint64_t seed, std::unique_ptr<Scheduler> scheduler,
               std::unique_ptr<ChannelDiscipline> discipline)
    : core_(g, seed, std::move(scheduler), std::move(discipline)) {
  const NodeId n = core_.num_nodes();
  processes_.reserve(n);
  finished_flag_.reserve(n);
  // Views are fully built by the core before any factory call: a process may
  // inspect only its own view, but the vector must not reallocate afterwards.
  for (NodeId v = 0; v < n; ++v) {
    processes_.push_back(factory(core_.view(v)));
    MMN_REQUIRE(processes_.back() != nullptr, "factory returned null process");
    finished_flag_.push_back(processes_.back()->finished() ? 1 : 0);
  }
  outstanding_ = initial_outstanding(finished_flag_, core_.scheduler().shards());
}

bool Engine::all_finished() const { return none_outstanding(outstanding_); }

Engine::~Engine() = default;

Process& Engine::process(NodeId v) {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

const Process& Engine::process(NodeId v) const {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

/// The per-node body of one round; reached from the scheduler through a raw
/// function pointer, with a concrete NodeContext staging every externally
/// visible effect into the shard's buffer — the core commits shards in
/// ascending order, so the trace is scheduler-independent.
void Engine::node_round(unsigned shard, NodeId v) {
  const EpochOverlay* overlay = nullptr;
  if (faults_ != nullptr) [[unlikely]] {
    overlay = &faults_->overlay();
    if (!overlay->node_alive(v)) {
      // A crashed node does not step; whatever was delivered to it this
      // round is lost-and-counted, not processed.
      core_.shard(shard).fault_drops += core_.inbox(v).size();
      return;
    }
  }
  NodeContext ctx(core_.view(v), core_.rng(v), core_.inbox(v), core_.slot(),
                  core_.round(), core_.shard(shard), overlay);
  processes_[v]->round(ctx);
  const char done = processes_[v]->finished() ? 1 : 0;
  if (done != finished_flag_[v]) {
    finished_flag_[v] = done;
    outstanding_[shard].count += done ? -1 : 1;
  }
}

void Engine::run_one_round() {
  // Fault events scheduled for this slot apply before any shard steps, on
  // one thread — every node of the round sees the same topology.
  if (faults_ != nullptr) [[unlikely]] {
    faults_->apply_slot(core_.round(), core_.discipline());
  }
  core_.run_round(Scheduler::NodeFn{
      [](void* env, unsigned s, NodeId v) {
        static_cast<Engine*>(env)->node_round(s, v);
      },
      this});
}

void Engine::install_faults(const FaultPlan& plan) {
  MMN_REQUIRE(core_.round() == 0 && faults_ == nullptr,
              "install_faults: once, before the first round");
  faults_ = std::make_unique<FaultRuntime>(core_.graph(), plan);
  core_.set_fault_runtime(faults_.get());
}

bool Engine::step(std::uint64_t rounds) {
  // Like AsyncEngine, completion additionally requires an idle channel: a
  // deferring discipline (TDMA, Capetanakis) may still hold a write that
  // was registered but not yet transmitted, and dropping it would silently
  // diverge from the non-deferring run of the same workload.
  if (status_ != RunStatus::kCompleted) status_ = RunStatus::kRunning;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    if (all_finished() && core_.channel_idle()) {
      status_ = RunStatus::kCompleted;
      return true;
    }
    run_one_round();
  }
  if (all_finished() && core_.channel_idle()) {
    status_ = RunStatus::kCompleted;
    return true;
  }
  return false;
}

Metrics Engine::run(std::uint64_t max_rounds) {
  if (!step(max_rounds)) status_ = RunStatus::kSlotCapReached;
  return core_.metrics();
}

Metrics run_network(const Graph& g, const ProcessFactory& factory,
                    std::uint64_t seed, std::uint64_t max_rounds) {
  Engine engine(g, factory, seed);
  return engine.run(max_rounds);
}

Metrics run_network(const Graph& g, const ProcessFactory& factory,
                    std::uint64_t seed, std::uint64_t max_rounds,
                    std::unique_ptr<Scheduler> scheduler) {
  Engine engine(g, factory, seed, std::move(scheduler));
  return engine.run(max_rounds);
}

}  // namespace mmn::sim
