#include "sim/runtime_core.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mmn::sim {

void LocalView::finalize() {
  edge_index_.clear();
  edge_index_.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    edge_index_.emplace(links[i].edge, static_cast<std::uint32_t>(i));
  }
}

void MessageArena::reset(NodeId n) {
  n_ = n;
  buf_.clear();
  next_buf_.clear();
  offsets_.assign(n_ + 1, 0);
  next_offsets_.assign(n_ + 1, 0);
  cursor_.assign(n_, 0);
}

void MessageArena::flip(std::vector<ShardBuffer>& shards) {
  // Count per destination, over all shards.
  std::fill(cursor_.begin(), cursor_.end(), 0);
  std::size_t total = 0;
  for (const ShardBuffer& sb : shards) {
    for (const Outgoing& o : sb.outbox) ++cursor_[o.to];
    total += sb.outbox.size();
  }
  // Exclusive prefix sums become the per-node spans of the back buffer.
  next_offsets_[0] = 0;
  for (NodeId v = 0; v < n_; ++v) {
    next_offsets_[v + 1] = next_offsets_[v] + cursor_[v];
    cursor_[v] = next_offsets_[v];
  }
  next_buf_.resize(total);
  // Stable scatter: shards ascend, each outbox in send order — together the
  // exact serial send order, so inbox contents are scheduler-independent.
  for (ShardBuffer& sb : shards) {
    for (Outgoing& o : sb.outbox) next_buf_[cursor_[o.to]++] = std::move(o.msg);
    sb.outbox.clear();
  }
  buf_.swap(next_buf_);
  offsets_.swap(next_offsets_);
}

void SlotBuckets::reset(NodeId n, std::uint64_t ticks_per_slot,
                        std::uint64_t ring_slots) {
  MMN_REQUIRE(ticks_per_slot >= 1, "need at least one tick per slot");
  MMN_REQUIRE(ring_slots >= 2, "bucket ring needs at least two slots");
  n_ = n;
  ticks_per_slot_ = ticks_per_slot;
  next_seq_ = 0;
  in_flight_ = 0;
  ring_.assign(ring_slots, {});
  staged_.clear();
  offsets_.assign(n_ + 1, 0);
}

void SlotBuckets::push(AsyncSend&& send) {
  MMN_ASSERT(send.due_tick >= 1, "delivery tick predates the first slot");
  const std::uint64_t due_slot = (send.due_tick - 1) / ticks_per_slot_;
  ring_[due_slot % ring_.size()].push_back(
      StampedMessage{send.due_tick, next_seq_++, send.to, std::move(send.msg)});
  ++in_flight_;
}

std::size_t SlotBuckets::stage(std::uint64_t slot) {
  std::vector<StampedMessage>& bucket = ring_[slot % ring_.size()];
  staged_.clear();
  staged_.swap(bucket);  // the bucket keeps staged_'s old capacity
  // Every slot's delivery loop ends on an empty stage; skip the O(n)
  // offsets rebuild for it (inbox() is never consulted on a zero return).
  if (staged_.empty()) return 0;
  // Group by destination, each destination ascending (tick, seq).  seq is
  // unique, so the order is total and scheduler-independent.
  std::sort(staged_.begin(), staged_.end(),
            [](const StampedMessage& a, const StampedMessage& b) {
              if (a.to != b.to) return a.to < b.to;
              if (a.tick != b.tick) return a.tick < b.tick;
              return a.seq < b.seq;
            });
  std::fill(offsets_.begin(), offsets_.end(), 0);
  for (const StampedMessage& m : staged_) {
    MMN_ASSERT((m.tick - 1) / ticks_per_slot_ == slot,
               "bucket ring too small for the delay bound");
    ++offsets_[m.to + 1];
  }
  for (NodeId v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];
  in_flight_ -= staged_.size();
  return staged_.size();
}

RuntimeCore::RuntimeCore(const Graph& g, std::uint64_t seed,
                         std::unique_ptr<Scheduler> scheduler,
                         std::unique_ptr<ChannelDiscipline> discipline)
    : scheduler_(scheduler ? std::move(scheduler)
                           : std::make_unique<SerialScheduler>()),
      discipline_(discipline ? std::move(discipline)
                             : std::make_unique<FreeForAllDiscipline>()) {
  const NodeId n = g.num_nodes();
  views_.resize(n);
  rngs_.reserve(n);
  Rng root(seed);
  for (NodeId v = 0; v < n; ++v) {
    LocalView& view = views_[v];
    view.self = v;
    view.n = n;
    for (const EdgeRef& e : g.neighbors(v)) {
      view.links.push_back(Neighbor{e.to, e.id, e.weight});
    }
    view.finalize();
    rngs_.push_back(root.fork(v));
  }
  shards_.resize(scheduler_->shards());
  arena_.reset(n);
  discipline_->reset(n);
}

SlotObservation RuntimeCore::resolve_slot() {
  const SlotObservation obs =
      discipline_->slot(slot_writes_, channel_, metrics_);
  slot_writes_.clear();
  return obs;
}

std::int64_t RuntimeCore::run_round(const Scheduler::NodeFn& fn) {
  scheduler_->for_each_node(num_nodes(), fn);
  std::int64_t finished_delta = 0;
  for (ShardBuffer& sb : shards_) {
    for (ChannelWrite& w : sb.channel_writes) {
      slot_writes_.push_back(std::move(w));
    }
    metrics_.p2p_messages += sb.p2p_sent;
    finished_delta += sb.finished_delta;
  }
  slot_ = resolve_slot();
  arena_.flip(shards_);  // also clears the shard outboxes
  for (ShardBuffer& sb : shards_) sb.clear_round();
  ++round_;
  ++metrics_.rounds;
  return finished_delta;
}

std::int64_t RuntimeCore::commit_async_phase() {
  std::int64_t finished_delta = 0;
  for (ShardBuffer& sb : shards_) {
    for (ChannelWrite& w : sb.channel_writes) {
      slot_writes_.push_back(std::move(w));
    }
    for (AsyncSend& send : sb.async_outbox) {
      slot_buckets_.push(std::move(send));
    }
    metrics_.p2p_messages += sb.p2p_sent;
    finished_delta += sb.finished_delta;
    sb.clear_round();
  }
  return finished_delta;
}

}  // namespace mmn::sim
