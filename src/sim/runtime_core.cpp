#include "sim/runtime_core.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mmn::sim {

std::vector<ShardOutstanding> initial_outstanding(
    const std::vector<char>& flags, unsigned shards) {
  std::vector<ShardOutstanding> counts(shards);
  const auto n = static_cast<NodeId>(flags.size());
  for (unsigned s = 0; s < shards; ++s) {
    const auto [first, last] = Scheduler::shard_range(n, s, shards);
    for (NodeId v = first; v < last; ++v) {
      counts[s].count += flags[v] ? 0 : 1;
    }
  }
  return counts;
}

void MessageArena::reset(NodeId n, unsigned shards) {
  n_ = n;
  empty_ = true;
  buf_.clear();
  next_buf_.clear();
  offsets_.assign(n_ + 1, 0);
  next_offsets_.assign(n_ + 1, 0);
  cursor_.assign(n_, 0);
  pools_.assign(shards, {});
  next_pools_.assign(shards, {});
}

void MessageArena::flip(std::vector<ShardBuffer>& shards) {
  MMN_ASSERT(shards.size() == pools_.size(),
             "arena was reset for a different shard count");
  std::size_t total = 0;
  for (const ShardBuffer& sb : shards) total += sb.outbox.size();
  // Message-free rounds (channel-only stages, barrier quiescence) skip the
  // O(n) offset work entirely: after one empty flip both offset buffers are
  // all-zero and both delivery buffers empty, so a second consecutive empty
  // flip is a no-op — every inbox span is already empty, and the shard
  // pools hold nothing to recycle (payloads only enter through sends).
  if (total == 0) {
    if (empty_) return;
    std::fill(next_offsets_.begin(), next_offsets_.end(), 0);
    next_buf_.clear();
    for (unsigned s = 0; s < shards.size(); ++s) {
      shards[s].pool.swap(next_pools_[s]);
      shards[s].pool.clear();
    }
    buf_.swap(next_buf_);
    offsets_.swap(next_offsets_);
    pools_.swap(next_pools_);
    empty_ = true;
    return;
  }
  empty_ = false;
  // Count per destination, over all shards.  Only the 16-byte headers are
  // touched here; the payloads stay where send() wrote them.
  std::fill(cursor_.begin(), cursor_.end(), 0);
  for (const ShardBuffer& sb : shards) {
    for (const MsgHeader& h : sb.outbox) ++cursor_[h.to];
  }
  // Exclusive prefix sums become the per-node spans of the back buffer.
  next_offsets_[0] = 0;
  for (NodeId v = 0; v < n_; ++v) {
    next_offsets_[v + 1] = next_offsets_[v] + cursor_[v];
    cursor_[v] = next_offsets_[v];
  }
  next_buf_.resize(total);
  // Stable scatter: shards ascend, each outbox in send order — together the
  // exact serial send order, so inbox contents are scheduler-independent.
  // Payload pointers resolve into the shard pool; the buffer swap below
  // transfers ownership of that heap block without moving a byte of it.
  for (unsigned s = 0; s < shards.size(); ++s) {
    ShardBuffer& sb = shards[s];
    const Packet* pool = sb.pool.data();
    for (const MsgHeader& h : sb.outbox) {
      next_buf_[cursor_[h.to]++] = Received{h.from, h.via, pool + h.ref};
    }
    sb.outbox.clear();
    // Recycle: the freshly staged payload buffer moves into next_pools_ (it
    // backs next_buf_, the round about to run); the shard gets the buffer
    // from two flips ago back — no longer referenced — cleared but with its
    // capacity intact, so steady-state staging never allocates.
    sb.pool.swap(next_pools_[s]);
    sb.pool.clear();
  }
  buf_.swap(next_buf_);
  offsets_.swap(next_offsets_);
  pools_.swap(next_pools_);
}

void SlotBuckets::reset(NodeId n, std::uint64_t ticks_per_slot,
                        std::uint64_t ring_slots) {
  MMN_REQUIRE(ticks_per_slot >= 1, "need at least one tick per slot");
  MMN_REQUIRE(ring_slots >= 2, "bucket ring needs at least two slots");
  n_ = n;
  ticks_per_slot_ = ticks_per_slot;
  next_seq_ = 0;
  in_flight_ = 0;
  ring_.assign(ring_slots, {});
  staged_.clear();
  offsets_.assign(n_ + 1, 0);
  pool_.reset();
}

void SlotBuckets::push(const AsyncMsgHeader& send, const Packet& payload) {
  MMN_DCHECK(send.due_tick >= 1, "delivery tick predates the first slot");
  const std::uint64_t due_slot = (send.due_tick - 1) / ticks_per_slot_;
  ring_[due_slot % ring_.size()].push_back(
      StampedHeader{send.due_tick, next_seq_++, send.to, send.from, send.via,
                    pool_.acquire(payload)});
  ++in_flight_;
}

std::size_t SlotBuckets::stage(std::uint64_t slot) {
  // The previous table's payloads were consumed by the delivery sub-round
  // that read it; their slots go back to the free list before the headers
  // are dropped.
  for (const StampedHeader& h : staged_) pool_.release(h.ref);
  std::vector<StampedHeader>& bucket = ring_[slot % ring_.size()];
  staged_.clear();
  staged_.swap(bucket);  // the bucket keeps staged_'s old capacity
  // Every slot's delivery loop ends on an empty stage; skip the O(n)
  // offsets rebuild for it (inbox() is never consulted on a zero return).
  if (staged_.empty()) return 0;
  // Group by destination, each destination ascending (tick, seq).  seq is
  // unique, so the order is total and scheduler-independent.  Only 32-byte
  // headers move through the sort; payloads stay in the pool.
  std::sort(staged_.begin(), staged_.end(),
            [](const StampedHeader& a, const StampedHeader& b) {
              if (a.to != b.to) return a.to < b.to;
              if (a.tick != b.tick) return a.tick < b.tick;
              return a.seq < b.seq;
            });
  std::fill(offsets_.begin(), offsets_.end(), 0);
  for (const StampedHeader& m : staged_) {
    MMN_DCHECK((m.tick - 1) / ticks_per_slot_ == slot,
               "bucket ring too small for the delay bound");
    ++offsets_[m.to + 1];
  }
  for (NodeId v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];
  in_flight_ -= staged_.size();
  return staged_.size();
}

RuntimeCore::RuntimeCore(const Graph& g, std::uint64_t seed,
                         std::unique_ptr<Scheduler> scheduler,
                         std::unique_ptr<ChannelDiscipline> discipline)
    : graph_(&g),
      scheduler_(scheduler ? std::move(scheduler)
                           : std::make_unique<SerialScheduler>()),
      discipline_(discipline ? std::move(discipline)
                             : std::make_unique<FreeForAllDiscipline>()) {
  const NodeId n = g.num_nodes();
  // Views are O(n) pointer setup over the graph's shared CSR arena — no
  // per-node adjacency copy, no per-node edge index (see graph/graph.hpp).
  views_.resize(n);
  rngs_.reserve(n);
  Rng root(seed);
  for (NodeId v = 0; v < n; ++v) {
    views_[v] = LocalView{v, n, &g};
    rngs_.push_back(root.fork(v));
  }
  shards_.resize(scheduler_->shards());
  arena_.reset(n, scheduler_->shards());
  discipline_->reset(n);
}

SlotObservation RuntimeCore::resolve_slot() {
  const SlotObservation obs =
      discipline_->slot(slot_writes_, channel_, metrics_);
  slot_writes_.clear();
  return obs;
}

void RuntimeCore::run_round(Scheduler::NodeFn fn) {
  scheduler_->for_each_node(num_nodes(), fn);
  for (ShardBuffer& sb : shards_) {
    for (ChannelWrite& w : sb.channel_writes) {
      slot_writes_.push_back(std::move(w));
    }
    sb.channel_writes.clear();
    metrics_.p2p_messages += sb.p2p_sent;
    sb.p2p_sent = 0;
  }
  slot_ = resolve_slot();
  arena_.flip(shards_);  // clears the shard outboxes, recycles the pools
  ++round_;
  ++metrics_.rounds;
}

void RuntimeCore::commit_async_phase() {
  for (ShardBuffer& sb : shards_) {
    for (ChannelWrite& w : sb.channel_writes) {
      slot_writes_.push_back(std::move(w));
    }
    for (const AsyncMsgHeader& send : sb.async_outbox) {
      slot_buckets_.push(send, sb.pool[send.ref]);
    }
    metrics_.p2p_messages += sb.p2p_sent;
    sb.clear_round();
  }
}

}  // namespace mmn::sim
