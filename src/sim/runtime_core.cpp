#include "sim/runtime_core.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "sim/fault.hpp"
#include "support/check.hpp"
#include "support/simd.hpp"

namespace mmn::sim {

// The strided histograms in flip/stage read the `to` field straight out of
// the packed header arrays; pin the layout they assume.
static_assert(offsetof(MsgHeader, to) == 0 && sizeof(MsgHeader) == 16,
              "flip's histogram reads `to` at offset 0, stride 16");
static_assert(offsetof(StampedHeader, to) == 16 && sizeof(StampedHeader) == 32,
              "stage's histogram reads `to` at offset 16, stride 32");

std::vector<ShardOutstanding> initial_outstanding(
    const std::vector<char>& flags, unsigned shards) {
  std::vector<ShardOutstanding> counts(shards);
  const auto n = static_cast<NodeId>(flags.size());
  for (unsigned s = 0; s < shards; ++s) {
    const auto [first, last] = Scheduler::shard_range(n, s, shards);
    for (NodeId v = first; v < last; ++v) {
      counts[s].count += flags[v] ? 0 : 1;
    }
  }
  return counts;
}

void MessageArena::reset(NodeId n, unsigned shards) {
  n_ = n;
  empty_ = true;
  bytes_moved_ = 0;
  buf_.clear();
  next_buf_.clear();
  offsets_.assign(n_ + 1, 0);
  next_offsets_.assign(n_ + 1, 0);
  cursor_.assign(n_, 0);
  scratch_.clear();
  pools_.assign(shards, {});
  next_pools_.assign(shards, {});
}

void MessageArena::flip(std::vector<ShardBuffer>& shards) {
  MMN_ASSERT(shards.size() == pools_.size(),
             "arena was reset for a different shard count");
  std::size_t total = 0;
  std::uint64_t payload_bytes = 0;
  for (const ShardBuffer& sb : shards) {
    total += sb.outbox.size();
    payload_bytes += sb.pool_bytes;
  }
  // Message-free rounds (channel-only stages, barrier quiescence) skip the
  // O(n) offset work entirely: after one empty flip both offset buffers are
  // all-zero and both delivery buffers empty, so a second consecutive empty
  // flip is a no-op — every inbox span is already empty, and the shard
  // pools hold nothing live to recycle (payloads only enter through sends,
  // and every send files a header).
  if (total == 0) {
    if (empty_) return;
    std::fill(next_offsets_.begin(), next_offsets_.end(), 0);
    next_buf_.clear();
    for (unsigned s = 0; s < shards.size(); ++s) {
      shards[s].pool.swap(next_pools_[s]);
      shards[s].pool_used = 0;
      shards[s].pool_bytes = 0;
    }
    buf_.swap(next_buf_);
    offsets_.swap(next_offsets_);
    pools_.swap(next_pools_);
    empty_ = true;
    return;
  }
  empty_ = false;
  bytes_moved_ +=
      total * (sizeof(MsgHeader) + sizeof(Received)) + payload_bytes;
  next_buf_.resize(total);

  // POOL STABILITY: both paths below hoist sb.pool.data() and resolve every
  // header against it.  flip runs single-threaded after the round barrier
  // and calls back into no node code, so no send can grow a pool mid-flip;
  // the per-header DCHECK makes a stale ref (a header staged against a pool
  // that was since recycled) fault loudly in debug builds instead of
  // reading recycled payload memory.

  if (total < n_ / 8) {
    // Sparse round: far fewer messages than nodes.  The dense path below
    // pays three O(n) passes over the counters no matter how few headers
    // there are; here we sort the headers themselves — by destination with
    // the serial send position as tie-break, i.e. exactly the counting
    // sort's stable order — and write the monotone offset table in one
    // pass.  Delivery records are resolved pre-sort because headers from
    // different shards point into different pools.
    scratch_.clear();
    std::uint32_t rank = 0;
    for (ShardBuffer& sb : shards) {
      const Packet* pool = sb.pool.data();
      for (const MsgHeader& h : sb.outbox) {
        MMN_DCHECK(h.ref < sb.pool_used,
                   "stale PacketRef: header points past the staged pool");
        scratch_.push_back(
            SparseEntry{h.to, rank++, Received{h.from, h.via, pool + h.ref}});
      }
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                if (a.to != b.to) return a.to < b.to;
                return a.rank < b.rank;
              });
    NodeId next_node = 0;
    for (std::uint32_t i = 0; i < total; ++i) {
      const NodeId to = scratch_[i].to;
      while (next_node <= to) next_offsets_[next_node++] = i;
      next_buf_[i] = scratch_[i].r;
    }
    const auto total32 = static_cast<std::uint32_t>(total);
    while (next_node <= n_) next_offsets_[next_node++] = total32;
  } else {
    // Dense round: histogram destinations over all shards, turn counts into
    // scatter offsets with an exclusive prefix sum (both through the
    // runtime-dispatched SIMD kernels), then scatter stably — shards
    // ascend, each outbox in send order, together the exact serial send
    // order, so inbox contents are scheduler-independent.  Only the 16-byte
    // headers move; the buffer swap below transfers ownership of the
    // payload block without touching a byte of it.
    std::fill(cursor_.begin(), cursor_.end(), 0);
    for (const ShardBuffer& sb : shards) {
      if (sb.outbox.empty()) continue;
      simd::histogram_u32_strided(sb.outbox.data(), sizeof(MsgHeader),
                                  sb.outbox.size(), cursor_.data());
    }
    [[maybe_unused]] const std::uint32_t counted =
        simd::exclusive_prefix_sum_u32(cursor_.data(), n_);
    MMN_DCHECK(counted == total, "histogram lost headers");
    std::memcpy(next_offsets_.data(), cursor_.data(),
                n_ * sizeof(std::uint32_t));
    next_offsets_[n_] = static_cast<std::uint32_t>(total);
    for (ShardBuffer& sb : shards) {
      const Packet* pool = sb.pool.data();
      for (const MsgHeader& h : sb.outbox) {
        MMN_DCHECK(h.ref < sb.pool_used,
                   "stale PacketRef: header points past the staged pool");
        next_buf_[cursor_[h.to]++] = Received{h.from, h.via, pool + h.ref};
      }
    }
  }

  for (unsigned s = 0; s < shards.size(); ++s) {
    ShardBuffer& sb = shards[s];
    sb.outbox.clear();
    // Recycle: the freshly staged payload buffer moves into next_pools_ (it
    // backs next_buf_, the round about to run); the shard gets the buffer
    // from two flips ago back — no longer referenced — with its slots held
    // at the high-water mark (pool_used rewinds to 0; the stale contents
    // are overwritten live-prefix-first by the next round's staging), so
    // steady-state staging never allocates or zero-fills.
    sb.pool.swap(next_pools_[s]);
    sb.pool_used = 0;
    sb.pool_bytes = 0;
  }
  buf_.swap(next_buf_);
  offsets_.swap(next_offsets_);
  pools_.swap(next_pools_);
}

void SlotBuckets::reset(NodeId n, std::uint64_t ticks_per_slot,
                        std::uint64_t ring_slots) {
  MMN_REQUIRE(ticks_per_slot >= 1, "need at least one tick per slot");
  MMN_REQUIRE(ring_slots >= 2, "bucket ring needs at least two slots");
  n_ = n;
  ticks_per_slot_ = ticks_per_slot;
  next_seq_ = 0;
  in_flight_ = 0;
  ring_.assign(ring_slots, {});
  staged_.clear();
  offsets_.assign(n_ + 1, 0);
  cursor_.assign(n_, 0);
  pool_.reset();
}

PacketRef SlotBuckets::push(const AsyncMsgHeader& send, const Packet& payload) {
  MMN_DCHECK(send.due_tick >= 1, "delivery tick predates the first slot");
  const PacketRef pooled = pool_.acquire(payload);
  const std::uint64_t due_slot = (send.due_tick - 1) / ticks_per_slot_;
  ring_[due_slot % ring_.size()].push_back(StampedHeader{
      send.due_tick, next_seq_++, send.to, send.from, send.via, pooled});
  ++in_flight_;
  return pooled;
}

void SlotBuckets::push_shared(const AsyncMsgHeader& send, PacketRef pooled) {
  MMN_DCHECK(send.due_tick >= 1, "delivery tick predates the first slot");
  pool_.add_ref(pooled);
  const std::uint64_t due_slot = (send.due_tick - 1) / ticks_per_slot_;
  ring_[due_slot % ring_.size()].push_back(StampedHeader{
      send.due_tick, next_seq_++, send.to, send.from, send.via, pooled});
  ++in_flight_;
}

std::size_t SlotBuckets::stage(std::uint64_t slot) {
  // The previous table's payloads were consumed by the delivery sub-round
  // that read it; each header drops its reader — an interned broadcast
  // slot frees only when the LAST sharing header releases it.
  for (const StampedHeader& h : staged_) pool_.release(h.ref);
  std::vector<StampedHeader>& bucket = ring_[slot % ring_.size()];
  staged_.clear();
  // Every slot's delivery loop ends on an empty stage; skip the O(n)
  // offsets rebuild for it (inbox() is never consulted on a zero return).
  if (bucket.empty()) return 0;
  const std::size_t m = bucket.size();
  // Radix partition by destination: histogram + exclusive prefix sum
  // (runtime-dispatched SIMD kernels) and a stable scatter.  Bucket order
  // is ascending seq — seqs are stamped at push in commit order — so each
  // destination's run lands already seq-sorted; only runs longer than one
  // message still need a (tick, seq) sort, and those are short.  The table
  // is identical to a global sort by (to, tick, seq): seq is unique, so
  // the order is total and scheduler-independent.  Only 32-byte headers
  // move; payloads stay in the pool.
  std::fill(cursor_.begin(), cursor_.end(), 0);
  simd::histogram_u32_strided(
      reinterpret_cast<const char*>(bucket.data()) + offsetof(StampedHeader, to),
      sizeof(StampedHeader), m, cursor_.data());
  [[maybe_unused]] const std::uint32_t counted =
      simd::exclusive_prefix_sum_u32(cursor_.data(), n_);
  MMN_DCHECK(counted == m, "histogram lost headers");
  std::memcpy(offsets_.data(), cursor_.data(), n_ * sizeof(std::uint32_t));
  offsets_[n_] = static_cast<std::uint32_t>(m);
  // Explicit doubling: resize on a cleared vector grows to exactly m (no
  // geometric overshoot), which would turn every new per-slot peak into a
  // steady-state allocation.
  if (staged_.capacity() < m) {
    staged_.reserve(std::max(m, staged_.capacity() * 2));
  }
  staged_.resize(m);
  for (const StampedHeader& h : bucket) {
    MMN_DCHECK((h.tick - 1) / ticks_per_slot_ == slot,
               "bucket ring too small for the delay bound");
    staged_[cursor_[h.to]++] = h;
  }
  bucket.clear();  // keeps its high-water capacity
  std::size_t i = 0;
  while (i < m) {
    const NodeId to = staged_[i].to;
    std::size_t j = i + 1;
    while (j < m && staged_[j].to == to) ++j;
    if (j - i > 1) {
      std::sort(staged_.begin() + static_cast<std::ptrdiff_t>(i),
                staged_.begin() + static_cast<std::ptrdiff_t>(j),
                [](const StampedHeader& a, const StampedHeader& b) {
                  if (a.tick != b.tick) return a.tick < b.tick;
                  return a.seq < b.seq;
                });
    }
    i = j;
  }
  in_flight_ -= m;
  return m;
}

RuntimeCore::RuntimeCore(const Graph& g, std::uint64_t seed,
                         std::unique_ptr<Scheduler> scheduler,
                         std::unique_ptr<ChannelDiscipline> discipline)
    : graph_(&g),
      scheduler_(scheduler ? std::move(scheduler)
                           : std::make_unique<SerialScheduler>()),
      discipline_(discipline ? std::move(discipline)
                             : std::make_unique<FreeForAllDiscipline>()) {
  const NodeId n = g.num_nodes();
  // Views are O(n) pointer setup over the graph's shared CSR arena — no
  // per-node adjacency copy, no per-node edge index (see graph/graph.hpp).
  views_.resize(n);
  rngs_.reserve(n);
  Rng root(seed);
  for (NodeId v = 0; v < n; ++v) {
    views_[v] = LocalView{v, n, &g};
    rngs_.push_back(root.fork(v));
  }
  shards_.resize(scheduler_->shards());
  latency_.reset(scheduler_->shards());
  for (unsigned s = 0; s < scheduler_->shards(); ++s) {
    shards_[s].latency = &latency_.block(s);
  }
  arena_.reset(n, scheduler_->shards());
  discipline_->reset(n);
}

SlotObservation RuntimeCore::resolve_slot() {
  const SlotObservation obs =
      discipline_->slot(slot_writes_, channel_, metrics_);
  slot_writes_.clear();
  return obs;
}

void RuntimeCore::run_round(Scheduler::NodeFn fn) {
  scheduler_->for_each_node(num_nodes(), fn);
  for (ShardBuffer& sb : shards_) {
    for (ChannelWrite& w : sb.channel_writes) {
      slot_writes_.push_back(std::move(w));
    }
    sb.channel_writes.clear();
    metrics_.p2p_messages += sb.p2p_sent;
    sb.p2p_sent = 0;
    if (faults_ != nullptr) {
      faults_->stats().drops += sb.fault_drops;
      sb.fault_drops = 0;
    }
  }
  slot_ = resolve_slot();
  arena_.flip(shards_);  // clears the shard outboxes, recycles the pools
  ++round_;
  ++metrics_.rounds;
}

void RuntimeCore::commit_async_phase() {
  constexpr PacketRef kNoRef = static_cast<PacketRef>(-1);
  for (ShardBuffer& sb : shards_) {
    for (ChannelWrite& w : sb.channel_writes) {
      slot_writes_.push_back(std::move(w));
    }
    // Broadcast interning: AsyncContext::broadcast stages ONE payload
    // shared by a run of consecutive headers.  Shard refs are unique per
    // stage_packet call, so a repeated ref can only be such a run — the
    // first header files the payload into the bucket pool, the rest share
    // its refcounted slot.
    PacketRef prev_src = kNoRef;
    PacketRef prev_pooled = 0;
    for (const AsyncMsgHeader& send : sb.async_outbox) {
      if (send.ref == prev_src) {
        slot_buckets_.push_shared(send, prev_pooled);
      } else {
        prev_pooled = slot_buckets_.push(send, sb.pool[send.ref]);
        prev_src = send.ref;
      }
    }
    metrics_.p2p_messages += sb.p2p_sent;
    if (faults_ != nullptr) {
      faults_->stats().drops += sb.fault_drops;
    }
    sb.clear_round();
  }
}

}  // namespace mmn::sim
