// The multiaccess collision channel (Section 2).
//
// Per slot, every node may submit at most one write.  The slot resolves to
//   idle      — zero writers,
//   success   — one writer; its payload is heard by every node,
//   collision — two or more writers; only the fact of collision is heard.
// Every node observes the same outcome.  This is exactly the formal object
// the paper analyzes; counted slots therefore equal model time.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"
#include "sim/message.hpp"
#include "support/metrics.hpp"

namespace mmn::sim {

enum class SlotState : std::uint8_t { kIdle, kSuccess, kCollision };

struct SlotObservation {
  SlotState state = SlotState::kIdle;
  Packet payload;            ///< meaningful only when state == kSuccess
  NodeId writer = kNoNode;   ///< meaningful only when state == kSuccess

  bool idle() const { return state == SlotState::kIdle; }
  bool success() const { return state == SlotState::kSuccess; }
  bool collision() const { return state == SlotState::kCollision; }
};

/// A channel write staged for end-of-slot resolution, as handed to the
/// ChannelDiscipline (sim/channel_discipline.hpp).  The discipline receives
/// the full write list of every slot — the collision set — so no
/// channel-side bookkeeping of individual writers is needed beyond the
/// first (the only one whose payload can ever be heard).
struct ChannelWrite {
  NodeId node = kNoNode;
  Packet packet;
};

class Channel {
 public:
  /// Registers a write for the current slot.  At most one per node per slot.
  void write(NodeId node, const Packet& packet);

  /// Resolves the current slot, updates `metrics`, and resets for the next.
  SlotObservation resolve(Metrics& metrics);

  /// Number of writers registered so far in the current slot.
  std::uint32_t writers() const { return writers_; }

 private:
  std::uint32_t writers_ = 0;
  NodeId first_writer_ = kNoNode;
  Packet first_payload_;
};

}  // namespace mmn::sim
