// Channel disciplines: per-slot medium-access policies over the channel.
//
// The paper's multi-access channel (Section 2) resolves every slot by the
// free-for-all collision rule, but its constructions are really access
// *disciplines* layered on that channel: TDMA scheduling (Theorem 2's
// broadcast baseline), Capetanakis tree resolution (Sections 5 and 6), and
// the Section 7.2 unslotted-to-slotted busy-tone emulation.  A
// ChannelDiscipline makes that layer explicit: RuntimeCore hands it the
// writes registered for the slot (in ascending node order — the committed
// shard-merge order, which equals the serial emission order) and the
// discipline decides which of them actually contend, feeds those into the
// Channel, and resolves.
//
// Determinism: a discipline's state may evolve only as a function of the
// committed write sequence and the slot outcomes.  Because the write
// sequence is scheduler-independent (see sim/runtime_core.hpp), every
// discipline is bit-identical under the serial and parallel schedulers, on
// both engines — test_scheduler_equiv enforces this over the whole scenario
// registry.
//
// Deferring disciplines (TDMA, Capetanakis) queue a write until the policy
// grants the medium, so a node's transmission may land slots after its
// write.  That is incompatible with protocols that read the *absence* of a
// transmission as information in the same slot — notably the busy-tone
// synchronizer (Section 7.1), whose idle-slot pulse must certify that no
// node holds an unacknowledged message.  Such protocols must run under a
// non-deferring discipline (free-for-all or unslotted); scenario::run
// enforces this for asynchronous runs via defers().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "channel/capetanakis.hpp"
#include "graph/graph.hpp"
#include "sim/channel.hpp"
#include "sim/unslotted.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

/// Per-slot medium-access policy.  One instance per run, owned by
/// RuntimeCore; reset(n) is called once before the first slot.
class ChannelDiscipline {
 public:
  virtual ~ChannelDiscipline() = default;

  virtual const char* name() const = 0;

  /// Called once with the realized network size before the run starts.
  virtual void reset(NodeId n) = 0;

  /// Resolves one slot.  `writes` are the writes registered this slot, in
  /// ascending node order (at most one per node — the engines enforce that).
  /// The discipline feeds the contending subset into `channel`, resolves,
  /// and returns the outcome every node observes.
  virtual SlotObservation slot(std::span<const ChannelWrite> writes,
                               Channel& channel, Metrics& metrics) = 0;

  /// Writes accepted but not yet transmitted (deferred by the policy).
  virtual std::size_t backlog() const { return 0; }

  /// True if the policy may transmit a write in a later slot than the one
  /// it was registered for.  Deferring disciplines cannot drive protocols
  /// that read idle slots as "nobody is busy" (the synchronizer).
  virtual bool defers() const { return false; }

  /// Withdraws node v's deferred channel state (sim/fault.hpp calls this
  /// when v crashes): its pending/queued writes vanish from the backlog so
  /// a crashed station never transmits from beyond the grave.  Called
  /// single-threaded at a slot boundary; must not allocate.  Non-deferring
  /// disciplines hold no state, hence the no-op default.
  virtual void stifle(NodeId v) { (void)v; }
};

/// The named disciplines, for scenario registration and factories.
enum class DisciplineKind : std::uint8_t {
  kFreeForAll,     ///< every write contends; the bare Section 2 channel
  kTdma,           ///< round-robin slot ownership; writes wait for their slot
  kCapetanakis,    ///< tree resolution: collisions split the pending id set
  kUnslotted,      ///< Section 7.2 busy-tone emulation; outcome-preserving
  kPseudoBayesian, ///< Rivest stabilized Aloha over the pending-station set
  kReservation,    ///< multimedia MAC: reserved grants for voice/video,
                   ///< free-for-all contention for data
};

const char* discipline_name(DisciplineKind kind);

/// Builds a fresh discipline instance.  `unslotted` configures the
/// kUnslotted emulation and is ignored by the other kinds; `seed` feeds the
/// kPseudoBayesian transmission lottery (the other kinds draw nothing —
/// kUnslotted's jitter stream is pinned by its own config, whose seed
/// participates in golden digests and must not drift with the run seed).
std::unique_ptr<ChannelDiscipline> make_discipline(
    DisciplineKind kind, const UnslottedConfig& unslotted = UnslottedConfig{},
    std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

/// The seed behavior: every registered write goes straight to the channel.
class FreeForAllDiscipline final : public ChannelDiscipline {
 public:
  const char* name() const override { return "freeforall"; }
  void reset(NodeId) override {}
  SlotObservation slot(std::span<const ChannelWrite> writes, Channel& channel,
                       Metrics& metrics) override;
};

/// Round-robin TDMA: slot s belongs to node s % n.  A write waits as the
/// node's pending transmission until its slot comes around; a re-write
/// before then replaces the pending packet (the node re-keys its request —
/// queues stay O(1) per node).  With k nodes contending from slot 0, all k
/// resolve within one cycle of n slots and nothing ever collides.
class TdmaDiscipline final : public ChannelDiscipline {
 public:
  const char* name() const override { return "tdma"; }
  void reset(NodeId n) override;
  SlotObservation slot(std::span<const ChannelWrite> writes, Channel& channel,
                       Metrics& metrics) override;
  std::size_t backlog() const override { return backlog_; }
  bool defers() const override { return true; }
  void stifle(NodeId v) override;

 private:
  NodeId n_ = 0;
  std::uint64_t slot_ = 0;
  std::size_t backlog_ = 0;
  std::vector<std::optional<Packet>> pending_;  // per node, replace semantics
};

/// Capetanakis tree scheduling: pending writes are resolved in epochs.  An
/// epoch snapshots the waiting id set and runs one depth-first traversal of
/// the id-space tree (channel/capetanakis.hpp): every pending id inside the
/// probe interval transmits, a collision splits the interval, a success
/// retires the writer.  Writes arriving mid-epoch from new ids wait for the
/// next epoch; an epoch of k contenders with contiguous ids costs exactly
/// 2k - 1 probe slots (k successes, k - 1 collisions).
class CapetanakisDiscipline final : public ChannelDiscipline {
 public:
  const char* name() const override { return "capetanakis"; }
  void reset(NodeId n) override;
  SlotObservation slot(std::span<const ChannelWrite> writes, Channel& channel,
                       Metrics& metrics) override;
  std::size_t backlog() const override { return epoch_.size() + waiting_.size(); }
  bool defers() const override { return true; }
  void stifle(NodeId v) override;

 private:
  NodeId n_ = 0;
  std::map<NodeId, Packet> epoch_;    // contenders of the running traversal
  std::map<NodeId, Packet> waiting_;  // arrivals for the next epoch
  std::optional<CapetanakisResolver> resolver_;
};

/// Section 7.2 busy-tone emulation, promoted from the standalone
/// sim/unslotted.cpp demo into a discipline: outcomes are exactly the
/// free-for-all outcomes (the slotted/unslotted equivalence the section
/// proves), but the discipline additionally simulates the continuous-time
/// envelope — per-writer reaction-delay jitter, fixed-length transmissions,
/// and the emergent boundary one idle gap after the last carrier drops —
/// and accounts the emergent channel time in ticks(), surfaced to run
/// output as Metrics::channel_ticks.
class UnslottedDiscipline final : public ChannelDiscipline {
 public:
  explicit UnslottedDiscipline(const UnslottedConfig& config)
      : config_(config), rng_(config.seed) {}

  const char* name() const override { return "unslotted"; }
  void reset(NodeId n) override;
  SlotObservation slot(std::span<const ChannelWrite> writes, Channel& channel,
                       Metrics& metrics) override;

  /// Emergent continuous time consumed so far (the latest slot boundary).
  std::uint64_t ticks() const { return boundary_; }

 private:
  UnslottedConfig config_;
  Rng rng_;
  NodeId n_ = 0;
  std::uint64_t boundary_ = 0;
};

/// Rivest's pseudo-Bayesian stabilized Aloha as a discipline-level MAC (the
/// node-side formulation lives in channel/pseudo_bayesian.hpp; here the
/// policy itself holds the pending stations, which is what an open-loop
/// workload needs — stations just keep re-writing their head-of-line packet
/// and the discipline is the scheduler).  Every slot, each pending station
/// transmits with probability min(1, 1/nu); the shared backlog estimate nu
/// is updated from the public outcome (collision: nu += 1/(e-2); otherwise
/// nu = max(1, nu-1)).  Stationary throughput approaches 1/e.
///
/// Determinism: slot() runs single-threaded after the round barrier, the
/// pending set is iterated in ascending node id, and the lottery draws come
/// from the discipline's own stream seeded at construction — a pure
/// function of the committed write sequence and slot outcomes, so the
/// scheduler-equivalence argument holds unchanged.
class PseudoBayesianDiscipline final : public ChannelDiscipline {
 public:
  explicit PseudoBayesianDiscipline(std::uint64_t seed) : rng_(seed) {}

  const char* name() const override { return "pseudobayes"; }
  void reset(NodeId n) override;
  SlotObservation slot(std::span<const ChannelWrite> writes, Channel& channel,
                       Metrics& metrics) override;
  std::size_t backlog() const override { return backlog_; }
  bool defers() const override { return true; }
  void stifle(NodeId v) override;

 private:
  Rng rng_;
  NodeId n_ = 0;
  double nu_ = 1.0;
  std::size_t backlog_ = 0;
  std::vector<std::optional<Packet>> pending_;  // per node, replace semantics
};

/// The PAPERS.md multimedia MAC: reservation minislots for the
/// delay-sensitive classes, stabilized contention for the rest.  Writes
/// whose packet tag carries a reserved QosClass (voice/video — see
/// qos_of_tag in sim/message.hpp; untagged legacy packets read as voice)
/// enter a collision-free FIFO grant queue: the station's request is
/// assumed signalled over per-slot reservation minislots, which the model
/// treats as a free side channel (exactly like the Section 7.2 busy tone —
/// minislot traffic is below the slot's payload granularity).  A non-empty
/// queue owns the slot and its head transmits exclusively; only queue-free
/// slots fall through to the data lane, which runs the same pseudo-Bayesian
/// lottery as PseudoBayesianDiscipline over the pending data stations.
/// Reserved delay is therefore bounded by the queue occupancy (at most the
/// number of reserved stations) independent of data load, while data keeps
/// the leftover slots at ~1/e efficiency and starves first under overload —
/// the bounded-delay/starvation split tests/test_traffic.cpp pins.
class ReservationDiscipline final : public ChannelDiscipline {
 public:
  explicit ReservationDiscipline(std::uint64_t seed) : rng_(seed) {}

  const char* name() const override { return "reservation"; }
  void reset(NodeId n) override;
  SlotObservation slot(std::span<const ChannelWrite> writes, Channel& channel,
                       Metrics& metrics) override;
  std::size_t backlog() const override { return queue_size_ + data_backlog_; }
  bool defers() const override { return true; }
  void stifle(NodeId v) override;

 private:
  Rng rng_;                     // data-lane lottery draws
  NodeId n_ = 0;
  std::vector<NodeId> queue_;   // FIFO ring of granted stations, capacity n
  std::size_t queue_head_ = 0;
  std::size_t queue_size_ = 0;
  std::vector<char> queued_;    // per node: sitting in queue_?
  std::vector<Packet> pending_; // per queued node, replace semantics
  double nu_ = 1.0;             // data lane's shared backlog estimate
  std::size_t data_backlog_ = 0;
  std::vector<std::optional<Packet>> data_pending_;  // replace semantics
};

}  // namespace mmn::sim
