// Asynchronous multimedia-network engine (Section 7).
//
// The point-to-point half is asynchronous: each message experiences an
// arbitrary (here: pseudo-random, bounded) delay.  The channel remains
// slotted — Section 7.2 shows any unslotted channel can be slotted with an
// FDMA busy-tone side channel, so we model the post-slotting abstraction
// directly.  Internally time advances in integer ticks with kTicksPerSlot
// ticks per slot; message delays are drawn uniformly from [1, max_delay_slots
// * kTicksPerSlot] ticks.  With max_delay_slots == 1 this realizes the
// paper's time-accounting assumption (delay <= one slot).
//
// AsyncProcess is event-driven: on_message fires at delivery time (inside a
// slot), on_slot fires at every slot boundary with the outcome of the slot
// that just ended.  The busy-tone synchronizer (core/synchronizer.hpp) runs
// synchronous Processes on top of this engine.
//
// The engine is the slot-phase stepping policy over sim::RuntimeCore: the
// views, RNG streams, channel, and metrics all live in the shared core —
// identical state to the synchronous engine.  In-flight messages are filed
// in the core's SlotBuckets arena (tick- and seq-stamped), and every slot
// executes as a fixed phase sequence — delivery sub-rounds iterated to a
// fixed point for intra-slot cascades, channel resolution at the boundary,
// then the on_slot fan-out — each phase sharded over the same Serial /
// ParallelScheduler as a synchronous round, with all effects staged per
// shard and merged in ascending shard order.  Parallel asynchronous runs
// are therefore bit-identical to serial ones for the same seed (the
// determinism argument is spelled out in ARCHITECTURE.md).
//
// Delivery-order semantics: within one sub-round a node handles its
// messages in ascending (tick, seq); a message sent *during* delivery that
// lands in the same slot is handled in a later sub-round — causal order —
// even if its delivery tick is smaller than messages already handled.  This
// is the one (deterministic, documented) refinement over the retired global
// event queue, which interleaved intra-slot cascades by raw tick.  Both
// orders realize the same asynchronous model (delays are arbitrary within
// the bound); slot counts, message counts, channel outcomes, and every
// synchronizer-driven workload's per-node trace are preserved exactly, and
// the pinned-seed golden cases in test_scheduler_equiv hold the policy to
// that.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "sim/runtime_core.hpp"
#include "support/metrics.hpp"

namespace mmn::sim {

class AsyncContext;

class AsyncProcess {
 public:
  virtual ~AsyncProcess() = default;

  /// Called once at time zero.
  virtual void start(AsyncContext& ctx) = 0;

  /// Called when a point-to-point message is delivered.
  virtual void on_message(const Received& msg, AsyncContext& ctx) = 0;

  /// Called at each slot boundary with the outcome of the ended slot.
  virtual void on_slot(const SlotObservation& obs, AsyncContext& ctx) = 0;

  virtual bool finished() const = 0;
};

/// Per-phase context of one node — a concrete final class (no virtual
/// dispatch on the send path; the virtual seam is the AsyncProcess handler
/// itself).  Every externally visible effect — sends (with their delivery
/// tick already drawn from the node's own RNG stream), channel writes,
/// message counts — is staged into the shard's buffer; the core commits
/// shards in ascending order after the phase barrier, so the trace is
/// scheduler-independent.  `now` is the simulated tick the node is acting
/// at: the delivery tick of the message in hand, or the boundary tick
/// during the on_slot fan-out.
class AsyncContext final {
 public:
  /// `faults` is the run's epoch overlay when fault injection is installed
  /// (read-only during a phase — events apply at slot boundaries), null on
  /// the fault-free fast path.
  AsyncContext(const LocalView& view, Rng& rng, ShardBuffer& shard,
               std::uint64_t slot_index, std::uint32_t max_delay_ticks,
               std::uint64_t* last_write_slot, std::uint64_t now,
               const EpochOverlay* faults = nullptr)
      : view_(&view),
        rng_(&rng),
        shard_(&shard),
        last_write_slot_(last_write_slot),
        faults_(faults),
        slot_index_(slot_index),
        now_(now),
        max_delay_ticks_(max_delay_ticks) {}

  AsyncContext(const AsyncContext&) = delete;
  AsyncContext& operator=(const AsyncContext&) = delete;

  const LocalView& view() const { return *view_; }
  Rng& rng() { return *rng_; }

  /// Index of the slot currently in progress.
  std::uint64_t slot_index() const { return slot_index_; }

  /// Sends a message; it is delivered after a random bounded delay.
  void send(EdgeId edge, const Packet& packet) {
    const int idx = view_->link_index(edge);
    MMN_REQUIRE(idx >= 0, "send over a link not incident to this node");
    MMN_REQUIRE(packet.size() <= Packet::kMaxWords,
                "packet exceeds the O(log n) bound");
    const Neighbor nb = view_->links()[static_cast<std::uint32_t>(idx)];
    if (faults_ != nullptr &&
        (!faults_->link_alive(edge) || !faults_->node_alive(nb.to)))
        [[unlikely]] {
      // Dropped at the sender; no delay is drawn — the packet never enters
      // the medium.  (The overlay is identical under every scheduler, so
      // the per-node RNG streams stay in lockstep too.)
      ++shard_->fault_drops;
      return;
    }
    const std::uint64_t delay = 1 + rng_->next_below(max_delay_ticks_);
    shard_->async_outbox.push_back(AsyncMsgHeader{
        now_ + delay, nb.to, view_->self, edge, shard_->stage_packet(packet)});
    ++shard_->p2p_sent;
  }

  /// Sends one packet to every neighbor, staging ONE pooled payload plus
  /// deg(v) headers that share its ref (interned by commit_async_phase into
  /// a single refcounted PacketPool slot).  Each neighbor still gets its
  /// own delay draw, in ascending link order — exactly the RNG consumption
  /// and header trace of `for (nb : links()) send(nb.edge, packet)`, so
  /// converting a manual loop is bit-identical.
  void broadcast(const Packet& packet) {
    MMN_REQUIRE(packet.size() <= Packet::kMaxWords,
                "packet exceeds the O(log n) bound");
    const NeighborRange links = view_->links();
    const std::size_t deg = links.size();
    if (deg == 0) return;
    if (faults_ != nullptr) [[unlikely]] {
      // Fault path mirrors NodeContext::broadcast: per-link liveness gate,
      // payload staged lazily, survivors share one interned ref.  Dead
      // links draw no delay.
      PacketRef ref = 0;
      bool staged = false;
      for (std::size_t i = 0; i < deg; ++i) {
        const Neighbor nb = links[i];
        if (!faults_->link_alive(nb.edge) || !faults_->node_alive(nb.to)) {
          ++shard_->fault_drops;
          continue;
        }
        if (!staged) {
          ref = shard_->stage_packet(packet);
          staged = true;
        }
        const std::uint64_t delay = 1 + rng_->next_below(max_delay_ticks_);
        shard_->async_outbox.push_back(
            AsyncMsgHeader{now_ + delay, nb.to, view_->self, nb.edge, ref});
        ++shard_->p2p_sent;
      }
      return;
    }
    const PacketRef ref = shard_->stage_packet(packet);
    for (std::size_t i = 0; i < deg; ++i) {
      const Neighbor nb = links[i];
      const std::uint64_t delay = 1 + rng_->next_below(max_delay_ticks_);
      shard_->async_outbox.push_back(
          AsyncMsgHeader{now_ + delay, nb.to, view_->self, nb.edge, ref});
    }
    shard_->p2p_sent += deg;
  }

  /// Registers a write for the slot currently in progress.  Multiple writes
  /// per slot from one node collapse into one transmission: physically the
  /// node is already holding the medium for this slot.  The dedup slot is
  /// node-local state, so staging it here is shard-safe.
  void channel_write(const Packet& packet) {
    MMN_REQUIRE(packet.size() <= Packet::kMaxWords,
                "packet exceeds the O(log n) bound");
    if (*last_write_slot_ == slot_index_) return;
    *last_write_slot_ = slot_index_;
    shard_->channel_writes.push_back(ChannelWrite{view_->self, packet});
  }

  /// Open-loop accounting (sim/traffic.hpp), mirroring NodeContext: counts
  /// fresh arrivals of class `cls` against this node's shard block.
  void note_arrivals(QosClass cls, std::uint64_t count) {
    shard_->latency->note_arrivals(cls, count);
  }

  /// Folds one delivered packet's enqueue->delivery delay (in slots) into
  /// this node's shard block.
  void record_latency(QosClass cls, std::uint64_t delay_slots) {
    shard_->latency->record(cls, delay_slots);
  }

  NodeId self() const { return view_->self; }

  /// Engine-internal: advances the acting tick between deliveries.
  void set_now(std::uint64_t now) { now_ = now; }

 private:
  const LocalView* view_;
  Rng* rng_;
  ShardBuffer* shard_;
  std::uint64_t* last_write_slot_;  ///< this node's write-dedup slot
  const EpochOverlay* faults_ = nullptr;  ///< null => fault-free fast path
  std::uint64_t slot_index_;
  std::uint64_t now_;
  std::uint32_t max_delay_ticks_;
};

using AsyncProcessFactory =
    std::function<std::unique_ptr<AsyncProcess>(const LocalView&)>;

class FaultPlan;
class FaultRuntime;

class AsyncEngine {
 public:
  static constexpr std::uint64_t kTicksPerSlot = 16;

  /// Outcome of the last run()/step() call — the shared engine status
  /// (sim/runtime_core.hpp); the nested alias keeps the PR 2 spelling
  /// `AsyncEngine::RunStatus::kCompleted` working.
  using RunStatus = sim::RunStatus;

  /// max_delay_slots >= 1: upper bound on message delay, in slot lengths.
  /// `g` must outlive the engine — node views are zero-copy windows into
  /// its adjacency arena.
  /// The default scheduler is serial; pass make_scheduler(threads) to shard
  /// the slot phases over a thread pool (bit-identical results).  A null
  /// discipline is the free-for-all channel; a non-null one must not defer
  /// writes if the workload reads idle slots as information (the busy-tone
  /// synchronizer does — see sim/channel_discipline.hpp).
  AsyncEngine(const Graph& g, const AsyncProcessFactory& factory,
              std::uint64_t seed, std::uint32_t max_delay_slots,
              std::unique_ptr<Scheduler> scheduler = nullptr,
              std::unique_ptr<ChannelDiscipline> discipline = nullptr);
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Runs until every process is finished or max_slots slots elapse.  Never
  /// aborts: a protocol that fails to terminate is reported through status()
  /// (== kSlotCapReached), so sweeps over pathological configurations can
  /// observe and skip the run — mirroring how Engine::step exposes the
  /// synchronous round cap.
  Metrics run(std::uint64_t max_slots);

  /// Runs at most `slots` additional slots; returns true once all finished.
  bool step(std::uint64_t slots);

  RunStatus status() const { return status_; }
  const Metrics& metrics() const { return core_.metrics(); }

  /// Installs deterministic fault injection (sim/fault.hpp).  Must be
  /// called before the first slot; events apply at slot boundaries, before
  /// the slot's delivery phase.  Messages already in flight over a link
  /// that dies mid-flight still deliver — faults gate the send commit.
  void install_faults(const FaultPlan& plan);

  /// The installed fault runtime (stats + overlay), or null.
  const FaultRuntime* faults() const { return faults_.get(); }
  FaultRuntime* faults() { return faults_.get(); }

  /// Per-class delay/backlog accounting of open-loop workloads
  /// (sim/traffic.hpp); untouched by closed-loop protocols.
  const LatencyRecorder& latency() const { return core_.latency(); }

  /// Direct access to a node's process (for reading results and tests).
  /// Termination is detected incrementally, like the synchronous engine:
  /// finished() must only change inside start/on_message/on_slot calls.
  AsyncProcess& process(NodeId v);
  const AsyncProcess& process(NodeId v) const;
  NodeId num_nodes() const { return core_.num_nodes(); }

 private:
  bool all_finished() const { return none_outstanding(outstanding_); }
  void start_processes();
  void start_node(unsigned shard, NodeId v);
  void run_delivery_phase();
  void deliver_node(unsigned shard, NodeId v);
  void run_slot_fanout(const SlotObservation& obs);
  void fanout_node(unsigned shard, NodeId v, const SlotObservation& obs);
  void note_finished(unsigned shard, NodeId v);

  RuntimeCore core_;
  std::vector<std::unique_ptr<AsyncProcess>> processes_;
  std::unique_ptr<FaultRuntime> faults_;  // null on the fault-free fast path
  std::vector<std::uint64_t> last_write_slot_;  // per-node write dedup
  std::vector<char> finished_flag_;  // per node; char: shard-safe writes
  std::vector<ShardOutstanding> outstanding_;  // batched finished() probe
  std::uint64_t slot_index_ = 0;
  std::uint32_t max_delay_ticks_;
  bool started_ = false;
  RunStatus status_ = RunStatus::kRunning;
};

}  // namespace mmn::sim
