// Asynchronous multimedia-network engine (Section 7).
//
// The point-to-point half is asynchronous: each message experiences an
// arbitrary (here: pseudo-random, bounded) delay.  The channel remains
// slotted — Section 7.2 shows any unslotted channel can be slotted with an
// FDMA busy-tone side channel, so we model the post-slotting abstraction
// directly.  Internally time advances in integer ticks with kTicksPerSlot
// ticks per slot; message delays are drawn uniformly from [1, max_delay_slots
// * kTicksPerSlot] ticks.  With max_delay_slots == 1 this realizes the
// paper's time-accounting assumption (delay <= one slot).
//
// AsyncProcess is event-driven: on_message fires at delivery time (inside a
// slot), on_slot fires at every slot boundary with the outcome of the slot
// that just ended.  The busy-tone synchronizer (core/synchronizer.hpp) runs
// synchronous Processes on top of this engine.
//
// The engine is the tick-driven stepping policy over sim::RuntimeCore: the
// views, RNG streams, channel, and metrics all live in the shared core —
// identical state to the synchronous engine — while the delivery queue and
// slot clock are the policy here.  Event-driven delivery is inherently
// order-dependent, so this policy always steps serially.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "graph/graph.hpp"
#include "sim/runtime_core.hpp"
#include "support/metrics.hpp"

namespace mmn::sim {

class AsyncContext;

class AsyncProcess {
 public:
  virtual ~AsyncProcess() = default;

  /// Called once at time zero.
  virtual void start(AsyncContext& ctx) = 0;

  /// Called when a point-to-point message is delivered.
  virtual void on_message(const Received& msg, AsyncContext& ctx) = 0;

  /// Called at each slot boundary with the outcome of the ended slot.
  virtual void on_slot(const SlotObservation& obs, AsyncContext& ctx) = 0;

  virtual bool finished() const = 0;
};

class AsyncContext {
 public:
  virtual ~AsyncContext() = default;

  virtual const LocalView& view() const = 0;
  virtual Rng& rng() = 0;

  /// Index of the slot currently in progress.
  virtual std::uint64_t slot_index() const = 0;

  /// Sends a message; it is delivered after a random bounded delay.
  virtual void send(EdgeId edge, const Packet& packet) = 0;

  /// Registers a write for the slot currently in progress.
  virtual void channel_write(const Packet& packet) = 0;

  NodeId self() const { return view().self; }
};

using AsyncProcessFactory =
    std::function<std::unique_ptr<AsyncProcess>(const LocalView&)>;

class AsyncEngine {
 public:
  static constexpr std::uint64_t kTicksPerSlot = 16;

  /// max_delay_slots >= 1: upper bound on message delay, in slot lengths.
  AsyncEngine(const Graph& g, const AsyncProcessFactory& factory,
              std::uint64_t seed, std::uint32_t max_delay_slots);
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Runs until every process is finished; aborts after max_slots otherwise.
  Metrics run(std::uint64_t max_slots);

  AsyncProcess& process(NodeId v);

 private:
  class Context;
  struct PendingMessage {
    std::uint64_t tick = 0;
    std::uint64_t seq = 0;
    NodeId to = kNoNode;
    Received msg;
    bool operator>(const PendingMessage& other) const {
      return tick != other.tick ? tick > other.tick : seq > other.seq;
    }
  };

  bool all_finished() const;
  void deliver_until(std::uint64_t tick);

  RuntimeCore core_;
  std::vector<std::unique_ptr<AsyncProcess>> processes_;
  std::priority_queue<PendingMessage, std::vector<PendingMessage>,
                      std::greater<>>
      pending_;
  std::vector<std::uint64_t> last_write_slot_;  // per-node write dedup
  std::uint64_t now_tick_ = 0;
  std::uint64_t slot_index_ = 0;
  std::uint64_t send_seq_ = 0;
  std::uint32_t max_delay_ticks_;
};

}  // namespace mmn::sim
