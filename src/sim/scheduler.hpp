// Round schedulers: how the per-node work of one lockstep round is executed.
//
// A Scheduler maps the node set [0, n) onto `shards()` contiguous ascending
// ranges and invokes a callback once per node, each shard covering its range
// in ascending node order.  Node code stages all its externally visible
// effects (sends, channel writes, metric counts) into a per-shard buffer;
// RuntimeCore merges the buffers in ascending shard order after the barrier.
// Because shard-major concatenation of ascending per-shard ranges is exactly
// ascending node order, SerialScheduler and ParallelScheduler produce
// bit-identical traces — same inbox orders, same channel outcomes, same
// Metrics — for the same seed.
//
// SerialScheduler   — one shard, the caller's thread (the seed behavior).
// ParallelScheduler — a persistent std::thread pool; one shard per thread,
//                     one generation per round, barrier on completion.
//                     Exceptions thrown by node code are captured and
//                     rethrown on the calling thread (lowest shard first).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace mmn::sim {

class Scheduler {
 public:
  /// The per-node callback of one round: a raw function pointer plus an
  /// untyped environment, invoked once per node.  `shard` identifies the
  /// staging buffer the node's effects must go to.  Must be safe to call
  /// concurrently for nodes of *different* shards (nodes of one shard run
  /// sequentially).  A plain pointer pair — not std::function — so the
  /// per-node call in the scheduler's inner loop is a direct indirect call
  /// with no type-erasure thunk, and building one never allocates.
  struct NodeFn {
    using Fn = void (*)(void* env, unsigned shard, NodeId node);
    Fn fn = nullptr;
    void* env = nullptr;

    void operator()(unsigned shard, NodeId node) const {
      fn(env, shard, node);
    }
  };

  virtual ~Scheduler() = default;

  virtual unsigned shards() const = 0;

  /// Runs fn for every node in [0, n); returns once all nodes ran (barrier).
  virtual void for_each_node(NodeId n, NodeFn fn) = 0;

  virtual const char* name() const = 0;

  /// Contiguous node range [first, last) owned by `shard` of `shards`.
  static std::pair<NodeId, NodeId> shard_range(NodeId n, unsigned shard,
                                               unsigned shards) {
    const std::uint64_t nn = n;
    return {static_cast<NodeId>(nn * shard / shards),
            static_cast<NodeId>(nn * (shard + 1) / shards)};
  }
};

class SerialScheduler final : public Scheduler {
 public:
  unsigned shards() const override { return 1; }
  void for_each_node(NodeId n, NodeFn fn) override;
  const char* name() const override { return "serial"; }
};

class ParallelScheduler final : public Scheduler {
 public:
  /// num_threads >= 1 worker threads; one shard each.
  explicit ParallelScheduler(unsigned num_threads);
  ~ParallelScheduler() override;

  ParallelScheduler(const ParallelScheduler&) = delete;
  ParallelScheduler& operator=(const ParallelScheduler&) = delete;

  unsigned shards() const override { return num_threads_; }
  void for_each_node(NodeId n, NodeFn fn) override;
  const char* name() const override { return "parallel"; }

 private:
  void worker(unsigned shard);

  unsigned num_threads_;
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  NodeId round_n_ = 0;
  NodeFn round_fn_{};  // two raw pointers; copied, never allocates
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;
};

/// threads <= 1 gives the serial scheduler, otherwise a parallel one.
std::unique_ptr<Scheduler> make_scheduler(unsigned threads);

}  // namespace mmn::sim
