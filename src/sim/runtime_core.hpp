// The shared execution substrate of the multimedia-network model.
//
// Both engines — the synchronous lockstep Engine and the tick-driven
// AsyncEngine (Section 7) — simulate the same object: n nodes with local
// views, per-node RNG streams forked from one seed, point-to-point links,
// and one shared collision channel whose slot costs one time unit.
// RuntimeCore owns that substrate exactly once; the engines are thin
// stepping policies over it.
//
// Message delivery uses a double-buffered flat arena: every round's
// deliveries live in ONE contiguous Received buffer with per-node offset
// spans, rebuilt by a stable counting sort from the per-shard send buffers.
// This replaces per-node inbox vectors and their per-round allocation/clear
// churn, and it is what makes parallel execution deterministic: shards are
// contiguous ascending node ranges, so concatenating their buffers in shard
// order reproduces the serial send order bit for bit (see sim/scheduler.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/channel.hpp"
#include "sim/channel_discipline.hpp"
#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

/// One incident link as known locally by a node.
struct Neighbor {
  NodeId id = kNoNode;  ///< the node on the other end
  EdgeId edge = kNoEdge;
  Weight weight = 0;
};

/// A node's a-priori knowledge: its id, its links sorted by ascending weight,
/// and the network size n (assumed known, Section 2; Section 7.3/7.4 shows
/// how to compute/estimate it — see core/size.hpp).
struct LocalView {
  NodeId self = kNoNode;
  NodeId n = 0;
  std::vector<Neighbor> links;  ///< ascending weight

  /// Index into `links` of the given edge, or -1.  O(1) once finalize() ran
  /// (RuntimeCore finalizes every view at construction); hand-built views
  /// fall back to a linear scan.
  int link_index(EdgeId edge) const {
    if (!edge_index_.empty()) {
      const auto it = edge_index_.find(edge);
      return it == edge_index_.end() ? -1 : static_cast<int>(it->second);
    }
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i].edge == edge) return static_cast<int>(i);
    }
    return -1;
  }

  /// Builds the edge -> link-slot lookup; call once after `links` is final.
  void finalize();

 private:
  std::unordered_map<EdgeId, std::uint32_t> edge_index_;
};

/// A point-to-point message as received.
struct Received {
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  Packet packet;
};

/// Per-round API handed to a Process.  All sends happen "this round" and are
/// delivered next round; at most one channel write per round.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  virtual std::uint64_t round() const = 0;
  virtual const LocalView& view() const = 0;
  virtual Rng& rng() = 0;

  /// Messages delivered this round (a span into the round's flat arena;
  /// valid only for the duration of the round call).
  virtual std::span<const Received> inbox() const = 0;

  /// The outcome of the previous round's channel slot.
  virtual const SlotObservation& slot() const = 0;

  /// Sends a packet over one of this node's incident links.
  virtual void send(EdgeId edge, const Packet& packet) = 0;

  /// Writes to the channel slot of the current round (at most once).
  virtual void channel_write(const Packet& packet) = 0;

  /// True if this node already wrote to the channel this round.
  virtual bool wrote_channel() const = 0;

  /// True if this node sent at least one point-to-point message this round.
  virtual bool sent_message() const = 0;

  NodeId self() const { return view().self; }
};

/// A node program.  round() is invoked exactly once per simulated round.
class Process {
 public:
  virtual ~Process() = default;

  virtual void round(NodeContext& ctx) = 0;

  /// The engine stops once every process reports finished.
  virtual bool finished() const = 0;
};

using ProcessFactory = std::function<std::unique_ptr<Process>(const LocalView&)>;

/// A point-to-point send staged for end-of-round delivery.
struct Outgoing {
  NodeId to = kNoNode;
  Received msg;
};

/// A point-to-point send staged by the asynchronous policy.  The delivery
/// tick is already fixed (drawn from the sender's own RNG stream at send
/// time); the global order stamp is assigned when the phase commits, in
/// ascending shard order — i.e. in exactly the serial emission order.
struct AsyncSend {
  std::uint64_t due_tick = 0;
  NodeId to = kNoNode;
  Received msg;
};

/// Externally visible effects of one shard's nodes during one round (or one
/// asynchronous slot phase).  Nodes of one shard run sequentially, so no
/// synchronization is needed; the core merges shards in ascending order
/// after the barrier.  Cache-line aligned: adjacent shards are written by
/// different worker threads on the hottest path (every send of every node),
/// so they must not share a line.
struct alignas(64) ShardBuffer {
  std::vector<Outgoing> outbox;
  std::vector<AsyncSend> async_outbox;
  std::vector<ChannelWrite> channel_writes;
  std::uint64_t p2p_sent = 0;
  std::int64_t finished_delta = 0;  ///< nodes that toggled finished()

  void clear_round() {
    outbox.clear();
    async_outbox.clear();
    channel_writes.clear();
    p2p_sent = 0;
    finished_delta = 0;
  }
};

/// Double-buffered flat delivery buffer: all messages delivered in the
/// current round, grouped by destination, with per-node offset spans.
class MessageArena {
 public:
  void reset(NodeId n);

  std::span<const Received> inbox(NodeId v) const {
    return {buf_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Counting-sorts the staged sends of all shards (ascending shard order,
  /// preserving per-shard send order — i.e. exactly the serial send order)
  /// into the back buffer, clears the shard outboxes, and flips buffers.
  void flip(std::vector<ShardBuffer>& shards);

 private:
  NodeId n_ = 0;
  std::vector<Received> buf_;       // delivered this round
  std::vector<Received> next_buf_;  // being filled for next round
  std::vector<std::uint32_t> offsets_;       // n_ + 1 spans into buf_
  std::vector<std::uint32_t> next_offsets_;  // n_ + 1 spans into next_buf_
  std::vector<std::uint32_t> cursor_;        // scatter cursors, n_
};

/// An in-flight asynchronous message, stamped for deterministic delivery:
/// `tick` is its fixed delivery time, `seq` its position in the serial
/// emission order.  Within one staged delivery sub-round, a node handles
/// its messages in ascending (tick, seq); across sub-rounds, causal order
/// wins — an intra-slot cascade is always handled after the sub-round that
/// triggered it, even if its tick is smaller (see sim/async_engine.hpp).
struct StampedMessage {
  std::uint64_t tick = 0;
  std::uint64_t seq = 0;
  NodeId to = kNoNode;
  Received msg;
};

/// Slot-bucketed delivery store for the asynchronous stepping policy: every
/// in-flight message is filed under the slot its delivery tick falls into (a
/// ring of max_delay + slack buckets).  stage(slot) drains one bucket into a
/// flat per-destination delivery table — grouped by node, each node's
/// messages in ascending (tick, seq) — that a delivery phase shards exactly
/// like a synchronous round.  Because seq stamps are assigned at commit time
/// in ascending shard order, the table is scheduler-independent: parallel
/// async runs see bit-identical delivery orders to serial ones.
class SlotBuckets {
 public:
  /// Sizes the store: n destination nodes, the tick<->slot mapping, and the
  /// bucket ring (ring_slots must exceed the maximum delivery-slot span).
  void reset(NodeId n, std::uint64_t ticks_per_slot, std::uint64_t ring_slots);

  /// Stamps one committed send with the next serial-order seq and files it
  /// under its delivery slot.  Call in ascending shard order only.
  void push(AsyncSend&& send);

  /// Drains every message due in `slot` into the delivery table; returns the
  /// number of messages staged.  Messages pushed after this call land in a
  /// fresh bucket, so calling again stages only the intra-slot cascades.
  std::size_t stage(std::uint64_t slot);

  /// Messages staged for `v` by the last stage() call, ascending (tick, seq).
  /// Valid until the next stage() call.
  std::span<const StampedMessage> inbox(NodeId v) const {
    return {staged_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Total messages filed but not yet staged for delivery.
  std::size_t in_flight() const { return in_flight_; }

 private:
  NodeId n_ = 0;
  std::uint64_t ticks_per_slot_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t in_flight_ = 0;
  std::vector<std::vector<StampedMessage>> ring_;  ///< bucket = slot % size
  std::vector<StampedMessage> staged_;  ///< last staged slot, (to, tick, seq)
  std::vector<std::uint32_t> offsets_;  ///< n_ + 1 spans into staged_
};

/// The substrate both engines execute on.
class RuntimeCore {
 public:
  /// Builds views (finalized), per-node RNG streams forked from `seed`, the
  /// channel, metrics, and the message arena.  A null scheduler means serial;
  /// a null discipline means free-for-all (the bare Section 2 channel).
  RuntimeCore(const Graph& g, std::uint64_t seed,
              std::unique_ptr<Scheduler> scheduler = nullptr,
              std::unique_ptr<ChannelDiscipline> discipline = nullptr);

  RuntimeCore(const RuntimeCore&) = delete;
  RuntimeCore& operator=(const RuntimeCore&) = delete;

  NodeId num_nodes() const { return static_cast<NodeId>(views_.size()); }
  const LocalView& view(NodeId v) const { return views_[v]; }
  Rng& rng(NodeId v) { return rngs_[v]; }
  Channel& channel() { return channel_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  const SlotObservation& slot() const { return slot_; }
  std::uint64_t round() const { return round_; }
  std::span<const Received> inbox(NodeId v) const { return arena_.inbox(v); }
  Scheduler& scheduler() { return *scheduler_; }
  ShardBuffer& shard(unsigned s) { return shards_[s]; }

  /// One lockstep round: runs `fn` over every node under the scheduler, then
  /// commits deterministically — channel writes and p2p sends merged in
  /// ascending shard order, slot resolved, arena flipped, round advanced.
  /// Returns the net change in the number of finished nodes.
  std::int64_t run_round(const Scheduler::NodeFn& fn);

  /// Resolves the current slot through the channel discipline: the staged
  /// writes (ascending commit order = ascending node order within the slot)
  /// are handed to the policy, which picks the contenders and resolves.
  /// Used by run_round internally; the asynchronous policy calls it at each
  /// slot boundary.
  SlotObservation resolve_slot();

  /// True when no channel work is outstanding: no write staged for the
  /// current slot and nothing deferred inside the discipline.
  bool channel_idle() const {
    return slot_writes_.empty() && discipline_->backlog() == 0;
  }

  /// The asynchronous policy's bucket store; inert until its reset().
  SlotBuckets& slot_buckets() { return slot_buckets_; }

  /// Commits one asynchronous slot phase: the staged effects of all shards
  /// merged in ascending shard order — channel writes into the channel,
  /// async sends seq-stamped into the slot buckets, p2p counts into metrics.
  /// The shard-major merge order equals the serial emission order, so the
  /// committed state is identical under any scheduler.  Returns the net
  /// change in the number of finished nodes staged by the phase.
  std::int64_t commit_async_phase();

 private:
  std::vector<LocalView> views_;
  std::vector<Rng> rngs_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ChannelDiscipline> discipline_;
  std::vector<ShardBuffer> shards_;
  MessageArena arena_;
  SlotBuckets slot_buckets_;
  Channel channel_;
  std::vector<ChannelWrite> slot_writes_;  // staged for the current slot
  SlotObservation slot_;  // outcome of the previous round's slot
  Metrics metrics_;
  std::uint64_t round_ = 0;
};

}  // namespace mmn::sim
