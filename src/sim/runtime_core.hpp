// The shared execution substrate of the multimedia-network model.
//
// Both engines — the synchronous lockstep Engine and the tick-driven
// AsyncEngine (Section 7) — simulate the same object: n nodes with local
// views, per-node RNG streams forked from one seed, point-to-point links,
// and one shared collision channel whose slot costs one time unit.
// RuntimeCore owns that substrate exactly once; the engines are thin
// stepping policies over it.
//
// Hot-path data layout (the full argument lives in ARCHITECTURE.md):
// message delivery is structure-of-arrays.  A staged send is a small POD
// header (destination, sender, link, plus tick/seq stamps on the
// asynchronous path) carrying a PacketRef index into a packet pool; the
// per-round counting sort in MessageArena::flip and the bucket drain in
// SlotBuckets::stage move 16–32-byte headers while the 80-byte payloads
// stay put.  The count/prefix passes of both run through the runtime-
// dispatched kernels in support/simd.hpp (AVX2 on capable hosts, scalar
// reference otherwise, pinnable via MMN_FORCE_SCALAR); broadcast() interns
// one pooled payload behind deg(v) headers instead of staging deg(v)
// copies.  Pools and ring buckets are recycled at their high-water-mark
// capacity, so a warmed-up run performs zero heap allocations per round.
// Determinism is unchanged: shards are contiguous ascending node ranges,
// so concatenating their header buffers in shard order reproduces the
// serial send order bit for bit (see sim/scheduler.hpp) — the payload
// indirection never participates in ordering.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/epoch.hpp"
#include "graph/graph.hpp"
#include "sim/channel.hpp"
#include "sim/channel_discipline.hpp"
#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "sim/traffic.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

class FaultRuntime;

/// Outcome of an engine's last step()/run() call.  Shared by both stepping
/// policies: AsyncEngine has reported it since PR 2; the synchronous Engine
/// grew the same non-aborting surface in the fault PR.  kSlotCapReached
/// means the budget ran out with work outstanding — the run is capped, not
/// corrupted: metrics, latency summaries, and digests are all well-formed.
enum class RunStatus : std::uint8_t {
  kRunning,
  kCompleted,
  kSlotCapReached,
};

/// One incident link as known locally by a node — the graph layer's packed
/// adjacency row itself (graph/graph.hpp).  The former sim-local twin
/// struct is gone: a LocalView windows the Graph's CSR arena directly.
using mmn::Neighbor;

/// A node's a-priori knowledge: its id, its links sorted by ascending weight,
/// and the network size n (assumed known, Section 2; Section 7.3/7.4 shows
/// how to compute/estimate it — see core/size.hpp).
///
/// A 16-byte non-owning view: `links()` is a zero-copy window into the
/// topology's shared CSR arena (or an O(1) generator on the implicit dense
/// families) and `link_index` resolves through the graph's shared per-edge
/// slab — nothing is copied per node, so RuntimeCore construction is O(n)
/// regardless of m.  The Graph must outlive every view (RuntimeCore, the
/// engines, and every Process hold views by reference).
struct LocalView {
  NodeId self = kNoNode;
  NodeId n = 0;
  const Graph* topo = nullptr;

  /// This node's links, ascending weight.  Value-semantic range — build it
  /// per access (range-for keeps it alive for the loop), don't store it.
  NeighborRange links() const { return topo->neighbors(self); }

  std::uint32_t degree() const { return topo->degree(self); }

  /// Index into links() of the given edge, or -1 if not incident.  O(1)
  /// from the edge's canonical endpoint, O(log degree) otherwise.
  int link_index(EdgeId edge) const { return topo->link_slot(self, edge); }
};

/// A point-to-point message as received: the delivery header plus a pointer
/// to the payload in the round's packet pool.  Handed to node code by value;
/// the payload pointer is valid only for the duration of the handler call
/// (the pool is recycled once the round ends) — a process that needs the
/// payload later must copy the Packet, not the Received.
struct Received {
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  const Packet* pkt = nullptr;

  const Packet& packet() const { return *pkt; }
};

/// A staged point-to-point send: the 16-byte unit MessageArena::flip
/// counting-sorts.  `ref` indexes the staging shard's packet pool.
struct MsgHeader {
  NodeId to = kNoNode;
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  PacketRef ref = 0;
};

/// A send staged by the asynchronous policy.  The delivery tick is already
/// fixed (drawn from the sender's own RNG stream at send time); the global
/// order stamp is assigned when the phase commits, in ascending shard order
/// — i.e. in exactly the serial emission order.
struct AsyncMsgHeader {
  std::uint64_t due_tick = 0;
  NodeId to = kNoNode;
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  PacketRef ref = 0;
};

/// Externally visible effects of one shard's nodes during one round (or one
/// asynchronous slot phase).  Nodes of one shard run sequentially, so no
/// synchronization is needed; the core merges shards in ascending order
/// after the barrier.  Cache-line aligned: adjacent shards are written by
/// different worker threads on the hottest path (every send of every node),
/// so they must not share a line.
struct alignas(64) ShardBuffer {
  std::vector<MsgHeader> outbox;
  std::vector<AsyncMsgHeader> async_outbox;
  /// Payload slots behind outbox/async_outbox refs.  Lean staging: the
  /// vector is held at its high-water SIZE (not just capacity) and
  /// `pool_used` tracks the live prefix, so stage_packet never
  /// default-constructs (and so never zero-fills) a slot in steady state —
  /// it memcpys only the packet's live prefix over whatever stale words the
  /// slot held two rounds ago.  Contract-abiding readers never see the
  /// stale tail (Packet::live_bytes()).
  std::vector<Packet> pool;
  std::uint32_t pool_used = 0;    ///< slots staged this round
  std::uint64_t pool_bytes = 0;   ///< live payload bytes staged this round
  std::vector<ChannelWrite> channel_writes;
  std::uint64_t p2p_sent = 0;
  /// Sends this shard's nodes aimed at a dead link or dead endpoint this
  /// round (sim/fault.hpp), plus inboxes of crashed nodes the engine
  /// skipped.  Merged shard-major into FaultStats::drops — a pure sum, so
  /// the merge order only matters for uniformity with every other effect.
  std::uint64_t fault_drops = 0;
  /// This shard's delay-histogram block (sim/traffic.hpp), wired by
  /// RuntimeCore at construction.  Written only by the shard's own worker,
  /// like everything else here; merged shard-major on read.
  LatencyBlock* latency = nullptr;

  /// Files one payload in the shard's pool and returns its ref.  Only the
  /// live prefix is copied; slots are appended only past the high-water
  /// mark, so a warmed-up round stages without allocating or zero-filling.
  /// (A fixed-size copy rounded up to 32/72 bytes was tried and measured
  /// slower than the variable-length live-prefix memcpy — glibc's
  /// small-copy dispatch beats the extra stores.)
  PacketRef stage_packet(const Packet& packet) {
    const PacketRef ref = pool_used;
    if (pool_used == pool.size()) [[unlikely]] {
      pool.emplace_back();
    }
    const std::size_t bytes = packet.live_bytes();
    std::memcpy(&pool[pool_used], &packet, bytes);
    pool_bytes += bytes;
    ++pool_used;
    return ref;
  }

  void clear_round() {
    outbox.clear();
    async_outbox.clear();
    pool_used = 0;   // slots stay allocated at the high-water mark
    pool_bytes = 0;
    channel_writes.clear();
    p2p_sent = 0;
    fault_drops = 0;
  }
};

/// One shard's count of not-yet-finished nodes within its static node range
/// (Scheduler::shard_range).  The engines batch the per-node finished()
/// probe into these counters: a probe only touches the counter on a
/// finished-transition, each counter is written exclusively by its shard's
/// worker (cache-line aligned — adjacent shards run on different threads),
/// and the driver sums the handful of counters after the barrier.  This
/// replaces the per-node finished-delta staging ShardBuffer used to carry.
struct alignas(64) ShardOutstanding {
  std::int64_t count = 0;
};

/// Initial per-shard outstanding counts for n nodes whose finished flags are
/// `flags` (flags[v] != 0 means finished), sharded like the scheduler.
std::vector<ShardOutstanding> initial_outstanding(
    const std::vector<char>& flags, unsigned shards);

/// True when no shard has unfinished nodes left.
inline bool none_outstanding(const std::vector<ShardOutstanding>& counts) {
  for (const ShardOutstanding& s : counts) {
    if (s.count != 0) return false;
  }
  return true;
}

/// Per-round API handed to a Process.  All sends happen "this round" and are
/// delivered next round; at most one channel write per round.
///
/// A concrete final class, not an interface: the engine's hot path reaches
/// send/inbox/channel_write without any virtual dispatch (the one virtual
/// seam per node per round is Process::round itself).  The synchronizer
/// (core/synchronizer.hpp), which runs synchronous Processes over the
/// asynchronous engine, plugs in through the Sink escape hatch — a pair of
/// raw function pointers taken only when no shard buffer is attached, so the
/// engine path pays a single predictable null test.
class NodeContext final {
 public:
  /// External effect sink for contexts not backed by an engine shard (the
  /// busy-tone synchronizer's shim).  Both hooks are required.
  struct Sink {
    void (*send)(void* self, EdgeId edge, const Packet& packet) = nullptr;
    void (*channel_write)(void* self, const Packet& packet) = nullptr;
    void* self = nullptr;
  };

  /// Engine staging path: effects go to `shard`, merged after the barrier.
  /// `faults` is the run's epoch overlay when fault injection is installed
  /// (read-only during the round — events apply at slot boundaries), null on
  /// the fault-free fast path.
  NodeContext(const LocalView& view, Rng& rng, std::span<const Received> inbox,
              const SlotObservation& slot, std::uint64_t round,
              ShardBuffer& shard, const EpochOverlay* faults = nullptr)
      : view_(&view),
        rng_(&rng),
        slot_(&slot),
        shard_(&shard),
        faults_(faults),
        inbox_(inbox),
        round_(round) {}

  /// Sink path: effects go through `sink` (synchronizer shim).
  NodeContext(const LocalView& view, Rng& rng, std::span<const Received> inbox,
              const SlotObservation& slot, std::uint64_t round, Sink sink)
      : view_(&view),
        rng_(&rng),
        slot_(&slot),
        sink_(sink),
        inbox_(inbox),
        round_(round) {}

  NodeContext(const NodeContext&) = delete;
  NodeContext& operator=(const NodeContext&) = delete;

  std::uint64_t round() const { return round_; }
  const LocalView& view() const { return *view_; }
  Rng& rng() { return *rng_; }

  /// Messages delivered this round (a span into the round's flat arena;
  /// valid only for the duration of the round call).
  std::span<const Received> inbox() const { return inbox_; }

  /// The outcome of the previous round's channel slot.
  const SlotObservation& slot() const { return *slot_; }

  /// Sends a packet over one of this node's incident links.
  void send(EdgeId edge, const Packet& packet) {
    if (shard_ == nullptr) [[unlikely]] {
      sink_.send(sink_.self, edge, packet);
      sent_message_ = true;
      return;
    }
    const int idx = view_->link_index(edge);
    MMN_REQUIRE(idx >= 0, "send over a link not incident to this node");
    MMN_REQUIRE(packet.size() <= Packet::kMaxWords,
                "packet exceeds the O(log n) bound");
    const Neighbor nb = view_->links()[static_cast<std::uint32_t>(idx)];
    if (faults_ != nullptr &&
        (!faults_->link_alive(edge) || !faults_->node_alive(nb.to)))
        [[unlikely]] {
      ++shard_->fault_drops;  // dropped at the sender; nothing left the node
      return;
    }
    shard_->outbox.push_back(
        MsgHeader{nb.to, view_->self, edge, shard_->stage_packet(packet)});
    ++shard_->p2p_sent;
    sent_message_ = true;
  }

  /// Sends one packet to every neighbor (ascending link order — exactly the
  /// trace of `for (nb : links()) send(nb.edge, packet)`), staging ONE
  /// pooled payload plus deg(v) headers that share its ref instead of
  /// deg(v) payload copies.  Sharing needs no refcount here: the flip
  /// recycles each round's pool wholesale, so every header of the round —
  /// shared or not — expires with the pool two flips later.
  void broadcast(const Packet& packet) {
    if (shard_ == nullptr) [[unlikely]] {
      // Sink path (busy-tone synchronizer): per-link sends, so the shim's
      // ack accounting sees every message individually.
      for (const Neighbor& nb : view_->links()) {
        sink_.send(sink_.self, nb.edge, packet);
        sent_message_ = true;
      }
      return;
    }
    MMN_REQUIRE(packet.size() <= Packet::kMaxWords,
                "packet exceeds the O(log n) bound");
    const NeighborRange links = view_->links();
    const std::size_t deg = links.size();
    if (deg == 0) return;
    if (faults_ != nullptr) [[unlikely]] {
      // Fault path: per-link liveness gate, with the payload staged lazily
      // so a fully dark neighborhood stages nothing at all.  Surviving
      // links still share one interned payload.
      PacketRef ref = 0;
      bool staged = false;
      for (std::size_t i = 0; i < deg; ++i) {
        const Neighbor nb = links[i];
        if (!faults_->link_alive(nb.edge) || !faults_->node_alive(nb.to)) {
          ++shard_->fault_drops;
          continue;
        }
        if (!staged) {
          ref = shard_->stage_packet(packet);
          staged = true;
        }
        shard_->outbox.push_back(MsgHeader{nb.to, view_->self, nb.edge, ref});
        ++shard_->p2p_sent;
        sent_message_ = true;
      }
      return;
    }
    const PacketRef ref = shard_->stage_packet(packet);
    for (std::size_t i = 0; i < deg; ++i) {
      const Neighbor nb = links[i];
      shard_->outbox.push_back(MsgHeader{nb.to, view_->self, nb.edge, ref});
    }
    shard_->p2p_sent += deg;
    sent_message_ = true;
  }

  /// Writes to the channel slot of the current round (at most once).
  void channel_write(const Packet& packet) {
    MMN_REQUIRE(!wrote_channel_, "at most one channel write per node per slot");
    if (shard_ == nullptr) [[unlikely]] {
      sink_.channel_write(sink_.self, packet);
      wrote_channel_ = true;
      return;
    }
    MMN_REQUIRE(packet.size() <= Packet::kMaxWords,
                "packet exceeds the O(log n) bound");
    wrote_channel_ = true;
    shard_->channel_writes.push_back(ChannelWrite{view_->self, packet});
  }

  /// Open-loop accounting (sim/traffic.hpp): counts `count` fresh arrivals
  /// of class `cls` against this node's shard block.  Engine path only —
  /// the synchronizer's sink contexts carry no shard, and the open-loop
  /// workloads never run under it.
  void note_arrivals(QosClass cls, std::uint64_t count) {
    MMN_REQUIRE(shard_ != nullptr,
                "open-loop accounting needs an engine-backed context");
    shard_->latency->note_arrivals(cls, count);
  }

  /// Folds one delivered packet's enqueue->delivery delay (in slots) into
  /// the per-class histogram of this node's shard block.  Two array
  /// increments and an add — the recorder allocates nothing in steady state.
  void record_latency(QosClass cls, std::uint64_t delay_slots) {
    MMN_REQUIRE(shard_ != nullptr,
                "open-loop accounting needs an engine-backed context");
    shard_->latency->record(cls, delay_slots);
  }

  /// True if this node already wrote to the channel this round.
  bool wrote_channel() const { return wrote_channel_; }

  /// True if this node sent at least one point-to-point message this round.
  bool sent_message() const { return sent_message_; }

  NodeId self() const { return view_->self; }

 private:
  const LocalView* view_;
  Rng* rng_;
  const SlotObservation* slot_;
  ShardBuffer* shard_ = nullptr;  ///< null => route through sink_
  const EpochOverlay* faults_ = nullptr;  ///< null => fault-free fast path
  Sink sink_{};
  std::span<const Received> inbox_;
  std::uint64_t round_;
  bool wrote_channel_ = false;
  bool sent_message_ = false;
};

/// A node program.  round() is invoked exactly once per simulated round.
class Process {
 public:
  virtual ~Process() = default;

  virtual void round(NodeContext& ctx) = 0;

  /// The engine stops once every process reports finished.
  virtual bool finished() const = 0;
};

using ProcessFactory = std::function<std::unique_ptr<Process>(const LocalView&)>;

/// Fixed-capacity recycling payload store for in-flight asynchronous
/// messages: acquire() files a packet under a stable PacketRef with
/// refcount 1, add_ref() lets further headers share the slot (an interned
/// broadcast payload is one slot referenced by deg(v) headers), and
/// release() decrements — the slot returns to the free list only when the
/// LAST reader lets go.  Slots are only appended when the free list is
/// empty, so a warmed-up pool sits at its high-water mark and never
/// allocates again.  Refs stay valid across the backing vector's growth
/// (they are indices, not pointers); at(ref) pointers are only materialized
/// transiently, between mutations.
class PacketPool {
 public:
  void reset() {
    slots_.clear();
    refs_.clear();
    free_.clear();
  }

  PacketRef acquire(const Packet& packet) {
    PacketRef ref;
    if (!free_.empty()) {
      ref = free_.back();
      free_.pop_back();
    } else {
      slots_.emplace_back();
      refs_.push_back(0);
      ref = static_cast<PacketRef>(slots_.size() - 1);
    }
    // Lean copy, like ShardBuffer::stage_packet: live prefix only; the
    // slot's stale tail is never read by contract-abiding code.
    std::memcpy(&slots_[ref], &packet, packet.live_bytes());
    refs_[ref] = 1;
    return ref;
  }

  /// One more header now shares the slot.
  void add_ref(PacketRef ref) {
    MMN_DCHECK(ref < refs_.size() && refs_[ref] > 0,
               "add_ref on a slot that is not live");
    ++refs_[ref];
  }

  void release(PacketRef ref) {
    MMN_DCHECK(ref < refs_.size() && refs_[ref] > 0,
               "release on a slot that is not live");
    if (--refs_[ref] == 0) free_.push_back(ref);
  }

  const Packet& at(PacketRef ref) const { return slots_[ref]; }

  /// Live readers of a slot (0 = free).  Test hook for the interning
  /// lifetime suite.
  std::uint32_t ref_count(PacketRef ref) const { return refs_[ref]; }

  /// High-water mark: every slot ever acquired (free or live).
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Packet> slots_;
  std::vector<std::uint32_t> refs_;  ///< per-slot reader count
  std::vector<PacketRef> free_;
};

/// Double-buffered flat delivery buffer: all messages delivered in the
/// current round, grouped by destination, with per-node offset spans.
/// flip() counting-sorts 16-byte MsgHeaders and steals the shards' packet
/// pools by buffer swap, so payloads are written once at send time and never
/// copied again; the pools rotate through a two-deep recycle queue and are
/// handed back to the shards with their capacity intact.
///
/// The counting sort runs on one of three paths, picked per flip:
///  * empty      — O(1) short-circuit for message-free rounds;
///  * sparse     — when the round carries far fewer messages than nodes,
///                 the headers are sorted directly (by destination, original
///                 order as tie-break — i.e. stably) and the offset table is
///                 written in one monotone pass, skipping the dense
///                 count/prefix/cursor passes over all n counters;
///  * dense      — histogram + exclusive prefix sum through the
///                 support/simd.hpp kernels (AVX2 when the host has it,
///                 scalar reference otherwise), then a stable scalar
///                 scatter.
/// All three produce bit-identical delivery tables: the scatter order is
/// always ascending (destination, serial send position).
class MessageArena {
 public:
  void reset(NodeId n, unsigned shards);

  std::span<const Received> inbox(NodeId v) const {
    return {buf_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Counting-sorts the staged headers of all shards (ascending shard order,
  /// preserving per-shard send order — i.e. exactly the serial send order)
  /// into the back buffer, recycles the shard pools, and flips buffers.
  void flip(std::vector<ShardBuffer>& shards);

  /// Cumulative bytes the flips moved: headers read + delivery records
  /// written + live payload bytes staged by the flipped rounds.  The
  /// roofline bench divides this by rounds and by wall-clock to report the
  /// hot path's traffic against measured machine bandwidth.
  std::uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  /// One sparse-path entry: the destination and stable rank as sort key
  /// plus the fully resolved delivery record (headers from different shards
  /// resolve into different pools, so the pointer must be bound pre-sort).
  struct SparseEntry {
    NodeId to;
    std::uint32_t rank;  ///< serial send position (stable tie-break)
    Received r;
  };

  NodeId n_ = 0;
  bool empty_ = true;  // both delivery buffers empty, both offset sets zero
  std::uint64_t bytes_moved_ = 0;
  std::vector<Received> buf_;       // delivered this round
  std::vector<Received> next_buf_;  // being filled for next round
  std::vector<std::uint32_t> offsets_;       // n_ + 1 spans into buf_
  std::vector<std::uint32_t> next_offsets_;  // n_ + 1 spans into next_buf_
  std::vector<std::uint32_t> cursor_;        // scatter cursors, n_
  std::vector<SparseEntry> scratch_;         // sparse-path sort buffer
  std::vector<std::vector<Packet>> pools_;   // per shard, backing buf_
  std::vector<std::vector<Packet>> next_pools_;  // recycled next flip
};

/// An in-flight asynchronous message header, stamped for deterministic
/// delivery: `tick` is its fixed delivery time, `seq` its position in the
/// serial emission order, `ref` its payload in the bucket store's pool.
/// Within one staged delivery sub-round, a node handles its messages in
/// ascending (tick, seq); across sub-rounds, causal order wins — an
/// intra-slot cascade is always handled after the sub-round that triggered
/// it, even if its tick is smaller (see sim/async_engine.hpp).
struct StampedHeader {
  std::uint64_t tick = 0;
  std::uint64_t seq = 0;
  NodeId to = kNoNode;
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  PacketRef ref = 0;
};

/// Slot-bucketed delivery store for the asynchronous stepping policy: every
/// in-flight message is filed under the slot its delivery tick falls into (a
/// ring of max_delay + slack buckets).  stage(slot) drains one bucket into a
/// flat per-destination delivery table — grouped by node, each node's
/// messages in ascending (tick, seq) — that a delivery phase shards exactly
/// like a synchronous round.  Because seq stamps are assigned at commit time
/// in ascending shard order, the table is scheduler-independent: parallel
/// async runs see bit-identical delivery orders to serial ones.
///
/// Only 32-byte headers move through the buckets and the sort; payloads live
/// in a recycling PacketPool from commit to delivery.  Ring buckets, the
/// staged table, and the pool all retain their high-water capacity, so a
/// warmed-up engine stages slots without heap allocation.
class SlotBuckets {
 public:
  /// Sizes the store: n destination nodes, the tick<->slot mapping, and the
  /// bucket ring (ring_slots must exceed the maximum delivery-slot span).
  void reset(NodeId n, std::uint64_t ticks_per_slot, std::uint64_t ring_slots);

  /// Stamps one committed send with the next serial-order seq, files its
  /// payload in the pool (refcount 1), and files the header under its
  /// delivery slot.  Call in ascending shard order only.  Returns the pool
  /// ref so a run of sends sharing one staged payload (a broadcast) can
  /// intern it via push_shared.
  PacketRef push(const AsyncMsgHeader& send, const Packet& payload);

  /// Like push, but instead of filing a new payload the header shares
  /// `pooled` — the ref a preceding push() of the same commit returned.
  /// Bumps the slot's refcount; the slot frees when the last sharing
  /// header's delivery releases it.
  void push_shared(const AsyncMsgHeader& send, PacketRef pooled);

  /// Drains every message due in `slot` into the delivery table; returns the
  /// number of messages staged.  Messages pushed after this call land in a
  /// fresh bucket, so calling again stages only the intra-slot cascades.
  /// The previous table's payloads are released back to the pool.
  ///
  /// The per-slot sort is a radix partition: a histogram + prefix sum over
  /// destinations (support/simd.hpp kernels), a stable scatter — bucket
  /// order is ascending seq, so each destination's run lands seq-sorted —
  /// and a small per-run sort by (tick, seq) only where a run holds more
  /// than one message.  Identical table to the old global
  /// sort-by-(to, tick, seq), without moving every header through an
  /// O(m log m) comparison sort.
  std::size_t stage(std::uint64_t slot);

  /// Messages staged for `v` by the last stage() call, ascending (tick, seq).
  /// Valid until the next stage() call.
  std::span<const StampedHeader> inbox(NodeId v) const {
    return {staged_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Payload of a staged header.  The reference is valid until the next
  /// push() or stage() call — materialize per delivery, do not hold.
  const Packet& payload(PacketRef ref) const { return pool_.at(ref); }

  /// Total messages filed but not yet staged for delivery.
  std::size_t in_flight() const { return in_flight_; }

  /// The payload pool (test hook: the interning lifetime suite reads
  /// refcounts and the high-water capacity through it).
  const PacketPool& pool() const { return pool_; }

 private:
  NodeId n_ = 0;
  std::uint64_t ticks_per_slot_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t in_flight_ = 0;
  std::vector<std::vector<StampedHeader>> ring_;  ///< bucket = slot % size
  std::vector<StampedHeader> staged_;  ///< last staged slot, (to, tick, seq)
  std::vector<std::uint32_t> offsets_;  ///< n_ + 1 spans into staged_
  std::vector<std::uint32_t> cursor_;   ///< radix scatter cursors, n_
  PacketPool pool_;                     ///< payloads, commit -> delivery
};

/// The substrate both engines execute on.
class RuntimeCore {
 public:
  /// Builds views, per-node RNG streams forked from `seed`, the channel,
  /// metrics, and the message arena.  Views are non-owning windows into the
  /// graph's CSR arena (O(n) pointer setup, no adjacency copies), so `g`
  /// must outlive the core and every engine built on it.  A null scheduler
  /// means serial; a null discipline means free-for-all (the bare Section 2
  /// channel).
  RuntimeCore(const Graph& g, std::uint64_t seed,
              std::unique_ptr<Scheduler> scheduler = nullptr,
              std::unique_ptr<ChannelDiscipline> discipline = nullptr);

  RuntimeCore(const RuntimeCore&) = delete;
  RuntimeCore& operator=(const RuntimeCore&) = delete;

  NodeId num_nodes() const { return static_cast<NodeId>(views_.size()); }
  const Graph& graph() const { return *graph_; }
  const LocalView& view(NodeId v) const { return views_[v]; }
  Rng& rng(NodeId v) { return rngs_[v]; }
  Channel& channel() { return channel_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  const SlotObservation& slot() const { return slot_; }
  std::uint64_t round() const { return round_; }
  std::span<const Received> inbox(NodeId v) const { return arena_.inbox(v); }
  Scheduler& scheduler() { return *scheduler_; }
  ShardBuffer& shard(unsigned s) { return shards_[s]; }
  ChannelDiscipline& discipline() { return *discipline_; }

  /// Installs the fault runtime whose drop counters the commit paths merge
  /// into (null = fault-free; the default).  Owned by the engine.
  void set_fault_runtime(FaultRuntime* faults) { faults_ = faults; }
  FaultRuntime* fault_runtime() { return faults_; }

  /// One lockstep round: runs `fn` over every node under the scheduler, then
  /// commits deterministically — channel writes and p2p sends merged in
  /// ascending shard order, slot resolved, arena flipped, round advanced.
  /// (Termination tracking lives with the engines' per-shard outstanding
  /// counters; the core commits only message/channel effects.)
  void run_round(Scheduler::NodeFn fn);

  /// Resolves the current slot through the channel discipline: the staged
  /// writes (ascending commit order = ascending node order within the slot)
  /// are handed to the policy, which picks the contenders and resolves.
  /// Used by run_round internally; the asynchronous policy calls it at each
  /// slot boundary.
  SlotObservation resolve_slot();

  /// True when no channel work is outstanding: no write staged for the
  /// current slot and nothing deferred inside the discipline.
  bool channel_idle() const {
    return slot_writes_.empty() && discipline_->backlog() == 0;
  }

  /// The asynchronous policy's bucket store; inert until its reset().
  SlotBuckets& slot_buckets() { return slot_buckets_; }

  /// Per-class delay/backlog accounting for open-loop workloads
  /// (sim/traffic.hpp).  Always present (a block per shard, ~1 KiB each);
  /// closed-loop runs simply never write to it.
  const LatencyRecorder& latency() const { return latency_; }
  LatencyRecorder& latency() { return latency_; }

  /// Commits one asynchronous slot phase: the staged effects of all shards
  /// merged in ascending shard order — channel writes into the channel,
  /// async sends seq-stamped into the slot buckets, p2p counts into metrics.
  /// The shard-major merge order equals the serial emission order, so the
  /// committed state is identical under any scheduler.
  void commit_async_phase();

 private:
  const Graph* graph_;
  std::vector<LocalView> views_;
  std::vector<Rng> rngs_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ChannelDiscipline> discipline_;
  std::vector<ShardBuffer> shards_;
  LatencyRecorder latency_;
  MessageArena arena_;
  SlotBuckets slot_buckets_;
  Channel channel_;
  std::vector<ChannelWrite> slot_writes_;  // staged for the current slot
  SlotObservation slot_;  // outcome of the previous round's slot
  Metrics metrics_;
  FaultRuntime* faults_ = nullptr;  ///< engine-owned; drops merge here
  std::uint64_t round_ = 0;
};

}  // namespace mmn::sim
