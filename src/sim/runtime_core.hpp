// The shared execution substrate of the multimedia-network model.
//
// Both engines — the synchronous lockstep Engine and the tick-driven
// AsyncEngine (Section 7) — simulate the same object: n nodes with local
// views, per-node RNG streams forked from one seed, point-to-point links,
// and one shared collision channel whose slot costs one time unit.
// RuntimeCore owns that substrate exactly once; the engines are thin
// stepping policies over it.
//
// Message delivery uses a double-buffered flat arena: every round's
// deliveries live in ONE contiguous Received buffer with per-node offset
// spans, rebuilt by a stable counting sort from the per-shard send buffers.
// This replaces per-node inbox vectors and their per-round allocation/clear
// churn, and it is what makes parallel execution deterministic: shards are
// contiguous ascending node ranges, so concatenating their buffers in shard
// order reproduces the serial send order bit for bit (see sim/scheduler.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/channel.hpp"
#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

/// One incident link as known locally by a node.
struct Neighbor {
  NodeId id = kNoNode;  ///< the node on the other end
  EdgeId edge = kNoEdge;
  Weight weight = 0;
};

/// A node's a-priori knowledge: its id, its links sorted by ascending weight,
/// and the network size n (assumed known, Section 2; Section 7.3/7.4 shows
/// how to compute/estimate it — see core/size.hpp).
struct LocalView {
  NodeId self = kNoNode;
  NodeId n = 0;
  std::vector<Neighbor> links;  ///< ascending weight

  /// Index into `links` of the given edge, or -1.  O(1) once finalize() ran
  /// (RuntimeCore finalizes every view at construction); hand-built views
  /// fall back to a linear scan.
  int link_index(EdgeId edge) const {
    if (!edge_index_.empty()) {
      const auto it = edge_index_.find(edge);
      return it == edge_index_.end() ? -1 : static_cast<int>(it->second);
    }
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i].edge == edge) return static_cast<int>(i);
    }
    return -1;
  }

  /// Builds the edge -> link-slot lookup; call once after `links` is final.
  void finalize();

 private:
  std::unordered_map<EdgeId, std::uint32_t> edge_index_;
};

/// A point-to-point message as received.
struct Received {
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  Packet packet;
};

/// Per-round API handed to a Process.  All sends happen "this round" and are
/// delivered next round; at most one channel write per round.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  virtual std::uint64_t round() const = 0;
  virtual const LocalView& view() const = 0;
  virtual Rng& rng() = 0;

  /// Messages delivered this round (a span into the round's flat arena;
  /// valid only for the duration of the round call).
  virtual std::span<const Received> inbox() const = 0;

  /// The outcome of the previous round's channel slot.
  virtual const SlotObservation& slot() const = 0;

  /// Sends a packet over one of this node's incident links.
  virtual void send(EdgeId edge, const Packet& packet) = 0;

  /// Writes to the channel slot of the current round (at most once).
  virtual void channel_write(const Packet& packet) = 0;

  /// True if this node already wrote to the channel this round.
  virtual bool wrote_channel() const = 0;

  /// True if this node sent at least one point-to-point message this round.
  virtual bool sent_message() const = 0;

  NodeId self() const { return view().self; }
};

/// A node program.  round() is invoked exactly once per simulated round.
class Process {
 public:
  virtual ~Process() = default;

  virtual void round(NodeContext& ctx) = 0;

  /// The engine stops once every process reports finished.
  virtual bool finished() const = 0;
};

using ProcessFactory = std::function<std::unique_ptr<Process>(const LocalView&)>;

/// A point-to-point send staged for end-of-round delivery.
struct Outgoing {
  NodeId to = kNoNode;
  Received msg;
};

/// A channel write staged for end-of-round resolution.
struct ChannelWrite {
  NodeId node = kNoNode;
  Packet packet;
};

/// Externally visible effects of one shard's nodes during one round.  Nodes
/// of one shard run sequentially, so no synchronization is needed; the core
/// merges shards in ascending order after the round barrier.  Cache-line
/// aligned: adjacent shards are written by different worker threads on the
/// hottest path (every send of every node), so they must not share a line.
struct alignas(64) ShardBuffer {
  std::vector<Outgoing> outbox;
  std::vector<ChannelWrite> channel_writes;
  std::uint64_t p2p_sent = 0;
  std::int64_t finished_delta = 0;  ///< nodes that toggled finished()

  void clear_round() {
    outbox.clear();
    channel_writes.clear();
    p2p_sent = 0;
    finished_delta = 0;
  }
};

/// Double-buffered flat delivery buffer: all messages delivered in the
/// current round, grouped by destination, with per-node offset spans.
class MessageArena {
 public:
  void reset(NodeId n);

  std::span<const Received> inbox(NodeId v) const {
    return {buf_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Counting-sorts the staged sends of all shards (ascending shard order,
  /// preserving per-shard send order — i.e. exactly the serial send order)
  /// into the back buffer, clears the shard outboxes, and flips buffers.
  void flip(std::vector<ShardBuffer>& shards);

 private:
  NodeId n_ = 0;
  std::vector<Received> buf_;       // delivered this round
  std::vector<Received> next_buf_;  // being filled for next round
  std::vector<std::uint32_t> offsets_;       // n_ + 1 spans into buf_
  std::vector<std::uint32_t> next_offsets_;  // n_ + 1 spans into next_buf_
  std::vector<std::uint32_t> cursor_;        // scatter cursors, n_
};

/// The substrate both engines execute on.
class RuntimeCore {
 public:
  /// Builds views (finalized), per-node RNG streams forked from `seed`, the
  /// channel, metrics, and the message arena.  A null scheduler means serial.
  RuntimeCore(const Graph& g, std::uint64_t seed,
              std::unique_ptr<Scheduler> scheduler = nullptr);

  RuntimeCore(const RuntimeCore&) = delete;
  RuntimeCore& operator=(const RuntimeCore&) = delete;

  NodeId num_nodes() const { return static_cast<NodeId>(views_.size()); }
  const LocalView& view(NodeId v) const { return views_[v]; }
  Rng& rng(NodeId v) { return rngs_[v]; }
  Channel& channel() { return channel_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  const SlotObservation& slot() const { return slot_; }
  std::uint64_t round() const { return round_; }
  std::span<const Received> inbox(NodeId v) const { return arena_.inbox(v); }
  Scheduler& scheduler() { return *scheduler_; }
  ShardBuffer& shard(unsigned s) { return shards_[s]; }

  /// One lockstep round: runs `fn` over every node under the scheduler, then
  /// commits deterministically — channel writes and p2p sends merged in
  /// ascending shard order, slot resolved, arena flipped, round advanced.
  /// Returns the net change in the number of finished nodes.
  std::int64_t run_round(const Scheduler::NodeFn& fn);

 private:
  std::vector<LocalView> views_;
  std::vector<Rng> rngs_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<ShardBuffer> shards_;
  MessageArena arena_;
  Channel channel_;
  SlotObservation slot_;  // outcome of the previous round's slot
  Metrics metrics_;
  std::uint64_t round_ = 0;
};

}  // namespace mmn::sim
