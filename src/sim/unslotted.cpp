#include "sim/unslotted.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace mmn::sim {

std::uint64_t unslotted_envelope_step(
    std::uint64_t boundary, std::size_t num_writers,
    const UnslottedConfig& config, Rng& rng,
    const std::function<void(std::size_t, std::uint64_t, std::uint64_t)>&
        on_transmission) {
  std::uint64_t busy_until = boundary;  // end of the busy-tone envelope
  for (std::size_t i = 0; i < num_writers; ++i) {
    // reaction_delay_max == 0 models perfectly synchronized stations:
    // everyone keys up exactly one tick after the boundary.
    const std::uint64_t jitter =
        config.reaction_delay_max == 0
            ? 0
            : rng.next_below(config.reaction_delay_max);
    const std::uint64_t start = boundary + 1 + jitter;
    const std::uint64_t end = start + config.transmit_ticks;
    if (on_transmission) on_transmission(i, start, end);
    busy_until = std::max(busy_until, end);
  }
  // The slot ends one idle gap after the last carrier drops; with no writer
  // the gap elapses immediately after the boundary.
  return busy_until + config.idle_gap_ticks;
}

UnslottedRun run_unslotted(
    NodeId stations, const std::vector<std::vector<NodeId>>& writers_per_slot,
    const UnslottedConfig& config) {
  MMN_REQUIRE(stations >= 1, "need at least one station");
  MMN_REQUIRE(config.transmit_ticks >= 1, "transmissions need positive length");
  MMN_REQUIRE(config.idle_gap_ticks >= 1, "idle gap must be positive");
  Rng rng(config.seed);

  UnslottedRun run;
  std::uint64_t boundary = 0;
  for (std::uint64_t s = 0; s < writers_per_slot.size(); ++s) {
    run.boundaries.push_back(boundary);
    const auto& writers = writers_per_slot[s];
    for (NodeId w : writers) {
      MMN_REQUIRE(w < stations, "writer id out of range");
    }
    // Each active station wakes up after its personal reaction delay,
    // transmits data for transmit_ticks, and holds the side-channel busy
    // tone for exactly that interval.
    boundary = unslotted_envelope_step(
        boundary, writers.size(), config, rng,
        [&](std::size_t i, std::uint64_t start, std::uint64_t end) {
          run.transmissions.push_back(Transmission{writers[i], s, start, end});
        });

    // Listeners attribute everything between the two boundaries to slot s
    // and count carriers: zero, one, or more than one.
    if (writers.empty()) {
      run.outcomes.push_back(SlotState::kIdle);
    } else if (writers.size() == 1) {
      run.outcomes.push_back(SlotState::kSuccess);
    } else {
      run.outcomes.push_back(SlotState::kCollision);
    }
  }
  run.boundaries.push_back(boundary);
  return run;
}

std::vector<SlotState> run_slotted_reference(
    const std::vector<std::vector<NodeId>>& writers_per_slot) {
  Channel channel;
  Metrics metrics;
  std::vector<SlotState> outcomes;
  for (const auto& writers : writers_per_slot) {
    for (NodeId w : writers) channel.write(w, Packet(1));
    outcomes.push_back(channel.resolve(metrics).state);
  }
  return outcomes;
}

}  // namespace mmn::sim
