// Deterministic fault injection: slot-aligned link/node churn plans and the
// runtime that applies them between rounds.
//
// A FaultPlan is a pre-sampled event list — every stochastic draw (which
// link dies, when a node crashes, how long a satellite pass shadows a link)
// happens at *plan build time* from a forked Rng stream, never during the
// run.  The engines then apply due events single-threaded at each slot
// boundary, before any shard steps, so serial and parallel schedules see
// the exact same topology in every round and the bit-identity proof of
// ARCHITECTURE.md carries over with no new argument needed.
//
// Degradation semantics (see ARCHITECTURE.md, "Dynamic topology & fault
// injection"): faults gate the send commit — a packet aimed at a dead link
// or a dead endpoint is dropped-and-counted at the sender; messages already
// in flight still deliver (the physical analogy: the photons left the
// antenna before the link died).  A crashed node stops stepping entirely;
// anything addressed to it while it is down is counted as a drop, and
// open-loop stations report the backlog stranded in a still-crashed node as
// orphaned_pkts rather than letting it pollute backlog/goodput.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/epoch.hpp"
#include "graph/graph.hpp"

namespace mmn::sim {

class ChannelDiscipline;

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kNodeCrash,
  kNodeRecover,
};

struct FaultEvent {
  std::uint64_t slot = 0;  ///< applied before this slot's round runs
  FaultKind kind = FaultKind::kLinkDown;
  std::uint32_t id = 0;  ///< EdgeId for link events, NodeId for node events

  bool operator==(const FaultEvent&) const = default;
};

/// Aggregate fault/degradation counters.  Event counts and drops accumulate
/// over the run; links_down/nodes_down snapshot the current dead sets.
struct FaultStats {
  std::uint64_t link_downs = 0;       ///< kLinkDown events applied
  std::uint64_t link_ups = 0;         ///< kLinkUp events applied
  std::uint64_t node_crashes = 0;     ///< kNodeCrash events applied
  std::uint64_t node_recoveries = 0;  ///< kNodeRecover events applied
  std::uint64_t links_down = 0;       ///< links currently dead
  std::uint64_t nodes_down = 0;       ///< nodes currently crashed
  std::uint64_t drops = 0;            ///< messages dropped at the fault seam
  std::uint64_t orphaned_pkts = 0;    ///< open-loop backlog stranded in
                                      ///< crashed stations at run end
  std::uint64_t recovery_slots = 0;   ///< first fault -> re-convergence
                                      ///< (recovery runs only)

  bool operator==(const FaultStats&) const = default;

  /// FNV-1a fold of every counter, for digesting a churn run.
  std::uint64_t digest_word() const;
};

/// A seed-deterministic, slot-aligned schedule of fault events.  Build one
/// with the factories below (or add() events by hand); the same (graph,
/// parameters, seed) triple always yields the same plan, on any schedule.
class FaultPlan {
 public:
  void add(FaultEvent e) { events_.push_back(e); }

  /// Scheduled outage windows a la satellite passes: the link goes down at
  /// `first_down` and then alternates `down_slots` dark / `up_slots` lit
  /// until `horizon`.
  void add_outage_windows(EdgeId link, std::uint64_t first_down,
                          std::uint64_t down_slots, std::uint64_t up_slots,
                          std::uint64_t horizon);

  /// k simultaneous link kills at `slot`, sampled in seeded order but
  /// connectivity-safe: a candidate that would disconnect the surviving
  /// graph is skipped, so protocol recovery is always well-posed.  Requires
  /// the graph to have k removable (non-bridge) edges.
  static FaultPlan link_kills(const Graph& g, std::uint32_t k,
                              std::uint64_t slot, std::uint64_t seed);

  /// Rate-driven link churn over [1, horizon): each slot flips a coin at
  /// `rate`; a hit either revives a random dead link or kills a random
  /// alive one (connectivity-safe, so a kill may fizzle on sparse graphs).
  static FaultPlan link_churn(const Graph& g, double rate,
                              std::uint64_t horizon, std::uint64_t seed);

  /// Rate-driven node churn over [1, horizon): each hit crashes a random
  /// alive node for `down_slots`, with the matching recovery scheduled
  /// immediately.  At most n/8 nodes are ever down at once.
  static FaultPlan node_churn(const Graph& g, double rate,
                              std::uint64_t down_slots, std::uint64_t horizon,
                              std::uint64_t seed);

  /// Concatenates another plan's events (e.g. link churn + node churn).
  void merge(const FaultPlan& other);

  bool empty() const { return events_.empty(); }
  std::span<const FaultEvent> events() const { return events_; }

  /// Slot of the earliest event; ~0 for an empty plan.
  std::uint64_t first_fault_slot() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Owns the overlay + stats for one engine run and replays the plan.  The
/// engines call apply_slot() once per slot boundary, single-threaded; the
/// replay is a cursor walk over a stable-sorted event list — zero
/// allocation after construction.
class FaultRuntime {
 public:
  FaultRuntime(const Graph& g, const FaultPlan& plan);

  /// Applies every event due at or before `slot`.  `discipline` gets
  /// stifle(v) on each node crash so a crashed node's pending channel state
  /// (TDMA slot, tree-walk contention, reservation grant) is withdrawn
  /// instead of transmitting from beyond the grave.
  void apply_slot(std::uint64_t slot, ChannelDiscipline& discipline);

  EpochOverlay& overlay() { return overlay_; }
  const EpochOverlay& overlay() const { return overlay_; }
  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  EpochOverlay overlay_;
  FaultStats stats_;
  std::vector<FaultEvent> events_;  ///< stable-sorted by slot
  std::size_t cursor_ = 0;
};

}  // namespace mmn::sim
