#include "sim/async_engine.hpp"

#include <utility>

#include "sim/fault.hpp"
#include "support/check.hpp"

namespace mmn::sim {

AsyncEngine::AsyncEngine(const Graph& g, const AsyncProcessFactory& factory,
                         std::uint64_t seed, std::uint32_t max_delay_slots,
                         std::unique_ptr<Scheduler> scheduler,
                         std::unique_ptr<ChannelDiscipline> discipline)
    : core_(g, seed, std::move(scheduler), std::move(discipline)),
      max_delay_ticks_(max_delay_slots * kTicksPerSlot) {
  MMN_REQUIRE(max_delay_slots >= 1, "max_delay_slots must be >= 1");
  const NodeId n = core_.num_nodes();
  // A message sent at tick t is due at most max_delay_slots * kTicksPerSlot
  // ticks later; +2 covers the boundary tick of the emitting phase.
  core_.slot_buckets().reset(n, kTicksPerSlot,
                             std::uint64_t{max_delay_slots} + 2);
  last_write_slot_.assign(n, static_cast<std::uint64_t>(-1));
  processes_.reserve(n);
  finished_flag_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    processes_.push_back(factory(core_.view(v)));
    MMN_REQUIRE(processes_.back() != nullptr, "factory returned null process");
    finished_flag_.push_back(processes_.back()->finished() ? 1 : 0);
  }
  outstanding_ = initial_outstanding(finished_flag_, core_.scheduler().shards());
}

AsyncEngine::~AsyncEngine() = default;

void AsyncEngine::install_faults(const FaultPlan& plan) {
  MMN_REQUIRE(!started_ && faults_ == nullptr,
              "install_faults: once, before the first slot");
  faults_ = std::make_unique<FaultRuntime>(core_.graph(), plan);
  core_.set_fault_runtime(faults_.get());
}

AsyncProcess& AsyncEngine::process(NodeId v) {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

const AsyncProcess& AsyncEngine::process(NodeId v) const {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

/// Folds the node's finished-transition (if any) into its shard's
/// outstanding counter; called right after the node's handlers ran, so the
/// batched count stays exact without an O(n) scan per slot.
void AsyncEngine::note_finished(unsigned shard, NodeId v) {
  const char done = processes_[v]->finished() ? 1 : 0;
  if (done != finished_flag_[v]) {
    finished_flag_[v] = done;
    outstanding_[shard].count += done ? -1 : 1;
  }
}

void AsyncEngine::start_node(unsigned shard, NodeId v) {
  const EpochOverlay* overlay = nullptr;
  if (faults_ != nullptr) [[unlikely]] {
    overlay = &faults_->overlay();
    if (!overlay->node_alive(v)) return;  // crashed at time zero
  }
  AsyncContext ctx(core_.view(v), core_.rng(v), core_.shard(shard),
                   slot_index_, max_delay_ticks_, &last_write_slot_[v],
                   /*now=*/0, overlay);
  processes_[v]->start(ctx);
  note_finished(shard, v);
}

void AsyncEngine::start_processes() {
  core_.scheduler().for_each_node(
      core_.num_nodes(), Scheduler::NodeFn{
                             [](void* env, unsigned s, NodeId v) {
                               static_cast<AsyncEngine*>(env)->start_node(s, v);
                             },
                             this});
  core_.commit_async_phase();
  started_ = true;
}

void AsyncEngine::deliver_node(unsigned shard, NodeId v) {
  SlotBuckets& buckets = core_.slot_buckets();
  const std::span<const StampedHeader> msgs = buckets.inbox(v);
  if (msgs.empty()) return;
  const EpochOverlay* overlay = nullptr;
  if (faults_ != nullptr) [[unlikely]] {
    overlay = &faults_->overlay();
    if (!overlay->node_alive(v)) {
      // A crashed node's deliveries are lost-and-counted; the staged
      // payloads are released wholesale by the next stage() call, so
      // skipping the handlers leaks nothing.
      core_.shard(shard).fault_drops += msgs.size();
      return;
    }
  }
  AsyncContext ctx(core_.view(v), core_.rng(v), core_.shard(shard),
                   slot_index_, max_delay_ticks_, &last_write_slot_[v],
                   /*now=*/0, overlay);
  for (const StampedHeader& m : msgs) {
    ctx.set_now(m.tick);
    // Materialize the Received view over the pooled payload; the pool is
    // immutable for the duration of the sub-round (pushes land in shard
    // buffers and reach the pool only at commit, after the barrier).
    const Received msg{m.from, m.via, &buckets.payload(m.ref)};
    processes_[v]->on_message(msg, ctx);
  }
  note_finished(shard, v);
}

void AsyncEngine::run_delivery_phase() {
  SlotBuckets& buckets = core_.slot_buckets();
  // Fixed point over deterministic sub-rounds: sub-round k delivers every
  // message due in this slot that was in flight when sub-round k - 1
  // committed, each destination handling its messages in ascending
  // (tick, seq).  A cascade send lands at least one tick after the message
  // that triggered it, so each sub-round's earliest delivery tick strictly
  // grows and the loop runs at most kTicksPerSlot times per slot.
  while (buckets.stage(slot_index_) > 0) {
    core_.scheduler().for_each_node(
        core_.num_nodes(),
        Scheduler::NodeFn{[](void* env, unsigned s, NodeId v) {
                            static_cast<AsyncEngine*>(env)->deliver_node(s, v);
                          },
                          this});
    core_.commit_async_phase();
  }
}

void AsyncEngine::fanout_node(unsigned shard, NodeId v,
                              const SlotObservation& obs) {
  const EpochOverlay* overlay = nullptr;
  if (faults_ != nullptr) [[unlikely]] {
    overlay = &faults_->overlay();
    if (!overlay->node_alive(v)) return;  // crashed nodes do not step
  }
  AsyncContext ctx(core_.view(v), core_.rng(v), core_.shard(shard),
                   slot_index_, max_delay_ticks_, &last_write_slot_[v],
                   slot_index_ * kTicksPerSlot, overlay);
  processes_[v]->on_slot(obs, ctx);
  note_finished(shard, v);
}

void AsyncEngine::run_slot_fanout(const SlotObservation& obs) {
  struct FanoutEnv {
    AsyncEngine* engine;
    const SlotObservation* obs;
  } env{this, &obs};
  core_.scheduler().for_each_node(
      core_.num_nodes(),
      Scheduler::NodeFn{[](void* e, unsigned s, NodeId v) {
                          auto* fe = static_cast<FanoutEnv*>(e);
                          fe->engine->fanout_node(s, v, *fe->obs);
                        },
                        &env});
  core_.commit_async_phase();
}

bool AsyncEngine::step(std::uint64_t slots) {
  if (status_ != RunStatus::kCompleted) status_ = RunStatus::kRunning;
  if (!started_) {
    // Slot-0 fault events apply before time zero: a node crashed at slot 0
    // never runs start().
    if (faults_ != nullptr) [[unlikely]] {
      faults_->apply_slot(slot_index_, core_.discipline());
    }
    start_processes();
  }
  for (std::uint64_t i = 0; i < slots; ++i) {
    if (status_ == RunStatus::kCompleted) return true;
    // Fault events due this slot apply at the boundary, single-threaded,
    // before the delivery phase — every phase of the slot sees the same
    // topology under every scheduler.
    if (faults_ != nullptr) [[unlikely]] {
      faults_->apply_slot(slot_index_, core_.discipline());
    }
    // One slot = delivery phase, channel resolution at the boundary, then
    // the outcome fans out to every node (which may start the next slot's
    // writes and sends).
    run_delivery_phase();
    const SlotObservation obs = core_.resolve_slot();
    ++core_.metrics().rounds;
    ++slot_index_;
    run_slot_fanout(obs);
    if (all_finished() && core_.slot_buckets().in_flight() == 0 &&
        core_.channel_idle()) {
      status_ = RunStatus::kCompleted;
    }
  }
  return status_ == RunStatus::kCompleted;
}

Metrics AsyncEngine::run(std::uint64_t max_slots) {
  if (!step(max_slots)) status_ = RunStatus::kSlotCapReached;
  return core_.metrics();
}

}  // namespace mmn::sim
