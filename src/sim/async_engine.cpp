#include "sim/async_engine.hpp"

#include <utility>

#include "support/check.hpp"

namespace mmn::sim {

/// Per-phase context of one node.  Every externally visible effect — sends
/// (with their delivery tick already drawn from the node's own RNG stream),
/// channel writes, message counts — is staged into the shard's buffer; the
/// core commits shards in ascending order after the phase barrier, so the
/// trace is scheduler-independent.  `now` is the simulated tick the node is
/// acting at: the delivery tick of the message in hand, or the boundary tick
/// during the on_slot fan-out.
class AsyncEngine::Context final : public AsyncContext {
 public:
  Context(AsyncEngine& engine, ShardBuffer& shard, NodeId v, std::uint64_t now)
      : engine_(engine),
        shard_(shard),
        view_(engine.core_.view(v)),
        rng_(engine.core_.rng(v)),
        now_(now) {}

  const LocalView& view() const override { return view_; }
  Rng& rng() override { return rng_; }
  std::uint64_t slot_index() const override { return engine_.slot_index_; }

  void set_now(std::uint64_t now) { now_ = now; }

  void send(EdgeId edge, const Packet& packet) override {
    const int idx = view_.link_index(edge);
    MMN_REQUIRE(idx >= 0, "send over a link not incident to this node");
    const Neighbor& nb = view_.links[static_cast<std::size_t>(idx)];
    const std::uint64_t delay = 1 + rng_.next_below(engine_.max_delay_ticks_);
    shard_.async_outbox.push_back(
        AsyncSend{now_ + delay, nb.id, Received{view_.self, edge, packet}});
    ++shard_.p2p_sent;
  }

  void channel_write(const Packet& packet) override {
    // Multiple writes per slot from one node collapse into one transmission:
    // physically the node is already holding the medium for this slot.  The
    // dedup slot is node-local state, so staging it here is shard-safe.
    auto& last = engine_.last_write_slot_[view_.self];
    if (last == engine_.slot_index_) return;
    last = engine_.slot_index_;
    shard_.channel_writes.push_back(ChannelWrite{view_.self, packet});
  }

 private:
  AsyncEngine& engine_;
  ShardBuffer& shard_;
  const LocalView& view_;
  Rng& rng_;
  std::uint64_t now_;
};

AsyncEngine::AsyncEngine(const Graph& g, const AsyncProcessFactory& factory,
                         std::uint64_t seed, std::uint32_t max_delay_slots,
                         std::unique_ptr<Scheduler> scheduler,
                         std::unique_ptr<ChannelDiscipline> discipline)
    : core_(g, seed, std::move(scheduler), std::move(discipline)),
      max_delay_ticks_(max_delay_slots * kTicksPerSlot) {
  MMN_REQUIRE(max_delay_slots >= 1, "max_delay_slots must be >= 1");
  const NodeId n = core_.num_nodes();
  // A message sent at tick t is due at most max_delay_slots * kTicksPerSlot
  // ticks later; +2 covers the boundary tick of the emitting phase.
  core_.slot_buckets().reset(n, kTicksPerSlot,
                             std::uint64_t{max_delay_slots} + 2);
  last_write_slot_.assign(n, static_cast<std::uint64_t>(-1));
  processes_.reserve(n);
  finished_flag_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    processes_.push_back(factory(core_.view(v)));
    MMN_REQUIRE(processes_.back() != nullptr, "factory returned null process");
    const bool done = processes_.back()->finished();
    finished_flag_.push_back(done ? 1 : 0);
    if (done) ++finished_count_;
  }
}

AsyncEngine::~AsyncEngine() = default;

AsyncProcess& AsyncEngine::process(NodeId v) {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

const AsyncProcess& AsyncEngine::process(NodeId v) const {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

/// Stages the node's finished-transition (if any) into its shard buffer;
/// called right after the node's handlers ran, so the incremental count
/// stays exact without an O(n) scan per slot.
void AsyncEngine::note_finished(unsigned shard, NodeId v) {
  const char done = processes_[v]->finished() ? 1 : 0;
  if (done != finished_flag_[v]) {
    finished_flag_[v] = done;
    core_.shard(shard).finished_delta += done ? 1 : -1;
  }
}

void AsyncEngine::commit_phase() {
  finished_count_ = static_cast<NodeId>(
      static_cast<std::int64_t>(finished_count_) + core_.commit_async_phase());
}

void AsyncEngine::start_processes() {
  core_.scheduler().for_each_node(
      core_.num_nodes(), [this](unsigned s, NodeId v) {
        Context ctx(*this, core_.shard(s), v, /*now=*/0);
        processes_[v]->start(ctx);
        note_finished(s, v);
      });
  commit_phase();
  started_ = true;
}

void AsyncEngine::run_delivery_phase() {
  SlotBuckets& buckets = core_.slot_buckets();
  // Fixed point over deterministic sub-rounds: sub-round k delivers every
  // message due in this slot that was in flight when sub-round k - 1
  // committed, each destination handling its messages in ascending
  // (tick, seq).  A cascade send lands at least one tick after the message
  // that triggered it, so each sub-round's earliest delivery tick strictly
  // grows and the loop runs at most kTicksPerSlot times per slot.
  while (buckets.stage(slot_index_) > 0) {
    core_.scheduler().for_each_node(
        core_.num_nodes(), [this, &buckets](unsigned s, NodeId v) {
          const std::span<const StampedMessage> msgs = buckets.inbox(v);
          if (msgs.empty()) return;
          Context ctx(*this, core_.shard(s), v, /*now=*/0);
          for (const StampedMessage& m : msgs) {
            ctx.set_now(m.tick);
            processes_[v]->on_message(m.msg, ctx);
          }
          note_finished(s, v);
        });
    commit_phase();
  }
}

void AsyncEngine::run_slot_fanout(const SlotObservation& obs) {
  core_.scheduler().for_each_node(
      core_.num_nodes(), [this, &obs](unsigned s, NodeId v) {
        Context ctx(*this, core_.shard(s), v, slot_index_ * kTicksPerSlot);
        processes_[v]->on_slot(obs, ctx);
        note_finished(s, v);
      });
  commit_phase();
}

bool AsyncEngine::step(std::uint64_t slots) {
  if (status_ != RunStatus::kCompleted) status_ = RunStatus::kRunning;
  if (!started_) start_processes();
  for (std::uint64_t i = 0; i < slots; ++i) {
    if (status_ == RunStatus::kCompleted) return true;
    // One slot = delivery phase, channel resolution at the boundary, then
    // the outcome fans out to every node (which may start the next slot's
    // writes and sends).
    run_delivery_phase();
    const SlotObservation obs = core_.resolve_slot();
    ++core_.metrics().rounds;
    ++slot_index_;
    run_slot_fanout(obs);
    if (all_finished() && core_.slot_buckets().in_flight() == 0 &&
        core_.channel_idle()) {
      status_ = RunStatus::kCompleted;
    }
  }
  return status_ == RunStatus::kCompleted;
}

Metrics AsyncEngine::run(std::uint64_t max_slots) {
  if (!step(max_slots)) status_ = RunStatus::kSlotCapReached;
  return core_.metrics();
}

}  // namespace mmn::sim
