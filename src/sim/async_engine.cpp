#include "sim/async_engine.hpp"

#include <string>

#include "support/check.hpp"

namespace mmn::sim {

class AsyncEngine::Context final : public AsyncContext {
 public:
  Context(AsyncEngine& engine, NodeId v)
      : engine_(engine),
        view_(engine.core_.view(v)),
        rng_(engine.core_.rng(v)) {}

  const LocalView& view() const override { return view_; }
  Rng& rng() override { return rng_; }
  std::uint64_t slot_index() const override { return engine_.slot_index_; }

  void send(EdgeId edge, const Packet& packet) override {
    const int idx = view_.link_index(edge);
    MMN_REQUIRE(idx >= 0, "send over a link not incident to this node");
    const Neighbor& nb = view_.links[static_cast<std::size_t>(idx)];
    const std::uint64_t delay = 1 + rng_.next_below(engine_.max_delay_ticks_);
    engine_.pending_.push(PendingMessage{
        engine_.now_tick_ + delay, engine_.send_seq_++, nb.id,
        Received{view_.self, edge, packet}});
    ++engine_.core_.metrics().p2p_messages;
  }

  void channel_write(const Packet& packet) override {
    // Multiple writes per slot from one node collapse into one transmission:
    // physically the node is already holding the medium for this slot.
    auto& last = engine_.last_write_slot_[view_.self];
    if (last == engine_.slot_index_) return;
    last = engine_.slot_index_;
    engine_.core_.channel().write(view_.self, packet);
  }

 private:
  AsyncEngine& engine_;
  const LocalView& view_;
  Rng& rng_;
};

AsyncEngine::AsyncEngine(const Graph& g, const AsyncProcessFactory& factory,
                         std::uint64_t seed, std::uint32_t max_delay_slots)
    : core_(g, seed), max_delay_ticks_(max_delay_slots * kTicksPerSlot) {
  MMN_REQUIRE(max_delay_slots >= 1, "max_delay_slots must be >= 1");
  const NodeId n = core_.num_nodes();
  last_write_slot_.assign(n, static_cast<std::uint64_t>(-1));
  processes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    processes_.push_back(factory(core_.view(v)));
    MMN_REQUIRE(processes_.back() != nullptr, "factory returned null process");
  }
}

AsyncEngine::~AsyncEngine() = default;

AsyncProcess& AsyncEngine::process(NodeId v) {
  MMN_REQUIRE(v < processes_.size(), "node id out of range");
  return *processes_[v];
}

bool AsyncEngine::all_finished() const {
  for (const auto& p : processes_) {
    if (!p->finished()) return false;
  }
  return true;
}

void AsyncEngine::deliver_until(std::uint64_t tick) {
  while (!pending_.empty() && pending_.top().tick <= tick) {
    const PendingMessage pm = pending_.top();
    pending_.pop();
    now_tick_ = pm.tick;
    Context ctx(*this, pm.to);
    processes_[pm.to]->on_message(pm.msg, ctx);
  }
  now_tick_ = tick;
}

Metrics AsyncEngine::run(std::uint64_t max_slots) {
  for (NodeId v = 0; v < processes_.size(); ++v) {
    Context ctx(*this, v);
    processes_[v]->start(ctx);
  }
  while (slot_index_ < max_slots) {
    // Deliver every message that arrives during the slot in progress, then
    // resolve the slot at its boundary and fan the outcome out to all nodes.
    deliver_until((slot_index_ + 1) * kTicksPerSlot);
    const SlotObservation obs = core_.channel().resolve(core_.metrics());
    ++core_.metrics().rounds;
    ++slot_index_;
    for (NodeId v = 0; v < processes_.size(); ++v) {
      Context ctx(*this, v);
      processes_[v]->on_slot(obs, ctx);
    }
    if (all_finished() && pending_.empty() && core_.channel().writers() == 0) {
      return core_.metrics();
    }
  }
  MMN_ASSERT(false, "async protocol did not terminate within " +
                        std::to_string(max_slots) + " slots");
  return core_.metrics();  // unreachable
}

}  // namespace mmn::sim
