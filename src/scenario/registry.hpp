// Scenario registry: named workload configurations.
//
// A Scenario bundles a graph family, a protocol factory, a result digest,
// and a default n/seed sweep under one name ("mst/random", "global/min/
// rand/ring", ...).  Benches, examples, and tests consume the table from
// here instead of hand-rolling their own loops, so adding a workload is one
// registration — the throughput bench, the equivalence suite, and any sweep
// driver pick it up automatically.
//
// Scenarios are engine-generic: run() executes a workload under the
// synchronous lockstep Engine or — for channel-free workloads, via the
// busy-tone synchronizer (Section 7.1) — under the asynchronous AsyncEngine,
// each on either scheduler.  All scenarios are deterministic per (n, seed,
// engine) and scheduler-independent: run() under a ParallelScheduler returns
// bit-identical Metrics and digest to a serial run of the same engine (see
// sim/scheduler.hpp and the async determinism notes in sim/async_engine.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "support/metrics.hpp"

namespace mmn::scenario {

/// Which stepping policy run() drives the workload with.
enum class EngineKind : std::uint8_t {
  kSync,   ///< lockstep rounds (sim::Engine)
  kAsync,  ///< bounded-delay links + synchronizer (sim::AsyncEngine)
};

/// Engine-generic view of a finished run's per-node protocol processes, for
/// digest implementations.  `at(v)` resolves to the protocol process of node
/// v regardless of the engine that ran it (the async path unwraps the
/// synchronizer automatically).
struct NodeResults {
  NodeId n = 0;
  std::function<const sim::Process&(NodeId)> at;
  /// Set instead of `at` on native-asynchronous runs (the open-loop load
  /// scenarios, which run AsyncProcesses without the synchronizer); digest
  /// implementations that support both engines side-cast whichever is set.
  std::function<const sim::AsyncProcess&(NodeId)> at_async = nullptr;
  /// Digest window for rank-mode chaining (scenario/rank_run.hpp): digests
  /// fold node ids [begin, begin + n) starting from accumulator h0, so rank
  /// r folds its own window over rank r-1's partial hash and the chain ends
  /// bit-identical to the serial whole-run fold.  The defaults (0 and the
  /// FNV-1a offset basis, == kDigestSeed) reproduce the classic fold.
  NodeId begin = 0;
  std::uint64_t h0 = 0xcbf29ce484222325ULL;
};

struct Scenario {
  std::string name;         ///< "family/variant", unique in the registry
  std::string description;  ///< one line for listings

  /// The topology family.  Every entry is size-parameterized: run() builds
  /// the graph from TopologySpec{topology, n, seed}, so any sweep driver
  /// can take the same scenario to 4k/16k/64k nodes (scenario_sweep --n=…,
  /// the topology/build benches, the large-n CI smoke).  Families with
  /// structural constraints (grids, hypercubes) round a nominal n via
  /// topology_round_n; strict CLIs check topology_valid_n instead.
  TopoKind topology = TopoKind::kRandom;

  /// Builds the per-node process factory for a given topology.
  std::function<sim::ProcessFactory(const Graph& g)> make_factory;

  /// Order-independent digest of the per-node results (e.g. the MST edge
  /// set, the fragment assignment, the computed global value), used to
  /// compare runs across schedulers and engines.  May be null.
  std::function<std::uint64_t(const NodeResults& results)> digest;

  std::vector<NodeId> sweep_n;  ///< default sweep sizes, ascending
  std::uint64_t default_seed = 7;
  std::uint64_t max_rounds = 200'000'000;  ///< round cap (slot cap async)

  /// True if the protocol never touches the channel — the requirement for
  /// running it under the synchronizer on the asynchronous engine.
  bool channel_free = false;

  /// Message-delay bound, in slots, for EngineKind::kAsync runs.
  std::uint32_t async_max_delay_slots = 1;

  /// Medium-access policy the run executes under
  /// (sim/channel_discipline.hpp).  Asynchronous runs go through the
  /// busy-tone synchronizer, whose idle-slot pulses a deferring discipline
  /// would falsify — run() rejects kTdma/kCapetanakis there.  (Load
  /// scenarios bypass the synchronizer entirely; see below.)
  sim::DisciplineKind discipline = sim::DisciplineKind::kFreeForAll;

  /// Open-loop load knobs (core/openloop.hpp).  A scenario with
  /// make_load_factory set is load-capable: run() rebuilds its stations at
  /// the caller's offered load (scenario_sweep --load=, bench_load_sweep),
  /// falling back to default_load when the caller passes 0.
  double default_load = 0.0;
  std::function<sim::ProcessFactory(const Graph& g, double load)>
      make_load_factory = nullptr;

  /// Native asynchronous variant of a load workload.  When set,
  /// EngineKind::kAsync drives these AsyncProcesses on the AsyncEngine
  /// directly — no synchronizer, so deferring disciplines are allowed
  /// (open-loop stations read nothing into idle slots; the channel_free
  /// requirement applies only to the synchronizer path).
  std::function<sim::AsyncProcessFactory(const Graph& g, double load)>
      make_async_load_factory = nullptr;

  /// Fault-injection hooks (sim/fault.hpp).  A scenario with make_fault_plan
  /// set is fault-capable: run() builds the plan at intensity k — the
  /// caller's --faults= knob, falling back to default_faults when the caller
  /// passes 0 — and installs it on the engine.  The plan is a pure function
  /// of (g, k, seed), so faulted runs stay deterministic and
  /// scheduler-independent like everything else in the table.
  std::function<sim::FaultPlan(const Graph& g, std::uint32_t k,
                               std::uint64_t seed)>
      make_fault_plan = nullptr;
  std::uint32_t default_faults = 0;  ///< k when the caller passes 0

  /// Recovery flow (the fault/ convergence scenarios).  When set, a faulted
  /// run is two-phase: phase A steps the faulted protocol serially to
  /// fault_epoch_slots rounds, then the epoch overlay compacts the surviving
  /// topology into a fresh arena and phase B re-runs the protocol from
  /// scratch on it under the caller's scheduler/engine.  The digest folds
  /// phase B's protocol result with the overlay's kill-set word — both are
  /// invariant to where the epoch boundary lands, so recovery digests pin
  /// re-convergence without being sensitive to drop timing.
  bool fault_recovery = false;
  std::uint64_t fault_epoch_slots = 0;
};

struct RunResult {
  Metrics metrics;
  std::uint64_t digest = 0;  ///< 0 when the scenario has no digest fn
  NodeId realized_n = 0;     ///< nodes in the generated graph
  /// False when the round/slot cap elapsed with work still pending.  The
  /// digest is still reported — a capped run cuts off at a deterministic
  /// slot count, so capped results remain scheduler-comparable (the
  /// free-for-all load scenarios livelock past saturation by design).
  bool completed = true;
  /// Engine-uniform status: kCompleted, or kSlotCapReached when the cap
  /// elapsed (mirrors `completed`; neither engine aborts on a capped run).
  sim::RunStatus status = sim::RunStatus::kCompleted;
  /// Fault accounting of a faulted run; zeroed on fault-free runs.  On
  /// recovery scenarios this is phase A's tally with recovery_slots filled.
  sim::FaultStats faults;
  /// Recovery scenarios: slots from the first fault event until phase B
  /// re-converged (phase-A remainder + phase-B rounds).
  std::uint64_t recovery_slots = 0;
};

class Registry {
 public:
  static Registry& instance();

  /// Registers a scenario; the name must be unused.  Elements have stable
  /// addresses (deque storage): pointers and references returned by find()
  /// or all() stay valid across later add() calls, which benches rely on
  /// when capturing scenarios in registered-benchmark lambdas.
  void add(Scenario s);

  const Scenario* find(std::string_view name) const;
  const std::deque<Scenario>& all() const { return scenarios_; }

 private:
  std::deque<Scenario> scenarios_;
};

/// Registers the built-in scenario table; idempotent.
void register_builtin();

/// The graph run() executes `s` on at nominal size n: the scenario's
/// topology family at topology_round_n(s.topology, n) nodes.
Graph make_scenario_graph(const Scenario& s, NodeId n, std::uint64_t seed);

/// Runs one scenario at size n: generate the graph, build the engine of the
/// requested kind under `scheduler` (null = serial), run to completion,
/// digest the results.  EngineKind::kAsync runs load-capable scenarios
/// natively on the AsyncEngine (make_async_load_factory); all other
/// scenarios require s.channel_free and go through the busy-tone
/// synchronizer.  A run that exhausts s.max_rounds rounds/slots reports
/// completed == false instead of aborting.  `load` > 0 selects the offered
/// load of a load-capable scenario (0 = its default_load; rejected for
/// scenarios without make_load_factory).  `faults` > 0 selects the fault
/// intensity of a fault-capable scenario (0 = its default_faults; rejected
/// for scenarios without make_fault_plan).
RunResult run(const Scenario& s, NodeId n, std::uint64_t seed,
              std::unique_ptr<sim::Scheduler> scheduler = nullptr,
              EngineKind engine = EngineKind::kSync, double load = 0.0,
              std::uint32_t faults = 0);

/// FNV-1a fold helper for digest implementations.
inline std::uint64_t digest_mix(std::uint64_t h, std::uint64_t word) {
  h ^= word;
  return h * 0x100000001b3ULL;
}
inline constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;

}  // namespace mmn::scenario
