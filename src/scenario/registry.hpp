// Scenario registry: named workload configurations.
//
// A Scenario bundles a graph family, a protocol factory, a result digest,
// and a default n/seed sweep under one name ("mst/random", "global/min/
// rand/ring", ...).  Benches, examples, and tests consume the table from
// here instead of hand-rolling their own loops, so adding a workload is one
// registration — the throughput bench, the equivalence suite, and any sweep
// driver pick it up automatically.
//
// All scenarios are deterministic per (n, seed) and scheduler-independent:
// run() under a ParallelScheduler returns bit-identical Metrics and digest
// to a serial run (see sim/scheduler.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "sim/engine.hpp"
#include "support/metrics.hpp"

namespace mmn::scenario {

struct Scenario {
  std::string name;         ///< "family/variant", unique in the registry
  std::string description;  ///< one line for listings
  std::string graph_family; ///< for display ("random", "ring", ...)

  /// Builds the topology for a nominal size n (families with structural
  /// constraints — grids, hypercubes — may round n; read the graph's
  /// num_nodes() for the realized size).
  std::function<Graph(NodeId n, std::uint64_t seed)> make_graph;

  /// Builds the per-node process factory for a given topology.
  std::function<sim::ProcessFactory(const Graph& g)> make_factory;

  /// Order-independent digest of the per-node results (e.g. the MST edge
  /// set, the fragment assignment, the computed global value), used to
  /// compare runs across schedulers.  May be null.
  std::function<std::uint64_t(const sim::Engine& engine)> digest;

  std::vector<NodeId> sweep_n;  ///< default sweep sizes, ascending
  std::uint64_t default_seed = 7;
  std::uint64_t max_rounds = 200'000'000;
};

struct RunResult {
  Metrics metrics;
  std::uint64_t digest = 0;  ///< 0 when the scenario has no digest fn
  NodeId realized_n = 0;     ///< nodes in the generated graph
};

class Registry {
 public:
  static Registry& instance();

  /// Registers a scenario; the name must be unused.  Elements have stable
  /// addresses (deque storage): pointers and references returned by find()
  /// or all() stay valid across later add() calls, which benches rely on
  /// when capturing scenarios in registered-benchmark lambdas.
  void add(Scenario s);

  const Scenario* find(std::string_view name) const;
  const std::deque<Scenario>& all() const { return scenarios_; }

 private:
  std::deque<Scenario> scenarios_;
};

/// Registers the built-in scenario table; idempotent.
void register_builtin();

/// Runs one scenario at size n: generate the graph, build the engine under
/// `scheduler` (null = serial), run to completion, digest the results.
RunResult run(const Scenario& s, NodeId n, std::uint64_t seed,
              std::unique_ptr<sim::Scheduler> scheduler = nullptr);

/// FNV-1a fold helper for digest implementations.
inline std::uint64_t digest_mix(std::uint64_t h, std::uint64_t word) {
  h ^= word;
  return h * 0x100000001b3ULL;
}
inline constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;

}  // namespace mmn::scenario
