#include "scenario/rank_run.hpp"

#include <cstring>

#include "graph/generators.hpp"
#include "sim/fault.hpp"
#include "sim/rank.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard_comm.hpp"
#include "support/check.hpp"

namespace mmn::scenario {
namespace {

/// Per-rank tallies gathered to rank 0 after the run: the reductions whose
/// serial counterparts are sums over all nodes, plus the digest chain's
/// final accumulator (meaningful only in rank K-1's record) and the
/// completion verdict (replicated — rank 0 cross-checks).
struct RankTally {
  std::uint64_t digest = 0;
  std::uint64_t p2p_messages = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t xshard_msgs = 0;
  std::uint64_t boundary_edges = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t completed = 0;
};
static_assert(sizeof(RankTally) == 7 * sizeof(std::uint64_t),
              "RankTally is exchanged as raw bytes");

void swap_bytes(sim::shard_comm::Transport& t, unsigned peer, const void* out,
                std::size_t out_bytes, void* in, std::size_t in_bytes,
                std::vector<std::uint8_t>& scratch) {
  t.exchange(peer, static_cast<const std::uint8_t*>(out), out_bytes, scratch);
  MMN_REQUIRE(scratch.size() == in_bytes,
              "rank control exchange: unexpected frame size");
  if (in_bytes > 0) std::memcpy(in, scratch.data(), in_bytes);
}

void run_rank(const Scenario& s, NodeId nominal, std::uint64_t seed,
              double load, std::uint32_t faults,
              sim::shard_comm::Transport& t, RunResult* out,
              ShardStats* out_stats) {
  const unsigned rank = t.rank();
  const unsigned ranks = t.ranks();
  const NodeId n = topology_round_n(s.topology, nominal);
  const auto [lo, hi] = sim::Scheduler::shard_range(n, rank, ranks);

  // Only this rank's window of the CSR arena is materialized; the windowed
  // build replays the full generator and weight-permutation streams, so
  // owned rows are bit-identical to the full build's.
  const Graph g = build_topology_window(TopologySpec{s.topology, n, seed},
                                        GraphWindow{lo, hi});

  const double offered = load > 0.0 ? load : s.default_load;
  const std::uint32_t intensity = faults > 0 ? faults : s.default_faults;
  sim::FaultPlan plan;
  if (intensity > 0 && s.make_fault_plan) {
    // Fault plans are drawn from the full topology (global edge-id lottery).
    // Build it transiently on every rank — the plan is a pure function of
    // (graph, intensity, seed), so all replicas agree — then drop it before
    // the run so the steady-state footprint stays the window's.
    const Graph full = make_scenario_graph(s, nominal, seed);
    plan = s.make_fault_plan(full, intensity, seed);
  }
  const bool faulted = !plan.empty();
  MMN_REQUIRE(!(faulted && s.fault_recovery),
              "fault-recovery scenarios (two-phase epoch rebuild) do not "
              "run sharded");

  sim::RankEngine eng(
      g, sim::RankSpec{rank, ranks, lo, hi},
      s.make_load_factory ? s.make_load_factory(g, offered)
                          : s.make_factory(g),
      seed, t,
      sim::make_discipline(s.discipline, sim::UnslottedConfig{}, seed));
  if (faulted) eng.install_faults(plan);
  const bool completed = eng.step(s.max_rounds);

  std::vector<std::uint8_t> scratch;

  // Digest chain, rank-major: rank r folds its window starting from rank
  // r-1's partial accumulator, reproducing the serial node-major fold.
  std::uint64_t h = 0;
  if (s.digest) {
    std::uint64_t h_prev = kDigestSeed;
    std::uint64_t dummy = 0;
    if (rank > 0) {
      swap_bytes(t, rank - 1, &dummy, sizeof(dummy), &h_prev, sizeof(h_prev),
                 scratch);
    }
    h = s.digest(NodeResults{
        hi - lo,
        [&eng](NodeId v) -> const sim::Process& { return eng.process(v); },
        nullptr, lo, h_prev});
    if (rank + 1 < ranks) {
      swap_bytes(t, rank + 1, &h, sizeof(h), &dummy, sizeof(dummy), scratch);
    }
  }

  RankTally mine;
  mine.digest = h;
  mine.p2p_messages = eng.metrics().p2p_messages;
  mine.fault_drops = faulted ? eng.faults()->stats().drops : 0;
  mine.xshard_msgs = eng.xshard_msgs();
  mine.boundary_edges = eng.boundary_edges();
  mine.wire_bytes = t.bytes_out();
  mine.completed = completed ? 1 : 0;

  if (rank != 0) {
    swap_bytes(t, 0, &mine, sizeof(mine), nullptr, 0, scratch);
    return;
  }

  // Rank 0: gather every peer's tally and assemble the serial-identical
  // result.  Slot/round counters are replicas (take this rank's); the
  // per-node sums reduce across ranks.
  RankTally total = mine;
  for (unsigned r = 1; r < ranks; ++r) {
    RankTally peer;
    swap_bytes(t, r, nullptr, 0, &peer, sizeof(peer), scratch);
    MMN_REQUIRE(peer.completed == mine.completed,
                "ranks disagree on termination — determinism broken");
    total.p2p_messages += peer.p2p_messages;
    total.fault_drops += peer.fault_drops;
    total.xshard_msgs += peer.xshard_msgs;
    total.boundary_edges += peer.boundary_edges;
    total.wire_bytes += peer.wire_bytes;
    if (r == ranks - 1) total.digest = peer.digest;  // chain ends at K-1
  }

  RunResult result;
  result.realized_n = g.num_nodes();
  result.completed = completed;
  result.status = completed ? sim::RunStatus::kCompleted
                            : sim::RunStatus::kSlotCapReached;
  result.metrics = eng.metrics();
  result.metrics.p2p_messages = total.p2p_messages;
  if (s.digest) result.digest = total.digest;
  if (faulted) {
    result.faults = eng.faults()->stats();  // event counters are replicas
    result.faults.drops = total.fault_drops;
    if (s.digest) {
      result.digest = digest_mix(result.digest, result.faults.digest_word());
    }
  }
  *out = result;

  if (out_stats != nullptr) {
    out_stats->xshard_msgs = total.xshard_msgs;
    // Every cross-shard edge is counted by both owning windows.
    out_stats->boundary_edges = total.boundary_edges / 2;
    out_stats->wire_bytes = total.wire_bytes;
    out_stats->rounds = result.metrics.rounds;
  }
}

}  // namespace

RunResult run_sharded(const Scenario& s, NodeId n, std::uint64_t seed,
                      unsigned ranks, double load, std::uint32_t faults,
                      ShardStats* stats) {
  MMN_REQUIRE(ranks >= 1, "ranks must be positive");
  MMN_REQUIRE(load == 0.0 || s.make_load_factory != nullptr,
              "scenario is not load-capable (no make_load_factory)");
  MMN_REQUIRE(faults == 0 || s.make_fault_plan != nullptr,
              "scenario is not fault-capable (no make_fault_plan)");
  if (ranks == 1) {
    if (stats != nullptr) *stats = ShardStats{};
    RunResult r = run(s, n, seed, nullptr, EngineKind::kSync, load, faults);
    if (stats != nullptr) stats->rounds = r.metrics.rounds;
    return r;
  }
  RunResult result;
  sim::shard_comm::run_ranks(ranks, [&](sim::shard_comm::Transport& t) {
    run_rank(s, n, seed, load, faults, t, &result, stats);
  });
  return result;
}

}  // namespace mmn::scenario
