// Sharded scenario execution: scenario::run's synchronous branch, spread
// over rank processes (sim/rank.hpp + sim/shard_comm.hpp).
//
// run_sharded(s, n, seed, K) is the drop-in sharded counterpart of
// run(s, n, seed): it forks K ranks, each builds ONLY its node window of
// the topology (build_topology_window — same generator stream, global edge
// ids and the full weight permutation, so windowed CSR rows are
// bit-identical to the full build's), steps a RankEngine to completion, and
// rank 0 assembles the identical RunResult — digest, metrics, and fault
// stats all bit-equal to the serial run's.  The digest is chained: rank r
// folds its own window [lo, hi) starting from rank r-1's partial
// accumulator (NodeResults::begin/h0), which reproduces the serial
// node-major fold exactly; reductions (p2p messages, fault drops) ride the
// same post-run gather to rank 0.
#pragma once

#include <cstdint>

#include "scenario/registry.hpp"

namespace mmn::scenario {

/// Cross-shard traffic accounting of a sharded run, for bench_shard_comm.
/// Zeroed on the ranks == 1 delegation path (no wire, no frontier).
struct ShardStats {
  std::uint64_t xshard_msgs = 0;     ///< cross-shard headers sent, all ranks
  std::uint64_t boundary_edges = 0;  ///< edges with endpoints in two shards
  std::uint64_t wire_bytes = 0;      ///< transport bytes sent, all ranks
  std::uint64_t rounds = 0;          ///< rounds run (replicated count)
};

/// Runs scenario `s` at nominal size n over `ranks` processes and returns
/// rank 0's assembled result, bit-identical (digest + metrics + fault
/// stats) to run(s, n, seed, nullptr, kSync, load, faults).  ranks == 1
/// delegates to that serial run.  Synchronous-engine scenarios only;
/// fault-recovery scenarios (two-phase epoch rebuild) are rejected.
RunResult run_sharded(const Scenario& s, NodeId n, std::uint64_t seed,
                      unsigned ranks, double load = 0.0,
                      std::uint32_t faults = 0, ShardStats* stats = nullptr);

}  // namespace mmn::scenario
