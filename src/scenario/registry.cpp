#include "scenario/registry.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "baselines/broadcast_global.hpp"
#include "baselines/p2p_global.hpp"
#include "core/anonymous.hpp"
#include "core/global_function.hpp"
#include "core/openloop.hpp"
#include "core/mst.hpp"
#include "core/partition_det.hpp"
#include "core/partition_rand.hpp"
#include "core/size.hpp"
#include "core/synchronizer.hpp"
#include "graph/generators.hpp"
#include "sim/async_engine.hpp"
#include "support/check.hpp"

namespace mmn::scenario {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(Scenario s) {
  MMN_REQUIRE(!s.name.empty(), "scenario needs a name");
  MMN_REQUIRE(find(s.name) == nullptr, "duplicate scenario name");
  MMN_REQUIRE(s.make_factory != nullptr, "scenario needs a process factory");
  MMN_REQUIRE(!s.sweep_n.empty(), "scenario needs a default sweep");
  scenarios_.push_back(std::move(s));
}

const Scenario* Registry::find(std::string_view name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Graph make_scenario_graph(const Scenario& s, NodeId n, std::uint64_t seed) {
  return build_topology(
      TopologySpec{s.topology, topology_round_n(s.topology, n), seed});
}

RunResult run(const Scenario& s, NodeId n, std::uint64_t seed,
              std::unique_ptr<sim::Scheduler> scheduler, EngineKind engine,
              double load, std::uint32_t faults) {
  MMN_REQUIRE(load == 0.0 || s.make_load_factory != nullptr,
              "scenario is not load-capable (no make_load_factory)");
  MMN_REQUIRE(faults == 0 || s.make_fault_plan != nullptr,
              "scenario is not fault-capable (no make_fault_plan)");
  const Graph g = make_scenario_graph(s, n, seed);
  RunResult result;
  result.realized_n = g.num_nodes();
  // The run seed also feeds the discipline's own lottery stream (the
  // stabilized-Aloha kinds; the others ignore it — see make_discipline).
  const double offered = load > 0.0 ? load : s.default_load;
  const std::uint32_t intensity = faults > 0 ? faults : s.default_faults;
  sim::FaultPlan plan;
  if (intensity > 0 && s.make_fault_plan) {
    plan = s.make_fault_plan(g, intensity, seed);
  }
  const bool faulted = !plan.empty();

  if (faulted && s.fault_recovery) {
    // Two-phase recovery flow.  Phase A steps the protocol serially into
    // the fault: the round where the kills land runs with in-flight traffic
    // hitting dead links (dropped and counted), and one round beyond would
    // start violating the protocol's own invariants — the paper's
    // deterministic protocols assume reliable links, so the recovery
    // mechanism is the epoch rebuild, not in-protocol loss tolerance.  The
    // epoch overlay then compacts the surviving topology into a fresh arena
    // and phase B re-runs the protocol from scratch on it under the
    // caller's scheduler; the slots between the fault and the configured
    // epoch boundary model the detection/rebuild window and bill into
    // recovery_slots.  The recovery digest folds phase B's protocol result
    // with the overlay's kill-set word — both are invariant to where the
    // epoch boundary lands (any boundary past the last fault event yields
    // the same compacted graph), so recovery runs pin re-convergence
    // without being sensitive to drop timing.
    MMN_REQUIRE(engine == EngineKind::kSync,
                "fault-recovery scenarios run on the synchronous engine");
    MMN_REQUIRE(s.fault_epoch_slots > 0,
                "fault-recovery scenarios need fault_epoch_slots");
    std::uint64_t last_fault = 0;
    for (const sim::FaultEvent& e : plan.events()) {
      last_fault = std::max(last_fault, e.slot);
    }
    MMN_REQUIRE(s.fault_epoch_slots > last_fault,
                "the epoch boundary must fall after the last fault event");
    sim::Engine wounded(g, s.make_factory(g), seed, nullptr,
                        sim::make_discipline(s.discipline,
                                             sim::UnslottedConfig{}, seed));
    wounded.install_faults(plan);
    wounded.step(last_fault + 1);
    EpochOverlay& overlay = wounded.faults()->overlay();
    const EpochOverlay::Compaction compaction = overlay.compact();
    const Graph& g2 = compaction.graph;
    sim::Engine eng(g2, s.make_factory(g2), seed, std::move(scheduler),
                    sim::make_discipline(s.discipline, sim::UnslottedConfig{},
                                         seed));
    result.completed = eng.step(s.max_rounds);
    result.status = result.completed ? sim::RunStatus::kCompleted
                                     : sim::RunStatus::kSlotCapReached;
    result.metrics = eng.metrics();
    result.faults = wounded.faults()->stats();
    const std::uint64_t first = plan.first_fault_slot();
    const std::uint64_t phase_a =
        s.fault_epoch_slots > first ? s.fault_epoch_slots - first : 0;
    result.recovery_slots = phase_a + eng.metrics().rounds;
    result.faults.recovery_slots = result.recovery_slots;
    if (s.digest) {
      result.digest = digest_mix(
          s.digest(NodeResults{g2.num_nodes(),
                               [&eng](NodeId v) -> const sim::Process& {
                                 return eng.process(v);
                               }}),
          overlay.digest_word());
    }
    return result;
  }

  if (engine == EngineKind::kSync) {
    sim::Engine eng(g,
                    s.make_load_factory ? s.make_load_factory(g, offered)
                                        : s.make_factory(g),
                    seed, std::move(scheduler),
                    sim::make_discipline(s.discipline, sim::UnslottedConfig{},
                                         seed));
    if (faulted) eng.install_faults(plan);
    result.completed = eng.step(s.max_rounds);
    result.status = result.completed ? sim::RunStatus::kCompleted
                                     : sim::RunStatus::kSlotCapReached;
    result.metrics = eng.metrics();
    if (s.digest) {
      result.digest = s.digest(NodeResults{
          g.num_nodes(),
          [&eng](NodeId v) -> const sim::Process& { return eng.process(v); }});
    }
    if (faulted) {
      result.faults = eng.faults()->stats();
      // The fault trajectory is part of the run's identity: fold it so the
      // scheduler-equivalence suites cover drop accounting too.
      if (s.digest) {
        result.digest = digest_mix(result.digest, result.faults.digest_word());
      }
    }
    return result;
  }
  if (s.make_async_load_factory) {
    // Native asynchronous open-loop path: the stations are AsyncProcesses
    // driven by the AsyncEngine directly, no synchronizer in between —
    // deferring disciplines are fine because open-loop stations never read
    // an idle slot as information.
    sim::AsyncEngine eng(g, s.make_async_load_factory(g, offered), seed,
                         s.async_max_delay_slots, std::move(scheduler),
                         sim::make_discipline(s.discipline,
                                              sim::UnslottedConfig{}, seed));
    if (faulted) eng.install_faults(plan);
    result.metrics = eng.run(s.max_rounds);
    result.status = eng.status();
    result.completed = result.status == sim::RunStatus::kCompleted;
    if (s.digest) {
      result.digest = s.digest(NodeResults{
          g.num_nodes(), nullptr,
          [&eng](NodeId v) -> const sim::AsyncProcess& {
            return eng.process(v);
          }});
    }
    if (faulted) {
      result.faults = eng.faults()->stats();
      if (s.digest) {
        result.digest = digest_mix(result.digest, result.faults.digest_word());
      }
    }
    return result;
  }
  MMN_REQUIRE(!faulted,
              "fault injection is not supported on the synchronizer path");
  MMN_REQUIRE(s.channel_free,
              "scenario uses the channel and cannot run under the "
              "synchronizer on the asynchronous engine");
  std::unique_ptr<sim::ChannelDiscipline> discipline =
      sim::make_discipline(s.discipline, sim::UnslottedConfig{}, seed);
  MMN_REQUIRE(!discipline->defers(),
              "a deferring discipline would falsify the synchronizer's "
              "idle-slot pulses on the asynchronous engine");
  sim::AsyncEngine eng(g, synchronize(s.make_factory(g)), seed,
                       s.async_max_delay_slots, std::move(scheduler),
                       std::move(discipline));
  result.metrics = eng.run(s.max_rounds);
  result.status = eng.status();
  result.completed = result.status == sim::RunStatus::kCompleted;
  if (s.digest && result.completed) {
    result.digest = s.digest(NodeResults{
        g.num_nodes(), [&eng](NodeId v) -> const sim::Process& {
          return static_cast<const SynchronizerProcess&>(eng.process(v))
              .inner();
        }});
  }
  return result;
}

namespace {

/// Folds one word per node, node-major — deterministic and comparable
/// across schedulers and engines because node iteration order is fixed.
template <typename PerNode>
std::uint64_t fold_nodes(const NodeResults& results, PerNode&& per_node) {
  std::uint64_t h = results.h0;  // kDigestSeed unless a rank chained into us
  for (NodeId i = 0; i < results.n; ++i) {
    const NodeId v = results.begin + i;
    h = digest_mix(h, per_node(results.at(v), v));
  }
  return h;
}

/// Engine-generic open-loop digest: side-casts whichever process handle the
/// run produced to the shared OpenLoopStats surface.  (Sync and async runs
/// digest to different values — the gossip fold sees each engine's own
/// delivery order — but each is bit-stable across schedulers and dispatch
/// levels, which is what the equivalence suites compare.)
std::uint64_t load_digest(const NodeResults& results) {
  return open_loop_digest(
      results.n,
      [&results](NodeId v) -> const OpenLoopStats& {
        if (results.at) {
          return dynamic_cast<const OpenLoopStats&>(results.at(v));
        }
        return dynamic_cast<const OpenLoopStats&>(results.at_async(v));
      },
      results.begin, results.h0);
}

std::uint64_t fragment_digest(const NodeResults& results) {
  return fold_nodes(results, [](const sim::Process& p, NodeId) {
    const auto& f = dynamic_cast<const FragmentState&>(p);
    return digest_mix(f.fragment_id(),
                      static_cast<std::uint64_t>(f.tree_parent_edge()) + 1);
  });
}

void register_all() {
  Registry& r = Registry::instance();

  r.add(Scenario{
      "partition/det/random",
      "Section 3 deterministic partition on a random connected graph",
      TopoKind::kRandom,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<PartitionDetProcess>(v,
                                                       PartitionDetConfig{});
        };
      },
      fragment_digest,
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "partition/rand/random",
      "Section 4 randomized partition on a random connected graph",
      TopoKind::kRandom,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<PartitionRandProcess>(v,
                                                        PartitionRandConfig{});
        };
      },
      fragment_digest,
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "partition/anon/random",
      "Section 7.4 partition with unknown n and anonymous nodes",
      TopoKind::kRandom,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<AnonymousPartitionProcess>(v);
        };
      },
      fragment_digest,
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "mst/random",
      "Section 6 multimedia MST on a random connected graph",
      TopoKind::kRandom,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<MstProcess>(v);
        };
      },
      [](const NodeResults& results) {
        return fold_nodes(results, [](const sim::Process& p, NodeId) {
          const auto& mst = dynamic_cast<const MstProcess&>(p);
          std::vector<EdgeId> edges = mst.mst_edges();
          std::sort(edges.begin(), edges.end());
          std::uint64_t h = kDigestSeed;
          for (EdgeId e : edges) h = digest_mix(h, e);
          return h;
        });
      },
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "global/min/det/random",
      "Section 5 deterministic global min on a random connected graph",
      TopoKind::kRandom,
      [](const Graph&) -> sim::ProcessFactory {
        GlobalFunctionConfig config;
        config.op = SemigroupOp::kMin;
        config.variant = GlobalFunctionConfig::Variant::kDeterministic;
        return [config](const sim::LocalView& v) {
          return std::make_unique<GlobalFunctionProcess>(
              v, config, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const NodeResults& results) {
        return fold_nodes(results, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const GlobalFunctionProcess&>(p).result());
        });
      },
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "global/min/rand/ring",
      "Section 5 randomized global min on a ring",
      TopoKind::kRing,
      [](const Graph&) -> sim::ProcessFactory {
        GlobalFunctionConfig config;
        config.op = SemigroupOp::kMin;
        config.variant = GlobalFunctionConfig::Variant::kRandomized;
        return [config](const sim::LocalView& v) {
          return std::make_unique<GlobalFunctionProcess>(
              v, config, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const NodeResults& results) {
        return fold_nodes(results, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const GlobalFunctionProcess&>(p).result());
        });
      },
      {256, 1024, 4096},
      7,
      200'000'000});

  r.add(Scenario{
      "global/sum/bcast/complete",
      "Channel-only TDMA baseline folding a sum on a complete graph",
      TopoKind::kComplete,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<BroadcastGlobalProcess>(
              v, SemigroupOp::kSum, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const NodeResults& results) {
        return fold_nodes(results, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const BroadcastGlobalProcess&>(p).result());
        });
      },
      {64, 128},
      7,
      200'000'000});

  r.add(Scenario{
      "global/max/tdma/ring",
      "TDMA channel discipline folding a max on a sparse ring",
      TopoKind::kRing,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<BroadcastGlobalProcess>(
              v, SemigroupOp::kMax, static_cast<sim::Word>(v.self % 17) + 1);
        };
      },
      [](const NodeResults& results) {
        return fold_nodes(results, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const BroadcastGlobalProcess&>(p).result());
        });
      },
      {64, 128},
      7,
      200'000'000});

  {
    Scenario grid_min{
        "global/min/p2p/grid",
        "Pure point-to-point baseline folding a min on a square grid",
        TopoKind::kGrid,
        [](const Graph&) -> sim::ProcessFactory {
          P2pGlobalConfig config;
          config.op = SemigroupOp::kMin;
          return [config](const sim::LocalView& v) {
            return std::make_unique<P2pGlobalProcess>(
                v, config, static_cast<sim::Word>(v.self) + 1);
          };
        },
        [](const NodeResults& results) {
          return fold_nodes(results, [](const sim::Process& p, NodeId) {
            return static_cast<std::uint64_t>(
                dynamic_cast<const P2pGlobalProcess&>(p).result());
          });
        },
        {64, 256},
        7,
        200'000'000};
    grid_min.channel_free = true;  // no channel use: async-capable
    r.add(std::move(grid_min));
  }

  {
    Scenario cube_sum{
        "global/sum/p2p/hypercube",
        "Pure point-to-point sum on an iPSC-style hypercube",
        TopoKind::kHypercube,
        [](const Graph& g) -> sim::ProcessFactory {
          P2pGlobalConfig config;
          config.op = SemigroupOp::kSum;
          std::uint32_t dim = 0;
          while ((NodeId{1} << dim) < g.num_nodes()) ++dim;
          config.known_diameter = dim;
          return [config](const sim::LocalView& v) {
            return std::make_unique<P2pGlobalProcess>(
                v, config, static_cast<sim::Word>(v.self) + 1);
          };
        },
        [](const NodeResults& results) {
          return fold_nodes(results, [](const sim::Process& p, NodeId) {
            return static_cast<std::uint64_t>(
                dynamic_cast<const P2pGlobalProcess&>(p).result());
          });
        },
        {64, 256},
        7,
        200'000'000};
    cube_sum.channel_free = true;  // no channel use: async-capable
    cube_sum.async_max_delay_slots = 2;  // messages straddle slot boundaries
    r.add(std::move(cube_sum));
  }

  // ---- channel-discipline variants (sim/channel_discipline.hpp) ----------
  //
  // The contention workloads carry no medium-access logic of their own —
  // every unresolved node writes every slot — so the registered discipline
  // is what schedules them.  The unslotted variants run unmodified channel
  // protocols through the Section 7.2 busy-tone emulation, which preserves
  // every slot outcome while accounting emergent continuous time.

  {
    Scenario cape_max{
        "global/max/cape/ring",
        "Greedy contenders folding a max, scheduled by Capetanakis splitting",
        TopoKind::kRing,
        [](const Graph&) -> sim::ProcessFactory {
          return [](const sim::LocalView& v) {
            return std::make_unique<ContentionGlobalProcess>(
                v, SemigroupOp::kMax, static_cast<sim::Word>(v.self % 23) + 1);
          };
        },
        [](const NodeResults& results) {
          return fold_nodes(results, [](const sim::Process& p, NodeId) {
            return static_cast<std::uint64_t>(
                dynamic_cast<const ContentionGlobalProcess&>(p).result());
          });
        },
        {64, 128},
        7,
        200'000'000};
    cape_max.discipline = sim::DisciplineKind::kCapetanakis;
    r.add(std::move(cape_max));
  }

  {
    Scenario tdma_sum{
        "global/sum/tdma/grid",
        "Greedy contenders folding a sum, serialized by the TDMA discipline",
        TopoKind::kGrid,
        [](const Graph&) -> sim::ProcessFactory {
          return [](const sim::LocalView& v) {
            return std::make_unique<ContentionGlobalProcess>(
                v, SemigroupOp::kSum, static_cast<sim::Word>(v.self) + 1);
          };
        },
        [](const NodeResults& results) {
          return fold_nodes(results, [](const sim::Process& p, NodeId) {
            return static_cast<std::uint64_t>(
                dynamic_cast<const ContentionGlobalProcess&>(p).result());
          });
        },
        {64, 256},
        7,
        200'000'000};
    tdma_sum.discipline = sim::DisciplineKind::kTdma;
    r.add(std::move(tdma_sum));
  }

  {
    Scenario unslotted_size{
        "size/unslotted/clique",
        "Exact network size on a clique over the unslotted busy-tone channel",
        TopoKind::kComplete,
        [](const Graph&) -> sim::ProcessFactory {
          return [](const sim::LocalView& v) {
            return std::make_unique<DeterministicSizeProcess>(v);
          };
        },
        [](const NodeResults& results) {
          return fold_nodes(results, [](const sim::Process& p, NodeId) {
            return dynamic_cast<const DeterministicSizeProcess&>(p)
                .network_size();
          });
        },
        {48, 96},
        7,
        200'000'000};
    unslotted_size.discipline = sim::DisciplineKind::kUnslotted;
    r.add(std::move(unslotted_size));
  }

  {
    Scenario unslotted_part{
        "partition/det/unslotted/random",
        "Section 3 partition driven over the unslotted busy-tone channel",
        TopoKind::kRandom,
        [](const Graph&) -> sim::ProcessFactory {
          return [](const sim::LocalView& v) {
            return std::make_unique<PartitionDetProcess>(v,
                                                         PartitionDetConfig{});
          };
        },
        fragment_digest,
        {64, 256},
        7,
        200'000'000};
    unslotted_part.discipline = sim::DisciplineKind::kUnslotted;
    r.add(std::move(unslotted_part));
  }

  {
    Scenario unslotted_p2p{
        "global/min/p2p/unslotted/grid",
        "P2P min fold with the synchronizer's tones on the unslotted channel",
        TopoKind::kGrid,
        [](const Graph&) -> sim::ProcessFactory {
          P2pGlobalConfig config;
          config.op = SemigroupOp::kMin;
          return [config](const sim::LocalView& v) {
            return std::make_unique<P2pGlobalProcess>(
                v, config, static_cast<sim::Word>(v.self) + 3);
          };
        },
        [](const NodeResults& results) {
          return fold_nodes(results, [](const sim::Process& p, NodeId) {
            return static_cast<std::uint64_t>(
                dynamic_cast<const P2pGlobalProcess&>(p).result());
          });
        },
        {64, 256},
        7,
        200'000'000};
    // Channel-free workload: on the synchronous engine the unslotted
    // discipline only idles, but the async run routes the synchronizer's
    // busy tones through the emulation — the discipline-under-async case.
    unslotted_p2p.channel_free = true;
    unslotted_p2p.discipline = sim::DisciplineKind::kUnslotted;
    r.add(std::move(unslotted_p2p));
  }

  r.add(Scenario{
      "size/det/random",
      "Section 7.3 exact network-size computation on a random graph",
      TopoKind::kRandom,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<DeterministicSizeProcess>(v);
        };
      },
      [](const NodeResults& results) {
        return fold_nodes(results, [](const sim::Process& p, NodeId) {
          return dynamic_cast<const DeterministicSizeProcess&>(p)
              .network_size();
        });
      },
      {64, 256},
      7,
      200'000'000});

  // ---- lower-bound and implicit-topology entries -------------------------
  //
  // The ray graph is the Theorem 2 topology: the multimedia lower bound is
  // proved on a center with vertex-disjoint rays, where the channel is the
  // only way to beat the diameter.  The implicit-clique entries run on
  // Graph::implicit_complete — O(1) topology storage — which is what lets
  // the dense scenarios reach n = 16384 inside the CI memory ceiling.

  r.add(Scenario{
      "global/min/det/ray",
      "Section 5 deterministic global min on the Theorem 2 ray graph",
      TopoKind::kRay,
      [](const Graph&) -> sim::ProcessFactory {
        GlobalFunctionConfig config;
        config.op = SemigroupOp::kMin;
        config.variant = GlobalFunctionConfig::Variant::kDeterministic;
        return [config](const sim::LocalView& v) {
          return std::make_unique<GlobalFunctionProcess>(
              v, config, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const NodeResults& results) {
        return fold_nodes(results, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const GlobalFunctionProcess&>(p).result());
        });
      },
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "partition/det/ray",
      "Section 3 deterministic partition on the Theorem 2 ray graph",
      TopoKind::kRay,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<PartitionDetProcess>(v,
                                                       PartitionDetConfig{});
        };
      },
      fragment_digest,
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "global/sum/bcast/iclique",
      "Channel-only TDMA sum on an implicit (O(1)-storage) clique",
      TopoKind::kCliqueImplicit,
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<BroadcastGlobalProcess>(
              v, SemigroupOp::kSum, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const NodeResults& results) {
        return fold_nodes(results, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const BroadcastGlobalProcess&>(p).result());
        });
      },
      {64, 128},
      7,
      200'000'000});

  {
    Scenario iclique_size{
        "size/unslotted/iclique",
        "Exact network size on an implicit clique, unslotted busy-tone",
        TopoKind::kCliqueImplicit,
        [](const Graph&) -> sim::ProcessFactory {
          return [](const sim::LocalView& v) {
            return std::make_unique<DeterministicSizeProcess>(v);
          };
        },
        [](const NodeResults& results) {
          return fold_nodes(results, [](const sim::Process& p, NodeId) {
            return dynamic_cast<const DeterministicSizeProcess&>(p)
                .network_size();
          });
        },
        {48, 96},
        7,
        200'000'000};
    iclique_size.discipline = sim::DisciplineKind::kUnslotted;
    r.add(std::move(iclique_size));
  }

  // ---- open-loop load family (core/openloop.hpp) -------------------------
  //
  // Load-capable scenarios: every entry carries make_load_factory (so
  // scenario_sweep --load= and bench_load_sweep can rebuild the stations at
  // any offered load) plus the native-async variant, and its plain
  // make_factory runs the stations at default_load for the legacy sweeps
  // and the equivalence suites.  The free-for-all entry livelocks past
  // saturation by design — two simultaneously backlogged stations
  // re-collide every slot forever.  Its synchronous runs cut off right
  // after the horizon (a non-deferring discipline holds no backlog the
  // engine could see) and its native-async runs burn to the slot cap with
  // completed == false; both cutoffs are deterministic, and the standing
  // backlog is the result — the load-sweep story's baseline curve.

  const auto add_load = [&r](std::string name, std::string desc,
                             TopoKind topo, sim::ArrivalKind arrivals,
                             double default_load, sim::DisciplineKind disc,
                             std::vector<NodeId> sweep) {
    OpenLoopConfig base;
    base.arrivals = arrivals;
    base.horizon = 1200;
    Scenario s;
    s.name = std::move(name);
    s.description = std::move(desc);
    s.topology = topo;
    s.make_factory = [base, default_load](const Graph&) {
      OpenLoopConfig c = base;
      c.offered = default_load;
      return make_open_loop_factory(c);
    };
    s.digest = load_digest;
    s.sweep_n = std::move(sweep);
    s.max_rounds = base.horizon * 8 + 4096;  // generation + drain window
    s.discipline = disc;
    s.default_load = default_load;
    s.make_load_factory = [base](const Graph&, double load) {
      OpenLoopConfig c = base;
      c.offered = load;
      return make_open_loop_factory(c);
    };
    s.make_async_load_factory = [base](const Graph&, double load) {
      OpenLoopConfig c = base;
      c.offered = load;
      return make_open_loop_async_factory(c);
    };
    r.add(std::move(s));
  };

  add_load("load/poisson/ffa/ring",
           "Open-loop Poisson QoS stations on the bare collision channel",
           TopoKind::kRing, sim::ArrivalKind::kPoisson, 0.6,
           sim::DisciplineKind::kFreeForAll, {64, 128});
  add_load("load/poisson/pb/ring",
           "Open-loop Poisson stations under pseudo-Bayesian stabilization",
           TopoKind::kRing, sim::ArrivalKind::kPoisson, 0.3,
           sim::DisciplineKind::kPseudoBayesian, {64, 128});
  add_load("load/poisson/resv/ring",
           "Open-loop Poisson stations under the reservation multimedia MAC",
           TopoKind::kRing, sim::ArrivalKind::kPoisson, 0.8,
           sim::DisciplineKind::kReservation, {64, 128});
  add_load("load/onoff/resv/grid",
           "Bursty on-off stations under the reservation MAC on a grid",
           TopoKind::kGrid, sim::ArrivalKind::kOnOff, 0.7,
           sim::DisciplineKind::kReservation, {64, 256});
  add_load("load/poisson/pb/iclique",
           "Saturated Poisson stations, stabilized Aloha on an implicit clique",
           TopoKind::kCliqueImplicit, sim::ArrivalKind::kPoisson, 0.9,
           sim::DisciplineKind::kPseudoBayesian, {64, 128});
  // Deferring disciplines on the native-async path (the synchronizer would
  // reject them; open-loop stations don't read idle slots, so they are fine
  // here).  TDMA is stable at any offered load below 1; Capetanakis tree
  // splitting saturates near 0.5 packets/slot — 0.4 sits inside capacity.
  add_load("load/poisson/tdma/ring",
           "Open-loop Poisson stations under fixed TDMA slot ownership",
           TopoKind::kRing, sim::ArrivalKind::kPoisson, 0.5,
           sim::DisciplineKind::kTdma, {64, 128});
  add_load("load/poisson/cape/ring",
           "Open-loop Poisson stations under Capetanakis tree splitting",
           TopoKind::kRing, sim::ArrivalKind::kPoisson, 0.4,
           sim::DisciplineKind::kCapetanakis, {64, 128});

  // ---- fault-injection family (sim/fault.hpp) ----------------------------
  //
  // The recovery entries pin protocol re-convergence after topology damage:
  // phase A runs the protocol into k connectivity-safe link kills, the epoch
  // overlay compacts the surviving graph, and phase B must re-converge to a
  // valid result on it — the digest (protocol result + kill-set word) is
  // deterministic per (n, seed, k) and invariant to the epoch boundary.  The
  // churn entry runs the open-loop reservation MAC through rate-driven link
  // and station churn; its FaultStats fold into the digest, so the
  // equivalence suites cover drop accounting across schedulers too.

  {
    Scenario s;
    s.name = "fault/partition/det/random";
    s.description =
        "Section 3 partition re-converging after k mid-run link kills";
    s.topology = TopoKind::kRandom;
    s.make_factory = [](const Graph&) -> sim::ProcessFactory {
      return [](const sim::LocalView& v) {
        return std::make_unique<PartitionDetProcess>(v, PartitionDetConfig{});
      };
    };
    s.digest = fragment_digest;
    s.sweep_n = {64, 128};
    s.make_fault_plan = [](const Graph& g, std::uint32_t k,
                           std::uint64_t seed) {
      return sim::FaultPlan::link_kills(g, k, /*slot=*/24, seed);
    };
    s.default_faults = 4;
    s.fault_recovery = true;
    s.fault_epoch_slots = 96;
    r.add(std::move(s));
  }

  {
    Scenario s;
    s.name = "fault/mst/random";
    s.description =
        "Section 6 multimedia MST rebuilt after k mid-run link kills";
    s.topology = TopoKind::kRandom;
    s.make_factory = [](const Graph&) -> sim::ProcessFactory {
      return [](const sim::LocalView& v) {
        return std::make_unique<MstProcess>(v);
      };
    };
    s.digest = [](const NodeResults& results) {
      return fold_nodes(results, [](const sim::Process& p, NodeId) {
        const auto& mst = dynamic_cast<const MstProcess&>(p);
        std::vector<EdgeId> edges = mst.mst_edges();
        std::sort(edges.begin(), edges.end());
        std::uint64_t h = kDigestSeed;
        for (EdgeId e : edges) h = digest_mix(h, e);
        return h;
      });
    };
    s.sweep_n = {64, 128};
    s.make_fault_plan = [](const Graph& g, std::uint32_t k,
                           std::uint64_t seed) {
      return sim::FaultPlan::link_kills(g, k, /*slot=*/24, seed);
    };
    s.default_faults = 4;
    s.fault_recovery = true;
    s.fault_epoch_slots = 96;
    r.add(std::move(s));
  }

  {
    OpenLoopConfig base;
    base.arrivals = sim::ArrivalKind::kPoisson;
    base.horizon = 1200;
    Scenario s;
    s.name = "fault/load/churn/ring";
    s.description =
        "Reservation-MAC ring at offered 0.6 under link and station churn";
    s.topology = TopoKind::kRing;
    s.make_factory = [base](const Graph&) {
      OpenLoopConfig c = base;
      c.offered = 0.6;
      return make_open_loop_factory(c);
    };
    s.digest = load_digest;
    s.sweep_n = {64, 128};
    s.max_rounds = base.horizon * 8 + 4096;
    s.discipline = sim::DisciplineKind::kReservation;
    s.default_load = 0.6;
    s.make_load_factory = [base](const Graph&, double load) {
      OpenLoopConfig c = base;
      c.offered = load;
      return make_open_loop_factory(c);
    };
    s.make_async_load_factory = [base](const Graph&, double load) {
      OpenLoopConfig c = base;
      c.offered = load;
      return make_open_loop_async_factory(c);
    };
    // Intensity k scales both churn rates; stations stay down 40 slots.
    const std::uint64_t horizon = base.horizon;
    s.make_fault_plan = [horizon](const Graph& g, std::uint32_t k,
                                  std::uint64_t seed) {
      sim::FaultPlan plan =
          sim::FaultPlan::link_churn(g, 0.004 * k, horizon, seed);
      plan.merge(sim::FaultPlan::node_churn(g, 0.001 * k, /*down_slots=*/40,
                                            horizon, seed));
      return plan;
    };
    s.default_faults = 1;
    r.add(std::move(s));
  }
}

}  // namespace

void register_builtin() {
  static const bool once = [] {
    register_all();
    return true;
  }();
  (void)once;
}

}  // namespace mmn::scenario
