#include "scenario/registry.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "baselines/broadcast_global.hpp"
#include "baselines/p2p_global.hpp"
#include "core/global_function.hpp"
#include "core/mst.hpp"
#include "core/partition_det.hpp"
#include "core/partition_rand.hpp"
#include "core/size.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"

namespace mmn::scenario {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(Scenario s) {
  MMN_REQUIRE(!s.name.empty(), "scenario needs a name");
  MMN_REQUIRE(find(s.name) == nullptr, "duplicate scenario name");
  MMN_REQUIRE(s.make_graph != nullptr, "scenario needs a graph family");
  MMN_REQUIRE(s.make_factory != nullptr, "scenario needs a process factory");
  MMN_REQUIRE(!s.sweep_n.empty(), "scenario needs a default sweep");
  scenarios_.push_back(std::move(s));
}

const Scenario* Registry::find(std::string_view name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

RunResult run(const Scenario& s, NodeId n, std::uint64_t seed,
              std::unique_ptr<sim::Scheduler> scheduler) {
  const Graph g = s.make_graph(n, seed);
  sim::Engine engine(g, s.make_factory(g), seed, std::move(scheduler));
  RunResult result;
  result.metrics = engine.run(s.max_rounds);
  result.realized_n = g.num_nodes();
  if (s.digest) result.digest = s.digest(engine);
  return result;
}

namespace {

/// Folds one word per node, node-major — deterministic and comparable
/// across schedulers because node iteration order is fixed.
template <typename PerNode>
std::uint64_t fold_nodes(const sim::Engine& engine, PerNode&& per_node) {
  std::uint64_t h = kDigestSeed;
  for (NodeId v = 0; v < engine.num_nodes(); ++v) {
    h = digest_mix(h, per_node(engine.process(v), v));
  }
  return h;
}

std::uint64_t fragment_digest(const sim::Engine& engine) {
  return fold_nodes(engine, [](const sim::Process& p, NodeId) {
    const auto& f = dynamic_cast<const FragmentState&>(p);
    return digest_mix(f.fragment_id(),
                      static_cast<std::uint64_t>(f.tree_parent_edge()) + 1);
  });
}

Graph square_grid(NodeId n, std::uint64_t seed) {
  const auto side = static_cast<NodeId>(std::max(
      2.0, std::round(std::sqrt(static_cast<double>(n)))));
  return grid(side, side, seed);
}

void register_all() {
  Registry& r = Registry::instance();

  r.add(Scenario{
      "partition/det/random",
      "Section 3 deterministic partition on a random connected graph",
      "random",
      [](NodeId n, std::uint64_t seed) {
        return random_connected(n, 2 * n, seed);
      },
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<PartitionDetProcess>(v,
                                                       PartitionDetConfig{});
        };
      },
      fragment_digest,
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "partition/rand/random",
      "Section 4 randomized partition on a random connected graph",
      "random",
      [](NodeId n, std::uint64_t seed) {
        return random_connected(n, 2 * n, seed);
      },
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<PartitionRandProcess>(v,
                                                        PartitionRandConfig{});
        };
      },
      fragment_digest,
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "mst/random",
      "Section 6 multimedia MST on a random connected graph",
      "random",
      [](NodeId n, std::uint64_t seed) {
        return random_connected(n, 2 * n, seed);
      },
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<MstProcess>(v);
        };
      },
      [](const sim::Engine& engine) {
        return fold_nodes(engine, [](const sim::Process& p, NodeId) {
          const auto& mst = dynamic_cast<const MstProcess&>(p);
          std::vector<EdgeId> edges = mst.mst_edges();
          std::sort(edges.begin(), edges.end());
          std::uint64_t h = kDigestSeed;
          for (EdgeId e : edges) h = digest_mix(h, e);
          return h;
        });
      },
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "global/min/det/random",
      "Section 5 deterministic global min on a random connected graph",
      "random",
      [](NodeId n, std::uint64_t seed) {
        return random_connected(n, 2 * n, seed);
      },
      [](const Graph&) -> sim::ProcessFactory {
        GlobalFunctionConfig config;
        config.op = SemigroupOp::kMin;
        config.variant = GlobalFunctionConfig::Variant::kDeterministic;
        return [config](const sim::LocalView& v) {
          return std::make_unique<GlobalFunctionProcess>(
              v, config, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const sim::Engine& engine) {
        return fold_nodes(engine, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const GlobalFunctionProcess&>(p).result());
        });
      },
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "global/min/rand/ring",
      "Section 5 randomized global min on a ring",
      "ring",
      [](NodeId n, std::uint64_t seed) { return ring(n, seed); },
      [](const Graph&) -> sim::ProcessFactory {
        GlobalFunctionConfig config;
        config.op = SemigroupOp::kMin;
        config.variant = GlobalFunctionConfig::Variant::kRandomized;
        return [config](const sim::LocalView& v) {
          return std::make_unique<GlobalFunctionProcess>(
              v, config, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const sim::Engine& engine) {
        return fold_nodes(engine, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const GlobalFunctionProcess&>(p).result());
        });
      },
      {256, 1024, 4096},
      7,
      200'000'000});

  r.add(Scenario{
      "global/sum/bcast/complete",
      "Channel-only TDMA baseline folding a sum on a complete graph",
      "complete",
      [](NodeId n, std::uint64_t seed) { return complete(n, seed); },
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<BroadcastGlobalProcess>(
              v, SemigroupOp::kSum, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const sim::Engine& engine) {
        return fold_nodes(engine, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const BroadcastGlobalProcess&>(p).result());
        });
      },
      {64, 128},
      7,
      200'000'000});

  r.add(Scenario{
      "global/min/p2p/grid",
      "Pure point-to-point baseline folding a min on a square grid",
      "grid",
      square_grid,
      [](const Graph&) -> sim::ProcessFactory {
        P2pGlobalConfig config;
        config.op = SemigroupOp::kMin;
        return [config](const sim::LocalView& v) {
          return std::make_unique<P2pGlobalProcess>(
              v, config, static_cast<sim::Word>(v.self) + 1);
        };
      },
      [](const sim::Engine& engine) {
        return fold_nodes(engine, [](const sim::Process& p, NodeId) {
          return static_cast<std::uint64_t>(
              dynamic_cast<const P2pGlobalProcess&>(p).result());
        });
      },
      {64, 256},
      7,
      200'000'000});

  r.add(Scenario{
      "size/det/random",
      "Section 7.3 exact network-size computation on a random graph",
      "random",
      [](NodeId n, std::uint64_t seed) {
        return random_connected(n, 2 * n, seed);
      },
      [](const Graph&) -> sim::ProcessFactory {
        return [](const sim::LocalView& v) {
          return std::make_unique<DeterministicSizeProcess>(v);
        };
      },
      [](const sim::Engine& engine) {
        return fold_nodes(engine, [](const sim::Process& p, NodeId) {
          return dynamic_cast<const DeterministicSizeProcess&>(p)
              .network_size();
        });
      },
      {64, 256},
      7,
      200'000'000});
}

}  // namespace

void register_builtin() {
  static const bool once = [] {
    register_all();
    return true;
  }();
  (void)once;
}

}  // namespace mmn::scenario
