// Sensor fusion: why you want both media.
//
// A road tunnel is instrumented with a 4 x 600 lattice of sensors: wired
// neighbor links along and across the bore (cheap, parallel) plus one shared
// radio channel (every packet heard by all, collisions detectable) — the
// paper's motivating combination.  The task: agree on the maximum reading
// ("is anything on fire?") at every sensor.  The tunnel's diameter (~600) is
// far above sqrt(n) ~ 49, exactly the regime where the paper proves the
// combined network beats both of its parts.
//
// Three strategies are compared on the same inputs:
//   mesh only      — elect a leader by flooding, fold along a BFS tree, and
//                    flood the answer back: Theta(diameter) rounds.
//   radio only     — TDMA, one slot per sensor: Theta(n) slots.
//   both (paper)   — partition into O(sqrt(n)) patches over the mesh, fold
//                    each patch in parallel, then let the patch heads take
//                    turns on the radio: Theta~(sqrt(n)).
#include <cstdio>
#include <memory>

#include "baselines/broadcast_global.hpp"
#include "baselines/p2p_global.hpp"
#include "core/global_function.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

int main() {
  using namespace mmn;
  const Graph field = grid(/*rows=*/4, /*cols=*/600, /*seed=*/3);
  const NodeId n = field.num_nodes();

  // Sensor readings: quiet background, one hot spot.
  Rng rng(11);
  std::vector<sim::Word> reading(n);
  for (auto& r : reading) r = 180 + static_cast<sim::Word>(rng.next_below(40));
  reading[rng.next_below(n)] = 951;  // the anomaly to find

  std::printf("tunnel: 4x600 sensors (n=%u), %u mesh links, diameter %u\n\n",
              n, field.num_edges(), diameter(field));

  // --- mesh only ------------------------------------------------------------
  P2pGlobalConfig mesh_config;
  mesh_config.op = SemigroupOp::kMax;
  mesh_config.known_diameter = static_cast<std::int32_t>(diameter(field));
  sim::Engine mesh(field, [&](const sim::LocalView& v) {
    return std::make_unique<P2pGlobalProcess>(v, mesh_config, reading[v.self]);
  }, 1);
  const Metrics mesh_metrics = mesh.run(1'000'000);
  const auto mesh_result =
      static_cast<const P2pGlobalProcess&>(mesh.process(0)).result();

  // --- radio only ----------------------------------------------------------
  sim::Engine radio(field, [&](const sim::LocalView& v) {
    return std::make_unique<BroadcastGlobalProcess>(v, SemigroupOp::kMax,
                                                    reading[v.self]);
  }, 1);
  const Metrics radio_metrics = radio.run(1'000'000);
  const auto radio_result =
      static_cast<const BroadcastGlobalProcess&>(radio.process(0)).result();

  // --- both media (the paper's algorithm) -----------------------------------
  GlobalFunctionConfig mm_config;
  mm_config.op = SemigroupOp::kMax;
  mm_config.variant = GlobalFunctionConfig::Variant::kRandomized;
  sim::Engine both(field, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(v, mm_config,
                                                   reading[v.self]);
  }, 1);
  const Metrics both_metrics = both.run(1'000'000);
  const auto both_result =
      static_cast<const GlobalFunctionProcess&>(both.process(0)).result();

  std::printf("%-22s %10s %12s %12s\n", "strategy", "rounds", "p2p msgs",
              "radio slots");
  std::printf("%-22s %10llu %12llu %12llu\n", "mesh only (knows diam)",
              (unsigned long long)mesh_metrics.rounds,
              (unsigned long long)mesh_metrics.p2p_messages,
              (unsigned long long)mesh_metrics.slots_busy());
  std::printf("%-22s %10llu %12llu %12llu\n", "radio only (TDMA)",
              (unsigned long long)radio_metrics.rounds,
              (unsigned long long)radio_metrics.p2p_messages,
              (unsigned long long)radio_metrics.slots_busy());
  std::printf("%-22s %10llu %12llu %12llu\n", "both (multimedia)",
              (unsigned long long)both_metrics.rounds,
              (unsigned long long)both_metrics.p2p_messages,
              (unsigned long long)both_metrics.slots_busy());

  const bool ok = mesh_result == 951 && radio_result == 951 &&
                  both_result == 951;
  std::printf("\nall strategies found the hot spot reading: %s\n",
              ok ? "yes (951)" : "NO");
  return ok ? 0 : 1;
}
