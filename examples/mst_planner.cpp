// Backbone planning: distributed minimum spanning tree (Section 6).
//
// A 400-switch network with weighted candidate links (lease costs) must
// agree on the cheapest spanning backbone.  Every switch runs the paper's
// three-stage multimedia MST: deterministic partition into MST-subtree
// fragments, one Capetanakis pass to line the fragment heads up on the
// channel, then Boruvka phases in which each head announces its fragment's
// cheapest outgoing link and everyone mirrors the merge bookkeeping.
//
// The distributed result is checked edge-for-edge against Kruskal.
#include <cstdio>
#include <memory>
#include <set>

#include "core/mst.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace mmn;
  const Graph candidates = random_connected(/*n=*/400, /*extra_edges=*/1200,
                                            /*seed=*/17);
  std::printf("candidate links: %u switches, %u links\n",
              candidates.num_nodes(), candidates.num_edges());

  sim::Engine network(candidates, [](const sim::LocalView& v) {
    return std::make_unique<MstProcess>(v);
  }, 9);
  const Metrics metrics = network.run(10'000'000);

  // Collect the backbone: each switch knows the MST links it touches.
  std::set<EdgeId> backbone;
  for (NodeId v = 0; v < candidates.num_nodes(); ++v) {
    for (EdgeId e :
         static_cast<const MstProcess&>(network.process(v)).mst_edges()) {
      backbone.insert(e);
    }
  }
  Weight total = 0;
  for (EdgeId e : backbone) total += candidates.edge(e).weight;

  const MstResult truth = kruskal_mst(candidates);
  const bool exact =
      std::vector<EdgeId>(backbone.begin(), backbone.end()) == truth.edges;

  std::printf("backbone links     : %zu (expected %zu)\n", backbone.size(),
              truth.edges.size());
  std::printf("total lease cost   : %llu (Kruskal: %llu)\n",
              (unsigned long long)total,
              (unsigned long long)truth.total_weight);
  std::printf("exact MST match    : %s\n", exact ? "yes" : "NO");
  std::printf("Boruvka phases     : %d\n",
              static_cast<const MstProcess&>(network.process(0)).phases_used());
  std::printf("model time (rounds): %llu\n",
              (unsigned long long)metrics.rounds);
  std::printf("p2p messages       : %llu\n",
              (unsigned long long)metrics.p2p_messages);
  return exact ? 0 : 1;
}
