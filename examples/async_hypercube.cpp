// Asynchronous hypercube: the channel as a synchronizer (Section 7.1).
//
// The paper cites the Intel iPSC hypercube as a deployed machine combining a
// point-to-point network with a shared channel.  Here a 256-node hypercube
// has *asynchronous* links (random delays up to a bound), and the shared
// channel provides clock pulses: every message is acknowledged, nodes hold a
// busy tone while acknowledgements are outstanding, and an idle slot tells
// everyone the round is over (Corollary 4).
//
// The same synchronous global-sum program runs unmodified on the
// asynchronous machine; the run reports the synchronizer's overhead.
#include <cstdio>
#include <memory>

#include "baselines/p2p_global.hpp"
#include "core/synchronizer.hpp"
#include "graph/generators.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace mmn;
  const Graph cube = hypercube(/*dim=*/8, /*seed=*/2);
  const NodeId n = cube.num_nodes();
  std::printf("iPSC-style hypercube: %u nodes, %u links, dimension 8\n\n", n,
              cube.num_edges());

  P2pGlobalConfig config;
  config.op = SemigroupOp::kSum;
  config.known_diameter = 8;  // hypercube diameter == dimension
  auto program = [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    return std::make_unique<P2pGlobalProcess>(
        v, config, static_cast<sim::Word>(v.self) + 1);
  };
  const sim::Word expected =
      static_cast<sim::Word>(n) * (static_cast<sim::Word>(n) + 1) / 2;

  // Reference: the synchronous machine.
  sim::Engine sync_machine(cube, program, 3);
  const Metrics sync_metrics = sync_machine.run(100'000);
  std::printf("synchronous machine : %llu rounds, %llu messages\n",
              (unsigned long long)sync_metrics.rounds,
              (unsigned long long)sync_metrics.p2p_messages);

  // The same program under the synchronizer, at growing delay bounds.
  for (std::uint32_t delay : {1u, 4u, 16u}) {
    sim::AsyncEngine machine(cube, synchronize(program), 3, delay);
    const Metrics metrics = machine.run(10'000'000);
    const auto& node0 =
        static_cast<const SynchronizerProcess&>(machine.process(0));
    const auto result =
        static_cast<const P2pGlobalProcess&>(node0.inner()).result();
    std::printf(
        "async, delay <= %2u  : %llu slots (%.2fx), %llu messages (%.2fx), "
        "sum %s\n",
        delay, (unsigned long long)metrics.rounds,
        static_cast<double>(metrics.rounds) / sync_metrics.rounds,
        (unsigned long long)metrics.p2p_messages,
        static_cast<double>(metrics.p2p_messages) / sync_metrics.p2p_messages,
        result == expected ? "correct" : "WRONG");
    if (result != expected) return 1;
  }

  // The asynchronous machine's slot phases shard over the same deterministic
  // scheduler as the synchronous engine: a parallel run reproduces the
  // serial slot count and message count bit for bit.
  sim::AsyncEngine serial_machine(cube, synchronize(program), 3, 4);
  const Metrics serial_metrics = serial_machine.run(10'000'000);
  sim::AsyncEngine parallel_machine(cube, synchronize(program), 3, 4,
                                    sim::make_scheduler(8));
  const Metrics parallel_metrics = parallel_machine.run(10'000'000);
  if (serial_machine.status() != sim::AsyncEngine::RunStatus::kCompleted ||
      parallel_machine.status() != sim::AsyncEngine::RunStatus::kCompleted) {
    std::printf("async rerun hit the slot cap without terminating\n");
    return 1;
  }
  std::printf("\n8-thread async rerun : %llu slots, %llu messages — %s\n",
              (unsigned long long)parallel_metrics.rounds,
              (unsigned long long)parallel_metrics.p2p_messages,
              parallel_metrics == serial_metrics
                  ? "identical to the serial run"
                  : "DIVERGED from the serial run");
  return parallel_metrics == serial_metrics ? 0 : 1;
}
