// Quickstart: the smallest complete mmn program.
//
// Builds a multimedia network — 200 processors joined by a random
// point-to-point mesh *and* a shared collision channel — and computes the
// minimum of one input per node with the paper's randomized algorithm
// (partition into O(sqrt(n)) fragments, fold locally, schedule the fragment
// roots on the channel).  Every node ends up knowing the answer.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "core/global_function.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

int main() {
  using namespace mmn;

  // Topology: 200 nodes, a random connected mesh with 300 extra links.
  const Graph topology = random_connected(/*n=*/200, /*extra_edges=*/300,
                                          /*seed=*/42);

  // One private input per node (say, a sensor reading).
  Rng rng(7);
  std::vector<sim::Word> inputs(topology.num_nodes());
  for (auto& x : inputs) x = static_cast<sim::Word>(rng.next_below(10'000));

  // Every node runs the same program: the randomized global-min algorithm.
  GlobalFunctionConfig config;
  config.op = SemigroupOp::kMin;
  config.variant = GlobalFunctionConfig::Variant::kRandomized;

  sim::Engine network(topology, [&](const sim::LocalView& view) {
    return std::make_unique<GlobalFunctionProcess>(view, config,
                                                   inputs[view.self]);
  }, /*seed=*/1);

  const Metrics metrics = network.run(/*max_rounds=*/1'000'000);

  const auto& node0 =
      static_cast<const GlobalFunctionProcess&>(network.process(0));
  std::printf("global minimum      : %lld (known to every node)\n",
              static_cast<long long>(node0.result()));
  std::printf("model time (rounds) : %llu\n",
              static_cast<unsigned long long>(metrics.rounds));
  std::printf("p2p messages        : %llu\n",
              static_cast<unsigned long long>(metrics.p2p_messages));
  std::printf("channel slots used  : %llu (of %llu)\n",
              static_cast<unsigned long long>(metrics.slots_busy()),
              static_cast<unsigned long long>(metrics.rounds));

  // Sanity: compare against the sequential fold.
  sim::Word expected = inputs[0];
  for (sim::Word x : inputs) expected = x < expected ? x : expected;
  std::printf("sequential check    : %s\n",
              node0.result() == expected ? "match" : "MISMATCH");
  return node0.result() == expected ? 0 : 1;
}
