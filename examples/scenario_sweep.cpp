// Scenario sweep: drive every registered workload from one table.
//
// The scenario registry (src/scenario/registry.hpp) names each workload —
// graph family x protocol x channel discipline x default n/seed sweep —
// once; this example validates the whole table, walks it at its smallest
// size, optionally under the parallel scheduler, and prints the model
// metrics plus the per-node result digest.  It is the template for adding a
// new workload: register it once and every sweep driver (this example,
// bench_sim_throughput, the scheduler equivalence suite) picks it up.
//
// CI diffs the serial and parallel tables row by row, so a malformed
// registry entry must fail the sweep loudly instead of being skipped:
// duplicate names, missing digests, or empty sweeps exit non-zero before
// any run starts.
//
//   $ ./example_scenario_sweep            # serial
//   $ ./example_scenario_sweep 8          # 8-thread parallel scheduler
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "scenario/registry.hpp"
#include "sim/channel_discipline.hpp"
#include "sim/scheduler.hpp"

namespace {

/// Rejects registry entries the sweep (and the CI diff over its rows)
/// cannot meaningfully drive, with a clean exit-1 instead of a skipped row.
/// Registry::add already aborts the process on duplicate names, missing
/// factories, and empty sweeps, so the load-bearing check here is the
/// digest: a digest-less scenario would print 0 and make the CI
/// serial/parallel diff blind to its results.  The duplicate-name re-check
/// stays as cheap defense in depth for a future registration path that
/// bypasses add().
bool validate_registry(const std::deque<mmn::scenario::Scenario>& scenarios) {
  bool ok = true;
  std::set<std::string> names;
  for (const auto& s : scenarios) {
    if (!names.insert(s.name).second) {
      std::fprintf(stderr, "malformed registry: duplicate scenario name %s\n",
                   s.name.c_str());
      ok = false;
    }
    if (!s.digest) {
      std::fprintf(stderr,
                   "malformed registry: %s has no digest — the sweep's "
                   "serial/parallel diff would be blind to its results\n",
                   s.name.c_str());
      ok = false;
    }
    if (s.sweep_n.empty()) {
      std::fprintf(stderr, "malformed registry: %s has an empty sweep\n",
                   s.name.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmn;
  long parsed = 1;
  if (argc > 1) {
    char* end = nullptr;
    parsed = std::strtol(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || parsed < 1 || parsed > 256) {
      std::fprintf(stderr, "usage: %s [threads: 1..256]\n", argv[0]);
      return 2;
    }
  }
  const unsigned threads = static_cast<unsigned>(parsed);

  scenario::register_builtin();
  const auto& scenarios = scenario::Registry::instance().all();
  if (!validate_registry(scenarios)) return 1;
  std::printf("%zu scenarios registered; scheduler: %s\n\n", scenarios.size(),
              threads > 1 ? "parallel" : "serial");
  std::printf("%-30s %-11s %6s %10s %12s %18s\n", "scenario", "discipline",
              "n", "rounds", "msgs", "digest");
  for (const auto& s : scenarios) {
    const NodeId n = s.sweep_n.front();
    const scenario::RunResult r = scenario::run(
        s, n, s.default_seed,
        threads > 1 ? sim::make_scheduler(threads) : nullptr);
    std::printf("%-30s %-11s %6u %10llu %12llu %18llx\n", s.name.c_str(),
                sim::discipline_name(s.discipline), r.realized_n,
                (unsigned long long)r.metrics.rounds,
                (unsigned long long)r.metrics.p2p_messages,
                (unsigned long long)r.digest);
  }
  // Channel-free workloads also run on the asynchronous engine (through the
  // busy-tone synchronizer); rounds are channel slots there.
  for (const auto& s : scenarios) {
    if (!s.channel_free) continue;
    const NodeId n = s.sweep_n.front();
    const scenario::RunResult r = scenario::run(
        s, n, s.default_seed,
        threads > 1 ? sim::make_scheduler(threads) : nullptr,
        scenario::EngineKind::kAsync);
    if (!r.completed) {
      std::fprintf(stderr, "%s@async hit the slot cap without terminating\n",
                   s.name.c_str());
      return 1;
    }
    std::printf("%-30s %-11s %6u %10llu %12llu %18llx\n",
                (s.name + "@async").c_str(),
                sim::discipline_name(s.discipline), r.realized_n,
                (unsigned long long)r.metrics.rounds,
                (unsigned long long)r.metrics.p2p_messages,
                (unsigned long long)r.digest);
  }
  std::printf("\nRe-run with a thread count (e.g. `%s 8`): the rounds, msgs,\n"
              "and digest columns are identical by construction — both the\n"
              "synchronous rounds and the async slot phases run on the same\n"
              "deterministic scheduler, whichever channel discipline the\n"
              "scenario declares.\n",
              argv[0]);
  return 0;
}
