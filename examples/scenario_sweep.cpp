// Scenario sweep: drive every registered workload from one table.
//
// The scenario registry (src/scenario/registry.hpp) names each workload —
// topology family x protocol x channel discipline x default n/seed sweep —
// once; this example validates the whole table, walks it (by default at each
// scenario's smallest sweep size), optionally under the parallel scheduler,
// and prints the topology family, the realized size, the model metrics and
// the per-node result digest.  Every entry is size-parameterized through
// TopologySpec, so the same driver sweeps any size:
//
//   $ ./example_scenario_sweep                 # serial, default sizes
//   $ ./example_scenario_sweep 8               # 8-thread parallel scheduler
//   $ ./example_scenario_sweep --n=65536 --scenario=global/min/rand/ring
//   $ ./example_scenario_sweep 4 --n=16384 --scenario=global/sum/bcast/iclique
//   $ ./example_scenario_sweep --scenario=load/poisson/resv/ring --load=0.9
//   $ ./example_scenario_sweep --ranks=4 --scenario=global/min/rand/ring
//
// --ranks=K runs the synchronous rows sharded over K OS processes
// (scenario/rank_run.hpp): each rank builds only its node window and the
// rows — digest included — are bit-identical to the serial table's, which
// is exactly what the CI serial-vs-sharded diff pins.  Rank mode is
// synchronous-only, so the @async section is skipped, as are the two-phase
// fault-recovery scenarios; it composes with --n/--load/--faults but not
// with a thread count (one process per rank, serial inside).
//
// --n is STRICT: a size the topology family does not admit (a non-power-of-
// two hypercube, a non-square grid) exits non-zero instead of silently
// clamping — sweep automation must never report a different n than asked.
// --load is equally strict: it only applies to load-capable scenarios (the
// open-loop load/ family), and selecting it with anything else exits
// non-zero instead of silently running the scenario at no load.  --faults
// follows the same rule for fault-capable scenarios (the fault/ family):
// it scales the fault intensity k, and naming it with a scenario that has
// no make_fault_plan exits non-zero.  Fault-capable scenarios run at their
// default_faults even without the flag — the fault/ rows are always
// faulted rows.
//
// CI diffs the serial and parallel tables row by row, so a malformed
// registry entry must fail the sweep loudly instead of being skipped:
// duplicate names, missing digests, or empty sweeps exit non-zero before
// any run starts.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include "graph/generators.hpp"
#include "scenario/rank_run.hpp"
#include "scenario/registry.hpp"
#include "sim/channel_discipline.hpp"
#include "sim/scheduler.hpp"

namespace {

/// Rejects registry entries the sweep (and the CI diff over its rows)
/// cannot meaningfully drive, with a clean exit-1 instead of a skipped row.
/// Registry::add already aborts the process on duplicate names, missing
/// factories, and empty sweeps, so the load-bearing check here is the
/// digest: a digest-less scenario would print 0 and make the CI
/// serial/parallel diff blind to its results.  The duplicate-name re-check
/// stays as cheap defense in depth for a future registration path that
/// bypasses add().
bool validate_registry(const std::deque<mmn::scenario::Scenario>& scenarios) {
  bool ok = true;
  std::set<std::string> names;
  for (const auto& s : scenarios) {
    if (!names.insert(s.name).second) {
      std::fprintf(stderr, "malformed registry: duplicate scenario name %s\n",
                   s.name.c_str());
      ok = false;
    }
    if (!s.digest) {
      std::fprintf(stderr,
                   "malformed registry: %s has no digest — the sweep's "
                   "serial/parallel diff would be blind to its results\n",
                   s.name.c_str());
      ok = false;
    }
    if (s.sweep_n.empty()) {
      std::fprintf(stderr, "malformed registry: %s has an empty sweep\n",
                   s.name.c_str());
      ok = false;
    }
  }
  return ok;
}

void print_row(const mmn::scenario::Scenario& s, const char* suffix,
               const mmn::scenario::RunResult& r) {
  std::printf("%-30s %-9s %-11s %8u %10llu %12llu %18llx",
              (s.name + suffix).c_str(), mmn::topology_name(s.topology),
              mmn::sim::discipline_name(s.discipline), r.realized_n,
              (unsigned long long)r.metrics.rounds,
              (unsigned long long)r.metrics.p2p_messages,
              (unsigned long long)r.digest);
  // Faulted rows append their degradation tail; the columns are as
  // deterministic as the digest, so the CI serial/parallel diff covers them.
  if (!(r.faults == mmn::sim::FaultStats{})) {
    std::printf("  drops=%llu orphans=%llu rec=%llu",
                (unsigned long long)r.faults.drops,
                (unsigned long long)r.faults.orphaned_pkts,
                (unsigned long long)r.recovery_slots);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmn;
  unsigned threads = 1;
  NodeId requested_n = 0;  // 0 = each scenario's smallest sweep size
  double load = 0.0;       // 0 = each load scenario's default_load
  unsigned faults = 0;     // 0 = each fault scenario's default_faults
  unsigned ranks = 1;      // 1 = in-process serial/parallel run
  std::string only;        // empty = every scenario
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--n=", 4) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long n = std::strtoull(arg + 4, &end, 10);
      // Strict parse: out-of-range values must fail, not truncate into a
      // different (smaller) size than the caller asked for.
      if (end == arg + 4 || *end != '\0' || errno == ERANGE || n < 1 ||
          n > 0xFFFFFFFFull || arg[4] == '-') {
        std::fprintf(stderr, "bad --n value: %s\n", arg + 4);
        return 2;
      }
      requested_n = static_cast<NodeId>(n);
    } else if (std::strncmp(arg, "--load=", 7) == 0) {
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(arg + 7, &end);
      if (end == arg + 7 || *end != '\0' || errno == ERANGE ||
          !(parsed > 0.0) || parsed > 64.0) {
        std::fprintf(stderr, "bad --load value: %s\n", arg + 7);
        return 2;
      }
      load = parsed;
    } else if (std::strncmp(arg, "--faults=", 9) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed = std::strtoull(arg + 9, &end, 10);
      if (end == arg + 9 || *end != '\0' || errno == ERANGE || parsed < 1 ||
          parsed > 4096 || arg[9] == '-') {
        std::fprintf(stderr, "bad --faults value: %s\n", arg + 9);
        return 2;
      }
      faults = static_cast<unsigned>(parsed);
    } else if (std::strncmp(arg, "--ranks=", 8) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed = std::strtoull(arg + 8, &end, 10);
      if (end == arg + 8 || *end != '\0' || errno == ERANGE || parsed < 1 ||
          parsed > 64 || arg[8] == '-') {
        std::fprintf(stderr, "bad --ranks value: %s\n", arg + 8);
        return 2;
      }
      ranks = static_cast<unsigned>(parsed);
    } else if (std::strncmp(arg, "--scenario=", 11) == 0) {
      only = arg + 11;
    } else {
      char* end = nullptr;
      const long parsed = std::strtol(arg, &end, 10);
      if (end == arg || *end != '\0' || parsed < 1 || parsed > 256) {
        std::fprintf(stderr,
                     "usage: %s [threads: 1..256] [--n=N] [--load=L] "
                     "[--faults=K] [--scenario=NAME]\n",
                     argv[0]);
        return 2;
      }
      threads = static_cast<unsigned>(parsed);
    }
  }
  if (ranks > 1 && threads > 1) {
    std::fprintf(stderr, "--ranks runs one serial process per rank; it does "
                         "not compose with a thread count\n");
    return 2;
  }

  scenario::register_builtin();
  const auto& scenarios = scenario::Registry::instance().all();
  if (!validate_registry(scenarios)) return 1;
  if (!only.empty() && scenario::Registry::instance().find(only) == nullptr) {
    std::fprintf(stderr, "no such scenario: %s\n", only.c_str());
    return 1;
  }
  // Strict size check up front: with an explicit --n every selected
  // scenario's topology must admit exactly that n — no silent clamping.
  if (requested_n != 0) {
    bool ok = true;
    for (const auto& s : scenarios) {
      if (!only.empty() && s.name != only) continue;
      if (!topology_valid_n(s.topology, requested_n)) {
        std::fprintf(stderr,
                     "%s: topology '%s' does not admit n=%u (nearest "
                     "supported: %u)\n",
                     s.name.c_str(), topology_name(s.topology), requested_n,
                     topology_round_n(s.topology, requested_n));
        ok = false;
      }
    }
    if (!ok) return 1;
  }
  // --load only means something to load-capable scenarios; running a
  // closed-loop protocol "at load 0.7" would silently ignore the flag.
  if (load > 0.0) {
    bool ok = true;
    for (const auto& s : scenarios) {
      if (!only.empty() && s.name != only) continue;
      if (!s.make_load_factory) {
        std::fprintf(stderr, "%s is not load-capable; --load needs the "
                     "open-loop load/ scenarios\n", s.name.c_str());
        ok = false;
      }
    }
    if (!ok) return 1;
  }
  // Same strictness for --faults: an intensity named against a scenario
  // without a fault plan would silently run fault-free.
  if (faults > 0) {
    bool ok = true;
    for (const auto& s : scenarios) {
      if (!only.empty() && s.name != only) continue;
      if (!s.make_fault_plan) {
        std::fprintf(stderr, "%s is not fault-capable; --faults needs the "
                     "fault/ scenarios\n", s.name.c_str());
        ok = false;
      }
    }
    if (!ok) return 1;
  }

  std::size_t selected = 0;
  for (const auto& s : scenarios) selected += only.empty() || s.name == only;
  if (ranks > 1) {
    std::printf("%zu scenario(s) selected of %zu registered; %u rank "
                "processes\n\n",
                selected, scenarios.size(), ranks);
  } else {
    std::printf("%zu scenario(s) selected of %zu registered; scheduler: "
                "%s\n\n",
                selected, scenarios.size(),
                threads > 1 ? "parallel" : "serial");
  }
  std::printf("%-30s %-9s %-11s %8s %10s %12s %18s\n", "scenario", "topology",
              "discipline", "n", "rounds", "msgs", "digest");
  for (const auto& s : scenarios) {
    if (!only.empty() && s.name != only) continue;
    const NodeId n = requested_n != 0 ? requested_n : s.sweep_n.front();
    if (ranks > 1 && s.fault_recovery) {
      // The two-phase epoch rebuild re-runs on a compacted graph the rank
      // windows were not cut for; recovery rows stay serial-only.
      std::fprintf(stderr, "%s: fault-recovery scenarios run serial only; "
                           "skipped under --ranks\n", s.name.c_str());
      continue;
    }
    const scenario::RunResult r =
        ranks > 1
            ? scenario::run_sharded(s, n, s.default_seed, ranks, load, faults)
            : scenario::run(s, n, s.default_seed,
                            threads > 1 ? sim::make_scheduler(threads)
                                        : nullptr,
                            scenario::EngineKind::kSync, load, faults);
    print_row(s, "", r);
  }
  // The asynchronous engine runs channel-free workloads (through the
  // busy-tone synchronizer) and the open-loop load scenarios (natively, no
  // synchronizer); rounds are channel slots there.  Rank mode is
  // synchronous-only, so the section is skipped under --ranks.
  for (const auto& s : scenarios) {
    if (ranks > 1) break;
    if (!s.channel_free && !s.make_async_load_factory) continue;
    if (!only.empty() && s.name != only) continue;
    const NodeId n = requested_n != 0 ? requested_n : s.sweep_n.front();
    const scenario::RunResult r = scenario::run(
        s, n, s.default_seed,
        threads > 1 ? sim::make_scheduler(threads) : nullptr,
        scenario::EngineKind::kAsync, load, faults);
    // Synchronizer-path protocols must terminate; an open-loop run capped
    // mid-livelock (free-for-all past saturation) is a valid, deterministic
    // row — the backlog is the result.
    if (!r.completed && !s.make_async_load_factory) {
      std::fprintf(stderr, "%s@async hit the slot cap without terminating\n",
                   s.name.c_str());
      return 1;
    }
    print_row(s, "@async", r);
  }
  std::printf("\nRe-run with a thread count (e.g. `%s 8`): the rounds, msgs,\n"
              "and digest columns are identical by construction — both the\n"
              "synchronous rounds and the async slot phases run on the same\n"
              "deterministic scheduler, whichever channel discipline the\n"
              "scenario declares.\n",
              argv[0]);
  return 0;
}
