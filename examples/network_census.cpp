// Network census: how many of us are there? (Sections 7.3 and 7.4)
//
// Nodes of an ad-hoc deployment do not know the network size.  Two tools
// from the paper:
//   * the Greenberg–Ladner coin-flip protocol on the channel alone gives a
//     constant-factor estimate in ~log2(n) slots — run here many times to
//     show the estimate distribution;
//   * the modified partitioning algorithm computes the exact size in
//     O(sqrt(n) log id) time, using both media.
#include <cstdio>
#include <map>
#include <memory>

#include "core/size.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace mmn;
  const Graph deployment = random_connected(/*n=*/777, /*extra_edges=*/900,
                                            /*seed=*/5);
  const NodeId n = deployment.num_nodes();
  std::printf("deployment: n = %u (unknown to the nodes)\n\n", n);

  // --- randomized estimate, 25 independent runs ----------------------------
  std::map<std::uint64_t, int> histogram;
  double slots_avg = 0;
  const int runs = 25;
  for (int run = 0; run < runs; ++run) {
    sim::Engine engine(deployment, [](const sim::LocalView& v) {
      return std::make_unique<SizeEstimateProcess>(v);
    }, 100 + run);
    slots_avg += static_cast<double>(engine.run(100'000).rounds) / runs;
    ++histogram[static_cast<const SizeEstimateProcess&>(engine.process(0))
                    .estimate()];
  }
  std::printf("Greenberg–Ladner estimates over %d runs (~%.1f slots each):\n",
              runs, slots_avg);
  for (const auto& [estimate, count] : histogram) {
    std::printf("  2^k = %6llu  x%-3d %s\n", (unsigned long long)estimate,
                count, std::string(static_cast<std::size_t>(count), '#').c_str());
  }

  // --- deterministic exact count -------------------------------------------
  sim::Engine engine(deployment, [](const sim::LocalView& v) {
    return std::make_unique<DeterministicSizeProcess>(v);
  }, 7);
  const Metrics metrics = engine.run(10'000'000);
  const auto counted =
      static_cast<const DeterministicSizeProcess&>(engine.process(0))
          .network_size();
  std::printf("\ndeterministic census: %llu (exact: %s) in %llu rounds\n",
              (unsigned long long)counted, counted == n ? "yes" : "NO",
              (unsigned long long)metrics.rounds);
  return counted == n ? 0 : 1;
}
