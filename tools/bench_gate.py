#!/usr/bin/env python3
"""CI perf-regression gate over google-benchmark JSON output.

Compares a fresh BENCH_*.json against the committed baseline
(bench/baseline/) and fails when a gated benchmark's throughput counter
dropped by more than --tolerance (default 25%).  Gated benchmarks are the
ones whose name starts with one of the --prefix values; everything else is
reported but never fails the gate (absolute wall-clock of full scenario
runs is too machine-dependent to gate, the hot-path counters are not).

Usage:
  tools/bench_gate.py --baseline bench/baseline/BENCH_sim_throughput.json \
                      --fresh BENCH_sim_throughput.json \
                      [--prefix channel/resolve --prefix sched/ ...] \
                      [--tolerance 0.25]

Both files may carry google-benchmark repetitions (--benchmark_repetitions);
the gate then compares the per-name *median* throughput, which is what makes
a sub-100ns microbenchmark like channel/resolve gateable on noisy runners.

Absolute throughput is only comparable between like machines, so the gate
ARMS itself by comparing the google-benchmark context of the two files: when
the CPU shape differs (num_cpus exact, mhz_per_cpu within 15% — clocks
fluctuate run to run on hosted pools), regressions are reported as
warnings and the exit stays 0, with instructions to commit a baseline
captured on the current runner shape (pass --strict to fail anyway).  The
steady state for CI is therefore: download a bench-json artifact from a
green run on the target runner pool, commit it as the baseline, and from
then on the gate fails real hot-path regressions on that pool.

Gating is two-sided: throughput counters (slots/s, msgs/s, nodes/s, ...)
fail when they DROP past the tolerance, memory counters (bytes_per_node on
the topology/ benches, p99_delay_slots on the load/ sweep) fail when they
GROW past it — the CSR substrate's footprint and the reservation MAC's
delay tail are as load-bearing as raw speed.  Model counters (goodput_pps
on the load/ sweep) are deterministic simulation outputs, not wall-clock
measurements: they fail on a drop even when a machine-shape mismatch
leaves the throughput gate advisory.

Refreshing the baseline after an intentional perf change:
  ./build/bench_sim_throughput --json --benchmark_repetitions=3 \
      --benchmark_filter='channel/resolve|discipline/|sched/|arena/|buckets/|topology/'
  cp BENCH_sim_throughput.json bench/baseline/
"""

import argparse
import json
import statistics
import sys

# Counters that represent throughput (higher is better); the first one
# present on a benchmark entry is gated.  msgs_xshard/s is first: the
# shard/ rows carry it next to generic rate counters and the cross-rank
# batching rate is the primary gate there.  bytes/s is last: the roofline
# rows carry both msgs/s and bytes/s, and the message rate is the primary
# gate there (bytes/s alone gates the stream-bandwidth rows).
THROUGHPUT_COUNTERS = ("msgs_xshard/s", "slots/s", "sim_rounds/s", "msgs/s",
                       "nodes/s", "items_per_second", "bytes/s")

# Counters where LOWER is better (resident footprints / traffic volumes);
# gated benchmarks carrying one fail when it GROWS past the tolerance.
# bytes_per_node is the topology footprint (CSR arena + LocalViews) per
# node — the zero-copy view layout must not silently regress back to
# per-node adjacency copies.  bytes_per_round is the roofline rows' flip
# traffic (headers + delivery records + live payload prefixes, from
# MessageArena::bytes_moved()) — deterministic, so growth means the hot
# path started moving more data per round (e.g. payload copies crept back
# in), not that the machine got slower.  recovery_slots is the fault/
# recovery rows' first-fault-to-reconvergence latency in simulated slots —
# a pure model output, so growth means the epoch-rebuild flow got slower
# in model time, on any machine.  bytes_per_boundary_edge is the shard/
# rows' wire traffic per cut edge (framing included) — deterministic per
# configuration, so growth means the cross-rank batching or the payload
# interning on the wire regressed, not that the machine got slower.
MEMORY_COUNTERS = ("bytes_per_node", "bytes_per_round", "p99_delay_slots",
                   "recovery_slots", "bytes_per_boundary_edge")

# Deterministic model outputs (higher is better): pure functions of
# (seed, load, discipline), independent of the machine, so a drop is a
# behavior change, never noise — these fail even when the throughput gate
# is disarmed by a machine-shape mismatch.  goodput_pps is the load/
# sweep's delivered-packets-per-slot curve; goodput_retention is the
# fault/churn rows' faulted-over-clean delivery ratio.
MODEL_COUNTERS = ("goodput_pps", "goodput_retention")

# arena/ and buckets/ are the hot-path data-layout micro-counters
# (MessageArena::flip, SlotBuckets::stage): the structures the SoA
# header/payload split optimizes, gated so the layout cannot silently
# regress back to payload-copying.  topology/ gates both the build
# throughput and the bytes-per-node footprint of the CSR substrate.
# roofline/ gates the flip rows two-sided — msgs/s must not drop,
# bytes_per_round must not grow.
# load/ gates the open-loop sweep three ways: goodput_pps (model, must
# not drop), p99_delay_slots (model, must not grow), slots/s (wall-clock,
# armed machines only).
# fault/ gates the fault-injection bench: recovery_slots (model, must not
# grow) on the recovery rows, goodput_retention (model, must not drop) on
# the churn rows — both deterministic, so they gate on any machine shape.
# shard/ gates the cross-rank batching bench two-sided: msgs_xshard/s must
# not drop (armed machines only), bytes_per_boundary_edge must not grow
# (deterministic, any machine).
DEFAULT_PREFIXES = ("channel/resolve", "discipline/", "sched/", "arena/",
                    "buckets/", "topology/", "roofline/", "load/", "fault/",
                    "shard/")


def load_benchmarks(path):
    """Returns (context, {name -> list of iteration entries})."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions); the gate
        # computes its own median over the iteration rows.
        if bench.get("run_type") == "aggregate":
            continue
        # A row without a name cannot be matched against anything; a
        # malformed writer must not crash the gate with a KeyError.
        name = bench.get("name")
        if name is None:
            print("::warning title=bench_gate::%s contains a benchmark row "
                  "without a 'name' field; row skipped" % path)
            continue
        out.setdefault(name, []).append(bench)
    return doc.get("context", {}), out


def first_counter(benches, family):
    """First counter of `family` present on any repetition, or None."""
    for counter in family:
        if any(isinstance(b.get(counter), (int, float)) for b in benches):
            return counter
    return None


def machine_shape(context):
    return (context.get("num_cpus"), context.get("mhz_per_cpu"))


def shapes_compatible(a, b):
    """num_cpus must match exactly; clocks within 15% count as the same
    machine shape — mhz_per_cpu fluctuates run to run on hosted runner
    pools, and strict equality would leave the gate permanently advisory
    there."""
    if a[0] != b[0] or a[0] is None:
        return False
    mhz_a, mhz_b = a[1], b[1]
    if not mhz_a or not mhz_b:
        return mhz_a == mhz_b
    return abs(mhz_a - mhz_b) / max(mhz_a, mhz_b) <= 0.15


def throughput(benches):
    """Median throughput across repetitions of one benchmark name."""
    for counter in THROUGHPUT_COUNTERS:
        values = [float(b[counter]) for b in benches
                  if isinstance(b.get(counter), (int, float))]
        if values:
            return counter, statistics.median(values)
    return None, None


def memory(benches):
    """Median lower-is-better memory counter, or (None, None)."""
    for counter in MEMORY_COUNTERS:
        values = [float(b[counter]) for b in benches
                  if isinstance(b.get(counter), (int, float))]
        if values:
            return counter, statistics.median(values)
    return None, None


def model(benches):
    """Median deterministic higher-is-better model counter, or (None, None)."""
    for counter in MODEL_COUNTERS:
        values = [float(b[counter]) for b in benches
                  if isinstance(b.get(counter), (int, float))]
        if values:
            return counter, statistics.median(values)
    return None, None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument(
        "--prefix", action="append", default=None,
        help="gated benchmark-name prefix (repeatable); default: %s"
        % (DEFAULT_PREFIXES,))
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop (default 0.25)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on regressions even when the baseline was "
                             "captured on a different machine shape")
    args = parser.parse_args()
    prefixes = tuple(args.prefix) if args.prefix else DEFAULT_PREFIXES

    base_context, baseline = load_benchmarks(args.baseline)
    fresh_context, fresh = load_benchmarks(args.fresh)
    armed = args.strict or shapes_compatible(machine_shape(base_context),
                                             machine_shape(fresh_context))

    failures = []
    mem_failures = []  # machine-independent; fail even when disarmed
    rows = []
    for name, base_bench in sorted(baseline.items()):
        gated = any(name.startswith(p) for p in prefixes)
        fresh_bench = fresh.get(name)

        # A fresh row can carry a newly-registered gated counter that the
        # committed baseline row predates (e.g. msgs_xshard/s landing on a
        # pre-existing row).  The family gates below all select their
        # counter from the BASELINE side, so without this check the new
        # counter would pass through ungated without a word.  Fail with the
        # counter and row named and the fix spelled out instead — staleness
        # is a property of the committed file, not of the machine, so this
        # fails even when the throughput gate is disarmed.
        if gated and fresh_bench is not None:
            for family, kind in ((THROUGHPUT_COUNTERS, "throughput"),
                                 (MEMORY_COUNTERS, "memory"),
                                 (MODEL_COUNTERS, "model")):
                fresh_c = first_counter(fresh_bench, family)
                if fresh_c is not None and \
                        first_counter(base_bench, family) is None:
                    mem_failures.append(
                        "%s: baseline row lacks the newly-registered %s "
                        "counter '%s' carried by the fresh run — the "
                        "committed baseline predates it; refresh %s from "
                        "this run's bench-json artifact"
                        % (name, kind, fresh_c, args.baseline))

        # Memory counters gate in the other direction: growth is the
        # regression.  This check runs first and independently of the
        # throughput logic below (and its early `continue`s) — bytes are
        # deterministic, so a memory regression fails the gate even when
        # the machine shapes differ and the throughput gate is merely
        # advisory, and a memory-only benchmark is still gated.
        mem_counter, base_mem = memory(base_bench)
        if mem_counter is not None:
            fresh_mem = memory(fresh_bench)[1] if fresh_bench else None
            if fresh_mem is None:
                if gated:
                    mem_failures.append(
                        "%s: gated %s counter missing from fresh run"
                        % (name, mem_counter))
            else:
                # A zero baseline stays comparable: 0 -> 0 is unchanged,
                # 0 -> anything positive is unbounded growth.
                mem_ratio = (fresh_mem / base_mem if base_mem > 0
                             else (1.0 if fresh_mem == 0 else float("inf")))
                rows.append((name, mem_counter, base_mem, fresh_mem,
                             mem_ratio, gated))
                if gated and mem_ratio > 1.0 + args.tolerance:
                    mem_failures.append(
                        "%s: %s grew %.1f%% (baseline %.3g, fresh %.3g; "
                        "tolerance %.0f%%)"
                        % (name, mem_counter, (mem_ratio - 1.0) * 100.0,
                           base_mem, fresh_mem, args.tolerance * 100.0))

        # Model counters are deterministic simulation outputs: like the
        # memory counters they gate independently of machine shape, but in
        # the throughput direction — a drop is the regression.
        model_counter, base_model = model(base_bench)
        if model_counter is not None:
            fresh_model = model(fresh_bench)[1] if fresh_bench else None
            if fresh_model is None:
                if gated:
                    mem_failures.append(
                        "%s: gated %s counter missing from fresh run"
                        % (name, model_counter))
            else:
                model_ratio = (fresh_model / base_model if base_model > 0
                               else (1.0 if fresh_model == 0
                                     else float("inf")))
                rows.append((name, model_counter, base_model, fresh_model,
                             model_ratio, gated))
                if gated and model_ratio < 1.0 - args.tolerance:
                    mem_failures.append(
                        "%s: %s dropped %.1f%% (baseline %.3g, fresh %.3g; "
                        "tolerance %.0f%%) — deterministic model output, "
                        "this is a behavior change"
                        % (name, model_counter,
                           (1.0 - model_ratio) * 100.0, base_model,
                           fresh_model, args.tolerance * 100.0))

        counter, base_value = throughput(base_bench)
        if counter is None:
            continue
        if fresh_bench is None:
            rows.append((name, counter, base_value, None, None, gated))
            if gated:
                failures.append("%s: gated benchmark missing from fresh run"
                                % name)
            continue
        fresh_counter, fresh_value = throughput(fresh_bench)
        if fresh_value is None:
            if gated:
                failures.append("%s: fresh run lost its throughput counter"
                                % name)
            continue
        if fresh_counter != counter:
            # A ratio across different counters is meaningless; treat a
            # renamed counter like a lost one instead of comparing units.
            if gated:
                failures.append(
                    "%s: throughput counter changed (%s -> %s); refresh the "
                    "baseline" % (name, counter, fresh_counter))
            continue
        ratio = fresh_value / base_value if base_value > 0 else float("inf")
        rows.append((name, counter, base_value, fresh_value, ratio, gated))
        if gated and ratio < 1.0 - args.tolerance:
            failures.append(
                "%s: %s dropped %.1f%% (baseline %.3g, fresh %.3g; "
                "tolerance %.0f%%)"
                % (name, counter, (1.0 - ratio) * 100.0, base_value,
                   fresh_value, args.tolerance * 100.0))

    new_names = sorted(set(fresh) - set(baseline))

    print("%-44s %-12s %12s %12s %8s  %s"
          % ("benchmark", "counter", "baseline", "fresh", "ratio", "gate"))
    for name, counter, base_value, fresh_value, ratio, gated in rows:
        print("%-44s %-12s %12.4g %12s %8s  %s"
              % (name, counter, base_value,
                 "%.4g" % fresh_value if fresh_value is not None else "-",
                 "%.2f" % ratio if ratio is not None else "-",
                 "gated" if gated else "info"))
    for name in new_names:
        print("%-44s (new — not in baseline; refresh bench/baseline/ to gate)"
              % name)

    if not armed:
        # GitHub Actions surfaces this as a visible annotation, so an
        # advisory run never passes silently.
        print("::warning title=perf gate disarmed::baseline machine shape %s "
              "does not match this runner's %s; regressions are advisory. "
              "Commit this run's bench-json artifact as bench/baseline/ to "
              "arm the gate." % (machine_shape(base_context),
                                 machine_shape(fresh_context)))
    if failures and not armed:
        print("\nPERF GATE DISARMED: baseline machine shape %s != fresh %s —"
              % (machine_shape(base_context), machine_shape(fresh_context)))
        print("absolute throughput is not comparable across machines, so the")
        print("following would-be failures are warnings only.  Commit a")
        print("baseline captured on this runner shape (e.g. this run's")
        print("bench-json artifact) to arm the gate, or pass --strict.")
        for failure in failures:
            print("  " + failure)
        failures = []
    if failures or mem_failures:
        print("\nPERF GATE FAILED (tolerance %.0f%%):" % (args.tolerance * 100))
        for failure in failures + mem_failures:
            print("  " + failure)
        if mem_failures:
            print("\nByte counts and model outputs are machine-independent: "
                  "bytes_per_node / bytes_per_round / p99_delay_slots / "
                  "goodput_pps regressions fail even when the throughput "
                  "gate is disarmed by a machine-shape mismatch.")
        print("\nIf the regression is intentional, refresh the baseline "
              "(see this script's docstring).")
        return 1
    print("\nperf gate OK: no gated counter regressed more than %.0f%% (%s)"
          % (args.tolerance * 100,
             "armed" if armed else
             "machine shapes differ — gate would have been advisory"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
