#!/usr/bin/env bash
# Serial-vs-sharded smoke: runs one scenario through example_scenario_sweep
# serially and again at each requested --ranks count, then diffs the
# scenario rows.  The row carries the run digest and the message/round
# totals, so a zero diff is a bit-identity certificate for the
# multi-process wire path (src/sim/rank.hpp) at this size.
#
# Usage: tools/rank_smoke.sh [scenario] [n] [rank counts...]
#   tools/rank_smoke.sh                              # global/min/rand/ring @ 65536, ranks 2 4
#   tools/rank_smoke.sh global/min/det/random 4096 2 # one scenario, one rank count
#
# SWEEP overrides the sweep binary (default ./build/example_scenario_sweep).
set -euo pipefail

SWEEP="${SWEEP:-./build/example_scenario_sweep}"
scenario="${1:-global/min/rand/ring}"
n="${2:-65536}"
if [ "$#" -gt 2 ]; then
  shift 2
  ranks=("$@")
else
  ranks=(2 4)
fi

# Scenario rows only (name, topology, discipline, numeric n, rounds, msgs,
# digest, optional fault tail).  @async rows are serial-only — the sharded
# driver covers the synchronous engine — so they are excluded from the diff.
rows() { awk 'NF>=7 && $4 ~ /^[0-9]+$/ && $0 !~ /@async/' "$1"; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$SWEEP" --n="$n" --scenario="$scenario" > "$tmp/serial.txt"
if [ "$(rows "$tmp/serial.txt" | wc -l)" -lt 1 ]; then
  echo "rank_smoke: no scenario row for $scenario in serial output" >&2
  cat "$tmp/serial.txt" >&2
  exit 1
fi

for k in "${ranks[@]}"; do
  "$SWEEP" --ranks="$k" --n="$n" --scenario="$scenario" > "$tmp/r$k.txt"
  if ! diff <(rows "$tmp/serial.txt") <(rows "$tmp/r$k.txt"); then
    echo "rank_smoke: $scenario @ n=$n diverged at --ranks=$k" >&2
    exit 1
  fi
  echo "rank_smoke: $scenario @ n=$n bit-identical at --ranks=$k"
done
