// Shared helpers for the experiment binaries.
//
// Each bench regenerates one table (or figure series) from DESIGN.md /
// EXPERIMENTS.md.  "time" is simulated rounds (model time: message delay =
// slot length = 1), "msgs" is point-to-point messages; both are deterministic
// per seed.  Normalized columns divide by the paper's bound so a flat column
// across n reproduces the claimed shape.
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/engine.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"

namespace mmn::bench {

/// Uniform output driver for the experiment binaries.  Every bench prints
/// its tables as before; passing `--json` additionally dumps them to
/// BENCH_<id>.json so the perf trajectory is machine-readable.
class BenchOutput {
 public:
  BenchOutput(int argc, char** argv, std::string id) : id_(std::move(id)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") json_ = true;
    }
  }

  bool json() const { return json_; }

  /// Prints the table and, under --json, records it for the final dump.
  void table(const std::string& key, const Table& t) {
    t.print(std::cout);
    if (json_) {
      std::ostringstream os;
      t.write_json(os);
      parts_.emplace_back(key, os.str());
    }
  }

  /// Writes BENCH_<id>.json when --json was passed; call once at the end.
  void finish() const {
    if (!json_) return;
    const std::string path = "BENCH_" + id_ + ".json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << id_ << "\",\n  \"tables\": {";
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    \"" << parts_[i].first
          << "\": " << parts_[i].second;
    }
    out << "\n  }\n}\n";
    std::cout << "wrote " << path << "\n";
  }

 private:
  std::string id_;
  bool json_ = false;
  std::vector<std::pair<std::string, std::string>> parts_;
};

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void print_note(const std::string& note) {
  std::cout << note << "\n";
}

/// Least-squares slope of log2(y) against log2(x) — the empirical scaling
/// exponent of a series (0.5 for sqrt, 1.0 for linear).
inline double fitted_exponent(const std::vector<double>& x,
                              const std::vector<double>& y) {
  const std::size_t k = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double lx = std::log2(x[i]);
    const double ly = std::log2(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(k) * sxx - sx * sx;
  return (static_cast<double>(k) * sxy - sx * sy) / denom;
}

}  // namespace mmn::bench
