// Shared helpers for the experiment binaries.
//
// Each bench regenerates one table (or figure series) from DESIGN.md /
// EXPERIMENTS.md.  "time" is simulated rounds (model time: message delay =
// slot length = 1), "msgs" is point-to-point messages; both are deterministic
// per seed.  Normalized columns divide by the paper's bound so a flat column
// across n reproduces the claimed shape.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/engine.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"

namespace mmn::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void print_note(const std::string& note) {
  std::cout << note << "\n";
}

/// Least-squares slope of log2(y) against log2(x) — the empirical scaling
/// exponent of a series (0.5 for sqrt, 1.0 for linear).
inline double fitted_exponent(const std::vector<double>& x,
                              const std::vector<double>& y) {
  const std::size_t k = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double lx = std::log2(x[i]);
    const double ly = std::log2(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(k) * sxx - sx * sx;
  return (static_cast<double>(k) * sxy - sx * sy) / denom;
}

}  // namespace mmn::bench
