// E5 — The Omega(min{d, sqrt(n)}) lower bound on ray graphs (Theorem 2).
//
// Theorem 2 proves the multimedia lower bound on a ray graph of diameter d:
// no algorithm can beat Omega(min{d, sqrt(n)}).  The matching upper bound is
// the best of two strategies: pure point-to-point flooding at Theta(d), and
// the d-oblivious multimedia algorithm at Theta(sqrt(n) polylog).  Sweeping
// d at (almost) fixed n, the best-of-both time should track min{d, sqrt(n)}:
// it grows with d while d < sqrt(n) and flattens at the multimedia plateau
// beyond — exactly the lower bound's shape.
#include <algorithm>
#include <memory>

#include "baselines/p2p_global.hpp"
#include "common.hpp"
#include "core/global_function.hpp"
#include "graph/generators.hpp"

namespace mmn {
namespace {

struct RayPoint {
  NodeId n;
  std::uint32_t d;
  std::uint64_t t_p2p;
  std::uint64_t t_mm;
};

RayPoint run_point(NodeId rays, NodeId ray_len) {
  const Graph g = ray_graph(rays, ray_len, 7);
  RayPoint point;
  point.n = g.num_nodes();
  point.d = 2 * ray_len;

  P2pGlobalConfig pconfig;
  pconfig.op = SemigroupOp::kMin;
  pconfig.known_diameter = static_cast<std::int32_t>(point.d);
  sim::Engine pe(g, [&](const sim::LocalView& v) {
    return std::make_unique<P2pGlobalProcess>(
        v, pconfig, static_cast<sim::Word>(v.self) + 1);
  }, 5);
  point.t_p2p = pe.run(200'000'000).rounds;

  GlobalFunctionConfig mconfig;
  mconfig.op = SemigroupOp::kMin;
  mconfig.variant = GlobalFunctionConfig::Variant::kRandomized;
  sim::Engine me(g, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(
        v, mconfig, static_cast<sim::Word>(v.self) + 1);
  }, 5);
  point.t_mm = me.run(200'000'000).rounds;
  return point;
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "lower_bound_ray");
  bench::print_header(
      "E5", "ray graphs: time vs diameter at fixed n (Theorem 2 shape)");
  bench::print_note(
      "n ~ 4096 throughout; d = 2 * ray_len sweeps past sqrt(n) = 64.\n"
      "best = min(p2p, mm) grows with d and then flattens — the\n"
      "Omega(min{d, sqrt(n)}) profile of Theorem 2.  Constants shift the\n"
      "observed crossover (p2p ~ 3d vs mm ~ 35 sqrt(n)), and the growing\n"
      "best/min ratio in the plateau is exactly the log*-and-constants gap\n"
      "between the paper's upper and lower bounds.  Note mm itself also\n"
      "tracks min{d, sqrt(n)}: its barrier-paced steps end early when BFS\n"
      "waves die at ray ends, so it adapts to small d without knowing it.");
  Table table({"rays", "ray_len", "n", "d", "min{d,sqrt n}", "p2p(d)",
               "mm_rand", "best", "best/min{d,sqrt n}"});
  struct Config {
    NodeId rays, len;
  };
  for (const Config c : {Config{1024, 4}, Config{512, 8}, Config{256, 16},
                         Config{128, 32}, Config{64, 64}, Config{32, 128},
                         Config{16, 256}, Config{8, 512}, Config{4, 1024},
                         Config{2, 2048}}) {
    const RayPoint p = run_point(c.rays, c.len);
    const double lower =
        std::min<double>(p.d, std::sqrt(static_cast<double>(p.n)));
    const std::uint64_t best = std::min(p.t_p2p, p.t_mm);
    table.begin_row();
    table.add(std::uint64_t{c.rays});
    table.add(std::uint64_t{c.len});
    table.add(std::uint64_t{p.n});
    table.add(std::uint64_t{p.d});
    table.add(lower, 1);
    table.add(p.t_p2p);
    table.add(p.t_mm);
    table.add(best);
    table.add(static_cast<double>(best) / lower, 2);
  }
  out.table("ray_profile", table);
  out.finish();
  return 0;
}
