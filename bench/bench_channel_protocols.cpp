// E10 — Ablation: the channel scheduling toolbox (Sections 2, 5, 6).
//
// Scheduling k stations out of an id space of n on the collision channel:
// Capetanakis tree resolution (deterministic, no global knowledge of the
// station set), pseudo-Bayesian randomized resolution (Metcalfe–Boggs), and
// TDMA (needs the station order known a priori — the unreachable optimum).
// Plus the deterministic bit-by-bit election (O(log n) slots).
#include <optional>
#include <set>

#include "channel/capetanakis.hpp"
#include "channel/election.hpp"
#include "channel/pseudo_bayesian.hpp"
#include "channel/randomized_election.hpp"
#include "common.hpp"
#include "sim/channel.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

std::vector<std::uint64_t> pick_ids(std::uint64_t n, std::size_t k,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::set<std::uint64_t> ids;
  while (ids.size() < k) ids.insert(rng.next_below(n));
  return {ids.begin(), ids.end()};
}

std::uint64_t capetanakis_slots(std::uint64_t n,
                                const std::vector<std::uint64_t>& ids,
                                bool massey_skip) {
  std::vector<CapetanakisResolver> stations;
  for (std::uint64_t id : ids) stations.emplace_back(n, id, massey_skip);
  CapetanakisResolver listener(n, std::nullopt, massey_skip);
  sim::Channel channel;
  Metrics metrics;
  std::uint64_t slots = 0;
  while (!listener.done()) {
    for (std::size_t s = 0; s < stations.size(); ++s) {
      if (stations[s].should_transmit()) {
        channel.write(static_cast<NodeId>(ids[s]), sim::Packet(1));
      }
    }
    const auto obs = channel.resolve(metrics);
    for (std::size_t s = 0; s < stations.size(); ++s) {
      stations[s].observe(obs, obs.success() &&
                                   obs.writer == static_cast<NodeId>(ids[s]));
    }
    listener.observe(obs);
    ++slots;
  }
  return slots;
}

double randomized_slots(std::size_t k, std::uint64_t seed) {
  Rng root(seed);
  std::vector<RandomizedScheduler> stations;
  std::vector<Rng> rngs;
  for (std::size_t s = 0; s < k; ++s) {
    stations.emplace_back(static_cast<double>(k), true);
    rngs.push_back(root.fork(s));
  }
  RandomizedScheduler listener(static_cast<double>(k), false);
  Rng lrng = root.fork(k + 7);
  sim::Channel channel;
  Metrics metrics;
  std::uint64_t slots = 0;
  while (!listener.done()) {
    for (std::size_t s = 0; s < k; ++s) {
      if (stations[s].should_transmit(rngs[s])) {
        channel.write(static_cast<NodeId>(s), sim::Packet(1));
      }
    }
    (void)listener.should_transmit(lrng);
    const auto obs = channel.resolve(metrics);
    for (std::size_t s = 0; s < k; ++s) {
      stations[s].observe(obs, obs.success() && obs.writer == s);
    }
    listener.observe(obs);
    ++slots;
  }
  return static_cast<double>(slots);
}

double randomized_election_slots(std::size_t k, std::uint64_t seed) {
  Rng root(seed);
  std::vector<RandomizedElection> stations;
  std::vector<Rng> rngs;
  for (std::size_t s = 0; s < k; ++s) {
    stations.emplace_back(true);
    rngs.push_back(root.fork(s));
  }
  sim::Channel channel;
  Metrics metrics;
  std::uint64_t slots = 0;
  while (!stations[0].done()) {
    for (std::size_t s = 0; s < k; ++s) {
      if (stations[s].should_transmit(rngs[s])) {
        channel.write(static_cast<NodeId>(s),
                      sim::Packet(1, {static_cast<sim::Word>(s)}));
      }
    }
    const auto obs = channel.resolve(metrics);
    for (std::size_t s = 0; s < k; ++s) {
      stations[s].observe(obs, obs.success() && obs.writer == s);
    }
    ++slots;
  }
  return static_cast<double>(slots);
}

int election_rounds(std::uint64_t n, const std::vector<std::uint64_t>& ids) {
  std::vector<ChannelElection> stations;
  for (std::uint64_t id : ids) stations.emplace_back(n, id);
  ChannelElection listener(n, ChannelElection::kNoCandidate);
  sim::Channel channel;
  Metrics metrics;
  int rounds = 0;
  while (!listener.done()) {
    for (std::size_t s = 0; s < stations.size(); ++s) {
      if (stations[s].should_transmit()) {
        channel.write(static_cast<NodeId>(ids[s]), sim::Packet(1));
      }
    }
    const auto obs = channel.resolve(metrics);
    for (auto& st : stations) st.observe(obs);
    listener.observe(obs);
    ++rounds;
  }
  return rounds;
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "channel_protocols");
  const std::uint64_t n = 4096;
  bench::print_header("E10", "channel scheduling disciplines (id space 4096)");
  bench::print_note(
      "slots per scheduled station: TDMA = 1 (needs a priori order);\n"
      "Capetanakis ~ 2 log(n/k) + O(1) deterministic (and with Massey's\n"
      "skip of doomed right-sibling probes); pseudo-Bayesian ~ 2e randomized\n"
      "(both lanes).  Deterministic election resolves in ceil(log2 n) slots;\n"
      "the Willard-style randomized one in O(log log n) expected slots.");
  Table table({"k", "capetanakis/k", "massey/k", "pseudo-bayes/k", "tdma/k",
               "det-elect slots", "rand-elect slots"});
  for (std::size_t k : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    const auto ids = pick_ids(n, k, 91 + k);
    double pb = 0;
    double re = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      pb += randomized_slots(k, 500 + t);
      re += randomized_election_slots(k, 800 + t);
    }
    table.begin_row();
    table.add(std::uint64_t{k});
    table.add(static_cast<double>(capetanakis_slots(n, ids, false)) / k, 2);
    table.add(static_cast<double>(capetanakis_slots(n, ids, true)) / k, 2);
    table.add(pb / trials / static_cast<double>(k), 2);
    table.add(1.0, 2);
    table.add(std::int64_t{election_rounds(n, ids)});
    table.add(re / trials, 1);
  }
  out.table("disciplines", table);
  out.finish();
  return 0;
}
