// E1 — Deterministic partitioning (Section 3, R1).
//
// Regenerates the paper's partition guarantees as a table: for each topology
// and n, the fragment count (<= sqrt(n)), minimum fragment size (>= sqrt(n)),
// maximum radius (<= 2^{L+3} - 1 for L = partition_phases(n)), and the
// measured time and message complexity normalized by the paper's bounds
// O(sqrt(n) log* n) and O(m + n log n log* n).  Flat normalized columns
// reproduce the claimed shape.
#include <memory>

#include "common.hpp"
#include "core/partition.hpp"
#include "core/partition_det.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

void run_row(Table& table, const std::string& topo, const Graph& g) {
  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<PartitionDetProcess>(v, PartitionDetConfig{});
  }, 7);
  const Metrics metrics = engine.run(80'000'000);
  const FragmentAccessor acc = direct_fragment_accessor();
  const Forest forest = collect_forest(engine, acc);
  const ForestStats stats = analyze_forest(g, forest, "bench E1");
  const bool in_mst = forest_within_mst(forest, kruskal_mst(g));

  const int L = partition_phases(n);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double time_bound = sqrt_n * std::max(1, log_star(n));
  const double msg_bound =
      static_cast<double>(m) +
      static_cast<double>(n) * ilog2_ceil(n) * std::max(1, log_star(n));

  table.begin_row();
  table.add(topo);
  table.add(std::uint64_t{n});
  table.add(std::uint64_t{m});
  table.add(std::uint64_t{stats.num_trees});
  table.add(static_cast<std::uint64_t>(isqrt(n)));
  table.add(std::uint64_t{stats.min_size});
  table.add(std::uint64_t{stats.max_radius});
  table.add(std::uint64_t{(1u << (L + 3)) - 1});
  table.add(std::string(in_mst ? "yes" : "NO"));
  table.add(metrics.rounds);
  table.add(static_cast<double>(metrics.rounds) / time_bound, 2);
  table.add(metrics.p2p_messages);
  table.add(static_cast<double>(metrics.p2p_messages) / msg_bound, 2);
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "partition_det");
  bench::print_header("E1", "deterministic partitioning (Section 3)");
  bench::print_note(
      "claims: #frag <= sqrt(n); min size >= sqrt(n); radius <= 2^{L+3}-1;\n"
      "time = O(sqrt(n) log* n); msgs = O(m + n log n log* n); every tree a\n"
      "subtree of the unique MST.  Flat normalized columns = reproduced.");
  Table table({"topology", "n", "m", "#frag", "sqrt(n)", "min_size",
               "max_rad", "rad_bound", "in_MST", "time", "time/bound", "msgs",
               "msgs/bound"});
  for (NodeId n : {64u, 256u, 1024u, 4096u}) {
    run_row(table, "random(2n)", random_connected(n, 2 * n, 11));
  }
  for (NodeId n : {256u, 1024u, 4096u}) {
    run_row(table, "random(dense)",
            random_connected(n, n * static_cast<std::uint32_t>(isqrt(n)) / 2, 13));
  }
  for (NodeId side : {16u, 32u, 64u}) {
    run_row(table, "grid", grid(side, side, 17));
  }
  for (NodeId n : {256u, 1024u, 4096u}) {
    run_row(table, "ring", ring(n, 19));
  }
  out.table("partition", table);
  out.finish();
  return 0;
}
