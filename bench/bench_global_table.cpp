// E3 — Global sensitive functions, head-to-head (Section 5, R4/R5 vs R6).
//
// One table row per (topology, n): model time for the four algorithms —
// multimedia deterministic, multimedia randomized, pure point-to-point with
// known diameter (the Omega(d) matching baseline), and pure broadcast TDMA
// (the Omega(n) matching baseline) — plus the speedups of the randomized
// multimedia algorithm over both baselines.  The paper's claim: the
// multimedia network beats each of its components.
#include <memory>

#include "baselines/broadcast_global.hpp"
#include "baselines/p2p_global.hpp"
#include "common.hpp"
#include "core/global_function.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

std::vector<sim::Word> make_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<sim::Word> inputs(n);
  for (NodeId v = 0; v < n; ++v) {
    inputs[v] = static_cast<sim::Word>(rng.next_below(1'000'000)) + 1;
  }
  return inputs;
}

struct Row {
  std::uint64_t mm_det = 0, mm_rand = 0, p2p = 0, bcast = 0;
};

Row run_all(const Graph& g, std::uint32_t d) {
  const auto inputs = make_inputs(g.num_nodes(), 3);
  Row row;
  {
    GlobalFunctionConfig config;
    config.op = SemigroupOp::kMin;
    config.variant = GlobalFunctionConfig::Variant::kDeterministic;
    config.balanced = true;
    sim::Engine e(g, [&](const sim::LocalView& v) {
      return std::make_unique<GlobalFunctionProcess>(v, config, inputs[v.self]);
    }, 5);
    row.mm_det = e.run(80'000'000).rounds;
  }
  {
    GlobalFunctionConfig config;
    config.op = SemigroupOp::kMin;
    config.variant = GlobalFunctionConfig::Variant::kRandomized;
    sim::Engine e(g, [&](const sim::LocalView& v) {
      return std::make_unique<GlobalFunctionProcess>(v, config, inputs[v.self]);
    }, 5);
    row.mm_rand = e.run(80'000'000).rounds;
  }
  {
    P2pGlobalConfig config;
    config.op = SemigroupOp::kMin;
    config.known_diameter = static_cast<std::int32_t>(d);
    sim::Engine e(g, [&](const sim::LocalView& v) {
      return std::make_unique<P2pGlobalProcess>(v, config, inputs[v.self]);
    }, 5);
    row.p2p = e.run(80'000'000).rounds;
  }
  {
    sim::Engine e(g, [&](const sim::LocalView& v) {
      return std::make_unique<BroadcastGlobalProcess>(v, SemigroupOp::kMin,
                                                      inputs[v.self]);
    }, 5);
    row.bcast = e.run(80'000'000).rounds;
  }
  return row;
}

void add_row(Table& table, const std::string& topo, const Graph& g,
             std::uint32_t d) {
  const Row r = run_all(g, d);
  table.begin_row();
  table.add(topo);
  table.add(std::uint64_t{g.num_nodes()});
  table.add(std::uint64_t{d});
  table.add(r.mm_det);
  table.add(r.mm_rand);
  table.add(r.p2p);
  table.add(r.bcast);
  table.add(static_cast<double>(r.p2p) / r.mm_rand, 2);
  table.add(static_cast<double>(r.bcast) / r.mm_rand, 2);
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "global_table");
  bench::print_header("E3",
                      "global sensitive functions: multimedia vs components");
  bench::print_note(
      "min over n inputs.  mm_det is the balanced Section 5.1 variant;\n"
      "p2p knows the exact diameter (best case for the baseline); bcast is\n"
      "optimal TDMA.  speedup_* = baseline time / mm_rand time.  Note the\n"
      "paper's claim is for d >= sqrt(n) or unknown d: on graphs with\n"
      "d << sqrt(n) the diameter-aware p2p baseline legitimately wins\n"
      "(speedup_p2p < 1) — that is Theorem 2's Omega(min{d, sqrt(n)}) at\n"
      "work, explored further in E5.");
  Table table({"topology", "n", "diam", "mm_det", "mm_rand", "p2p", "bcast",
               "speedup_p2p", "speedup_bcast"});
  for (NodeId n : {1024u, 4096u}) {
    add_row(table, "ring", ring(n, 7), n / 2);
  }
  for (NodeId side : {32u, 64u}) {
    const Graph g = grid(side, side, 7);
    add_row(table, "grid", g, 2 * (side - 1));
  }
  for (NodeId n : {1024u, 4096u}) {
    const Graph g = random_connected(n, 2 * n, 7);
    add_row(table, "random(2n)", g, diameter(g));
  }
  out.table("comparison", table);
  out.finish();
  return 0;
}
