// E8 — Network-size computation and estimation (Sections 7.3/7.4, R10/R11).
//
// Deterministic: the partition-with-check computes the exact n in
// O(sqrt(n) log id) time — the table reports exactness and time normalized by
// sqrt(n) * log2(n).  Randomized (Greenberg–Ladner): channel-only coin-flip
// rounds; the table reports the median estimate over seeds, the fraction
// within a factor of 4 of the truth, and the slot count (~log2 n).
#include <algorithm>
#include <memory>

#include "common.hpp"
#include "core/size.hpp"
#include "graph/generators.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

void det_row(Table& table, const Graph& g) {
  const NodeId n = g.num_nodes();
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<DeterministicSizeProcess>(v);
  }, 7);
  const Metrics metrics = engine.run(200'000'000);
  const auto computed =
      static_cast<const DeterministicSizeProcess&>(engine.process(0))
          .network_size();
  const double bound =
      std::sqrt(static_cast<double>(n)) * std::max(1, ilog2_ceil(n));
  table.begin_row();
  table.add(std::uint64_t{n});
  table.add(computed);
  table.add(std::string(computed == n ? "yes" : "NO"));
  table.add(metrics.rounds);
  table.add(static_cast<double>(metrics.rounds) / bound, 2);
}

void rand_row(Table& table, NodeId n) {
  const Graph g = ring(n, 1);
  std::vector<std::uint64_t> estimates;
  std::uint64_t slots_total = 0;
  int within4 = 0;
  int within8 = 0;
  const int seeds = 31;
  for (int s = 0; s < seeds; ++s) {
    sim::Engine engine(g, [](const sim::LocalView& v) {
      return std::make_unique<SizeEstimateProcess>(v);
    }, 1000 + s);
    slots_total += engine.run(100'000).rounds;
    const auto est =
        static_cast<const SizeEstimateProcess&>(engine.process(0)).estimate();
    estimates.push_back(est);
    if (est >= n / 4 && est <= static_cast<std::uint64_t>(n) * 4) ++within4;
    if (est >= n / 8 && est <= static_cast<std::uint64_t>(n) * 8) ++within8;
  }
  std::sort(estimates.begin(), estimates.end());
  table.begin_row();
  table.add(std::uint64_t{n});
  table.add(estimates[estimates.size() / 2]);
  table.add(static_cast<double>(estimates[estimates.size() / 2]) / n, 2);
  table.add(static_cast<double>(within4) / seeds, 2);
  table.add(static_cast<double>(within8) / seeds, 2);
  table.add(static_cast<double>(slots_total) / seeds, 1);
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "size");
  bench::print_header("E8", "network size (Sections 7.3 and 7.4)");
  bench::print_note(
      "deterministic (partition + per-phase core scheduling): exact n in\n"
      "O(sqrt(n) log id) time.");
  Table det({"n", "computed", "exact", "time", "time/sqrt(n)logn"});
  for (NodeId n : {64u, 256u, 1024u, 4096u}) {
    det_row(det, random_connected(n, 2 * n, 61));
  }
  out.table("deterministic", det);

  bench::print_note(
      "\nrandomized Greenberg–Ladner estimate (channel only, 31 seeds):\n"
      "2^k for the first idle coin-flip round; constant-factor accurate whp\n"
      "with an inherent upward bias (idle rounds only get likely once\n"
      "2^i exceeds n).");
  Table rnd({"n", "median est", "median/n", "P[within 4x]", "P[within 8x]",
             "slots (avg)"});
  for (NodeId n : {64u, 256u, 1024u, 4096u}) {
    rand_row(rnd, n);
  }
  out.table("randomized", rnd);
  out.finish();
  return 0;
}
