// E6 — Minimum spanning tree (Section 6, R7).
//
// The multimedia MST at O(sqrt(n) log n) time against the pure point-to-point
// synchronous Boruvka baseline at Theta(n log n), with exact-equality checks
// against Kruskal's unique MST.  time/bound normalizes the multimedia time by
// sqrt(n) log n; a flat column reproduces the claimed shape.
#include <memory>
#include <set>

#include "baselines/p2p_mst.hpp"
#include "common.hpp"
#include "core/mst.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

template <typename Process>
std::vector<EdgeId> collect_edges(const sim::Engine& engine) {
  std::set<EdgeId> edges;
  for (NodeId v = 0; v < engine.num_nodes(); ++v) {
    for (EdgeId e :
         static_cast<const Process&>(engine.process(v)).mst_edges()) {
      edges.insert(e);
    }
  }
  return {edges.begin(), edges.end()};
}

void run_row(Table& table, const std::string& topo, const Graph& g,
             bool run_baseline) {
  const NodeId n = g.num_nodes();
  const MstResult truth = kruskal_mst(g);

  sim::Engine mm(g, [](const sim::LocalView& v) {
    return std::make_unique<MstProcess>(v);
  }, 7);
  const Metrics mm_metrics = mm.run(200'000'000);
  const bool mm_exact = collect_edges<MstProcess>(mm) == truth.edges;
  const int phases =
      static_cast<const MstProcess&>(mm.process(0)).phases_used();

  std::uint64_t p2p_rounds = 0;
  bool p2p_exact = true;
  if (run_baseline) {
    sim::Engine p2p(g, [](const sim::LocalView& v) {
      return std::make_unique<P2pMstProcess>(v);
    }, 7);
    p2p_rounds = p2p.run(400'000'000).rounds;
    p2p_exact = collect_edges<P2pMstProcess>(p2p) == truth.edges;
  }

  const double bound =
      std::sqrt(static_cast<double>(n)) * std::max(1, ilog2_ceil(n));
  table.begin_row();
  table.add(topo);
  table.add(std::uint64_t{n});
  table.add(std::uint64_t{g.num_edges()});
  table.add(mm_metrics.rounds);
  table.add(static_cast<double>(mm_metrics.rounds) / bound, 2);
  table.add(mm_metrics.p2p_messages);
  table.add(std::int64_t{phases});
  table.add(std::string(mm_exact ? "yes" : "NO"));
  if (run_baseline) {
    table.add(p2p_rounds);
    table.add(static_cast<double>(p2p_rounds) / mm_metrics.rounds, 2);
    table.add(std::string(p2p_exact ? "yes" : "NO"));
  } else {
    table.add(std::string("-"));
    table.add(std::string("-"));
    table.add(std::string("-"));
  }
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "mst");
  bench::print_header("E6", "minimum spanning tree (Section 6)");
  bench::print_note(
      "mm = three-stage multimedia MST; p2p = synchronous Boruvka baseline\n"
      "(Theta(n log n), run for the smaller sizes).  '=MST' compares edge\n"
      "sets with Kruskal exactly.");
  Table table({"topology", "n", "m", "mm_time", "mm/sqrt(n)logn", "mm_msgs",
               "phases", "=MST", "p2p_time", "p2p/mm", "=MST(p2p)"});
  for (NodeId n : {64u, 256u, 1024u, 4096u}) {
    run_row(table, "random(2n)", random_connected(n, 2 * n, 41), n <= 256);
  }
  for (NodeId side : {16u, 48u}) {
    run_row(table, "grid", grid(side, side, 43), side <= 16);
  }
  run_row(table, "ring", ring(512, 47), false);
  run_row(table, "complete", complete(64, 53), true);
  out.table("mst", table);
  out.finish();
  return 0;
}
