// E4 — Scaling separation (Corollary 3; the "power of multimedia" figure).
//
// The log-log series of model time versus n on rings (diameter n/2) for the
// four global-function algorithms, with fitted scaling exponents.  The
// multimedia algorithms should fit ~n^0.5 (plus log factors), the two
// single-medium baselines ~n^1.0 — the structural separation that makes the
// combined network more powerful than both of its parts.
#include <memory>

#include "baselines/broadcast_global.hpp"
#include "baselines/p2p_global.hpp"
#include "common.hpp"
#include "core/global_function.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

std::uint64_t time_mm(const Graph& g, GlobalFunctionConfig config) {
  sim::Engine e(g, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(
        v, config, static_cast<sim::Word>(v.self) + 1);
  }, 5);
  return e.run(200'000'000).rounds;
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "global_scaling");
  bench::print_header("E4", "time vs n on rings (figure series, log-log)");
  bench::print_note(
      "expected fitted exponents: mm_* ~ 0.5 (sqrt) plus log factors —\n"
      "measured ~0.67 over this range because log n and log* n still grow;\n"
      "p2p and bcast ~ 1.0 (linear).  Crossovers mark where the multimedia\n"
      "network starts beating each single medium.");
  Table table({"n", "mm_det", "mm_rand", "p2p(d known)", "bcast"});
  std::vector<double> ns, det, rnd, p2p, bc;
  for (NodeId n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    const Graph g = ring(n, 7);
    GlobalFunctionConfig config;
    config.op = SemigroupOp::kMin;
    config.variant = GlobalFunctionConfig::Variant::kDeterministic;
    config.balanced = true;
    const std::uint64_t t_det = time_mm(g, config);
    config.variant = GlobalFunctionConfig::Variant::kRandomized;
    config.balanced = false;
    const std::uint64_t t_rand = time_mm(g, config);

    P2pGlobalConfig pconfig;
    pconfig.op = SemigroupOp::kMin;
    pconfig.known_diameter = static_cast<std::int32_t>(n / 2);
    sim::Engine pe(g, [&](const sim::LocalView& v) {
      return std::make_unique<P2pGlobalProcess>(
          v, pconfig, static_cast<sim::Word>(v.self) + 1);
    }, 5);
    const std::uint64_t t_p2p = pe.run(200'000'000).rounds;

    sim::Engine be(g, [&](const sim::LocalView& v) {
      return std::make_unique<BroadcastGlobalProcess>(
          v, SemigroupOp::kMin, static_cast<sim::Word>(v.self) + 1);
    }, 5);
    const std::uint64_t t_bc = be.run(200'000'000).rounds;

    table.begin_row();
    table.add(std::uint64_t{n});
    table.add(t_det);
    table.add(t_rand);
    table.add(t_p2p);
    table.add(t_bc);
    ns.push_back(n);
    det.push_back(static_cast<double>(t_det));
    rnd.push_back(static_cast<double>(t_rand));
    p2p.push_back(static_cast<double>(t_p2p));
    bc.push_back(static_cast<double>(t_bc));
  }
  out.table("times", table);

  Table fits({"series", "fitted exponent (log-log slope)"});
  fits.begin_row();
  fits.add(std::string("mm_det"));
  fits.add(bench::fitted_exponent(ns, det), 3);
  fits.begin_row();
  fits.add(std::string("mm_rand"));
  fits.add(bench::fitted_exponent(ns, rnd), 3);
  fits.begin_row();
  fits.add(std::string("p2p"));
  fits.add(bench::fitted_exponent(ns, p2p), 3);
  fits.begin_row();
  fits.add(std::string("bcast"));
  fits.add(bench::fitted_exponent(ns, bc), 3);
  out.table("fits", fits);
  out.finish();
  return 0;
}
