// E2 — Randomized partitioning (Section 4, Theorem 1; R2/R3).
//
// Regenerates Theorem 1: the expected number of trees is O(sqrt(n)) —
// reported as E[#trees]/sqrt(n) over seeds, which should stay flat in n —
// together with the hard radius bound 4*sqrt(n), time O(sqrt(n) log* n),
// messages O(m + n log* n), and the Las Vegas wrapper's restart rate.
#include <memory>

#include "common.hpp"
#include "core/partition.hpp"
#include "core/partition_rand.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

void run_row(Table& table, const std::string& topo, const Graph& g,
             int seeds) {
  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();
  double trees = 0;
  double rounds = 0;
  double msgs = 0;
  std::uint32_t max_radius = 0;
  int attempts = 0;
  for (int s = 0; s < seeds; ++s) {
    sim::Engine engine(g, [](const sim::LocalView& v) {
      return std::make_unique<LasVegasPartitionProcess>(v,
                                                        PartitionRandConfig{});
    }, 100 + s);
    const Metrics metrics = engine.run(80'000'000);
    const FragmentAccessor acc = direct_fragment_accessor();
    const ForestStats stats =
        analyze_forest(g, collect_forest(engine, acc), "bench E2");
    trees += static_cast<double>(stats.num_trees);
    rounds += static_cast<double>(metrics.rounds);
    msgs += static_cast<double>(metrics.p2p_messages);
    max_radius = std::max(max_radius, stats.max_radius);
    attempts +=
        static_cast<const LasVegasPartitionProcess&>(engine.process(0))
            .attempts();
  }
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double time_bound = sqrt_n * std::max(1, log_star(n));
  const double msg_bound = static_cast<double>(m) +
                           static_cast<double>(n) * std::max(1, log_star(n));
  table.begin_row();
  table.add(topo);
  table.add(std::uint64_t{n});
  table.add(std::uint64_t{m});
  table.add(trees / seeds, 1);
  table.add(trees / seeds / sqrt_n, 2);
  table.add(std::uint64_t{max_radius});
  table.add(static_cast<std::uint64_t>(4 * isqrt_ceil(n)));
  table.add(rounds / seeds / time_bound, 2);
  table.add(msgs / seeds / msg_bound, 2);
  table.add(static_cast<double>(attempts) / seeds, 2);
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "partition_rand");
  bench::print_header("E2", "randomized partitioning (Section 4, Theorem 1)");
  bench::print_note(
      "claims: E[#trees] = O(sqrt(n)) (flat E/sqrt(n) column); radius <=\n"
      "4 sqrt(n) always; time O(sqrt(n) log* n); msgs O(m + n log* n); the\n"
      "Las Vegas verification rarely restarts (attempts ~ 1).");
  Table table({"topology", "n", "m", "E[#trees]", "E/sqrt(n)", "max_rad",
               "rad_bound", "time/bound", "msgs/bound", "attempts"});
  for (NodeId n : {64u, 256u, 1024u, 4096u}) {
    run_row(table, "random(2n)", random_connected(n, 2 * n, 23),
            n >= 4096 ? 5 : 10);
  }
  for (NodeId side : {16u, 32u, 64u}) {
    run_row(table, "grid", grid(side, side, 29), side >= 64 ? 5 : 10);
  }
  for (NodeId n : {256u, 1024u}) {
    run_row(table, "ring", ring(n, 31), 10);
  }
  out.table("partition", table);
  out.finish();
  return 0;
}
