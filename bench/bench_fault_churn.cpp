// E14 — Fault injection bench (google-benchmark): recovery latency of the
// epoch-rebuild flow and goodput retention of the open-loop reservation MAC
// under churn (sim/fault.hpp, graph/epoch.hpp).
//
// Two row families:
//
//   fault/recovery/<proto>/<n>   — the registry's two-phase recovery
//     scenarios (fault/partition/det/random, fault/mst/random): the
//     protocol runs into k connectivity-safe link kills, the epoch overlay
//     compacts the surviving topology, and the protocol re-converges from
//     scratch on it.  Counters:
//       recovery_slots   — slots from the first fault until re-convergence
//                          (phase-A remainder + phase-B rounds).  A pure
//                          model output, gated against GROWTH by
//                          tools/bench_gate.py even when a machine-shape
//                          mismatch leaves the wall-clock gate advisory.
//       links_killed     — plan size, informational.
//       slots/s          — wall-clock simulation rate (armed machines only).
//
//   fault/churn/resv/ring/64/k<K> — the open-loop reservation ring at
//     offered 0.6 under rate-driven link churn (0.004*K per slot) plus
//     station churn (0.001*K, 40 slots down).  Counters:
//       goodput_retention — faulted deliveries / clean deliveries of the
//                           identical configuration.  Deterministic model
//                           output; the gate fails on ANY drop past
//                           tolerance, armed or not.
//       fault_drops / orphaned_pkts — degradation tallies, informational.
//       p99_delay_slots  — voice-class p99 under churn, gated upward.
//       slots/s          — wall-clock rate.
//
// As in bench_load_sweep, every row re-runs its configuration once on a
// 4-thread ParallelScheduler after timing and aborts via SkipWithError on
// any digest mismatch, so the published fault curves are certified
// scheduler-invariant.  `--json` maps to google-benchmark's JSON writer
// (BENCH_fault_churn.json).
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/openloop.hpp"
#include "graph/generators.hpp"
#include "scenario/registry.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"

namespace mmn {
namespace {

constexpr std::uint64_t kSeed = 7;
constexpr unsigned kCheckThreads = 4;

void BM_Recovery(benchmark::State& state, const char* scenario_name,
                 NodeId n) {
  scenario::register_builtin();
  const scenario::Scenario* s =
      scenario::Registry::instance().find(scenario_name);
  if (s == nullptr) {
    state.SkipWithError("scenario not registered");
    return;
  }
  scenario::RunResult result;
  for (auto _ : state) {
    result = scenario::run(*s, n, s->default_seed);
    benchmark::DoNotOptimize(result.digest);
  }
  const scenario::RunResult parallel = scenario::run(
      *s, n, s->default_seed,
      std::make_unique<sim::ParallelScheduler>(kCheckThreads));
  if (parallel.digest != result.digest ||
      parallel.recovery_slots != result.recovery_slots) {
    state.SkipWithError("serial and 4-thread recovery runs diverged");
    return;
  }
  state.counters["recovery_slots"] =
      benchmark::Counter(static_cast<double>(result.recovery_slots));
  state.counters["links_killed"] =
      benchmark::Counter(static_cast<double>(result.faults.link_downs));
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(result.metrics.rounds) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(result.completed ? "reconverged" : "capped");
}

void BM_Churn(benchmark::State& state, std::uint32_t k) {
  const NodeId n = 64;
  const Graph g = build_topology(TopologySpec{TopoKind::kRing, n, kSeed});
  OpenLoopConfig config;
  config.arrivals = sim::ArrivalKind::kPoisson;
  config.offered = 0.6;
  config.horizon = 1200;
  sim::FaultPlan plan =
      sim::FaultPlan::link_churn(g, 0.004 * k, config.horizon, kSeed);
  plan.merge(sim::FaultPlan::node_churn(g, 0.001 * k, /*down_slots=*/40,
                                        config.horizon, kSeed));
  // The retention denominator: the identical configuration, fault-free.
  const LoadReport clean = run_open_loop(
      g, config, sim::DisciplineKind::kReservation, kSeed);
  LoadReport report;
  for (auto _ : state) {
    report = run_open_loop(g, config, sim::DisciplineKind::kReservation,
                           kSeed, nullptr, &plan);
    benchmark::DoNotOptimize(report.digest);
  }
  const LoadReport parallel = run_open_loop(
      g, config, sim::DisciplineKind::kReservation, kSeed,
      std::make_unique<sim::ParallelScheduler>(kCheckThreads), &plan);
  if (parallel.digest != report.digest || parallel.slots != report.slots) {
    state.SkipWithError("serial and 4-thread churn runs diverged");
    return;
  }
  std::uint64_t clean_delivered = 0;
  std::uint64_t faulted_delivered = 0;
  for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
    clean_delivered += clean.classes[c].delivered;
    faulted_delivered += report.classes[c].delivered;
  }
  state.counters["goodput_retention"] = benchmark::Counter(
      clean_delivered == 0 ? 1.0
                           : static_cast<double>(faulted_delivered) /
                                 static_cast<double>(clean_delivered));
  state.counters["fault_drops"] = benchmark::Counter(
      static_cast<double>(report.degradation.faults.drops));
  state.counters["orphaned_pkts"] = benchmark::Counter(
      static_cast<double>(report.degradation.faults.orphaned_pkts));
  state.counters["p99_delay_slots"] = benchmark::Counter(static_cast<double>(
      report.classes[static_cast<std::size_t>(sim::QosClass::kVoice)].p99));
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(report.slots) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(report.quiescent ? "drained" : "capped");
}

void register_rows() {
  struct RecoveryRow {
    const char* name;
    const char* scenario;
    NodeId n;
  };
  static constexpr RecoveryRow kRecovery[] = {
      {"fault/recovery/partition/64", "fault/partition/det/random", 64},
      {"fault/recovery/partition/128", "fault/partition/det/random", 128},
      {"fault/recovery/mst/64", "fault/mst/random", 64},
  };
  for (const RecoveryRow& row : kRecovery) {
    benchmark::RegisterBenchmark(row.name, BM_Recovery, row.scenario, row.n)
        ->Unit(benchmark::kMillisecond);
  }
  for (const std::uint32_t k : {1u, 4u}) {
    const std::string name =
        "fault/churn/resv/ring/64/k" + std::to_string(k);
    benchmark::RegisterBenchmark(name.c_str(), BM_Churn, k)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  mmn::register_rows();
  // Map the repo-wide --json flag onto google-benchmark's JSON writer.
  std::vector<char*> args;
  std::string out_flag = "--benchmark_out=BENCH_fault_churn.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
