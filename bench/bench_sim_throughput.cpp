// E11 — Engineering benchmark: simulator throughput (google-benchmark).
//
// Wall-clock cost of the engines themselves, swept from the scenario
// registry instead of hand-rolled loops:
//   * scenario/<name>/<n>       — every registered scenario at its default
//                                 sweep sizes under the serial scheduler;
//   * sched/<name>/<n>/t<k>     — the cheapest large scenario under the
//                                 parallel scheduler at 1/2/4/8 threads
//                                 (n >= 4096, the parallel-speedup gate);
//   * ascenario/<name>/<n>      — every channel-free scenario under the
//                                 asynchronous engine (busy-tone
//                                 synchronizer), serial scheduler;
//   * asched/<name>/<n>/t<k>    — the largest channel-free scenario on the
//                                 async engine's slot-phase scheduler at
//                                 1/2/4/8 threads;
//   * async/synchronized/<side> — the asynchronous engine driving a
//                                 synchronous protocol through the busy-tone
//                                 synchronizer (Section 7.1);
//   * channel/resolve           — raw slot resolution;
//   * discipline/<name>         — raw ChannelDiscipline::slot throughput
//                                 under a 16-of-64 contention batch per
//                                 iteration, drained to empty backlog;
//   * arena/flip/<n>            — MessageArena staging + counting-sort flip
//                                 of one all-to-some round at n nodes;
//   * buckets/stage/<n>         — SlotBuckets push + stage drain of one
//                                 slot's worth of in-flight messages;
//   * topology/build/<kind>/<n> — CSR (or implicit) topology construction at
//                                 4k/16k/64k, with a bytes_per_node counter
//                                 (graph arena + LocalViews) the perf gate
//                                 holds down as a memory regression check.
// This is the only wall-clock bench; all experiment tables use model
// metrics.  `--json` maps to google-benchmark's JSON output, written to
// BENCH_sim_throughput.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/p2p_global.hpp"
#include "core/synchronizer.hpp"
#include "graph/generators.hpp"
#include "scenario/registry.hpp"
#include "sim/async_engine.hpp"
#include "sim/channel.hpp"
#include "sim/channel_discipline.hpp"
#include "sim/scheduler.hpp"

namespace mmn {
namespace {

void run_scenario(benchmark::State& state, const scenario::Scenario& s,
                  NodeId n, unsigned threads) {
  // Graph generation is hoisted out of the timed loop; the engine build and
  // run are the measured work.  The per-iteration scheduler construction
  // (thread spawn, ~0.1 ms) is noise against the >= 10^3 rounds per run.
  const Graph g = scenario::make_scenario_graph(s, n, s.default_seed);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::Engine engine(g, s.make_factory(g), s.default_seed,
                       threads <= 1 ? nullptr : sim::make_scheduler(threads));
    rounds += engine.run(s.max_rounds).rounds;
  }
  state.counters["sim_rounds/s"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kIsRate);
}

void run_async_scenario(benchmark::State& state, const scenario::Scenario& s,
                        NodeId n, unsigned threads) {
  // Like run_scenario: graph generation is untimed setup, the engine build
  // and run are the measured work.
  const Graph g = scenario::make_scenario_graph(s, n, s.default_seed);
  std::uint64_t slots = 0;
  for (auto _ : state) {
    sim::AsyncEngine engine(
        g, synchronize(s.make_factory(g)), s.default_seed,
        s.async_max_delay_slots,
        threads <= 1 ? nullptr : sim::make_scheduler(threads));
    slots += engine.run(s.max_rounds).rounds;
    if (engine.status() != sim::AsyncEngine::RunStatus::kCompleted) {
      // Don't let a non-terminating config masquerade as a valid number in
      // the BENCH_*.json perf trajectory.
      state.SkipWithError(("async slot cap reached: " + s.name).c_str());
      return;
    }
  }
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}

void register_scenario_sweeps() {
  scenario::register_builtin();
  const scenario::Scenario* async_scaling = nullptr;
  for (const scenario::Scenario& s : scenario::Registry::instance().all()) {
    for (NodeId n : s.sweep_n) {
      benchmark::RegisterBenchmark(
          ("scenario/" + s.name + "/" + std::to_string(n)).c_str(),
          [&s, n](benchmark::State& state) { run_scenario(state, s, n, 1); });
    }
    if (s.channel_free) {
      // The channel-free scenario with the largest sweep size hosts the
      // thread sweep (first registered wins ties, so the series is stable
      // as the registry grows).
      if (async_scaling == nullptr ||
          s.sweep_n.back() > async_scaling->sweep_n.back()) {
        async_scaling = &s;
      }
      const NodeId n = s.sweep_n.front();
      benchmark::RegisterBenchmark(
          ("ascenario/" + s.name + "/" + std::to_string(n)).c_str(),
          [&s, n](benchmark::State& state) {
            run_async_scenario(state, s, n, 1);
          });
    }
  }
  // Serial-vs-parallel scaling at n >= 4096 on the cheapest large scenario.
  const scenario::Scenario* scaling =
      scenario::Registry::instance().find("global/min/rand/ring");
  if (scaling != nullptr) {
    const NodeId n = 4096;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      benchmark::RegisterBenchmark(
          ("sched/" + scaling->name + "/" + std::to_string(n) + "/t" +
           std::to_string(threads))
              .c_str(),
          [scaling, n, threads](benchmark::State& state) {
            run_scenario(state, *scaling, n, threads);
          });
    }
  }
  // Async slot-phase scaling: serial vs parallel delivery/fan-out sharding.
  if (async_scaling != nullptr) {
    const NodeId n = async_scaling->sweep_n.back();
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      benchmark::RegisterBenchmark(
          ("asched/" + async_scaling->name + "/" + std::to_string(n) + "/t" +
           std::to_string(threads))
              .c_str(),
          [async_scaling, n, threads](benchmark::State& state) {
            run_async_scenario(state, *async_scaling, n, threads);
          });
    }
  }
}

void BM_SynchronizedAsyncRun(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = grid(side, side, 7);
  P2pGlobalConfig config;
  config.op = SemigroupOp::kSum;
  auto factory = [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    return std::make_unique<P2pGlobalProcess>(
        v, config, static_cast<sim::Word>(v.self) + 1);
  };
  std::uint64_t slots = 0;
  for (auto _ : state) {
    sim::AsyncEngine engine(g, synchronize(factory), 7, 1);
    slots += engine.run(80'000'000).rounds;
    if (engine.status() != sim::AsyncEngine::RunStatus::kCompleted) {
      state.SkipWithError("async slot cap reached");
      return;
    }
  }
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynchronizedAsyncRun)
    ->Name("async/synchronized")
    ->Arg(8)
    ->Arg(16);

void run_discipline(benchmark::State& state, sim::DisciplineKind kind) {
  // One iteration = a fresh batch of 16 spread-out contenders (of 64
  // stations) fed into one slot, then further slots until the policy has
  // drained its backlog: 1 slot for the non-deferring disciplines, a
  // Capetanakis traversal or a TDMA cycle for the deferring ones.  The
  // slots/s counter is the policy's raw scheduling throughput.
  constexpr NodeId kStations = 64;
  constexpr NodeId kContenders = 16;
  auto discipline = sim::make_discipline(kind);
  discipline->reset(kStations);
  sim::Channel channel;
  Metrics metrics;
  std::vector<sim::ChannelWrite> batch;
  for (NodeId i = 0; i < kContenders; ++i) {
    batch.push_back(sim::ChannelWrite{
        static_cast<NodeId>(i * (kStations / kContenders)),
        sim::Packet(1, {sim::Word{i}})});
  }
  const std::vector<sim::ChannelWrite> empty;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(discipline->slot(batch, channel, metrics));
    ++slots;
    while (discipline->backlog() > 0) {
      benchmark::DoNotOptimize(discipline->slot(empty, channel, metrics));
      ++slots;
    }
  }
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}

void register_discipline_benches() {
  for (sim::DisciplineKind kind :
       {sim::DisciplineKind::kFreeForAll, sim::DisciplineKind::kTdma,
        sim::DisciplineKind::kCapetanakis, sim::DisciplineKind::kUnslotted}) {
    benchmark::RegisterBenchmark(
        (std::string("discipline/") + sim::discipline_name(kind)).c_str(),
        [kind](benchmark::State& state) { run_discipline(state, kind); });
  }
}

void BM_ArenaFlip(benchmark::State& state) {
  // One iteration = staging 4 sends per node across 4 shards (header +
  // pooled payload, exactly what NodeContext::send does) and one flip —
  // the per-round counting sort and scatter of the synchronous hot path.
  // After the first iterations every buffer is at its high-water capacity,
  // so the loop measures the steady-state zero-allocation path.
  const auto n = static_cast<NodeId>(state.range(0));
  constexpr unsigned kShards = 4;
  constexpr std::uint32_t kSendsPerNode = 4;
  sim::MessageArena arena;
  arena.reset(n, kShards);
  std::vector<sim::ShardBuffer> shards(kShards);
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    for (unsigned s = 0; s < kShards; ++s) {
      const auto [first, last] = sim::Scheduler::shard_range(n, s, kShards);
      for (NodeId v = first; v < last; ++v) {
        for (std::uint32_t k = 0; k < kSendsPerNode; ++k) {
          const auto to = static_cast<NodeId>((v + k + 1) % n);
          shards[s].outbox.push_back(sim::MsgHeader{
              to, v, EdgeId{v}, shards[s].stage_packet(sim::Packet(
                           1, {static_cast<sim::Word>(v), sim::Word{7}}))});
        }
      }
    }
    arena.flip(shards);
    benchmark::DoNotOptimize(arena.inbox(0).size());
    msgs += static_cast<std::uint64_t>(n) * kSendsPerNode;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ArenaFlip)->Name("arena/flip")->Arg(4096)->Arg(16384);

void BM_BucketsStage(benchmark::State& state) {
  // One iteration = one slot of the asynchronous delivery store: n committed
  // sends pushed (seq-stamped headers + pooled payloads) and one stage()
  // drain (header sort + per-destination offsets).  Ticks spread over the
  // slot; destinations collide so the sort does real grouping work.
  const auto n = static_cast<NodeId>(state.range(0));
  constexpr std::uint64_t kTicksPerSlot = 16;
  sim::SlotBuckets buckets;
  buckets.reset(n, kTicksPerSlot, /*ring_slots=*/4);
  std::uint64_t slot = 0;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    for (NodeId v = 0; v < n; ++v) {
      const std::uint64_t tick = slot * kTicksPerSlot + 1 + v % kTicksPerSlot;
      buckets.push(
          sim::AsyncMsgHeader{tick, static_cast<NodeId>((v * 7 + 1) % n), v,
                              EdgeId{v}, 0},
          sim::Packet(1, {static_cast<sim::Word>(v)}));
    }
    benchmark::DoNotOptimize(buckets.stage(slot));
    ++slot;
    msgs += n;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BucketsStage)->Name("buckets/stage")->Arg(4096)->Arg(16384);

void run_topology_build(benchmark::State& state, TopoKind kind, NodeId n) {
  // One iteration = building the full CSR topology (or the O(1) implicit
  // descriptor) for the spec.  The bytes_per_node counter is the resident
  // topology footprint — graph arena + the n non-owning LocalViews the
  // runtime adds — per node; the perf gate holds it down so the zero-copy
  // layout cannot silently regress back to per-node adjacency copies.
  MMN_REQUIRE(topology_valid_n(kind, n), "bench size not admissible");
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const Graph g = build_topology(TopologySpec{kind, n, 7});
    benchmark::DoNotOptimize(g.num_edges());
    nodes += n;
  }
  const Graph g = build_topology(TopologySpec{kind, n, 7});
  const std::size_t bytes = g.topology_bytes() + n * sizeof(sim::LocalView);
  state.counters["nodes/s"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.counters["bytes_per_node"] = benchmark::Counter(
      static_cast<double>(bytes) / static_cast<double>(n));
}

void register_topology_benches() {
  struct Case {
    TopoKind kind;
    NodeId n;
  };
  // 4k/16k/64k sweeps; the implicit clique at 16k would need ~4 GiB of
  // explicit rows and costs a few hundred bytes here.
  const Case cases[] = {
      {TopoKind::kRing, 4096},          {TopoKind::kRing, 65536},
      {TopoKind::kRandom, 4096},        {TopoKind::kRandom, 16384},
      {TopoKind::kGrid, 4096},          {TopoKind::kGrid, 16384},
      {TopoKind::kRay, 4096},           {TopoKind::kCliqueImplicit, 16384},
      {TopoKind::kHypercube, 65536},
  };
  for (const Case& c : cases) {
    benchmark::RegisterBenchmark(
        ("topology/build/" + std::string(topology_name(c.kind)) + "/" +
         std::to_string(c.n))
            .c_str(),
        [c](benchmark::State& state) {
          run_topology_build(state, c.kind, c.n);
        });
  }
}

void BM_ChannelResolve(benchmark::State& state) {
  sim::Channel channel;
  Metrics metrics;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    channel.write(0, sim::Packet(1, {42}));
    channel.write(1, sim::Packet(1, {43}));
    benchmark::DoNotOptimize(channel.resolve(metrics));
    ++slots;
  }
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ChannelResolve)->Name("channel/resolve");

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  // Map the repo-wide --json flag onto google-benchmark's JSON writer.
  std::vector<char*> args;
  std::string out_flag = "--benchmark_out=BENCH_sim_throughput.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int new_argc = static_cast<int>(args.size());
  mmn::register_scenario_sweeps();
  mmn::register_discipline_benches();
  mmn::register_topology_benches();
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
