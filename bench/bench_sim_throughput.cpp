// E11 — Engineering benchmark: simulator throughput (google-benchmark).
//
// Wall-clock cost of the engines themselves — rounds per second of the
// synchronous engine under the deterministic partition workload, raw channel
// slot resolution, and the asynchronous engine under the synchronizer.  This
// is the only wall-clock bench; all experiment tables use model metrics.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/p2p_global.hpp"
#include "core/global_function.hpp"
#include "core/partition_det.hpp"
#include "core/synchronizer.hpp"
#include "graph/generators.hpp"
#include "sim/channel.hpp"

namespace mmn {
namespace {

void BM_PartitionDet(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = random_connected(n, 2 * n, 7);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::Engine engine(g, [](const sim::LocalView& v) {
      return std::make_unique<PartitionDetProcess>(v, PartitionDetConfig{});
    }, 7);
    rounds += engine.run(80'000'000).rounds;
  }
  state.counters["sim_rounds/s"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PartitionDet)->Arg(64)->Arg(256)->Arg(1024);

void BM_GlobalMinRandomized(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = ring(n, 7);
  GlobalFunctionConfig config;
  config.op = SemigroupOp::kMin;
  config.variant = GlobalFunctionConfig::Variant::kRandomized;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::Engine engine(g, [&](const sim::LocalView& v) {
      return std::make_unique<GlobalFunctionProcess>(
          v, config, static_cast<sim::Word>(v.self) + 1);
    }, 7);
    rounds += engine.run(80'000'000).rounds;
  }
  state.counters["sim_rounds/s"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GlobalMinRandomized)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ChannelResolve(benchmark::State& state) {
  sim::Channel channel;
  Metrics metrics;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    channel.write(0, sim::Packet(1, {42}));
    channel.write(1, sim::Packet(1, {43}));
    benchmark::DoNotOptimize(channel.resolve(metrics));
    ++slots;
  }
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ChannelResolve);

void BM_SynchronizedAsyncRun(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = grid(n, n, 7);
  P2pGlobalConfig config;
  config.op = SemigroupOp::kSum;
  auto factory = [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    return std::make_unique<P2pGlobalProcess>(
        v, config, static_cast<sim::Word>(v.self) + 1);
  };
  std::uint64_t slots = 0;
  for (auto _ : state) {
    sim::AsyncEngine engine(g, synchronize(factory), 7, 1);
    slots += engine.run(80'000'000).rounds;
  }
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynchronizedAsyncRun)->Arg(8)->Arg(16);

}  // namespace
}  // namespace mmn

BENCHMARK_MAIN();
