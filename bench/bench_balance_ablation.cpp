// E9 — Ablation: the Section 5.1 balance refinement.
//
// The deterministic global-function algorithm can stop partitioning at
// fragments of size sqrt(n) (unbalanced: local stage O(sqrt(n) log* n),
// Capetanakis global stage O(sqrt(n) log n)) or continue to size
// ~sqrt(n log n / log* n) so both stages cost O(sqrt(n log n log* n))
// (balanced).  This table measures both on the same inputs; the ratio column
// shows what the refinement buys as n grows.
#include <memory>

#include "common.hpp"
#include "core/global_function.hpp"
#include "core/partition_det.hpp"
#include "graph/generators.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

std::uint64_t run_once(const Graph& g, bool balanced) {
  GlobalFunctionConfig config;
  config.op = SemigroupOp::kMin;
  config.variant = GlobalFunctionConfig::Variant::kDeterministic;
  config.balanced = balanced;
  sim::Engine e(g, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(
        v, config, static_cast<sim::Word>(v.self) + 1);
  }, 5);
  return e.run(200'000'000).rounds;
}

std::uint64_t partition_only(const Graph& g, int phases) {
  sim::Engine e(g, [&](const sim::LocalView& v) {
    PartitionDetConfig config;
    config.phases = phases;
    return std::make_unique<PartitionDetProcess>(v, config);
  }, 5);
  return e.run(200'000'000).rounds;
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "balance_ablation");
  bench::print_header("E9", "ablation: unbalanced vs balanced stages (5.1)");
  bench::print_note(
      "unbalanced partitions to 2^p >= sqrt(n); balanced to 2^p ~\n"
      "sqrt(n log n / log* n), trading local rounds for fewer Capetanakis\n"
      "slots.  glob_* = total - partition time (the tree fold plus the\n"
      "channel stage the refinement shrinks).  ratio < 1 means the\n"
      "refinement pays off; with\n"
      "the busy-tone barrier constants of this implementation the partition\n"
      "dominates, so the crossover lies beyond these sizes — the global\n"
      "stage does shrink as Section 5.1 predicts.");
  Table table({"topology", "n", "phases_unbal", "phases_bal", "t_unbalanced",
               "t_balanced", "glob_unbal", "glob_bal", "ratio"});
  for (NodeId n : {256u, 1024u, 4096u}) {
    for (const auto& [name, g] :
         {std::pair<std::string, Graph>{"random(2n)",
                                        random_connected(n, 2 * n, 67)},
          std::pair<std::string, Graph>{"ring", ring(n, 71)}}) {
      const std::uint64_t unbal = run_once(g, false);
      const std::uint64_t bal = run_once(g, true);
      const std::uint64_t part_unbal = partition_only(g, partition_phases(n));
      const std::uint64_t part_bal = partition_only(g, balanced_phase_count(n));
      table.begin_row();
      table.add(name);
      table.add(std::uint64_t{n});
      table.add(std::int64_t{partition_phases(n)});
      table.add(std::int64_t{balanced_phase_count(n)});
      table.add(unbal);
      table.add(bal);
      table.add(unbal - part_unbal);
      table.add(bal - part_bal);
      table.add(static_cast<double>(bal) / unbal, 2);
    }
  }
  out.table("ablation", table);
  out.finish();
  return 0;
}
