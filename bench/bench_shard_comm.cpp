// E15 — Sharded execution bench (google-benchmark): cross-rank message
// batching throughput of the rank driver (sim/rank.hpp, sim/shard_comm.hpp,
// scenario/rank_run.hpp).
//
// Rows shard/<scenario>/<n>/r<K> fork K rank processes per iteration, each
// owning one contiguous node window of the topology, and step the scenario
// to completion over the socketpair mesh.  Counters:
//
//   msgs_xshard/s            — cross-shard MsgHeaders carried per second of
//                              wall clock, summed over ranks.  The headline
//                              batching rate; gated against regression by
//                              tools/bench_gate.py on armed machines.
//   bytes_per_boundary_edge  — transport bytes sent (framing included) per
//                              cut edge over the whole run.  A model-side
//                              batching-efficiency figure: deterministic
//                              per configuration, gated like a memory
//                              counter (lower is better), and the first
//                              thing to move if the wire format regresses.
//   xshard_msgs / boundary_edges / rounds — the raw model quantities.
//
// Every row certifies determinism before publishing: the sharded digest
// must equal the serial run's digest bit for bit, else the row aborts via
// SkipWithError.  `--json` maps to google-benchmark's JSON writer
// (BENCH_shard_comm.json).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "scenario/rank_run.hpp"
#include "scenario/registry.hpp"

namespace mmn {
namespace {

void BM_Sharded(benchmark::State& state, const char* scenario_name, NodeId n,
                unsigned ranks) {
  scenario::register_builtin();
  const scenario::Scenario* s =
      scenario::Registry::instance().find(scenario_name);
  if (s == nullptr) {
    state.SkipWithError("scenario not registered");
    return;
  }
  const scenario::RunResult serial = scenario::run(*s, n, s->default_seed);
  scenario::RunResult result;
  scenario::ShardStats stats;
  for (auto _ : state) {
    result = scenario::run_sharded(*s, n, s->default_seed, ranks, 0.0, 0,
                                   &stats);
    benchmark::DoNotOptimize(result.digest);
  }
  if (result.digest != serial.digest ||
      !(result.metrics == serial.metrics)) {
    state.SkipWithError("sharded and serial runs diverged");
    return;
  }
  state.counters["msgs_xshard/s"] = benchmark::Counter(
      static_cast<double>(stats.xshard_msgs) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["xshard_msgs"] =
      benchmark::Counter(static_cast<double>(stats.xshard_msgs));
  state.counters["boundary_edges"] =
      benchmark::Counter(static_cast<double>(stats.boundary_edges));
  state.counters["bytes_per_boundary_edge"] = benchmark::Counter(
      stats.boundary_edges == 0
          ? 0.0
          : static_cast<double>(stats.wire_bytes) /
                static_cast<double>(stats.boundary_edges));
  state.counters["rounds"] =
      benchmark::Counter(static_cast<double>(stats.rounds));
  state.SetLabel(result.completed ? "completed" : "capped");
}

void register_rows() {
  struct Row {
    const char* scenario;
    const char* tag;
    NodeId n;
  };
  static constexpr Row kRows[] = {
      {"global/min/rand/ring", "ring", 1024},
      {"global/min/rand/ring", "ring", 4096},
      {"global/min/det/random", "random", 1024},
      {"global/min/det/random", "random", 4096},
  };
  for (const Row& row : kRows) {
    for (const unsigned ranks : {2u, 4u}) {
      const std::string name = std::string("shard/") + row.tag + "/" +
                               std::to_string(row.n) + "/r" +
                               std::to_string(ranks);
      benchmark::RegisterBenchmark(name.c_str(), BM_Sharded, row.scenario,
                                   row.n, ranks)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  mmn::register_rows();
  // Map the repo-wide --json flag onto google-benchmark's JSON writer.
  std::vector<char*> args;
  std::string out_flag = "--benchmark_out=BENCH_shard_comm.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
