// E13 — Open-loop load sweep (google-benchmark): throughput-vs-load and
// delay-vs-load curves for five channel disciplines over the same Poisson
// station population (core/openloop.hpp), ring-64.
//
// Row naming: load/<discipline>/ring/64/<load_pct> — e.g.
// load/resv/ring/64/90 is the reservation MAC at aggregate offered load
// 0.90 packets/slot.  Per row:
//
//   goodput_pps      — delivered packets per slot across all classes, the
//                      run's model throughput.  Deterministic per (seed,
//                      load, discipline); the perf gate (tools/
//                      bench_gate.py) fails on ANY drop, even unarmed.
//   p99_delay_slots  — p99 enqueue->delivery delay of the voice class
//                      (log2-bucket upper bound), the curve the reservation
//                      MAC exists to flatten.  Deterministic; gated upward.
//   voice_p99 / video_p99 / data_p99
//                    — the same percentile per class, informational.
//   voice_jitter / video_jitter / data_jitter
//                    — per-class inter-delivery variance (delay standard
//                      deviation, in slots; QosSummary::jitter).  The QoS
//                      figure the percentile tail cannot show: a tight p99
//                      can still wobble inside its bound.  Informational.
//   backlog_pkts     — packets still queued when the run cut off.  Nonzero
//                      here is the free-for-all livelock curve past
//                      saturation, not an error.
//   delivered_pkts   — absolute deliveries, to read goodput against.
//   slots/s          — wall-clock simulation rate (how fast the sweep runs,
//                      not a model quantity).
//
// Every timed iteration is a full serial run; after timing, the same
// configuration is re-run once on a 4-thread ParallelScheduler and the
// per-node digests are compared — a mismatch aborts the row with
// SkipWithError, so the published curves are certified scheduler-invariant.
// `--json` maps to google-benchmark's JSON writer (BENCH_load_sweep.json).
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/openloop.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"

namespace mmn {
namespace {

constexpr NodeId kNodes = 64;
constexpr std::uint64_t kSeed = 7;
constexpr std::uint64_t kHorizon = 2000;
constexpr unsigned kCheckThreads = 4;

OpenLoopConfig sweep_config(double offered) {
  OpenLoopConfig config;
  config.arrivals = sim::ArrivalKind::kPoisson;
  config.offered = offered;
  config.horizon = kHorizon;
  return config;
}

void BM_LoadSweep(benchmark::State& state, sim::DisciplineKind discipline,
                  double offered) {
  const Graph g =
      build_topology(TopologySpec{TopoKind::kRing, kNodes, kSeed});
  const OpenLoopConfig config = sweep_config(offered);
  LoadReport report;
  for (auto _ : state) {
    report = run_open_loop(g, config, discipline, kSeed);
    benchmark::DoNotOptimize(report.digest);
  }

  // Scheduler-invariance certificate: one parallel replica must reproduce
  // the serial run bit for bit before the row is published.
  const LoadReport parallel = run_open_loop(
      g, config, discipline, kSeed,
      std::make_unique<sim::ParallelScheduler>(kCheckThreads));
  if (parallel.digest != report.digest || parallel.slots != report.slots) {
    state.SkipWithError("serial and 4-thread runs diverged");
    return;
  }

  std::uint64_t delivered = 0;
  std::uint64_t backlog = 0;
  for (const sim::QosSummary& cls : report.classes) {
    delivered += cls.delivered;
    backlog += cls.backlog();
  }
  const auto slots = static_cast<double>(report.slots);
  state.counters["goodput_pps"] =
      benchmark::Counter(static_cast<double>(delivered) / slots);
  state.counters["p99_delay_slots"] = benchmark::Counter(
      static_cast<double>(report.classes[static_cast<std::size_t>(sim::QosClass::kVoice)].p99));
  state.counters["voice_p99"] = benchmark::Counter(
      static_cast<double>(report.classes[static_cast<std::size_t>(sim::QosClass::kVoice)].p99));
  state.counters["video_p99"] = benchmark::Counter(
      static_cast<double>(report.classes[static_cast<std::size_t>(sim::QosClass::kVideo)].p99));
  state.counters["data_p99"] = benchmark::Counter(
      static_cast<double>(report.classes[static_cast<std::size_t>(sim::QosClass::kData)].p99));
  state.counters["voice_jitter"] = benchmark::Counter(
      report.classes[static_cast<std::size_t>(sim::QosClass::kVoice)].jitter());
  state.counters["video_jitter"] = benchmark::Counter(
      report.classes[static_cast<std::size_t>(sim::QosClass::kVideo)].jitter());
  state.counters["data_jitter"] = benchmark::Counter(
      report.classes[static_cast<std::size_t>(sim::QosClass::kData)].jitter());
  state.counters["backlog_pkts"] =
      benchmark::Counter(static_cast<double>(backlog));
  state.counters["delivered_pkts"] =
      benchmark::Counter(static_cast<double>(delivered));
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(report.slots) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  // Row label: "drained" when the backlog cleared (small residues are the
  // unobserved-final-delivery boundary artifact, core/openloop.hpp),
  // "livelocked" when the run quiesced with a standing backlog (the
  // free-for-all story), "capped" when the slot budget ran out first.
  state.SetLabel(!report.quiescent        ? "capped"
                 : backlog > std::uint64_t{kNodes} ? "livelocked"
                                                   : "drained");
}

struct SweepPoint {
  const char* tag;
  sim::DisciplineKind discipline;
};

void register_rows() {
  // TDMA is stable at any offered load below 1 (its delay is the price:
  // ~n/2 slots of round-robin latency at light load); Capetanakis tree
  // splitting saturates near 0.5 packets/slot, so its 0.60/0.90 rows run
  // past capacity — they still drain inside the 8x budget window once
  // generation stops, with the delay tail (p99 columns) carrying the story.
  static constexpr SweepPoint kDisciplines[] = {
      {"ffa", sim::DisciplineKind::kFreeForAll},
      {"pb", sim::DisciplineKind::kPseudoBayesian},
      {"resv", sim::DisciplineKind::kReservation},
      {"tdma", sim::DisciplineKind::kTdma},
      {"cape", sim::DisciplineKind::kCapetanakis},
  };
  static constexpr double kLoads[] = {0.15, 0.30, 0.60, 0.90};
  for (const SweepPoint& point : kDisciplines) {
    for (const double load : kLoads) {
      const std::string name =
          "load/" + std::string(point.tag) + "/ring/" +
          std::to_string(kNodes) + "/" +
          std::to_string(static_cast<int>(load * 100.0 + 0.5));
      benchmark::RegisterBenchmark(name.c_str(), BM_LoadSweep,
                                   point.discipline, load)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  mmn::register_rows();
  // Map the repo-wide --json flag onto google-benchmark's JSON writer.
  std::vector<char*> args;
  std::string out_flag = "--benchmark_out=BENCH_load_sweep.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
