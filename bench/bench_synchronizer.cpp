// E7 — The channel as a synchronizer (Section 7.1, Corollary 4, R8).
//
// Runs the pure point-to-point global-function protocol on the asynchronous
// engine underneath the busy-tone synchronizer, sweeping the message-delay
// bound.  Columns: message ratio (the paper's claim: exactly 2x, one ack per
// message) and slots per simulated round (a constant at unit delay, growing
// linearly with the delay bound).
//
// A second table sweeps the async engine's slot-phase scheduler over thread
// counts: slots and messages are identical to the serial run by construction
// (deterministic parallel delivery; see sim/async_engine.hpp), so the
// `==serial` column must read "yes" in every row.
#include <memory>

#include "baselines/p2p_global.hpp"
#include "common.hpp"
#include "core/synchronizer.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"

namespace mmn {
namespace {

struct SyncRow {
  std::uint64_t sync_rounds, sync_msgs, async_slots, async_msgs;
};

SyncRow run_row(const Graph& g, std::uint32_t delay) {
  P2pGlobalConfig config;
  config.op = SemigroupOp::kSum;
  auto factory = [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    return std::make_unique<P2pGlobalProcess>(
        v, config, static_cast<sim::Word>(v.self) + 1);
  };
  SyncRow row;
  sim::Engine sync_engine(g, factory, 5);
  const Metrics sm = sync_engine.run(10'000'000);
  row.sync_rounds = sm.rounds;
  row.sync_msgs = sm.p2p_messages;

  sim::AsyncEngine async_engine(g, synchronize(factory), 5, delay);
  const Metrics am = async_engine.run(100'000'000);
  MMN_ASSERT(async_engine.status() == sim::AsyncEngine::RunStatus::kCompleted,
             "synchronizer run hit the slot cap; overhead row would be bogus");
  row.async_slots = am.rounds;
  row.async_msgs = am.p2p_messages;
  return row;
}

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  using namespace mmn;
  bench::BenchOutput out(argc, argv, "synchronizer");
  bench::print_header("E7", "busy-tone synchronizer overhead (Section 7.1)");
  bench::print_note(
      "claims: message ratio exactly 2.0 (one ack per message); slots per\n"
      "simulated round O(1) at delay <= 1 slot, growing with the bound.");
  Table table({"topology", "n", "delay<=", "sync_time", "async_slots",
               "slots/round", "msg_ratio"});
  for (const auto& [name, g] :
       {std::pair<std::string, Graph>{"grid8x8", grid(8, 8, 3)},
        std::pair<std::string, Graph>{"ring64", ring(64, 3)},
        std::pair<std::string, Graph>{"random96", random_connected(96, 150, 3)}}) {
    for (std::uint32_t delay : {1u, 2u, 4u, 8u}) {
      const SyncRow row = run_row(g, delay);
      table.begin_row();
      table.add(name);
      table.add(std::uint64_t{g.num_nodes()});
      table.add(std::uint64_t{delay});
      table.add(row.sync_rounds);
      table.add(row.async_slots);
      table.add(static_cast<double>(row.async_slots) / row.sync_rounds, 2);
      table.add(static_cast<double>(row.async_msgs) / row.sync_msgs, 2);
    }
  }
  out.table("overhead", table);

  // Async slot-phase scheduler sweep: parallel == serial, bit for bit.
  bench::print_note(
      "\nslot-phase scheduler sweep (random96, delay<=2): parallel async\n"
      "runs must reproduce the serial slots/messages exactly.");
  Table sched_table({"threads", "async_slots", "async_msgs", "==serial"});
  const Graph g = random_connected(96, 150, 3);
  P2pGlobalConfig config;
  config.op = SemigroupOp::kSum;
  auto factory = [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    return std::make_unique<P2pGlobalProcess>(
        v, config, static_cast<sim::Word>(v.self) + 1);
  };
  Metrics serial_metrics;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    sim::AsyncEngine engine(g, synchronize(factory), 5, 2,
                            sim::make_scheduler(threads));
    const Metrics m = engine.run(100'000'000);
    MMN_ASSERT(engine.status() == sim::AsyncEngine::RunStatus::kCompleted,
               "scheduler sweep run hit the slot cap");
    if (threads == 1) serial_metrics = m;
    sched_table.begin_row();
    sched_table.add(std::uint64_t{threads});
    sched_table.add(m.rounds);
    sched_table.add(m.p2p_messages);
    sched_table.add(std::string(m == serial_metrics ? "yes" : "NO"));
  }
  out.table("sched", sched_table);
  out.finish();
  return 0;
}
