// E12 — Roofline check for the per-round message path (google-benchmark).
//
// Answers "how far is the flip from the memory wall?" with two row families:
//   * roofline/stream/copy  — measured machine stream bandwidth: a memcpy
//                             over buffers several times the LLC, reported
//                             as a bytes/s counter (source read + destination
//                             write each counted once).  This is the roof.
//   * roofline/flip/<n>     — the arena/flip staging + counting-sort load
//                             (identical to bench_sim_throughput's
//                             arena/flip rows), instrumented with the
//                             arena's own traffic counter:
//                               bytes_per_round   — MessageArena::bytes_moved()
//                                                   per flip: headers read,
//                                                   delivery records written,
//                                                   live payload prefixes
//                                                   staged.  Deterministic;
//                                                   the perf gate fails when
//                                                   it GROWS (payload copies
//                                                   creeping back in).
//                               bytes/s           — that traffic over
//                                                   wall-clock.
//                               pct_of_stream_bw  — bytes/s against the roof
//                                                   measured on this very run
//                                                   (machine-relative, so it
//                                                   travels across hosts
//                                                   better than raw rates).
// The gate (tools/bench_gate.py, prefix roofline/) holds the flip rows
// two-sided: msgs/s must not drop, bytes_per_round must not grow.
// `--json` maps to google-benchmark's JSON output, written to
// BENCH_roofline.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "sim/runtime_core.hpp"
#include "sim/scheduler.hpp"
#include "support/simd.hpp"

namespace mmn {
namespace {

constexpr std::size_t kStreamBytes = 64u << 20;  // 4x any plausible LLC here

/// Best-of-five memcpy bandwidth in bytes/s (reads + writes), measured once
/// and shared by every flip row's pct_of_stream_bw counter.
double stream_bandwidth() {
  static const double bw = [] {
    std::vector<char> src(kStreamBytes, 1);
    std::vector<char> dst(kStreamBytes, 0);
    std::memcpy(dst.data(), src.data(), kStreamBytes);  // warm + page-fault
    double best = 0.0;
    for (int pass = 0; pass < 5; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      std::memcpy(dst.data(), src.data(), kStreamBytes);
      benchmark::DoNotOptimize(dst.data());
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      best = std::max(best, 2.0 * static_cast<double>(kStreamBytes) / secs);
    }
    return best;
  }();
  return bw;
}

void BM_StreamCopy(benchmark::State& state) {
  std::vector<char> src(kStreamBytes, 1);
  std::vector<char> dst(kStreamBytes, 0);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), kStreamBytes);
    benchmark::DoNotOptimize(dst.data());
    bytes += 2 * kStreamBytes;
  }
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamCopy)->Name("roofline/stream/copy");

void BM_FlipRoofline(benchmark::State& state) {
  // One iteration = staging 4 sends per node across 4 shards and one flip —
  // byte for byte the arena/flip load in bench_sim_throughput, so msgs/s is
  // directly comparable between the two files.
  const auto n = static_cast<NodeId>(state.range(0));
  constexpr unsigned kShards = 4;
  constexpr std::uint32_t kSendsPerNode = 4;
  sim::MessageArena arena;
  arena.reset(n, kShards);
  std::vector<sim::ShardBuffer> shards(kShards);
  std::uint64_t msgs = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    for (unsigned s = 0; s < kShards; ++s) {
      const auto [first, last] = sim::Scheduler::shard_range(n, s, kShards);
      for (NodeId v = first; v < last; ++v) {
        for (std::uint32_t k = 0; k < kSendsPerNode; ++k) {
          const auto to = static_cast<NodeId>((v + k + 1) % n);
          shards[s].outbox.push_back(sim::MsgHeader{
              to, v, EdgeId{v}, shards[s].stage_packet(sim::Packet(
                           1, {static_cast<sim::Word>(v), sim::Word{7}}))});
        }
      }
    }
    arena.flip(shards);
    benchmark::DoNotOptimize(arena.inbox(0).size());
    msgs += static_cast<std::uint64_t>(n) * kSendsPerNode;
    ++rounds;
  }
  const auto bytes = static_cast<double>(arena.bytes_moved());
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(msgs), benchmark::Counter::kIsRate);
  state.counters["bytes/s"] = benchmark::Counter(bytes,
                                                 benchmark::Counter::kIsRate);
  state.counters["bytes_per_round"] =
      benchmark::Counter(bytes / static_cast<double>(rounds));
  // A rate counter scaled by 100/roof: google-benchmark divides by elapsed
  // wall-clock, so the reported value is (bytes/s) / roof * 100.
  state.counters["pct_of_stream_bw"] = benchmark::Counter(
      bytes * 100.0 / stream_bandwidth(), benchmark::Counter::kIsRate);
  state.SetLabel(simd::level_name(simd::active_level()));
}
BENCHMARK(BM_FlipRoofline)->Name("roofline/flip")->Arg(4096)->Arg(16384);

}  // namespace
}  // namespace mmn

int main(int argc, char** argv) {
  // Map the repo-wide --json flag onto google-benchmark's JSON writer.
  std::vector<char*> args;
  std::string out_flag = "--benchmark_out=BENCH_roofline.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
