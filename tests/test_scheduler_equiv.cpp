// Scheduler equivalence: SerialScheduler and ParallelScheduler must produce
// bit-identical Metrics and identical per-node results for the same seed.
//
// The guarantee rests on three mechanisms (sim/scheduler.hpp,
// sim/runtime_core.hpp): shards are contiguous ascending node ranges, every
// externally visible effect is staged per shard and merged in ascending
// shard order (= serial node order), and each node draws only from its own
// forked RNG stream.  The suite exercises the heaviest protocols in the
// library — MST, both partitions, and the global-function algorithms — on
// random graphs across thread counts and seeds, plus a delivery-order
// microtest that pins down the arena's inbox ordering.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/mst.hpp"
#include "core/partition.hpp"
#include "core/partition_det.hpp"
#include "core/partition_rand.hpp"
#include "graph/generators.hpp"
#include "scenario/registry.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace mmn {
namespace {

constexpr unsigned kThreadCounts[] = {2, 4, 8};

// --- scenario-level equivalence ------------------------------------------
//
// Every registered scenario (MST, partitions, global functions, baselines,
// size computation) runs serial vs parallel; Metrics and the per-node result
// digest must match exactly.

TEST(SchedulerEquivalence, AllScenariosMatchSerialAcrossThreadCounts) {
  scenario::register_builtin();
  const auto& scenarios = scenario::Registry::instance().all();
  ASSERT_GE(scenarios.size(), 6u);
  for (const scenario::Scenario& s : scenarios) {
    const NodeId n = s.sweep_n.front();
    const scenario::RunResult serial = scenario::run(s, n, s.default_seed);
    for (unsigned threads : kThreadCounts) {
      const scenario::RunResult parallel = scenario::run(
          s, n, s.default_seed, sim::make_scheduler(threads));
      EXPECT_TRUE(serial.metrics == parallel.metrics)
          << s.name << " with " << threads << " threads: metrics diverged\n"
          << "serial:   " << serial.metrics.to_string() << "\n"
          << "parallel: " << parallel.metrics.to_string();
      EXPECT_EQ(serial.digest, parallel.digest)
          << s.name << " with " << threads
          << " threads: per-node results diverged";
    }
  }
}

// --- per-node state equivalence ------------------------------------------
//
// Digest equality could in principle mask compensating differences; these
// compare raw per-node outputs field by field.

TEST(SchedulerEquivalence, MstPerNodeEdgesIdentical) {
  for (std::uint64_t seed : {3u, 11u, 42u}) {
    const Graph g = random_connected(96, 192, seed);
    const auto factory = [](const sim::LocalView& v) {
      return std::make_unique<MstProcess>(v);
    };
    sim::Engine serial(g, factory, seed);
    serial.run(200'000'000);
    for (unsigned threads : kThreadCounts) {
      sim::Engine parallel(g, factory, seed, sim::make_scheduler(threads));
      parallel.run(200'000'000);
      EXPECT_TRUE(serial.metrics() == parallel.metrics()) << threads;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto& a = static_cast<const MstProcess&>(serial.process(v));
        const auto& b = static_cast<const MstProcess&>(parallel.process(v));
        EXPECT_EQ(a.mst_edges(), b.mst_edges()) << "node " << v;
        EXPECT_EQ(a.phases_used(), b.phases_used()) << "node " << v;
      }
    }
  }
}

template <typename Process, typename Config>
void expect_partition_equivalent(const Config& config, std::uint64_t seed) {
  const Graph g = random_connected(80, 160, seed);
  const auto factory = [&config](const sim::LocalView& v) {
    return std::make_unique<Process>(v, config);
  };
  sim::Engine serial(g, factory, seed);
  serial.run(200'000'000);
  for (unsigned threads : kThreadCounts) {
    sim::Engine parallel(g, factory, seed, sim::make_scheduler(threads));
    parallel.run(200'000'000);
    EXPECT_TRUE(serial.metrics() == parallel.metrics()) << threads;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a = dynamic_cast<const FragmentState&>(serial.process(v));
      const auto& b = dynamic_cast<const FragmentState&>(parallel.process(v));
      EXPECT_EQ(a.fragment_id(), b.fragment_id()) << "node " << v;
      EXPECT_EQ(a.tree_parent(), b.tree_parent()) << "node " << v;
      EXPECT_EQ(a.tree_parent_edge(), b.tree_parent_edge()) << "node " << v;
    }
  }
}

TEST(SchedulerEquivalence, PartitionDetPerNodeStateIdentical) {
  expect_partition_equivalent<PartitionDetProcess>(PartitionDetConfig{}, 5);
}

TEST(SchedulerEquivalence, PartitionRandPerNodeStateIdentical) {
  // The randomized partition consumes per-node RNG streams heavily; identical
  // results across schedulers prove streams are never shared or reordered.
  expect_partition_equivalent<PartitionRandProcess>(PartitionRandConfig{}, 5);
}

// --- delivery-order microtest --------------------------------------------

/// Every node sends its id to node 0 in round 0; node 0 records its inbox.
class FanInProcess final : public sim::Process {
 public:
  explicit FanInProcess(const sim::LocalView& view) : view_(view) {}

  void round(sim::NodeContext& ctx) override {
    if (ctx.round() == 0 && view_.self != 0) {
      // On a complete graph some link reaches node 0.
      for (const sim::Neighbor& nb : view_.links) {
        if (nb.id == 0) {
          ctx.send(nb.edge, sim::Packet(1, {sim::Word{view_.self}}));
          break;
        }
      }
    }
    for (const sim::Received& r : ctx.inbox()) {
      senders_.push_back(r.from);
    }
    done_ = ctx.round() >= 1;
  }

  bool finished() const override { return done_; }

  const sim::LocalView& view_;
  std::vector<NodeId> senders_;
  bool done_ = false;
};

TEST(SchedulerEquivalence, InboxOrderIsAscendingSenderOrderEverywhere) {
  const Graph g = complete(17, 3);
  const auto factory = [](const sim::LocalView& v) {
    return std::make_unique<FanInProcess>(v);
  };
  std::vector<NodeId> expected;
  for (NodeId v = 1; v < g.num_nodes(); ++v) expected.push_back(v);

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    sim::Engine engine(g, factory, 3, sim::make_scheduler(threads));
    engine.run(10);
    const auto& p0 = static_cast<const FanInProcess&>(engine.process(0));
    EXPECT_EQ(p0.senders_, expected) << threads << " threads";
  }
}

TEST(SchedulerEquivalence, ShardRangesPartitionTheNodeSet) {
  for (unsigned shards : {1u, 2u, 3u, 8u, 16u}) {
    for (NodeId n : {0u, 1u, 5u, 16u, 97u}) {
      NodeId covered = 0;
      NodeId prev_last = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const auto [first, last] = sim::Scheduler::shard_range(n, s, shards);
        EXPECT_EQ(first, prev_last);
        EXPECT_LE(first, last);
        covered += last - first;
        prev_last = last;
      }
      EXPECT_EQ(prev_last, n);
      EXPECT_EQ(covered, n);
    }
  }
}

}  // namespace
}  // namespace mmn
