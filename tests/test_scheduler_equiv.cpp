// Scheduler equivalence: SerialScheduler and ParallelScheduler must produce
// bit-identical Metrics and identical per-node results for the same seed.
//
// The guarantee rests on three mechanisms (sim/scheduler.hpp,
// sim/runtime_core.hpp): shards are contiguous ascending node ranges, every
// externally visible effect is staged per shard and merged in ascending
// shard order (= serial node order), and each node draws only from its own
// forked RNG stream.  The suite exercises the heaviest protocols in the
// library — MST, both partitions, and the global-function algorithms — on
// random graphs across thread counts and seeds, plus a delivery-order
// microtest that pins down the arena's inbox ordering.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/p2p_global.hpp"
#include "core/mst.hpp"
#include "core/partition.hpp"
#include "core/partition_det.hpp"
#include "core/partition_rand.hpp"
#include "core/synchronizer.hpp"
#include "graph/generators.hpp"
#include "scenario/registry.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"
#include "support/simd.hpp"

namespace mmn {
namespace {

constexpr unsigned kThreadCounts[] = {2, 4, 8};

// --- scenario-level equivalence ------------------------------------------
//
// Every registered scenario (MST, partitions, global functions, baselines,
// size computation) runs serial vs parallel; Metrics and the per-node result
// digest must match exactly.

TEST(SchedulerEquivalence, AllScenariosMatchSerialAcrossThreadCounts) {
  scenario::register_builtin();
  const auto& scenarios = scenario::Registry::instance().all();
  // The registry must keep its discipline-variant entries (TDMA,
  // Capetanakis, unslotted) so this suite holds every ChannelDiscipline to
  // scheduler independence, not just the free-for-all channel.
  ASSERT_GE(scenarios.size(), 16u);
  int disciplined = 0;
  for (const scenario::Scenario& s : scenarios) {
    if (s.discipline != sim::DisciplineKind::kFreeForAll) ++disciplined;
  }
  ASSERT_GE(disciplined, 4);
  for (const scenario::Scenario& s : scenarios) {
    const NodeId n = s.sweep_n.front();
    const scenario::RunResult serial = scenario::run(s, n, s.default_seed);
    for (unsigned threads : kThreadCounts) {
      const scenario::RunResult parallel = scenario::run(
          s, n, s.default_seed, sim::make_scheduler(threads));
      EXPECT_TRUE(serial.metrics == parallel.metrics)
          << s.name << " with " << threads << " threads: metrics diverged\n"
          << "serial:   " << serial.metrics.to_string() << "\n"
          << "parallel: " << parallel.metrics.to_string();
      EXPECT_EQ(serial.digest, parallel.digest)
          << s.name << " with " << threads
          << " threads: per-node results diverged";
    }
  }
}

// --- SIMD dispatch equivalence -------------------------------------------
//
// The flip/stage counting sorts dispatch between a scalar reference path and
// an AVX2 path (support/simd.hpp).  A histogram and an exclusive prefix sum
// have exactly one right answer and the scatter loops stay scalar and
// stable, so the two paths must be BIT-identical — not merely statistically
// equivalent.  This pin runs every registered scenario on both dispatch
// levels, serial and 4-thread, and requires identical Metrics and per-node
// digests.  (kScalar is always safe to force; the detected level is
// whatever this host actually runs, so on an AVX2 machine this compares the
// vector kernels against the reference, and on any other machine it is a
// cheap self-check.)

TEST(SchedulerEquivalence, ScalarAndSimdDispatchBitIdentical) {
  scenario::register_builtin();
  struct OverrideGuard {
    ~OverrideGuard() { simd::clear_level_override(); }
  } guard;
  for (const scenario::Scenario& s : scenario::Registry::instance().all()) {
    const NodeId n = s.sweep_n.front();

    simd::set_level_override(simd::Level::kScalar);
    const scenario::RunResult scalar_serial =
        scenario::run(s, n, s.default_seed);
    const scenario::RunResult scalar_par =
        scenario::run(s, n, s.default_seed, sim::make_scheduler(4));

    simd::clear_level_override();  // back to the detected level
    const scenario::RunResult native_serial =
        scenario::run(s, n, s.default_seed);
    const scenario::RunResult native_par =
        scenario::run(s, n, s.default_seed, sim::make_scheduler(4));

    EXPECT_TRUE(scalar_serial.metrics == native_serial.metrics)
        << s.name << ": serial metrics diverged across dispatch levels\n"
        << "scalar: " << scalar_serial.metrics.to_string() << "\n"
        << "native: " << native_serial.metrics.to_string();
    EXPECT_EQ(scalar_serial.digest, native_serial.digest)
        << s.name << ": serial per-node results diverged across dispatch";
    EXPECT_TRUE(scalar_par.metrics == native_par.metrics)
        << s.name << ": 4-thread metrics diverged across dispatch levels\n"
        << "scalar: " << scalar_par.metrics.to_string() << "\n"
        << "native: " << native_par.metrics.to_string();
    EXPECT_EQ(scalar_par.digest, native_par.digest)
        << s.name << ": 4-thread per-node results diverged across dispatch";
    // And the two levels agree with each other across schedulers too.
    EXPECT_EQ(scalar_serial.digest, scalar_par.digest) << s.name;
  }
}

// --- per-node state equivalence ------------------------------------------
//
// Digest equality could in principle mask compensating differences; these
// compare raw per-node outputs field by field.

TEST(SchedulerEquivalence, MstPerNodeEdgesIdentical) {
  for (std::uint64_t seed : {3u, 11u, 42u}) {
    const Graph g = random_connected(96, 192, seed);
    const auto factory = [](const sim::LocalView& v) {
      return std::make_unique<MstProcess>(v);
    };
    sim::Engine serial(g, factory, seed);
    serial.run(200'000'000);
    for (unsigned threads : kThreadCounts) {
      sim::Engine parallel(g, factory, seed, sim::make_scheduler(threads));
      parallel.run(200'000'000);
      EXPECT_TRUE(serial.metrics() == parallel.metrics()) << threads;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto& a = static_cast<const MstProcess&>(serial.process(v));
        const auto& b = static_cast<const MstProcess&>(parallel.process(v));
        EXPECT_EQ(a.mst_edges(), b.mst_edges()) << "node " << v;
        EXPECT_EQ(a.phases_used(), b.phases_used()) << "node " << v;
      }
    }
  }
}

template <typename Process, typename Config>
void expect_partition_equivalent(const Config& config, std::uint64_t seed) {
  const Graph g = random_connected(80, 160, seed);
  const auto factory = [&config](const sim::LocalView& v) {
    return std::make_unique<Process>(v, config);
  };
  sim::Engine serial(g, factory, seed);
  serial.run(200'000'000);
  for (unsigned threads : kThreadCounts) {
    sim::Engine parallel(g, factory, seed, sim::make_scheduler(threads));
    parallel.run(200'000'000);
    EXPECT_TRUE(serial.metrics() == parallel.metrics()) << threads;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a = dynamic_cast<const FragmentState&>(serial.process(v));
      const auto& b = dynamic_cast<const FragmentState&>(parallel.process(v));
      EXPECT_EQ(a.fragment_id(), b.fragment_id()) << "node " << v;
      EXPECT_EQ(a.tree_parent(), b.tree_parent()) << "node " << v;
      EXPECT_EQ(a.tree_parent_edge(), b.tree_parent_edge()) << "node " << v;
    }
  }
}

TEST(SchedulerEquivalence, PartitionDetPerNodeStateIdentical) {
  expect_partition_equivalent<PartitionDetProcess>(PartitionDetConfig{}, 5);
}

TEST(SchedulerEquivalence, PartitionRandPerNodeStateIdentical) {
  // The randomized partition consumes per-node RNG streams heavily; identical
  // results across schedulers prove streams are never shared or reordered.
  expect_partition_equivalent<PartitionRandProcess>(PartitionRandConfig{}, 5);
}

// --- asynchronous engine equivalence --------------------------------------
//
// The AsyncEngine's slot-phase execution (delivery sub-rounds -> channel
// resolve -> on_slot fan-out, all staged per shard and merged in ascending
// shard order) must make parallel asynchronous runs bit-identical to serial
// ones.  Every channel-free scenario runs through the busy-tone synchronizer
// under both schedulers at 2/4/8 threads.

TEST(SchedulerEquivalence, AsyncScenariosMatchSerialAcrossThreadCounts) {
  scenario::register_builtin();
  int async_capable = 0;
  for (const scenario::Scenario& s : scenario::Registry::instance().all()) {
    if (!s.channel_free) continue;
    ++async_capable;
    const NodeId n = s.sweep_n.front();
    const scenario::RunResult serial = scenario::run(
        s, n, s.default_seed, nullptr, scenario::EngineKind::kAsync);
    ASSERT_TRUE(serial.completed) << s.name;
    for (unsigned threads : kThreadCounts) {
      const scenario::RunResult parallel =
          scenario::run(s, n, s.default_seed, sim::make_scheduler(threads),
                        scenario::EngineKind::kAsync);
      EXPECT_TRUE(parallel.completed) << s.name;
      EXPECT_TRUE(serial.metrics == parallel.metrics)
          << s.name << " async with " << threads
          << " threads: metrics diverged\n"
          << "serial:   " << serial.metrics.to_string() << "\n"
          << "parallel: " << parallel.metrics.to_string();
      EXPECT_EQ(serial.digest, parallel.digest)
          << s.name << " async with " << threads
          << " threads: per-node results diverged";
    }
  }
  // The registry must keep at least three async-capable workloads — one of
  // them under a non-trivial (unslotted) discipline, so the async engine's
  // discipline path is exercised here too.
  EXPECT_GE(async_capable, 3);
}

// Golden pinned-seed traces captured from the PRE-refactor AsyncEngine (the
// serial global-event-queue implementation this slot-phase policy replaced).
// They hold the refactor to the original observable behavior — slot counts,
// message counts, per-outcome channel slots, pulses, and per-node results —
// under every scheduler.  (Synchronizer-driven workloads like these also
// keep their per-node traces: acks, the only intra-slot cascades, carry no
// payload and draw no randomness, so the sub-round cascade order — the one
// deliberate semantic refinement over the old global queue, see
// sim/async_engine.hpp — cannot surface in them.)
struct AsyncGolden {
  std::uint64_t rounds, p2p, idle, success, collision, pulses;
  sim::Word result;
};

void expect_async_golden(const Graph& g, SemigroupOp op, sim::Word input_base,
                         std::uint64_t seed, std::uint32_t delay,
                         const AsyncGolden& want) {
  P2pGlobalConfig config;
  config.op = op;
  auto factory = [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    return std::make_unique<P2pGlobalProcess>(
        v, config, static_cast<sim::Word>(v.self) + input_base);
  };
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    sim::AsyncEngine engine(g, synchronize(factory), seed, delay,
                            sim::make_scheduler(threads));
    const Metrics m = engine.run(10'000'000);
    ASSERT_EQ(engine.status(), sim::AsyncEngine::RunStatus::kCompleted);
    EXPECT_EQ(m.rounds, want.rounds) << threads << " threads";
    EXPECT_EQ(m.p2p_messages, want.p2p) << threads << " threads";
    EXPECT_EQ(m.slots_idle, want.idle) << threads << " threads";
    EXPECT_EQ(m.slots_success, want.success) << threads << " threads";
    EXPECT_EQ(m.slots_collision, want.collision) << threads << " threads";
    const auto& wrapper =
        static_cast<const SynchronizerProcess&>(engine.process(0));
    EXPECT_EQ(wrapper.pulses(), want.pulses) << threads << " threads";
    EXPECT_EQ(static_cast<const P2pGlobalProcess&>(wrapper.inner()).result(),
              want.result)
        << threads << " threads";
  }
}

TEST(SchedulerEquivalence, AsyncGoldenTraceMatchesPreRefactorSerialRun) {
  // grid(6,6,2), sum of v+1, seed 5, delay <= 1 slot.
  expect_async_golden(grid(6, 6, 2), SemigroupOp::kSum, 1, 5, 1,
                      AsyncGolden{174, 1390, 114, 11, 49, 114, 666});
  // random_connected(40,50,3), min of v+7, seed 11, delay <= 3 slots.
  expect_async_golden(random_connected(40, 50, 3), SemigroupOp::kMin, 7, 11, 3,
                      AsyncGolden{206, 1376, 126, 12, 68, 126, 7});
}

// Direct AsyncProcess equivalence with intra-slot cascades: a relay chain in
// which on_message immediately forwards, so messages cascade inside single
// slots and exercise the delivery sub-round fixed point under sharding.
class AsyncRelay final : public sim::AsyncProcess {
 public:
  explicit AsyncRelay(const sim::LocalView& view) : view_(view) {}

  void start(sim::AsyncContext& ctx) override {
    if (view_.self == 0) {
      for (const sim::Neighbor& nb : view_.links()) {
        ctx.send(nb.edge, sim::Packet(1, {8}));
      }
    }
  }

  void on_message(const sim::Received& msg, sim::AsyncContext& ctx) override {
    trace_.push_back(static_cast<NodeId>(msg.from));
    const sim::Word hops = msg.packet()[0];
    if (hops > 0) {
      for (const sim::Neighbor& nb : view_.links()) {
        if (nb.to != msg.from) ctx.send(nb.edge, sim::Packet(1, {hops - 1}));
      }
    }
    done_ = true;
  }

  void on_slot(const sim::SlotObservation&, sim::AsyncContext&) override {}

  bool finished() const override { return view_.self != 0 || done_; }

  const sim::LocalView& view_;
  std::vector<NodeId> trace_;
  bool done_ = false;
};

TEST(SchedulerEquivalence, AsyncCascadesBitIdenticalAcrossSchedulers) {
  const Graph g = random_connected(48, 96, 13);
  const auto factory = [](const sim::LocalView& v) {
    return std::make_unique<AsyncRelay>(v);
  };
  sim::AsyncEngine serial(g, factory, 13, 2);
  const Metrics sm = serial.run(100'000);
  ASSERT_EQ(serial.status(), sim::AsyncEngine::RunStatus::kCompleted);
  for (unsigned threads : kThreadCounts) {
    sim::AsyncEngine parallel(g, factory, 13, 2, sim::make_scheduler(threads));
    const Metrics pm = parallel.run(100'000);
    EXPECT_TRUE(sm == pm) << threads << " threads";
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a = static_cast<const AsyncRelay&>(serial.process(v));
      const auto& b = static_cast<const AsyncRelay&>(parallel.process(v));
      // Same senders in the same per-node delivery order, message by message.
      EXPECT_EQ(a.trace_, b.trace_) << "node " << v << ", " << threads;
    }
  }
}

// --- delivery-order microtest --------------------------------------------

/// Every node sends its id to node 0 in round 0; node 0 records its inbox.
class FanInProcess final : public sim::Process {
 public:
  explicit FanInProcess(const sim::LocalView& view) : view_(view) {}

  void round(sim::NodeContext& ctx) override {
    if (ctx.round() == 0 && view_.self != 0) {
      // On a complete graph some link reaches node 0.
      for (const sim::Neighbor& nb : view_.links()) {
        if (nb.to == 0) {
          ctx.send(nb.edge, sim::Packet(1, {sim::Word{view_.self}}));
          break;
        }
      }
    }
    for (const sim::Received& r : ctx.inbox()) {
      senders_.push_back(r.from);
    }
    done_ = ctx.round() >= 1;
  }

  bool finished() const override { return done_; }

  const sim::LocalView& view_;
  std::vector<NodeId> senders_;
  bool done_ = false;
};

TEST(SchedulerEquivalence, InboxOrderIsAscendingSenderOrderEverywhere) {
  const Graph g = complete(17, 3);
  const auto factory = [](const sim::LocalView& v) {
    return std::make_unique<FanInProcess>(v);
  };
  std::vector<NodeId> expected;
  for (NodeId v = 1; v < g.num_nodes(); ++v) expected.push_back(v);

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    sim::Engine engine(g, factory, 3, sim::make_scheduler(threads));
    engine.run(10);
    const auto& p0 = static_cast<const FanInProcess&>(engine.process(0));
    EXPECT_EQ(p0.senders_, expected) << threads << " threads";
  }
}

TEST(SchedulerEquivalence, ShardRangesPartitionTheNodeSet) {
  for (unsigned shards : {1u, 2u, 3u, 8u, 16u}) {
    for (NodeId n : {0u, 1u, 5u, 16u, 97u}) {
      NodeId covered = 0;
      NodeId prev_last = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const auto [first, last] = sim::Scheduler::shard_range(n, s, shards);
        EXPECT_EQ(first, prev_last);
        EXPECT_LE(first, last);
        covered += last - first;
        prev_last = last;
      }
      EXPECT_EQ(prev_last, n);
      EXPECT_EQ(covered, n);
    }
  }
}

}  // namespace
}  // namespace mmn
