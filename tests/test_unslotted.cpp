// Tests for the Section 7.2 slotted-from-unslotted construction: emergent
// boundaries contain every transmission of their slot, the derived outcomes
// match an ideally slotted channel, and the construction is robust across
// jitter configurations.
#include <vector>

#include <gtest/gtest.h>

#include "sim/unslotted.hpp"
#include "support/rng.hpp"

namespace mmn::sim {
namespace {

std::vector<std::vector<NodeId>> random_write_pattern(NodeId stations,
                                                      std::size_t slots,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<NodeId>> pattern(slots);
  for (auto& slot : pattern) {
    const std::uint64_t count = rng.next_below(4);  // 0..3 writers
    std::vector<bool> used(stations, false);
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto w = static_cast<NodeId>(rng.next_below(stations));
      if (!used[w]) {
        used[w] = true;
        slot.push_back(w);
      }
    }
  }
  return pattern;
}

struct JitterCase {
  std::uint32_t delay;
  std::uint32_t transmit;
  std::uint32_t gap;
};

class UnslottedTest : public ::testing::TestWithParam<JitterCase> {};

TEST_P(UnslottedTest, TransmissionsContainedInTheirSlot) {
  const auto& c = GetParam();
  UnslottedConfig config{c.delay, c.transmit, c.gap, 11};
  const auto pattern = random_write_pattern(16, 60, 3);
  const UnslottedRun run = run_unslotted(16, pattern, config);
  ASSERT_EQ(run.boundaries.size(), pattern.size() + 1);
  for (const Transmission& t : run.transmissions) {
    EXPECT_GE(t.start_tick, run.boundaries[t.logical_slot])
        << "slot " << t.logical_slot;
    EXPECT_LE(t.end_tick, run.boundaries[t.logical_slot + 1])
        << "slot " << t.logical_slot;
  }
}

TEST_P(UnslottedTest, OutcomesMatchIdealSlottedChannel) {
  const auto& c = GetParam();
  UnslottedConfig config{c.delay, c.transmit, c.gap, 13};
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto pattern = random_write_pattern(12, 40, seed);
    const UnslottedRun run = run_unslotted(12, pattern, config);
    EXPECT_EQ(run.outcomes, run_slotted_reference(pattern)) << "seed " << seed;
  }
}

TEST_P(UnslottedTest, BoundariesAreMonotone) {
  const auto& c = GetParam();
  UnslottedConfig config{c.delay, c.transmit, c.gap, 17};
  const auto pattern = random_write_pattern(8, 30, 9);
  const UnslottedRun run = run_unslotted(8, pattern, config);
  for (std::size_t s = 1; s < run.boundaries.size(); ++s) {
    EXPECT_GT(run.boundaries[s], run.boundaries[s - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Jitter, UnslottedTest,
    ::testing::Values(JitterCase{1, 1, 1}, JitterCase{8, 32, 4},
                      JitterCase{64, 16, 2}, JitterCase{4, 128, 16},
                      JitterCase{100, 1, 50},
                      // Edge cases: perfectly synchronized stations (zero
                      // reaction delay) and the minimal 1-tick idle gap.
                      JitterCase{0, 16, 1}, JitterCase{0, 1, 1}));

TEST(Unslotted, ZeroReactionDelayKeysUpInLockstep) {
  // With zero jitter every active station transmits exactly one tick after
  // the boundary, so busy slots have a fixed, predictable length and the
  // construction still matches the ideal slotted channel.
  UnslottedConfig config{0, 32, 4, 21};
  const std::vector<std::vector<NodeId>> pattern = {
      {0}, {}, {1, 2}, {3}, {0, 1, 2, 3}};
  const UnslottedRun run = run_unslotted(4, pattern, config);
  EXPECT_EQ(run.outcomes, run_slotted_reference(pattern));
  for (const Transmission& t : run.transmissions) {
    EXPECT_EQ(t.start_tick, run.boundaries[t.logical_slot] + 1);
    EXPECT_EQ(t.end_tick, t.start_tick + config.transmit_ticks);
  }
  // Busy slots cost exactly 1 (key-up) + transmit + gap ticks.
  for (std::size_t s = 0; s < pattern.size(); ++s) {
    const std::uint64_t len = run.boundaries[s + 1] - run.boundaries[s];
    if (pattern[s].empty()) {
      EXPECT_EQ(len, config.idle_gap_ticks) << "slot " << s;
    } else {
      EXPECT_EQ(len, 1 + config.transmit_ticks + config.idle_gap_ticks)
          << "slot " << s;
    }
  }
}

TEST(Unslotted, MinimalIdleGapStillSeparatesSlots) {
  // idle_gap_ticks == 1 is the tightest legal end-of-slot detector; slots
  // must stay disjoint and decodable even at maximal jitter.
  UnslottedConfig config{32, 8, 1, 5};
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto pattern = random_write_pattern(10, 50, seed);
    const UnslottedRun run = run_unslotted(10, pattern, config);
    EXPECT_EQ(run.outcomes, run_slotted_reference(pattern)) << seed;
    for (const Transmission& t : run.transmissions) {
      EXPECT_GE(t.start_tick, run.boundaries[t.logical_slot]);
      EXPECT_LE(t.end_tick, run.boundaries[t.logical_slot + 1]);
    }
  }
}

TEST(Unslotted, IdleSlotsCostOnlyTheGap) {
  UnslottedConfig config{8, 32, 4, 1};
  const std::vector<std::vector<NodeId>> pattern(10);  // all slots idle
  const UnslottedRun run = run_unslotted(4, pattern, config);
  for (std::size_t s = 0; s + 1 < run.boundaries.size(); ++s) {
    EXPECT_EQ(run.boundaries[s + 1] - run.boundaries[s], config.idle_gap_ticks);
  }
}

TEST(Unslotted, RejectsBadArguments) {
  UnslottedConfig config;
  EXPECT_THROW(run_unslotted(0, {}, config), std::invalid_argument);
  EXPECT_THROW(run_unslotted(2, {{5}}, config), std::invalid_argument);
  config.idle_gap_ticks = 0;
  EXPECT_THROW(run_unslotted(2, {{1}}, config), std::invalid_argument);
}

}  // namespace
}  // namespace mmn::sim
