// Tests for the deterministic partitioning algorithm (Section 3).
//
// The paper's guarantees, asserted over a topology sweep:
//   * the result is a spanning forest of rooted fragments,
//   * every fragment edge belongs to the unique MST,
//   * after running k phases every fragment has size >= 2^k (Claim 1)
//     and radius <= 2^{k+3} - 1 (Claim 2),
//   * with the default phase count: size >= sqrt(n) and #fragments <= sqrt(n),
//   * runs are deterministic.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/partition_det.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

struct RunResult {
  Forest forest;
  std::vector<NodeId> fragment;
  ForestStats stats;
  Metrics metrics;
};

RunResult run_partition(const Graph& g, int phases = -1,
                        std::uint64_t seed = 7) {
  sim::Engine engine(g, [phases](const sim::LocalView& v) {
    return std::make_unique<PartitionDetProcess>(v,
                                                 PartitionDetConfig{phases});
  }, seed);
  RunResult r;
  r.metrics = engine.run(4'000'000);
  const FragmentAccessor acc = direct_fragment_accessor();
  r.forest = collect_forest(engine, acc);
  r.fragment = collect_fragments(engine, acc);
  r.stats = analyze_forest(g, r.forest, "partition_det");
  return r;
}

void check_fragment_ids(const RunResult& r) {
  for (NodeId v = 0; v < r.forest.parent.size(); ++v) {
    EXPECT_EQ(r.fragment[v], forest_root_of(r.forest, v)) << "node " << v;
  }
}

struct TopoCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph t_path17(std::uint64_t s) { return path(17, s); }
Graph t_ring24(std::uint64_t s) { return ring(24, s); }
Graph t_grid(std::uint64_t s) { return grid(6, 8, s); }
Graph t_tree(std::uint64_t s) { return random_tree(60, s); }
Graph t_sparse(std::uint64_t s) { return random_connected(64, 30, s); }
Graph t_dense(std::uint64_t s) { return random_connected(48, 500, s); }
Graph t_complete(std::uint64_t s) { return complete(20, s); }
Graph t_hyper(std::uint64_t s) { return hypercube(6, s); }
Graph t_ray(std::uint64_t s) { return ray_graph(6, 10, s); }
Graph t_big(std::uint64_t s) { return random_connected(300, 600, s); }

class PartitionDetTest : public ::testing::TestWithParam<TopoCase> {};

TEST_P(PartitionDetTest, ProducesMstSubforestWithPaperBounds) {
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const Graph g = GetParam().make(seed);
    const NodeId n = g.num_nodes();
    const RunResult r = run_partition(g);
    check_fragment_ids(r);

    const MstResult mst = kruskal_mst(g);
    EXPECT_TRUE(forest_within_mst(r.forest, mst)) << "seed " << seed;

    const int L = partition_phases(n);
    const std::uint64_t min_size = std::uint64_t{1} << L;
    EXPECT_GE(r.stats.min_size, min_size) << "Claim 1, seed " << seed;
    EXPECT_GE(min_size * min_size, static_cast<std::uint64_t>(n));
    EXPECT_LE(r.stats.num_trees, n / min_size) << "seed " << seed;
    EXPECT_LE(r.stats.num_trees, isqrt(n)) << "seed " << seed;
    if (L >= 1) {
      EXPECT_LE(r.stats.max_radius, (std::uint32_t{1} << (L + 3)) - 1)
          << "Claim 2, seed " << seed;
    }
  }
}

TEST_P(PartitionDetTest, ClaimsHoldAfterEveryPhasePrefix) {
  const Graph g = GetParam().make(3);
  const NodeId n = g.num_nodes();
  const MstResult mst = kruskal_mst(g);
  for (int k = 0; k <= partition_phases(n); ++k) {
    const RunResult r = run_partition(g, k);
    EXPECT_TRUE(forest_within_mst(r.forest, mst)) << "phases " << k;
    EXPECT_GE(r.stats.min_size, std::uint64_t{1} << k) << "phases " << k;
    if (k >= 1) {
      EXPECT_LE(r.stats.max_radius, (std::uint32_t{1} << (k + 3)) - 1)
          << "phases " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PartitionDetTest,
    ::testing::Values(TopoCase{"path17", t_path17}, TopoCase{"ring24", t_ring24},
                      TopoCase{"grid6x8", t_grid}, TopoCase{"tree60", t_tree},
                      TopoCase{"sparse64", t_sparse},
                      TopoCase{"dense48", t_dense},
                      TopoCase{"complete20", t_complete},
                      TopoCase{"hypercube6", t_hyper}, TopoCase{"ray6x10", t_ray},
                      TopoCase{"big300", t_big}),
    [](const ::testing::TestParamInfo<TopoCase>& param_info) {
      return param_info.param.name;
    });

TEST(PartitionDet, SingleNodeFinishesImmediately) {
  const Graph g(1, {});
  const RunResult r = run_partition(g);
  EXPECT_EQ(r.stats.num_trees, 1u);
  EXPECT_EQ(r.forest.parent[0], 0u);
}

TEST(PartitionDet, TwoNodes) {
  const Graph g = path(2, 1);
  const RunResult r = run_partition(g);
  EXPECT_EQ(r.stats.num_trees, 1u);
  EXPECT_EQ(r.stats.min_size, 2u);
}

TEST(PartitionDet, DeterministicAcrossRuns) {
  const Graph g = random_connected(80, 120, 11);
  const RunResult a = run_partition(g, -1, 5);
  const RunResult b = run_partition(g, -1, 5);
  EXPECT_EQ(a.forest.parent, b.forest.parent);
  EXPECT_EQ(a.forest.parent_edge, b.forest.parent_edge);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.p2p_messages, b.metrics.p2p_messages);
}

TEST(PartitionDet, IndependentOfEngineSeed) {
  // The algorithm is fully deterministic: it never draws randomness, so even
  // *different* engine seeds must produce the identical execution.
  const Graph g = random_connected(80, 120, 11);
  const RunResult a = run_partition(g, -1, 5);
  const RunResult b = run_partition(g, -1, 999);
  EXPECT_EQ(a.forest.parent, b.forest.parent);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.p2p_messages, b.metrics.p2p_messages);
}

TEST(PartitionDet, ZeroPhasesLeavesSingletons) {
  const Graph g = ring(10, 1);
  const RunResult r = run_partition(g, 0);
  EXPECT_EQ(r.stats.num_trees, 10u);
  EXPECT_EQ(r.stats.max_radius, 0u);
}

TEST(PartitionDet, RejectsTooManyPhases) {
  const Graph g = ring(16, 1);
  EXPECT_THROW(
      sim::Engine(g,
                  [](const sim::LocalView& v) {
                    return std::make_unique<PartitionDetProcess>(
                        v, PartitionDetConfig{10});
                  },
                  1),
      std::invalid_argument);
}

TEST(PartitionDet, TimeScalesAsSqrtN) {
  // Loose envelope: rounds <= c * sqrt(n) * log*(n) with a generous c.
  // This catches accidental Theta(n) behavior without pinning constants.
  const Graph g = random_connected(400, 800, 2);
  const RunResult r = run_partition(g);
  const double bound = 600.0 * static_cast<double>(isqrt(400) + 1) *
                       (log_star(400) + 1);
  EXPECT_LE(static_cast<double>(r.metrics.rounds), bound);
}

}  // namespace
}  // namespace mmn
