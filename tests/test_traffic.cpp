// The open-loop traffic subsystem: arrival processes (sim/traffic.hpp),
// the per-class latency histograms, and the end-to-end load runs
// (core/openloop.hpp).  The statistical checks run at fixed seeds, so
// every bound below is deterministic — wide enough to survive a future
// reseed, tight enough to catch a broken generator.
#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/openloop.hpp"
#include "graph/generators.hpp"
#include "scenario/registry.hpp"
#include "sim/scheduler.hpp"
#include "sim/traffic.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

// ---- arrival processes -----------------------------------------------------

TEST(TrafficSource, PoissonMeanMatchesRate) {
  constexpr double kRate = 0.5;
  constexpr std::uint64_t kSlots = 200'000;
  sim::TrafficConfig config;
  config.kind = sim::ArrivalKind::kPoisson;
  config.rate = kRate;
  sim::TrafficSource source(config);
  Rng rng = Rng(12345).fork(7);
  std::uint64_t total = 0;
  for (std::uint64_t s = 0; s < kSlots; ++s) total += source.arrivals(rng);
  const double mean = static_cast<double>(total) / kSlots;
  // Poisson(0.5): sd of the sample mean is sqrt(0.5/200k) ~ 0.0016; a
  // +-0.01 band is ~6 sigma, deterministic at this seed either way.
  EXPECT_NEAR(mean, kRate, 0.01);
}

TEST(TrafficSource, PoissonIsDeterministicPerSeed) {
  sim::TrafficConfig config;
  config.kind = sim::ArrivalKind::kPoisson;
  config.rate = 0.8;
  std::vector<std::uint32_t> a, b;
  for (std::vector<std::uint32_t>* out : {&a, &b}) {
    sim::TrafficSource source(config);
    Rng rng = Rng(99).fork(3);
    for (int s = 0; s < 1000; ++s) out->push_back(source.arrivals(rng));
  }
  EXPECT_EQ(a, b);
}

TEST(TrafficSource, OnOffDutyCycleIsExact) {
  sim::TrafficConfig config;
  config.kind = sim::ArrivalKind::kOnOff;
  config.on_slots = 2;
  config.off_slots = 6;
  config.burst = 3;
  config.phase = 0;
  sim::TrafficSource source(config);
  Rng rng(1);  // never drawn from: on-off is purely periodic
  // Slot-exact pattern: 3 arrivals in each of the first 2 slots of every
  // 8-slot cycle, silence in the remaining 6.
  for (std::uint64_t s = 0; s < 64; ++s) {
    const std::uint32_t expect = (s % 8 < 2) ? 3u : 0u;
    EXPECT_EQ(source.arrivals(rng), expect) << "slot " << s;
  }
}

TEST(TrafficSource, OnOffPhaseShiftsTheCycle) {
  sim::TrafficConfig config;
  config.kind = sim::ArrivalKind::kOnOff;
  config.on_slots = 1;
  config.off_slots = 3;
  config.burst = 2;
  config.phase = 2;  // slot 0 lands two slots into the cycle
  sim::TrafficSource source(config);
  Rng rng(1);
  std::uint64_t total = 0;
  for (std::uint64_t s = 0; s < 16; ++s) {
    const std::uint32_t k = source.arrivals(rng);
    // ON slot is where (phase + s) % 4 == 0, i.e. slots 2, 6, 10, 14.
    EXPECT_EQ(k, ((2 + s) % 4 == 0) ? 2u : 0u) << "slot " << s;
    total += k;
  }
  EXPECT_EQ(total, 8u);  // 4 cycles x burst 2 — the mean rate is exact
}

TEST(TrafficSource, ConstantRateIsACreditStream) {
  sim::TrafficConfig config;
  config.kind = sim::ArrivalKind::kConstant;
  config.rate = 0.25;
  sim::TrafficSource source(config);
  Rng rng(1);
  std::uint64_t total = 0;
  for (std::uint64_t s = 0; s < 1000; ++s) total += source.arrivals(rng);
  EXPECT_EQ(total, 250u);  // exactly rate * slots, no randomness
}

// ---- latency histograms ----------------------------------------------------

/// Scatters a fixed multiset of (class, delay) samples across `shards`
/// recorder blocks round-robin and returns the merged block.
sim::LatencyBlock scatter_and_merge(unsigned shards) {
  sim::LatencyRecorder recorder;
  recorder.reset(shards);
  unsigned next = 0;
  for (std::uint64_t d = 0; d < 300; ++d) {
    const auto cls = static_cast<sim::QosClass>(d % sim::kNumQosClasses);
    recorder.block(next).note_arrivals(cls, 1);
    recorder.block(next).record(cls, d * 7 % 113);
    next = (next + 1) % shards;
  }
  return recorder.merged();
}

TEST(LatencyRecorder, MergeIsShardingIndependent) {
  // The same sample multiset must merge to the identical histogram no
  // matter how the nodes were sharded — 2, 4, and 8 blocks, byte for byte.
  const sim::LatencyBlock two = scatter_and_merge(2);
  const sim::LatencyBlock four = scatter_and_merge(4);
  const sim::LatencyBlock eight = scatter_and_merge(8);
  for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
    EXPECT_EQ(two.hist[c], four.hist[c]);
    EXPECT_EQ(four.hist[c], eight.hist[c]);
    EXPECT_EQ(two.arrivals[c], eight.arrivals[c]);
    EXPECT_EQ(two.delivered[c], eight.delivered[c]);
    EXPECT_EQ(two.delay_sum[c], eight.delay_sum[c]);
  }
}

TEST(LatencyRecorder, QuantilesReadBucketUpperBounds) {
  sim::LatencyRecorder recorder;
  recorder.reset(1);
  // 100 voice samples: 90 at delay 1 (bucket 1, upper bound 1) and 10 at
  // delay 100 (bucket 7, upper bound 127).
  for (int i = 0; i < 90; ++i) recorder.block(0).record(sim::QosClass::kVoice, 1);
  for (int i = 0; i < 10; ++i) {
    recorder.block(0).record(sim::QosClass::kVoice, 100);
  }
  const sim::QosSummary s = recorder.summary(sim::QosClass::kVoice);
  EXPECT_EQ(s.delivered, 100u);
  EXPECT_EQ(s.p50, 1u);
  EXPECT_EQ(s.p90, 1u);    // the 90th sample is still in the delay-1 bucket
  EXPECT_EQ(s.p99, 127u);  // the 99th lands among the delay-100 samples
}

TEST(LatencyRecorder, JitterIsTheDelaySampleStddev) {
  sim::LatencyRecorder recorder;
  recorder.reset(2);
  // Samples {2, 4, 4, 4, 5, 5, 7, 9} scattered over two shards: mean 5,
  // E[d^2] = 232 / 8 = 29, variance 29 - 25 = 4 — stddev exactly 2.
  const std::uint64_t samples[] = {2, 4, 4, 4, 5, 5, 7, 9};
  unsigned i = 0;
  for (const std::uint64_t d : samples) {
    recorder.block(i++ % 2).record(sim::QosClass::kVideo, d);
  }
  const sim::QosSummary s = recorder.summary(sim::QosClass::kVideo);
  EXPECT_EQ(s.delivered, 8u);
  EXPECT_EQ(s.delay_sum, 40u);
  EXPECT_EQ(s.delay_sq_sum, 232u);
  EXPECT_DOUBLE_EQ(s.jitter(), 2.0);
}

TEST(LatencyRecorder, JitterOfConstantDelayIsZero) {
  sim::LatencyRecorder recorder;
  recorder.reset(1);
  for (int i = 0; i < 50; ++i) {
    recorder.block(0).record(sim::QosClass::kVoice, 3);
  }
  const sim::QosSummary s = recorder.summary(sim::QosClass::kVoice);
  EXPECT_DOUBLE_EQ(s.jitter(), 0.0);
  // And with no samples at all the report is 0, not NaN.
  EXPECT_DOUBLE_EQ(recorder.summary(sim::QosClass::kData).jitter(), 0.0);
}

TEST(LatencyRecorder, BacklogIsArrivalsMinusDelivered) {
  sim::LatencyRecorder recorder;
  recorder.reset(2);
  recorder.block(0).note_arrivals(sim::QosClass::kData, 5);
  recorder.block(1).note_arrivals(sim::QosClass::kData, 3);
  recorder.block(1).record(sim::QosClass::kData, 2);
  const sim::QosSummary s = recorder.summary(sim::QosClass::kData);
  EXPECT_EQ(s.arrivals, 8u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.backlog(), 7u);
}

// ---- end-to-end saturation behavior ----------------------------------------

LoadReport sweep_point(sim::DisciplineKind discipline, double offered,
                       std::unique_ptr<sim::Scheduler> scheduler = nullptr) {
  const Graph g = build_topology(TopologySpec{TopoKind::kRing, 64, 7});
  OpenLoopConfig config;
  config.offered = offered;
  config.horizon = 1500;
  return run_open_loop(g, config, discipline, 7, std::move(scheduler));
}

std::uint64_t total_backlog(const LoadReport& r) {
  std::uint64_t b = 0;
  for (const sim::QosSummary& cls : r.classes) b += cls.backlog();
  return b;
}

TEST(OpenLoopSaturation, FreeForAllLivelocksAndBacklogGrowsWithLoad) {
  // Two simultaneously backlogged stations re-collide every slot forever,
  // so free-for-all strands essentially the whole offered volume — and
  // strands more of it at higher load.
  const LoadReport low = sweep_point(sim::DisciplineKind::kFreeForAll, 0.3);
  const LoadReport high = sweep_point(sim::DisciplineKind::kFreeForAll, 0.9);
  EXPECT_GT(total_backlog(low), 64u);
  EXPECT_GT(total_backlog(high), total_backlog(low));
}

TEST(OpenLoopSaturation, ReservationBoundsVoiceDelayPastSaturation) {
  // Offered 1.3 > 1 packet/slot is guaranteed oversaturation, yet the
  // reservation grant ring keeps the voice class's p99 delay tiny while
  // the best-effort data lane absorbs the overload.
  const LoadReport r = sweep_point(sim::DisciplineKind::kReservation, 1.3);
  const auto voice = static_cast<std::size_t>(sim::QosClass::kVoice);
  const auto data = static_cast<std::size_t>(sim::QosClass::kData);
  EXPECT_GT(r.classes[voice].delivered, 100u);
  EXPECT_LE(r.classes[voice].p99, 31u);
  EXPECT_GT(r.classes[data].p99, r.classes[voice].p99);
}

TEST(OpenLoopSaturation, StabilizedAlohaDrainsWhereFreeForAllCannot) {
  const LoadReport ffa = sweep_point(sim::DisciplineKind::kFreeForAll, 0.3);
  const LoadReport pb =
      sweep_point(sim::DisciplineKind::kPseudoBayesian, 0.3);
  EXPECT_LE(total_backlog(pb), 8u);       // boundary artifact at most
  EXPECT_GT(total_backlog(ffa), 100u);    // livelocked
  std::uint64_t pb_delivered = 0;
  for (const sim::QosSummary& cls : pb.classes) pb_delivered += cls.delivered;
  EXPECT_GT(pb_delivered, 300u);
}

TEST(OpenLoopSaturation, CappedRunsReportStatusWithIntactQos) {
  // A run that exhausts its slot budget must never abort: it reports
  // completed == false / kSlotCapReached with the QoS summaries of the
  // capped prefix intact, on both engines, serial and parallel.
  // Pseudo-Bayesian at offered 6.0 generates ~16x the stabilized capacity,
  // so the drain window elapses with the backlog still standing.
  const LoadReport serial =
      sweep_point(sim::DisciplineKind::kPseudoBayesian, 6.0);
  EXPECT_FALSE(serial.quiescent);
  std::uint64_t delivered = 0;
  for (const sim::QosSummary& cls : serial.classes) delivered += cls.delivered;
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(total_backlog(serial), 0u);
  const LoadReport parallel =
      sweep_point(sim::DisciplineKind::kPseudoBayesian, 6.0,
                  sim::make_scheduler(4));
  EXPECT_FALSE(parallel.quiescent);
  EXPECT_EQ(parallel.digest, serial.digest);
  for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
    EXPECT_EQ(parallel.classes[c].delivered, serial.classes[c].delivered);
    EXPECT_EQ(parallel.classes[c].p99, serial.classes[c].p99);
  }
  // The same surface through the registry, both engines: the sync Engine
  // no longer aborts on a capped run — scenario::run relays RunStatus
  // uniformly.
  scenario::register_builtin();
  const scenario::Scenario* pb =
      scenario::Registry::instance().find("load/poisson/pb/ring");
  ASSERT_NE(pb, nullptr);
  const scenario::RunResult sync_run = scenario::run(
      *pb, 64, pb->default_seed, nullptr, scenario::EngineKind::kSync, 6.0);
  EXPECT_FALSE(sync_run.completed);
  EXPECT_EQ(sync_run.status, sim::RunStatus::kSlotCapReached);
  const scenario::Scenario* ffa =
      scenario::Registry::instance().find("load/poisson/ffa/ring");
  ASSERT_NE(ffa, nullptr);
  const scenario::RunResult async_run = scenario::run(
      *ffa, 64, ffa->default_seed, nullptr, scenario::EngineKind::kAsync, 1.5);
  EXPECT_FALSE(async_run.completed);
  EXPECT_EQ(async_run.status, sim::RunStatus::kSlotCapReached);
  const scenario::RunResult async_parallel = scenario::run(
      *ffa, 64, ffa->default_seed, sim::make_scheduler(4),
      scenario::EngineKind::kAsync, 1.5);
  EXPECT_EQ(async_parallel.digest, async_run.digest);
  EXPECT_EQ(async_parallel.status, async_run.status);
}

// ---- scheduler equivalence on the load path --------------------------------

TEST(OpenLoopEquivalence, SerialAndParallelRunsAreBitIdentical) {
  for (const sim::DisciplineKind kind :
       {sim::DisciplineKind::kFreeForAll, sim::DisciplineKind::kPseudoBayesian,
        sim::DisciplineKind::kReservation}) {
    const LoadReport serial = sweep_point(kind, 0.7);
    for (const unsigned threads : {2u, 4u, 8u}) {
      const LoadReport parallel =
          sweep_point(kind, 0.7, sim::make_scheduler(threads));
      EXPECT_EQ(parallel.digest, serial.digest)
          << sim::discipline_name(kind) << " with " << threads << " threads";
      EXPECT_EQ(parallel.slots, serial.slots);
      for (std::size_t c = 0; c < sim::kNumQosClasses; ++c) {
        EXPECT_EQ(parallel.classes[c].delivered, serial.classes[c].delivered);
        EXPECT_EQ(parallel.classes[c].p99, serial.classes[c].p99);
      }
    }
  }
}

TEST(OpenLoopEquivalence, NativeAsyncLoadRunsAreSchedulerInvariant) {
  // The native-async load path bypasses the synchronizer, so the generic
  // async equivalence suite (gated on channel_free) never sees it — pin it
  // here: serial and 4-thread AsyncEngine runs must match bit for bit.
  scenario::register_builtin();
  const scenario::Scenario* s =
      scenario::Registry::instance().find("load/poisson/resv/ring");
  ASSERT_NE(s, nullptr);
  const scenario::RunResult serial = scenario::run(
      *s, 64, s->default_seed, nullptr, scenario::EngineKind::kAsync);
  const scenario::RunResult parallel = scenario::run(
      *s, 64, s->default_seed, sim::make_scheduler(4),
      scenario::EngineKind::kAsync);
  EXPECT_EQ(parallel.digest, serial.digest);
  EXPECT_EQ(parallel.metrics.rounds, serial.metrics.rounds);
  EXPECT_EQ(parallel.completed, serial.completed);
}

}  // namespace
}  // namespace mmn
