// Tests for Section 7.3/7.4: deterministic network-size computation and the
// Greenberg–Ladner randomized estimate.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/size.hpp"
#include "graph/generators.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

std::uint64_t run_deterministic(const Graph& g, Metrics* metrics = nullptr) {
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<DeterministicSizeProcess>(v);
  }, 7);
  const Metrics m = engine.run(8'000'000);
  if (metrics != nullptr) *metrics = m;
  const auto size =
      static_cast<const DeterministicSizeProcess&>(engine.process(0))
          .network_size();
  // Every node computes the identical value.
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_EQ(static_cast<const DeterministicSizeProcess&>(engine.process(v))
                  .network_size(),
              size);
  }
  return size;
}

TEST(DeterministicSize, ExactOnVariousTopologies) {
  EXPECT_EQ(run_deterministic(Graph(1, {})), 1u);
  EXPECT_EQ(run_deterministic(path(2, 1)), 2u);
  EXPECT_EQ(run_deterministic(path(23, 1)), 23u);
  EXPECT_EQ(run_deterministic(ring(64, 2)), 64u);
  EXPECT_EQ(run_deterministic(grid(9, 7, 3)), 63u);
  EXPECT_EQ(run_deterministic(random_tree(77, 4)), 77u);
  EXPECT_EQ(run_deterministic(complete(17, 5)), 17u);
  EXPECT_EQ(run_deterministic(ray_graph(6, 9, 6)), 55u);
}

TEST(DeterministicSize, ExactOnRandomGraphSweep) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const NodeId n = 30 + static_cast<NodeId>(seed) * 37;
    const Graph g = random_connected(n, n, seed);
    EXPECT_EQ(run_deterministic(g), n) << "seed " << seed;
  }
}

TEST(DeterministicSize, StopsEarlyOnceCoresSchedule) {
  // The check ends the run as soon as the core count fits the slot budget,
  // typically before the partition would naturally end.
  Metrics with_check;
  run_deterministic(random_connected(300, 400, 1), &with_check);
  EXPECT_GT(with_check.slots_success, 0u);
}

TEST(SizeEstimate, AllNodesAgreeAndMedianIsReasonable) {
  for (NodeId n : {32u, 128u, 512u}) {
    const Graph g = ring(n, 1);
    std::vector<std::uint64_t> estimates;
    for (std::uint64_t seed = 0; seed < 21; ++seed) {
      sim::Engine engine(g, [](const sim::LocalView& v) {
        return std::make_unique<SizeEstimateProcess>(v);
      }, seed);
      engine.run(10'000);
      const auto est =
          static_cast<const SizeEstimateProcess&>(engine.process(0)).estimate();
      for (NodeId v = 1; v < n; ++v) {
        ASSERT_EQ(static_cast<const SizeEstimateProcess&>(engine.process(v))
                      .estimate(),
                  est);
      }
      estimates.push_back(est);
    }
    std::sort(estimates.begin(), estimates.end());
    const std::uint64_t median = estimates[estimates.size() / 2];
    EXPECT_GE(median, n / 16) << "n=" << n;
    EXPECT_LE(median, n * 16) << "n=" << n;
  }
}

TEST(SizeEstimate, UsesLogarithmicallyManySlots) {
  const Graph g = ring(1024, 1);
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<SizeEstimateProcess>(v);
  }, 3);
  const Metrics m = engine.run(10'000);
  EXPECT_LE(m.rounds, 40u);  // ~log2(1024) + constant
  EXPECT_EQ(m.p2p_messages, 0u);
}

}  // namespace
}  // namespace mmn
