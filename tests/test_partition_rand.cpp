// Tests for the randomized partitioning algorithm (Section 4) and its Las
// Vegas wrapper.
//
// Asserted guarantees: spanning rooted forest, radius <= 4*sqrt(n) (always,
// not just in expectation), O(sqrt(n)) trees on average (Theorem 1, checked
// statistically over seeds), and the Las Vegas certificate of at most
// 2*sqrt(n) trees.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/partition_rand.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

struct RunResult {
  Forest forest;
  std::vector<NodeId> fragment;
  ForestStats stats;
  Metrics metrics;
  int attempts = 1;
};

RunResult run_rand(const Graph& g, std::uint64_t seed, bool las_vegas = false) {
  const PartitionRandConfig config;
  sim::Engine engine(g, [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    if (las_vegas) {
      return std::make_unique<LasVegasPartitionProcess>(v, config);
    }
    return std::make_unique<PartitionRandProcess>(v, config);
  }, seed);
  RunResult r;
  r.metrics = engine.run(4'000'000);
  const FragmentAccessor acc = direct_fragment_accessor();
  r.forest = collect_forest(engine, acc);
  r.fragment = collect_fragments(engine, acc);
  r.stats = analyze_forest(g, r.forest, "partition_rand");
  if (las_vegas) {
    r.attempts =
        static_cast<const LasVegasPartitionProcess&>(engine.process(0))
            .attempts();
  }
  return r;
}

struct TopoCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph t_path(std::uint64_t s) { return path(40, s); }
Graph t_ring(std::uint64_t s) { return ring(50, s); }
Graph t_grid(std::uint64_t s) { return grid(8, 8, s); }
Graph t_sparse(std::uint64_t s) { return random_connected(100, 80, s); }
Graph t_dense(std::uint64_t s) { return random_connected(60, 600, s); }
Graph t_tree(std::uint64_t s) { return random_tree(90, s); }
Graph t_ray(std::uint64_t s) { return ray_graph(5, 12, s); }
Graph t_big(std::uint64_t s) { return random_connected(400, 800, s); }

class PartitionRandTest : public ::testing::TestWithParam<TopoCase> {};

TEST_P(PartitionRandTest, SpanningForestWithRadiusBound) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = GetParam().make(seed);
    const NodeId n = g.num_nodes();
    const RunResult r = run_rand(g, seed * 31 + 1);
    // Spanning and rooted is checked inside analyze_forest; radius is the
    // algorithm's hard guarantee.
    EXPECT_LE(r.stats.max_radius, 4 * isqrt_ceil(n)) << "seed " << seed;
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(r.fragment[v], forest_root_of(r.forest, v));
    }
  }
}

TEST_P(PartitionRandTest, TreeEdgesAreGraphEdges) {
  const Graph g = GetParam().make(5);
  const RunResult r = run_rand(g, 17);
  // analyze_forest verifies structure; additionally every non-root node has
  // a parent edge toward a strictly closer-to-root node (BFS layering).
  EXPECT_GE(r.stats.num_trees, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PartitionRandTest,
    ::testing::Values(TopoCase{"path40", t_path}, TopoCase{"ring50", t_ring},
                      TopoCase{"grid8x8", t_grid},
                      TopoCase{"sparse100", t_sparse},
                      TopoCase{"dense60", t_dense}, TopoCase{"tree90", t_tree},
                      TopoCase{"ray5x12", t_ray}, TopoCase{"big400", t_big}),
    [](const ::testing::TestParamInfo<TopoCase>& param_info) {
      return param_info.param.name;
    });

TEST(PartitionRand, ExpectedTreesIsOrderSqrtN) {
  // Theorem 1: E[#trees] = O(sqrt(n)).  Average over seeds and check a
  // generous constant.
  for (NodeId n : {64u, 256u, 1024u}) {
    const Graph g = random_connected(n, 2 * n, 99);
    double total = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      total += static_cast<double>(run_rand(g, 1000 + t).stats.num_trees);
    }
    const double avg = total / trials;
    EXPECT_LE(avg, 6.0 * std::sqrt(static_cast<double>(n))) << "n=" << n;
  }
}

TEST(PartitionRand, SingleNode) {
  const Graph g(1, {});
  const RunResult r = run_rand(g, 3);
  EXPECT_EQ(r.stats.num_trees, 1u);
}

TEST(PartitionRand, DeterministicPerSeed) {
  const Graph g = random_connected(120, 150, 8);
  const RunResult a = run_rand(g, 42);
  const RunResult b = run_rand(g, 42);
  EXPECT_EQ(a.forest.parent, b.forest.parent);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  const RunResult c = run_rand(g, 43);
  // A different seed almost surely yields a different center set.
  EXPECT_NE(a.forest.parent, c.forest.parent);
}

TEST(PartitionRand, LasVegasCertifiesTreeCount) {
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    const Graph g = random_connected(200, 300, seed);
    const RunResult r = run_rand(g, seed, /*las_vegas=*/true);
    EXPECT_LE(r.stats.num_trees, 2 * isqrt_ceil(200)) << "seed " << seed;
    EXPECT_LE(r.stats.max_radius, 4 * isqrt_ceil(200));
    EXPECT_GE(r.attempts, 1);
    EXPECT_LE(r.attempts, 4) << "restart probability should be small";
  }
}

TEST(PartitionRand, RejectsBadConfig) {
  const Graph g = ring(8, 1);
  PartitionRandConfig bad;
  bad.radius_factor = 1;
  bad.freeze_factor = 2;
  EXPECT_THROW(sim::Engine(g,
                           [&](const sim::LocalView& v) {
                             return std::make_unique<PartitionRandProcess>(v,
                                                                           bad);
                           },
                           1),
               std::invalid_argument);
}

TEST(PartitionRand, TimeScalesAsSqrtN) {
  const Graph g = random_connected(400, 800, 2);
  const RunResult r = run_rand(g, 7);
  // O(sqrt(n) log* n) with the barrier constant; generous envelope.
  const double bound =
      400.0 * static_cast<double>(isqrt(400) + 1) * (log_star(400) + 1);
  EXPECT_LE(static_cast<double>(r.metrics.rounds), bound);
}

}  // namespace
}  // namespace mmn
