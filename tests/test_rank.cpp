// Sharded execution (sim/rank.hpp, scenario/rank_run.hpp): windowed graph
// builds must reproduce the full build's owned rows bit for bit, the
// socketpair transport must swap arbitrary blobs, and a sharded scenario
// run must produce the serial run's digest, metrics, and fault stats
// exactly — including under fault churn — across 1, 2, and 4 ranks.
//
// Child ranks run in forked processes, so in-child checks use MMN_REQUIRE
// (an aborting child fails the parent's waitpid requirement); gtest
// EXPECTs live only in rank 0 / parent code.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "scenario/rank_run.hpp"
#include "scenario/registry.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard_comm.hpp"
#include "support/check.hpp"

namespace mmn {
namespace {

using scenario::Registry;
using scenario::RunResult;
using scenario::ShardStats;

void expect_windows_match_full(const TopologySpec& spec, unsigned ranks) {
  const Graph full = build_topology(spec);
  const NodeId n = full.num_nodes();
  for (unsigned r = 0; r < ranks; ++r) {
    const auto [lo, hi] = sim::Scheduler::shard_range(n, r, ranks);
    const Graph win = build_topology_window(spec, GraphWindow{lo, hi});
    ASSERT_EQ(win.num_nodes(), n);
    ASSERT_EQ(win.num_edges(), full.num_edges());
    for (NodeId v = lo; v < hi; ++v) {
      ASSERT_EQ(win.degree(v), full.degree(v)) << "node " << v;
      const auto win_range = win.neighbors(v);
      auto wi = win_range.begin();
      for (const Neighbor& nb : full.neighbors(v)) {
        const Neighbor& wn = *wi;
        EXPECT_EQ(wn.to, nb.to);
        EXPECT_EQ(wn.weight, nb.weight);
        EXPECT_EQ(wn.edge, nb.edge);
        EXPECT_EQ(win.link_slot(v, nb.edge), full.link_slot(v, nb.edge));
        ++wi;
      }
    }
  }
}

TEST(RankWindow, WindowedBuildMatchesFullOwnedRows) {
  for (unsigned ranks : {2u, 3u, 4u}) {
    expect_windows_match_full(TopologySpec{TopoKind::kRing, 64, 7}, ranks);
    expect_windows_match_full(TopologySpec{TopoKind::kRandom, 96, 11}, ranks);
    expect_windows_match_full(TopologySpec{TopoKind::kTree, 80, 3}, ranks);
  }
}

TEST(RankWindow, UnretainedEdgeIsInvisibleNotFatal) {
  const TopologySpec spec{TopoKind::kRing, 16, 7};
  const Graph full = build_topology(spec);
  const Graph win = build_topology_window(spec, GraphWindow{0, 8});
  // An edge with both endpoints outside the window is not retained: its
  // link_slot resolves to "not incident" from any owned node.
  for (NodeId v = 0; v < 8; ++v) {
    for (EdgeId e = 0; e < full.num_edges(); ++e) {
      const int slot = full.link_slot(v, e);
      EXPECT_EQ(win.link_slot(v, e), slot);
    }
  }
}

TEST(RankTransport, PairwiseSwapCarriesLopsidedBlobs) {
  // Each rank swaps a rank-stamped blob with every peer; sizes differ per
  // direction (rank r sends (r + 1) * 1000 + peer bytes) so the duplex
  // drain path is exercised in both roles.
  sim::shard_comm::run_ranks(4, [](sim::shard_comm::Transport& t) {
    const unsigned me = t.rank();
    std::vector<std::uint8_t> in;
    for (unsigned peer = 0; peer < t.ranks(); ++peer) {
      if (peer == me) continue;
      std::vector<std::uint8_t> out((me + 1) * 1000 + peer,
                                    static_cast<std::uint8_t>(me * 16 + peer));
      t.exchange(peer, out.data(), out.size(), in);
      MMN_REQUIRE(in.size() == (peer + 1) * 1000 + me,
                  "swap returned the wrong frame size");
      for (const std::uint8_t b : in) {
        MMN_REQUIRE(b == static_cast<std::uint8_t>(peer * 16 + me),
                    "swap returned corrupted bytes");
      }
    }
    MMN_REQUIRE(t.bytes_out() > 0 && t.bytes_in() > 0,
                "transport byte counters did not advance");
  });
}

void expect_sharded_matches_serial(const char* name, NodeId n,
                                   std::uint64_t seed, std::uint32_t faults) {
  scenario::register_builtin();
  const scenario::Scenario* s = Registry::instance().find(name);
  ASSERT_NE(s, nullptr) << name;
  const RunResult serial =
      run(*s, n, seed, nullptr, scenario::EngineKind::kSync, 0.0, faults);
  for (unsigned ranks : {1u, 2u, 4u}) {
    ShardStats stats;
    const RunResult sharded =
        run_sharded(*s, n, seed, ranks, 0.0, faults, &stats);
    EXPECT_EQ(sharded.digest, serial.digest)
        << name << " n=" << n << " ranks=" << ranks;
    EXPECT_TRUE(sharded.metrics == serial.metrics)
        << name << " n=" << n << " ranks=" << ranks;
    EXPECT_TRUE(sharded.faults == serial.faults)
        << name << " n=" << n << " ranks=" << ranks;
    EXPECT_EQ(sharded.completed, serial.completed);
    EXPECT_EQ(sharded.realized_n, serial.realized_n);
    EXPECT_EQ(stats.rounds, serial.metrics.rounds);
    if (ranks > 1) {
      // A ring window [lo, hi) has exactly two boundary edges; K windows
      // cut the cycle K times.
      if (s->topology == TopoKind::kRing) {
        EXPECT_EQ(stats.boundary_edges, ranks);
      }
      EXPECT_GT(stats.wire_bytes, 0u);
    }
  }
}

TEST(RankRun, GlobalMinRandRingMatchesSerial) {
  expect_sharded_matches_serial("global/min/rand/ring", 64, 7, 0);
  expect_sharded_matches_serial("global/min/rand/ring", 256, 11, 0);
}

TEST(RankRun, DetRandomTopologyMatchesSerial) {
  expect_sharded_matches_serial("global/min/det/random", 96, 7, 0);
}

TEST(RankRun, FaultChurnMatchesSerial) {
  // Reservation MAC under link and station churn: covers cross-rank fault
  // replication (replicated overlay + stifles) and the drops reduction.
  expect_sharded_matches_serial("fault/load/churn/ring", 64, 7, 1);
  expect_sharded_matches_serial("fault/load/churn/ring", 64, 7, 3);
}

TEST(RankRun, CrossShardTrafficIsCounted) {
  scenario::register_builtin();
  const scenario::Scenario* s = Registry::instance().find("global/min/rand/ring");
  ASSERT_NE(s, nullptr);
  ShardStats stats;
  const RunResult r = run_sharded(*s, 64, 7, 2, 0.0, 0, &stats);
  EXPECT_NE(r.digest, 0u);
  // A ring split in two windows routes every wrap-around hop cross-shard.
  EXPECT_GT(stats.xshard_msgs, 0u);
  EXPECT_EQ(stats.boundary_edges, 2u);
}

}  // namespace
}  // namespace mmn
