// Integration tests: whole-pipeline runs combining several algorithms, a
// randomized stress sweep over topology space, and protocol composition.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/broadcast_global.hpp"
#include "baselines/p2p_global.hpp"
#include "core/global_function.hpp"
#include "core/mst.hpp"
#include "core/partition_det.hpp"
#include "core/size.hpp"
#include "core/stepped.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

using sim::Word;

TEST(Integration, FullPipelineOnOneNetwork) {
  // One 600-node network; run census, global sum, and MST and cross-check.
  const NodeId n = 600;
  const Graph g = random_connected(n, 900, 77);

  // Census finds the exact size.
  sim::Engine census(g, [](const sim::LocalView& v) {
    return std::make_unique<DeterministicSizeProcess>(v);
  }, 1);
  census.run(8'000'000);
  EXPECT_EQ(static_cast<const DeterministicSizeProcess&>(census.process(0))
                .network_size(),
            n);

  // Global sum of ids+1 equals n(n+1)/2 via both variants.
  const Word expected_sum = static_cast<Word>(n) * (n + 1) / 2;
  for (auto variant : {GlobalFunctionConfig::Variant::kDeterministic,
                       GlobalFunctionConfig::Variant::kRandomized}) {
    GlobalFunctionConfig config;
    config.op = SemigroupOp::kSum;
    config.variant = variant;
    sim::Engine sum(g, [&](const sim::LocalView& v) {
      return std::make_unique<GlobalFunctionProcess>(
          v, config, static_cast<Word>(v.self) + 1);
    }, 2);
    sum.run(8'000'000);
    EXPECT_EQ(
        static_cast<const GlobalFunctionProcess&>(sum.process(0)).result(),
        expected_sum);
  }

  // MST equals Kruskal.
  sim::Engine mst(g, [](const sim::LocalView& v) {
    return std::make_unique<MstProcess>(v);
  }, 3);
  mst.run(8'000'000);
  std::set<EdgeId> edges;
  for (NodeId v = 0; v < n; ++v) {
    for (EdgeId e : static_cast<const MstProcess&>(mst.process(v)).mst_edges()) {
      edges.insert(e);
    }
  }
  EXPECT_EQ(std::vector<EdgeId>(edges.begin(), edges.end()),
            kruskal_mst(g).edges);
}

TEST(Integration, RandomTopologyStressSweep) {
  // Randomized fuzz over topology space: sizes 2..~120, random densities.
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId n = 2 + static_cast<NodeId>(rng.next_below(119));
    const std::uint64_t max_extra =
        static_cast<std::uint64_t>(n) * (n - 1) / 2 - (n - 1);
    const auto extra =
        static_cast<std::uint32_t>(rng.next_below(std::min<std::uint64_t>(
            max_extra + 1, 3 * static_cast<std::uint64_t>(n))));
    const Graph g = random_connected(n, extra, rng.next_u64());
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " n=" << n << " extra=" << extra);

    // Global min must equal the sequential fold.
    std::vector<Word> inputs(n);
    for (auto& x : inputs) x = static_cast<Word>(rng.next_below(1 << 20));
    Word expected = inputs[0];
    for (Word x : inputs) expected = std::min(expected, x);

    GlobalFunctionConfig config;
    config.op = SemigroupOp::kMin;
    config.variant = trial % 2 == 0
                         ? GlobalFunctionConfig::Variant::kDeterministic
                         : GlobalFunctionConfig::Variant::kRandomized;
    sim::Engine engine(g, [&](const sim::LocalView& v) {
      return std::make_unique<GlobalFunctionProcess>(v, config,
                                                     inputs[v.self]);
    }, rng.next_u64());
    engine.run(8'000'000);
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(static_cast<const GlobalFunctionProcess&>(engine.process(v))
                    .result(),
                expected);
    }
  }
}

TEST(Integration, SequentialCompositionOfTwoProtocols) {
  // Two full global-function runs back to back in one SequenceProcess: the
  // barrier discipline must leave the network clean enough for an immediate
  // second protocol.
  const Graph g = random_connected(80, 120, 5);
  struct Results {
    const GlobalFunctionProcess* first = nullptr;
    const GlobalFunctionProcess* second = nullptr;
  };
  std::vector<Results> results(g.num_nodes());

  sim::Engine engine(g, [&](const sim::LocalView& v) {
    GlobalFunctionConfig min_config;
    min_config.op = SemigroupOp::kMin;
    min_config.variant = GlobalFunctionConfig::Variant::kRandomized;
    GlobalFunctionConfig sum_config;
    sum_config.op = SemigroupOp::kSum;
    sum_config.variant = GlobalFunctionConfig::Variant::kDeterministic;
    std::vector<std::unique_ptr<sim::Process>> stages;
    auto first = std::make_unique<GlobalFunctionProcess>(
        v, min_config, static_cast<Word>(v.self) + 10);
    auto second = std::make_unique<GlobalFunctionProcess>(
        v, sum_config, static_cast<Word>(1));
    results[v.self].first = first.get();
    results[v.self].second = second.get();
    stages.push_back(std::move(first));
    stages.push_back(std::move(second));
    return std::make_unique<SequenceProcess>(std::move(stages));
  }, 11);
  engine.run(8'000'000);

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(results[v].first->result(), 10);  // min of self+10
    EXPECT_EQ(results[v].second->result(), 80);  // count of nodes
  }
}

TEST(Integration, AllSemigroupOpsAgreeAcrossAllAlgorithms) {
  const Graph g = grid(9, 9, 13);
  const NodeId n = g.num_nodes();
  Rng rng(99);
  std::vector<Word> inputs(n);
  for (auto& x : inputs) x = static_cast<Word>(rng.next_below(100'000)) + 1;

  for (SemigroupOp op : {SemigroupOp::kSum, SemigroupOp::kMin,
                         SemigroupOp::kMax, SemigroupOp::kXor,
                         SemigroupOp::kGcd}) {
    Word expected = inputs[0];
    for (std::size_t i = 1; i < inputs.size(); ++i) {
      expected = semigroup_apply(op, expected, inputs[i]);
    }
    // Multimedia randomized.
    GlobalFunctionConfig config;
    config.op = op;
    config.variant = GlobalFunctionConfig::Variant::kRandomized;
    sim::Engine mm(g, [&](const sim::LocalView& v) {
      return std::make_unique<GlobalFunctionProcess>(v, config,
                                                     inputs[v.self]);
    }, 21);
    mm.run(8'000'000);
    // Broadcast baseline.
    sim::Engine bc(g, [&](const sim::LocalView& v) {
      return std::make_unique<BroadcastGlobalProcess>(v, op, inputs[v.self]);
    }, 21);
    bc.run(8'000'000);
    // P2P baseline.
    P2pGlobalConfig pconfig;
    pconfig.op = op;
    sim::Engine pp(g, [&](const sim::LocalView& v) {
      return std::make_unique<P2pGlobalProcess>(v, pconfig, inputs[v.self]);
    }, 21);
    pp.run(8'000'000);

    EXPECT_EQ(
        static_cast<const GlobalFunctionProcess&>(mm.process(0)).result(),
        expected);
    EXPECT_EQ(
        static_cast<const BroadcastGlobalProcess&>(bc.process(0)).result(),
        expected);
    EXPECT_EQ(static_cast<const P2pGlobalProcess&>(pp.process(0)).result(),
              expected);
  }
}

TEST(Integration, BalancedPartitionPhasesStillYieldValidMst) {
  // The partition with extra phases (Section 5.1 depth) must still feed a
  // correct pipeline end to end — here via a deeper partition run directly.
  const Graph g = random_connected(200, 320, 31);
  PartitionDetConfig config;
  config.phases = balanced_phase_count(200);
  sim::Engine engine(g, [&](const sim::LocalView& v) {
    return std::make_unique<PartitionDetProcess>(v, config);
  }, 3);
  engine.run(8'000'000);
  // Deeper partitions still produce MST subtrees.
  const auto acc = direct_fragment_accessor();
  EXPECT_TRUE(forest_within_mst(collect_forest(engine, acc), kruskal_mst(g)));
}

}  // namespace
}  // namespace mmn
