// Tests for MST construction (Section 6): the multimedia three-stage
// algorithm and the pure point-to-point Boruvka baseline must both produce
// exactly the unique MST (== Kruskal's edge set), and the multimedia version
// must be asymptotically faster.
#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/p2p_mst.hpp"
#include "core/mst.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "support/math.hpp"

namespace mmn {
namespace {

template <typename Process>
std::vector<EdgeId> collect_mst(const sim::Engine& engine) {
  std::set<EdgeId> edges;
  for (NodeId v = 0; v < engine.num_nodes(); ++v) {
    for (EdgeId e :
         static_cast<const Process&>(engine.process(v)).mst_edges()) {
      edges.insert(e);
    }
  }
  return {edges.begin(), edges.end()};
}

struct MstRun {
  std::vector<EdgeId> edges;
  Metrics metrics;
  int phases = 0;
};

MstRun run_multimedia(const Graph& g, std::uint64_t seed = 7) {
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<MstProcess>(v);
  }, seed);
  MstRun r;
  r.metrics = engine.run(8'000'000);
  r.edges = collect_mst<MstProcess>(engine);
  r.phases = static_cast<const MstProcess&>(engine.process(0)).phases_used();
  return r;
}

MstRun run_baseline(const Graph& g, std::uint64_t seed = 7) {
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<P2pMstProcess>(v);
  }, seed);
  MstRun r;
  r.metrics = engine.run(64'000'000);
  r.edges = collect_mst<P2pMstProcess>(engine);
  return r;
}

struct TopoCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph m_path(std::uint64_t s) { return path(19, s); }
Graph m_ring(std::uint64_t s) { return ring(32, s); }
Graph m_grid(std::uint64_t s) { return grid(7, 6, s); }
Graph m_tree(std::uint64_t s) { return random_tree(50, s); }
Graph m_sparse(std::uint64_t s) { return random_connected(80, 70, s); }
Graph m_dense(std::uint64_t s) { return random_connected(40, 350, s); }
Graph m_complete(std::uint64_t s) { return complete(16, s); }
Graph m_ray(std::uint64_t s) { return ray_graph(5, 8, s); }
Graph m_big(std::uint64_t s) { return random_connected(250, 500, s); }

class MstTest : public ::testing::TestWithParam<TopoCase> {};

TEST_P(MstTest, MultimediaMatchesKruskalExactly) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = GetParam().make(seed);
    const MstRun run = run_multimedia(g);
    EXPECT_EQ(run.edges, kruskal_mst(g).edges) << "seed " << seed;
  }
}

TEST_P(MstTest, BaselineMatchesKruskalExactly) {
  const Graph g = GetParam().make(4);
  const MstRun run = run_baseline(g);
  EXPECT_EQ(run.edges, kruskal_mst(g).edges);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MstTest,
    ::testing::Values(TopoCase{"path19", m_path}, TopoCase{"ring32", m_ring},
                      TopoCase{"grid7x6", m_grid}, TopoCase{"tree50", m_tree},
                      TopoCase{"sparse80", m_sparse},
                      TopoCase{"dense40", m_dense},
                      TopoCase{"complete16", m_complete},
                      TopoCase{"ray5x8", m_ray}, TopoCase{"big250", m_big}),
    [](const ::testing::TestParamInfo<TopoCase>& param_info) {
      return param_info.param.name;
    });

TEST(Mst, SingleNode) {
  const Graph g(1, {});
  const MstRun run = run_multimedia(g);
  EXPECT_TRUE(run.edges.empty());
}

TEST(Mst, TwoNodes) {
  const Graph g = path(2, 1);
  const MstRun run = run_multimedia(g);
  EXPECT_EQ(run.edges, std::vector<EdgeId>{0});
}

TEST(Mst, TreeInputNeedsNoBoruvkaPhase) {
  // On a tree the partition itself can already span everything; phases_used
  // reports how many TDMA cycles ran.
  const Graph g = random_tree(64, 2);
  const MstRun run = run_multimedia(g);
  EXPECT_EQ(run.edges, kruskal_mst(g).edges);
  EXPECT_LE(run.phases, ilog2_ceil(64));
}

TEST(Mst, PhaseCountIsLogarithmic) {
  const Graph g = random_connected(300, 900, 5);
  const MstRun run = run_multimedia(g);
  // At most log2 of the initial fragment count (<= sqrt(n)) phases.
  EXPECT_LE(run.phases, ilog2_ceil(isqrt(300)) + 1);
}

TEST(Mst, DeterministicAcrossRuns) {
  const Graph g = random_connected(100, 200, 9);
  const MstRun a = run_multimedia(g, 3);
  const MstRun b = run_multimedia(g, 3);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

TEST(Mst, IndependentOfEngineSeed) {
  // Partition, Capetanakis and the TDMA phases are all deterministic, so the
  // engine seed must not influence the execution at all.
  const Graph g = random_connected(100, 200, 9);
  const MstRun a = run_multimedia(g, 3);
  const MstRun b = run_multimedia(g, 4242);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.p2p_messages, b.metrics.p2p_messages);
}

TEST(Mst, MultimediaBeatsP2pBaseline) {
  // Theta(sqrt(n) log n) vs Theta(n log n).
  const Graph g = random_connected(256, 512, 6);
  const MstRun mm = run_multimedia(g);
  const MstRun p2p = run_baseline(g);
  EXPECT_EQ(mm.edges, p2p.edges);
  EXPECT_LT(mm.metrics.rounds, p2p.metrics.rounds / 2);
}

}  // namespace
}  // namespace mmn
