// Property tests: the paper's invariants over adversarial topologies and a
// randomized configuration sweep, plus complexity-envelope checks that catch
// accidental asymptotic regressions.
#include <memory>

#include <gtest/gtest.h>

#include "core/global_function.hpp"
#include "core/partition.hpp"
#include "core/partition_det.hpp"
#include "core/partition_rand.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

// --- adversarial topologies ---------------------------------------------------

/// Star: one hub, n-1 spokes (max degree, diameter 2).
Graph star(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) {
    edges.push_back({0, v, 0});
  }
  std::vector<Weight> w(edges.size());
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = i + 1;
  for (std::size_t i = w.size(); i > 1; --i) std::swap(w[i - 1], w[rng.next_below(i)]);
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i].weight = w[i];
  return Graph(n, std::move(edges));
}

/// Barbell: two cliques of k nodes joined by a single bridge edge.
Graph barbell(NodeId k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  auto add_clique = [&](NodeId base) {
    for (NodeId u = 0; u < k; ++u) {
      for (NodeId v = u + 1; v < k; ++v) {
        edges.push_back({base + u, base + v, 0});
      }
    }
  };
  add_clique(0);
  add_clique(k);
  edges.push_back({static_cast<NodeId>(k - 1), k, 0});
  std::vector<Weight> w(edges.size());
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = i + 1;
  for (std::size_t i = w.size(); i > 1; --i) std::swap(w[i - 1], w[rng.next_below(i)]);
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i].weight = w[i];
  return Graph(2 * k, std::move(edges));
}

/// Caterpillar: a spine path with one leaf hanging off every spine node.
Graph caterpillar(NodeId spine, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < spine; ++v) {
    edges.push_back({v, static_cast<NodeId>(v + 1), 0});
  }
  for (NodeId v = 0; v < spine; ++v) {
    edges.push_back({v, static_cast<NodeId>(spine + v), 0});
  }
  std::vector<Weight> w(edges.size());
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = i + 1;
  for (std::size_t i = w.size(); i > 1; --i) std::swap(w[i - 1], w[rng.next_below(i)]);
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i].weight = w[i];
  return Graph(2 * spine, std::move(edges));
}

struct AdversarialCase {
  const char* name;
  Graph (*make)(std::uint64_t);
};

Graph a_star(std::uint64_t s) { return star(120, s); }
Graph a_barbell(std::uint64_t s) { return barbell(24, s); }
Graph a_caterpillar(std::uint64_t s) { return caterpillar(40, s); }
Graph a_binary_tree(std::uint64_t s) {
  // Complete binary tree via parent links v -> (v-1)/2.
  Rng rng(s);
  const NodeId n = 127;
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({(v - 1) / 2, v, 0});
  std::vector<Weight> w(edges.size());
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = i + 1;
  for (std::size_t i = w.size(); i > 1; --i) std::swap(w[i - 1], w[rng.next_below(i)]);
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i].weight = w[i];
  return Graph(n, std::move(edges));
}

class AdversarialTopologyTest
    : public ::testing::TestWithParam<AdversarialCase> {};

TEST_P(AdversarialTopologyTest, DeterministicPartitionInvariants) {
  const Graph g = GetParam().make(5);
  const NodeId n = g.num_nodes();
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<PartitionDetProcess>(v, PartitionDetConfig{});
  }, 3);
  engine.run(8'000'000);
  const auto acc = direct_fragment_accessor();
  const Forest forest = collect_forest(engine, acc);
  const ForestStats stats = analyze_forest(g, forest, "adversarial det");
  EXPECT_TRUE(forest_within_mst(forest, kruskal_mst(g)));
  const int L = partition_phases(n);
  EXPECT_GE(stats.min_size, std::uint64_t{1} << L);
  EXPECT_LE(stats.max_radius, (std::uint32_t{1} << (L + 3)) - 1);
}

TEST_P(AdversarialTopologyTest, RandomizedPartitionInvariants) {
  const Graph g = GetParam().make(7);
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<PartitionRandProcess>(v, PartitionRandConfig{});
  }, 9);
  engine.run(8'000'000);
  const auto acc = direct_fragment_accessor();
  const ForestStats stats =
      analyze_forest(g, collect_forest(engine, acc), "adversarial rand");
  EXPECT_LE(stats.max_radius, 4 * isqrt_ceil(g.num_nodes()));
}

TEST_P(AdversarialTopologyTest, GlobalXorCorrect) {
  const Graph g = GetParam().make(11);
  const NodeId n = g.num_nodes();
  Rng rng(13);
  std::vector<sim::Word> inputs(n);
  sim::Word expected = 0;
  for (auto& x : inputs) {
    x = static_cast<sim::Word>(rng.next_below(1 << 30));
    expected ^= x;
  }
  GlobalFunctionConfig config;
  config.op = SemigroupOp::kXor;
  config.variant = GlobalFunctionConfig::Variant::kDeterministic;
  sim::Engine engine(g, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(v, config, inputs[v.self]);
  }, 15);
  engine.run(8'000'000);
  EXPECT_EQ(
      static_cast<const GlobalFunctionProcess&>(engine.process(0)).result(),
      expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdversarialTopologyTest,
    ::testing::Values(AdversarialCase{"star120", a_star},
                      AdversarialCase{"barbell48", a_barbell},
                      AdversarialCase{"caterpillar80", a_caterpillar},
                      AdversarialCase{"binarytree127", a_binary_tree}),
    [](const ::testing::TestParamInfo<AdversarialCase>& param_info) {
      return param_info.param.name;
    });

// --- randomized configuration sweep -------------------------------------------

TEST(PropertySweep, DetPartitionInvariantsOverRandomConfigs) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 4 + static_cast<NodeId>(rng.next_below(252));
    const std::uint64_t max_extra =
        static_cast<std::uint64_t>(n) * (n - 1) / 2 - (n - 1);
    const auto extra = static_cast<std::uint32_t>(
        rng.next_below(std::min<std::uint64_t>(max_extra + 1, 4ull * n)));
    const Graph g = random_connected(n, extra, rng.next_u64());
    SCOPED_TRACE(testing::Message() << "trial " << trial << " n=" << n);

    sim::Engine engine(g, [](const sim::LocalView& v) {
      return std::make_unique<PartitionDetProcess>(v, PartitionDetConfig{});
    }, rng.next_u64());
    engine.run(8'000'000);
    const auto acc = direct_fragment_accessor();
    const Forest forest = collect_forest(engine, acc);
    const ForestStats stats = analyze_forest(g, forest, "sweep det");
    ASSERT_TRUE(forest_within_mst(forest, kruskal_mst(g)));
    const int L = partition_phases(n);
    ASSERT_GE(stats.min_size, std::uint64_t{1} << L);
    ASSERT_LE(stats.num_trees, isqrt(n));
    ASSERT_LE(stats.max_radius, (std::uint32_t{1} << (L + 3)) - 1);
  }
}

// --- complexity envelopes -------------------------------------------------------

TEST(ComplexityEnvelope, DetPartitionTimeGrowsSublinearly) {
  // time(4n) / time(n) must stay well below 4 (it should be ~2 for sqrt).
  auto measure = [](NodeId n) {
    const Graph g = random_connected(n, 2 * n, 17);
    sim::Engine engine(g, [](const sim::LocalView& v) {
      return std::make_unique<PartitionDetProcess>(v, PartitionDetConfig{});
    }, 3);
    return static_cast<double>(engine.run(80'000'000).rounds);
  };
  const double t1 = measure(512);
  const double t4 = measure(2048);
  EXPECT_LT(t4 / t1, 3.0) << "t(512)=" << t1 << " t(2048)=" << t4;
}

TEST(ComplexityEnvelope, DetPartitionMessagesNearLinear) {
  // msgs / (m + n log n log* n) must not grow with n.
  auto ratio = [](NodeId n) {
    const Graph g = random_connected(n, 2 * n, 19);
    sim::Engine engine(g, [](const sim::LocalView& v) {
      return std::make_unique<PartitionDetProcess>(v, PartitionDetConfig{});
    }, 3);
    const Metrics m = engine.run(80'000'000);
    const double bound = static_cast<double>(g.num_edges()) +
                         static_cast<double>(n) * ilog2_ceil(n) *
                             std::max(1, log_star(n));
    return static_cast<double>(m.p2p_messages) / bound;
  };
  const double r_small = ratio(256);
  const double r_large = ratio(2048);
  EXPECT_LT(r_large, r_small * 2.0);
  EXPECT_LT(r_large, 5.0);
}

TEST(ComplexityEnvelope, RandPartitionMessagesNearLinearInEdges) {
  auto ratio = [](NodeId n) {
    const Graph g = random_connected(n, 4 * n, 23);
    sim::Engine engine(g, [](const sim::LocalView& v) {
      return std::make_unique<PartitionRandProcess>(v, PartitionRandConfig{});
    }, 3);
    const Metrics m = engine.run(80'000'000);
    const double bound = static_cast<double>(g.num_edges()) +
                         static_cast<double>(n) * std::max(1, log_star(n));
    return static_cast<double>(m.p2p_messages) / bound;
  };
  EXPECT_LT(ratio(2048), 6.0);
}

}  // namespace
}  // namespace mmn
