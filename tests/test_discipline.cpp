// Channel disciplines (sim/channel_discipline.hpp).
//
// Three families of guarantees:
//   * agreement — for a writer schedule with no collisions (and, for TDMA,
//     slot-aligned writers), every discipline yields the identical slot
//     outcome sequence, unit-level and engine-level;
//   * analytic slot counts — TDMA resolves k greedy contenders within one
//     cycle of n slots with zero collisions, and Capetanakis resolves the
//     full id set in exactly 2n - 1 probe slots (n successes, n - 1
//     collisions), both on hand-checked small cases;
//   * unslotted accounting — the busy-tone emulation preserves every
//     outcome of the free-for-all channel while its emergent tick envelope
//     follows the no-jitter formula exactly.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/broadcast_global.hpp"
#include "graph/generators.hpp"
#include "sim/channel_discipline.hpp"
#include "sim/engine.hpp"

namespace mmn {
namespace {

constexpr sim::DisciplineKind kAllKinds[] = {
    sim::DisciplineKind::kFreeForAll, sim::DisciplineKind::kTdma,
    sim::DisciplineKind::kCapetanakis, sim::DisciplineKind::kUnslotted};

/// Drives one discipline over a hand-built per-slot write schedule.
std::vector<sim::SlotObservation> drive(sim::ChannelDiscipline& d, NodeId n,
                                        const std::vector<std::vector<NodeId>>&
                                            writers_per_slot) {
  d.reset(n);
  sim::Channel channel;
  Metrics metrics;
  std::vector<sim::SlotObservation> out;
  for (const auto& writers : writers_per_slot) {
    std::vector<sim::ChannelWrite> writes;
    for (NodeId w : writers) {
      writes.push_back(sim::ChannelWrite{w, sim::Packet(1, {sim::Word{w}})});
    }
    out.push_back(d.slot(writes, channel, metrics));
  }
  EXPECT_EQ(d.backlog(), 0u);
  return out;
}

// --- agreement -------------------------------------------------------------

TEST(ChannelDiscipline, CollisionFreeScheduleIdenticalAcrossDisciplines) {
  // Writers aligned with the TDMA ownership (writer v in a slot s with
  // s % n == v) and never more than one per slot: nothing for any policy to
  // schedule, so all four must agree slot by slot.
  constexpr NodeId kN = 8;
  const std::vector<std::vector<NodeId>> schedule = {
      {0}, {1}, {}, {3}, {}, {5}, {6}, {}, {0}, {}, {2}, {3}};
  const std::vector<sim::SlotObservation> reference =
      drive(*sim::make_discipline(sim::DisciplineKind::kFreeForAll), kN,
            schedule);
  for (sim::DisciplineKind kind : kAllKinds) {
    auto d = sim::make_discipline(kind);
    const std::vector<sim::SlotObservation> got = drive(*d, kN, schedule);
    ASSERT_EQ(got.size(), reference.size()) << d->name();
    for (std::size_t s = 0; s < reference.size(); ++s) {
      EXPECT_EQ(got[s].state, reference[s].state) << d->name() << " slot " << s;
      EXPECT_EQ(got[s].writer, reference[s].writer) << d->name() << " slot " << s;
      EXPECT_TRUE(got[s].payload == reference[s].payload)
          << d->name() << " slot " << s;
    }
  }
}

TEST(ChannelDiscipline, SelfScheduledWorkloadIdenticalUnderEveryDiscipline) {
  // BroadcastGlobalProcess implements its own TDMA schedule (node v writes
  // in round v), so its write pattern is collision-free and slot-aligned:
  // every discipline must reproduce the free-for-all run bit for bit.
  const Graph g = complete(24, 5);
  const auto factory = [](const sim::LocalView& v) {
    return std::make_unique<BroadcastGlobalProcess>(
        v, SemigroupOp::kSum, static_cast<sim::Word>(v.self) + 1);
  };
  sim::Engine reference(g, factory, 5);
  const Metrics want = reference.run(1000);
  const sim::Word want_result =
      static_cast<const BroadcastGlobalProcess&>(reference.process(0)).result();
  for (sim::DisciplineKind kind : kAllKinds) {
    sim::Engine engine(g, factory, 5, nullptr, sim::make_discipline(kind));
    Metrics got = engine.run(1000);
    // channel_ticks is the one intentional difference: only the unslotted
    // emulation runs an emergent continuous-time clock alongside the
    // (identical) slot outcomes.
    if (kind == sim::DisciplineKind::kUnslotted) {
      EXPECT_GT(got.channel_ticks, 0u);
      got.channel_ticks = 0;
    }
    EXPECT_TRUE(got == want)
        << sim::discipline_name(kind) << "\nwant: " << want.to_string()
        << "\ngot:  " << got.to_string();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(static_cast<const BroadcastGlobalProcess&>(engine.process(v))
                    .result(),
                want_result)
          << sim::discipline_name(kind) << " node " << v;
    }
  }
}

// --- analytic slot counts --------------------------------------------------

/// Runs n greedy contenders (ContentionGlobalProcess, inputs 1..n, sum)
/// under `kind`; every node must compute the full fold n(n+1)/2.  The
/// workload never touches the links, so any connected topology does.
Metrics run_contenders(NodeId n, sim::DisciplineKind kind) {
  const Graph g = complete(n, 3);
  const auto factory = [](const sim::LocalView& v) {
    return std::make_unique<ContentionGlobalProcess>(
        v, SemigroupOp::kSum, static_cast<sim::Word>(v.self) + 1);
  };
  sim::Engine engine(g, factory, 3, nullptr, sim::make_discipline(kind));
  const Metrics m = engine.run(10'000);
  const sim::Word want = static_cast<sim::Word>(n) * (n + 1) / 2;
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(static_cast<const ContentionGlobalProcess&>(engine.process(v))
                  .result(),
              want)
        << "node " << v;
  }
  return m;
}

TEST(ChannelDiscipline, TdmaResolvesAllContendersInOneCycle) {
  // n greedy contenders, all writing from round 0: slot v hands the medium
  // to node v, so every slot of the first cycle is a success and nothing
  // ever collides.  Round n observes the last success; its own slot idles.
  for (NodeId n : {2u, 4u, 7u}) {
    const Metrics m = run_contenders(n, sim::DisciplineKind::kTdma);
    EXPECT_EQ(m.slots_success, n) << n;
    EXPECT_EQ(m.slots_collision, 0u) << n;
    EXPECT_EQ(m.slots_idle, 1u) << n;
    EXPECT_EQ(m.rounds, std::uint64_t{n} + 1) << n;
  }
}

TEST(ChannelDiscipline, CapetanakisHandCheckedSlotCounts) {
  // All n ids contend, so the depth-first traversal probes every internal
  // node of the id-space tree: 2n - 1 slots — n successes, n - 1 collisions
  // (each internal interval holds >= 2 pending ids).  Hand-checked for
  // n = 4: [0,4)x, [0,2)x, [0,1)ok, [1,2)ok, [2,4)x, [2,3)ok, [3,4)ok.
  // One trailing idle slot while the last success is observed.
  for (NodeId n : {2u, 4u, 8u}) {
    const Metrics m = run_contenders(n, sim::DisciplineKind::kCapetanakis);
    EXPECT_EQ(m.slots_success, n) << n;
    EXPECT_EQ(m.slots_collision, std::uint64_t{n} - 1) << n;
    EXPECT_EQ(m.slots_idle, 1u) << n;
    EXPECT_EQ(m.rounds, 2 * std::uint64_t{n}) << n;
  }
}

TEST(ChannelDiscipline, CapetanakisBatchesMidEpochArrivalsIntoNextEpoch) {
  // Ids 0 and 3 contend from slot 0; id 1 arrives mid-traversal and must
  // wait for the second epoch.  Epoch 1 over {0, 3}: [0,4) collision,
  // [0,2) success(0), [2,4) success(3) — 3 slots.  Epoch 2 over {1}:
  // [0,4) success(1) — 1 slot.
  auto d = sim::make_discipline(sim::DisciplineKind::kCapetanakis);
  const std::vector<sim::SlotObservation> got =
      drive(*d, 4, {{0, 3}, {1}, {}, {}});
  ASSERT_EQ(got.size(), 4u);
  EXPECT_TRUE(got[0].collision());
  EXPECT_TRUE(got[1].success());
  EXPECT_EQ(got[1].writer, 0u);
  EXPECT_TRUE(got[2].success());
  EXPECT_EQ(got[2].writer, 3u);
  EXPECT_TRUE(got[3].success());
  EXPECT_EQ(got[3].writer, 1u);
}

TEST(ChannelDiscipline, ProbeExposesTheTraversalInterval) {
  CapetanakisResolver resolver(8, std::nullopt);
  ASSERT_TRUE(resolver.probe().has_value());
  EXPECT_EQ(*resolver.probe(), std::make_pair(std::uint64_t{0},
                                              std::uint64_t{8}));
  sim::SlotObservation collision;
  collision.state = sim::SlotState::kCollision;
  resolver.observe(collision);
  EXPECT_EQ(*resolver.probe(), std::make_pair(std::uint64_t{0},
                                              std::uint64_t{4}));
  sim::SlotObservation idle;
  resolver.observe(idle);  // [0,4) idle -> probe the right half
  EXPECT_EQ(*resolver.probe(), std::make_pair(std::uint64_t{4},
                                              std::uint64_t{8}));
}

// --- unslotted accounting --------------------------------------------------

TEST(ChannelDiscipline, UnslottedPreservesOutcomesAndAccountsTicks) {
  sim::UnslottedConfig config;
  config.reaction_delay_max = 0;  // no jitter: the envelope is exact
  config.transmit_ticks = 32;
  config.idle_gap_ticks = 4;
  sim::UnslottedDiscipline d(config);
  const std::vector<std::vector<NodeId>> schedule = {
      {0}, {1, 2}, {}, {3}, {0, 1, 2, 3}, {}};
  const std::vector<sim::SlotObservation> reference =
      drive(*sim::make_discipline(sim::DisciplineKind::kFreeForAll), 4,
            schedule);
  d.reset(4);
  sim::Channel channel;
  Metrics metrics;
  std::uint64_t want_ticks = 0;
  for (std::size_t s = 0; s < schedule.size(); ++s) {
    std::vector<sim::ChannelWrite> writes;
    for (NodeId w : schedule[s]) {
      writes.push_back(sim::ChannelWrite{w, sim::Packet(1)});
    }
    const sim::SlotObservation obs = d.slot(writes, channel, metrics);
    EXPECT_EQ(obs.state, reference[s].state) << "slot " << s;
    // No jitter: every active station keys up one tick after the boundary
    // and holds for transmit_ticks; an idle slot is just the gap.
    want_ticks += schedule[s].empty()
                      ? config.idle_gap_ticks
                      : 1 + config.transmit_ticks + config.idle_gap_ticks;
    EXPECT_EQ(d.ticks(), want_ticks) << "slot " << s;
    EXPECT_EQ(metrics.channel_ticks, want_ticks) << "slot " << s;
  }
}

/// Writes once in round 0 and immediately reports finished — the worst case
/// for a deferring discipline, which still holds the write as backlog when
/// every process is done.
class FireAndForgetProcess final : public sim::Process {
 public:
  explicit FireAndForgetProcess(const sim::LocalView& view) : view_(view) {}

  void round(sim::NodeContext& ctx) override {
    if (!sent_) {
      ctx.channel_write(sim::Packet(1, {sim::Word{view_.self}}));
      sent_ = true;
    }
  }
  bool finished() const override { return sent_; }

 private:
  const sim::LocalView& view_;
  bool sent_ = false;
};

TEST(ChannelDiscipline, SyncEngineDrainsDeferredBacklogBeforeCompleting) {
  // All n fire-and-forget writes land in round 0.  Free-for-all resolves
  // them as one collision; a deferring discipline must keep the engine
  // running past all_finished() until every deferred write has actually
  // been transmitted (TDMA: one success per owned slot; Capetanakis: the
  // 2n - 1 probe traversal), instead of silently dropping the backlog.
  constexpr NodeId kN = 4;
  const Graph g = complete(kN, 11);
  const auto factory = [](const sim::LocalView& v) {
    return std::make_unique<FireAndForgetProcess>(v);
  };
  {
    sim::Engine engine(g, factory, 11, nullptr,
                       sim::make_discipline(sim::DisciplineKind::kFreeForAll));
    const Metrics m = engine.run(100);
    EXPECT_EQ(m.slots_collision, 1u);
    EXPECT_EQ(m.slots_success, 0u);
  }
  {
    sim::Engine engine(g, factory, 11, nullptr,
                       sim::make_discipline(sim::DisciplineKind::kTdma));
    const Metrics m = engine.run(100);
    EXPECT_EQ(m.slots_success, kN);
    EXPECT_EQ(m.slots_collision, 0u);
  }
  {
    sim::Engine engine(g, factory, 11, nullptr,
                       sim::make_discipline(sim::DisciplineKind::kCapetanakis));
    const Metrics m = engine.run(100);
    EXPECT_EQ(m.slots_success, kN);
    EXPECT_EQ(m.slots_collision, std::uint64_t{kN} - 1);
  }
}

TEST(ChannelDiscipline, DeferringPolicyFlagsMatchBehavior) {
  EXPECT_FALSE(sim::make_discipline(sim::DisciplineKind::kFreeForAll)->defers());
  EXPECT_FALSE(sim::make_discipline(sim::DisciplineKind::kUnslotted)->defers());
  EXPECT_TRUE(sim::make_discipline(sim::DisciplineKind::kTdma)->defers());
  EXPECT_TRUE(sim::make_discipline(sim::DisciplineKind::kCapetanakis)->defers());
}

}  // namespace
}  // namespace mmn
