// Tests for the stepped-protocol framework: barrier steps end exactly at
// global quiescence, fixed steps take their precomputed length, observed
// steps follow shared channel verdicts, and sequences stay aligned.
#include <vector>

#include <gtest/gtest.h>

#include "channel/capetanakis.hpp"
#include "core/stepped.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace mmn {
namespace {

constexpr std::uint16_t kWave = 21;

/// Three barrier steps; in each, node 0 starts a wave that travels to the end
/// of the path.  Nodes record the engine round at which each step began.
class WaveProcess final : public SteppedProcess {
 public:
  explicit WaveProcess(const sim::LocalView& view) : view_(view) {}

  std::vector<std::uint64_t> begin_rounds_;

 protected:
  std::uint64_t num_steps() const override { return 3; }
  StepSpec step_spec(std::uint64_t) const override { return {}; }

  void step_begin(std::uint64_t, sim::NodeContext& ctx) override {
    begin_rounds_.push_back(ctx.round());
    if (view_.self == 0) {
      for (const auto& link : view_.links()) {
        if (link.to == 1) ctx.send(link.edge, sim::Packet(kWave));
      }
    }
  }

  void on_message(std::uint64_t, const sim::Received& msg,
                  sim::NodeContext& ctx) override {
    // Forward the wave away from smaller ids.
    for (const auto& link : view_.links()) {
      if (link.to > view_.self && link.to != msg.from) {
        ctx.send(link.edge, sim::Packet(kWave));
      }
    }
  }

 private:
  const sim::LocalView& view_;
};

TEST(Stepped, BarrierStepsAlignAcrossNodes) {
  const Graph g = path(6, 1);
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<WaveProcess>(v);
  }, 3);
  engine.run(1000);
  const auto& p0 = static_cast<const WaveProcess&>(engine.process(0));
  ASSERT_EQ(p0.begin_rounds_.size(), 3u);
  for (NodeId v = 1; v < 6; ++v) {
    const auto& pv = static_cast<const WaveProcess&>(engine.process(v));
    EXPECT_EQ(pv.begin_rounds_, p0.begin_rounds_) << "node " << v;
  }
  // Each wave takes 5 hops; the barrier cannot fire before the wave ends.
  EXPECT_GE(p0.begin_rounds_[1] - p0.begin_rounds_[0], 5u);
}

/// One fixed step (channel TDMA of n slots), then one barrier step.
class FixedStepProcess final : public SteppedProcess {
 public:
  explicit FixedStepProcess(const sim::LocalView& view) : view_(view) {}

  std::vector<sim::Word> heard_;
  std::uint64_t barrier_begin_round_ = 0;

 protected:
  std::uint64_t num_steps() const override { return 2; }

  StepSpec step_spec(std::uint64_t step) const override {
    if (step == 0) return {StepKind::kFixed, view_.n};
    return {};
  }

  void step_begin(std::uint64_t step, sim::NodeContext& ctx) override {
    if (step == 0) {
      start_round_ = ctx.round();
    } else {
      barrier_begin_round_ = ctx.round();
    }
  }

  void step_round(std::uint64_t step, sim::NodeContext& ctx) override {
    if (step == 0 && ctx.round() - start_round_ == view_.self) {
      ctx.channel_write(sim::Packet(7, {static_cast<sim::Word>(view_.self)}));
    }
  }

  void on_slot(std::uint64_t slot_step, const sim::SlotObservation& obs,
               sim::NodeContext&) override {
    if (slot_step == 0 && obs.success()) heard_.push_back(obs.payload[0]);
  }

  void on_message(std::uint64_t, const sim::Received&,
                  sim::NodeContext&) override {}

 private:
  const sim::LocalView& view_;
  std::uint64_t start_round_ = 0;
};

TEST(Stepped, FixedStepRunsTdmaAndDeliversLastSlot) {
  const Graph g = ring(5, 1);
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<FixedStepProcess>(v);
  }, 3);
  engine.run(100);
  for (NodeId v = 0; v < 5; ++v) {
    const auto& p = static_cast<const FixedStepProcess&>(engine.process(v));
    // Every node heard all 5 TDMA broadcasts, including the final slot that
    // resolves after the step formally ended.
    EXPECT_EQ(p.heard_, (std::vector<sim::Word>{0, 1, 2, 3, 4})) << v;
    EXPECT_EQ(p.barrier_begin_round_, 5u) << v;
  }
}

/// One observed step: Capetanakis resolution of all nodes with even ids.
class ObservedStepProcess final : public SteppedProcess {
 public:
  explicit ObservedStepProcess(const sim::LocalView& view)
      : view_(view),
        resolver_(view.n, view.self % 2 == 0
                              ? std::optional<std::uint64_t>(view.self)
                              : std::nullopt) {}

  std::vector<sim::Word> schedule() const {
    std::vector<sim::Word> out;
    for (const auto& p : resolver_.successes()) out.push_back(p[0]);
    return out;
  }

 protected:
  std::uint64_t num_steps() const override { return 1; }
  StepSpec step_spec(std::uint64_t) const override {
    return {StepKind::kObserved, 0};
  }
  void step_begin(std::uint64_t, sim::NodeContext&) override {}
  void on_message(std::uint64_t, const sim::Received&,
                  sim::NodeContext&) override {}

  void step_round(std::uint64_t, sim::NodeContext& ctx) override {
    if (!resolver_.done() && resolver_.should_transmit()) {
      ctx.channel_write(sim::Packet(9, {static_cast<sim::Word>(view_.self)}));
    }
  }

  void on_slot(std::uint64_t, const sim::SlotObservation& obs,
               sim::NodeContext&) override {
    if (!resolver_.done()) {
      resolver_.observe(obs, obs.success() && obs.writer == view_.self);
    }
  }

  bool observed_end(std::uint64_t) const override { return resolver_.done(); }

 private:
  const sim::LocalView& view_;
  CapetanakisResolver resolver_;
};

TEST(Stepped, ObservedStepEndsOnSharedVerdict) {
  const Graph g = ring(8, 1);
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<ObservedStepProcess>(v);
  }, 3);
  engine.run(200);
  const std::vector<sim::Word> expected{0, 2, 4, 6};
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(static_cast<const ObservedStepProcess&>(engine.process(v))
                  .schedule(),
              expected);
  }
}

TEST(Stepped, SequenceRunsStagesBackToBack) {
  const Graph g = path(4, 1);
  sim::Engine engine(g, [](const sim::LocalView& v) {
    std::vector<std::unique_ptr<SteppedProcess>> stages;
    stages.push_back(std::make_unique<WaveProcess>(v));
    stages.push_back(std::make_unique<WaveProcess>(v));
    return std::make_unique<SteppedSequenceProcess>(std::move(stages));
  }, 3);
  engine.run(1000);
  // Both stages ran: stage 1's begin rounds are all strictly after stage 0's.
  const auto& seq = static_cast<const SteppedSequenceProcess&>(engine.process(0));
  const auto& s0 = static_cast<const WaveProcess&>(seq.stage(0));
  const auto& s1 = static_cast<const WaveProcess&>(seq.stage(1));
  ASSERT_EQ(s0.begin_rounds_.size(), 3u);
  ASSERT_EQ(s1.begin_rounds_.size(), 3u);
  EXPECT_GT(s1.begin_rounds_.front(), s0.begin_rounds_.back());
}

}  // namespace
}  // namespace mmn
