// Tests for the scenario registry: registration invariants, lookup, and
// deterministic reruns.
#include <stdexcept>

#include <gtest/gtest.h>

#include "scenario/registry.hpp"

namespace mmn::scenario {
namespace {

TEST(ScenarioRegistry, BuiltinTableHasAtLeastSixScenarios) {
  register_builtin();
  register_builtin();  // idempotent
  const auto& all = Registry::instance().all();
  EXPECT_GE(all.size(), 6u);
  for (const Scenario& s : all) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.sweep_n.empty()) << s.name;
    EXPECT_NE(s.make_graph, nullptr) << s.name;
    EXPECT_NE(s.make_factory, nullptr) << s.name;
  }
}

TEST(ScenarioRegistry, FindByName) {
  register_builtin();
  const Scenario* mst = Registry::instance().find("mst/random");
  ASSERT_NE(mst, nullptr);
  EXPECT_EQ(mst->graph_family, "random");
  EXPECT_EQ(Registry::instance().find("no/such/scenario"), nullptr);
}

TEST(ScenarioRegistry, DuplicateNameRejected) {
  register_builtin();
  Scenario dup = *Registry::instance().find("mst/random");
  EXPECT_THROW(Registry::instance().add(dup), std::invalid_argument);
}

TEST(ScenarioRegistry, RunsAreDeterministicPerSeed) {
  register_builtin();
  const Scenario* s = Registry::instance().find("global/min/rand/ring");
  ASSERT_NE(s, nullptr);
  const RunResult a = run(*s, 64, 11);
  const RunResult b = run(*s, 64, 11);
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.realized_n, 64u);
  const RunResult c = run(*s, 64, 12);
  // A different seed changes the randomized schedule (metrics), never the
  // computed global value for the same inputs.
  EXPECT_EQ(a.digest, c.digest);
}

TEST(ScenarioRegistry, GridFamilyReportsRealizedSize) {
  register_builtin();
  const Scenario* s = Registry::instance().find("global/min/p2p/grid");
  ASSERT_NE(s, nullptr);
  const RunResult r = run(*s, 60, 7);  // rounds to an 8x8 grid
  EXPECT_EQ(r.realized_n, 64u);
  EXPECT_GT(r.metrics.rounds, 0u);
}

}  // namespace
}  // namespace mmn::scenario
