// Tests for the scenario registry: registration invariants, lookup, and
// deterministic reruns.
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "scenario/registry.hpp"

namespace mmn::scenario {
namespace {

TEST(ScenarioRegistry, BuiltinTableHasAtLeastSixScenarios) {
  register_builtin();
  register_builtin();  // idempotent
  const auto& all = Registry::instance().all();
  EXPECT_GE(all.size(), 6u);
  for (const Scenario& s : all) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.sweep_n.empty()) << s.name;
    EXPECT_NE(s.make_factory, nullptr) << s.name;
    // Every default sweep size must be exactly admissible for the entry's
    // topology family — the registry never relies on silent rounding.
    for (NodeId n : s.sweep_n) {
      EXPECT_TRUE(topology_valid_n(s.topology, n)) << s.name << " n=" << n;
    }
  }
}

TEST(ScenarioRegistry, FindByName) {
  register_builtin();
  const Scenario* mst = Registry::instance().find("mst/random");
  ASSERT_NE(mst, nullptr);
  EXPECT_EQ(std::string(topology_name(mst->topology)), "random");
  EXPECT_EQ(Registry::instance().find("no/such/scenario"), nullptr);
}

TEST(ScenarioRegistry, DuplicateNameRejected) {
  register_builtin();
  Scenario dup = *Registry::instance().find("mst/random");
  EXPECT_THROW(Registry::instance().add(dup), std::invalid_argument);
}

TEST(ScenarioRegistry, RunsAreDeterministicPerSeed) {
  register_builtin();
  const Scenario* s = Registry::instance().find("global/min/rand/ring");
  ASSERT_NE(s, nullptr);
  const RunResult a = run(*s, 64, 11);
  const RunResult b = run(*s, 64, 11);
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.realized_n, 64u);
  const RunResult c = run(*s, 64, 12);
  // A different seed changes the randomized schedule (metrics), never the
  // computed global value for the same inputs.
  EXPECT_EQ(a.digest, c.digest);
}

TEST(ScenarioRegistry, GridFamilyReportsRealizedSize) {
  register_builtin();
  const Scenario* s = Registry::instance().find("global/min/p2p/grid");
  ASSERT_NE(s, nullptr);
  const RunResult r = run(*s, 60, 7);  // rounds to an 8x8 grid
  EXPECT_EQ(r.realized_n, 64u);
  EXPECT_GT(r.metrics.rounds, 0u);
}

TEST(ScenarioRegistry, ChannelDisciplineAndAnonymousScenariosRegistered) {
  register_builtin();
  const Scenario* tdma = Registry::instance().find("global/max/tdma/ring");
  ASSERT_NE(tdma, nullptr);
  EXPECT_FALSE(tdma->channel_free);  // TDMA is a channel discipline
  const RunResult t = run(*tdma, 64, 7);
  // The fixed schedule costs one slot per station plus the final quiet slot.
  EXPECT_EQ(t.metrics.rounds, 65u);
  EXPECT_EQ(t.metrics.p2p_messages, 0u);

  const Scenario* anon = Registry::instance().find("partition/anon/random");
  ASSERT_NE(anon, nullptr);
  const RunResult a = run(*anon, 64, 7);
  EXPECT_GT(a.metrics.rounds, 0u);
  EXPECT_NE(a.digest, 0u);
}

TEST(ScenarioRegistry, AsyncRunMatchesSyncResultsForChannelFreeScenarios) {
  register_builtin();
  int checked = 0;
  for (const Scenario& s : Registry::instance().all()) {
    if (!s.channel_free) continue;
    ++checked;
    const NodeId n = s.sweep_n.front();
    const RunResult sync = run(s, n, s.default_seed);
    const RunResult async =
        run(s, n, s.default_seed, nullptr, EngineKind::kAsync);
    EXPECT_TRUE(async.completed) << s.name;
    // Different engine, different schedule — but the same computed results.
    EXPECT_EQ(sync.digest, async.digest) << s.name;
    // The synchronizer costs exactly one acknowledgement per message.
    EXPECT_EQ(async.metrics.p2p_messages, 2 * sync.metrics.p2p_messages)
        << s.name;
  }
  EXPECT_GE(checked, 2);
}

TEST(ScenarioRegistry, AsyncRunRejectsChannelUsingScenarios) {
  register_builtin();
  const Scenario* s = Registry::instance().find("mst/random");
  ASSERT_NE(s, nullptr);
  ASSERT_FALSE(s->channel_free);
  EXPECT_THROW(run(*s, 64, 7, nullptr, EngineKind::kAsync),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmn::scenario
