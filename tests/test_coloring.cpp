// Tests for the symmetry-breaking module: Cole–Vishkin updates, GPS forest
// 3-coloring, root-red recoloring, MIS growth and the Step-6 cut.
//
// The partition algorithm's correctness rests on these invariants, so they
// are property-tested over large random-forest sweeps.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "coloring/cole_vishkin.hpp"
#include "coloring/forest_coloring.hpp"
#include "coloring/mis.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

/// Random rooted forest: vertex v attaches to a random earlier vertex or
/// becomes a root with probability root_p.
RootedForest random_forest(std::uint32_t n, double root_p, std::uint64_t seed) {
  Rng rng(seed);
  RootedForest f;
  f.parent.resize(n);
  f.parent[0] = 0;
  for (std::uint32_t v = 1; v < n; ++v) {
    f.parent[v] = rng.next_bernoulli(root_p)
                      ? v
                      : static_cast<std::uint32_t>(rng.next_below(v));
  }
  return f;
}

/// A path forest 0 <- 1 <- 2 ... (worst case for coloring depth).
RootedForest path_forest(std::uint32_t n) {
  RootedForest f;
  f.parent.resize(n);
  f.parent[0] = 0;
  for (std::uint32_t v = 1; v < n; ++v) f.parent[v] = v - 1;
  return f;
}

std::vector<Color> identity_ids(std::uint32_t n) {
  std::vector<Color> ids(n);
  for (std::uint32_t v = 0; v < n; ++v) ids[v] = v;
  return ids;
}

TEST(ColeVishkin, UpdatePreservesDistinctnessOnChains) {
  // If a != b and b != c then cv(a, b) != cv(b, c): the CV chain property.
  Rng rng(1);
  for (int t = 0; t < 100000; ++t) {
    const Color a = rng.next_below(1 << 20);
    const Color b = rng.next_below(1 << 20);
    const Color c = rng.next_below(1 << 20);
    if (a == b || b == c) continue;
    EXPECT_NE(cv_update(a, b), cv_update(b, c))
        << "a=" << a << " b=" << b << " c=" << c;
  }
}

TEST(ColeVishkin, RootUpdateDiffersFromChildren) {
  Rng rng(2);
  for (int t = 0; t < 100000; ++t) {
    const Color r = rng.next_below(1 << 20);
    const Color a = rng.next_below(1 << 20);
    if (a == r) continue;
    EXPECT_NE(cv_update(a, r), cv_update_root(r)) << "a=" << a << " r=" << r;
  }
}

TEST(ColeVishkin, UpdateShrinksPalette) {
  // From b-bit colors the new palette is at most 2b values.
  Rng rng(3);
  for (int t = 0; t < 10000; ++t) {
    const Color a = rng.next_below(1 << 16);
    const Color b = rng.next_below(1 << 16);
    if (a == b) continue;
    EXPECT_LT(cv_update(a, b), 32u);  // 2 * 16 bits
    EXPECT_LT(cv_update_root(a), 2u);
  }
}

TEST(ColeVishkin, RejectsEqualColors) {
  EXPECT_THROW(cv_update(5, 5), std::invalid_argument);
}

TEST(ColeVishkin, SmallestFreeColor) {
  EXPECT_EQ(smallest_free_color(0, 1), 2);
  EXPECT_EQ(smallest_free_color(1, 0), 2);
  EXPECT_EQ(smallest_free_color(0, 2), 1);
  EXPECT_EQ(smallest_free_color(1, 2), 0);
  EXPECT_EQ(smallest_free_color(0, 0), 1);
  EXPECT_EQ(smallest_free_color(2, 2), 0);
  EXPECT_EQ(smallest_free_color(-1, 1), 0);
  EXPECT_EQ(smallest_free_color(5, 7), 0);  // out-of-palette forbidders
}

struct ForestCase {
  std::uint32_t n;
  double root_p;
  std::uint64_t seed;
};

class ForestColoringTest : public ::testing::TestWithParam<ForestCase> {};

TEST_P(ForestColoringTest, CvIterationsReachSixColors) {
  const auto& c = GetParam();
  const RootedForest f = random_forest(c.n, c.root_p, c.seed);
  f.validate();
  std::vector<Color> colors = identity_ids(c.n);
  const int bits = std::max(1, ilog2_ceil(std::max<std::uint64_t>(2, c.n)));
  for (int i = 0; i < cole_vishkin_iterations(bits); ++i) {
    colors = cv_iteration(f, colors);
    ASSERT_TRUE(is_proper_coloring(f, colors)) << "iteration " << i;
  }
  for (Color col : colors) EXPECT_LE(col, 5u);
}

TEST_P(ForestColoringTest, ThreeColorProducesProperThreeColoring) {
  const auto& c = GetParam();
  const RootedForest f = random_forest(c.n, c.root_p, c.seed);
  const int bits = std::max(1, ilog2_ceil(std::max<std::uint64_t>(2, c.n)));
  const std::vector<Color> colors = three_color(f, identity_ids(c.n), bits);
  EXPECT_TRUE(is_proper_coloring(f, colors));
  for (Color col : colors) EXPECT_LE(col, 2u);
}

TEST_P(ForestColoringTest, ShiftDownMakesSiblingsMonochromatic) {
  const auto& c = GetParam();
  const RootedForest f = random_forest(c.n, c.root_p, c.seed);
  const int bits = std::max(1, ilog2_ceil(std::max<std::uint64_t>(2, c.n)));
  std::vector<Color> colors = identity_ids(c.n);
  for (int i = 0; i < cole_vishkin_iterations(bits); ++i) {
    colors = cv_iteration(f, colors);
  }
  const std::vector<Color> shifted = shift_down(f, colors);
  EXPECT_TRUE(is_proper_coloring(f, shifted));
  const auto kids = f.children();
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    for (std::size_t i = 1; i < kids[v].size(); ++i) {
      EXPECT_EQ(shifted[kids[v][i]], shifted[kids[v][0]]);
    }
  }
}

TEST_P(ForestColoringTest, RootRedRecolorMakesAllRootsRed) {
  const auto& c = GetParam();
  const RootedForest f = random_forest(c.n, c.root_p, c.seed);
  const int bits = std::max(1, ilog2_ceil(std::max<std::uint64_t>(2, c.n)));
  const std::vector<Color> three = three_color(f, identity_ids(c.n), bits);
  const std::vector<Color> recolored = root_red_recolor(f, three);
  EXPECT_TRUE(is_proper_coloring(f, recolored));
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (f.is_root(v)) {
      EXPECT_EQ(recolored[v], kRed);
    }
    EXPECT_LE(recolored[v], 2u);
  }
}

TEST_P(ForestColoringTest, MisIsIndependentDominatingAndContainsRoots) {
  const auto& c = GetParam();
  const RootedForest f = random_forest(c.n, c.root_p, c.seed);
  const int bits = std::max(1, ilog2_ceil(std::max<std::uint64_t>(2, c.n)));
  std::vector<Color> colors = three_color(f, identity_ids(c.n), bits);
  colors = root_red_recolor(f, colors);
  colors = grow_red_mis(f, colors);
  EXPECT_TRUE(red_is_independent(f, colors));
  EXPECT_TRUE(red_is_dominating(f, colors));
  for (std::uint32_t v = 0; v < f.size(); ++v) {
    if (f.is_root(v)) {
      EXPECT_EQ(colors[v], kRed);
    }
  }
}

TEST_P(ForestColoringTest, CutComponentsHaveBoundedDepthAndRedRoots) {
  const auto& c = GetParam();
  const RootedForest f = random_forest(c.n, c.root_p, c.seed);
  const int bits = std::max(1, ilog2_ceil(std::max<std::uint64_t>(2, c.n)));
  std::vector<Color> colors = three_color(f, identity_ids(c.n), bits);
  colors = root_red_recolor(f, colors);
  colors = grow_red_mis(f, colors);
  const RootedForest cut = cut_at_red_internals(f, colors);
  cut.validate();
  // Every new root is red: either an original root or a cut red internal.
  for (std::uint32_t v = 0; v < cut.size(); ++v) {
    if (cut.is_root(v)) {
      EXPECT_EQ(colors[v], kRed) << v;
    }
  }
  // The paper's Step 6 guarantee: components have radius at most four.
  EXPECT_LE(max_depth(cut), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForestColoringTest,
    ::testing::Values(ForestCase{1, 1.0, 1}, ForestCase{2, 0.5, 2},
                      ForestCase{10, 0.3, 3}, ForestCase{100, 0.1, 4},
                      ForestCase{100, 0.02, 5}, ForestCase{1000, 0.05, 6},
                      ForestCase{1000, 0.005, 7}, ForestCase{5000, 0.01, 8},
                      ForestCase{5000, 0.001, 9}, ForestCase{20000, 0.0005, 10}));

TEST(ForestColoring, PathForestWorstCase) {
  // Long chains are the hardest case for the MIS distance bound.
  for (std::uint32_t n : {2u, 3u, 5u, 64u, 1000u}) {
    const RootedForest f = path_forest(n);
    const int bits = std::max(1, ilog2_ceil(std::max<std::uint64_t>(2, n)));
    std::vector<Color> colors = three_color(f, identity_ids(n), bits);
    colors = root_red_recolor(f, colors);
    colors = grow_red_mis(f, colors);
    const RootedForest cut = cut_at_red_internals(f, colors);
    EXPECT_LE(max_depth(cut), 4u) << "n=" << n;
  }
}

TEST(ForestColoring, SingletonForest) {
  RootedForest f;
  f.parent = {0};
  std::vector<Color> colors = three_color(f, {0}, 1);
  EXPECT_LE(colors[0], 2u);
  colors = root_red_recolor(f, colors);
  EXPECT_EQ(colors[0], kRed);
  colors = grow_red_mis(f, colors);
  const RootedForest cut = cut_at_red_internals(f, colors);
  EXPECT_EQ(cut.parent[0], 0u);
}

TEST(ForestColoring, StarForest) {
  // One root with many children.
  RootedForest f;
  f.parent.assign(50, 0);
  f.parent[0] = 0;
  const std::vector<Color> colors = three_color(f, identity_ids(50), 6);
  EXPECT_TRUE(is_proper_coloring(f, colors));
  const auto recolored = grow_red_mis(f, root_red_recolor(f, colors));
  EXPECT_EQ(recolored[0], kRed);
  for (std::uint32_t v = 1; v < 50; ++v) EXPECT_NE(recolored[v], kRed);
}

TEST(ForestColoring, DropColorRequiresMonochromaticChildren) {
  // Children with mixed colors must be rejected (shift_down not run).
  RootedForest f;
  f.parent = {0, 0, 0};
  const std::vector<Color> colors = {3, 1, 2};
  EXPECT_DEATH(drop_color(f, colors, Color{3}), "monochromatic");
}

TEST(ForestColoring, ValidateDetectsCycle) {
  RootedForest f;
  f.parent = {1, 0};
  EXPECT_DEATH(f.validate(), "cycle");
}

TEST(ForestColoring, MaxDepth) {
  EXPECT_EQ(max_depth(path_forest(5)), 4u);
  RootedForest f;
  f.parent = {0, 0, 1, 1, 3};
  EXPECT_EQ(max_depth(f), 3u);
}

}  // namespace
}  // namespace mmn
