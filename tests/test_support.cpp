// Unit tests for src/support: integer math, RNG, metrics, table printer.
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/math.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace mmn {
namespace {

TEST(Math, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(4), 2);
  EXPECT_EQ(ilog2_floor(1023), 9);
  EXPECT_EQ(ilog2_floor(1024), 10);
  EXPECT_EQ(ilog2_floor(std::uint64_t{1} << 63), 63);
}

TEST(Math, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(4), 2);
  EXPECT_EQ(ilog2_ceil(5), 3);
  EXPECT_EQ(ilog2_ceil(1024), 10);
  EXPECT_EQ(ilog2_ceil(1025), 11);
}

TEST(Math, Ilog2RejectsZero) {
  EXPECT_THROW(ilog2_floor(0), std::invalid_argument);
  EXPECT_THROW(ilog2_ceil(0), std::invalid_argument);
}

TEST(Math, IsqrtExhaustiveSmall) {
  for (std::uint64_t x = 0; x <= 10000; ++x) {
    const std::uint64_t r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(Math, IsqrtLarge) {
  EXPECT_EQ(isqrt(std::uint64_t{1} << 62), std::uint64_t{1} << 31);
  const std::uint64_t big = 0xFFFFFFFFFFFFFFFFULL;
  const std::uint64_t r = isqrt(big);
  EXPECT_LE(r * r, big);  // r = 2^32 - 1
  EXPECT_EQ(r, 0xFFFFFFFFULL);
}

TEST(Math, IsqrtCeil) {
  EXPECT_EQ(isqrt_ceil(0), 0u);
  EXPECT_EQ(isqrt_ceil(1), 1u);
  EXPECT_EQ(isqrt_ceil(2), 2u);
  EXPECT_EQ(isqrt_ceil(4), 2u);
  EXPECT_EQ(isqrt_ceil(5), 3u);
  EXPECT_EQ(isqrt_ceil(9), 3u);
  EXPECT_EQ(isqrt_ceil(10), 4u);
}

TEST(Math, LogStar) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  EXPECT_EQ(log_star(65537), 5);
  EXPECT_EQ(log_star(std::uint64_t{1} << 40), 5);
}

TEST(Math, ExpTower) {
  // E_1 = 1, E_2 = e, E_3 = e^e, then saturation.
  EXPECT_DOUBLE_EQ(exp_tower(1, 1e18), 1.0);
  EXPECT_NEAR(exp_tower(2, 1e18), std::exp(1.0), 1e-12);
  EXPECT_NEAR(exp_tower(3, 1e18), std::exp(std::exp(1.0)), 1e-9);
  EXPECT_DOUBLE_EQ(exp_tower(10, 1e6), 1e6);  // saturated at the cap
  EXPECT_DOUBLE_EQ(exp_tower(5, 100.0), 100.0);
}

TEST(Math, ExpTowerMonotoneUntilCap) {
  double prev = 0.0;
  for (int i = 1; i <= 6; ++i) {
    const double v = exp_tower(i, 1e9);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Math, ColeVishkinIterations) {
  // Must be enough iterations that iterating b -> ceil(log2 b) + 1 from any
  // starting width reaches the 3-bit fixed point, plus the two pinning steps.
  for (int bits = 1; bits <= 64; ++bits) {
    const int iters = cole_vishkin_iterations(bits);
    int b = bits;
    int steps = 0;
    while (b > 3) {
      b = ilog2_ceil(static_cast<std::uint64_t>(b)) + 1;
      ++steps;
    }
    EXPECT_EQ(iters, steps + 2) << "bits=" << bits;
    EXPECT_LE(iters, 8);  // log* growth: tiny for any practical width
  }
}

TEST(Math, PartitionPhases) {
  EXPECT_EQ(partition_phases(1), 0);
  EXPECT_EQ(partition_phases(2), 1);
  EXPECT_EQ(partition_phases(4), 1);
  EXPECT_EQ(partition_phases(16), 2);
  EXPECT_EQ(partition_phases(256), 4);
  EXPECT_EQ(partition_phases(1024), 5);
  // Final fragment size 2^phases must be >= sqrt(n).
  for (std::uint64_t n = 2; n <= 4096; n *= 2) {
    const int p = partition_phases(n);
    EXPECT_GE((std::uint64_t{1} << p) * (std::uint64_t{1} << p), n) << n;
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkIndependentStreams) {
  Rng root(7);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  Rng a2 = Rng(7).fork(0);
  EXPECT_EQ(a.next_u64(), a2.next_u64());
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) heads += rng.next_bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.25, 0.02);
}

TEST(Metrics, Accumulate) {
  Metrics a;
  a.rounds = 10;
  a.p2p_messages = 5;
  a.slots_idle = 3;
  a.slots_success = 6;
  a.slots_collision = 1;
  Metrics b;
  b.rounds = 1;
  b.p2p_messages = 2;
  const Metrics c = a + b;
  EXPECT_EQ(c.rounds, 11u);
  EXPECT_EQ(c.p2p_messages, 7u);
  EXPECT_EQ(c.slots_busy(), 7u);
  EXPECT_EQ(c.communication(), 18u);
}

TEST(Metrics, ToStringMentionsFields) {
  Metrics m;
  m.rounds = 4;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("rounds=4"), std::string::npos);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"n", "value"});
  t.begin_row();
  t.add(std::uint64_t{12});
  t.add(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.begin_row();
  t.add(std::uint64_t{1});
  EXPECT_THROW(t.add(std::uint64_t{2}), std::invalid_argument);
}

TEST(Check, RequireThrows) {
  EXPECT_THROW(MMN_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(MMN_REQUIRE(true, "fine"));
}

}  // namespace
}  // namespace mmn
