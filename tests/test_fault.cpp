// Deterministic fault injection (sim/fault.hpp, graph/epoch.hpp): plan
// construction is a pure function of (graph, parameters, seed); the epoch
// overlay's compaction preserves surviving edges bit for bit; the registry's
// recovery scenarios re-converge to pinned digests after mid-run link kills;
// and every faulted run — recovery, churn, sync, async — is bit-identical
// across serial and 2/4/8-thread schedulers and across epoch-boundary
// placement.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/openloop.hpp"
#include "graph/epoch.hpp"
#include "graph/generators.hpp"
#include "scenario/registry.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"

namespace mmn {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;

// ---- plan construction -----------------------------------------------------

TEST(FaultPlan, ChurnIsDeterministicPerSeed) {
  const Graph g = random_connected(64, 128, 7);
  const FaultPlan a = FaultPlan::link_churn(g, 0.01, 500, 7);
  const FaultPlan b = FaultPlan::link_churn(g, 0.01, 500, 7);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_TRUE(std::equal(a.events().begin(), a.events().end(),
                         b.events().begin()));
  // All draws happen at plan-build time from a forked stream, so the plan
  // depends on the seed and on nothing else.
  const FaultPlan c = FaultPlan::link_churn(g, 0.01, 500, 8);
  EXPECT_FALSE(a.events().size() == c.events().size() &&
               std::equal(a.events().begin(), a.events().end(),
                          c.events().begin()));
}

TEST(FaultPlan, LinkKillsAreConnectivitySafe) {
  const Graph g = random_connected(64, 128, 7);
  const FaultPlan plan = FaultPlan::link_kills(g, 6, /*slot=*/10, 7);
  ASSERT_EQ(plan.events().size(), 6u);
  EpochOverlay overlay(g);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_EQ(e.slot, 10u);
    EXPECT_EQ(e.kind, FaultKind::kLinkDown);
    overlay.kill_link(e.id);
  }
  // BFS over the overlay: every node must still be reachable.
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> queue{0};
  seen[0] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    for (const Neighbor& nb : g.neighbors(u)) {
      if (!overlay.link_alive(nb.edge) || seen[nb.to]) continue;
      seen[nb.to] = 1;
      queue.push_back(nb.to);
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
            static_cast<long>(g.num_nodes()));
}

TEST(FaultPlan, NodeChurnPairsEveryCrashWithARecovery) {
  const Graph g = random_connected(64, 128, 7);
  const FaultPlan plan = FaultPlan::node_churn(g, 0.05, /*down_slots=*/30,
                                               /*horizon=*/400, 7);
  ASSERT_FALSE(plan.empty());
  std::map<NodeId, std::vector<std::uint64_t>> crashes;
  std::map<NodeId, std::vector<std::uint64_t>> recoveries;
  for (const FaultEvent& e : plan.events()) {
    if (e.kind == FaultKind::kNodeCrash) crashes[e.id].push_back(e.slot);
    if (e.kind == FaultKind::kNodeRecover) recoveries[e.id].push_back(e.slot);
  }
  EXPECT_FALSE(crashes.empty());
  for (const auto& [v, slots] : crashes) {
    ASSERT_EQ(recoveries[v].size(), slots.size()) << "node " << v;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(recoveries[v][i], slots[i] + 30) << "node " << v;
    }
  }
}

TEST(FaultPlan, OutageWindowsAlternateWithinHorizon) {
  FaultPlan plan;
  plan.add_outage_windows(/*link=*/3, /*first_down=*/10, /*down_slots=*/5,
                          /*up_slots=*/15, /*horizon=*/60);
  // down at 10, up at 15, down at 30, up at 35, down at 50, up at 55.
  ASSERT_EQ(plan.events().size(), 6u);
  EXPECT_EQ(plan.events()[0], (FaultEvent{10, FaultKind::kLinkDown, 3}));
  EXPECT_EQ(plan.events()[1], (FaultEvent{15, FaultKind::kLinkUp, 3}));
  EXPECT_EQ(plan.events()[4], (FaultEvent{50, FaultKind::kLinkDown, 3}));
  EXPECT_EQ(plan.first_fault_slot(), 10u);
}

// ---- epoch overlay ---------------------------------------------------------

TEST(EpochOverlay, CompactPreservesSurvivorsAndAppliesDelta) {
  const Graph g = random_connected(32, 64, 7);
  EpochOverlay overlay(g);
  const EdgeId killed_a = 3;
  const EdgeId killed_b = 10;
  overlay.kill_link(killed_a);
  overlay.kill_link(killed_b);
  const Edge e0 = g.edge(0);
  overlay.add_link(e0.u, e0.v, 999'999);  // parallel delta link
  const EpochOverlay::Compaction c = overlay.compact();
  EXPECT_EQ(c.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(c.graph.num_edges(), g.num_edges() - 2 + 1);
  EXPECT_EQ(overlay.epoch(), 1u);
  ASSERT_EQ(c.old_to_new.size(), g.num_edges());
  EXPECT_EQ(c.old_to_new[killed_a], kNoEdge);
  EXPECT_EQ(c.old_to_new[killed_b], kNoEdge);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (e == killed_a || e == killed_b) continue;
    const EdgeId mapped = c.old_to_new[e];
    ASSERT_NE(mapped, kNoEdge);
    const Edge old_edge = g.edge(e);
    const Edge new_edge = c.graph.edge(mapped);
    EXPECT_EQ(new_edge.u, old_edge.u);
    EXPECT_EQ(new_edge.v, old_edge.v);
    EXPECT_EQ(new_edge.weight, old_edge.weight);
  }
}

TEST(EpochOverlay, AddThenKillSameLinkWithinOneEpoch) {
  // A link is replaced mid-epoch: a delta link between the same endpoints
  // goes in first, then the base link is killed.  The compaction must drop
  // the base edge (old_to_new maps it to kNoEdge) while the delta
  // replacement survives as a real edge of the fresh arena with its own
  // weight — the add/kill order within the epoch is irrelevant because the
  // tombstone set and the delta adjacency are independent structures.
  const Graph g = build_topology(TopologySpec{TopoKind::kRing, 16, 7});
  EpochOverlay overlay(g);
  const EdgeId base_e = 4;
  const Edge ed = g.edge(base_e);
  const Weight replacement_w = 999'999;
  overlay.add_link(ed.u, ed.v, replacement_w);
  overlay.kill_link(base_e);
  EXPECT_EQ(overlay.links_down(), 1u);
  EXPECT_EQ(overlay.delta_links(), 1u);
  const EpochOverlay::Compaction c = overlay.compact();
  // Net edge count is unchanged: one base edge died, one delta arrived.
  EXPECT_EQ(c.graph.num_edges(), g.num_edges());
  EXPECT_EQ(c.old_to_new[base_e], kNoEdge);
  // The replacement is the last edge (delta ids follow the survivors) and
  // carries the delta weight, not the killed base link's.
  const Edge fresh = c.graph.edge(c.graph.num_edges() - 1);
  EXPECT_EQ(fresh.u, std::min(ed.u, ed.v));
  EXPECT_EQ(fresh.v, std::max(ed.u, ed.v));
  EXPECT_EQ(fresh.weight, replacement_w);
  // Both endpoints keep their degree: the replacement slot is live.
  EXPECT_EQ(c.graph.degree(ed.u), g.degree(ed.u));
  EXPECT_EQ(c.graph.degree(ed.v), g.degree(ed.v));
}

TEST(EpochOverlay, CompactDropsDeltaLinksWithCrashedEndpoints) {
  // A delta link whose endpoint crashed before the epoch boundary must NOT
  // materialize in the fresh arena — compaction filters the delta by node
  // liveness exactly as it filters base edges.
  const Graph g = build_topology(TopologySpec{TopoKind::kRing, 16, 7});
  EpochOverlay overlay(g);
  overlay.add_link(2, 9, 999'998);   // endpoint 9 will crash
  overlay.add_link(3, 11, 999'999);  // both endpoints stay alive
  overlay.crash_node(9);
  EXPECT_EQ(overlay.delta_links(), 2u);
  const EpochOverlay::Compaction c = overlay.compact();
  // Node 9's two ring edges die with it; of the two delta links only the
  // live-endpoint one lands.
  EXPECT_EQ(c.graph.num_edges(), g.num_edges() - 2 + 1);
  EXPECT_EQ(c.graph.degree(9), 0u);
  EXPECT_EQ(c.graph.degree(2), g.degree(2));  // no half-added stub at 2
  const Edge fresh = c.graph.edge(c.graph.num_edges() - 1);
  EXPECT_EQ(fresh.u, 3u);
  EXPECT_EQ(fresh.v, 11u);
  EXPECT_EQ(fresh.weight, 999'999u);
  // The delta was consumed either way — the crashed-endpoint link did not
  // linger to resurface later.  (The overlay stays bound to the OLD base,
  // so a second boundary re-streams the base survivors only: no delta.)
  EXPECT_EQ(overlay.delta_links(), 0u);
  const EpochOverlay::Compaction c2 = overlay.compact();
  EXPECT_EQ(c2.graph.num_edges(), g.num_edges() - 2);
}

TEST(EpochOverlay, CrashedEndpointsDropTheirEdgesOnCompaction) {
  const Graph g = build_topology(TopologySpec{TopoKind::kRing, 16, 7});
  EpochOverlay overlay(g);
  overlay.crash_node(5);
  const EpochOverlay::Compaction c = overlay.compact();
  // Node ids are stable (the crashed node stays as an isolated vertex);
  // both ring edges at node 5 are gone.
  EXPECT_EQ(c.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(c.graph.num_edges(), g.num_edges() - 2);
  EXPECT_EQ(c.graph.degree(5), 0u);
}

// ---- recovery scenarios ----------------------------------------------------

TEST(FaultRecovery, PartitionAndMstReconvergeToPinnedDigests) {
  scenario::register_builtin();
  struct Pin {
    const char* name;
    std::uint64_t digest;
    std::uint64_t recovery_slots;
  };
  // Pinned per (n=64, default seed, k=4): phase A runs into 4 link kills at
  // slot 24, the overlay compacts, phase B re-converges from scratch on the
  // surviving topology.  A change here is a behavior change in the fault
  // path or the protocols, never noise.
  const Pin pins[] = {
      {"fault/partition/det/random", 0x3a8ecbb1f87a7cd9ULL, 343},
      {"fault/mst/random", 0x0c179d95bd036db7ULL, 367},
  };
  for (const Pin& pin : pins) {
    const scenario::Scenario* s = scenario::Registry::instance().find(pin.name);
    ASSERT_NE(s, nullptr) << pin.name;
    const scenario::RunResult r = scenario::run(*s, 64, s->default_seed);
    EXPECT_TRUE(r.completed) << pin.name;
    EXPECT_EQ(r.status, sim::RunStatus::kCompleted) << pin.name;
    EXPECT_EQ(r.digest, pin.digest) << pin.name;
    EXPECT_EQ(r.recovery_slots, pin.recovery_slots) << pin.name;
    EXPECT_EQ(r.faults.link_downs, 4u) << pin.name;
    EXPECT_EQ(r.faults.recovery_slots, r.recovery_slots) << pin.name;
  }
}

TEST(FaultRecovery, DigestIsInvariantToEpochBoundaryPlacement) {
  scenario::register_builtin();
  const scenario::Scenario* base =
      scenario::Registry::instance().find("fault/partition/det/random");
  ASSERT_NE(base, nullptr);
  scenario::Scenario late = *base;  // same kills, later compaction
  late.fault_epoch_slots = 160;
  const scenario::RunResult at96 = scenario::run(*base, 64, base->default_seed);
  const scenario::RunResult at160 = scenario::run(late, 64, base->default_seed);
  // Any boundary past the last fault event compacts the same surviving
  // graph, so phase B and the kill-set word — hence the digest — agree;
  // only the billed detection window (recovery_slots) moves.
  EXPECT_EQ(at96.digest, at160.digest);
  EXPECT_EQ(at160.recovery_slots, at96.recovery_slots + (160 - 96));
}

TEST(FaultRecovery, SerialAndParallelRunsAreBitIdentical) {
  scenario::register_builtin();
  for (const char* name : {"fault/partition/det/random", "fault/mst/random"}) {
    const scenario::Scenario* s = scenario::Registry::instance().find(name);
    ASSERT_NE(s, nullptr) << name;
    const scenario::RunResult serial = scenario::run(*s, 64, s->default_seed);
    for (const unsigned threads : {2u, 4u, 8u}) {
      const scenario::RunResult parallel = scenario::run(
          *s, 64, s->default_seed, sim::make_scheduler(threads));
      EXPECT_EQ(parallel.digest, serial.digest)
          << name << " with " << threads << " threads";
      EXPECT_EQ(parallel.metrics.rounds, serial.metrics.rounds);
      EXPECT_EQ(parallel.recovery_slots, serial.recovery_slots);
      EXPECT_TRUE(parallel.faults == serial.faults);
    }
  }
}

// ---- churn on the open-loop path -------------------------------------------

TEST(FaultChurn, BothEnginesAreSchedulerInvariant) {
  scenario::register_builtin();
  const scenario::Scenario* s =
      scenario::Registry::instance().find("fault/load/churn/ring");
  ASSERT_NE(s, nullptr);
  for (const scenario::EngineKind kind :
       {scenario::EngineKind::kSync, scenario::EngineKind::kAsync}) {
    const scenario::RunResult serial =
        scenario::run(*s, 64, s->default_seed, nullptr, kind);
    EXPECT_GT(serial.faults.link_downs + serial.faults.node_crashes, 0u);
    for (const unsigned threads : {2u, 4u, 8u}) {
      const scenario::RunResult parallel = scenario::run(
          *s, 64, s->default_seed, sim::make_scheduler(threads), kind);
      EXPECT_EQ(parallel.digest, serial.digest)
          << (kind == scenario::EngineKind::kSync ? "sync" : "async")
          << " with " << threads << " threads";
      EXPECT_EQ(parallel.metrics.rounds, serial.metrics.rounds);
      EXPECT_TRUE(parallel.faults == serial.faults);
    }
  }
}

TEST(FaultDegradation, CrashedStationsOrphanBacklogAndDeadLinksDrop) {
  // An oversaturated reservation ring: every station is backlogged, so a
  // permanent crash strands that backlog as orphaned_pkts, its neighbors'
  // gossip into the dead station counts as drops, and the delivered ratio
  // falls below the fault-free run's.
  const Graph g = build_topology(TopologySpec{TopoKind::kRing, 32, 7});
  OpenLoopConfig config;
  config.offered = 2.0;
  config.horizon = 800;
  FaultPlan plan;
  plan.add({/*slot=*/400, FaultKind::kNodeCrash, /*id=*/5});
  const LoadReport faulted = run_open_loop(
      g, config, sim::DisciplineKind::kReservation, 7, nullptr, &plan);
  const LoadReport clean = run_open_loop(
      g, config, sim::DisciplineKind::kReservation, 7);
  EXPECT_GT(faulted.degradation.faults.orphaned_pkts, 0u);
  EXPECT_GT(faulted.degradation.faults.drops, 0u);
  EXPECT_EQ(faulted.degradation.faults.node_crashes, 1u);
  EXPECT_EQ(faulted.degradation.faults.nodes_down, 1u);
  EXPECT_LT(faulted.degradation.delivered_ratio,
            clean.degradation.delivered_ratio);
  // The fault-free report carries a zeroed degradation section.
  EXPECT_TRUE(clean.degradation.faults == sim::FaultStats{});
}

}  // namespace
}  // namespace mmn
