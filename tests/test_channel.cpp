// Tests for the channel-protocol toolbox: Capetanakis tree resolution,
// deterministic election, randomized (pseudo-Bayesian) scheduling, TDMA and
// the Greenberg–Ladner size estimator.
//
// Protocols are driven against a real Channel: each slot, every station
// decides via should_transmit, the slot resolves, and every station (plus a
// passive listener) observes the same outcome.  This is exactly how the
// engine drives them inside processes.
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "channel/capetanakis.hpp"
#include "channel/election.hpp"
#include "channel/pseudo_bayesian.hpp"
#include "channel/size_estimator.hpp"
#include "channel/tdma.hpp"
#include "sim/channel.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

using sim::Channel;
using sim::Packet;
using sim::SlotObservation;

/// Picks k distinct station ids out of [0, n).
std::vector<std::uint64_t> pick_ids(std::uint64_t n, std::size_t k,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::set<std::uint64_t> ids;
  while (ids.size() < k) ids.insert(rng.next_below(n));
  return {ids.begin(), ids.end()};
}

// --- Capetanakis ---------------------------------------------------------

struct CapetanakisRun {
  std::uint64_t slots = 0;
  std::vector<std::uint64_t> schedule;       // ids in success order
  std::vector<std::uint64_t> listener_view;  // as decoded by the listener
  std::uint64_t listener_done_slot = 0;
};

CapetanakisRun run_capetanakis(std::uint64_t n,
                               const std::vector<std::uint64_t>& ids,
                               bool massey_skip = false) {
  std::vector<CapetanakisResolver> stations;
  stations.reserve(ids.size());
  for (std::uint64_t id : ids) stations.emplace_back(n, id, massey_skip);
  CapetanakisResolver listener(n, std::nullopt, massey_skip);

  Channel channel;
  Metrics metrics;
  CapetanakisRun run;
  while (!listener.done()) {
    std::vector<std::size_t> writers;
    for (std::size_t s = 0; s < stations.size(); ++s) {
      if (stations[s].should_transmit()) {
        channel.write(static_cast<NodeId>(ids[s]),
                      Packet(1, {static_cast<sim::Word>(ids[s])}));
        writers.push_back(s);
      }
    }
    EXPECT_FALSE(listener.should_transmit());
    const SlotObservation obs = channel.resolve(metrics);
    for (std::size_t s = 0; s < stations.size(); ++s) {
      stations[s].observe(obs, obs.success() &&
                                   obs.writer == static_cast<NodeId>(ids[s]));
    }
    listener.observe(obs);
    if (obs.success()) run.schedule.push_back(obs.payload[0]);
    ++run.slots;
  }
  run.listener_done_slot = run.slots;
  for (const Packet& p : listener.successes()) {
    run.listener_view.push_back(p[0]);
  }
  // Contenders must agree they are done exactly when the listener is.
  for (const auto& s : stations) {
    EXPECT_TRUE(s.done());
    EXPECT_TRUE(s.succeeded());
  }
  return run;
}

struct CapetanakisCase {
  std::uint64_t n;
  std::size_t k;
  std::uint64_t seed;
};

class CapetanakisTest : public ::testing::TestWithParam<CapetanakisCase> {};

TEST_P(CapetanakisTest, SchedulesEveryStationExactlyOnce) {
  const auto& c = GetParam();
  const auto ids = pick_ids(c.n, c.k, c.seed);
  const CapetanakisRun run = run_capetanakis(c.n, ids);
  // Depth-first traversal of the id space yields the ids in sorted order.
  EXPECT_EQ(run.schedule, ids);
  EXPECT_EQ(run.listener_view, ids);
}

TEST_P(CapetanakisTest, SlotCountWithinTheoreticalBound) {
  const auto& c = GetParam();
  const auto ids = pick_ids(c.n, c.k, c.seed);
  const CapetanakisRun run = run_capetanakis(c.n, ids);
  // O(k log(n/k) + k); the DFS tree has at most 2k(log2(n/k)+2)+1 probes.
  const double bound =
      2.0 * static_cast<double>(c.k) *
          (std::max(1.0, std::log2(static_cast<double>(c.n) / c.k)) + 2.0) +
      1.0;
  EXPECT_LE(static_cast<double>(run.slots), bound)
      << "n=" << c.n << " k=" << c.k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CapetanakisTest,
    ::testing::Values(CapetanakisCase{16, 1, 1}, CapetanakisCase{16, 4, 2},
                      CapetanakisCase{16, 16, 3}, CapetanakisCase{64, 8, 4},
                      CapetanakisCase{256, 16, 5}, CapetanakisCase{256, 3, 6},
                      CapetanakisCase{1024, 32, 7},
                      CapetanakisCase{1024, 1, 8},
                      CapetanakisCase{4096, 64, 9},
                      CapetanakisCase{4096, 64, 10}));

TEST(Capetanakis, NoStationsResolvesInOneIdleSlot) {
  const CapetanakisRun run = run_capetanakis(64, {});
  EXPECT_EQ(run.slots, 1u);
  EXPECT_TRUE(run.schedule.empty());
}

TEST_P(CapetanakisTest, MasseySkipKeepsScheduleShrinksSlots) {
  const auto& c = GetParam();
  const auto ids = pick_ids(c.n, c.k, c.seed);
  const CapetanakisRun plain = run_capetanakis(c.n, ids, false);
  const CapetanakisRun skip = run_capetanakis(c.n, ids, true);
  EXPECT_EQ(skip.schedule, plain.schedule);
  EXPECT_LE(skip.slots, plain.slots);
}

TEST(Capetanakis, MasseySkipSavesOnSkewedPopulations) {
  // Both stations at the top of the id space: every split leaves the left
  // half idle and the right half doomed to collide — the skip removes all of
  // those doomed probes.
  const CapetanakisRun plain = run_capetanakis(1 << 16, {65534, 65535}, false);
  const CapetanakisRun skip = run_capetanakis(1 << 16, {65534, 65535}, true);
  EXPECT_EQ(plain.schedule, skip.schedule);
  EXPECT_LT(skip.slots, plain.slots);
}

TEST(Capetanakis, RejectsIdOutsideSpace) {
  EXPECT_THROW(CapetanakisResolver(8, 8), std::invalid_argument);
  EXPECT_NO_THROW(CapetanakisResolver(8, 7));
}

TEST(Capetanakis, DuplicateStationIdsAbort) {
  // Two stations sharing an id collide forever inside a singleton interval;
  // the resolver detects the model violation and aborts.
  CapetanakisResolver a(2, 1), b(2, 1);
  sim::Channel channel;
  Metrics metrics;
  auto drive = [&] {
    for (int i = 0; i < 10; ++i) {
      if (a.should_transmit()) channel.write(0, sim::Packet(1));
      if (b.should_transmit()) channel.write(1, sim::Packet(1));
      const auto obs = channel.resolve(metrics);
      a.observe(obs);
      b.observe(obs);
    }
  };
  EXPECT_DEATH(drive(), "duplicate station ids");
}

TEST(Capetanakis, ObserveAfterDoneThrows) {
  CapetanakisResolver r(4, std::nullopt);
  SlotObservation idle;
  r.observe(idle);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.observe(idle), std::invalid_argument);
}

// --- Election ------------------------------------------------------------

struct ElectionCase {
  std::uint64_t n;
  std::size_t k;
  std::uint64_t seed;
};

class ElectionTest : public ::testing::TestWithParam<ElectionCase> {};

TEST_P(ElectionTest, MaxIdWinsAndListenersDecodeIt) {
  const auto& c = GetParam();
  const auto ids = pick_ids(c.n, c.k, c.seed);
  std::vector<ChannelElection> stations;
  for (std::uint64_t id : ids) stations.emplace_back(c.n, id);
  ChannelElection listener(c.n, ChannelElection::kNoCandidate);

  Channel channel;
  Metrics metrics;
  int slots = 0;
  while (!listener.done()) {
    for (std::size_t s = 0; s < stations.size(); ++s) {
      if (stations[s].should_transmit()) {
        channel.write(static_cast<NodeId>(ids[s]), Packet(1));
      }
    }
    const SlotObservation obs = channel.resolve(metrics);
    for (auto& st : stations) st.observe(obs);
    listener.observe(obs);
    ++slots;
  }
  const std::uint64_t expected = *std::max_element(ids.begin(), ids.end());
  EXPECT_EQ(listener.leader(), expected);
  EXPECT_TRUE(listener.any_candidate());
  EXPECT_EQ(slots, listener.total_rounds());
  EXPECT_EQ(slots, c.n == 1 ? 1 : ilog2_ceil(c.n));
  int winners = 0;
  for (std::size_t s = 0; s < stations.size(); ++s) {
    EXPECT_EQ(stations[s].leader(), expected);
    if (stations[s].won()) {
      ++winners;
      EXPECT_EQ(ids[s], expected);
    }
  }
  EXPECT_EQ(winners, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElectionTest,
    ::testing::Values(ElectionCase{16, 1, 1}, ElectionCase{16, 16, 2},
                      ElectionCase{64, 5, 3}, ElectionCase{256, 100, 4},
                      ElectionCase{1024, 7, 5}, ElectionCase{1 << 16, 50, 6}));

TEST(Election, NoCandidates) {
  ChannelElection listener(16, ChannelElection::kNoCandidate);
  Channel channel;
  Metrics metrics;
  while (!listener.done()) {
    listener.observe(channel.resolve(metrics));
  }
  EXPECT_FALSE(listener.any_candidate());
}

// --- Randomized scheduler -------------------------------------------------

struct SchedulerRun {
  std::uint64_t slots = 0;
  std::size_t scheduled = 0;
};

SchedulerRun run_randomized(std::size_t k, double initial_backlog,
                            std::uint64_t seed) {
  Rng root(seed);
  std::vector<RandomizedScheduler> stations;
  std::vector<Rng> rngs;
  for (std::size_t s = 0; s < k; ++s) {
    stations.emplace_back(initial_backlog, true);
    rngs.push_back(root.fork(s));
  }
  RandomizedScheduler listener(initial_backlog, false);
  Rng listener_rng = root.fork(k + 1);

  Channel channel;
  Metrics metrics;
  SchedulerRun run;
  while (!listener.done()) {
    for (std::size_t s = 0; s < k; ++s) {
      if (stations[s].should_transmit(rngs[s])) {
        channel.write(static_cast<NodeId>(s), Packet(1, {static_cast<sim::Word>(s)}));
      }
    }
    EXPECT_FALSE(listener.should_transmit(listener_rng));
    const SlotObservation obs = channel.resolve(metrics);
    for (std::size_t s = 0; s < k; ++s) {
      stations[s].observe(obs, obs.success() && obs.writer == s);
    }
    listener.observe(obs);
    ++run.slots;
    if (run.slots >= 1000u + 100u * k) {
      ADD_FAILURE() << "scheduler not converging after " << run.slots
                    << " slots";
      break;
    }
  }
  run.scheduled = listener.successes().size();
  for (auto& st : stations) {
    EXPECT_TRUE(st.succeeded());
    EXPECT_TRUE(st.done());
  }
  return run;
}

TEST(RandomizedScheduler, SchedulesAllStations) {
  for (std::size_t k : {1u, 2u, 5u, 20u, 64u}) {
    const SchedulerRun run = run_randomized(k, static_cast<double>(k), 42 + k);
    EXPECT_EQ(run.scheduled, k);
  }
}

TEST(RandomizedScheduler, ZeroStationsTerminatesImmediately) {
  const SchedulerRun run = run_randomized(0, 4.0, 1);
  EXPECT_EQ(run.scheduled, 0u);
  EXPECT_EQ(run.slots, 2u);  // one empty contention slot + one idle busy slot
}

TEST(RandomizedScheduler, ExpectedSlotsPerStationIsConstant) {
  // Averaged over seeds, the contention lane achieves ~1/e throughput, so
  // total slots (both lanes) stay below ~8 per station.
  const std::size_t k = 50;
  double total_slots = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    total_slots += static_cast<double>(
        run_randomized(k, static_cast<double>(k), 1000 + t).slots);
  }
  const double per_station = total_slots / trials / static_cast<double>(k);
  EXPECT_LT(per_station, 8.0);
  EXPECT_GT(per_station, 2.0);  // both lanes cost at least 2k slots total
}

TEST(RandomizedScheduler, RobustToBadInitialEstimate) {
  // Pessimistic and optimistic initial backlogs must still converge.
  EXPECT_EQ(run_randomized(20, 1.0, 7).scheduled, 20u);
  EXPECT_EQ(run_randomized(3, 500.0, 8).scheduled, 3u);
}

// --- TDMA ----------------------------------------------------------------

TEST(Tdma, OwnerCycles) {
  const TdmaSchedule tdma(4);
  EXPECT_EQ(tdma.owner(0), 0u);
  EXPECT_EQ(tdma.owner(3), 3u);
  EXPECT_EQ(tdma.owner(4), 0u);
  EXPECT_TRUE(tdma.my_slot(6, 2));
  EXPECT_FALSE(tdma.my_slot(6, 3));
  EXPECT_EQ(tdma.cycle_length(), 4u);
}

TEST(Tdma, RejectsZeroStations) {
  EXPECT_THROW(TdmaSchedule(0), std::invalid_argument);
}

// --- Size estimator --------------------------------------------------------

std::uint64_t run_estimate(std::uint64_t n, std::uint64_t seed) {
  Rng root(seed);
  std::vector<SizeEstimator> nodes(n);
  std::vector<Rng> rngs;
  for (std::uint64_t v = 0; v < n; ++v) rngs.push_back(root.fork(v));
  Channel channel;
  Metrics metrics;
  while (!nodes[0].done()) {
    for (std::uint64_t v = 0; v < n; ++v) {
      if (nodes[v].should_transmit(rngs[v])) {
        channel.write(static_cast<NodeId>(v), Packet(1));
      }
    }
    const SlotObservation obs = channel.resolve(metrics);
    for (auto& node : nodes) node.observe(obs);
  }
  // Every node agrees on the estimate.
  for (auto& node : nodes) {
    EXPECT_TRUE(node.done());
    EXPECT_EQ(node.estimate(), nodes[0].estimate());
  }
  return nodes[0].estimate();
}

TEST(SizeEstimator, MedianEstimateWithinConstantFactor) {
  for (std::uint64_t n : {16ULL, 64ULL, 256ULL, 1024ULL}) {
    std::vector<std::uint64_t> estimates;
    for (std::uint64_t seed = 0; seed < 31; ++seed) {
      estimates.push_back(run_estimate(n, seed));
    }
    std::sort(estimates.begin(), estimates.end());
    const std::uint64_t median = estimates[estimates.size() / 2];
    EXPECT_GE(median, n / 16) << "n=" << n;
    EXPECT_LE(median, n * 16) << "n=" << n;
  }
}

TEST(SizeEstimator, RoundsAreLogLog) {
  // The protocol runs ~log2(n) rounds of coin flips (the first idle round).
  std::uint64_t max_rounds = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng root(seed);
    std::vector<SizeEstimator> nodes(1024);
    std::vector<Rng> rngs;
    for (std::uint64_t v = 0; v < 1024; ++v) rngs.push_back(root.fork(v));
    Channel channel;
    Metrics metrics;
    while (!nodes[0].done()) {
      for (std::uint64_t v = 0; v < 1024; ++v) {
        if (nodes[v].should_transmit(rngs[v])) {
          channel.write(static_cast<NodeId>(v), Packet(1));
        }
      }
      const auto obs = channel.resolve(metrics);
      for (auto& node : nodes) node.observe(obs);
    }
    max_rounds = std::max(max_rounds, static_cast<std::uint64_t>(nodes[0].rounds()));
  }
  EXPECT_LE(max_rounds, 24u);  // ~log2(1024) + tail
}

TEST(SizeEstimator, AccessorsRequireCompletion) {
  SizeEstimator est;
  EXPECT_THROW(est.estimate(), std::invalid_argument);
  EXPECT_THROW(est.rounds(), std::invalid_argument);
}

}  // namespace
}  // namespace mmn
