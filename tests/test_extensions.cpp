// Tests for the paper's "margin" features: the Willard-style randomized
// election (Section 2's O(log log n) citation) and the anonymous / unknown-n
// randomized partition (Section 4 remark + Section 7.4).
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "channel/randomized_election.hpp"
#include "core/anonymous.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "sim/channel.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

struct ElectionRun {
  std::uint64_t slots = 0;
  std::uint64_t winner_id = 0;
  int winners = 0;
};

ElectionRun run_election(std::size_t k, std::uint64_t seed) {
  Rng root(seed);
  std::vector<RandomizedElection> stations;
  std::vector<Rng> rngs;
  for (std::size_t s = 0; s < k; ++s) {
    stations.emplace_back(true);
    rngs.push_back(root.fork(s));
  }
  RandomizedElection listener(false);
  Rng lrng = root.fork(k + 99);

  sim::Channel channel;
  Metrics metrics;
  ElectionRun run;
  while (!listener.done()) {
    for (std::size_t s = 0; s < k; ++s) {
      if (stations[s].should_transmit(rngs[s])) {
        channel.write(static_cast<NodeId>(s),
                      sim::Packet(1, {static_cast<sim::Word>(s)}));
      }
    }
    EXPECT_FALSE(listener.should_transmit(lrng));
    const sim::SlotObservation obs = channel.resolve(metrics);
    for (std::size_t s = 0; s < k; ++s) {
      stations[s].observe(obs, obs.success() && obs.writer == s);
    }
    listener.observe(obs, false);
    ++run.slots;
    if (run.slots > 100000) {
      ADD_FAILURE() << "election not converging";
      break;
    }
  }
  run.winner_id = static_cast<std::uint64_t>(listener.winner_payload()[0]);
  for (std::size_t s = 0; s < k; ++s) {
    EXPECT_TRUE(stations[s].done());
    if (stations[s].won()) {
      ++run.winners;
      EXPECT_EQ(run.winner_id, s);
    }
  }
  return run;
}

TEST(RandomizedElection, ExactlyOneWinnerAllAgree) {
  for (std::size_t k : {1u, 2u, 7u, 50u, 500u, 4000u}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const ElectionRun run = run_election(k, seed * 77 + k);
      EXPECT_EQ(run.winners, 1) << "k=" << k << " seed=" << seed;
      EXPECT_LT(run.winner_id, k);
    }
  }
}

TEST(RandomizedElection, SlotCountGrowsDoublyLogarithmically) {
  // Expected O(log log n): averages should stay tiny and nearly flat in n.
  for (std::size_t k : {16u, 256u, 4096u}) {
    double slots = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      slots += static_cast<double>(run_election(k, 1000 + t).slots);
    }
    EXPECT_LT(slots / trials, 20.0) << "k=" << k;
  }
}

TEST(RandomizedElection, AccessorsRequireCompletion) {
  RandomizedElection e(true);
  EXPECT_THROW(e.won(), std::invalid_argument);
  EXPECT_THROW(e.winner_payload(), std::invalid_argument);
}

// --- anonymous partition ----------------------------------------------------

struct AnonRun {
  ForestStats stats;
  std::vector<NodeId> fragment;
  Forest forest;
  std::uint64_t estimate = 0;
};

AnonRun run_anonymous(const Graph& g, std::uint64_t seed) {
  sim::Engine engine(g, [](const sim::LocalView& v) {
    return std::make_unique<AnonymousPartitionProcess>(v);
  }, seed);
  engine.run(8'000'000);
  AnonRun run;
  const FragmentAccessor acc = direct_fragment_accessor();
  run.forest = collect_forest(engine, acc);
  run.fragment = collect_fragments(engine, acc);
  run.stats = analyze_forest(g, run.forest, "anonymous partition");
  run.estimate =
      static_cast<const AnonymousPartitionProcess&>(engine.process(0))
          .size_estimate();
  return run;
}

TEST(AnonymousPartition, SpanningForestWithEstimateScaledRadius) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const Graph g = random_connected(300, 450, seed);
    const AnonRun run = run_anonymous(g, seed * 13);
    EXPECT_GE(run.estimate, 1u);
    // The radius guarantee scales with the estimate the nodes agreed on.
    EXPECT_LE(run.stats.max_radius, 4 * isqrt_ceil(run.estimate))
        << "seed " << seed << " estimate " << run.estimate;
  }
}

TEST(AnonymousPartition, FragmentLabelsConsistentWithinTrees) {
  const Graph g = grid(12, 12, 3);
  const AnonRun run = run_anonymous(g, 5);
  // All nodes of one tree must report the identical (opaque) label, and
  // distinct trees must get distinct labels (whp for 63-bit random ids).
  std::map<NodeId, std::set<NodeId>> labels_by_root;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    labels_by_root[forest_root_of(run.forest, v)].insert(run.fragment[v]);
  }
  std::set<NodeId> all_labels;
  for (const auto& [root, labels] : labels_by_root) {
    EXPECT_EQ(labels.size(), 1u) << "tree of root " << root;
    all_labels.insert(*labels.begin());
  }
  EXPECT_EQ(all_labels.size(), labels_by_root.size());
}

TEST(AnonymousPartition, WorksOnTinyNetworks) {
  for (NodeId n : {1u, 2u, 3u, 5u}) {
    const Graph g = n == 1 ? Graph(1, {}) : path(n, 1);
    const AnonRun run = run_anonymous(g, 9 + n);
    EXPECT_GE(run.stats.num_trees, 1u);
  }
}

TEST(AnonymousPartition, DeterministicPerSeed) {
  const Graph g = random_connected(100, 140, 2);
  const AnonRun a = run_anonymous(g, 6);
  const AnonRun b = run_anonymous(g, 6);
  EXPECT_EQ(a.forest.parent, b.forest.parent);
  EXPECT_EQ(a.estimate, b.estimate);
}

}  // namespace
}  // namespace mmn
