// Payload interning: broadcast() stages ONE pooled payload behind deg(v)
// headers instead of deg(v) copies, on both engines.
//
// The synchronous path needs no refcounts — the flip recycles each round's
// pool wholesale, so every header of a round expires with the pool two flips
// later.  The asynchronous path does: payloads live in a refcounted
// PacketPool from commit to delivery, an interned broadcast slot is shared
// by deg(v) stamped headers, and the slot frees only when the LAST sharing
// header's delivery releases it.  This suite pins both lifetimes, the
// refcount mechanics, and — at engine level — that converting a manual
// per-link send loop to broadcast() is bit-identical (same headers, same
// RNG consumption, same metrics, same per-node delivery traces, under
// serial and parallel schedulers).
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/runtime_core.hpp"
#include "sim/scheduler.hpp"

namespace mmn::sim {
namespace {

// --- PacketPool refcount mechanics ----------------------------------------

TEST(PayloadInterning, PacketPoolRefcountLifecycle) {
  PacketPool pool;
  const PacketRef a = pool.acquire(Packet(1, {42}));
  EXPECT_EQ(pool.ref_count(a), 1u);
  EXPECT_EQ(pool.capacity(), 1u);
  EXPECT_EQ(pool.at(a)[0], 42);

  pool.add_ref(a);
  pool.add_ref(a);
  EXPECT_EQ(pool.ref_count(a), 3u);

  pool.release(a);
  pool.release(a);
  EXPECT_EQ(pool.ref_count(a), 1u);  // still live: two of three readers gone
  EXPECT_EQ(pool.at(a)[0], 42);

  pool.release(a);
  EXPECT_EQ(pool.ref_count(a), 0u);  // last reader frees the slot

  // The freed slot is reused before the pool grows: high-water capacity.
  const PacketRef b = pool.acquire(Packet(2, {7}));
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.capacity(), 1u);
  EXPECT_EQ(pool.ref_count(b), 1u);
  EXPECT_EQ(pool.at(b).type(), 2);
  EXPECT_EQ(pool.at(b)[0], 7);

  // A second live payload does grow the pool — slots are never shared
  // across distinct acquires.
  const PacketRef c = pool.acquire(Packet(3, {9}));
  EXPECT_NE(c, b);
  EXPECT_EQ(pool.capacity(), 2u);
}

// --- synchronous staging: one pooled payload per broadcast -----------------

TEST(PayloadInterning, SyncBroadcastStagesOnePayloadManyHeaders) {
  const Graph g = complete(5, 3);
  const LocalView view{0, 5, &g};
  Rng rng(1);
  const SlotObservation slot{};

  // broadcast(): one pool slot, deg(v) headers sharing its ref.
  ShardBuffer bcast;
  NodeContext bctx(view, rng, {}, slot, 0, bcast);
  bctx.broadcast(Packet(9, {5, 6}));
  ASSERT_EQ(bcast.outbox.size(), 4u);
  EXPECT_EQ(bcast.pool_used, 1u);
  EXPECT_EQ(bcast.p2p_sent, 4u);
  for (const MsgHeader& h : bcast.outbox) {
    EXPECT_EQ(h.ref, 0u);
    EXPECT_EQ(h.from, 0u);
  }

  // The manual loop stages deg(v) copies — same headers except the refs.
  ShardBuffer loop;
  NodeContext lctx(view, rng, {}, slot, 0, loop);
  for (const Neighbor& nb : view.links()) {
    lctx.send(nb.edge, Packet(9, {5, 6}));
  }
  ASSERT_EQ(loop.outbox.size(), 4u);
  EXPECT_EQ(loop.pool_used, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(bcast.outbox[i].to, loop.outbox[i].to) << i;
    EXPECT_EQ(bcast.outbox[i].via, loop.outbox[i].via) << i;
    EXPECT_EQ(loop.outbox[i].ref, static_cast<PacketRef>(i)) << i;
  }
}

TEST(PayloadInterning, FlipDeliversOneSharedPayloadToAllNeighbors) {
  const Graph g = complete(5, 3);
  const LocalView view{0, 5, &g};
  Rng rng(1);
  const SlotObservation slot{};
  MessageArena arena;
  arena.reset(5, 1);
  std::vector<ShardBuffer> shards(1);
  {
    NodeContext ctx(view, rng, {}, slot, 0, shards[0]);
    ctx.broadcast(Packet(9, {5, 6}));
  }
  arena.flip(shards);

  // Every neighbor received exactly one message, and all four delivery
  // records point at the SAME pooled Packet object — the interned slot.
  const Packet* shared = nullptr;
  for (NodeId v = 1; v < 5; ++v) {
    const auto inbox = arena.inbox(v);
    ASSERT_EQ(inbox.size(), 1u) << "node " << v;
    const Received& r = inbox[0];
    EXPECT_EQ(r.from, 0u);
    EXPECT_EQ(r.packet().type(), 9);
    EXPECT_EQ(r.packet()[0], 5);
    EXPECT_EQ(r.packet()[1], 6);
    if (shared == nullptr) {
      shared = r.pkt;
    } else {
      EXPECT_EQ(r.pkt, shared) << "node " << v << " got a payload copy";
    }
  }
  EXPECT_TRUE(arena.inbox(0).empty());
}

// --- asynchronous lifetime: commit -> delivery -> release ------------------

TEST(PayloadInterning, SlotBucketsSharedSlotLivesUntilNextStage) {
  SlotBuckets buckets;
  buckets.reset(/*n=*/8, /*ticks_per_slot=*/16, /*ring_slots=*/4);

  // One broadcast committed as push + deg-1 push_shared: due ticks 5/6/7
  // all fall into slot 0.
  const PacketRef pooled =
      buckets.push(AsyncMsgHeader{5, 1, 0, EdgeId{0}, 0}, Packet(3, {11}));
  buckets.push_shared(AsyncMsgHeader{6, 2, 0, EdgeId{1}, 0}, pooled);
  buckets.push_shared(AsyncMsgHeader{7, 3, 0, EdgeId{2}, 0}, pooled);
  EXPECT_EQ(buckets.pool().ref_count(pooled), 3u);
  EXPECT_EQ(buckets.pool().capacity(), 1u);  // ONE slot for three headers
  EXPECT_EQ(buckets.in_flight(), 3u);

  // Staging the slot moves only headers; the staged table keeps all three
  // refs alive — deliveries read the payload through them.
  ASSERT_EQ(buckets.stage(0), 3u);
  EXPECT_EQ(buckets.in_flight(), 0u);
  EXPECT_EQ(buckets.pool().ref_count(pooled), 3u);
  for (NodeId v = 1; v <= 3; ++v) {
    const auto inbox = buckets.inbox(v);
    ASSERT_EQ(inbox.size(), 1u) << "node " << v;
    EXPECT_EQ(inbox[0].ref, pooled);
    EXPECT_EQ(buckets.payload(inbox[0].ref).type(), 3);
    EXPECT_EQ(buckets.payload(inbox[0].ref)[0], 11);
  }

  // The NEXT stage retires the table: each header drops its reader and the
  // interned slot frees on the last one.
  EXPECT_EQ(buckets.stage(1), 0u);
  EXPECT_EQ(buckets.pool().ref_count(pooled), 0u);

  // Warm pool: a later commit reuses the freed slot, capacity stays 1.
  const PacketRef again =
      buckets.push(AsyncMsgHeader{33, 4, 0, EdgeId{3}, 0}, Packet(4, {12}));
  EXPECT_EQ(again, pooled);
  EXPECT_EQ(buckets.pool().capacity(), 1u);
}

// --- engine-level equivalence: broadcast() == manual per-link loop ---------

using DeliveryTrace = std::vector<std::tuple<NodeId, EdgeId, Word>>;

/// Round 0: cast a node-specific packet to every neighbor (by loop or by
/// broadcast); rounds 0..2: record every delivery (sender, link, first word).
template <bool kUseBroadcast>
class SyncCaster final : public Process {
 public:
  explicit SyncCaster(const LocalView& view) : view_(view) {}

  void round(NodeContext& ctx) override {
    if (ctx.round() == 0) {
      const Packet p(7, {static_cast<Word>(view_.self * 3 + 1)});
      if constexpr (kUseBroadcast) {
        ctx.broadcast(p);
      } else {
        for (const Neighbor& nb : view_.links()) ctx.send(nb.edge, p);
      }
    }
    for (const Received& r : ctx.inbox()) {
      trace_.emplace_back(r.from, r.via, r.packet()[0]);
    }
    done_ = ctx.round() >= 2;
  }

  bool finished() const override { return done_; }

  const LocalView& view_;
  DeliveryTrace trace_;
  bool done_ = false;
};

TEST(PayloadInterning, SyncBroadcastBitIdenticalToManualLoop) {
  const Graph g = random_connected(64, 128, 17);
  const auto loop_factory = [](const LocalView& v) {
    return std::make_unique<SyncCaster<false>>(v);
  };
  const auto bcast_factory = [](const LocalView& v) {
    return std::make_unique<SyncCaster<true>>(v);
  };
  for (unsigned threads : {1u, 4u}) {
    auto sched = [&]() -> std::unique_ptr<Scheduler> {
      return threads <= 1 ? nullptr : make_scheduler(threads);
    };
    Engine loop(g, loop_factory, 17, sched());
    loop.run(100);
    Engine bcast(g, bcast_factory, 17, sched());
    bcast.run(100);
    EXPECT_TRUE(loop.metrics() == bcast.metrics()) << threads << " threads";
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a = static_cast<const SyncCaster<false>&>(loop.process(v));
      const auto& b = static_cast<const SyncCaster<true>&>(bcast.process(v));
      EXPECT_EQ(a.trace_, b.trace_) << "node " << v << ", " << threads;
    }
  }
}

/// start(): cast to every neighbor (by loop or broadcast).  The async
/// broadcast draws each neighbor's delay in ascending link order — the
/// exact RNG consumption of the manual loop — so traces must match bit
/// for bit, delivery times included.
template <bool kUseBroadcast>
class AsyncCaster final : public AsyncProcess {
 public:
  explicit AsyncCaster(const LocalView& view) : view_(view) {}

  void start(AsyncContext& ctx) override {
    const Packet p(8, {static_cast<Word>(view_.self + 100)});
    if constexpr (kUseBroadcast) {
      ctx.broadcast(p);
    } else {
      for (const Neighbor& nb : view_.links()) ctx.send(nb.edge, p);
    }
  }

  void on_message(const Received& msg, AsyncContext&) override {
    trace_.emplace_back(msg.from, msg.via, msg.packet()[0]);
  }

  void on_slot(const SlotObservation&, AsyncContext&) override { ++slots_; }

  bool finished() const override { return slots_ >= 4; }

  const LocalView& view_;
  DeliveryTrace trace_;
  std::uint64_t slots_ = 0;
};

TEST(PayloadInterning, AsyncBroadcastBitIdenticalToManualLoop) {
  const Graph g = random_connected(64, 128, 19);
  const auto loop_factory = [](const LocalView& v) {
    return std::make_unique<AsyncCaster<false>>(v);
  };
  const auto bcast_factory = [](const LocalView& v) {
    return std::make_unique<AsyncCaster<true>>(v);
  };
  for (unsigned threads : {1u, 4u}) {
    auto sched = [&]() -> std::unique_ptr<Scheduler> {
      return threads <= 1 ? nullptr : make_scheduler(threads);
    };
    AsyncEngine loop(g, loop_factory, 19, /*max_delay_slots=*/3, sched());
    loop.run(10'000);
    ASSERT_EQ(loop.status(), AsyncEngine::RunStatus::kCompleted);
    AsyncEngine bcast(g, bcast_factory, 19, /*max_delay_slots=*/3, sched());
    bcast.run(10'000);
    ASSERT_EQ(bcast.status(), AsyncEngine::RunStatus::kCompleted);
    EXPECT_TRUE(loop.metrics() == bcast.metrics()) << threads << " threads";
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a = static_cast<const AsyncCaster<false>&>(loop.process(v));
      const auto& b = static_cast<const AsyncCaster<true>&>(bcast.process(v));
      EXPECT_EQ(a.trace_, b.trace_) << "node " << v << ", " << threads;
    }
  }
}

}  // namespace
}  // namespace mmn::sim
