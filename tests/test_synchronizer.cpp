// Tests for the channel synchronizer (Section 7.1, Corollary 4): any
// synchronous channel-free protocol runs unchanged on the asynchronous
// engine, produces identical results, costs exactly 2x the messages (one
// acknowledgement each) and a constant number of slots per simulated round.
#include <memory>

#include <gtest/gtest.h>

#include "baselines/p2p_global.hpp"
#include "core/stepped.hpp"
#include "core/synchronizer.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

using sim::Word;

std::vector<Word> make_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> inputs(n);
  for (NodeId v = 0; v < n; ++v) {
    inputs[v] = static_cast<Word>(rng.next_below(100'000)) + 1;
  }
  return inputs;
}

struct ComparedRun {
  Word sync_result = 0;
  Word async_result = 0;
  Metrics sync_metrics;
  Metrics async_metrics;
};

ComparedRun run_compared(const Graph& g, std::uint32_t max_delay_slots) {
  const auto inputs = make_inputs(g.num_nodes(), 9);
  P2pGlobalConfig config;
  config.op = SemigroupOp::kSum;
  auto factory = [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    return std::make_unique<P2pGlobalProcess>(v, config, inputs[v.self]);
  };

  ComparedRun run;
  sim::Engine sync_engine(g, factory, 5);
  run.sync_metrics = sync_engine.run(1'000'000);
  run.sync_result =
      static_cast<const P2pGlobalProcess&>(sync_engine.process(0)).result();

  sim::AsyncEngine async_engine(g, synchronize(factory), 5, max_delay_slots);
  run.async_metrics = async_engine.run(10'000'000);
  const auto& wrapper =
      static_cast<const SynchronizerProcess&>(async_engine.process(0));
  run.async_result =
      static_cast<const P2pGlobalProcess&>(wrapper.inner()).result();
  return run;
}

TEST(Synchronizer, IdenticalResultsAcrossDelays) {
  const Graph g = random_connected(40, 50, 3);
  const auto inputs = make_inputs(40, 9);
  Word expected = inputs[0];
  for (NodeId v = 1; v < 40; ++v) {
    expected = semigroup_apply(SemigroupOp::kSum, expected, inputs[v]);
  }
  for (std::uint32_t delay : {1u, 2u, 5u}) {
    const ComparedRun run = run_compared(g, delay);
    EXPECT_EQ(run.sync_result, expected) << "delay " << delay;
    EXPECT_EQ(run.async_result, expected) << "delay " << delay;
  }
}

TEST(Synchronizer, MessageOverheadIsExactlyTwofold) {
  const Graph g = grid(6, 6, 2);
  const ComparedRun run = run_compared(g, 1);
  EXPECT_EQ(run.async_metrics.p2p_messages, 2 * run.sync_metrics.p2p_messages);
}

TEST(Synchronizer, ConstantSlotsPerRoundAtUnitDelay) {
  // With delay <= 1 slot (the paper's time-accounting assumption), each
  // simulated round costs a small constant number of slots.
  const Graph g = ring(30, 1);
  const ComparedRun run = run_compared(g, 1);
  const double ratio = static_cast<double>(run.async_metrics.rounds) /
                       static_cast<double>(run.sync_metrics.rounds);
  EXPECT_LE(ratio, 6.0);
  EXPECT_GE(ratio, 1.0);
}

TEST(Synchronizer, TimeScalesWithDelayBound) {
  const Graph g = ring(30, 1);
  const ComparedRun fast = run_compared(g, 1);
  const ComparedRun slow = run_compared(g, 6);
  EXPECT_GT(slow.async_metrics.rounds, fast.async_metrics.rounds);
}

/// A protocol that illegally writes the channel.
class ChannelAbuser final : public sim::Process {
 public:
  void round(sim::NodeContext& ctx) override {
    ctx.channel_write(sim::Packet(1));
    done_ = true;
  }
  bool finished() const override { return done_; }
  bool done_ = false;
};

TEST(Synchronizer, RejectsChannelUse) {
  const Graph g = path(2, 1);
  sim::AsyncEngine engine(
      g,
      synchronize([](const sim::LocalView&) -> std::unique_ptr<sim::Process> {
        return std::make_unique<ChannelAbuser>();
      }),
      1, 1);
  EXPECT_THROW(engine.run(100), std::invalid_argument);
}

/// A protocol using a reserved packet type.
class ReservedTypeAbuser final : public sim::Process {
 public:
  explicit ReservedTypeAbuser(const sim::LocalView& view) : view_(view) {}
  void round(sim::NodeContext& ctx) override {
    if (!view_.links().empty()) {
      ctx.send(view_.links()[0].edge, sim::Packet(0xFFFE));
    }
    done_ = true;
  }
  bool finished() const override { return done_; }
  const sim::LocalView& view_;
  bool done_ = false;
};

TEST(Synchronizer, RejectsReservedPacketTypes) {
  const Graph g = path(2, 1);
  sim::AsyncEngine engine(
      g,
      synchronize([](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
        return std::make_unique<ReservedTypeAbuser>(v);
      }),
      1, 1);
  EXPECT_THROW(engine.run(100), std::invalid_argument);
}

TEST(Synchronizer, PulsesMatchSynchronousRounds) {
  const Graph g = path(10, 1);
  const auto inputs = make_inputs(10, 9);
  P2pGlobalConfig config;
  config.op = SemigroupOp::kMin;
  auto factory = [&](const sim::LocalView& v) -> std::unique_ptr<sim::Process> {
    return std::make_unique<P2pGlobalProcess>(v, config, inputs[v.self]);
  };
  sim::Engine sync_engine(g, factory, 5);
  const Metrics sync_metrics = sync_engine.run(100'000);

  sim::AsyncEngine async_engine(g, synchronize(factory), 5, 1);
  async_engine.run(1'000'000);
  const auto& wrapper =
      static_cast<const SynchronizerProcess&>(async_engine.process(0));
  // The synchronizer drives exactly as many pulses as the synchronous run
  // has rounds (within the one-round slack of engine termination).
  EXPECT_NEAR(static_cast<double>(wrapper.pulses()),
              static_cast<double>(sync_metrics.rounds), 2.0);
}

}  // namespace
}  // namespace mmn
