// Zero-allocation steady state: after a warm-up window every per-round
// structure — the arena's header buffers, the recycled packet pools, the
// slot-bucket ring, the shard staging vectors, the discipline's slot state —
// sits at its high-water-mark capacity, so a steady-traffic run performs no
// heap allocation per round.  The traffic alternates per-link sends and
// broadcast() each round/slot, so the guarantee covers the interned-payload
// path (one pooled payload behind deg(v) headers, refcounted on the async
// side) as well as the copying path.  This file instruments the global
// operator new
// (it links into its own test binary; the counter covers every allocation in
// the process, from any thread) and asserts the count stays zero across a
// post-warm-up window on both engines, serial and 4-thread.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include <gtest/gtest.h>

#include "core/openloop.hpp"
#include "graph/generators.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void note_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_alloc(std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* checked_aligned_alloc(std::size_t size, std::size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : 1) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

// Every replaceable form the library can reach: vectors of the
// cache-line-aligned ShardBuffer go through the align_val_t overloads.
void* operator new(std::size_t size) { return checked_alloc(size); }
void* operator new[](std::size_t size) { return checked_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return checked_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return checked_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mmn::sim {
namespace {

constexpr std::uint64_t kWarmupRounds = 64;
constexpr std::uint64_t kMeasuredRounds = 256;

/// Steady synchronous traffic: every node messages all neighbors every
/// round — alternating per-link sends and broadcast() by round parity, so
/// the zero-allocation window covers both staging paths (deg payload
/// copies vs one interned payload) — every third node contends for the
/// channel, and the inbox is read word by word.  Never finishes — the test
/// drives it with step().
class ChatterProcess final : public Process {
 public:
  explicit ChatterProcess(const LocalView& view) : view_(view) {}

  void round(NodeContext& ctx) override {
    const Packet p(1, {static_cast<Word>(ctx.round() & 0xFF),
                       static_cast<Word>(view_.self)});
    if (ctx.round() % 2 == 0) {
      ctx.broadcast(p);
    } else {
      for (const Neighbor& nb : view_.links()) ctx.send(nb.edge, p);
    }
    if (view_.self % 3 == 0) {
      ctx.channel_write(Packet(2, {static_cast<Word>(view_.self)}));
    }
    for (const Received& r : ctx.inbox()) sum_ += r.packet()[0];
  }

  bool finished() const override { return false; }

 private:
  const LocalView& view_;
  Word sum_ = 0;
};

/// Steady asynchronous traffic: every slot boundary re-sends to all
/// neighbors — alternating broadcast() and per-link sends by slot parity,
/// so the window covers both the interned (push + push_shared refcounted
/// pool slot) and the copying commit path — and contends for the channel;
/// deliveries are read and fuel no further cascades (the per-slot volume
/// stays constant).
class AsyncChatterProcess final : public AsyncProcess {
 public:
  explicit AsyncChatterProcess(const LocalView& view) : view_(view) {}

  void start(AsyncContext& ctx) override { blast(ctx); }

  void on_message(const Received& msg, AsyncContext&) override {
    sum_ += msg.packet()[0];
  }

  void on_slot(const SlotObservation&, AsyncContext& ctx) override {
    blast(ctx);
    if (view_.self % 3 == 0) {
      ctx.channel_write(Packet(2, {static_cast<Word>(view_.self)}));
    }
  }

  bool finished() const override { return false; }

 private:
  void blast(AsyncContext& ctx) {
    const Packet p(1, {static_cast<Word>(view_.self)});
    if (ctx.slot_index() % 2 == 0) {
      ctx.broadcast(p);
    } else {
      for (const Neighbor& nb : view_.links()) ctx.send(nb.edge, p);
    }
  }

  const LocalView& view_;
  Word sum_ = 0;
};

std::uint64_t measure(const std::function<void(std::uint64_t)>& run_rounds) {
  run_rounds(kWarmupRounds);
  g_allocs.store(0);
  g_counting.store(true);
  run_rounds(kMeasuredRounds);
  g_counting.store(false);
  return g_allocs.load();
}

TEST(SteadyStateAllocation, SyncEngineAllocatesNothingPerRound) {
  for (unsigned threads : {1u, 4u}) {
    const Graph g = random_connected(96, 192, 11);
    Engine engine(g, [](const LocalView& v) {
      return std::make_unique<ChatterProcess>(v);
    }, 11, threads <= 1 ? nullptr : make_scheduler(threads));
    const std::uint64_t allocs =
        measure([&engine](std::uint64_t rounds) { engine.step(rounds); });
    EXPECT_EQ(allocs, 0u)
        << allocs << " heap allocations in " << kMeasuredRounds
        << " steady-state rounds with " << threads << " thread(s)";
  }
}

TEST(SteadyStateAllocation, AsyncEngineAllocatesNothingPerSlot) {
  for (unsigned threads : {1u, 4u}) {
    const Graph g = random_connected(96, 192, 11);
    AsyncEngine engine(g, [](const LocalView& v) {
      return std::make_unique<AsyncChatterProcess>(v);
    }, 11, /*max_delay_slots=*/2,
        threads <= 1 ? nullptr : make_scheduler(threads));
    const std::uint64_t allocs =
        measure([&engine](std::uint64_t slots) { engine.step(slots); });
    EXPECT_EQ(allocs, 0u)
        << allocs << " heap allocations in " << kMeasuredRounds
        << " steady-state slots with " << threads << " thread(s)";
  }
}

/// A churn plan whose events span warmup AND measured window: link outage
/// windows cycling every 32 slots plus rate-driven station crash/recover
/// pairs.  All FaultRuntime state (overlay bitsets, the sorted event list)
/// is sized at install_faults; applying events, dropping dead-link sends,
/// stifling crashed stations, and skipping crashed nodes are all in-place
/// flips — so warmed-up churn rounds must stay at zero allocations, same
/// as fault-free steady state (epoch compaction, the one allocating fault
/// operation, only runs at explicit compact() calls, never per round).
mmn::sim::FaultPlan churn_plan(const Graph& g, std::uint64_t horizon) {
  FaultPlan plan;
  plan.add_outage_windows(/*link=*/0, /*first_down=*/8, /*down_slots=*/16,
                          /*up_slots=*/16, horizon);
  plan.merge(FaultPlan::node_churn(g, /*rate=*/0.02, /*down_slots=*/24,
                                   horizon, 11));
  return plan;
}

TEST(SteadyStateAllocation, SyncChurnRoundsAllocateNothing) {
  for (unsigned threads : {1u, 4u}) {
    const Graph g = random_connected(96, 192, 11);
    Engine engine(g, [](const LocalView& v) {
      return std::make_unique<ChatterProcess>(v);
    }, 11, threads <= 1 ? nullptr : make_scheduler(threads));
    engine.install_faults(
        churn_plan(g, kWarmupRounds + kMeasuredRounds + 64));
    const std::uint64_t allocs =
        measure([&engine](std::uint64_t rounds) { engine.step(rounds); });
    EXPECT_EQ(allocs, 0u)
        << allocs << " heap allocations in " << kMeasuredRounds
        << " churn rounds with " << threads << " thread(s)";
  }
}

TEST(SteadyStateAllocation, AsyncChurnSlotsAllocateNothing) {
  for (unsigned threads : {1u, 4u}) {
    const Graph g = random_connected(96, 192, 11);
    AsyncEngine engine(g, [](const LocalView& v) {
      return std::make_unique<AsyncChatterProcess>(v);
    }, 11, /*max_delay_slots=*/2,
        threads <= 1 ? nullptr : make_scheduler(threads));
    engine.install_faults(
        churn_plan(g, kWarmupRounds + kMeasuredRounds + 64));
    const std::uint64_t allocs =
        measure([&engine](std::uint64_t slots) { engine.step(slots); });
    EXPECT_EQ(allocs, 0u)
        << allocs << " heap allocations in " << kMeasuredRounds
        << " churn slots with " << threads << " thread(s)";
  }
}

TEST(SteadyStateAllocation, OpenLoopRecorderAllocatesNothingPerRound) {
  // The open-loop load path end to end: constant-rate arrivals, per-class
  // FIFOs, the reservation grant ring, delivery gossip, and every
  // record_latency() into the shard's LatencyBlock.  The constant source
  // is periodic and the load is under the reservation capacity, so the
  // queues and pools reach their high-water capacity during a long warmup
  // and the measured window must not allocate — pinning the LatencyRecorder
  // claim in sim/traffic.hpp on the real delivery hot path.
  constexpr std::uint64_t kOpenLoopWarmup = 2048;
  for (unsigned threads : {1u, 4u}) {
    const Graph g = build_topology(TopologySpec{TopoKind::kRing, 64, 11});
    mmn::OpenLoopConfig config;
    config.arrivals = ArrivalKind::kConstant;
    config.offered = 0.4;
    config.horizon = ~std::uint64_t{0};  // never finishes; step() drives it
    Engine engine(g, mmn::make_open_loop_factory(config), 11,
                  threads <= 1 ? nullptr : make_scheduler(threads),
                  make_discipline(DisciplineKind::kReservation,
                                  UnslottedConfig{}, 11));
    engine.step(kOpenLoopWarmup);
    g_allocs.store(0);
    g_counting.store(true);
    engine.step(kMeasuredRounds);
    g_counting.store(false);
    const std::uint64_t allocs = g_allocs.load();
    EXPECT_EQ(allocs, 0u)
        << allocs << " heap allocations in " << kMeasuredRounds
        << " steady open-loop rounds with " << threads << " thread(s)";
  }
}

}  // namespace
}  // namespace mmn::sim
