// Tests for the simulation kernel: packet bounds, channel slot resolution,
// synchronous engine delivery semantics, and the asynchronous engine
// (slot-phase delivery, cross-slot delay bounds, graceful slot caps).
#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/async_engine.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace mmn::sim {
namespace {

TEST(Packet, HoldsWordsUpToLimit) {
  Packet p(7, {1, 2, 3});
  EXPECT_EQ(p.type(), 7);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[2], 3);
  for (std::size_t i = p.size(); i < Packet::kMaxWords; ++i) p.push(0);
  EXPECT_EQ(p.size(), Packet::kMaxWords);
}

TEST(Packet, ConstructionBeyondLimitThrows) {
  // The O(log n) bound is enforced at the cold boundaries: word-list
  // construction here, and every send/channel-write commit (tested below by
  // OversizedPacketRejectedAtSendCommit).  Per-word push/operator[] checks
  // are debug-only MMN_DCHECKs that compile out in release builds.
  EXPECT_THROW(Packet(1, {1, 2, 3, 4, 5, 6, 7, 8, 9}), std::invalid_argument);
}

#ifndef NDEBUG
TEST(Packet, DebugBuildChecksPerWordAccess) {
  Packet p(1, {5});
  EXPECT_DEATH(p[1], "out of range");
  for (std::size_t i = p.size(); i < Packet::kMaxWords; ++i) p.push(0);
  EXPECT_DEATH(p.push(1), "O\\(log n\\) bound");
}
#endif

TEST(Packet, Equality) {
  EXPECT_EQ(Packet(1, {2, 3}), Packet(1, {2, 3}));
  EXPECT_FALSE(Packet(1, {2, 3}) == Packet(1, {2}));
  EXPECT_FALSE(Packet(1, {2, 3}) == Packet(2, {2, 3}));
}

TEST(Channel, SlotResolution) {
  Channel ch;
  Metrics m;
  // Zero writers -> idle.
  EXPECT_TRUE(ch.resolve(m).idle());
  // One writer -> success with payload.
  ch.write(3, Packet(9, {42}));
  const SlotObservation succ = ch.resolve(m);
  EXPECT_TRUE(succ.success());
  EXPECT_EQ(succ.writer, 3u);
  EXPECT_EQ(succ.payload[0], 42);
  // Two writers -> collision; payload not exposed.
  ch.write(1, Packet(9, {1}));
  ch.write(2, Packet(9, {2}));
  EXPECT_TRUE(ch.resolve(m).collision());
  EXPECT_EQ(m.slots_idle, 1u);
  EXPECT_EQ(m.slots_success, 1u);
  EXPECT_EQ(m.slots_collision, 1u);
}

TEST(Channel, ResetsBetweenSlots) {
  Channel ch;
  Metrics m;
  ch.write(0, Packet(1, {7}));
  ch.resolve(m);
  EXPECT_TRUE(ch.resolve(m).idle());  // previous write must not leak
}

// --- toy processes -------------------------------------------------------

constexpr std::uint16_t kPing = 1;

/// Node 0 sends a ping on its first link in round 0; everyone records inbox.
/// Payloads are copied out of the inbox: a Received's packet pointer is only
/// valid for the duration of the round call (the arena pool is recycled).
class PingProcess final : public Process {
 public:
  struct Recorded {
    NodeId from;
    Packet packet;
  };

  explicit PingProcess(const LocalView& view) : view_(view) {}

  void round(NodeContext& ctx) override {
    if (ctx.round() == 0 && view_.self == 0) {
      ctx.send(view_.links()[0].edge, Packet(kPing, {123}));
      EXPECT_TRUE(ctx.sent_message());
    }
    for (const Received& r : ctx.inbox()) {
      received_.push_back(Recorded{r.from, r.packet()});
      received_round_ = ctx.round();
    }
    done_ = ctx.round() >= 2;
  }

  bool finished() const override { return done_; }

  const LocalView& view_;
  std::vector<Recorded> received_;
  std::uint64_t received_round_ = 0;
  bool done_ = false;
};

TEST(Engine, DeliversMessagesNextRound) {
  const Graph g = path(3, 1);
  Engine engine(g, [](const LocalView& v) {
    return std::make_unique<PingProcess>(v);
  }, 7);
  engine.run(10);
  const auto& p1 = static_cast<const PingProcess&>(engine.process(1));
  ASSERT_EQ(p1.received_.size(), 1u);
  EXPECT_EQ(p1.received_[0].from, 0u);
  EXPECT_EQ(p1.received_[0].packet.type(), kPing);
  EXPECT_EQ(p1.received_[0].packet[0], 123);
  EXPECT_EQ(p1.received_round_, 1u);  // sent in round 0, delivered in round 1
  const auto& p2 = static_cast<const PingProcess&>(engine.process(2));
  EXPECT_TRUE(p2.received_.empty());
}

/// Every node writes to the channel in round 0; checks collision observed by
/// all in round 1.  In round 2 only node 0 writes; success observed round 3.
class ChannelProbeProcess final : public Process {
 public:
  explicit ChannelProbeProcess(const LocalView& view) : view_(view) {}

  void round(NodeContext& ctx) override {
    switch (ctx.round()) {
      case 0:
        ctx.channel_write(Packet(2, {static_cast<Word>(view_.self)}));
        break;
      case 1:
        saw_collision_ = ctx.slot().collision();
        break;
      case 2:
        if (view_.self == 0) ctx.channel_write(Packet(3, {99}));
        break;
      case 3:
        saw_success_ = ctx.slot().success() && ctx.slot().payload[0] == 99 &&
                       ctx.slot().writer == 0;
        done_ = true;
        break;
      default:
        break;
    }
  }

  bool finished() const override { return done_; }

  const LocalView& view_;
  bool saw_collision_ = false;
  bool saw_success_ = false;
  bool done_ = false;
};

TEST(Engine, ChannelObservedByAllNodes) {
  const Graph g = ring(5, 1);
  Engine engine(g, [](const LocalView& v) {
    return std::make_unique<ChannelProbeProcess>(v);
  }, 7);
  engine.run(10);
  for (NodeId v = 0; v < 5; ++v) {
    const auto& p = static_cast<const ChannelProbeProcess&>(engine.process(v));
    EXPECT_TRUE(p.saw_collision_) << v;
    EXPECT_TRUE(p.saw_success_) << v;
  }
  EXPECT_GE(engine.metrics().slots_collision, 1u);
  EXPECT_GE(engine.metrics().slots_success, 1u);
}

/// Writes twice per round to verify the one-write-per-slot precondition.
class DoubleWriteProcess final : public Process {
 public:
  explicit DoubleWriteProcess(const LocalView&) {}
  void round(NodeContext& ctx) override {
    ctx.channel_write(Packet(1));
    EXPECT_THROW(ctx.channel_write(Packet(1)), std::invalid_argument);
    done_ = true;
  }
  bool finished() const override { return done_; }
  bool done_ = false;
};

TEST(Engine, RejectsSecondChannelWriteInSlot) {
  const Graph g = path(2, 1);
  Engine engine(g, [](const LocalView& v) {
    return std::make_unique<DoubleWriteProcess>(v);
  }, 7);
  engine.run(5);
}

/// Sends over a non-incident edge to verify the precondition check.
class BadSendProcess final : public Process {
 public:
  explicit BadSendProcess(const LocalView& view) : view_(view) {}
  void round(NodeContext& ctx) override {
    if (view_.self == 0) {
      // Edge 1 joins nodes 1 and 2 in a path of 3 — not incident to node 0.
      EXPECT_THROW(ctx.send(EdgeId{1}, Packet(1)), std::invalid_argument);
    }
    done_ = true;
  }
  bool finished() const override { return done_; }
  const LocalView& view_;
  bool done_ = false;
};

TEST(Engine, RejectsSendOverNonIncidentLink) {
  const Graph g = path(3, 1);
  Engine engine(g, [](const LocalView& v) {
    return std::make_unique<BadSendProcess>(v);
  }, 7);
  engine.run(5);
}

#ifdef NDEBUG
/// Builds a packet past the O(log n) bound (possible only in release builds,
/// where the per-word push check compiles out) and verifies the bound is
/// still enforced at the send commit.
class OversizeSendProcess final : public Process {
 public:
  explicit OversizeSendProcess(const LocalView& view) : view_(view) {}
  void round(NodeContext& ctx) override {
    Packet p(1);
    for (std::size_t i = 0; i <= Packet::kMaxWords; ++i) {
      p.push(static_cast<Word>(i));
    }
    EXPECT_GT(p.size(), Packet::kMaxWords);
    EXPECT_THROW(ctx.send(view_.links()[0].edge, p), std::invalid_argument);
    EXPECT_THROW(ctx.channel_write(p), std::invalid_argument);
    done_ = true;
  }
  bool finished() const override { return done_; }
  const LocalView& view_;
  bool done_ = false;
};

TEST(Engine, OversizedPacketRejectedAtSendCommit) {
  const Graph g = path(2, 1);
  Engine engine(g, [](const LocalView& v) {
    return std::make_unique<OversizeSendProcess>(v);
  }, 7);
  engine.run(5);
}
#endif

TEST(Engine, EveryRoundResolvesExactlyOneSlot) {
  // Global accounting invariant: rounds == idle + success + collision slots.
  const Graph g = ring(7, 1);
  sim::Engine engine(g, [](const LocalView& v) {
    return std::make_unique<ChannelProbeProcess>(v);
  }, 7);
  const Metrics m = engine.run(100);
  EXPECT_EQ(m.rounds, m.slots_idle + m.slots_success + m.slots_collision);
}

TEST(Engine, MetricsCountRoundsAndMessages) {
  const Graph g = path(3, 1);
  Engine engine(g, [](const LocalView& v) {
    return std::make_unique<PingProcess>(v);
  }, 7);
  const Metrics m = engine.run(10);
  EXPECT_EQ(m.p2p_messages, 1u);
  EXPECT_EQ(m.rounds, 3u);  // rounds 0..2, all processes done by round 2
  EXPECT_EQ(m.slots_idle, 3u);
}

TEST(Engine, ReportsSlotCapWhenProtocolHangs) {
  // run() no longer aborts on a capped run — it mirrors the asynchronous
  // engine's surface: the metrics of the capped prefix are returned and
  // status() reports kSlotCapReached (scenario::run relays it uniformly).
  class NeverDone final : public Process {
   public:
    void round(NodeContext&) override {}
    bool finished() const override { return false; }
  };
  const Graph g = path(2, 1);
  Engine engine(g, [](const LocalView&) { return std::make_unique<NeverDone>(); }, 7);
  const Metrics m = engine.run(5);
  EXPECT_EQ(m.rounds, 5u);
  EXPECT_EQ(engine.status(), RunStatus::kSlotCapReached);
}

TEST(Engine, LocalViewExposesWeightSortedLinks) {
  const Graph g = random_connected(20, 30, 3);
  Engine engine(g, [&g](const LocalView& v) {
    EXPECT_EQ(v.n, 20u);
    for (std::size_t i = 1; i < v.links().size(); ++i) {
      EXPECT_LT(v.links()[i - 1].weight, v.links()[i].weight);
    }
    EXPECT_EQ(v.links().size(), g.degree(v.self));
    return std::make_unique<PingProcess>(v);
  }, 7);
  engine.run(10);
}

TEST(Engine, RngStreamsAreDeterministicAcrossRuns) {
  class RngProbe final : public Process {
   public:
    void round(NodeContext& ctx) override {
      value_ = ctx.rng().next_u64();
      done_ = true;
    }
    bool finished() const override { return done_; }
    std::uint64_t value_ = 0;
    bool done_ = false;
  };
  const Graph g = path(4, 1);
  auto factory = [](const LocalView&) { return std::make_unique<RngProbe>(); };
  Engine a(g, factory, 99);
  Engine b(g, factory, 99);
  a.run(5);
  b.run(5);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(static_cast<const RngProbe&>(a.process(v)).value_,
              static_cast<const RngProbe&>(b.process(v)).value_);
  }
  // A different node must see a different stream.
  EXPECT_NE(static_cast<const RngProbe&>(a.process(0)).value_,
            static_cast<const RngProbe&>(a.process(1)).value_);
}

// --- async engine --------------------------------------------------------

constexpr std::uint16_t kAsyncPing = 11;

/// Node 0 pings its first neighbor at start; the neighbor echoes back.
class AsyncEcho final : public AsyncProcess {
 public:
  explicit AsyncEcho(const LocalView& view) : view_(view) {}

  void start(AsyncContext& ctx) override {
    if (view_.self == 0) {
      ctx.send(view_.links()[0].edge, Packet(kAsyncPing, {1}));
    }
  }

  void on_message(const Received& msg, AsyncContext& ctx) override {
    if (msg.packet()[0] == 1) {
      ctx.send(msg.via, Packet(kAsyncPing, {2}));
    } else {
      got_echo_ = true;
    }
  }

  void on_slot(const SlotObservation&, AsyncContext&) override {
    ++slots_seen_;
  }

  bool finished() const override {
    return view_.self != 0 || got_echo_;
  }

  const LocalView& view_;
  bool got_echo_ = false;
  int slots_seen_ = 0;
};

TEST(AsyncEngine, DeliversWithBoundedDelayAndEchoes) {
  const Graph g = path(2, 1);
  for (std::uint32_t delay : {1u, 3u, 8u}) {
    AsyncEngine engine(g, [](const LocalView& v) {
      return std::make_unique<AsyncEcho>(v);
    }, 17, delay);
    const Metrics m = engine.run(1000);
    EXPECT_EQ(m.p2p_messages, 2u);
    // Round trip of two messages, each of delay <= `delay` slots.
    EXPECT_LE(m.rounds, 2u * delay + 2u);
  }
}

TEST(AsyncEngine, SlotBoundariesReachEveryNode) {
  const Graph g = path(3, 1);
  AsyncEngine engine(g, [](const LocalView& v) {
    return std::make_unique<AsyncEcho>(v);
  }, 17, 2);
  engine.run(1000);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_GE(static_cast<AsyncEcho&>(engine.process(v)).slots_seen_, 1);
  }
}

/// All nodes write the channel in the first slot: collision observed by all.
class AsyncCollider final : public AsyncProcess {
 public:
  explicit AsyncCollider(const LocalView& view) : view_(view) {}
  void start(AsyncContext& ctx) override {
    ctx.channel_write(Packet(1, {static_cast<Word>(view_.self)}));
  }
  void on_message(const Received&, AsyncContext&) override {}
  void on_slot(const SlotObservation& obs, AsyncContext& ctx) override {
    if (first_) {
      saw_collision_ = obs.collision();
      first_ = false;
      if (view_.self == 0) ctx.channel_write(Packet(2, {7}));
    } else if (!done_) {
      saw_success_ = obs.success() && obs.payload[0] == 7;
      done_ = true;
    }
  }
  bool finished() const override { return done_; }
  const LocalView& view_;
  bool first_ = true;
  bool saw_collision_ = false;
  bool saw_success_ = false;
  bool done_ = false;
};

TEST(AsyncEngine, ChannelCollisionAndSuccess) {
  const Graph g = ring(4, 1);
  AsyncEngine engine(g, [](const LocalView& v) {
    return std::make_unique<AsyncCollider>(v);
  }, 23, 1);
  engine.run(100);
  for (NodeId v = 0; v < 4; ++v) {
    const auto& p = static_cast<const AsyncCollider&>(engine.process(v));
    EXPECT_TRUE(p.saw_collision_) << v;
    EXPECT_TRUE(p.saw_success_) << v;
  }
}

TEST(AsyncEngine, DeterministicPerSeed) {
  const Graph g = random_connected(10, 12, 4);
  auto run_once = [&](std::uint64_t seed) {
    AsyncEngine engine(g, [](const LocalView& v) {
      return std::make_unique<AsyncEcho>(v);
    }, seed, 4);
    return engine.run(1000).rounds;
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

/// Node 0 fires a burst at time zero; node 1 records the slot and tick of
/// every delivery.
class BurstRecorder final : public AsyncProcess {
 public:
  static constexpr int kBurst = 24;

  explicit BurstRecorder(const LocalView& view) : view_(view) {}

  void start(AsyncContext& ctx) override {
    if (view_.self == 0) {
      for (int i = 0; i < kBurst; ++i) {
        ctx.send(view_.links()[0].edge, Packet(kAsyncPing, {i}));
      }
    }
  }

  void on_message(const Received& msg, AsyncContext& ctx) override {
    delivery_slots_.push_back(ctx.slot_index());
    payloads_.push_back(msg.packet()[0]);
  }

  void on_slot(const SlotObservation&, AsyncContext&) override {}

  bool finished() const override {
    return view_.self != 1 ||
           payloads_.size() == static_cast<std::size_t>(kBurst);
  }

  const LocalView& view_;
  std::vector<std::uint64_t> delivery_slots_;
  std::vector<Word> payloads_;
};

TEST(AsyncEngine, LargeDelayBoundSpansSlotBoundaries) {
  // With delay <= 4 slots, a burst sent at time zero must straddle several
  // slot boundaries: deliveries spread over multiple slots, stay within the
  // bound, and arrive in nondecreasing slot order.
  const Graph g = path(2, 1);
  const std::uint32_t max_delay_slots = 4;
  AsyncEngine engine(g, [](const LocalView& v) {
    return std::make_unique<BurstRecorder>(v);
  }, 29, max_delay_slots);
  const Metrics m = engine.run(1000);
  EXPECT_EQ(m.p2p_messages, static_cast<std::uint64_t>(BurstRecorder::kBurst));
  const auto& p1 = static_cast<const BurstRecorder&>(engine.process(1));
  ASSERT_EQ(p1.delivery_slots_.size(),
            static_cast<std::size_t>(BurstRecorder::kBurst));
  std::uint64_t min_slot = p1.delivery_slots_.front();
  std::uint64_t max_slot = p1.delivery_slots_.front();
  for (std::size_t i = 0; i < p1.delivery_slots_.size(); ++i) {
    const std::uint64_t slot = p1.delivery_slots_[i];
    min_slot = std::min(min_slot, slot);
    max_slot = std::max(max_slot, slot);
    EXPECT_LT(slot, max_delay_slots) << "delivery after the delay bound";
    if (i > 0) {
      EXPECT_GE(slot, p1.delivery_slots_[i - 1])
          << "per-node delivery order must follow the slot clock";
    }
  }
  // 24 draws from [1, 64] ticks almost surely hit at least two of the four
  // slots (deterministic for this pinned seed).
  EXPECT_GT(max_slot, min_slot) << "burst never crossed a slot boundary";
}

TEST(AsyncEngine, CrossSlotDeliveryIdenticalAcrossSchedulers) {
  const Graph g = path(2, 1);
  auto run_once = [&](unsigned threads) {
    AsyncEngine engine(g, [](const LocalView& v) {
      return std::make_unique<BurstRecorder>(v);
    }, 29, 4, make_scheduler(threads));
    engine.run(1000);
    const auto& p1 = static_cast<const BurstRecorder&>(engine.process(1));
    return std::pair{p1.delivery_slots_, p1.payloads_};
  };
  const auto serial = run_once(1);
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(run_once(threads), serial) << threads << " threads";
  }
}

/// Holds the channel forever and never finishes.
class AsyncNeverDone final : public AsyncProcess {
 public:
  void start(AsyncContext&) override {}
  void on_message(const Received&, AsyncContext&) override {}
  void on_slot(const SlotObservation&, AsyncContext& ctx) override {
    ctx.channel_write(Packet(1));
  }
  bool finished() const override { return false; }
};

TEST(AsyncEngine, SlotCapReportedAsStatusNotAbort) {
  // A non-terminating protocol must not abort the sweep: run() returns the
  // metrics it accumulated and reports kSlotCapReached through status().
  const Graph g = path(2, 1);
  AsyncEngine engine(g, [](const LocalView&) {
    return std::make_unique<AsyncNeverDone>();
  }, 7, 1);
  const Metrics m = engine.run(25);
  EXPECT_EQ(engine.status(), AsyncEngine::RunStatus::kSlotCapReached);
  EXPECT_EQ(m.rounds, 25u);
  // The engine stays usable: stepping further keeps simulating.
  EXPECT_FALSE(engine.step(5));
  EXPECT_EQ(engine.metrics().rounds, 30u);
}

TEST(AsyncEngine, CompletionReportedAsStatus) {
  const Graph g = path(2, 1);
  AsyncEngine engine(g, [](const LocalView& v) {
    return std::make_unique<AsyncEcho>(v);
  }, 17, 1);
  engine.run(1000);
  EXPECT_EQ(engine.status(), AsyncEngine::RunStatus::kCompleted);
  EXPECT_TRUE(engine.step(10));  // already complete: a no-op that stays true
}

}  // namespace
}  // namespace mmn::sim
