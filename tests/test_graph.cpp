// Unit and property tests for src/graph: construction, generators, reference
// algorithms, and forest validation.
#include <algorithm>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/validation.hpp"

namespace mmn {
namespace {

Graph triangle() {
  return Graph(3, {{0, 1, 10}, {1, 2, 20}, {0, 2, 30}});
}

TEST(Graph, BasicAccessors) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.edge(0).weight, 10u);
  EXPECT_EQ(g.other_endpoint(0, 0), 1u);
  EXPECT_EQ(g.other_endpoint(0, 1), 0u);
}

TEST(Graph, NeighborsSortedByWeight) {
  const Graph g = triangle();
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_LT(nb[0].weight, nb[1].weight);
  EXPECT_EQ(nb[0].to, 1u);
  EXPECT_EQ(nb[1].to, 2u);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(2, {{0, 0, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateWeight) {
  EXPECT_THROW(Graph(3, {{0, 1, 5}, {1, 2, 5}}), std::invalid_argument);
}

TEST(Graph, RejectsParallelEdges) {
  EXPECT_THROW(Graph(2, {{0, 1, 1}, {1, 0, 2}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph(2, {{0, 2, 1}}), std::invalid_argument);
}

TEST(Dsu, UniteAndFind) {
  Dsu d(5);
  EXPECT_EQ(d.num_sets(), 5u);
  EXPECT_TRUE(d.unite(0, 1));
  EXPECT_FALSE(d.unite(1, 0));
  EXPECT_TRUE(d.unite(2, 3));
  EXPECT_TRUE(d.unite(0, 3));
  EXPECT_EQ(d.num_sets(), 2u);
  EXPECT_EQ(d.find(2), d.find(1));
  EXPECT_NE(d.find(4), d.find(0));
  EXPECT_EQ(d.set_size(3), 4u);
}

struct GenCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
  NodeId expect_n;
  EdgeId expect_m;
};

Graph make_random(std::uint64_t s) { return random_connected(50, 60, s); }
Graph make_tree(std::uint64_t s) { return random_tree(40, s); }
Graph make_grid(std::uint64_t s) { return grid(6, 7, s); }
Graph make_ring(std::uint64_t s) { return ring(20, s); }
Graph make_path(std::uint64_t s) { return path(15, s); }
Graph make_complete(std::uint64_t s) { return complete(9, s); }
Graph make_hypercube(std::uint64_t s) { return hypercube(4, s); }
Graph make_ray(std::uint64_t s) { return ray_graph(5, 6, s); }

class GeneratorTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorTest, ProducesExpectedShape) {
  const GenCase& c = GetParam();
  const Graph g = c.make(123);
  EXPECT_EQ(g.num_nodes(), c.expect_n);
  EXPECT_EQ(g.num_edges(), c.expect_m);
  EXPECT_TRUE(is_connected(g));
}

TEST_P(GeneratorTest, WeightsAreDistinctPermutation) {
  const Graph g = GetParam().make(7);
  std::set<Weight> weights;
  for (EdgeId e = 0; e < g.num_edges(); ++e) weights.insert(g.edge(e).weight);
  EXPECT_EQ(weights.size(), g.num_edges());
  EXPECT_EQ(*weights.begin(), 1u);
  EXPECT_EQ(*weights.rbegin(), g.num_edges());
}

TEST_P(GeneratorTest, DeterministicPerSeed) {
  const Graph a = GetParam().make(99);
  const Graph b = GetParam().make(99);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_EQ(a.edge(e).weight, b.edge(e).weight);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(GenCase{"random", make_random, 50, 109},
                      GenCase{"tree", make_tree, 40, 39},
                      GenCase{"grid", make_grid, 42, 71},
                      GenCase{"ring", make_ring, 20, 20},
                      GenCase{"path", make_path, 15, 14},
                      GenCase{"complete", make_complete, 9, 36},
                      GenCase{"hypercube", make_hypercube, 16, 32},
                      GenCase{"ray", make_ray, 31, 30}),
    [](const ::testing::TestParamInfo<GenCase>& param_info) {
      return param_info.param.name;
    });

TEST(Generators, RayGraphDiameter) {
  const Graph g = ray_graph(4, 8, 1);
  EXPECT_EQ(diameter(g), 16u);  // 2 * ray_len, through the center
}

TEST(Generators, RingDiameter) {
  EXPECT_EQ(diameter(ring(10, 1)), 5u);
  EXPECT_EQ(diameter(ring(11, 1)), 5u);
}

TEST(Generators, PathDiameter) { EXPECT_EQ(diameter(path(12, 1)), 11u); }

TEST(Generators, HypercubeDiameterIsDimension) {
  EXPECT_EQ(diameter(hypercube(5, 1)), 5u);
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(6, 1);
  const auto d = bfs_distances(g, NodeId{0});
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, MultiSourceTakesMinimum) {
  const Graph g = path(10, 1);
  const auto d = bfs_distances(g, std::vector<NodeId>{0, 9});
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[9], 0u);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[5], 4u);
}

TEST(Mst, KruskalEqualsPrimOnManyGraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Graph g = random_connected(60, 90, seed);
    const MstResult k = kruskal_mst(g);
    const MstResult p = prim_mst(g);
    EXPECT_EQ(k.edges, p.edges) << "seed=" << seed;
    EXPECT_EQ(k.total_weight, p.total_weight);
    EXPECT_EQ(k.edges.size(), g.num_nodes() - 1u);
  }
}

TEST(Mst, TreeGraphMstIsAllEdges) {
  const Graph g = random_tree(30, 5);
  const MstResult k = kruskal_mst(g);
  EXPECT_EQ(k.edges.size(), 29u);
}

TEST(Mst, ContainsQueries) {
  const Graph g = triangle();
  const MstResult k = kruskal_mst(g);
  EXPECT_TRUE(mst_contains(k, 0));   // weight 10
  EXPECT_TRUE(mst_contains(k, 1));   // weight 20
  EXPECT_FALSE(mst_contains(k, 2));  // weight 30 closes the cycle
}

TEST(Validation, AnalyzeSingleTreeForest) {
  const Graph g = path(5, 1);
  Forest f;
  f.parent = {0, 0, 1, 2, 3};
  f.parent_edge = {kNoEdge, 0, 1, 2, 3};
  const ForestStats stats = analyze_forest(g, f, "test");
  EXPECT_EQ(stats.num_trees, 1u);
  EXPECT_EQ(stats.min_size, 5u);
  EXPECT_EQ(stats.max_radius, 4u);
}

TEST(Validation, AnalyzeMultiTreeForest) {
  const Graph g = path(6, 1);
  Forest f;
  // Two trees: {0,1,2} rooted at 0 and {3,4,5} rooted at 4.
  f.parent = {0, 0, 1, 4, 4, 4};
  f.parent_edge = {kNoEdge, 0, 1, 3, kNoEdge, 4};
  const ForestStats stats = analyze_forest(g, f, "test");
  EXPECT_EQ(stats.num_trees, 2u);
  EXPECT_EQ(stats.min_size, 3u);
  EXPECT_EQ(stats.max_size, 3u);
  EXPECT_EQ(stats.max_radius, 2u);
}

TEST(Validation, RootsAndRootOf) {
  Forest f;
  f.parent = {0, 0, 1, 3, 3};
  f.parent_edge = {kNoEdge, 0, 1, kNoEdge, 3};
  EXPECT_EQ(forest_roots(f), (std::vector<NodeId>{0, 3}));
  EXPECT_EQ(forest_root_of(f, 2), 0u);
  EXPECT_EQ(forest_root_of(f, 4), 3u);
}

TEST(Validation, ForestWithinMst) {
  const Graph g = triangle();
  const MstResult mst = kruskal_mst(g);
  Forest good;
  good.parent = {0, 0, 1};
  good.parent_edge = {kNoEdge, 0, 1};
  EXPECT_TRUE(forest_within_mst(good, mst));
  Forest bad;
  bad.parent = {0, 0, 0};
  bad.parent_edge = {kNoEdge, 0, 2};  // edge 2 is not in the MST
  EXPECT_FALSE(forest_within_mst(bad, mst));
}

}  // namespace
}  // namespace mmn
