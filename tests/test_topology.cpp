// Topology-substrate equivalence suite.
//
// The CSR refactor (one weight-sorted arena + shared edge slab + zero-copy
// LocalViews) must be invisible to every layer above: the golden digests
// below were captured from the PRE-refactor tree (edge-list build, per-node
// adjacency copies) for all 8 generators at several (shape, seed) pairs and
// pin the new build to the identical adjacency — same edge ids, same weight
// permutation, same per-node weight-sorted link order.  The implicit dense
// variants are checked structurally against explicit rebuilds of the same
// edge set, and the LocalView tests pin the zero-copy property itself.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sim/runtime_core.hpp"

namespace mmn {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t w) {
  h ^= w;
  return h * 0x100000001b3ULL;
}

/// FNV-1a over (n, m), every node's neighbor rows (to, edge, weight) in
/// weight order, then every edge's (u, v, weight) by id — the exact fold
/// the pre-refactor capture used.
std::uint64_t topo_digest(const Graph& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, g.num_nodes());
  h = mix(h, g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Neighbor& e : g.neighbors(v)) {
      h = mix(h, e.to);
      h = mix(h, e.edge);
      h = mix(h, e.weight);
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    h = mix(h, ed.u);
    h = mix(h, ed.v);
    h = mix(h, ed.weight);
  }
  return h;
}

struct GoldenCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
  std::uint64_t digest7, digest123, digest9001;  // per seed
};

Graph g_random50(std::uint64_t s) { return random_connected(50, 60, s); }
Graph g_random256(std::uint64_t s) { return random_connected(256, 512, s); }
Graph g_tree40(std::uint64_t s) { return random_tree(40, s); }
Graph g_tree129(std::uint64_t s) { return random_tree(129, s); }
Graph g_grid6x7(std::uint64_t s) { return grid(6, 7, s); }
Graph g_grid16(std::uint64_t s) { return grid(16, 16, s); }
Graph g_ring20(std::uint64_t s) { return ring(20, s); }
Graph g_ring257(std::uint64_t s) { return ring(257, s); }
Graph g_path15(std::uint64_t s) { return path(15, s); }
Graph g_path100(std::uint64_t s) { return path(100, s); }
Graph g_complete9(std::uint64_t s) { return complete(9, s); }
Graph g_complete33(std::uint64_t s) { return complete(33, s); }
Graph g_cube4(std::uint64_t s) { return hypercube(4, s); }
Graph g_cube7(std::uint64_t s) { return hypercube(7, s); }
Graph g_ray5x6(std::uint64_t s) { return ray_graph(5, 6, s); }
Graph g_ray16(std::uint64_t s) { return ray_graph(16, 16, s); }

// Captured from the pre-CSR tree (see tests/test_topology.cpp history):
// Graph(n, vector<Edge>) + assign_weights, seeds 7 / 123 / 9001.
const GoldenCase kGolden[] = {
    {"random50", g_random50, 0xab6f2c10c7399e45ull, 0x5f85989aea590b41ull,
     0xf20af0834208a131ull},
    {"random256", g_random256, 0x3449df5dc83ec106ull, 0x9964063fd9b686d4ull,
     0x53576e051adf6ae8ull},
    {"tree40", g_tree40, 0xb77f9401960c4d90ull, 0x7d78fbe215d98818ull,
     0x2b5070f15f3900c8ull},
    {"tree129", g_tree129, 0xeb77ebb5b8bbcd10ull, 0x18933de5f27baf54ull,
     0x94bddd7386ab4fd4ull},
    {"grid6x7", g_grid6x7, 0xa4ab32246c46f81cull, 0xcfcb0dfa76e49408ull,
     0x970ba24c8722f0bcull},
    {"grid16x16", g_grid16, 0x2c0ceaf034abbcf9ull, 0xb6290316fb0b791dull,
     0x4e2c7daf39a00c99ull},
    {"ring20", g_ring20, 0x73ce5ed0a0d7ef5dull, 0x2776add94f43810dull,
     0x1cdebe12d580e8ffull},
    {"ring257", g_ring257, 0x275868a0d937d4e0ull, 0xcfa51b5509c5a6d8ull,
     0xb1e6330efa54f648ull},
    {"path15", g_path15, 0x95f339092d9809b3ull, 0xe1a04ec84d32c791ull,
     0x60f5ea5abcbee149ull},
    {"path100", g_path100, 0x8e3d10591810c808ull, 0x475612cef0b23f78ull,
     0x03d99c1e3d05247eull},
    {"complete9", g_complete9, 0x5bca3c75d6390dc4ull, 0xa5d1e7b00ae44d94ull,
     0xa2a53fd0bae2b38aull},
    {"complete33", g_complete33, 0x1c61d68be1a01df0ull, 0xb39d3e984ac331c2ull,
     0xde31ce1d822515baull},
    {"hypercube4", g_cube4, 0xa1b327b554385635ull, 0xf2d72e6801e1b437ull,
     0xb669dbb722f4d04full},
    {"hypercube7", g_cube7, 0xe8382c46ef5d825dull, 0x87d753393d754973ull,
     0xee7ba4583ca71411ull},
    {"ray5x6", g_ray5x6, 0x23c535f302fd7b27ull, 0xd570bd09e7e93409ull,
     0xa20b7dc091e10837ull},
    {"ray16x16", g_ray16, 0xb8321cf7a379195eull, 0x5ee2f9afa2863286ull,
     0x8bdbb34a8ab252ceull},
};

class GoldenTopologyTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTopologyTest, CsrBuildMatchesPreRefactorEdgeListBuild) {
  const GoldenCase& c = GetParam();
  EXPECT_EQ(topo_digest(c.make(7)), c.digest7);
  EXPECT_EQ(topo_digest(c.make(123)), c.digest123);
  EXPECT_EQ(topo_digest(c.make(9001)), c.digest9001);
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GoldenTopologyTest,
                         ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<GoldenCase>& info) {
                           return std::string(info.param.name);
                         });

// ---- structural invariants of the CSR arena --------------------------------

void expect_well_formed(const Graph& g) {
  std::set<Weight> weights;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    ASSERT_LT(ed.u, g.num_nodes());
    ASSERT_LT(ed.v, g.num_nodes());
    ASSERT_NE(ed.u, ed.v);
    ASSERT_TRUE(weights.insert(ed.weight).second) << "duplicate weight";
    // link_slot round-trips from both endpoints.
    for (NodeId v : {ed.u, ed.v}) {
      const int slot = g.link_slot(v, e);
      ASSERT_GE(slot, 0);
      const Neighbor nb = g.neighbors(v)[static_cast<std::uint32_t>(slot)];
      EXPECT_EQ(nb.edge, e);
      EXPECT_EQ(nb.to, v == ed.u ? ed.v : ed.u);
      EXPECT_EQ(nb.weight, ed.weight);
    }
    EXPECT_EQ(g.other_endpoint(e, ed.u), ed.v);
  }
  std::size_t entries = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NeighborRange row = g.neighbors(v);
    EXPECT_EQ(row.size(), g.degree(v));
    entries += row.size();
    for (std::uint32_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(row[i - 1].weight, row[i].weight) << "node " << v;
      }
      EXPECT_EQ(g.link_slot(v, row[i].edge), static_cast<int>(i));
    }
    // Iterator and operator[] agree.
    std::uint32_t i = 0;
    for (const Neighbor& nb : row) {
      EXPECT_EQ(nb.to, row[i].to);
      EXPECT_EQ(nb.edge, row[i].edge);
      ++i;
    }
    EXPECT_EQ(i, row.size());
  }
  EXPECT_EQ(entries, 2ull * g.num_edges());
  // A non-incident edge never resolves to a slot.
  if (g.num_nodes() >= 3 && g.num_edges() >= 1) {
    const Edge e0 = g.edge(0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v != e0.u && v != e0.v) {
        EXPECT_EQ(g.link_slot(v, 0), -1);
        break;
      }
    }
  }
  EXPECT_EQ(g.link_slot(0, g.num_edges()), -1);  // out-of-range edge id
}

TEST(TopologySubstrate, ExplicitGraphsAreWellFormed) {
  expect_well_formed(random_connected(64, 128, 5));
  expect_well_formed(grid(5, 9, 5));
  expect_well_formed(complete(17, 5));
  expect_well_formed(ray_graph(4, 5, 5));
}

// ---- implicit dense variants ----------------------------------------------

/// Rebuilds an implicit graph's edge set explicitly and checks the implicit
/// neighbors()/link_slot/degree answers against the materialized CSR rows.
void expect_implicit_matches_explicit(const Graph& imp) {
  ASSERT_TRUE(imp.is_implicit());
  std::vector<Edge> edges;
  edges.reserve(imp.num_edges());
  for (EdgeId e = 0; e < imp.num_edges(); ++e) {
    edges.push_back(imp.edge(e));
    EXPECT_EQ(edges.back().weight, static_cast<Weight>(e) + 1)
        << "canonical labelling";
  }
  const Graph exp(imp.num_nodes(), std::move(edges));
  EXPECT_EQ(topo_digest(imp), topo_digest(exp))
      << "implicit rows must equal the explicit CSR of the same edge set";
  EXPECT_TRUE(is_connected(imp));
}

TEST(ImplicitTopology, CompleteMatchesExplicit) {
  expect_implicit_matches_explicit(Graph::implicit_complete(2));
  expect_implicit_matches_explicit(Graph::implicit_complete(9));
  expect_implicit_matches_explicit(Graph::implicit_complete(48));
  expect_well_formed(Graph::implicit_complete(17));
}

TEST(ImplicitTopology, RingMatchesExplicit) {
  expect_implicit_matches_explicit(Graph::implicit_ring(3));
  expect_implicit_matches_explicit(Graph::implicit_ring(20));
  expect_well_formed(Graph::implicit_ring(7));
}

TEST(ImplicitTopology, GridMatchesExplicit) {
  expect_implicit_matches_explicit(Graph::implicit_grid(1, 2));
  expect_implicit_matches_explicit(Graph::implicit_grid(6, 7));
  expect_implicit_matches_explicit(Graph::implicit_grid(5, 1));
  expect_well_formed(Graph::implicit_grid(4, 4));
  // Degenerate single-column/row grids: the down neighbor is v + 1, which
  // must never resolve through the "right" slot (no horizontal edges).
  expect_well_formed(Graph::implicit_grid(5, 1));
  expect_well_formed(Graph::implicit_grid(1, 5));
}

TEST(ImplicitTopology, HypercubeMatchesExplicit) {
  expect_implicit_matches_explicit(Graph::implicit_hypercube(1));
  expect_implicit_matches_explicit(Graph::implicit_hypercube(4));
  expect_implicit_matches_explicit(Graph::implicit_hypercube(6));
  expect_well_formed(Graph::implicit_hypercube(5));
}

TEST(ImplicitTopology, LargeCliqueIsO1Storage) {
  const Graph g = Graph::implicit_complete(16384);
  EXPECT_EQ(g.num_edges(), 16384u * 16383u / 2);
  // The whole topology costs bytes, not the ~4.3 GiB of explicit rows.
  EXPECT_LT(g.topology_bytes(), 1024u);
  // Spot-check the weight-sorted O(1) rows deep into the id space.
  const NodeId v = 9999;
  const NeighborRange row = g.neighbors(v);
  ASSERT_EQ(row.size(), 16383u);
  EXPECT_EQ(row[0].to, 0u);
  EXPECT_EQ(row[9998].to, 9998u);
  EXPECT_EQ(row[9999].to, 10000u);
  for (std::uint32_t i : {0u, 1u, 5000u, 9998u, 9999u, 16382u}) {
    const Neighbor nb = row[i];
    EXPECT_EQ(g.link_slot(v, nb.edge), static_cast<int>(i));
    const Edge ed = g.edge(nb.edge);
    EXPECT_TRUE((ed.u == v && ed.v == nb.to) || (ed.v == v && ed.u == nb.to));
    EXPECT_EQ(ed.weight, static_cast<Weight>(nb.edge) + 1);
  }
}

// ---- zero-copy LocalViews --------------------------------------------------

TEST(LocalViewSubstrate, ViewsWindowTheGraphArenaWithoutCopies) {
  const Graph g = random_connected(40, 80, 3);
  sim::RuntimeCore core(g, 3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const sim::LocalView& view = core.view(v);
    EXPECT_EQ(view.self, v);
    EXPECT_EQ(view.n, g.num_nodes());
    // The view's links are the graph's arena rows themselves — same memory,
    // not a copy — and survive as long as the graph does.
    EXPECT_EQ(view.links().data(), g.neighbors(v).data());
    EXPECT_NE(view.links().data(), nullptr);
    EXPECT_EQ(view.links().size(), g.degree(v));
    for (std::uint32_t i = 0; i < view.links().size(); ++i) {
      EXPECT_EQ(view.link_index(view.links()[i].edge), static_cast<int>(i));
    }
  }
}

TEST(LocalViewSubstrate, ImplicitViewsComputeRowsOnTheFly) {
  const Graph g = Graph::implicit_complete(24);
  sim::RuntimeCore core(g, 3);
  const sim::LocalView& view = core.view(7);
  EXPECT_EQ(view.links().data(), nullptr);  // no arena behind an implicit row
  EXPECT_EQ(view.degree(), 23u);
  std::uint32_t count = 0;
  NodeId expect_to = 0;
  for (const Neighbor& nb : view.links()) {
    if (expect_to == 7) ++expect_to;  // rows skip self
    EXPECT_EQ(nb.to, expect_to++);
    EXPECT_EQ(view.link_index(nb.edge), static_cast<int>(count));
    ++count;
  }
  EXPECT_EQ(count, 23u);
}

// ---- TopologySpec ----------------------------------------------------------

TEST(TopologySpec, ValidityAndRounding) {
  EXPECT_TRUE(topology_valid_n(TopoKind::kHypercube, 64));
  EXPECT_FALSE(topology_valid_n(TopoKind::kHypercube, 65));
  EXPECT_FALSE(topology_valid_n(TopoKind::kHypercube, 6000));
  EXPECT_EQ(topology_round_n(TopoKind::kHypercube, 6000), 4096u);
  EXPECT_TRUE(topology_valid_n(TopoKind::kGrid, 64));
  EXPECT_FALSE(topology_valid_n(TopoKind::kGrid, 60));
  EXPECT_EQ(topology_round_n(TopoKind::kGrid, 60), 64u);
  EXPECT_FALSE(topology_valid_n(TopoKind::kRing, 2));
  EXPECT_EQ(topology_round_n(TopoKind::kRing, 2), 3u);
  EXPECT_TRUE(topology_valid_n(TopoKind::kRandom, 1));
  EXPECT_TRUE(topology_valid_n(TopoKind::kCliqueImplicit, 16384));
  EXPECT_FALSE(topology_valid_n(TopoKind::kCliqueImplicit, 100000));
  // The clique cap 92682 is the largest n whose m fits 32 bits; rounding
  // any larger nominal size must land exactly there, in O(1).
  EXPECT_TRUE(topology_valid_n(TopoKind::kCliqueImplicit, 92682));
  EXPECT_FALSE(topology_valid_n(TopoKind::kCliqueImplicit, 92683));
  EXPECT_EQ(topology_round_n(TopoKind::kCliqueImplicit, 1000000000), 92682u);
  // Rounding always lands on an admissible size.
  for (TopoKind kind :
       {TopoKind::kRandom, TopoKind::kGrid, TopoKind::kRing, TopoKind::kPath,
        TopoKind::kComplete, TopoKind::kHypercube, TopoKind::kRay,
        TopoKind::kCliqueImplicit, TopoKind::kGridImplicit}) {
    for (NodeId n : {1u, 2u, 5u, 48u, 60u, 100u, 4097u}) {
      EXPECT_TRUE(topology_valid_n(kind, topology_round_n(kind, n)))
          << topology_name(kind) << " n=" << n;
    }
  }
}

TEST(TopologySpec, BuildsEveryKindAtItsRoundedSize) {
  for (TopoKind kind :
       {TopoKind::kRandom, TopoKind::kTree, TopoKind::kGrid, TopoKind::kRing,
        TopoKind::kPath, TopoKind::kComplete, TopoKind::kHypercube,
        TopoKind::kRay, TopoKind::kCliqueImplicit, TopoKind::kRingImplicit,
        TopoKind::kGridImplicit, TopoKind::kHypercubeImplicit}) {
    const NodeId n = topology_round_n(kind, 60);
    const Graph g = build_topology(TopologySpec{kind, n, 11});
    EXPECT_EQ(g.num_nodes(), n) << topology_name(kind);
    EXPECT_TRUE(is_connected(g)) << topology_name(kind);
  }
  EXPECT_THROW(build_topology(TopologySpec{TopoKind::kHypercube, 65, 1}),
               std::invalid_argument);
}

TEST(TopologySpec, RayDecompositionKeepsTheLowerBoundShape) {
  // rays = largest divisor of n-1 below sqrt: the diameter stays ~2 sqrt(n),
  // the regime where the multimedia channel beats pure point-to-point.
  EXPECT_EQ(ray_count_for(64), 7u);    // 63 = 7 * 9
  EXPECT_EQ(ray_count_for(257), 16u);  // 256 = 16 * 16
  const Graph g = build_topology(TopologySpec{TopoKind::kRay, 257, 1});
  EXPECT_EQ(g.num_nodes(), 257u);
  EXPECT_EQ(diameter(g), 32u);  // 2 * ray_len = 2 * 16
}

TEST(TopologySubstrate, RejectsWeightsBeyond32Bits) {
  EXPECT_THROW(Graph(2, {{0, 1, 0x100000000ull}}), std::invalid_argument);
  EXPECT_NO_THROW(Graph(2, {{0, 1, 0xFFFFFFFFull}}));
}

}  // namespace
}  // namespace mmn
