// Tests for global sensitive functions (Section 5): the multimedia
// deterministic and randomized algorithms and the two lower-bound baselines
// all compute the exact fold, at every node, over a sweep of topologies and
// semigroup operations.
#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/broadcast_global.hpp"
#include "baselines/p2p_global.hpp"
#include "core/global_function.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace mmn {
namespace {

using sim::Word;

std::vector<Word> make_inputs(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> inputs(n);
  for (NodeId v = 0; v < n; ++v) {
    inputs[v] = static_cast<Word>(rng.next_below(1'000'000)) + 1;
  }
  return inputs;
}

Word fold(SemigroupOp op, const std::vector<Word>& inputs) {
  Word acc = inputs.front();
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    acc = semigroup_apply(op, acc, inputs[i]);
  }
  return acc;
}

TEST(Semigroup, Operations) {
  EXPECT_EQ(semigroup_apply(SemigroupOp::kSum, 3, 4), 7);
  EXPECT_EQ(semigroup_apply(SemigroupOp::kMin, 3, 4), 3);
  EXPECT_EQ(semigroup_apply(SemigroupOp::kMax, 3, 4), 4);
  EXPECT_EQ(semigroup_apply(SemigroupOp::kXor, 5, 3), 6);
  EXPECT_EQ(semigroup_apply(SemigroupOp::kGcd, 12, 18), 6);
}

TEST(Semigroup, BalancedPhaseCount) {
  for (NodeId n : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const int balanced = balanced_phase_count(n);
    EXPECT_GE(balanced, partition_phases(n)) << n;
    EXPECT_LE(balanced, ilog2_floor(n) + 1) << n;
  }
}

struct GlobalCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
  SemigroupOp op;
};

Graph g_ring(std::uint64_t s) { return ring(48, s); }
Graph g_grid(std::uint64_t s) { return grid(7, 7, s); }
Graph g_sparse(std::uint64_t s) { return random_connected(90, 60, s); }
Graph g_dense(std::uint64_t s) { return random_connected(50, 400, s); }
Graph g_path(std::uint64_t s) { return path(30, s); }
Graph g_ray(std::uint64_t s) { return ray_graph(4, 8, s); }

class GlobalFunctionTest : public ::testing::TestWithParam<GlobalCase> {};

TEST_P(GlobalFunctionTest, DeterministicMatchesSequentialFold) {
  const auto& c = GetParam();
  const Graph g = c.make(11);
  const auto inputs = make_inputs(g.num_nodes(), 3);
  const Word expected = fold(c.op, inputs);
  GlobalFunctionConfig config;
  config.op = c.op;
  config.variant = GlobalFunctionConfig::Variant::kDeterministic;
  sim::Engine engine(g, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(v, config, inputs[v.self]);
  }, 5);
  engine.run(2'000'000);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(static_cast<const GlobalFunctionProcess&>(engine.process(v))
                  .result(),
              expected)
        << "node " << v;
  }
}

TEST_P(GlobalFunctionTest, RandomizedMatchesSequentialFold) {
  const auto& c = GetParam();
  const Graph g = c.make(13);
  const auto inputs = make_inputs(g.num_nodes(), 7);
  const Word expected = fold(c.op, inputs);
  GlobalFunctionConfig config;
  config.op = c.op;
  config.variant = GlobalFunctionConfig::Variant::kRandomized;
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    sim::Engine engine(g, [&](const sim::LocalView& v) {
      return std::make_unique<GlobalFunctionProcess>(v, config,
                                                     inputs[v.self]);
    }, seed);
    engine.run(2'000'000);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(static_cast<const GlobalFunctionProcess&>(engine.process(v))
                    .result(),
                expected)
          << "node " << v << " seed " << seed;
    }
  }
}

TEST_P(GlobalFunctionTest, BalancedVariantMatchesSequentialFold) {
  const auto& c = GetParam();
  const Graph g = c.make(17);
  const auto inputs = make_inputs(g.num_nodes(), 9);
  GlobalFunctionConfig config;
  config.op = c.op;
  config.variant = GlobalFunctionConfig::Variant::kDeterministic;
  config.balanced = true;
  sim::Engine engine(g, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(v, config, inputs[v.self]);
  }, 5);
  engine.run(2'000'000);
  EXPECT_EQ(
      static_cast<const GlobalFunctionProcess&>(engine.process(0)).result(),
      fold(c.op, inputs));
}

TEST_P(GlobalFunctionTest, P2pBaselineMatchesFoldWithoutChannel) {
  const auto& c = GetParam();
  const Graph g = c.make(19);
  const auto inputs = make_inputs(g.num_nodes(), 11);
  const Word expected = fold(c.op, inputs);
  for (std::int32_t d : {-1, static_cast<std::int32_t>(diameter(g))}) {
    P2pGlobalConfig config;
    config.op = c.op;
    config.known_diameter = d;
    sim::Engine engine(g, [&](const sim::LocalView& v) {
      return std::make_unique<P2pGlobalProcess>(v, config, inputs[v.self]);
    }, 5);
    const Metrics m = engine.run(1'000'000);
    EXPECT_EQ(m.slots_busy(), 0u) << "p2p baseline must not use the channel";
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(
          static_cast<const P2pGlobalProcess&>(engine.process(v)).result(),
          expected);
    }
  }
}

TEST_P(GlobalFunctionTest, BroadcastBaselineMatchesFoldWithoutMessages) {
  const auto& c = GetParam();
  const Graph g = c.make(23);
  const auto inputs = make_inputs(g.num_nodes(), 13);
  sim::Engine engine(g, [&](const sim::LocalView& v) {
    return std::make_unique<BroadcastGlobalProcess>(v, c.op, inputs[v.self]);
  }, 5);
  const Metrics m = engine.run(100'000);
  EXPECT_EQ(m.p2p_messages, 0u) << "broadcast baseline must not use links";
  // n slots plus the round in which the last slot resolves and all finish.
  EXPECT_EQ(m.rounds, static_cast<std::uint64_t>(g.num_nodes()) + 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(
        static_cast<const BroadcastGlobalProcess&>(engine.process(v)).result(),
        fold(c.op, inputs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GlobalFunctionTest,
    ::testing::Values(GlobalCase{"ring_min", g_ring, SemigroupOp::kMin},
                      GlobalCase{"ring_sum", g_ring, SemigroupOp::kSum},
                      GlobalCase{"grid_xor", g_grid, SemigroupOp::kXor},
                      GlobalCase{"grid_max", g_grid, SemigroupOp::kMax},
                      GlobalCase{"sparse_sum", g_sparse, SemigroupOp::kSum},
                      GlobalCase{"sparse_gcd", g_sparse, SemigroupOp::kGcd},
                      GlobalCase{"dense_min", g_dense, SemigroupOp::kMin},
                      GlobalCase{"path_sum", g_path, SemigroupOp::kSum},
                      GlobalCase{"ray_min", g_ray, SemigroupOp::kMin}),
    [](const ::testing::TestParamInfo<GlobalCase>& param_info) {
      return param_info.param.name;
    });

TEST(GlobalFunction, SingleNode) {
  const Graph g(1, {});
  GlobalFunctionConfig config;
  config.op = SemigroupOp::kSum;
  sim::Engine engine(g, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(v, config, 42);
  }, 5);
  engine.run(1000);
  EXPECT_EQ(
      static_cast<const GlobalFunctionProcess&>(engine.process(0)).result(),
      42);
}

TEST(GlobalFunction, RandomizedRejectsBalanced) {
  const Graph g = ring(8, 1);
  GlobalFunctionConfig config;
  config.variant = GlobalFunctionConfig::Variant::kRandomized;
  config.balanced = true;
  EXPECT_THROW(
      sim::Engine(g,
                  [&](const sim::LocalView& v) {
                    return std::make_unique<GlobalFunctionProcess>(v, config,
                                                                   1);
                  },
                  1),
      std::invalid_argument);
}

TEST(GlobalFunction, MultimediaBeatsBroadcastOnLargeRing) {
  // The headline separation: Theta(sqrt(n) polylog) vs Theta(n).  The
  // multimedia constant (~37 sqrt(n) for the randomized variant) crosses the
  // pure-broadcast line near n = 512 and the gap widens with n.
  const NodeId n = 2048;
  const Graph g = ring(n, 1);
  const auto inputs = make_inputs(n, 5);

  GlobalFunctionConfig config;
  config.op = SemigroupOp::kMin;
  config.variant = GlobalFunctionConfig::Variant::kRandomized;
  sim::Engine mm(g, [&](const sim::LocalView& v) {
    return std::make_unique<GlobalFunctionProcess>(v, config, inputs[v.self]);
  }, 5);
  const Metrics mm_metrics = mm.run(2'000'000);

  sim::Engine bc(g, [&](const sim::LocalView& v) {
    return std::make_unique<BroadcastGlobalProcess>(v, SemigroupOp::kMin,
                                                    inputs[v.self]);
  }, 5);
  const Metrics bc_metrics = bc.run(100'000);

  P2pGlobalConfig p2p_config;
  p2p_config.op = SemigroupOp::kMin;
  p2p_config.known_diameter = static_cast<std::int32_t>(n / 2);
  sim::Engine p2p(g, [&](const sim::LocalView& v) {
    return std::make_unique<P2pGlobalProcess>(v, p2p_config, inputs[v.self]);
  }, 5);
  const Metrics p2p_metrics = p2p.run(1'000'000);

  EXPECT_LT(mm_metrics.rounds, bc_metrics.rounds * 3 / 4)
      << "multimedia should beat pure broadcast";
  EXPECT_LT(mm_metrics.rounds, p2p_metrics.rounds / 2)
      << "multimedia should beat pure point-to-point";
}

}  // namespace
}  // namespace mmn
